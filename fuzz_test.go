package secureview

// FuzzDeriveGenerated fuzzes the full spec → workflow → Secure-View
// derivation → solver pipeline. Run actively with:
//
//	go test -fuzz=FuzzDeriveGenerated -fuzztime=30s .
//
// The seed corpus is NOT hand-written: it is every canonical generated
// topology class (internal/gen) serialized through the spec interchange
// format, so the fuzzer starts from realistic workflows — truth tables,
// public modules, non-boolean domains — and mutates from there. The
// invariants: nothing in the pipeline may panic on any input, a derived
// instance must validate, and Greedy on a derived instance is feasible by
// construction (every private module gets at least one option).

import (
	"testing"

	"secureview/internal/gen"
	"secureview/internal/privacy"
	sv "secureview/internal/secureview"
	"secureview/internal/spec"
)

func FuzzDeriveGenerated(f *testing.F) {
	for _, cl := range gen.Classes() {
		it, err := gen.New(cl.Cfg, 1)
		if err != nil {
			f.Fatal(err)
		}
		doc, err := spec.FromWorkflow(it.W)
		if err != nil {
			f.Fatal(err)
		}
		doc.Gamma = it.Gamma
		doc.Costs = it.Costs
		doc.PrivatizeCosts = it.PrivatizeCosts
		raw, err := doc.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := spec.Parse(data)
		if err != nil {
			return
		}
		w, err := doc.Build()
		if err != nil {
			return
		}
		// Deriving enumerates each module's relation and 2^k subsets; keep
		// the fuzzed workflows within the budget the generator guarantees.
		if w.Schema().Len() > 12 {
			return
		}
		for _, m := range w.Modules() {
			if size, ok := m.InputDomainSize(); !ok || size > 256 {
				return
			}
			if m.Arity() > 10 {
				return
			}
		}
		gamma := doc.Gamma
		if gamma == 0 || gamma > 8 {
			gamma = 2
		}
		costs := make(privacy.Costs, len(doc.Costs))
		for a, c := range doc.Costs {
			if c >= 0 && c < 1e12 { // drop NaN/negative/absurd fuzzed costs
				costs[a] = c
			}
		}
		p, err := sv.Derive(w, sv.DeriveOptions{
			Gamma:          gamma,
			Costs:          costs,
			PrivatizeCosts: doc.PrivatizeCosts,
		})
		if err != nil {
			return // infeasible at Γ: legitimate outcome
		}
		if err := p.Validate(sv.Set); err != nil {
			t.Fatalf("derived instance invalid: %v", err)
		}
		sol := sv.Greedy(p, sv.Set)
		if !p.Feasible(sol, sv.Set) {
			t.Fatalf("greedy solution infeasible on derived instance (hidden=%v privatized=%v)",
				sol.Hidden.Sorted(), sol.Privatized.Sorted())
		}
		if c := p.Cost(sol); c < 0 || c != c {
			t.Fatalf("greedy cost %v out of range", c)
		}
	})
}
