package secureview

// Benchmarks regenerating the paper-reproduction experiments (one per
// table in EXPERIMENTS.md; E1..E15 in quick mode) plus micro-benchmarks of
// the core operations. Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"testing"

	"secureview/internal/combopt"
	"secureview/internal/exp"
	"secureview/internal/gen"
	"secureview/internal/module"
	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/reductions"
	"secureview/internal/relation"
	"secureview/internal/search"
	sv "secureview/internal/secureview"
	"secureview/internal/workflow"
	"secureview/internal/worlds"
)

func benchExperiment(b *testing.B, id string) {
	e := exp.Find(id)
	if e == nil {
		b.Fatalf("experiment %s missing", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Run(true)
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1Fig1(b *testing.B)              { benchExperiment(b, "E1") }
func BenchmarkE2DataSupplier(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3Unsat(b *testing.B)             { benchExperiment(b, "E3") }
func BenchmarkE4OracleAdversary(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5Standalone(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6WorldsRatio(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7Assembly(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8CardinalityLP(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9SetLP(b *testing.B)             { benchExperiment(b, "E9") }
func BenchmarkE10BoundedSharing(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11PublicModules(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12GeneralNoSharing(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13GeneralCardinality(b *testing.B) {
	benchExperiment(b, "E13")
}
func BenchmarkE14AssemblyVerify(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15LPAblation(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16PartialLogs(b *testing.B)    { benchExperiment(b, "E16") }
func BenchmarkE17SolverAblation(b *testing.B) { benchExperiment(b, "E17") }

// --- micro-benchmarks of the core operations ---

func BenchmarkSafetyCheckFig1(b *testing.B) {
	mv := privacy.NewModuleView(module.Fig1M1())
	v := relation.NewNameSet("a1", "a3", "a5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, err := mv.IsSafe(v, 4); err != nil || !ok {
			b.Fatal("unexpected unsafe")
		}
	}
}

func BenchmarkStandaloneBruteForceK8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := module.Random("m",
		relation.Bools("x0", "x1", "x2", "x3"),
		relation.Bools("y0", "y1", "y2", "y3"), rng)
	mv := privacy.NewModuleView(m)
	costs := privacy.Uniform(mv.Attrs()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mv.MinCostSafeSubset(costs, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkflowExecution(b *testing.B) {
	w := workflow.Fig1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Execute(relation.Tuple{i & 1, (i >> 1) & 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProvenanceJoin(b *testing.B) {
	m1 := module.Fig1M1().Relation()
	m2 := module.Fig1M2().Relation()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m1.Join(m2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSetExample5(b *testing.B) {
	p := reductions.Example5(8, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sv.ExactSet(p, 1<<22); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyExample5(b *testing.B) {
	p := reductions.Example5(64, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol := sv.Greedy(p, sv.Set)
		if !p.Feasible(sol, sv.Set) {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkSetLPRoundLabelCover(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	lc := combopt.RandomLabelCover(3, 3, 3, 2, 3, rng)
	p := reductions.FromLabelCoverSet(lc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := sv.SetLPRound(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCardinalityLPRoundSetCover(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	sc := combopt.RandomSetCover(8, 6, 0.35, rng)
	p := reductions.FromSetCoverCardinality(sc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := sv.CardinalityLPRound(p,
			sv.RoundingOptions{Trials: 3, Rng: rand.New(rand.NewSource(int64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorldEnumerationFig1(b *testing.B) {
	w := workflow.Fig1()
	r := w.MustRelation()
	visible := relation.NewNameSet("a1", "a2", "a3", "a5", "a6")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := &worlds.Enumerator{W: w, R: r, Visible: visible}
		if _, err := e.Count(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeriveSetFig1(b *testing.B) {
	w := workflow.Fig1()
	costs := privacy.Uniform(w.Schema().Names()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sv.DeriveSet(w, 2, costs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Scaling micro-benchmarks: the standalone brute force across module
// arities (the O(2^k N²) shape of Lemma 4).
func BenchmarkStandaloneScaling(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(k)))
			nIn := k / 2
			in := make([]string, nIn)
			for i := range in {
				in[i] = fmt.Sprintf("x%d", i)
			}
			out := make([]string, k-nIn)
			for i := range out {
				out[i] = fmt.Sprintf("y%d", i)
			}
			m := module.Random("m", relation.Bools(in...), relation.Bools(out...), rng)
			mv := privacy.NewModuleView(m)
			costs := privacy.Uniform(mv.Attrs()...)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mv.MinCostSafeSubset(costs, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE18PriorSkew(b *testing.B) { benchExperiment(b, "E18") }

func BenchmarkE19Scaling(b *testing.B) { benchExperiment(b, "E19") }

func BenchmarkE20EngineVsNaive(b *testing.B) { benchExperiment(b, "E20") }

func BenchmarkE21CompiledOracle(b *testing.B) { benchExperiment(b, "E21") }

func BenchmarkE22ScenarioDiff(b *testing.B) { benchExperiment(b, "E22") }

func BenchmarkE23ScenarioPerf(b *testing.B) { benchExperiment(b, "E23") }

// BenchmarkGeneratedScenario times the full per-instance pipeline (generate,
// derive, solve with every heuristic and the exact solver) on one fixed
// instance per topology class — the unit of work the E22 differential suite
// and the scenario property tests repeat hundreds of times.
func BenchmarkGeneratedScenario(b *testing.B) {
	for _, cl := range gen.Classes() {
		cl := cl
		b.Run(cl.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				it, err := gen.New(cl.Cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				p, err := it.Derive()
				if err != nil {
					continue // class infeasible at Γ for this seed
				}
				if sol := sv.Greedy(p, sv.Set); !p.Feasible(sol, sv.Set) {
					b.Fatal("greedy infeasible")
				}
				if _, _, err := sv.SetLPRound(p); err != nil {
					b.Fatal(err)
				}
				if _, err := sv.ExactSet(p, 1<<22); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- the internal/search engine vs the naive loop on large instances ---

// BenchmarkStandaloneSearch compares the naive 2^k loop against the pruned
// parallel engine — with the interpreted Lemma 4 oracle and with the
// compiled integer-coded oracle of internal/oracle — on k=14..18 instances
// (the exp.SearchBenchInstance shape). Identical optimal hidden sets and
// costs across variants are asserted by BenchmarkCompiledOracle and the
// property tests in internal/oracle. Run with:
//
//	go test -bench 'StandaloneSearch' -benchtime=1x
func BenchmarkStandaloneSearch(b *testing.B) {
	for _, k := range []int{14, 16, 18} {
		mv, costs, gamma := exp.SearchBenchInstance(k)
		sp, err := search.NewSpace(mv.Attrs(), costs.Of)
		if err != nil {
			b.Fatal(err)
		}
		interpreted := func(v search.Mask) (bool, error) { return mv.IsSafe(sp.NameSet(v), gamma) }
		comp, err := mv.Compile()
		if err != nil {
			b.Fatal(err)
		}
		compiled := func(v search.Mask) (bool, error) { return comp.IsSafe(oracle.Mask(v), gamma), nil }
		// The compiled row runs the full tentpole configuration: batched
		// oracle passes plus equivalence-class collapsing (a no-op on this
		// instance's distinct attributes, wired anyway for realism).
		compiledOpts := privacy.CompiledSearchOptions(comp, costs, gamma, search.Options{})
		b.Run(fmt.Sprintf("naive/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sp.NaiveMinCost(interpreted)
				if err != nil || !res.Found {
					b.Fatalf("err=%v found=%v", err, res.Found)
				}
			}
		})
		b.Run(fmt.Sprintf("engine/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sp.MinCost(interpreted, search.Options{})
				if err != nil || !res.Found {
					b.Fatalf("err=%v found=%v", err, res.Found)
				}
			}
		})
		b.Run(fmt.Sprintf("compiled/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sp.MinCost(compiled, compiledOpts)
				if err != nil || !res.Found {
					b.Fatalf("err=%v found=%v", err, res.Found)
				}
			}
		})
	}
}

// BenchmarkCompiledOracle is the acceptance benchmark of ISSUE 2: the pruned
// parallel engine driven by the interpreted Lemma 4 oracle vs the same
// engine sharing one compiled integer-coded oracle across its worker pool,
// on oracle-bound searches at k=14–18. The two paths must find byte-
// identical optimal hidden sets and costs (asserted every iteration).
func BenchmarkCompiledOracle(b *testing.B) {
	for _, k := range []int{14, 16, 18} {
		mv, costs, gamma := exp.SearchBenchInstance(k)
		sp, err := search.NewSpace(mv.Attrs(), costs.Of)
		if err != nil {
			b.Fatal(err)
		}
		interpreted := func(v search.Mask) (bool, error) { return mv.IsSafe(sp.NameSet(v), gamma) }
		comp, err := mv.Compile()
		if err != nil {
			b.Fatal(err)
		}
		compiled := func(v search.Mask) (bool, error) { return comp.IsSafe(oracle.Mask(v), gamma), nil }
		want, err := sp.MinCost(interpreted, search.Options{})
		if err != nil || !want.Found {
			b.Fatalf("err=%v found=%v", err, want.Found)
		}
		b.Run(fmt.Sprintf("interpreted/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sp.MinCost(interpreted, search.Options{})
				if err != nil || !res.Found {
					b.Fatalf("err=%v found=%v", err, res.Found)
				}
			}
		})
		b.Run(fmt.Sprintf("compiled/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			opts := privacy.CompiledSearchOptions(comp, costs, gamma, search.Options{})
			for i := 0; i < b.N; i++ {
				res, err := sp.MinCost(compiled, opts)
				if err != nil || !res.Found {
					b.Fatalf("err=%v found=%v", err, res.Found)
				}
				if res.Hidden != want.Hidden || res.Cost != want.Cost {
					b.Fatalf("compiled optimum (hidden=%b cost=%g) != interpreted (hidden=%b cost=%g)",
						res.Hidden, res.Cost, want.Hidden, want.Cost)
				}
			}
		})
	}
}
