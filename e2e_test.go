package secureview

// End-to-end integration tests: concrete workflows through derivation,
// optimization, publication and (on tiny instances) exhaustive possible-
// world verification of the workflow-privacy guarantee.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"secureview/internal/gen"
	"secureview/internal/gen/diff"
	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/provenance"
	"secureview/internal/relation"
	sv "secureview/internal/secureview"
	"secureview/internal/spec"
	"secureview/internal/workflow"
	"secureview/internal/worlds"
)

// TestEndToEndFig1AllSolvers runs the full pipeline on the paper's Figure 1
// workflow with every solver, audits the views, and verifies workflow
// privacy by exhaustive world enumeration whenever the initial inputs stay
// visible.
func TestEndToEndFig1AllSolvers(t *testing.T) {
	w := workflow.Fig1()
	store := provenance.NewStore(w)
	if err := store.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	costs := privacy.Uniform(w.Schema().Names()...)
	for _, solver := range []provenance.Solver{
		provenance.SolverExact, provenance.SolverGreedy, provenance.SolverLP,
	} {
		t.Run(solver.String(), func(t *testing.T) {
			view, err := store.SecureView(2, costs, nil, solver)
			if err != nil {
				t.Fatal(err)
			}
			if err := view.VerifyStandalone(); err != nil {
				t.Fatal(err)
			}
			// Exhaustive semantic verification (Definition 5) when the
			// enumerator's precondition holds.
			initialVisible := true
			for _, a := range w.InitialInputNames() {
				if !view.Visible.Has(a) {
					initialVisible = false
				}
			}
			if !initialVisible {
				t.Skip("initial input hidden; enumeration precondition not met")
			}
			e := &worlds.Enumerator{W: w, R: store.Relation(), Visible: view.Visible}
			for _, m := range w.Modules() {
				ok, err := e.IsWorkflowPrivate(m.Name(), 2)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Errorf("solver %v: module %s not 2-workflow-private", solver, m.Name())
				}
			}
		})
	}
}

// TestEndToEndRandomWorkflows drives random layered workflows through
// derivation and the exact solver, then verifies every private module's
// standalone guarantee on the published view.
func TestEndToEndRandomWorkflows(t *testing.T) {
	layered := gen.Config{Topology: gen.Layered, Layers: 2, Width: 2, FanIn: 2, FanOut: 1, Share: 2}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			it, err := gen.New(layered, seed)
			if err != nil {
				t.Fatal(err)
			}
			w, costs := it.W, it.Costs
			p, err := sv.Derive(w, sv.DeriveOptions{Gamma: 2, Costs: costs, Parallel: true})
			if err != nil {
				t.Skipf("no safe subsets at Γ=2: %v", err)
			}
			sol, err := sv.ExactSet(p, 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range w.Modules() {
				mv := privacy.NewModuleView(m)
				vis := relation.NewNameSet(mv.Attrs()...).Minus(sol.Hidden)
				safe, err := mv.IsSafe(vis, 2)
				if err != nil || !safe {
					t.Errorf("module %s unsafe under optimal view", m.Name())
				}
			}
		})
	}
}

// TestEndToEndGeneratedScenarios drives every canonical generated topology
// class (internal/gen) through the full cross-solver differential harness
// (internal/gen/diff): solver agreement, approximation bounds, compiled-
// vs-interpreted oracle agreement and — on the small instances —
// exhaustive possible-world verification. Zero violations expected.
func TestEndToEndGeneratedScenarios(t *testing.T) {
	seeds := int64(4)
	if testing.Short() {
		seeds = 1
	}
	for _, cl := range gen.Classes() {
		cl := cl
		t.Run(cl.Name, func(t *testing.T) {
			var results []diff.Result
			for seed := int64(0); seed < seeds; seed++ {
				it, err := gen.New(cl.Cfg, seed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				results = append(results, diff.CheckInstance(it, diff.Options{}))
			}
			total := diff.Merge(results...)
			for _, v := range total.Violations {
				t.Error(v)
			}
			if total.Exact == 0 {
				t.Errorf("class %s: no instance anchored by an exact optimum", cl.Name)
			}
		})
	}
}

// TestSpecToViewPipeline parses a workflow spec, publishes a view, and
// checks the export leaks nothing hidden.
func TestSpecToViewPipeline(t *testing.T) {
	doc, err := spec.FromWorkflow(workflow.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	doc.Gamma = 2
	raw, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := spec.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	w, err := parsed.Build()
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore(w)
	if err := store.RecordAll(1 << 10); err != nil {
		t.Fatal(err)
	}
	view, err := store.SecureView(2, privacy.Uniform(w.Schema().Names()...), nil, provenance.SolverExact)
	if err != nil {
		t.Fatal(err)
	}
	export, err := view.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var deserialized map[string]any
	if err := json.Unmarshal(export, &deserialized); err != nil {
		t.Fatal(err)
	}
	for _, h := range view.HiddenSorted() {
		if strings.Contains(string(export), `"`+h+`"`) {
			t.Errorf("hidden attribute %q in export", h)
		}
	}
}

// Property: for random 2-module chains, the LP-rounded view is never
// cheaper than the exact one and both satisfy all standalone guarantees.
func TestQuickEndToEndSolverOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := module.Random("m1", relation.Bools("x1", "x2"), relation.Bools("u1", "u2"), rng)
		m2 := module.Random("m2", relation.Bools("u1", "u2"), relation.Bools("v1", "v2"), rng)
		w, err := workflow.New("chain", m1, m2)
		if err != nil {
			return false
		}
		store := provenance.NewStore(w)
		if err := store.RecordAll(1 << 10); err != nil {
			return false
		}
		costs := privacy.Uniform(w.Schema().Names()...)
		exact, err := store.SecureView(2, costs, nil, provenance.SolverExact)
		if err != nil {
			return true // no safe subset for this random module; fine
		}
		lp, err := store.SecureView(2, costs, nil, provenance.SolverLP)
		if err != nil {
			return false
		}
		greedy, err := store.SecureView(2, costs, nil, provenance.SolverGreedy)
		if err != nil {
			return false
		}
		return exact.Cost <= lp.Cost+1e-9 && exact.Cost <= greedy.Cost+1e-9 &&
			exact.VerifyStandalone() == nil &&
			lp.VerifyStandalone() == nil &&
			greedy.VerifyStandalone() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
