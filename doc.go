// Package secureview is a Go reproduction of "Provenance Views for Module
// Privacy" (Davidson, Khanna, Milo, Panigrahi, Roy — PODS 2011): a library
// for publishing provenance views of scientific workflows that keep the
// input/output behaviour of proprietary modules Γ-private, together with
// the paper's optimization algorithms, lower-bound constructions, and an
// experiment harness reproducing every theorem, example and figure.
//
// Layout:
//
//	internal/relation    finite relations, projections, joins, FDs
//	internal/module      modules as finite functions I → O
//	internal/workflow    DAG wiring, execution, provenance relations
//	internal/provenance  execution store and privacy-preserving views
//	internal/privacy     Γ-standalone-privacy (section 3, appendix A)
//	internal/oracle      compiled integer-coded safety oracle: relations
//	                     lowered once to uint64 row codes, each Lemma 4 test
//	                     a few array/bitset ops — compile once per search,
//	                     share the read-only result across the worker pool
//	internal/search      bitset subset-search engine: Proposition 1 pruning,
//	                     cost-ordered exploration, worker pool, memoized
//	                     oracles; warm starts — a finished run exports its
//	                     domination frontiers, verdict memo and incumbent as
//	                     a Frontier, re-imported via Options.Resume (sound
//	                     across cost-only edits: verdicts are cost-free)
//	internal/worlds      possible-world semantics, FLIP, sharded parallel
//	                     enumeration with bitset OUT sets
//	internal/secureview  the Secure-View optimization (sections 4–5);
//	                     context-cancellable exact/BB/greedy/LP solvers with
//	                     the typed ErrNodeBudget budget sentinel
//	internal/solve       unified solver layer: Solver registry (exact, bb,
//	                     engine, greedy, lp, approx-setcover,
//	                     approx-labelcover, portfolio) with declared
//	                     Capabilities, uniform Options and bound-certified
//	                     Results, fingerprint-keyed Session caches (derived
//	                     problems, compiled oracle tables, warm-start
//	                     frontiers; length-prefixed collision-proof hashing,
//	                     size-accounted LRU eviction, delta derivation
//	                     re-costing cached problems on cost-only re-derives)
//	                     shared across goroutines, SolveBatch
//	                     worker-pool front-end with per-job deadlines; every
//	                     solver observes ctx within one pruning epoch; the
//	                     portfolio meta-solver races all applicable solvers
//	                     under one context and cancels the losers;
//	                     Session.Snapshot / RestoreSession serialize the hot
//	                     state through internal/wire for cold-start-free
//	                     process restarts
//	internal/wire        versioned, checksummed binary envelope (magic +
//	                     version + length + CRC-32C) under every snapshot;
//	                     Open rejects corrupt, truncated or version-bumped
//	                     payloads so restore degrades instead of misreading
//	internal/ring        consistent-hash ring (static membership, virtual
//	                     nodes) assigning request fingerprints to replicas
//	                     in shard mode
//	internal/load        mixed-workload generator for the serving path:
//	                     solves, batches and warm-start edit chains with
//	                     deterministic per-worker streams, reporting
//	                     p50/p99/max latency, throughput and error/429
//	                     counts
//	internal/server      HTTP/JSON front-end over the solve registry:
//	                     bounded admission (429 on overload), per-request
//	                     deadlines mapped to solve.Options.Timeout (206
//	                     partial incumbents on expiry), batch endpoint over
//	                     SolveBatch, spec- and generated-(class, seed)
//	                     request forms, byte-capped shared Session,
//	                     fingerprint/base warm-start chaining for edit loops;
//	                     session snapshot/restore (periodic + on-SIGTERM,
//	                     restore-on-boot gated by /readyz) and a sharded
//	                     serving mode proxying each solve to the replica
//	                     owning its structural fingerprint on the ring
//	internal/lp          two-phase simplex (substrate)
//	internal/sat         CNF + DPLL (substrate for Theorem 2)
//	internal/combopt     set/vertex/label cover: weighted instances,
//	                     context-cancellable budgeted greedy/exact solvers
//	                     with the typed ErrBudget sentinel
//	internal/reductions  the hardness constructions as generators, plus the
//	                     forward reductions ToSetCover/ToLabelCover with
//	                     solution pull-back and LP/charging lower bounds —
//	                     the engine of the certified approximation tier
//	internal/gen         deterministic seed-driven scenario generator:
//	                     chain/tree/layered topologies, function kinds,
//	                     cost models, abstract instances (including the
//	                     mega-* classes with hundreds of modules that only
//	                     the approximation tier can solve); byte-identical
//	                     reproduction per (Config, seed); the canonical
//	                     InstanceRef pipeline resolving class+seed, spec
//	                     documents, provenance-CSV logs (partial-log
//	                     semantics) and corpus IDs through one function
//	internal/gen/corpus  committed hard-instance corpus (fingerprint-pinned
//	                     configs the adversarial miner found to defeat the
//	                     engine's pruning, replayed by CI) plus the
//	                     deterministic hill-climb miner itself
//	internal/gen/diff    cross-solver differential harness: exact ≡ BB ≡
//	                     engine, greedy/LP feasibility + approximation
//	                     bounds, compiled ≡ interpreted oracle, exhaustive
//	                     possible-world verification on small instances
//	internal/exp         experiment registry E1–E23
//
// Entry points: cmd/secureview (solve instances), cmd/secureview-serve
// (serve the solver layer over HTTP, optionally snapshotted and sharded),
// cmd/secureview-load (drive a mixed workload against a running server),
// cmd/secureview-mine (mine hard instances into the committed corpus),
// cmd/secureview-bench (reproduce the experiment tables), cmd/worlds
// (world counting), and the runnable programs under examples/. See
// DESIGN.md and EXPERIMENTS.md.
package secureview
