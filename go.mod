module secureview

go 1.24
