// Command secureview-load drives a mixed workload against a running
// secureview-serve instance and prints a JSON report: latency percentiles
// (p50/p99/max), throughput, and error/429 counts. The mix covers single
// solves of generated scenarios, batches, and warm-start edit chains —
// see internal/load for the exact shapes.
//
// Usage:
//
//	secureview-load -url http://localhost:8080 -duration 10s -workers 8
//
// The exit code is 0 when the run completed with zero errors (429
// rejections are load shedding, not errors) and 1 otherwise, so CI smoke
// steps can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"secureview/internal/load"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "base URL of the server under load")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		workers  = flag.Int("workers", 4, "concurrent client goroutines")
		seed     = flag.Int64("seed", 1, "workload shuffle seed (same seed = same request streams)")
		timeout  = flag.Duration("request-timeout", 30*time.Second, "per-request client timeout")
	)
	flag.Parse()

	rep, err := load.Run(load.Config{
		BaseURL:  *url,
		Duration: *duration,
		Workers:  *workers,
		Seed:     *seed,
		Client:   &http.Client{Timeout: *timeout},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "secureview-load: %v\n", err)
		os.Exit(2)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "secureview-load: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(string(out))
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "secureview-load: %d request errors\n", rep.Errors)
		os.Exit(1)
	}
}
