package main

// Edit-loop rows: the interactive re-solve trajectory the warm-start tier
// (search.Options.Resume / solve Session warm cache) exists for. A chained
// loop of single-attribute cost edits is solved twice over the standard
// oracle-bound instance — cold (every edit from scratch) and warm (every
// edit resuming the previous solve's exported frontier) — and the p50
// per-edit latency of each mode is committed as its own row. Warm results
// must match the cold ones bit for bit at every edit; any divergence fails
// the run, so a committed baseline can never contain an unsound speedup.

import (
	"fmt"
	"sort"
	"time"

	"secureview/internal/exp"
	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/search"
)

// editFactors scales one attribute's cost per edit; the mix of growth and
// shrink factors moves the optimum around instead of pinning it.
var editFactors = [...]float64{1.6, 0.7, 1.3, 0.55, 1.9, 0.8, 1.45, 0.65}

// editLoopP50 runs the chained edit loop once in the given mode and returns
// the median per-edit solve latency plus the final edit's result.
func editLoopP50(sp *search.Space, comp *oracle.Compiled, costs privacy.Costs,
	gamma uint64, warm bool) (time.Duration, search.Result, error) {
	compiled := func(v search.Mask) (bool, error) { return comp.IsSafe(oracle.Mask(v), gamma), nil }
	attrs := sp.Attrs()
	cur := make(privacy.Costs, len(costs))
	for a, c := range costs {
		cur[a] = c
	}

	var frontier *search.Frontier
	if warm {
		base, err := sp.MinCost(compiled, privacy.CompiledSearchOptions(comp, cur, gamma, search.Options{}))
		if err != nil {
			return 0, search.Result{}, err
		}
		if base.Frontier == nil {
			return 0, search.Result{}, fmt.Errorf("edit-loop: base solve exported no frontier")
		}
		frontier = base.Frontier
	}

	durations := make([]time.Duration, 0, len(editFactors))
	var last search.Result
	for e, f := range editFactors {
		cur[attrs[(e*5)%len(attrs)]] *= f
		spE := sp.WithCosts(cur.Of)
		opts := privacy.CompiledSearchOptions(comp, cur, gamma, search.Options{Resume: frontier})
		start := time.Now()
		res, err := spE.MinCost(compiled, opts)
		d := time.Since(start)
		if err != nil {
			return 0, search.Result{}, fmt.Errorf("edit-loop edit %d: %w", e, err)
		}
		if warm {
			if !res.Stats.Resumed {
				return 0, search.Result{}, fmt.Errorf("edit-loop edit %d: warm solve did not resume", e)
			}
			frontier = res.Frontier
		}
		durations = append(durations, d)
		last = res
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return durations[len(durations)/2], last, nil
}

// editLoopResults measures both modes per k, cross-checks the final optima
// bit for bit, and returns the cold/warm rows (best p50 over reps).
func editLoopResults(quick bool, repsOverride int) ([]benchResult, error) {
	ks := []int{14, 16, 18}
	reps := 3
	if quick {
		ks = []int{12, 14}
		reps = 1
	}
	if repsOverride > 0 {
		reps = repsOverride
	}
	var results []benchResult
	for _, k := range ks {
		mv, costs, gamma := exp.SearchBenchInstance(k)
		sp, err := search.NewSpace(mv.Attrs(), costs.Of)
		if err != nil {
			return nil, err
		}
		comp, err := mv.Compile()
		if err != nil {
			return nil, err
		}
		modes := []struct {
			name string
			warm bool
		}{{"cold", false}, {"warm", true}}
		var reference search.Result
		for mi, mode := range modes {
			best := time.Duration(1 << 62)
			var last search.Result
			for i := 0; i < reps; i++ {
				p50, res, err := editLoopP50(sp, comp, costs, gamma, mode.warm)
				if err != nil {
					return nil, fmt.Errorf("edit-loop/%s k=%d: %w", mode.name, k, err)
				}
				if p50 < best {
					best = p50
				}
				last = res
			}
			if mi == 0 {
				reference = last
			} else if last.Found != reference.Found || last.Hidden != reference.Hidden || last.Cost != reference.Cost {
				return nil, fmt.Errorf("edit-loop k=%d: warm optimum (found=%v hidden=%b cost=%g) diverges from cold (found=%v hidden=%b cost=%g)",
					k, last.Found, last.Hidden, last.Cost, reference.Found, reference.Hidden, reference.Cost)
			}
			results = append(results, benchResult{
				Name:         "edit-loop/" + mode.name,
				K:            k,
				Gamma:        gamma,
				NsPerOp:      best.Nanoseconds(),
				Checked:      last.Stats.Checked,
				Pruned:       last.Stats.Pruned,
				Cost:         last.Cost,
				Hidden:       sp.NameSet(last.Hidden).Sorted(),
				OraclePasses: last.Stats.OraclePasses,
				BatchSize:    last.Stats.BatchSize,
			})
		}
	}
	return results, nil
}
