// Command secureview-bench runs the reproduction experiments E1–E23 (see
// DESIGN.md section 4 and EXPERIMENTS.md) and prints their result tables.
//
// Usage:
//
//	secureview-bench            # run everything, full parameter sweeps
//	secureview-bench -quick     # trimmed sweeps (seconds, used in CI)
//	secureview-bench -exp E8    # a single experiment
//	secureview-bench -exp E20 -parallel 8
//	secureview-bench -exp E22 -quick                 # generated-scenario differential suite
//	secureview-bench -benchjson BENCH_results.json   # machine-readable perf trajectory
//	                                                 # (standalone-search/* and scenario/* rows)
package main

import (
	"flag"
	"fmt"
	"os"

	"secureview/internal/exp"
	"secureview/internal/search"
)

func main() {
	var (
		id        = flag.String("exp", "", "run a single experiment (E1..E23)")
		quick     = flag.Bool("quick", false, "trim parameter sweeps")
		parallel  = flag.Int("parallel", 0, "subset-search worker-pool size (0 = GOMAXPROCS)")
		benchjson = flag.String("benchjson", "", "write machine-readable benchmark results to this JSON file and exit")
	)
	flag.Parse()
	search.SetDefaultParallelism(*parallel)

	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "secureview-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchjson)
		return
	}

	experiments := exp.Registry()
	if *id != "" {
		e := exp.Find(*id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "secureview-bench: unknown experiment %q\n", *id)
			os.Exit(2)
		}
		experiments = []exp.Experiment{*e}
	}
	for _, e := range experiments {
		fmt.Printf("# %s — %s\n\n", e.ID, e.Title)
		for _, tab := range e.Run(*quick) {
			fmt.Println(tab.String())
		}
	}
}
