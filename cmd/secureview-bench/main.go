// Command secureview-bench runs the reproduction experiments E1–E23 (see
// DESIGN.md section 4 and EXPERIMENTS.md) and prints their result tables.
//
// Usage:
//
//	secureview-bench            # run everything, full parameter sweeps
//	secureview-bench -quick     # trimmed sweeps (seconds, used in CI)
//	secureview-bench -exp E8    # a single experiment
//	secureview-bench -exp E20 -parallel 8
//	secureview-bench -exp E22 -quick                 # generated-scenario differential suite
//	secureview-bench -benchjson BENCH_results.json   # machine-readable perf trajectory
//	                                                 # (standalone-search/* and scenario/* rows)
//	secureview-bench -benchgate BENCH_results.json -quick   # CI perf gate: fail on >35%
//	                                                        # calibrated regression of gated rows
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"secureview/internal/exp"
	"secureview/internal/search"
)

func main() {
	var (
		id        = flag.String("exp", "", "run a single experiment (E1..E23)")
		quick     = flag.Bool("quick", false, "trim parameter sweeps")
		parallel  = flag.Int("parallel", 0, "subset-search worker-pool size (0 = GOMAXPROCS)")
		benchjson = flag.String("benchjson", "", "write machine-readable benchmark results to this JSON file and exit")
		benchgate = flag.String("benchgate", "", "re-measure and fail if gated rows regress vs this baseline JSON (CI perf gate)")
		timeout   = flag.Duration("timeout", 0, "overall deadline (0 = none); on expiry the experiments completed so far stand as partial results")
	)
	flag.Parse()
	search.SetDefaultParallelism(*parallel)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *benchgate != "" {
		if err := runBenchGate(*benchgate, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "secureview-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchjson != "" {
		// The writer only lands the file at the very end, so there is no
		// partial output to keep: an expired deadline simply abandons the run.
		done := make(chan error, 1)
		go func() { done <- writeBenchJSON(*benchjson, *quick) }()
		select {
		case err := <-done:
			if err != nil {
				fmt.Fprintf(os.Stderr, "secureview-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *benchjson)
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "secureview-bench: TIMED OUT after %v — %s not written\n", *timeout, *benchjson)
			os.Exit(3)
		}
		return
	}

	experiments := exp.Registry()
	if *id != "" {
		e := exp.Find(*id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "secureview-bench: unknown experiment %q\n", *id)
			os.Exit(2)
		}
		experiments = []exp.Experiment{*e}
	}
	for i, e := range experiments {
		fmt.Printf("# %s — %s\n\n", e.ID, e.Title)
		// Each experiment runs on its own goroutine so an expired deadline
		// surfaces between (not inside) experiments with a clean partial
		// message; the tables already printed are complete.
		done := make(chan []*exp.Table, 1)
		go func() { done <- e.Run(*quick) }()
		select {
		case tables := <-done:
			for _, tab := range tables {
				fmt.Println(tab.String())
			}
		case <-ctx.Done():
			fmt.Printf("TIMED OUT after %v — completed %d/%d experiments; tables above are complete partial results\n",
				*timeout, i, len(experiments))
			os.Exit(3)
		}
	}
}
