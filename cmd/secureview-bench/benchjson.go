package main

// The -benchjson mode bootstraps the perf trajectory: it times the
// standalone Secure-View search on the standard oracle-bound instances
// (exp.SearchBenchInstance) across three variants — the naive 2^k loop, the
// pruned parallel engine with the interpreted Lemma 4 oracle, and the same
// engine with the compiled integer-coded oracle — and writes the numbers as
// JSON so future changes can be compared against a committed baseline
// instead of eyeballed log output. Optimal costs and hidden sets must agree
// across variants; a mismatch fails the run.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"secureview/internal/exp"
	"secureview/internal/oracle"
	"secureview/internal/search"
)

// benchResult is one (variant, k) measurement.
type benchResult struct {
	Name    string   `json:"name"` // standalone-search/<variant>
	K       int      `json:"k"`
	Gamma   uint64   `json:"gamma"`
	NsPerOp int64    `json:"ns_per_op"` // best of reps
	Checked int      `json:"checked"`
	Pruned  int      `json:"pruned"`
	Cost    float64  `json:"cost"`
	Hidden  []string `json:"hidden"`
}

// timeBest runs fn reps times and returns the fastest wall-clock run.
func timeBest(reps int, fn func() (search.Result, error)) (search.Result, time.Duration, error) {
	var best time.Duration = 1 << 62
	var res search.Result
	for i := 0; i < reps; i++ {
		start := time.Now()
		r, err := fn()
		d := time.Since(start)
		if err != nil {
			return search.Result{}, 0, err
		}
		if d < best {
			best = d
			res = r
		}
	}
	return res, best, nil
}

func writeBenchJSON(path string, quick bool) error {
	ks := []int{14, 16, 18}
	reps := 3
	if quick {
		ks = []int{12, 14}
		reps = 1
	}
	var results []benchResult
	for _, k := range ks {
		mv, costs, gamma := exp.SearchBenchInstance(k)
		sp, err := search.NewSpace(mv.Attrs(), costs.Of)
		if err != nil {
			return err
		}
		interpreted := func(v search.Mask) (bool, error) { return mv.IsSafe(sp.NameSet(v), gamma) }
		comp, err := mv.Compile()
		if err != nil {
			return err
		}
		compiled := func(v search.Mask) (bool, error) { return comp.IsSafe(oracle.Mask(v), gamma), nil }

		variants := []struct {
			name string
			run  func() (search.Result, error)
		}{
			{"naive", func() (search.Result, error) { return sp.NaiveMinCost(interpreted) }},
			{"engine-interpreted", func() (search.Result, error) { return sp.MinCost(interpreted, search.Options{}) }},
			{"engine-compiled", func() (search.Result, error) { return sp.MinCost(compiled, search.Options{}) }},
		}
		var reference search.Result
		for vi, v := range variants {
			res, best, err := timeBest(reps, v.run)
			if err != nil {
				return fmt.Errorf("%s k=%d: %w", v.name, k, err)
			}
			if !res.Found {
				return fmt.Errorf("%s k=%d: no safe subset found", v.name, k)
			}
			switch vi {
			case 0:
				// The naive loop breaks equal-cost ties by numeric mask order,
				// not the engine's lexicographic rule, so only its optimal
				// COST anchors the comparison.
				reference = res
			case 1:
				if res.Cost != reference.Cost {
					return fmt.Errorf("%s k=%d: optimal cost %g diverges from naive %g",
						v.name, k, res.Cost, reference.Cost)
				}
				reference = res // engine runs must agree exactly from here on
			default:
				if res.Cost != reference.Cost || res.Hidden != reference.Hidden {
					return fmt.Errorf("%s k=%d: optimum (hidden=%b cost=%g) diverges from engine-interpreted (hidden=%b cost=%g)",
						v.name, k, res.Hidden, res.Cost, reference.Hidden, reference.Cost)
				}
			}
			results = append(results, benchResult{
				Name:    "standalone-search/" + v.name,
				K:       k,
				Gamma:   gamma,
				NsPerOp: best.Nanoseconds(),
				Checked: res.Stats.Checked,
				Pruned:  res.Stats.Pruned,
				Cost:    res.Cost,
				Hidden:  sp.NameSet(res.Hidden).Sorted(),
			})
		}
	}
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
