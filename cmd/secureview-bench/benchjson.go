package main

// The -benchjson mode bootstraps the perf trajectory: it times the
// standalone Secure-View search on the standard oracle-bound instances
// (exp.SearchBenchInstance) across three variants — the naive 2^k loop, the
// pruned parallel engine with the interpreted Lemma 4 oracle, and the same
// engine with the compiled integer-coded oracle — and writes the numbers as
// JSON so future changes can be compared against a committed baseline
// instead of eyeballed log output. Optimal costs and hidden sets must agree
// across variants; a mismatch fails the run.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"secureview/internal/exp"
	"secureview/internal/gen"
	"secureview/internal/gen/corpus"
	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/search"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// benchResult is one (variant, k) measurement.
type benchResult struct {
	Name    string   `json:"name"` // standalone-search/<variant>
	K       int      `json:"k"`
	Gamma   uint64   `json:"gamma"`
	NsPerOp int64    `json:"ns_per_op"` // best of reps
	Checked int      `json:"checked"`
	Pruned  int      `json:"pruned"`
	Cost    float64  `json:"cost"`
	Hidden  []string `json:"hidden"`

	// Oracle-pass accounting (engine rows only): how many oracle
	// invocations the run issued and the largest number of masks answered
	// by one of them. Per-mask oracles report OraclePasses == Checked and
	// BatchSize 1; the batched compiled path amortizes many masks per pass.
	OraclePasses int `json:"oracle_passes,omitempty"`
	BatchSize    int `json:"batch_size,omitempty"`
}

// timeBest runs fn reps times and returns the fastest wall-clock run.
func timeBest(reps int, fn func() (search.Result, error)) (search.Result, time.Duration, error) {
	var best time.Duration = 1 << 62
	var res search.Result
	for i := 0; i < reps; i++ {
		start := time.Now()
		r, err := fn()
		d := time.Since(start)
		if err != nil {
			return search.Result{}, 0, err
		}
		if d < best {
			best = d
			res = r
		}
	}
	return res, best, nil
}

// collectBenchResults runs the full measurement sweep — standalone search
// rows, scenario rows, mega rows — and returns them in deterministic order.
// The gate mode (-benchgate) reuses exactly this collection so the numbers
// it compares are the numbers the baseline writer would commit; it passes a
// repsOverride > 0 so even quick sweeps take a best-of-several, since a
// single cold run of a sub-millisecond row is mostly scheduler noise.
func collectBenchResults(quick bool, repsOverride int) ([]benchResult, error) {
	ks := []int{14, 16, 18}
	reps := 3
	if quick {
		ks = []int{12, 14}
		reps = 1
	}
	if repsOverride > 0 {
		reps = repsOverride
	}
	var results []benchResult
	for _, k := range ks {
		mv, costs, gamma := exp.SearchBenchInstance(k)
		sp, err := search.NewSpace(mv.Attrs(), costs.Of)
		if err != nil {
			return nil, err
		}
		interpreted := func(v search.Mask) (bool, error) { return mv.IsSafe(sp.NameSet(v), gamma) }
		comp, err := mv.Compile()
		if err != nil {
			return nil, err
		}
		// The compiled row runs the full production configuration: batched
		// oracle passes plus equal-cost equivalence-class symmetry breaking.
		compiledOpts := privacy.CompiledSearchOptions(comp, costs, gamma, search.Options{})
		compiled := func(v search.Mask) (bool, error) { return comp.IsSafe(oracle.Mask(v), gamma), nil }

		variants := []struct {
			name string
			run  func() (search.Result, error)
		}{
			{"naive", func() (search.Result, error) { return sp.NaiveMinCost(interpreted) }},
			{"engine-interpreted", func() (search.Result, error) { return sp.MinCost(interpreted, search.Options{}) }},
			{"engine-compiled", func() (search.Result, error) { return sp.MinCost(compiled, compiledOpts) }},
		}
		var reference search.Result
		for vi, v := range variants {
			res, best, err := timeBest(reps, v.run)
			if err != nil {
				return nil, fmt.Errorf("%s k=%d: %w", v.name, k, err)
			}
			if !res.Found {
				return nil, fmt.Errorf("%s k=%d: no safe subset found", v.name, k)
			}
			switch vi {
			case 0:
				// The naive loop breaks equal-cost ties by numeric mask order,
				// not the engine's lexicographic rule, so only its optimal
				// COST anchors the comparison.
				reference = res
			case 1:
				if res.Cost != reference.Cost {
					return nil, fmt.Errorf("%s k=%d: optimal cost %g diverges from naive %g",
						v.name, k, res.Cost, reference.Cost)
				}
				reference = res // engine runs must agree exactly from here on
			default:
				if res.Cost != reference.Cost || res.Hidden != reference.Hidden {
					return nil, fmt.Errorf("%s k=%d: optimum (hidden=%b cost=%g) diverges from engine-interpreted (hidden=%b cost=%g)",
						v.name, k, res.Hidden, res.Cost, reference.Hidden, reference.Cost)
				}
			}
			results = append(results, benchResult{
				Name:         "standalone-search/" + v.name,
				K:            k,
				Gamma:        gamma,
				NsPerOp:      best.Nanoseconds(),
				Checked:      res.Stats.Checked,
				Pruned:       res.Stats.Pruned,
				Cost:         res.Cost,
				Hidden:       sp.NameSet(res.Hidden).Sorted(),
				OraclePasses: res.Stats.OraclePasses,
				BatchSize:    res.Stats.BatchSize,
			})
		}
	}
	edits, err := editLoopResults(quick, repsOverride)
	if err != nil {
		return nil, err
	}
	results = append(results, edits...)
	snaps, err := snapshotResults(quick, repsOverride)
	if err != nil {
		return nil, err
	}
	results = append(results, snaps...)
	lg, err := loadgenResults(quick)
	if err != nil {
		return nil, err
	}
	results = append(results, lg...)
	scen, err := scenarioResults(quick, repsOverride)
	if err != nil {
		return nil, err
	}
	results = append(results, scen...)
	corp, err := corpusResults(quick, repsOverride)
	if err != nil {
		return nil, err
	}
	results = append(results, corp...)
	mega, err := megaResults(quick)
	if err != nil {
		return nil, err
	}
	return append(results, mega...), nil
}

// corpusResults times the single-worker engine on the hardest committed
// corpus entries (internal/gen/corpus) — the adversarially mined instances
// that defeat the engine's pruning, exactly the rows where an engine
// regression shows up amplified. Costs are pinned to the exact optimum and
// the deterministic Checked counter must replay the committed value, so a
// baseline row can never go stale silently. Rows are named by corpus ID;
// the perf gate ignores rows absent from its baseline, so re-mining the
// corpus does not invalidate old baselines.
func corpusResults(quick bool, repsOverride int) ([]benchResult, error) {
	reps, n := 3, 5
	if quick {
		reps, n = 1, 2
	}
	if repsOverride > 0 {
		reps = repsOverride
	}
	var results []benchResult
	for i, e := range corpus.Entries() {
		if i >= n {
			break
		}
		if e.Disagree {
			continue
		}
		it, err := e.Instance()
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", e.ID, err)
		}
		p, err := it.Derive()
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", e.ID, err)
		}
		sopts := solve.Options{Variant: secureview.Set, NodeBudget: 1 << 22, MaxAttrs: 16, Workers: 1}
		er, err := solve.Solve(context.Background(), "exact", p, sopts)
		if err != nil {
			return nil, fmt.Errorf("corpus %s exact: %w", e.ID, err)
		}
		best := time.Duration(1 << 62)
		var res solve.Result
		for r := 0; r < reps; r++ {
			start := time.Now()
			got, err := solve.Solve(context.Background(), "engine", p, sopts)
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("corpus %s engine: %w", e.ID, err)
			}
			if d < best {
				best = d
				res = got
			}
		}
		if diff := res.Cost - er.Cost; diff > 1e-9*(1+er.Cost) || -diff > 1e-9*(1+er.Cost) {
			return nil, fmt.Errorf("corpus %s: engine cost %g diverges from exact optimum %g", e.ID, res.Cost, er.Cost)
		}
		if res.Counters.Checked != e.Checked {
			return nil, fmt.Errorf("corpus %s: engine checked %d, committed %d (generator or engine drifted; re-mine)",
				e.ID, res.Counters.Checked, e.Checked)
		}
		results = append(results, benchResult{
			Name: "corpus/" + e.ID + "/engine", K: e.K, Gamma: it.Gamma,
			NsPerOp: best.Nanoseconds(), Cost: res.Cost,
			Hidden:       res.Solution.Hidden.Sorted(),
			Checked:      res.Counters.Checked,
			Pruned:       res.Counters.Pruned,
			OraclePasses: res.Counters.OraclePasses,
			BatchSize:    res.Counters.BatchSize,
		})
	}
	return results, nil
}

func writeBenchJSON(path string, quick bool) error {
	results, err := collectBenchResults(quick, 0)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// scenarioResults extends the trajectory across instance SHAPES: for every
// canonical generated topology class (internal/gen), it times derivation
// and the full solver mix on a fixed-seed instance, so BENCH_results.json
// tracks performance per topology class, not just per k. Solver sanity
// (greedy and the LP rounding never beating the exact optimum) fails the
// run, mirroring the cross-variant checks of the standalone rows.
func scenarioResults(quick bool, repsOverride int) ([]benchResult, error) {
	reps := 3
	if quick {
		reps = 1
	}
	if repsOverride > 0 {
		reps = repsOverride
	}
	var results []benchResult
	for _, cl := range gen.Classes() {
		// The canonical classes derive feasibly on the early seeds; scan a
		// few in case a class tightens later.
		var it *gen.Instance
		var p *secureview.Problem
		for seed := int64(0); seed < 8; seed++ {
			cand, err := gen.New(cl.Cfg, seed)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", cl.Name, err)
			}
			if derived, err := cand.Derive(); err == nil {
				it, p = cand, derived
				break
			}
		}
		if it == nil {
			return nil, fmt.Errorf("scenario %s: no seed derives a feasible instance", cl.Name)
		}
		k := it.W.Schema().Len()

		deriveBest := time.Duration(1 << 62)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := it.Derive(); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", cl.Name, err)
			}
			if d := time.Since(start); d < deriveBest {
				deriveBest = d
			}
		}
		results = append(results, benchResult{
			Name: "scenario/" + cl.Name + "/derive", K: k, Gamma: it.Gamma,
			NsPerOp: deriveBest.Nanoseconds(),
		})

		exact, err := secureview.ExactSet(p, 1<<22)
		if err != nil {
			return nil, fmt.Errorf("scenario %s exact: %w", cl.Name, err)
		}
		optCost := p.Cost(exact)
		solvers := []struct {
			name string
			run  func() (secureview.Solution, error)
		}{
			{"greedy", func() (secureview.Solution, error) { return secureview.Greedy(p, secureview.Set), nil }},
			{"lp", func() (secureview.Solution, error) { s, _, err := secureview.SetLPRound(p); return s, err }},
			{"exact", func() (secureview.Solution, error) { return secureview.ExactSet(p, 1<<22) }},
		}
		for _, s := range solvers {
			best := time.Duration(1 << 62)
			var sol secureview.Solution
			for i := 0; i < reps; i++ {
				start := time.Now()
				got, err := s.run()
				d := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("scenario %s %s: %w", cl.Name, s.name, err)
				}
				if d < best {
					best = d
					sol = got
				}
			}
			cost := p.Cost(sol)
			if cost < optCost-1e-9*(1+optCost) {
				return nil, fmt.Errorf("scenario %s: %s cost %g beats exact optimum %g",
					cl.Name, s.name, cost, optCost)
			}
			results = append(results, benchResult{
				Name: "scenario/" + cl.Name + "/" + s.name, K: k, Gamma: it.Gamma,
				NsPerOp: best.Nanoseconds(), Cost: cost,
				Hidden: sol.Hidden.Sorted(),
			})
		}

		// Registry rows: the exact engine (set variant, when its all-private
		// ≤MaxAttrs capability admits the instance) and the attribute-level
		// branch and bound (cardinality variant). Both are exact, so their
		// costs are pinned to the variant's optimum, not just bounded by it.
		registryRows := []struct {
			name    string
			variant secureview.Variant
		}{
			{"engine", secureview.Set},
			{"bb", secureview.Cardinality},
		}
		for _, row := range registryRows {
			s, ok := solve.Get(row.name)
			if !ok || p.Validate(row.variant) != nil || s.Supports(p, row.variant) != nil {
				continue
			}
			sopts := solve.Options{Variant: row.variant, NodeBudget: 1 << 22, MaxAttrs: 16}
			ref := optCost
			if row.variant == secureview.Cardinality {
				er, err := solve.Solve(context.Background(), "exact", p, sopts)
				if err != nil {
					return nil, fmt.Errorf("scenario %s exact/card: %w", cl.Name, err)
				}
				ref = er.Cost
			}
			best := time.Duration(1 << 62)
			var res solve.Result
			for i := 0; i < reps; i++ {
				start := time.Now()
				got, err := solve.Solve(context.Background(), row.name, p, sopts)
				d := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("scenario %s %s: %w", cl.Name, row.name, err)
				}
				if d < best {
					best = d
					res = got
				}
			}
			if diff := res.Cost - ref; diff > 1e-9*(1+ref) || -diff > 1e-9*(1+ref) {
				return nil, fmt.Errorf("scenario %s: %s cost %g diverges from exact optimum %g",
					cl.Name, row.name, res.Cost, ref)
			}
			results = append(results, benchResult{
				Name: "scenario/" + cl.Name + "/" + row.name, K: k, Gamma: it.Gamma,
				NsPerOp: best.Nanoseconds(), Cost: res.Cost,
				Hidden:       res.Solution.Hidden.Sorted(),
				Checked:      res.Counters.Checked,
				Pruned:       res.Counters.Pruned,
				OraclePasses: res.Counters.OraclePasses,
				BatchSize:    res.Counters.BatchSize,
			})
		}
	}

	// The derived workflow instances carry set requirements only, so the
	// cardinality-variant branch and bound is timed on the canonical
	// abstract classes instead, anchored to the exact cardinality optimum.
	for _, pc := range gen.ProblemClasses() {
		p := gen.Problem(pc.Cfg, 1)
		if p.Validate(secureview.Cardinality) != nil {
			continue
		}
		sopts := solve.Options{Variant: secureview.Cardinality, NodeBudget: 1 << 22, MaxAttrs: 16}
		er, err := solve.Solve(context.Background(), "exact", p, sopts)
		if err != nil {
			return nil, fmt.Errorf("scenario %s exact/card: %w", pc.Name, err)
		}
		best := time.Duration(1 << 62)
		var res solve.Result
		for i := 0; i < reps; i++ {
			start := time.Now()
			got, err := solve.Solve(context.Background(), "bb", p, sopts)
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("scenario %s bb: %w", pc.Name, err)
			}
			if d < best {
				best = d
				res = got
			}
		}
		if diff := res.Cost - er.Cost; diff > 1e-9*(1+er.Cost) || -diff > 1e-9*(1+er.Cost) {
			return nil, fmt.Errorf("scenario %s: bb cost %g diverges from exact optimum %g",
				pc.Name, res.Cost, er.Cost)
		}
		results = append(results, benchResult{
			Name:    "scenario/" + pc.Name + "/bb",
			K:       len(p.UsefulAttributes(secureview.Cardinality)),
			NsPerOp: best.Nanoseconds(), Cost: res.Cost,
			Hidden: res.Solution.Hidden.Sorted(),
		})
	}
	return results, nil
}

// megaResults times the certified approximation tier on the mega problem
// classes — the regime the exact rows cannot enter. Each row's certificate
// is re-verified (cost ≤ Factor × LP) so the committed baseline can never
// contain an uncertified number; the Cost column is the achieved view cost
// and Checked doubles as the reduction size. Hidden sets are omitted: at
// hundreds of attributes they would dominate the JSON.
func megaResults(quick bool) ([]benchResult, error) {
	solvers := []string{"approx-setcover", "approx-labelcover", "portfolio"}
	var results []benchResult
	for _, pc := range gen.MegaProblemClasses() {
		p := gen.Problem(pc.Cfg, 1)
		k := len(p.UsefulAttributes(secureview.Set))
		for _, name := range solvers {
			s, ok := solve.Get(name)
			if !ok || s.Supports(p, secureview.Set) != nil {
				continue
			}
			if quick && name != "portfolio" {
				continue
			}
			start := time.Now()
			res, err := solve.Solve(context.Background(), name, p, solve.Options{Variant: secureview.Set})
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("mega %s %s: %w", pc.Name, name, err)
			}
			if !p.Feasible(res.Solution, secureview.Set) {
				return nil, fmt.Errorf("mega %s: %s solution infeasible", pc.Name, name)
			}
			if res.Bound.Factor <= 0 || res.Bound.LP <= 0 {
				return nil, fmt.Errorf("mega %s: %s returned no certificate", pc.Name, name)
			}
			if gap := solve.CertifiedGap(res); gap > 1e-6*(1+res.Cost) {
				return nil, fmt.Errorf("mega %s: %s cost %g breaks certificate %g×%g",
					pc.Name, name, res.Cost, res.Bound.Factor, res.Bound.LP)
			}
			results = append(results, benchResult{
				Name: "scenario/" + pc.Name + "/" + name, K: k,
				NsPerOp: d.Nanoseconds(), Cost: res.Cost,
				Checked: res.Counters.Checked,
			})
		}
	}
	return results, nil
}
