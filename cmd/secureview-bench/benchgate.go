package main

// The -benchgate mode is the CI perf gate: it re-measures the benchmark
// sweep (quick mode in CI) and compares the perf-gated rows against the
// committed BENCH_results.json baseline. Raw nanoseconds are never compared
// across machines directly — the gate first derives a machine-speed factor
// as the median current/baseline ratio over the NON-gated rows, then fails
// only when a gated row exceeds its calibrated baseline by more than
// gateTolerance. Commits tagged [skip-perf] skip the gate in CI.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// gateTolerance is the allowed calibrated slowdown on a gated row: 35%
// over baseline × machine factor. Wide enough to absorb shared-runner
// noise on top of the median calibration, tight enough to catch a real
// regression of the optimized paths.
const gateTolerance = 0.35

// gateGraceNs is an absolute grace on top of the relative tolerance:
// sub-millisecond rows jitter by whole scheduler quanta, so a percentage
// alone would flag noise. Half a millisecond is invisible at the scale a
// real hot-path regression shows (the gated rows' baselines are ms-range
// where it matters).
const gateGraceNs = 500_000

// gateReps makes the gate's re-measurement a best-of-N even in quick mode;
// a single cold run is dominated by warmup and GC pauses.
const gateReps = 3

// gatedRow reports whether a benchmark row guards the optimized hot paths:
// the compiled standalone search, the engine solver scenario rows, the
// warm-start edit loop (a regression there silently degrades every chained
// re-solve to near-cold latency), the restored-start first solve (the
// snapshot tier's whole point is that a restart does not pay the cold
// derivation again), and the serving-path mixed-workload p50.
//
// The restored first solve is gated as a SAME-RUN ratio against its cold
// sibling (see minRestoredSpeedup) rather than against the calibrated
// baseline: the calibration factor comes from small-k rows whose full-mode
// baseline measurements carry the heap state of the heavy k=18 sweeps in
// the same process, a bias the ~10ms restored row does not share, so an
// absolute comparison flags calibration skew instead of regressions. The
// ratio is the invariant the row exists to pin — a restart must not pay
// the cold derivation again — and is immune to machine speed by
// construction. It still appears here so calibration excludes it and a
// rename cannot silently drop it from the gate.
func gatedRow(name string) bool {
	return name == "standalone-search/engine-compiled" ||
		name == "edit-loop/warm" ||
		name == "snapshot/first-solve/restored" ||
		name == "loadgen/mixed" ||
		(strings.HasPrefix(name, "scenario/") && strings.HasSuffix(name, "/engine"))
}

// rowKey identifies a row across runs; quick mode measures a subset of the
// baseline's (name, k) pairs and the gate compares only the intersection.
func rowKey(r benchResult) string { return fmt.Sprintf("%s/k=%d", r.Name, r.K) }

// runBenchGate measures the current tree and gates it against the baseline
// file. A missing or never-measured gated row is skipped (quick mode does
// not reach every k); having NO comparable gated row at all is an error so
// a renamed row cannot silently disable the gate.
func runBenchGate(baselinePath string, quick bool) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	var baseline []benchResult
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("benchgate: parsing %s: %w", baselinePath, err)
	}
	base := make(map[string]benchResult, len(baseline))
	for _, r := range baseline {
		base[rowKey(r)] = r
	}

	current, err := collectBenchResults(quick, gateReps)
	if err != nil {
		return fmt.Errorf("benchgate: measuring current tree: %w", err)
	}

	// Machine-speed calibration over the non-gated rows shared with the
	// baseline. With no shared rows the factor stays 1 (same-machine
	// comparison is then assumed).
	var ratios []float64
	for _, cur := range current {
		b, ok := base[rowKey(cur)]
		if !ok || gatedRow(cur.Name) || cur.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		ratios = append(ratios, float64(cur.NsPerOp)/float64(b.NsPerOp))
	}
	factor := 1.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		factor = ratios[len(ratios)/2]
		if len(ratios)%2 == 0 {
			factor = (factor + ratios[len(ratios)/2-1]) / 2
		}
	}
	fmt.Printf("benchgate: calibrated over %d shared rows, machine factor %.3f\n", len(ratios), factor)

	curByKey := make(map[string]benchResult, len(current))
	for _, c := range current {
		curByKey[rowKey(c)] = c
	}

	compared := 0
	var failures []string
	for _, cur := range current {
		if !gatedRow(cur.Name) {
			continue
		}
		b, ok := base[rowKey(cur)]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if cur.Name == "snapshot/first-solve/restored" {
			cold, ok := curByKey[fmt.Sprintf("snapshot/first-solve/cold/k=%d", cur.K)]
			if !ok || cold.NsPerOp <= 0 || cur.NsPerOp <= 0 {
				continue
			}
			compared++
			ratio := float64(cold.NsPerOp) / float64(cur.NsPerOp)
			status := "ok"
			if ratio < minRestoredSpeedup {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: restored %d ns is only %.1fx faster than cold %d ns (floor %gx)",
					rowKey(cur), cur.NsPerOp, ratio, cold.NsPerOp, minRestoredSpeedup))
			}
			fmt.Printf("benchgate: %-50s %12d ns  cold %12d ns (%.0fx, floor %gx)  [%s]\n",
				rowKey(cur), cur.NsPerOp, cold.NsPerOp, ratio, minRestoredSpeedup, status)
			continue
		}
		compared++
		allowed := float64(b.NsPerOp)*factor*(1+gateTolerance) + gateGraceNs
		status := "ok"
		if float64(cur.NsPerOp) > allowed {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %d ns vs baseline %d ns (allowed %.0f)",
				rowKey(cur), cur.NsPerOp, b.NsPerOp, allowed))
		}
		fmt.Printf("benchgate: %-50s %12d ns  baseline %12d ns  [%s]\n",
			rowKey(cur), cur.NsPerOp, b.NsPerOp, status)
	}
	if compared == 0 {
		return fmt.Errorf("benchgate: no gated row of the current run exists in %s — gate cannot function", baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchgate: %d gated row(s) regressed beyond %d%%:\n  %s",
			len(failures), int(gateTolerance*100), strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchgate: %d gated rows within tolerance\n", compared)
	return nil
}
