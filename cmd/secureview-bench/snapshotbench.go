package main

// Snapshot rows: what session snapshot/restore buys on the first solve
// after a process start. For each standard benchmark instance the sweep
// measures the first end-to-end solve (derive + engine search) on a cold
// session versus a session restored from a snapshot of a previous
// process's hot state (derived problem + warm frontier) — the restored
// path answers derivation from the cache and resumes the search from the
// carried frontier. Both paths must return the same optimum; in full mode
// the restored first solve must beat cold by at least minRestoredSpeedup,
// so a committed baseline can never claim a restore that does not pay.
//
// The loadgen row commits the mixed-workload p50 against an in-process
// server (see internal/load), so serving-path regressions — admission,
// routing, cache locking — gate alongside the solver hot paths.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"secureview/internal/exp"
	"secureview/internal/load"
	"secureview/internal/secureview"
	"secureview/internal/server"
	"secureview/internal/solve"
)

// minRestoredSpeedup is the floor on cold/restored first-solve latency.
// Restore skips the derivation sweep entirely and resumes the search from
// the carried frontier, so 5× is conservative at k=18 (measured ~700×);
// quick mode's sweep skips the check (k=12 cold solves are small enough
// for scheduler noise to matter) but the -benchgate ratio check enforces
// it on every (cold, restored) pair the gate run measures.
const minRestoredSpeedup = 5.0

func snapshotResults(quick bool, repsOverride int) ([]benchResult, error) {
	ks := []int{14, 16, 18}
	reps := 3
	if quick {
		ks = []int{12, 14}
		reps = 1
	}
	if repsOverride > 0 {
		reps = repsOverride
	}
	ctx := context.Background()
	opts := func() solve.Options { return solve.Options{Variant: secureview.Set} }

	var results []benchResult
	for _, k := range ks {
		w, costs, gamma := exp.SearchBenchWorkflow(k)

		// A previous process's hot state: derive, solve, carry the frontier.
		src := solve.NewSession()
		p, err := src.Problem(ctx, w, secureview.Set, gamma, costs, nil)
		if err != nil {
			return nil, fmt.Errorf("snapshot k=%d: derive: %w", k, err)
		}
		fp := solve.ProblemFingerprint(p, secureview.Set)
		base, err := solve.Solve(ctx, "engine", p, opts())
		if err != nil {
			return nil, fmt.Errorf("snapshot k=%d: base solve: %w", k, err)
		}
		if base.Frontier == nil {
			return nil, fmt.Errorf("snapshot k=%d: base solve exported no frontier", k)
		}
		src.StoreWarm(fp, base.Frontier)
		var buf bytes.Buffer
		if err := src.Snapshot(&buf); err != nil {
			return nil, fmt.Errorf("snapshot k=%d: %w", k, err)
		}
		snap := buf.Bytes()

		coldBest := time.Duration(1 << 62)
		var coldRes solve.Result
		for i := 0; i < reps; i++ {
			sess := solve.NewSession()
			start := time.Now()
			p2, err := sess.Problem(ctx, w, secureview.Set, gamma, costs, nil)
			if err != nil {
				return nil, fmt.Errorf("snapshot k=%d: cold derive: %w", k, err)
			}
			res, err := solve.Solve(ctx, "engine", p2, opts())
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("snapshot k=%d: cold solve: %w", k, err)
			}
			if d < coldBest {
				coldBest = d
				coldRes = res
			}
		}

		restoreBest := time.Duration(1 << 62)
		restoredBest := time.Duration(1 << 62)
		var restoredRes solve.Result
		var entries int
		for i := 0; i < reps; i++ {
			rstart := time.Now()
			sess, n, err := solve.RestoreSession(bytes.NewReader(snap), 0)
			rd := time.Since(rstart)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("snapshot k=%d: restore returned (%d, %v)", k, n, err)
			}
			entries = n
			if rd < restoreBest {
				restoreBest = rd
			}
			start := time.Now()
			p2, err := sess.Problem(ctx, w, secureview.Set, gamma, costs, nil)
			if err != nil {
				return nil, fmt.Errorf("snapshot k=%d: restored derive: %w", k, err)
			}
			o := opts()
			o.Resume = sess.Warm(fp)
			res, err := solve.Solve(ctx, "engine", p2, o)
			d := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("snapshot k=%d: restored solve: %w", k, err)
			}
			if !res.Resumed {
				return nil, fmt.Errorf("snapshot k=%d: restored solve did not resume from the carried frontier", k)
			}
			if d < restoredBest {
				restoredBest = d
				restoredRes = res
			}
		}
		// Optima must agree: same hidden set, cost within float-summation
		// noise (Costs.Sum iterates a map, so the last ulp is order-dependent).
		if !restoredRes.Solution.Hidden.Equal(coldRes.Solution.Hidden) {
			return nil, fmt.Errorf("snapshot k=%d: restored optimum %v diverges from cold %v",
				k, restoredRes.Solution.Hidden.Sorted(), coldRes.Solution.Hidden.Sorted())
		}
		if diff := restoredRes.Cost - coldRes.Cost; diff > 1e-9 || -diff > 1e-9 {
			return nil, fmt.Errorf("snapshot k=%d: restored cost %g diverges from cold %g",
				k, restoredRes.Cost, coldRes.Cost)
		}
		if !quick && float64(coldBest) < minRestoredSpeedup*float64(restoredBest) {
			return nil, fmt.Errorf("snapshot k=%d: restored first solve %v is not %gx faster than cold %v",
				k, restoredBest, minRestoredSpeedup, coldBest)
		}

		results = append(results,
			benchResult{
				Name: "snapshot/first-solve/cold", K: k, Gamma: gamma,
				NsPerOp: coldBest.Nanoseconds(), Cost: coldRes.Cost,
				Checked: coldRes.Counters.Checked, Pruned: coldRes.Counters.Pruned,
			},
			benchResult{
				Name: "snapshot/first-solve/restored", K: k, Gamma: gamma,
				NsPerOp: restoredBest.Nanoseconds(), Cost: restoredRes.Cost,
				Checked: restoredRes.Counters.Checked, Pruned: restoredRes.Counters.Pruned,
			},
			// Checked doubles as the restored entry count; Cost as snapshot KiB.
			benchResult{
				Name: "snapshot/restore", K: k, Gamma: gamma,
				NsPerOp: restoreBest.Nanoseconds(),
				Checked: entries, Cost: float64(len(snap)) / 1024,
			},
		)
	}
	return results, nil
}

// loadgenResults boots an in-process server on a loopback listener, drives
// the mixed workload for a fixed window, and commits the p50 as a row. Any
// request error fails the run — a committed baseline must come from a
// clean window.
func loadgenResults(quick bool) ([]benchResult, error) {
	srv := server.MustNew(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	dur := 2 * time.Second
	if quick {
		dur = time.Second
	}
	rep, err := load.Run(load.Config{
		BaseURL:  "http://" + ln.Addr().String(),
		Duration: dur,
		Workers:  4,
		Seed:     1,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("loadgen: %d request errors in the measurement window", rep.Errors)
	}
	if rep.Requests == 0 || rep.P50Ms <= 0 {
		return nil, fmt.Errorf("loadgen: empty measurement window: %+v", rep)
	}
	return []benchResult{{
		// K records the worker count; Checked the completed requests;
		// Cost the p99 in ms alongside the gated p50 in NsPerOp.
		Name: "loadgen/mixed", K: rep.Workers,
		NsPerOp: int64(rep.P50Ms * 1e6),
		Checked: int(rep.Requests),
		Cost:    rep.P99Ms,
	}}, nil
}
