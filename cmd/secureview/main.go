// Command secureview solves workflow Secure-View instances: given a JSON
// description of modules, requirement lists and costs, it prints the
// minimum-cost (or approximate) set of attributes to hide and public
// modules to privatize so that every private module stays Γ-private.
// Solvers are resolved through the internal/solve registry.
//
// Usage:
//
//	secureview -demo                      # print an example instance
//	secureview -solvers                   # list registered solvers + capabilities
//	secureview -in instance.json          # solve (exact)
//	secureview -in instance.json -solver lp -variant set
//	secureview -in instance.json -solver greedy -variant cardinality
//	secureview -in instance.json -solver bb -timeout 2s
//	secureview -gen mega-shared -solver portfolio   # solve a generated class
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"secureview/internal/gen"
	_ "secureview/internal/gen/corpus" // register the corpus-ID resolver
	"secureview/internal/privacy"
	"secureview/internal/provenance"
	"secureview/internal/search"
	"secureview/internal/secureview"
	"secureview/internal/solve"
	"secureview/internal/spec"
)

// instance is the JSON wire format.
type instance struct {
	Modules []moduleSpec       `json:"modules"`
	Costs   map[string]float64 `json:"costs"`
}

type moduleSpec struct {
	Name          string        `json:"name"`
	Inputs        []string      `json:"inputs"`
	Outputs       []string      `json:"outputs"`
	Public        bool          `json:"public,omitempty"`
	PrivatizeCost float64       `json:"privatizeCost,omitempty"`
	CardList      [][2]int      `json:"cardList,omitempty"`
	SetList       [][2][]string `json:"setList,omitempty"`
}

func toProblem(in instance) *secureview.Problem {
	p := &secureview.Problem{Costs: privacy.Costs(in.Costs)}
	for _, m := range in.Modules {
		spec := secureview.ModuleSpec{
			Name: m.Name, Inputs: m.Inputs, Outputs: m.Outputs,
			Public: m.Public, PrivatizeCost: m.PrivatizeCost,
		}
		for _, c := range m.CardList {
			spec.CardList = append(spec.CardList, secureview.CardReq{Alpha: c[0], Beta: c[1]})
		}
		for _, s := range m.SetList {
			spec.SetList = append(spec.SetList, secureview.SetReq{In: s[0], Out: s[1]})
		}
		p.Modules = append(p.Modules, spec)
	}
	return p
}

func demo() instance {
	return instance{
		Modules: []moduleSpec{
			{
				Name: "align", Inputs: []string{"reads"}, Outputs: []string{"bam"},
				SetList:  [][2][]string{{{"reads"}, nil}, {nil, {"bam"}}},
				CardList: [][2]int{{1, 0}, {0, 1}},
			},
			{
				Name: "call", Inputs: []string{"bam"}, Outputs: []string{"variants"},
				SetList:  [][2][]string{{{"bam"}, nil}, {nil, {"variants"}}},
				CardList: [][2]int{{1, 0}, {0, 1}},
			},
			{
				Name: "format", Inputs: []string{"variants"}, Outputs: []string{"report"},
				Public: true, PrivatizeCost: 2,
			},
		},
		Costs: map[string]float64{"reads": 3, "bam": 1, "variants": 2, "report": 4},
	}
}

func main() {
	var (
		inPath      = flag.String("in", "", "instance JSON file (- for stdin)")
		wfPath      = flag.String("wf", "", "workflow spec JSON file (see internal/spec); derives and solves")
		genClass    = flag.String("gen", "", "solve a generated class instead of -in: a problem class (incl. mega-*), a workflow topology class, or a corpus entry ID (optionally corpus:<id>)")
		solver      = flag.String("solver", "exact", fmt.Sprintf("one of %v (internal/solve registry); -wf mode supports exact | greedy | lp", solve.Names()))
		variant     = flag.String("variant", "set", "set | cardinality")
		showDemo    = flag.Bool("demo", false, "print an example instance and exit")
		showSolvers = flag.Bool("solvers", false, "list registered solvers with their declared capabilities and exit")
		seed        = flag.Int64("seed", 1, "randomized-rounding seed (cardinality lp)")
		parallel    = flag.Int("parallel", 0, "subset-search worker-pool size (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "-in solve deadline (0 = none); on expiry the best incumbent, if any, is printed as a partial result")
	)
	flag.Parse()
	search.SetDefaultParallelism(*parallel)

	if *showDemo {
		raw, _ := json.MarshalIndent(demo(), "", "  ")
		fmt.Println(string(raw))
		return
	}
	if *showSolvers {
		printSolvers()
		return
	}
	if *wfPath != "" {
		if *timeout > 0 {
			fmt.Fprintln(os.Stderr, "secureview: note: -timeout applies to -in instance solving; -wf mode runs unbounded")
		}
		runWorkflowMode(*wfPath, *solver)
		return
	}
	if *inPath == "" && *genClass == "" {
		fmt.Fprintln(os.Stderr, "secureview: -in, -gen or -wf required (or -demo, -solvers)")
		os.Exit(2)
	}
	var v secureview.Variant
	switch *variant {
	case "set":
		v = secureview.Set
	case "cardinality":
		v = secureview.Cardinality
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	var p *secureview.Problem
	if *genClass != "" {
		var err error
		if p, err = generatedProblem(*genClass, *seed, v); err != nil {
			fatal(err)
		}
	} else {
		var raw []byte
		var err error
		if *inPath == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*inPath)
		}
		if err != nil {
			fatal(err)
		}
		var in instance
		if err := json.Unmarshal(raw, &in); err != nil {
			fatal(fmt.Errorf("parsing instance: %w", err))
		}
		p = toProblem(in)
	}

	if err := p.Validate(v); err != nil {
		fatal(err)
	}

	res, err := solve.Solve(context.Background(), *solver, p, solve.Options{
		Variant:    v,
		NodeBudget: 1 << 24,
		MaxAttrs:   22,
		Workers:    *parallel,
		Seed:       *seed,
		Trials:     9,
		Timeout:    *timeout,
	})
	partial := false
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded) && res.Partial:
		// Deadline hit, but the solver carried a feasible incumbent out.
		fmt.Printf("TIMED OUT after %v — printing the best incumbent found so far (not proven optimal)\n", *timeout)
		partial = true
	case errors.Is(err, context.DeadlineExceeded):
		fatal(fmt.Errorf("timed out after %v with no feasible incumbent", *timeout))
	default:
		fatal(err)
	}
	sol := res.Solution
	if !p.Feasible(sol, v) {
		fatal(fmt.Errorf("internal error: solution infeasible"))
	}

	fmt.Printf("variant:      %s\n", v)
	fmt.Printf("solver:       %s\n", *solver)
	fmt.Printf("γ (sharing):  %d\n", p.DataSharing())
	fmt.Printf("ℓmax:         %d\n", p.LMax(v))
	fmt.Printf("hide:         %s\n", sol.Hidden)
	fmt.Printf("privatize:    %s\n", sol.Privatized)
	fmt.Printf("total cost:   %.4g\n", res.Cost)
	switch {
	case partial:
		fmt.Printf("status:       partial (deadline exceeded)\n")
	case res.Optimal:
		fmt.Printf("status:       optimal (%s)\n", res.Bound.Theorem)
	case res.Bound.Theorem != "":
		fmt.Printf("status:       approximate, factor %.4g (%s)\n", res.Bound.Factor, res.Bound.Theorem)
	}
	if res.Bound.LP > 0 {
		fmt.Printf("LP bound:     %.4g (cost/LP = %.3f)\n", res.Bound.LP, res.Cost/res.Bound.LP)
	}
	if e, err := secureview.Explain(p, sol, v); err == nil {
		fmt.Printf("explanation:\n")
		for _, line := range e.Lines {
			fmt.Printf("  %s\n", line)
		}
	}
	if partial {
		os.Exit(3) // distinguishable from success and from hard failure
	}
}

// runWorkflowMode loads a concrete workflow spec, records all executions,
// derives requirement lists from standalone analysis (Theorem 4/8) and
// publishes a secure view.
func runWorkflowMode(path, solverName string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	doc, err := spec.Parse(raw)
	if err != nil {
		fatal(err)
	}
	w, err := doc.Build()
	if err != nil {
		fatal(err)
	}
	gamma := doc.Gamma
	if gamma == 0 {
		gamma = 2
	}
	costs := privacy.Costs(doc.Costs)
	if len(costs) == 0 {
		costs = privacy.Uniform(w.Schema().Names()...)
	}
	var sv provenance.Solver
	switch solverName {
	case "exact":
		sv = provenance.SolverExact
	case "greedy":
		sv = provenance.SolverGreedy
	case "lp":
		sv = provenance.SolverLP
	default:
		fatal(fmt.Errorf("unknown solver %q", solverName))
	}
	store := provenance.NewStore(w)
	if err := store.RecordAll(1 << 20); err != nil {
		fatal(err)
	}
	view, err := store.SecureView(gamma, costs, doc.PrivatizeCosts, sv)
	if err != nil {
		fatal(err)
	}
	if err := view.VerifyStandalone(); err != nil {
		fatal(err)
	}
	fmt.Printf("workflow:    %s (%d modules, %d executions)\n", w.Name(), len(w.Modules()), store.Size())
	fmt.Printf("Γ:           %d\n", view.Gamma)
	fmt.Printf("hide:        %v\n", view.HiddenSorted())
	fmt.Printf("privatize:   %v\n", view.Privatized.Sorted())
	fmt.Printf("cost:        %.4g\n", view.Cost)
	fmt.Printf("published view:\n%v", view.Relation())
}

// printSolvers renders the registry's declared capability matrix, the CLI
// face of GET /v1/solvers.
func printSolvers() {
	for _, info := range solve.Solvers() {
		c := info.Capabilities
		var variants []string
		if c.Cardinality {
			variants = append(variants, "cardinality")
		}
		if c.Set {
			variants = append(variants, "set")
		}
		kind := "heuristic"
		switch {
		case c.Exact:
			kind = "exact"
		case c.Certified:
			kind = "certified"
		}
		fmt.Printf("%-18s %-10s variants=%s", info.Name, kind, strings.Join(variants, ","))
		if c.AllPrivateOnly {
			fmt.Printf(" all-private-only")
		}
		if c.MaxUniverse > 0 {
			fmt.Printf(" max-universe=%d", c.MaxUniverse)
		}
		if c.Factor != "" {
			fmt.Printf(" factor=%q", c.Factor)
		}
		fmt.Println()
	}
}

// generatedProblem resolves -gen through the canonical gen.InstanceRef
// pipeline: abstract problem classes (including mega-*), workflow topology
// classes (derived at the requested variant), and committed-corpus entries
// — either "corpus:<id>" or a bare ID / unambiguous ID prefix.
func generatedProblem(name string, seed int64, v secureview.Variant) (*secureview.Problem, error) {
	ref := gen.InstanceRef{Class: name, Seed: seed}
	if id, ok := strings.CutPrefix(name, "corpus:"); ok {
		ref = gen.InstanceRef{Corpus: id}
	}
	rv, err := gen.Resolve(ref)
	if err != nil && ref.Class != "" {
		if cv, cerr := gen.Resolve(gen.InstanceRef{Corpus: name}); cerr == nil {
			rv, err = cv, nil
		}
	}
	if err != nil {
		return nil, err
	}
	if rv.Problem != nil {
		return rv.Problem, nil
	}
	if v == secureview.Cardinality {
		return rv.Instance.DeriveCard()
	}
	return rv.Instance.Derive()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "secureview: %v\n", err)
	os.Exit(1)
}
