// Command secureview-mine runs the adversarial instance miner
// (internal/gen/corpus): a deterministic hill-climb over gen.Config space
// with objective = engine safety-test count, cross-checking every candidate
// against the exact solver for cost disagreements. It prints the mined
// candidates as JSON and can merge them into a committed corpus file.
//
// Usage:
//
//	secureview-mine -steps 60 -seed 1                 # print candidates
//	secureview-mine -steps 60 -out internal/gen/corpus/corpus.json
//	secureview-mine -steps 20 -merge internal/gen/corpus/corpus.json
//
// -out overwrites the file with this run's candidates; -merge unions them
// with the file's existing entries (fingerprint-deduped, existing entries
// win). -top keeps only the N hardest candidates, and -min-checked drops
// easy ones; disagreement reproducers are always kept. The exit code is 0
// on success, 1 when the run mined zero candidates, 2 on usage or I/O
// errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"secureview/internal/gen/corpus"
)

func main() {
	var (
		steps      = flag.Int("steps", 40, "mutation steps per seed class")
		seed       = flag.Int64("seed", 1, "mutation stream seed (same flags = same candidates)")
		maxK       = flag.Int("maxk", 14, "cap on the derived problem's useful-attribute count")
		perEval    = flag.Duration("per-eval", 10*time.Second, "per-candidate evaluation budget")
		minChecked = flag.Int("min-checked", 0, "drop candidates with fewer engine safety tests")
		top        = flag.Int("top", 0, "keep only the N hardest candidates (0 = all)")
		out        = flag.String("out", "", "write candidates to this corpus file (overwrite)")
		merge      = flag.String("merge", "", "merge candidates into this corpus file (existing entries win)")
		timeout    = flag.Duration("timeout", 0, "overall mining deadline (0 = none)")
	)
	flag.Parse()
	if *out != "" && *merge != "" {
		fmt.Fprintln(os.Stderr, "secureview-mine: -out and -merge are mutually exclusive")
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	mined, err := corpus.Mine(ctx, corpus.MineOptions{
		Steps:      *steps,
		Seed:       *seed,
		MaxK:       *maxK,
		PerEval:    *perEval,
		MinChecked: *minChecked,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "secureview-mine: mining stopped early: %v\n", err)
	}
	if *top > 0 && len(mined) > *top {
		var kept []corpus.Entry
		for i, e := range mined {
			if i < *top || e.Disagree {
				kept = append(kept, e)
			}
		}
		mined = kept
	}
	if len(mined) == 0 {
		fmt.Fprintln(os.Stderr, "secureview-mine: no candidates mined")
		os.Exit(1)
	}

	entries := mined
	path := *out
	if *merge != "" {
		path = *merge
		existing, err := readCorpus(*merge)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secureview-mine: %v\n", err)
			os.Exit(2)
		}
		entries = corpus.Dedup(append(existing, mined...))
	}

	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "secureview-mine: %v\n", err)
		os.Exit(2)
	}
	raw = append(raw, '\n')
	if path == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "secureview-mine: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("secureview-mine: wrote %d entries to %s (%d newly mined)\n", len(entries), path, len(mined))
}

func readCorpus(path string) ([]corpus.Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var entries []corpus.Entry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return entries, nil
}
