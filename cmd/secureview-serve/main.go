// Command secureview-serve exposes the internal/solve registry over
// HTTP/JSON: solve requests arrive as internal/spec workflow documents or
// as internal/gen (class, seed) scenario references, run under bounded
// admission with per-request deadlines, and return bound-certified results
// (Theorem 6/7 factors, LP lower bound) with partial incumbents on
// deadline. See internal/server for the endpoint and status semantics.
//
// Usage:
//
//	secureview-serve                       # listen on :8080
//	secureview-serve -addr 127.0.0.1:0     # free port, printed on startup
//	secureview-serve -inflight 32 -timeout 10s -session-mb 512
//
// Snapshot/restore (kill cold starts across restarts):
//
//	secureview-serve -snapshot-path /var/lib/secureview/session.snap
//
// restores the session cache on boot (/readyz serves 503 until done),
// rewrites the file every -snapshot-every and on SIGTERM, and accepts
// POST /v1/snapshot for on-demand writes.
//
// Shard mode (scale the cache horizontally): start every replica with the
// same -peers list and its own -self entry; requests hash over a
// consistent-hash ring and replicas proxy non-owned solves to the owner:
//
//	secureview-serve -addr :8081 -self http://h1:8081 \
//	  -peers http://h1:8081,http://h2:8081,http://h3:8081
//
// Try it:
//
//	curl -s localhost:8080/v1/solve -d '{
//	  "generated": {"class": "chain", "seed": 1},
//	  "solver": "exact", "variant": "set"
//	}'
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"secureview/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		inflight     = flag.Int("inflight", 0, "max concurrent solve/batch requests before 429 (0 = 2×GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested deadlines")
		sessionMB    = flag.Int64("session-mb", 256, "Session cache budget in MiB; 0 = unbounded (no eviction — size the heap accordingly)")
		batchWorkers = flag.Int("batch-workers", 0, "SolveBatch pool size (0 = GOMAXPROCS)")
		maxBatch     = flag.Int("max-batch", 64, "max jobs per batch request")
		snapPath     = flag.String("snapshot-path", "", "session snapshot file: restored on boot, rewritten periodically and on shutdown (empty = snapshots off)")
		snapEvery    = flag.Duration("snapshot-every", 5*time.Minute, "periodic snapshot interval (requires -snapshot-path; <=0 disables the ticker)")
		self         = flag.String("self", "", "this replica's base URL in -peers (scheme://host:port; required with -peers)")
		peers        = flag.String("peers", "", "comma-separated replica base URLs for shard mode (empty = single node)")
	)
	flag.Parse()

	if *sessionMB < 0 {
		fmt.Fprintf(os.Stderr, "secureview-serve: -session-mb must be >= 0 (0 = unbounded), got %d\n", *sessionMB)
		os.Exit(2)
	}
	sessionBytes := *sessionMB << 20
	if *sessionMB == 0 {
		sessionBytes = -1 // server Config: <0 = unbounded
	}
	every := *snapEvery
	if every <= 0 {
		every = -1 // server Config: <0 disables the periodic ticker
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			peerList = append(peerList, strings.TrimSpace(p))
		}
	}
	srv, err := server.New(server.Config{
		MaxInFlight:    *inflight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		SessionBytes:   sessionBytes,
		BatchWorkers:   *batchWorkers,
		MaxBatchJobs:   *maxBatch,
		SnapshotPath:   *snapPath,
		SnapshotEvery:  every,
		Self:           *self,
		Peers:          peerList,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "secureview-serve: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secureview-serve: %v\n", err)
		os.Exit(1)
	}
	// Print the resolved address so scripts (and humans) can use port 0.
	fmt.Printf("secureview-serve listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	logf := func(format string, args ...any) {
		fmt.Printf("secureview-serve: "+format+"\n", args...)
	}
	if err := srv.Run(ln, sig, logf); err != nil {
		fmt.Fprintf(os.Stderr, "secureview-serve: %v\n", err)
		os.Exit(1)
	}
}
