// Command secureview-serve exposes the internal/solve registry over
// HTTP/JSON: solve requests arrive as internal/spec workflow documents or
// as internal/gen (class, seed) scenario references, run under bounded
// admission with per-request deadlines, and return bound-certified results
// (Theorem 6/7 factors, LP lower bound) with partial incumbents on
// deadline. See internal/server for the endpoint and status semantics.
//
// Usage:
//
//	secureview-serve                       # listen on :8080
//	secureview-serve -addr 127.0.0.1:0     # free port, printed on startup
//	secureview-serve -inflight 32 -timeout 10s -session-mb 512
//
// Try it:
//
//	curl -s localhost:8080/v1/solve -d '{
//	  "generated": {"class": "chain", "seed": 1},
//	  "solver": "exact", "variant": "set"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secureview/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		inflight     = flag.Int("inflight", 0, "max concurrent solve/batch requests before 429 (0 = 2×GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested deadlines")
		sessionMB    = flag.Int64("session-mb", 256, "Session cache budget in MiB (0 = unbounded)")
		batchWorkers = flag.Int("batch-workers", 0, "SolveBatch pool size (0 = GOMAXPROCS)")
		maxBatch     = flag.Int("max-batch", 64, "max jobs per batch request")
	)
	flag.Parse()

	sessionBytes := *sessionMB << 20
	if *sessionMB == 0 {
		sessionBytes = -1 // server Config: <0 = unbounded
	}
	srv := server.New(server.Config{
		MaxInFlight:    *inflight,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		SessionBytes:   sessionBytes,
		BatchWorkers:   *batchWorkers,
		MaxBatchJobs:   *maxBatch,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secureview-serve: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Print the resolved address so scripts (and humans) can use port 0.
	fmt.Printf("secureview-serve listening on http://%s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "secureview-serve: %v\n", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("secureview-serve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "secureview-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
