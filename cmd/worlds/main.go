// Command worlds explores possible-world counts and OUT sets on the
// paper's constructions: the Figure 1 running example and the
// Proposition 2 one-one chains.
//
// Usage:
//
//	worlds -fig1                  # Example 2/3: world count and OUT sets for m1
//	worlds -prop2 -k 2            # Proposition 2 counts for k-bit chains
//	worlds -prop2 -k 3 -timeout 1s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/workflow"
	"secureview/internal/worlds"
)

func main() {
	var (
		fig1     = flag.Bool("fig1", false, "run the Figure 1 / Example 2–3 demo")
		prop2    = flag.Bool("prop2", false, "run the Proposition 2 counts")
		k        = flag.Int("k", 2, "bit width for -prop2")
		parallel = flag.Int("parallel", 0, "world-enumeration worker count (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "enumeration deadline (0 = none); on expiry partial results printed so far stand")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	switch {
	case *fig1:
		runFig1()
	case *prop2:
		runProp2(ctx, *k, *parallel, *timeout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFig1() {
	m1 := module.Fig1M1()
	visible := relation.NewNameSet("a1", "a3", "a5")
	n, err := worlds.CountFunctionWorlds(m1, visible)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("|Worlds(R1, %s)| = %d (paper: 64)\n", visible, n)
	// Compile the module view once and answer every OUT-set query from the
	// per-mask compiled view (integer lookups + bitset expansion).
	mv := privacy.NewModuleView(m1)
	comp, err := mv.Compile()
	if err != nil {
		fatal(err)
	}
	view := comp.View(comp.MaskOf(visible))
	relation.EachTuple(m1.InputSchema(), func(x relation.Tuple) bool {
		out, err := view.OutSetTuples(x)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("OUT_{%v} = %v (|OUT| = %d)\n", x, out, len(out))
		return true
	})
}

func runProp2(ctx context.Context, k, parallel int, timeout time.Duration) {
	// expired reports a clean partial-result message on deadline expiry:
	// everything printed before the cancelled stage stands, and the stage
	// that was interrupted is named.
	expired := func(stage string, err error) {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Printf("TIMED OUT after %v during %s — results above are complete, later stages were skipped\n", timeout, stage)
			os.Exit(3)
		}
		fatal(err)
	}
	if k < 1 || k > 3 {
		fatal(fmt.Errorf("k must be in [1,3] (enumeration is doubly exponential)"))
	}
	bits := func(level int) []string {
		out := make([]string, k)
		for b := 0; b < k; b++ {
			out[b] = fmt.Sprintf("x%d_%d", level, b)
		}
		return out
	}
	m1 := module.Identity("m1", bits(0), bits(1))
	m2 := module.Complement("m2", bits(1), bits(2))
	w := workflow.MustNew("prop2", m1, m2)
	solo := workflow.MustNew("solo", module.Identity("m1", bits(0), bits(1)))
	hidden := relation.NewNameSet(fmt.Sprintf("x1_%d", 0))

	fmt.Printf("k=%d, Γ=2, hidden=%s\n", k, hidden)
	es := &worlds.Enumerator{W: solo, R: solo.MustRelation(),
		Visible: relation.NewNameSet(solo.Schema().Names()...).Minus(hidden),
		Workers: parallel}
	nStand, err := es.CountCtx(ctx)
	if err != nil {
		expired("standalone world count", err)
	}
	fmt.Printf("standalone worlds: %d (formula Γ^(2^k))\n", nStand)
	ew := &worlds.Enumerator{W: w, R: w.MustRelation(),
		Visible: relation.NewNameSet(w.Schema().Names()...).Minus(hidden),
		Workers: parallel}
	nWork, err := ew.CountCtx(ctx)
	if err != nil {
		expired("workflow world count", err)
	}
	fmt.Printf("workflow worlds:   %d (formula (Γ!)^(2^k/Γ))\n", nWork)
	fmt.Printf("ratio:             %.4g\n", float64(nStand)/float64(nWork))
	private, err := ew.IsWorkflowPrivateCtx(ctx, "m1", 2)
	if err != nil {
		expired("workflow-privacy check", err)
	}
	fmt.Printf("m1 2-workflow-private: %v (privacy survives the collapse)\n", private)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "worlds: %v\n", err)
	os.Exit(1)
}
