// Genomics: the motivating scenario of the paper's introduction — a
// pipeline with a proprietary genetic-disorder susceptibility module whose
// input/output behaviour must stay private, wired between public
// reformatting steps.
//
// The pipeline (booleans stand in for real data categories):
//
//	normalize (public)  : raw0..raw3      -> snp0..snp3    (identity reformat)
//	susceptibility (PRIVATE): snp0..snp3  -> risk0, risk1  (proprietary table)
//	score (PRIVATE)     : risk0, risk1    -> score, conf   (proprietary table)
//	report (public)     : score, conf     -> report        (parity reformat)
//
// The owner prices attributes by clinical value and asks for Γ = 4: an
// adversary seeing the published provenance must not be able to narrow the
// susceptibility module's output below 4 candidates for any input.
//
// Run with: go run ./examples/genomics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/provenance"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

func main() {
	rng := rand.New(rand.NewSource(2026))

	normalize := module.Identity("normalize",
		[]string{"raw0", "raw1", "raw2", "raw3"},
		[]string{"snp0", "snp1", "snp2", "snp3"}).AsPublic()
	susceptibility := module.Random("susceptibility",
		relation.Bools("snp0", "snp1", "snp2", "snp3"),
		relation.Bools("risk0", "risk1"), rng)
	score := module.Random("score",
		relation.Bools("risk0", "risk1"),
		relation.Bools("score", "conf"), rng)
	report := module.Xor("report", []string{"score", "conf"}, "report").AsPublic()

	w := workflow.MustNew("genomics", normalize, susceptibility, score, report)
	fmt.Println(w)

	store := provenance.NewStore(w)
	if err := store.RecordAll(1 << 12); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d executions\n", store.Size())

	// Clinical value of each attribute: SNPs are cheap to hide, risk and
	// report columns are what collaborators want to see.
	costs := privacy.Costs{
		"raw0": 1, "raw1": 1, "raw2": 1, "raw3": 1,
		"snp0": 2, "snp1": 2, "snp2": 2, "snp3": 2,
		"risk0": 6, "risk1": 6, "score": 8, "conf": 5, "report": 9,
	}
	privatize := map[string]float64{"normalize": 3, "report": 3}

	for _, solver := range []provenance.Solver{provenance.SolverExact, provenance.SolverGreedy, provenance.SolverLP} {
		view, err := store.SecureView(4, costs, privatize, solver)
		if err != nil {
			log.Fatal(err)
		}
		if err := view.VerifyStandalone(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s: hide %v, privatize %v, cost %.3g\n",
			solver, view.HiddenSorted(), view.Privatized.Sorted(), view.Cost)
	}

	view, err := store.SecureView(4, costs, privatize, provenance.SolverExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npublished columns: %v\n", view.Relation().Schema().Names())
	fmt.Printf("public module names exposed as: normalize=%q report=%q\n",
		view.ModuleName("normalize"), view.ModuleName("report"))
}
