// Quickstart: the paper's running example (Figure 1) end to end.
//
// It builds the three-module boolean workflow, records every execution into
// a provenance store, asks for a 2-private view at minimum cost, and prints
// the published relation, the hidden attributes, and the JSON export a
// downstream user would receive.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"secureview/internal/privacy"
	"secureview/internal/provenance"
	"secureview/internal/workflow"
)

func main() {
	w := workflow.Fig1()
	fmt.Println(w)

	store := provenance.NewStore(w)
	if err := store.RecordAll(1 << 10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d executions; full provenance relation R:\n%v\n",
		store.Size(), store.Relation())

	// Every attribute is equally valuable to users.
	costs := privacy.Uniform(w.Schema().Names()...)
	view, err := store.SecureView(2, costs, nil, provenance.SolverExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Γ = %d secure view: hide %v at cost %.3g\n", view.Gamma, view.HiddenSorted(), view.Cost)
	if err := view.VerifyStandalone(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published view R_V:\n%v\n", view.Relation())

	// A user queries the view; hidden attributes are unreachable.
	cols := view.Visible.Sorted()[:2]
	q, err := view.Query(cols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user query π_%v(R_V):\n%v\n", cols, q)
	if _, err := view.Query(view.HiddenSorted()); err != nil {
		fmt.Printf("query on hidden attributes correctly refused: %v\n", err)
	}

	raw, err := view.ExportJSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJSON export:\n%s\n", raw)
}
