// Workload: cost assignments derived from an expected query workload.
//
// The paper prices each attribute by "the utility lost to the user when the
// data value is hidden" (section 1) but leaves the pricing source open.
// Here the owner declares the SPJ queries users actually run (with
// weights); hiding an attribute then costs the weight of the queries it
// breaks. The same workflow gets different secure views as the workload
// shifts — and the engine answers the surviving queries directly.
//
// Run with: go run ./examples/workload
package main

import (
	"fmt"
	"log"

	"secureview/internal/provenance"
	"secureview/internal/query"
	"secureview/internal/workflow"
)

func main() {
	w := workflow.Fig1()
	store := provenance.NewStore(w)
	if err := store.RecordAll(1 << 10); err != nil {
		log.Fatal(err)
	}

	workloads := map[string]query.Workload{
		"analysts (final outputs)": {
			{Query: query.Query{Name: "outcomes", Project: []string{"a1", "a2", "a6", "a7"}}, Weight: 90},
			{Query: query.Query{Name: "drill", Select: []query.Predicate{{Attr: "a6", Value: 1}}, Project: []string{"a7"}}, Weight: 10},
		},
		"debuggers (intermediates)": {
			{Query: query.Query{Name: "trace", Project: []string{"a3", "a4", "a5"}}, Weight: 80},
			{Query: query.Query{Name: "outcomes", Project: []string{"a6"}}, Weight: 20},
		},
	}

	for name, wl := range workloads {
		view, utility, err := store.SecureViewForWorkload(2, wl, nil, provenance.SolverExact)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  hide %v (cost %.4g), retained utility %.0f%%\n",
			view.HiddenSorted(), view.Cost, utility*100)
		for _, e := range wl {
			res, err := view.Answer(e.Query)
			if err != nil {
				fmt.Printf("  %-10s %-55s -> refused (%v)\n", e.Query.Name, e.Query, err)
				continue
			}
			fmt.Printf("  %-10s %-55s -> %d rows\n", e.Query.Name, e.Query, res.Len())
		}
		fmt.Println()
	}
}
