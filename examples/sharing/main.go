// Sharing: Example 5 of the paper — why per-module optimal choices do NOT
// assemble into a good workflow solution when data is shared.
//
// Module m sends one item a2 to n downstream modules. Standalone, each
// downstream module would rather hide its own cheap output; together they
// pay n while hiding the single shared a2 (slightly more expensive) would
// satisfy all of them at once. The gap between the greedy assembly and the
// optimum grows linearly with n. The ℓmax LP rounding is also shown: on
// this family ℓmax itself grows with n (the collector lists n options), so
// its guarantee is weak here — exactly the regime Theorem 6 warns about.
//
// Run with: go run ./examples/sharing
package main

import (
	"fmt"
	"log"

	"secureview/internal/reductions"
	"secureview/internal/secureview"
)

func main() {
	const eps = 0.5
	fmt.Println("n   greedy   optimum   lp-rounded   greedy/optimum")
	for _, n := range []int{2, 4, 8, 12} {
		p := reductions.Example5(n, eps)

		greedy := secureview.Greedy(p, secureview.Set)
		exact, err := secureview.ExactSet(p, 1<<22)
		if err != nil {
			log.Fatal(err)
		}
		rounded, _, err := secureview.SetLPRound(p)
		if err != nil {
			log.Fatal(err)
		}
		for name, sol := range map[string]secureview.Solution{
			"greedy": greedy, "exact": exact, "lp": rounded,
		} {
			if !p.Feasible(sol, secureview.Set) {
				log.Fatalf("%s produced an infeasible solution", name)
			}
		}
		gc, ec, rc := p.Cost(greedy), p.Cost(exact), p.Cost(rounded)
		fmt.Printf("%-3d %-8.3g %-9.3g %-12.3g %.2f\n", n, gc, ec, rc, gc/ec)
	}
	fmt.Println("\nthe optimum always hides {a2, b0}: the shared item pays for everyone")
}
