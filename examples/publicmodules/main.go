// Publicmodules: Examples 7 and 8 of the paper — standalone privacy breaks
// next to public modules, and privatization (renaming) repairs it.
//
// A private one-one module m receives its input from a public module m'
// computing a constant. Hiding one input bit of m is perfectly safe when m
// stands alone, but an adversary who knows m' can reconstruct the hidden
// bits and read m's behaviour right off the view. Hiding m's identity
// upstream (privatization) restores the guarantee. The program measures
// |OUT| — the adversary's residual uncertainty — by exhaustive possible-
// world enumeration.
//
// Run with: go run ./examples/publicmodules
package main

import (
	"fmt"
	"log"

	"secureview/internal/module"
	"secureview/internal/relation"
	"secureview/internal/workflow"
	"secureview/internal/worlds"
)

func main() {
	mPub := module.Constant("mprime",
		relation.Bools("i0"), relation.Bools("u1", "u2"), relation.Tuple{0, 1}).AsPublic()
	mPriv := module.Identity("m", []string{"u1", "u2"}, []string{"v1", "v2"})
	w := workflow.MustNew("example7", mPub, mPriv)
	r := w.MustRelation()

	hidden := relation.NewNameSet("u1") // standalone-safe for m, Γ=2
	visible := relation.NewNameSet(w.Schema().Names()...).Minus(hidden)
	x := relation.Tuple{0, 1} // the input m actually receives (m' is constant)

	e := &worlds.Enumerator{W: w, R: r, Visible: visible}
	leaked, err := e.OutSet("m", x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with m' public and visible:   |OUT_{%v,m}| = %d  -> module behaviour LEAKED\n", x, len(leaked))

	ep := &worlds.Enumerator{W: w, R: r, Visible: visible,
		Privatized: relation.NewNameSet("mprime")}
	repaired, err := ep.OutSet("m", x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with m' privatized (renamed): |OUT_{%v,m}| = %d  -> Γ=2 restored\n", x, len(repaired))

	// Example 8: a chain m' -> m -> m'' decides which public modules to
	// privatize based on which side of m is hidden.
	fmt.Println("\nExample 8 (chain m' -> m -> m''):")
	for _, scenario := range []struct {
		hide      string
		privatize []string
	}{
		{"an input of m", []string{"m'"}},
		{"an output of m", []string{"m''"}},
		{"both sides of m", []string{"m'", "m''"}},
	} {
		fmt.Printf("  hiding %-16s -> privatize %v\n", scenario.hide, scenario.privatize)
	}
	fmt.Println("(the secureview optimizers price exactly this closure; see internal/secureview)")
}
