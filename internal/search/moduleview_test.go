package search_test

import (
	"fmt"
	"math/rand"
	"testing"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/search"
)

func randomView(k int, rng *rand.Rand) privacy.ModuleView {
	nIn := k / 2
	if nIn == 0 {
		nIn = 1
	}
	in := make([]string, nIn)
	for i := range in {
		in[i] = fmt.Sprintf("x%d", i)
	}
	out := make([]string, k-nIn)
	for i := range out {
		out[i] = fmt.Sprintf("y%d", i)
	}
	m := module.Random("m", relation.Bools(in...), relation.Bools(out...), rng)
	return privacy.NewModuleView(m)
}

// TestEngineMatchesNaiveOnRandomModules is the end-to-end property test the
// engine ships under: on seeded random ModuleViews the pruned parallel
// search returns exactly the cost of the naive 2^k loop, for uniform and
// skewed costs and several Γ. Run with -race to exercise the worker pool.
func TestEngineMatchesNaiveOnRandomModules(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		k := 2 + rng.Intn(7) // 2..8 attributes
		mv := randomView(k, rng)
		attrs := mv.Attrs()
		costs := make(privacy.Costs, len(attrs))
		for _, a := range attrs {
			costs[a] = float64(1 + rng.Intn(4))
		}
		if trial%3 == 0 {
			costs = privacy.Uniform(attrs...) // force plenty of cost ties
		}
		gamma := uint64(1 + rng.Intn(4))

		// Reference: the seed repo's naive loop over name sets.
		sp, err := search.NewSpace(attrs, costs.Of)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := sp.NaiveMinCost(func(v search.Mask) (bool, error) {
			return mv.IsSafe(sp.NameSet(v), gamma)
		})
		if err != nil {
			t.Fatal(err)
		}

		for _, par := range []int{1, 4} {
			res, err := mv.MinCostSafeSubsetOpts(costs, gamma, search.Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if res.Found != naive.Found {
				t.Fatalf("trial %d par %d (k=%d Γ=%d): Found=%v, naive %v",
					trial, par, k, gamma, res.Found, naive.Found)
			}
			if res.Found && res.Cost != naive.Cost {
				t.Fatalf("trial %d par %d (k=%d Γ=%d): cost %v, naive %v (hidden %v)",
					trial, par, k, gamma, res.Cost, naive.Cost, res.Hidden)
			}
			if res.Found {
				safe, err := mv.IsSafe(res.Visible, gamma)
				if err != nil || !safe {
					t.Fatalf("trial %d: returned subset unsafe: %v err=%v", trial, res.Hidden, err)
				}
			}
			if res.Checked+res.Pruned != 1<<len(attrs) {
				t.Fatalf("trial %d: counters %d+%d don't cover 2^%d",
					trial, res.Checked, res.Pruned, len(attrs))
			}
		}

		// The enumeration APIs must agree with each other across
		// parallelism too; spot-check via minimal hidden sets feeding the
		// derive layer.
		if k <= 6 {
			m1, err := mv.MinimalSafeHiddenSetsOpts(gamma, search.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			m4, err := mv.MinimalSafeHiddenSetsOpts(gamma, search.Options{Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(m1) != len(m4) {
				t.Fatalf("trial %d: minimal set counts differ: %d vs %d", trial, len(m1), len(m4))
			}
			for i := range m1 {
				if !m1[i].Equal(m4[i]) {
					t.Fatalf("trial %d: minimal set %d differs: %v vs %v", trial, i, m1[i], m4[i])
				}
			}
		}
	}
}
