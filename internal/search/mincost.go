package search

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Result is the outcome of a minimum-cost subset search.
type Result struct {
	// Hidden is the optimal hidden mask; its complement within the universe
	// is the visible set the oracle accepted.
	Hidden Mask
	// Cost is the hidden mask's total cost.
	Cost float64
	// Found is false when no mask — not even hiding everything — is safe.
	Found bool
	// Stats reports safety tests performed vs candidates pruned.
	Stats Stats
	// Frontier is the run's exported warm-start state (domination stores +
	// incumbent), reusable via Options.Resume for later searches over the
	// same universe — in particular after cost-only edits. Nil when the run
	// was cancelled or failed.
	Frontier *Frontier
}

// sortedMax is the largest universe for which MinCost materializes the full
// candidate list in (cost, lex) order (~36 bytes per mask across the rank
// scatter and radix buffers; ~150 MiB at k=22). Above it a streaming scan
// with the same pruning is used.
const sortedMax = 22

// MinCost finds the minimum-cost hidden mask whose complementary visible set
// the oracle accepts, sharding the 2^k mask space over a worker pool.
//
// Candidates are explored in ascending (cost, lexicographic) order, so the
// first accepted candidate is the optimum and bounds everything after it;
// ties on cost are broken deterministically toward the hidden set that is
// lexicographically smallest as a sorted name sequence. Proposition 1
// monotonicity prunes masks dominated by an already-decided visible set.
func (s *Space) MinCost(oracle Oracle, opts Options) (Result, error) {
	return s.MinCostCtx(context.Background(), oracle, opts)
}

// MinCostCtx is MinCost with cancellation: every worker observes the context
// at each candidate mask (one pruning epoch), so the search stops promptly
// even when individual oracle calls are expensive — provided the oracle
// itself honours the same context, as the worlds-grounded oracles do. On
// expiry the partial result is discarded and ctx.Err() is returned.
//
// Cancellation is propagated through an atomic flag raised by a watcher
// goroutine rather than per-candidate ctx.Err() calls, which would serialize
// the worker pool on the context's mutex.
func (s *Space) MinCostCtx(ctx context.Context, oracle Oracle, opts Options) (Result, error) {
	var cancelled atomic.Bool
	if done := ctx.Done(); done != nil {
		quit := make(chan struct{})
		defer close(quit)
		go func() {
			select {
			case <-done:
				cancelled.Store(true)
			case <-quit:
			}
		}()
	}
	var res Result
	var err error
	if s.K() <= sortedMax && !s.warmStreaming(opts.Resume) {
		res, err = s.minCostSorted(oracle, opts, &cancelled)
	} else {
		res, err = s.minCostStreaming(oracle, opts, &cancelled)
	}
	if cancelled.Load() {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Result{Stats: res.Stats}, ctxErr
		}
	}
	return res, err
}

// orderedCostBits maps a float64 to a uint64 whose unsigned order matches
// the float order (the standard sign-flip transform), so costs radix-sort.
func orderedCostBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// lexMasks returns every mask of the universe in ascending lexLess order.
// The order is cost-independent, so it is computed once per WithCosts family
// of Spaces and cached; cost-only re-solves skip the permutation and rank
// scatter entirely.
func (s *Space) lexMasks() []Mask {
	s.scat.once.Do(func() {
		n := 1 << s.K()
		perms := make([]Mask, n)
		out := make([]Mask, n)
		for m := 1; m < n; m++ {
			low := m & (m - 1)
			perms[m] = perms[low] | s.permBit[bits.TrailingZeros32(uint32(m))]
		}
		for m := 0; m < n; m++ {
			out[lexRank(perms[m], s.K())] = Mask(m)
		}
		s.scat.masks = out
	})
	return s.scat.masks
}

// sortCandidates produces every hidden mask in ascending (cost, lexLess)
// order without a comparison sort: lexRank is a bijection onto [0, 2^k), so
// scattering masks to their rank position realizes the lex order for free
// (cached across cost edits, see lexMasks), and a stable LSD radix sort on
// the order-transformed cost bits (skipping the 16-bit chunks that never
// vary) lifts it to the full order. costs[i] returns the cost of sorted
// candidate i.
func (s *Space) sortCandidates() (masks []Mask, cost func(int) float64) {
	n := 1 << s.K()
	sums := s.costSums()
	lex := s.lexMasks()
	keys := make([]uint64, n)
	masks = make([]Mask, n)
	copy(masks, lex)
	for i, m := range lex {
		keys[i] = orderedCostBits(sums[m])
	}
	// Which 16-bit chunks of the cost keys actually differ?
	orAll, andAll := uint64(0), ^uint64(0)
	for _, k := range keys {
		orAll |= k
		andAll &= k
	}
	varying := orAll ^ andAll
	keys2 := make([]uint64, n)
	masks2 := make([]Mask, n)
	var cnt [1 << 16]int32
	for pass := 0; pass < 4; pass++ {
		shift := uint(pass * 16)
		if varying>>shift&0xffff == 0 {
			continue
		}
		for i := range cnt {
			cnt[i] = 0
		}
		for _, k := range keys {
			cnt[k>>shift&0xffff]++
		}
		sum := int32(0)
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for i, k := range keys {
			d := k >> shift & 0xffff
			keys2[cnt[d]] = k
			masks2[cnt[d]] = masks[i]
			cnt[d]++
		}
		keys, keys2 = keys2, keys
		masks, masks2 = masks2, masks
	}
	return masks, func(i int) float64 { return sums[masks[i]] }
}

// minCostSorted materializes all candidates in (cost, lex) order and strides
// workers over the sorted list. The answer is the lowest-index safe
// candidate; workers past the current best index stop wholesale. Candidates
// that survive the pruning checks are tested in batches of Options.batchCap
// per oracle pass (1 without a batch oracle).
func (s *Space) minCostSorted(oracle Oracle, opts Options, cancelled *atomic.Bool) (Result, error) {
	n := 1 << s.K()
	masks, costOf := s.sortCandidates()

	sym, err := s.newSymFilter(opts.Symmetry)
	if err != nil {
		return Result{}, err
	}
	prunedBase := 0
	if sym != nil {
		// Drop non-canonical candidates up front (the compaction preserves
		// the (cost, lex) order and the shared cost backing); each one is a
		// symmetry-pruned candidate.
		kept := 0
		for _, m := range masks {
			if sym.canonical(m) {
				masks[kept] = m
				kept++
			}
		}
		prunedBase = n - kept
		masks = masks[:kept]
		n = kept
	}

	workers := opts.workers()
	if workers > n {
		workers = n
	}
	all := s.All()
	unsafeFront := newFrontier(opts.frontierCap())
	safeFront := newFrontier(opts.frontierCap())
	resumed, nSafe, nUnsafe := s.seedResume(opts.Resume, safeFront, unsafeFront)
	memo := s.resumeMemo(opts.Resume)
	var bestIdx atomic.Int64
	bestIdx.Store(int64(n)) // sentinel: nothing found
	var checked, pruned atomic.Int64
	var passes, maxBatch, memoHits atomic.Int64
	var firstErr atomic.Value
	var failed atomic.Bool
	batchCap := opts.batchCap()
	freshVerd := make([][]verdict, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var fresh []verdict
			defer func() { freshVerd[w] = fresh }()
			idxBuf := make([]int, 0, batchCap)
			visBuf := make([]Mask, 0, batchCap)
			// The batch grows geometrically from 1 to batchCap: the optimum
			// sits early in cost order, so tiny first batches establish the
			// incumbent (and its pruning bound) before amortization kicks in.
			curCap := 1
			// flush tests the buffered candidates in one oracle pass and
			// folds the verdicts into the frontiers and the best index. It
			// returns false on oracle failure.
			flush := func() bool {
				if len(visBuf) == 0 {
					return true
				}
				safes, err := testBatch(oracle, opts.Batch, visBuf)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					failed.Store(true)
					return false
				}
				checked.Add(int64(len(visBuf)))
				passes.Add(1)
				raiseMax(&maxBatch, int64(len(visBuf)))
				for i, safe := range safes {
					fresh = append(fresh, verdict{visBuf[i], safe})
					if safe {
						safeFront.insertMaximal(visBuf[i])
						lowerBest(&bestIdx, int64(idxBuf[i]))
					} else {
						unsafeFront.insertMinimal(visBuf[i])
					}
				}
				idxBuf, visBuf = idxBuf[:0], visBuf[:0]
				if curCap < batchCap {
					curCap *= 2
					if curCap > batchCap {
						curCap = batchCap
					}
				}
				return true
			}
			for idx := w; idx < n; idx += workers {
				if failed.Load() || cancelled.Load() {
					return
				}
				if int64(idx) > bestIdx.Load() {
					// Everything at or after idx in this stride is beaten by
					// the incumbent's sort position; count and stop. Buffered
					// candidates precede the incumbent, so they still flush.
					pruned.Add(int64((n - idx + workers - 1) / workers))
					flush()
					return
				}
				visible := all &^ masks[idx]
				if unsafeFront.dominatesSuper(visible) {
					pruned.Add(1) // superset of a known-unsafe visible set
					continue
				}
				if safeFront.dominatesSub(visible) {
					// Subset of a known-safe visible set: safe without a test.
					pruned.Add(1)
					lowerBest(&bestIdx, int64(idx))
					continue
				}
				if safe, ok := memo[visible]; ok {
					// A prior run already asked the oracle about this view;
					// replay the verdict and re-grow the domination stores
					// (the mask may have been dropped from a capped store).
					pruned.Add(1)
					memoHits.Add(1)
					if safe {
						safeFront.insertMaximal(visible)
						lowerBest(&bestIdx, int64(idx))
					} else {
						unsafeFront.insertMinimal(visible)
					}
					continue
				}
				idxBuf = append(idxBuf, idx)
				visBuf = append(visBuf, visible)
				if len(visBuf) >= curCap && !flush() {
					return
				}
			}
			flush()
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return Result{}, err
	}
	res := Result{Stats: Stats{
		Checked:         int(checked.Load()),
		Pruned:          int(pruned.Load()) + prunedBase,
		OraclePasses:    int(passes.Load()),
		BatchSize:       int(maxBatch.Load()),
		FrontierDropped: unsafeFront.droppedCount() + safeFront.droppedCount(),
		Resumed:         resumed,
		ResumedSafe:     nSafe,
		ResumedUnsafe:   nUnsafe,
		MemoHits:        int(memoHits.Load()),
	}}
	if idx := bestIdx.Load(); idx < int64(n) {
		res.Hidden = masks[idx]
		res.Cost = costOf(int(idx))
		res.Found = true
	}
	res.Frontier = &Frontier{
		attrs:     s.attrs,
		safe:      safeFront.snapshot(),
		unsafe:    unsafeFront.snapshot(),
		memo:      mergeMemo(memo, freshVerd),
		incumbent: res.Hidden,
		found:     res.Found,
	}
	return res, nil
}

// testBatch runs one oracle pass over the buffered visible masks: the batch
// oracle when one is configured and the buffer holds more than one mask,
// the per-mask oracle otherwise.
func testBatch(oracle Oracle, batch BatchOracle, visible []Mask) ([]bool, error) {
	if batch != nil && len(visible) > 1 {
		safes, err := batch(visible)
		if err != nil {
			return nil, err
		}
		if len(safes) != len(visible) {
			return nil, fmt.Errorf("search: batch oracle answered %d of %d masks", len(safes), len(visible))
		}
		return safes, nil
	}
	safes := make([]bool, len(visible))
	for i, v := range visible {
		safe, err := oracle(v)
		if err != nil {
			return nil, err
		}
		safes[i] = safe
	}
	return safes, nil
}

// raiseMax raises the shared maximum to v if v is larger.
func raiseMax(max *atomic.Int64, v int64) {
	for {
		cur := max.Load()
		if v <= cur || max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// costSums builds the subset-sum table sums[m] = total cost of mask m by
// one-add-per-mask dynamic programming — much cheaper than a per-mask bit
// loop, at the price of 8 bytes per mask (only viable at k ≤ sortedMax).
func (s *Space) costSums() []float64 {
	n := 1 << s.K()
	sums := make([]float64, n)
	for m := 1; m < n; m++ {
		low := m & (m - 1)
		sums[m] = sums[low] + s.costs[bits.TrailingZeros32(uint32(m))]
	}
	return sums
}

// minCostStreaming scans the mask space in numeric order without the sorted
// candidate list (used above sortedMax, where the list would not fit in
// memory). Pruning uses a shared best-cost bound plus the domination stores;
// each worker keeps its own incumbent and the results merge at the end with
// the same (cost, lex) tie-break.
func (s *Space) minCostStreaming(oracle Oracle, opts Options, cancelled *atomic.Bool) (Result, error) {
	n := 1 << s.K()
	sym, err := s.newSymFilter(opts.Symmetry)
	if err != nil {
		return Result{}, err
	}
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	all := s.All()
	unsafeFront := newFrontier(opts.frontierCap())
	safeFront := newFrontier(opts.frontierCap())
	resumed, nSafe, nUnsafe := s.seedResume(opts.Resume, safeFront, unsafeFront)
	memo := s.resumeMemo(opts.Resume)
	// Below sortedMax (the warm-resume dispatch) a subset-sum table turns
	// the per-mask cost into one array load; above it the table would not
	// fit and the bit-loop CostOf stays.
	var sums []float64
	if s.K() <= sortedMax {
		sums = s.costSums()
	}
	costAt := func(hidden Mask) float64 {
		if sums != nil {
			return sums[hidden]
		}
		return s.CostOf(hidden)
	}
	var bound atomicFloat
	bound.Store(math.Inf(1))
	if resumed {
		// The complement of any seeded safe visible mask is a feasible
		// hidden set under the current costs; its cost bounds the optimum
		// from above, so candidates strictly above it prune immediately.
		// Equal-cost candidates stay in play, keeping the lex tie-break —
		// and thus the result — byte-identical to a cold run. The seed is
		// priced with costAt, the scan's own evaluator, because a different
		// summation order could land an ulp above the scan's price for the
		// same mask and prune the known optimum (see seedBound).
		bound.Store(s.seedBound(opts.Resume, costAt))
	}
	var checked, pruned atomic.Int64
	var passes, maxBatch, memoHits atomic.Int64
	var firstErr atomic.Value
	var failed atomic.Bool
	batchCap := opts.batchCap()
	freshVerd := make([][]verdict, workers)

	type incumbent struct {
		mask  Mask
		perm  Mask
		cost  float64
		found bool
	}
	bests := make([]incumbent, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var fresh []verdict
			defer func() { freshVerd[w] = fresh }()
			best := &bests[w]
			accept := func(hidden Mask, cost float64) {
				perm := s.perm(hidden)
				if !best.found || cost < best.cost ||
					(cost == best.cost && lexLess(perm, best.perm)) {
					*best = incumbent{mask: hidden, perm: perm, cost: cost, found: true}
					bound.StoreMin(cost)
				}
			}
			hidBuf := make([]Mask, 0, batchCap)
			costBuf := make([]float64, 0, batchCap)
			visBuf := make([]Mask, 0, batchCap)
			// Grow the batch geometrically so cheap early candidates set the
			// shared cost bound before full-size batches start.
			curCap := 1
			flush := func() bool {
				if len(visBuf) == 0 {
					return true
				}
				safes, err := testBatch(oracle, opts.Batch, visBuf)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					failed.Store(true)
					return false
				}
				checked.Add(int64(len(visBuf)))
				passes.Add(1)
				raiseMax(&maxBatch, int64(len(visBuf)))
				for i, safe := range safes {
					fresh = append(fresh, verdict{visBuf[i], safe})
					if safe {
						safeFront.insertMaximal(visBuf[i])
						accept(hidBuf[i], costBuf[i])
					} else {
						unsafeFront.insertMinimal(visBuf[i])
					}
				}
				hidBuf, costBuf, visBuf = hidBuf[:0], costBuf[:0], visBuf[:0]
				if curCap < batchCap {
					curCap *= 2
					if curCap > batchCap {
						curCap = batchCap
					}
				}
				return true
			}
			// Masks are claimed in contiguous chunks (not a per-mask stride)
			// so the shared atomics — the cancellation flags, the cost bound
			// and the pruned counter — are touched once per chunk instead of
			// once per mask. A stale (higher) bound read is sound: any value
			// the bound ever held is the cost of a known-feasible solution,
			// so masks strictly above it can never be optimal.
			const chunk = 4096
			prunedLocal, memoLocal := int64(0), int64(0)
			defer func() {
				pruned.Add(prunedLocal)
				memoHits.Add(memoLocal)
			}()
			for base := w * chunk; base < n; base += workers * chunk {
				if failed.Load() || cancelled.Load() {
					return
				}
				b := bound.Load()
				hi := base + chunk
				if hi > n {
					hi = n
				}
				for m := base; m < hi; m++ {
					hidden := Mask(m)
					// Strictly worse than the bound can never win; equal cost
					// stays in play for the lexicographic tie-break. The bound
					// check runs before the symmetry filter because it is
					// cheaper and, on warm re-solves with a seeded bound,
					// prunes almost every mask.
					var cost float64
					if sums != nil {
						cost = sums[m]
					} else {
						cost = s.CostOf(hidden)
					}
					if cost > b {
						prunedLocal++
						continue
					}
					if sym != nil && !sym.canonical(hidden) {
						prunedLocal++
						continue
					}
					visible := all &^ hidden
					switch {
					case unsafeFront.dominatesSuper(visible):
						prunedLocal++
						continue
					case safeFront.dominatesSub(visible):
						prunedLocal++
						accept(hidden, cost)
						b = bound.Load()
					default:
						if safe, ok := memo[visible]; ok {
							// Replay a memoized verdict; re-grow the stores in
							// case a capped store dropped this mask before.
							prunedLocal++
							memoLocal++
							if safe {
								safeFront.insertMaximal(visible)
								accept(hidden, cost)
								b = bound.Load()
							} else {
								unsafeFront.insertMinimal(visible)
							}
							continue
						}
						hidBuf = append(hidBuf, hidden)
						costBuf = append(costBuf, cost)
						visBuf = append(visBuf, visible)
						if len(visBuf) >= curCap {
							if !flush() {
								return
							}
							b = bound.Load()
						}
					}
				}
			}
			flush()
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return Result{}, err
	}
	res := Result{Stats: Stats{
		Checked:         int(checked.Load()),
		Pruned:          int(pruned.Load()),
		OraclePasses:    int(passes.Load()),
		BatchSize:       int(maxBatch.Load()),
		FrontierDropped: unsafeFront.droppedCount() + safeFront.droppedCount(),
		Resumed:         resumed,
		ResumedSafe:     nSafe,
		ResumedUnsafe:   nUnsafe,
		MemoHits:        int(memoHits.Load()),
	}}
	for _, b := range bests {
		if !b.found {
			continue
		}
		if !res.Found || b.cost < res.Cost ||
			(b.cost == res.Cost && lexLess(b.perm, s.perm(res.Hidden))) {
			res.Hidden = b.mask
			res.Cost = b.cost
			res.Found = true
		}
	}
	res.Frontier = &Frontier{
		attrs:     s.attrs,
		safe:      safeFront.snapshot(),
		unsafe:    unsafeFront.snapshot(),
		memo:      mergeMemo(memo, freshVerd),
		incumbent: res.Hidden,
		found:     res.Found,
	}
	return res, nil
}

// NaiveMinCost is the reference 2^k loop the engine replaces (the Lemma 4 /
// Algorithm 2 brute force): numeric mask order, best-cost pruning only, no
// monotonicity, no parallelism. It is kept for property tests, benchmarks
// and the E20 experiment; its cost always matches MinCost's on a monotone
// oracle.
func (s *Space) NaiveMinCost(oracle Oracle) (Result, error) {
	n := 1 << s.K()
	all := s.All()
	res := Result{Cost: math.Inf(1)}
	for m := 0; m < n; m++ {
		hidden := Mask(m)
		cost := s.CostOf(hidden)
		if cost >= res.Cost {
			res.Stats.Pruned++
			continue
		}
		res.Stats.Checked++
		res.Stats.OraclePasses++
		res.Stats.BatchSize = 1
		safe, err := oracle(all &^ hidden)
		if err != nil {
			return Result{}, err
		}
		if safe {
			res.Hidden = hidden
			res.Cost = cost
			res.Found = true
		}
	}
	if !res.Found {
		res.Cost = 0
	}
	return res, nil
}

// lowerBest lowers the shared best index to idx if idx is smaller.
func lowerBest(best *atomic.Int64, idx int64) {
	for {
		cur := best.Load()
		if idx >= cur || best.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// atomicFloat is a float64 with atomic load/store-min, used for the shared
// streaming best-cost bound.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// StoreMin lowers the value to v if v is smaller.
func (f *atomicFloat) StoreMin(v float64) {
	for {
		cur := f.bits.Load()
		if math.Float64frombits(cur) <= v || f.bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}
