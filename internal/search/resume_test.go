package search

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync/atomic"
	"testing"
)

// weightedOracle is monotoneOracle with the weights exposed, so tests can
// build symmetry classes (attrs with equal weight AND equal cost are
// oracle-interchangeable for the threshold predicate).
func weightedOracle(s *Space, rng *rand.Rand) (Oracle, []float64) {
	weights := make([]float64, s.K())
	total := 0.0
	for i := range weights {
		weights[i] = float64(rng.Intn(4))
		total += weights[i]
	}
	threshold := rng.Float64() * total
	return func(v Mask) (bool, error) {
		sum := 0.0
		for x := v; x != 0; x &= x - 1 {
			sum += weights[bits.TrailingZeros32(uint32(x))]
		}
		return sum <= threshold, nil
	}, weights
}

// symClasses groups attribute indices by (oracle weight, cost) — the exact
// interchangeability condition Options.Symmetry requires for the threshold
// oracles.
func symClasses(s *Space, weights []float64, costs map[string]float64) [][]int {
	groups := map[[2]float64][]int{}
	for i, a := range s.Attrs() {
		key := [2]float64{weights[i], costs[a]}
		groups[key] = append(groups[key], i)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// TestResumeMatchesCold is the warm-start core property: after an arbitrary
// cost re-weighting, re-solving with the previous run's Frontier returns a
// byte-identical (cost, lex) optimum to a cold solve — on the sorted path,
// the streaming path, and the MinCost dispatcher, with and without symmetry
// classes — and the Checked+Pruned=2^k invariant survives seeding.
func TestResumeMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		k := rng.Intn(10)
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%02d", k-i)
		}
		costs := randomCosts(attrs, rng)
		s := testSpace(t, attrs, costs)
		oracle, weights := weightedOracle(s, rng)

		var opts Options
		if trial%3 == 0 {
			opts.Symmetry = symClasses(s, weights, costs)
		}
		base, err := s.MinCost(oracle, opts)
		if err != nil {
			t.Fatal(err)
		}
		if base.Frontier == nil {
			t.Fatalf("trial %d: cold run exported no frontier", trial)
		}

		// Cost-only edit; the frontier must stay valid.
		edited := make(map[string]float64, k)
		for _, a := range attrs {
			edited[a] = float64(rng.Intn(4))
		}
		es := s.WithCosts(func(a string) float64 { return edited[a] })
		eopts := opts
		if opts.Symmetry != nil {
			eopts.Symmetry = symClasses(es, weights, edited)
		}
		cold, err := es.MinCost(oracle, eopts)
		if err != nil {
			t.Fatal(err)
		}

		warmOpts := eopts
		warmOpts.Resume = base.Frontier
		runs := []struct {
			name string
			run  func() (Result, error)
		}{
			{"dispatch", func() (Result, error) { return es.MinCost(oracle, warmOpts) }},
			{"sorted", func() (Result, error) { return es.minCostSorted(oracle, warmOpts, new(atomic.Bool)) }},
			{"streaming", func() (Result, error) { return es.minCostStreaming(oracle, warmOpts, new(atomic.Bool)) }},
		}
		for _, r := range runs {
			warm, err := r.run()
			if err != nil {
				t.Fatal(err)
			}
			if warm.Found != cold.Found || warm.Hidden != cold.Hidden || warm.Cost != cold.Cost {
				t.Fatalf("trial %d %s: warm (found=%v hidden=%b cost=%g) != cold (found=%v hidden=%b cost=%g)",
					trial, r.name, warm.Found, warm.Hidden, warm.Cost, cold.Found, cold.Hidden, cold.Cost)
			}
			if !warm.Stats.Resumed {
				t.Fatalf("trial %d %s: resume not accepted", trial, r.name)
			}
			if warm.Stats.Checked+warm.Stats.Pruned != 1<<k {
				t.Fatalf("trial %d %s: Checked %d + Pruned %d != %d",
					trial, r.name, warm.Stats.Checked, warm.Stats.Pruned, 1<<k)
			}
			if warm.Frontier == nil {
				t.Fatalf("trial %d %s: warm run exported no frontier", trial, r.name)
			}
		}
	}
}

// TestResumeIrrationalCosts is the ulp-drift regression: with real-valued
// costs, the streaming scan prices candidates from the subset-sum table
// while the naive approach would price the seeded bound with the bit-loop
// CostOf — two summation orders that can differ in the last ulp. Seeding
// the bound one ulp below the scan's own price for the optimum pruned the
// optimum itself, so a warm re-solve of an unchanged feasible instance
// reported "no feasible solution". Resume must reproduce the cold result
// exactly on such costs.
func TestResumeIrrationalCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(10)
		attrs := make([]string, k)
		costs := make(map[string]float64, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%02d", i)
			costs[attrs[i]] = rng.Float64() * 3
		}
		s := testSpace(t, attrs, costs)
		oracle, _ := weightedOracle(s, rng)
		cold, err := s.MinCost(oracle, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range []struct {
			name string
			f    func() (Result, error)
		}{
			{"dispatch", func() (Result, error) { return s.MinCost(oracle, Options{Resume: cold.Frontier}) }},
			{"streaming", func() (Result, error) {
				return s.minCostStreaming(oracle, Options{Resume: cold.Frontier}, new(atomic.Bool))
			}},
		} {
			warm, err := run.f()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, run.name, err)
			}
			if warm.Found != cold.Found || warm.Hidden != cold.Hidden || warm.Cost != cold.Cost {
				t.Fatalf("trial %d %s: warm (found=%v hidden=%b cost=%.20g) != cold (found=%v hidden=%b cost=%.20g)",
					trial, run.name, warm.Found, warm.Hidden, warm.Cost, cold.Found, cold.Hidden, cold.Cost)
			}
		}
	}
}

// TestResumeMemoReplaysVerdicts pins the memo's effect: re-solving the SAME
// instance warm answers nearly every candidate from the carried verdicts
// and seeded stores. The only candidates that may still reach the oracle
// are equal-cost ties the exporting run bulk-pruned past its best index
// without deciding, so warm oracle calls are bounded by the tie count.
func TestResumeMemoReplaysVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(8)
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%02d", i)
		}
		s := testSpace(t, attrs, randomCosts(attrs, rng))
		oracle, _ := weightedOracle(s, rng)
		cold, err := s.MinCost(oracle, Options{})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := s.MinCost(oracle, Options{Resume: cold.Frontier})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Hidden != cold.Hidden || warm.Cost != cold.Cost || warm.Found != cold.Found {
			t.Fatalf("trial %d: warm diverged", trial)
		}
		ties := 0
		if cold.Found {
			for m := 0; m < 1<<k; m++ {
				if s.CostOf(Mask(m)) == cold.Cost {
					ties++
				}
			}
		}
		if warm.Stats.Checked > ties {
			t.Fatalf("trial %d: warm re-solve of the same instance asked the oracle %d times, more than the %d equal-cost ties (memo len %d, hits %d)",
				trial, warm.Stats.Checked, ties, cold.Frontier.MemoLen(), warm.Stats.MemoHits)
		}
	}
}

// TestResumeMismatchedUniverseIgnored: a frontier from a different universe
// must be conservatively ignored — cold behavior, Resumed=false.
func TestResumeMismatchedUniverseIgnored(t *testing.T) {
	a := testSpace(t, []string{"a", "b", "c"}, map[string]float64{"a": 1, "b": 2, "c": 3})
	b := testSpace(t, []string{"a", "b", "d"}, map[string]float64{"a": 1, "b": 2, "d": 3})
	oracle := func(v Mask) (bool, error) { return bits.OnesCount32(uint32(v)) <= 1, nil }
	base, err := a.MinCost(oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := b.MinCost(oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := b.MinCost(oracle, Options{Resume: base.Frontier})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Resumed || warm.Stats.ResumedSafe != 0 || warm.Stats.ResumedUnsafe != 0 || warm.Stats.MemoHits != 0 {
		t.Errorf("mismatched frontier was not ignored: %+v", warm.Stats)
	}
	if warm.Hidden != cold.Hidden || warm.Cost != cold.Cost {
		t.Errorf("mismatched resume changed the result")
	}
	// Same-universe sanity for the accessors.
	if sf, uf := base.Frontier.Counts(); sf+uf == 0 {
		t.Errorf("frontier stores empty after a completed run")
	}
	if base.Frontier.MemSize() <= 0 {
		t.Errorf("MemSize = %d", base.Frontier.MemSize())
	}
	if inc, found := base.Frontier.Incumbent(); found && inc != base.Hidden {
		t.Errorf("Incumbent %b != result %b", inc, base.Hidden)
	}
}

// TestWithCostsSharesUniverse: a WithCosts clone must behave exactly like a
// freshly built Space with the new costs (same optimum, same order), while
// sharing the universe slice.
func TestWithCostsSharesUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	attrs := []string{"a3", "a1", "a2", "a0"}
	first := randomCosts(attrs, rng)
	second := randomCosts(attrs, rng)
	s := testSpace(t, attrs, first)
	oracle, _ := weightedOracle(s, rng)

	clone := s.WithCosts(func(a string) float64 { return second[a] })
	fresh := testSpace(t, attrs, second)
	cr, err := clone.MinCost(oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fresh.MinCost(oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Hidden != fr.Hidden || cr.Cost != fr.Cost || cr.Found != fr.Found {
		t.Fatalf("WithCosts clone diverged: %+v vs %+v", cr, fr)
	}
	if got := clone.CostOf(clone.All()); got != fresh.CostOf(fresh.All()) {
		t.Fatalf("clone total cost %g != fresh %g", got, fresh.CostOf(fresh.All()))
	}
	// The original space is untouched.
	if got := s.CostOf(s.All()); got != testSum(first) {
		t.Fatalf("receiver costs mutated: %g", got)
	}
}

func testSum(m map[string]float64) float64 {
	tot := 0.0
	for _, v := range m {
		tot += v
	}
	return tot
}
