package search

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// LevelMax caps the full-lattice enumerations (AllSafeVisible,
// MinimalSafeHidden), which keep a bit per mask (128 KiB at k=20) and whose
// outputs are exponential anyway.
const LevelMax = 20

// AllSafeVisible enumerates every visible mask the oracle accepts, in
// ascending numeric mask order. It sweeps the subset lattice level by level
// (by popcount): a mask with a known-unsafe subset is unsafe by monotonicity
// and is decided without a test, so the oracle runs only for safe masks and
// for the minimal unsafe frontier. Levels are sharded over the worker pool.
func (s *Space) AllSafeVisible(oracle Oracle, opts Options) ([]Mask, Stats, error) {
	k := s.K()
	if k > LevelMax {
		return nil, Stats{}, fmt.Errorf("search: %d attributes too many to enumerate", k)
	}
	unsafeBits := newBitmap(1 << k)
	stats, err := sweepLevels(s.buildLevels(), opts, func(m Mask) (bool, error) {
		for x := m; x != 0; x &= x - 1 {
			if unsafeBits.get(m &^ (x & -x)) {
				unsafeBits.set(m)
				return false, nil // decided by monotonicity
			}
		}
		safe, err := oracle(m)
		if err != nil {
			return false, err
		}
		if !safe {
			unsafeBits.set(m)
		}
		return true, nil
	})
	if err != nil {
		return nil, stats, err
	}
	var out []Mask
	for m := 0; m < 1<<k; m++ {
		if !unsafeBits.get(Mask(m)) {
			out = append(out, Mask(m))
		}
	}
	return out, stats, nil
}

// MinimalSafeHidden enumerates the inclusion-minimal hidden masks whose
// complementary visible set the oracle accepts, ordered by popcount then
// numeric mask value. By Proposition 1 these generate every safe solution; a
// hidden mask with a known-safe subset is safe but not minimal, so it is
// skipped without a test.
func (s *Space) MinimalSafeHidden(oracle Oracle, opts Options) ([]Mask, Stats, error) {
	k := s.K()
	if k > LevelMax {
		return nil, Stats{}, fmt.Errorf("search: %d attributes too many to enumerate", k)
	}
	all := s.All()
	safeBits := newBitmap(1 << k)
	minimalBits := newBitmap(1 << k)
	levels := s.buildLevels()
	stats, err := sweepLevels(levels, opts, func(m Mask) (bool, error) {
		for x := m; x != 0; x &= x - 1 {
			if safeBits.get(m &^ (x & -x)) {
				safeBits.set(m)
				return false, nil // dominated: safe but not minimal
			}
		}
		safe, err := oracle(all &^ m)
		if err != nil {
			return false, err
		}
		if safe {
			safeBits.set(m)
			minimalBits.set(m)
		}
		return true, nil
	})
	if err != nil {
		return nil, stats, err
	}
	var out []Mask
	for _, level := range levels {
		for _, m := range level {
			if minimalBits.get(m) {
				out = append(out, m)
			}
		}
	}
	return out, stats, nil
}

// buildLevels buckets the universe's masks by popcount, each bucket in
// ascending numeric order.
func (s *Space) buildLevels() [][]Mask {
	k := s.K()
	levels := make([][]Mask, k+1)
	for m := 0; m < 1<<k; m++ {
		pc := bits.OnesCount32(uint32(m))
		levels[pc] = append(levels[pc], Mask(m))
	}
	return levels
}

// sweepLevels visits every mask of the universe in ascending popcount levels,
// sharding each level over the worker pool with a barrier between levels (a
// level only reads decisions from strictly smaller levels, so masks within
// one level are independent). visit returns whether it performed a safety
// test; its errors cancel the sweep.
func sweepLevels(levels [][]Mask, opts Options, visit func(Mask) (bool, error)) (Stats, error) {
	var checked, pruned atomic.Int64
	var firstErr atomic.Value
	var failed atomic.Bool
	for _, level := range levels {
		workers := opts.workers()
		if workers > len(level) {
			workers = len(level)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(level); i += workers {
					if failed.Load() {
						return
					}
					tested, err := visit(level[i])
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						failed.Store(true)
						return
					}
					if tested {
						checked.Add(1)
					} else {
						pruned.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		if failed.Load() {
			break
		}
	}
	stats := Stats{Checked: int(checked.Load()), Pruned: int(pruned.Load())}
	if err, ok := firstErr.Load().(error); ok {
		return stats, err
	}
	return stats, nil
}

// bitmap is a fixed-size atomic bit set over masks. Bits are only ever set,
// never cleared; reads and writes use atomics so same-word neighbours can be
// touched from different workers.
type bitmap struct{ words []uint64 }

func newBitmap(n int) *bitmap { return &bitmap{words: make([]uint64, (n+63)/64)} }

func (b *bitmap) set(m Mask) {
	atomic.OrUint64(&b.words[m>>6], 1<<(m&63))
}

func (b *bitmap) get(m Mask) bool {
	return atomic.LoadUint64(&b.words[m>>6])&(1<<(m&63)) != 0
}
