package search

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sync/atomic"
	"testing"
)

// countingBatch wraps an oracle as a BatchOracle that records pass count
// and the largest batch it answered.
func countingBatch(oracle Oracle) (BatchOracle, *atomic.Int64, *atomic.Int64) {
	var passes, maxLen atomic.Int64
	inner := Batched(oracle)
	return func(visible []Mask) ([]bool, error) {
		passes.Add(1)
		raiseMax(&maxLen, int64(len(visible)))
		return inner(visible)
	}, &passes, &maxLen
}

// TestBatchedMatchesUnbatched: on random monotone oracles, MinCost with a
// batch oracle must return a byte-identical Result (Found/Hidden/Cost) and
// keep Checked+Pruned = 2^k, for several batch sizes and both code paths.
func TestBatchedMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(10)
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%02d", k-i)
		}
		s := testSpace(t, attrs, randomCosts(attrs, rng))
		oracle := monotoneOracle(s, rng)
		plain, err := s.MinCost(oracle, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range []int{0, 1, 2, 7, 64} {
			for _, par := range []int{1, 3} {
				batch, passes, maxLen := countingBatch(oracle)
				opts := Options{Parallelism: par, Batch: batch, BatchSize: bs}
				sorted, err := s.minCostSorted(oracle, opts, new(atomic.Bool))
				if err != nil {
					t.Fatal(err)
				}
				if sorted.Found != plain.Found || sorted.Hidden != plain.Hidden || sorted.Cost != plain.Cost {
					t.Fatalf("trial %d bs=%d par=%d: batched sorted (found=%v hidden=%b cost=%g) != plain (found=%v hidden=%b cost=%g)",
						trial, bs, par, sorted.Found, sorted.Hidden, sorted.Cost, plain.Found, plain.Hidden, plain.Cost)
				}
				if sorted.Stats.Checked+sorted.Stats.Pruned != 1<<k {
					t.Fatalf("trial %d bs=%d par=%d: Checked %d + Pruned %d != %d",
						trial, bs, par, sorted.Stats.Checked, sorted.Stats.Pruned, 1<<k)
				}
				// Stats must reflect the real oracle traffic. Single-mask
				// flushes bypass Batch, so engine passes can exceed the
				// wrapper's count but never undercount it.
				if sorted.Stats.OraclePasses < int(passes.Load()) {
					t.Fatalf("trial %d bs=%d par=%d: OraclePasses %d < batch calls %d",
						trial, bs, par, sorted.Stats.OraclePasses, passes.Load())
				}
				if int64(sorted.Stats.BatchSize) < maxLen.Load() {
					t.Fatalf("trial %d bs=%d par=%d: BatchSize %d < observed %d",
						trial, bs, par, sorted.Stats.BatchSize, maxLen.Load())
				}

				batch2, _, _ := countingBatch(oracle)
				stream, err := s.minCostStreaming(oracle, Options{Parallelism: par, Batch: batch2, BatchSize: bs}, new(atomic.Bool))
				if err != nil {
					t.Fatal(err)
				}
				if stream.Found != plain.Found || stream.Hidden != plain.Hidden || stream.Cost != plain.Cost {
					t.Fatalf("trial %d bs=%d par=%d: batched streaming (found=%v hidden=%b cost=%g) != plain (found=%v hidden=%b cost=%g)",
						trial, bs, par, stream.Found, stream.Hidden, stream.Cost, plain.Found, plain.Hidden, plain.Cost)
				}
				if stream.Stats.Checked+stream.Stats.Pruned != 1<<k {
					t.Fatalf("trial %d bs=%d par=%d: streaming Checked %d + Pruned %d != %d",
						trial, bs, par, stream.Stats.Checked, stream.Stats.Pruned, 1<<k)
				}
			}
		}
	}
}

// TestBatchOracleErrors: a failing or short-answering batch oracle must
// surface as an error, not a wrong result.
func TestBatchOracleErrors(t *testing.T) {
	attrs := []string{"a", "b", "c", "d", "e"}
	s := testSpace(t, attrs, map[string]float64{"a": 1, "b": 1, "c": 1, "d": 1, "e": 1})
	oracle := func(v Mask) (bool, error) { return bits.OnesCount32(uint32(v)) <= 1, nil }

	boom := errors.New("boom")
	_, err := s.MinCost(oracle, Options{
		Parallelism: 2,
		Batch:       func(visible []Mask) ([]bool, error) { return nil, boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("failing batch oracle: err = %v, want %v", err, boom)
	}

	_, err = s.MinCost(oracle, Options{
		Parallelism: 2,
		Batch:       func(visible []Mask) ([]bool, error) { return make([]bool, len(visible)/2), nil },
	})
	if err == nil {
		t.Fatal("short batch answer accepted")
	}
}

// symmetricSetup builds a space plus a monotone oracle whose weights are
// shared within randomly chosen attribute groups, and returns the groups of
// size >= 2 that also share a cost — exactly the classes Options.Symmetry
// accepts.
func symmetricSetup(t *testing.T, rng *rand.Rand, k int) (*Space, Oracle, [][]int) {
	t.Helper()
	attrs := make([]string, k)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%02d", k-i) // reverse name order vs bits
	}
	groupOf := make([]int, k)
	nGroups := 1 + rng.Intn(3)
	for i := range groupOf {
		groupOf[i] = rng.Intn(nGroups)
	}
	weights := make([]float64, nGroups)
	costs := make(map[string]float64, k)
	groupCost := make([]float64, nGroups)
	for g := range weights {
		weights[g] = float64(rng.Intn(4))
		groupCost[g] = float64(rng.Intn(3))
	}
	total := 0.0
	for i, a := range attrs {
		costs[a] = groupCost[groupOf[i]]
		total += weights[groupOf[i]]
	}
	threshold := rng.Float64() * total
	s := testSpace(t, attrs, costs)
	oracle := func(v Mask) (bool, error) {
		sum := 0.0
		for x := v; x != 0; x &= x - 1 {
			sum += weights[groupOf[bits.TrailingZeros32(uint32(x))]]
		}
		return sum <= threshold, nil
	}
	classes := make([][]int, nGroups)
	for i, g := range groupOf {
		classes[g] = append(classes[g], i)
	}
	var out [][]int
	for _, cl := range classes {
		if len(cl) >= 2 {
			out = append(out, cl)
		}
	}
	return s, oracle, out
}

// TestSymmetryMatchesUnrestricted is the collapse soundness test: with
// genuinely interchangeable equal-cost classes, the symmetry-restricted
// search must return a byte-identical Result on both code paths while
// keeping the Checked+Pruned = 2^k accounting.
func TestSymmetryMatchesUnrestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	sawClass := false
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(9)
		s, oracle, classes := symmetricSetup(t, rng, k)
		if len(classes) > 0 {
			sawClass = true
		}
		plain, err := s.MinCost(oracle, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			opts := Options{Parallelism: par, Symmetry: classes}
			sorted, err := s.minCostSorted(oracle, opts, new(atomic.Bool))
			if err != nil {
				t.Fatal(err)
			}
			if sorted.Found != plain.Found || sorted.Hidden != plain.Hidden || sorted.Cost != plain.Cost {
				t.Fatalf("trial %d par %d classes %v: symmetric sorted (found=%v hidden=%b cost=%g) != plain (found=%v hidden=%b cost=%g)",
					trial, par, classes, sorted.Found, sorted.Hidden, sorted.Cost, plain.Found, plain.Hidden, plain.Cost)
			}
			if sorted.Stats.Checked+sorted.Stats.Pruned != 1<<k {
				t.Fatalf("trial %d par %d: symmetric Checked %d + Pruned %d != %d",
					trial, par, sorted.Stats.Checked, sorted.Stats.Pruned, 1<<k)
			}
			stream, err := s.minCostStreaming(oracle, opts, new(atomic.Bool))
			if err != nil {
				t.Fatal(err)
			}
			if stream.Found != plain.Found || stream.Hidden != plain.Hidden || stream.Cost != plain.Cost {
				t.Fatalf("trial %d par %d classes %v: symmetric streaming (found=%v hidden=%b cost=%g) != plain (found=%v hidden=%b cost=%g)",
					trial, par, classes, stream.Found, stream.Hidden, stream.Cost, plain.Found, plain.Hidden, plain.Cost)
			}
			if stream.Stats.Checked+stream.Stats.Pruned != 1<<k {
				t.Fatalf("trial %d par %d: symmetric streaming Checked %d + Pruned %d != %d",
					trial, par, stream.Stats.Checked, stream.Stats.Pruned, 1<<k)
			}
		}
	}
	if !sawClass {
		t.Fatal("no nontrivial symmetry class arose; widen the trial count")
	}
}

// TestSymmetryWithBatchMatches composes both tentpole features at once —
// the configuration the compiled-oracle wiring produces.
func TestSymmetryWithBatchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(9)
		s, oracle, classes := symmetricSetup(t, rng, k)
		plain, err := s.MinCost(oracle, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		batch, _, _ := countingBatch(oracle)
		got, err := s.MinCost(oracle, Options{Parallelism: 3, Batch: batch, BatchSize: 8, Symmetry: classes})
		if err != nil {
			t.Fatal(err)
		}
		if got.Found != plain.Found || got.Hidden != plain.Hidden || got.Cost != plain.Cost {
			t.Fatalf("trial %d classes %v: batched+symmetric (found=%v hidden=%b cost=%g) != plain (found=%v hidden=%b cost=%g)",
				trial, classes, got.Found, got.Hidden, got.Cost, plain.Found, plain.Hidden, plain.Cost)
		}
		if got.Stats.Checked+got.Stats.Pruned != 1<<k {
			t.Fatalf("trial %d: Checked %d + Pruned %d != %d", trial, got.Stats.Checked, got.Stats.Pruned, 1<<k)
		}
	}
}

// TestSymmetryValidation pins the rejection paths: bad indices, overlapping
// classes, and cost mixtures are configuration errors, not silent misprunes.
func TestSymmetryValidation(t *testing.T) {
	attrs := []string{"a", "b", "c"}
	s := testSpace(t, attrs, map[string]float64{"a": 1, "b": 1, "c": 2})
	oracle := func(v Mask) (bool, error) { return true, nil }
	for name, classes := range map[string][][]int{
		"out of range": {{0, 3}},
		"negative":     {{-1, 1}},
		"overlap":      {{0, 1}, {1, 2}},
		"mixed costs":  {{0, 2}},
	} {
		if _, err := s.MinCost(oracle, Options{Symmetry: classes}); err == nil {
			t.Errorf("%s: accepted %v", name, classes)
		}
	}
	// Singleton and empty classes are ignored, not errors.
	res, err := s.MinCost(oracle, Options{Symmetry: [][]int{{0}, {}, {0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Hidden != 0 {
		t.Fatalf("degenerate classes changed the result: %+v", res)
	}
}

// TestFrontierCapDrops: a cap of 1 on an antichain-rich instance must
// report drops in Stats.FrontierDropped while leaving the optimum intact.
func TestFrontierCapDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sawDrop := false
	for trial := 0; trial < 30; trial++ {
		k := 6 + rng.Intn(4)
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%02d", i)
		}
		s := testSpace(t, attrs, randomCosts(attrs, rng))
		oracle := monotoneOracle(s, rng)
		plain, err := s.MinCost(oracle, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		capped, err := s.MinCost(oracle, Options{Parallelism: 2, FrontierCap: 1})
		if err != nil {
			t.Fatal(err)
		}
		if capped.Found != plain.Found || capped.Hidden != plain.Hidden || capped.Cost != plain.Cost {
			t.Fatalf("trial %d: capped (found=%v hidden=%b cost=%g) != plain (found=%v hidden=%b cost=%g)",
				trial, capped.Found, capped.Hidden, capped.Cost, plain.Found, plain.Hidden, plain.Cost)
		}
		if capped.Stats.Checked+capped.Stats.Pruned != 1<<k {
			t.Fatalf("trial %d: capped Checked %d + Pruned %d != %d",
				trial, capped.Stats.Checked, capped.Stats.Pruned, 1<<k)
		}
		if capped.Stats.FrontierDropped > 0 {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Fatal("FrontierCap=1 never dropped a frontier mask; the counter is dead")
	}
}
