package search

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"secureview/internal/wire"
)

// realFrontier exports a frontier from an actual MinCost run so codec tests
// exercise the shapes the solver really produces (nil memos, empty
// antichains, found/unfound incumbents).
func realFrontier(t *testing.T, rng *rand.Rand, k int) *Frontier {
	t.Helper()
	attrs := make([]string, k)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%02d", i)
	}
	s := testSpace(t, attrs, randomCosts(attrs, rng))
	oracle, _ := weightedOracle(s, rng)
	res, err := s.MinCost(oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frontier == nil {
		t.Fatal("run exported no frontier")
	}
	return res.Frontier
}

// TestFrontierCodecRoundTrip: decoding an encoded frontier must reproduce
// its universe, antichains, memo, and incumbent exactly, and re-encoding
// must be byte-identical (the deterministic-memo-order property).
func TestFrontierCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		src := realFrontier(t, rng, rng.Intn(11))
		buf := src.AppendBinary(nil)
		dec, err := DecodeFrontier(wire.NewReader(buf))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(dec.attrs) != len(src.attrs) {
			t.Fatalf("trial %d: universe %d vs %d", trial, len(dec.attrs), len(src.attrs))
		}
		for i := range src.attrs {
			if dec.attrs[i] != src.attrs[i] {
				t.Fatalf("trial %d: attr %d %q vs %q", trial, i, dec.attrs[i], src.attrs[i])
			}
		}
		if len(dec.safe) != len(src.safe) || len(dec.unsafe) != len(src.unsafe) {
			t.Fatalf("trial %d: antichain sizes diverge", trial)
		}
		for i := range src.safe {
			if dec.safe[i] != src.safe[i] {
				t.Fatalf("trial %d: safe mask %d diverges", trial, i)
			}
		}
		for i := range src.unsafe {
			if dec.unsafe[i] != src.unsafe[i] {
				t.Fatalf("trial %d: unsafe mask %d diverges", trial, i)
			}
		}
		if len(dec.memo) != len(src.memo) {
			t.Fatalf("trial %d: memo %d vs %d", trial, len(dec.memo), len(src.memo))
		}
		for m, v := range src.memo {
			if got, ok := dec.memo[m]; !ok || got != v {
				t.Fatalf("trial %d: memo[%b] = %v,%v want %v", trial, m, got, ok, v)
			}
		}
		if dec.incumbent != src.incumbent || dec.found != src.found {
			t.Fatalf("trial %d: incumbent diverges", trial)
		}
		if !bytes.Equal(dec.AppendBinary(nil), buf) {
			t.Fatalf("trial %d: re-encode not byte-identical", trial)
		}
	}
}

// TestFrontierCodecValidation: oversized universes, out-of-universe masks,
// and truncation all fail cleanly.
func TestFrontierCodecValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := realFrontier(t, rng, 6)
	buf := src.AppendBinary(nil)

	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeFrontier(wire.NewReader(buf[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}

	// Universe beyond MaxAttrs.
	huge := wire.AppendU64(nil, MaxAttrs+1)
	for i := 0; i < MaxAttrs+1; i++ {
		huge = wire.AppendString(huge, fmt.Sprintf("x%d", i))
	}
	if _, err := DecodeFrontier(wire.NewReader(huge)); err == nil {
		t.Fatal("oversized universe decoded")
	}

	// A safe mask outside the universe.
	bad := wire.AppendU64(nil, 2)
	bad = wire.AppendString(bad, "a")
	bad = wire.AppendString(bad, "b")
	bad = wire.AppendU64(bad, 1)
	bad = wire.AppendU32(bad, 0xF0) // universe is 2 bits
	bad = wire.AppendU64(bad, 0)
	bad = wire.AppendU64(bad, 0)
	bad = wire.AppendU32(bad, 0)
	bad = wire.AppendBool(bad, false)
	if _, err := DecodeFrontier(wire.NewReader(bad)); err == nil {
		t.Fatal("out-of-universe mask decoded")
	}
}
