package search

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync/atomic"
	"testing"
)

func testSpace(t *testing.T, attrs []string, costs map[string]float64) *Space {
	t.Helper()
	s, err := NewSpace(attrs, func(a string) float64 { return costs[a] })
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace([]string{"a", "a"}, nil); err == nil {
		t.Error("duplicate attribute accepted")
	}
	big := make([]string, MaxAttrs+1)
	for i := range big {
		big[i] = fmt.Sprintf("a%d", i)
	}
	if _, err := NewSpace(big, nil); err == nil {
		t.Error("oversized universe accepted")
	}
	s, err := NewSpace(nil, nil)
	if err != nil || s.K() != 0 || s.All() != 0 {
		t.Errorf("empty universe: %v k=%d", err, s.K())
	}
}

func TestMaskConversions(t *testing.T) {
	s := testSpace(t, []string{"b", "a", "c"}, map[string]float64{"a": 1, "b": 2, "c": 4})
	m := s.MaskOf(s.NameSet(0b101)) // {b, c}
	if m != 0b101 {
		t.Errorf("roundtrip = %b, want 101", m)
	}
	if got := s.CostOf(0b101); got != 6 {
		t.Errorf("CostOf = %v, want 6", got)
	}
	if got := s.Names(0b110); got[0] != "a" || got[1] != "c" {
		t.Errorf("Names = %v", got)
	}
}

// TestLexLess pins the tie-break order: sets compare as ascending name
// sequences, so {a2} < {a2,a3} < {a3}.
func TestLexLess(t *testing.T) {
	// Universe deliberately NOT in name order: bit0=a3, bit1=a2, bit2=a1.
	s := testSpace(t, []string{"a3", "a2", "a1"}, nil)
	set := func(names ...string) Mask {
		var m Mask
		for _, n := range names {
			for i, a := range s.Attrs() {
				if a == n {
					m |= 1 << i
				}
			}
		}
		return m
	}
	cases := []struct {
		a, b []string
		less bool
	}{
		{[]string{"a2"}, []string{"a2", "a3"}, true}, // proper prefix wins
		{[]string{"a2", "a3"}, []string{"a2"}, false},
		{[]string{"a2", "a3"}, []string{"a3"}, true}, // first element decides
		{[]string{"a3"}, []string{"a2", "a3"}, false},
		{[]string{"a1"}, []string{"a2"}, true},
		{[]string{}, []string{"a1"}, true}, // empty set first
		{[]string{"a1"}, []string{"a1"}, false},
		{[]string{"a1", "a3"}, []string{"a1", "a2"}, false},
		{[]string{"a1", "a2"}, []string{"a1", "a3"}, true},
	}
	for _, c := range cases {
		if got := s.LexLess(set(c.a...), set(c.b...)); got != c.less {
			t.Errorf("LexLess(%v, %v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

// monotoneOracle builds a random monotone safety predicate: a visible set is
// safe iff its total weight stays under a threshold (subsets of safe sets are
// then safe, exactly Proposition 1's shape).
func monotoneOracle(s *Space, rng *rand.Rand) Oracle {
	weights := make([]float64, s.K())
	total := 0.0
	for i := range weights {
		weights[i] = float64(rng.Intn(4))
		total += weights[i]
	}
	threshold := rng.Float64() * total
	return func(v Mask) (bool, error) {
		sum := 0.0
		for x := v; x != 0; x &= x - 1 {
			sum += weights[bits.TrailingZeros32(uint32(x))]
		}
		return sum <= threshold, nil
	}
}

func randomCosts(attrs []string, rng *rand.Rand) map[string]float64 {
	costs := make(map[string]float64, len(attrs))
	for _, a := range attrs {
		costs[a] = float64(rng.Intn(3)) // integer costs with zeros force ties
	}
	return costs
}

// TestMinCostMatchesNaive is the engine's core property test: on random
// monotone oracles the pruned parallel search finds the same optimal cost as
// the naive 2^k loop, and its tie-break returns the lexicographically
// smallest optimal hidden set.
func TestMinCostMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		k := rng.Intn(10)
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%02d", k-i) // reverse name order vs bits
		}
		s := testSpace(t, attrs, randomCosts(attrs, rng))
		oracle := monotoneOracle(s, rng)
		naive, err := s.NaiveMinCost(oracle)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			got, err := s.MinCost(oracle, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if got.Found != naive.Found {
				t.Fatalf("trial %d par %d: Found=%v, naive %v", trial, par, got.Found, naive.Found)
			}
			if !got.Found {
				continue
			}
			if got.Cost != naive.Cost {
				t.Fatalf("trial %d par %d: cost %v, naive %v", trial, par, got.Cost, naive.Cost)
			}
			// The winner must be the lex-smallest optimum, verified by scan.
			want := Mask(0)
			haveWant := false
			for m := 0; m < 1<<k; m++ {
				if s.CostOf(Mask(m)) != naive.Cost {
					continue
				}
				safe, _ := oracle(s.All() &^ Mask(m))
				if !safe {
					continue
				}
				if !haveWant || s.LexLess(Mask(m), want) {
					want = Mask(m)
					haveWant = true
				}
			}
			if !haveWant || got.Hidden != want {
				t.Fatalf("trial %d par %d: hidden %s, want lex-min %s",
					trial, par, s.NameSet(got.Hidden), s.NameSet(want))
			}
			if got.Stats.Checked+got.Stats.Pruned != 1<<k {
				t.Fatalf("trial %d: Checked %d + Pruned %d != %d",
					trial, got.Stats.Checked, got.Stats.Pruned, 1<<k)
			}
		}
	}
}

// TestStreamingMatchesSortedAndNaive covers the streaming MinCost path
// directly (MinCost only dispatches to it above sortedMax, which no
// practical-size test reaches): on random monotone oracles it must agree
// with the sorted path and the naive loop on found/cost AND on the
// lexicographic tie-break, and keep the Checked+Pruned=2^k invariant.
func TestStreamingMatchesSortedAndNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(9)
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%02d", k-i) // reverse name order vs bits
		}
		s := testSpace(t, attrs, randomCosts(attrs, rng))
		oracle := monotoneOracle(s, rng)
		naive, err := s.NaiveMinCost(oracle)
		if err != nil {
			t.Fatal(err)
		}
		sorted, err := s.minCostSorted(oracle, Options{Parallelism: 2}, new(atomic.Bool))
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			stream, err := s.minCostStreaming(oracle, Options{Parallelism: par}, new(atomic.Bool))
			if err != nil {
				t.Fatal(err)
			}
			if stream.Found != naive.Found {
				t.Fatalf("trial %d par %d: streaming Found=%v, naive %v", trial, par, stream.Found, naive.Found)
			}
			if !stream.Found {
				continue
			}
			if stream.Cost != naive.Cost {
				t.Fatalf("trial %d par %d: streaming cost %v, naive %v", trial, par, stream.Cost, naive.Cost)
			}
			if stream.Hidden != sorted.Hidden {
				t.Fatalf("trial %d par %d: streaming tie-break %s, sorted %s",
					trial, par, s.NameSet(stream.Hidden), s.NameSet(sorted.Hidden))
			}
			if stream.Stats.Checked+stream.Stats.Pruned != 1<<k {
				t.Fatalf("trial %d par %d: streaming Checked %d + Pruned %d != %d",
					trial, par, stream.Stats.Checked, stream.Stats.Pruned, 1<<k)
			}
		}
	}
}

// TestCheckedCountsOracleCalls pins the SearchResult.Checked contract: it
// counts safety tests actually performed, nothing else.
func TestCheckedCountsOracleCalls(t *testing.T) {
	attrs := []string{"a", "b", "c", "d", "e", "f"}
	s := testSpace(t, attrs, map[string]float64{"a": 1, "b": 1, "c": 1, "d": 2, "e": 2, "f": 3})
	var calls atomic.Int64
	oracle := func(v Mask) (bool, error) {
		calls.Add(1)
		return bits.OnesCount32(uint32(v)) <= 3, nil
	}
	res, err := s.MinCost(oracle, Options{Parallelism: 4})
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	if int64(res.Stats.Checked) != calls.Load() {
		t.Errorf("Checked = %d, oracle calls = %d", res.Stats.Checked, calls.Load())
	}
	if res.Stats.Checked+res.Stats.Pruned != 1<<len(attrs) {
		t.Errorf("Checked+Pruned = %d, want %d", res.Stats.Checked+res.Stats.Pruned, 1<<len(attrs))
	}
	if res.Stats.Checked == 1<<len(attrs) {
		t.Error("no pruning happened at all")
	}

	calls.Store(0)
	naive, err := s.NaiveMinCost(oracle)
	if err != nil {
		t.Fatal(err)
	}
	if int64(naive.Stats.Checked) != calls.Load() {
		t.Errorf("naive Checked = %d, oracle calls = %d", naive.Stats.Checked, calls.Load())
	}
	if naive.Stats.Checked+naive.Stats.Pruned != 1<<len(attrs) {
		t.Errorf("naive Checked+Pruned = %d, want %d", naive.Stats.Checked+naive.Stats.Pruned, 1<<len(attrs))
	}
}

func TestMinCostNotFound(t *testing.T) {
	s := testSpace(t, []string{"a", "b"}, nil)
	res, err := s.MinCost(func(Mask) (bool, error) { return false, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Cost != 0 {
		t.Errorf("unsatisfiable search: Found=%v Cost=%v", res.Found, res.Cost)
	}
}

func TestMinCostError(t *testing.T) {
	s := testSpace(t, []string{"a", "b", "c"}, nil)
	boom := errors.New("boom")
	_, err := s.MinCost(func(Mask) (bool, error) { return false, boom }, Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	_, _, err = s.AllSafeVisible(func(Mask) (bool, error) { return false, boom }, Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Errorf("AllSafeVisible error not propagated: %v", err)
	}
	_, _, err = s.MinimalSafeHidden(func(Mask) (bool, error) { return false, boom }, Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Errorf("MinimalSafeHidden error not propagated: %v", err)
	}
}

// TestAllSafeVisibleMatchesBrute compares the level sweep against the plain
// 2^k loop on random monotone oracles.
func TestAllSafeVisibleMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(9)
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		s := testSpace(t, attrs, nil)
		oracle := monotoneOracle(s, rng)
		var want []Mask
		for m := 0; m < 1<<k; m++ {
			if safe, _ := oracle(Mask(m)); safe {
				want = append(want, Mask(m))
			}
		}
		var calls atomic.Int64
		counted := func(v Mask) (bool, error) { calls.Add(1); return oracle(v) }
		got, stats, err := s.AllSafeVisible(counted, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d safe sets, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d]=%b want %b", trial, i, got[i], want[i])
			}
		}
		if int64(stats.Checked) != calls.Load() || stats.Checked+stats.Pruned != 1<<k {
			t.Fatalf("trial %d: stats %+v, calls %d", trial, stats, calls.Load())
		}
	}
}

// bruteMinimalSafeHidden is the seed repo's original algorithm, kept as the
// reference for the level sweep.
func bruteMinimalSafeHidden(s *Space, oracle Oracle) []Mask {
	k := s.K()
	var minimal []Mask
	for size := 0; size <= k; size++ {
		for m := 0; m < 1<<k; m++ {
			if bits.OnesCount32(uint32(m)) != size {
				continue
			}
			dominated := false
			for _, mm := range minimal {
				if mm&Mask(m) == mm {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			if safe, _ := oracle(s.All() &^ Mask(m)); safe {
				minimal = append(minimal, Mask(m))
			}
		}
	}
	return minimal
}

func TestMinimalSafeHiddenMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(9)
		attrs := make([]string, k)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		s := testSpace(t, attrs, nil)
		oracle := monotoneOracle(s, rng)
		want := bruteMinimalSafeHidden(s, oracle)
		got, stats, err := s.MinimalSafeHidden(oracle, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d minimal sets, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d]=%b want %b", trial, i, got[i], want[i])
			}
		}
		if stats.Checked+stats.Pruned != 1<<k {
			t.Fatalf("trial %d: stats %+v don't cover the lattice", trial, stats)
		}
	}
}

func TestMemoize(t *testing.T) {
	var calls atomic.Int64
	oracle := Memoize(func(v Mask) (bool, error) {
		calls.Add(1)
		return v == 0, nil
	})
	for i := 0; i < 3; i++ {
		if safe, err := oracle(0); err != nil || !safe {
			t.Fatal("memoized result wrong")
		}
		if safe, err := oracle(5); err != nil || safe {
			t.Fatal("memoized result wrong")
		}
	}
	if calls.Load() != 2 {
		t.Errorf("inner oracle called %d times, want 2", calls.Load())
	}
}

func TestFrontier(t *testing.T) {
	f := newFrontier(8)
	f.insertMinimal(0b1100)
	f.insertMinimal(0b0100) // subsumes 1100
	f.insertMinimal(0b1100) // covered, ignored
	if !f.dominatesSuper(0b0101) || f.dominatesSuper(0b0011) {
		t.Error("minimal frontier domination wrong")
	}
	if len(f.masks) != 1 || f.masks[0] != 0b0100 {
		t.Errorf("minimal frontier = %b", f.masks)
	}
	g := newFrontier(8)
	g.insertMaximal(0b0100)
	g.insertMaximal(0b1100) // subsumes 0100
	g.insertMaximal(0b0100) // covered, ignored
	if !g.dominatesSub(0b1000) || g.dominatesSub(0b0011) {
		t.Error("maximal frontier domination wrong")
	}
	if len(g.masks) != 1 || g.masks[0] != 0b1100 {
		t.Errorf("maximal frontier = %b", g.masks)
	}
}

func TestSetDefaultParallelism(t *testing.T) {
	defer SetDefaultParallelism(0)
	SetDefaultParallelism(3)
	if got := (Options{}).workers(); got != 3 {
		t.Errorf("default workers = %d, want 3", got)
	}
	if got := (Options{Parallelism: 2}).workers(); got != 2 {
		t.Errorf("explicit workers = %d, want 2", got)
	}
	SetDefaultParallelism(0)
	if got := (Options{}).workers(); got < 1 {
		t.Errorf("GOMAXPROCS default = %d", got)
	}
}

// TestPrunedBeatsNaiveOnChecks demonstrates the engine's point: when safety
// hinges on hiding output attributes (which sit on the high mask bits, as in
// ModuleView.Attrs), the naive numeric scan burns safety tests on a huge
// prefix of the space while cost-ordered exploration plus the Proposition 1
// frontier gets there in a handful.
func TestPrunedBeatsNaiveOnChecks(t *testing.T) {
	k := 12
	attrs := make([]string, k)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%02d", i)
	}
	costs := map[string]float64{}
	for _, a := range attrs {
		costs[a] = 1
	}
	s := testSpace(t, attrs, costs)
	// Safe iff at least 2 of the LAST 4 attributes are hidden.
	top := Mask(0b1111) << (k - 4)
	oracle := func(v Mask) (bool, error) {
		return bits.OnesCount32(uint32(v&top)) <= 2, nil
	}
	naive, err := s.NaiveMinCost(oracle)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := s.MinCost(oracle, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Cost != naive.Cost || !pruned.Found {
		t.Fatalf("cost mismatch: %v vs %v", pruned.Cost, naive.Cost)
	}
	if pruned.Stats.Checked*4 > naive.Stats.Checked {
		t.Errorf("engine checked %d, naive %d — expected ≥4× fewer tests",
			pruned.Stats.Checked, naive.Stats.Checked)
	}
	if math.IsInf(pruned.Cost, 1) {
		t.Error("cost not materialized")
	}
}

// lexRank must be a monotone embedding of the lexLess order: exhaustive
// pairwise check on a small universe, randomized on a large one.
func TestLexRankMatchesLexLess(t *testing.T) {
	for _, k := range []int{1, 2, 3, 6, 10} {
		n := 1 << k
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				want := lexLess(Mask(x), Mask(y))
				got := lexRank(Mask(x), k) < lexRank(Mask(y), k)
				if got != want {
					t.Fatalf("k=%d x=%b y=%b: lexRank order %v, lexLess %v", k, x, y, got, want)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(5))
	const k = 24
	for trial := 0; trial < 200000; trial++ {
		x, y := Mask(rng.Intn(1<<k)), Mask(rng.Intn(1<<k))
		if lexLess(x, y) != (lexRank(x, k) < lexRank(y, k)) {
			t.Fatalf("k=%d x=%b y=%b: lexRank disagrees with lexLess", k, x, y)
		}
	}
}
