package search

import (
	"fmt"
	"sort"

	"secureview/internal/wire"
)

// Snapshot codec for Frontier. Everything a Frontier holds is already the
// minimal cost-independent warm state — attribute universe, domination
// antichains, verdict memo, incumbent — so the codec is a direct transcription
// with one twist: the memo map is emitted in sorted-key order so that encoding
// the same Frontier twice yields identical bytes (snapshots diff cleanly and
// checksums are reproducible).

// AppendBinary appends the frontier's state to buf and returns the extended
// slice. Decode with DecodeFrontier.
func (f *Frontier) AppendBinary(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(len(f.attrs)))
	for _, a := range f.attrs {
		buf = wire.AppendString(buf, a)
	}
	buf = wire.AppendU64(buf, uint64(len(f.safe)))
	for _, m := range f.safe {
		buf = wire.AppendU32(buf, uint32(m))
	}
	buf = wire.AppendU64(buf, uint64(len(f.unsafe)))
	for _, m := range f.unsafe {
		buf = wire.AppendU32(buf, uint32(m))
	}
	keys := make([]Mask, 0, len(f.memo))
	for m := range f.memo {
		keys = append(keys, m)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf = wire.AppendU64(buf, uint64(len(keys)))
	for _, m := range keys {
		buf = wire.AppendU32(buf, uint32(m))
		buf = wire.AppendBool(buf, f.memo[m])
	}
	buf = wire.AppendU32(buf, uint32(f.incumbent))
	buf = wire.AppendBool(buf, f.found)
	return buf
}

// DecodeFrontier decodes one Frontier from r. The universe size and every
// mask are validated against the MaxAttrs mask width, so a corrupt payload
// cannot produce a frontier whose masks reach outside any Space it could
// match; a frontier for a mismatched universe is already conservatively
// ignored at resume time.
func DecodeFrontier(r *wire.Reader) (*Frontier, error) {
	k := r.Count(1)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if k > MaxAttrs {
		return nil, fmt.Errorf("search: decoded frontier universe %d exceeds %d attributes", k, MaxAttrs)
	}
	f := &Frontier{attrs: make([]string, k)}
	seen := make(map[string]bool, k)
	for i := range f.attrs {
		a := r.String()
		if a == "" && r.Err() == nil {
			return nil, fmt.Errorf("search: decoded frontier attribute %d has empty name", i)
		}
		if seen[a] {
			return nil, fmt.Errorf("search: decoded frontier duplicates attribute %q", a)
		}
		seen[a] = true
		f.attrs[i] = a
	}
	all := Mask(1)<<k - 1
	readMasks := func(kind string) ([]Mask, error) {
		n := r.Count(4)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n == 0 {
			return nil, nil
		}
		ms := make([]Mask, n)
		for i := range ms {
			m := Mask(r.U32())
			if m&^all != 0 && r.Err() == nil {
				return nil, fmt.Errorf("search: decoded %s mask %b outside universe", kind, m)
			}
			ms[i] = m
		}
		return ms, nil
	}
	var err error
	if f.safe, err = readMasks("safe"); err != nil {
		return nil, err
	}
	if f.unsafe, err = readMasks("unsafe"); err != nil {
		return nil, err
	}
	nMemo := r.Count(5)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nMemo > memoCap {
		return nil, fmt.Errorf("search: decoded memo of %d verdicts exceeds cap %d", nMemo, memoCap)
	}
	if nMemo > 0 {
		f.memo = make(map[Mask]bool, nMemo)
		for i := 0; i < nMemo; i++ {
			m := Mask(r.U32())
			v := r.Bool()
			if m&^all != 0 && r.Err() == nil {
				return nil, fmt.Errorf("search: decoded memo mask %b outside universe", m)
			}
			f.memo[m] = v
		}
	}
	f.incumbent = Mask(r.U32())
	f.found = r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if f.incumbent&^all != 0 {
		return nil, fmt.Errorf("search: decoded incumbent %b outside universe", f.incumbent)
	}
	return f, nil
}
