package search

import (
	"fmt"
	"math/bits"
	"sort"
)

// symFilter implements the Options.Symmetry canonical-prefix restriction.
// Each class stores its member bits plus, for every count h, the mask of
// its h name-smallest members; a hidden mask is canonical iff its
// intersection with every class is exactly such a prefix.
//
// Soundness: class members are oracle-interchangeable and equal-cost, so
// swapping a hidden member cj for an unhidden name-smaller member ci of the
// same class preserves cost and safety and strictly lowers the hidden
// set's lexicographic rank (the sorted name sequences first differ at ci,
// which only the swapped set contains). Repeating the exchange shows the
// lexicographically smallest minimum-cost hidden set hides a name-prefix
// of every class — i.e. the engine's canonical winner under the (cost,
// lex) order is itself canonical, so restricting enumeration to canonical
// masks returns a byte-identical Result.
type symFilter struct {
	classes  []Mask   // per class: all member bits
	prefixes [][]Mask // per class: prefixes[h] = the h name-smallest members
}

// newSymFilter validates and compiles Options.Symmetry: indices must lie in
// the universe, appear in at most one class, and share one hiding cost per
// class. Classes with fewer than two members are ignored; nil is returned
// when nothing remains.
func (s *Space) newSymFilter(classes [][]int) (*symFilter, error) {
	if len(classes) == 0 {
		return nil, nil
	}
	k := s.K()
	var used Mask
	f := &symFilter{}
	for _, cl := range classes {
		if len(cl) < 2 {
			continue
		}
		members := append([]int(nil), cl...)
		for _, i := range members {
			if i < 0 || i >= k {
				return nil, fmt.Errorf("search: symmetry class index %d outside universe [0,%d)", i, k)
			}
			bit := Mask(1) << i
			if used&bit != 0 {
				return nil, fmt.Errorf("search: attribute %d (%s) appears in more than one symmetry class", i, s.attrs[i])
			}
			used |= bit
			if s.costs[i] != s.costs[members[0]] {
				return nil, fmt.Errorf("search: symmetry class mixes costs (%s=%g, %s=%g)",
					s.attrs[members[0]], s.costs[members[0]], s.attrs[i], s.costs[i])
			}
		}
		// Name order is permuted-bit order: rank ascending = name ascending.
		sort.Slice(members, func(a, b int) bool { return s.permBit[members[a]] < s.permBit[members[b]] })
		var cm Mask
		prefixes := make([]Mask, len(members)+1)
		for h, i := range members {
			cm |= 1 << i
			prefixes[h+1] = prefixes[h] | 1<<i
		}
		f.classes = append(f.classes, cm)
		f.prefixes = append(f.prefixes, prefixes)
	}
	if len(f.classes) == 0 {
		return nil, nil
	}
	return f, nil
}

// canonical reports whether the hidden mask hides a name-prefix of every
// symmetry class.
func (f *symFilter) canonical(hidden Mask) bool {
	for ci, cm := range f.classes {
		h := hidden & cm
		if h != f.prefixes[ci][bits.OnesCount32(uint32(h))] {
			return false
		}
	}
	return true
}
