package search

import "math"

// Warm-start support: a finished MinCost run can export its Proposition 1
// domination stores plus incumbent as a Frontier, and a later run over the
// SAME attribute universe can import it via Options.Resume. Soundness rests
// on the safety verdicts being cost-independent — an oracle answers for a
// visible set, never for a cost — so every decided safe/unsafe mask remains
// valid under any re-weighting of the hiding costs. A Frontier is therefore
// reusable across cost-only edits of a problem; any structural change (the
// attribute universe differs in content or order) is detected at resume time
// and the Frontier is conservatively ignored, falling back to a cold search.

// memoCap bounds the exported verdict memo. Beyond it the memo restarts
// from the current run's own verdicts: an edit session that has drifted far
// enough to accumulate a million distinct verdicts is no longer "the same
// instance with tweaked costs", and an unbounded memo would defeat the
// cache accounting above it.
const memoCap = 1 << 20

// Frontier is the warm-start state exported by a MinCost run: the attribute
// universe it was computed over, the Proposition 1 domination antichains
// (maximal safe / minimal unsafe VISIBLE masks), the full verdict memo of
// every oracle answer the run obtained (and inherited), and the run's
// incumbent hidden mask. All of it is cost-independent, which is what makes
// re-importing it sound under re-weighted costs. Frontiers are immutable
// after creation and safe to share across concurrent resuming searches.
type Frontier struct {
	attrs     []string
	safe      []Mask        // inclusion-maximal safe visible masks
	unsafe    []Mask        // inclusion-minimal unsafe visible masks
	memo      map[Mask]bool // visible mask -> oracle verdict
	incumbent Mask          // optimal hidden mask of the exporting run
	found     bool          // whether the exporting run found any safe view
}

// Attrs returns the attribute universe the frontier was computed over
// (do not mutate). Resume only accepts a Frontier whose universe matches
// the target Space exactly, element for element.
func (f *Frontier) Attrs() []string { return f.attrs }

// Counts returns the number of stored maximal-safe and minimal-unsafe
// visible masks.
func (f *Frontier) Counts() (safe, unsafe int) { return len(f.safe), len(f.unsafe) }

// MemoLen returns the number of memoized oracle verdicts carried by the
// frontier.
func (f *Frontier) MemoLen() int { return len(f.memo) }

// Incumbent returns the exporting run's optimal hidden mask and whether one
// was found. Under re-weighted costs it is merely a feasible (safe) hidden
// set, not necessarily optimal.
func (f *Frontier) Incumbent() (Mask, bool) { return f.incumbent, f.found }

// MemSize estimates the retained bytes of the frontier for cache accounting:
// mask storage plus the attribute strings (headers + bytes).
func (f *Frontier) MemSize() int64 {
	// A map[Mask]bool entry retains roughly 5 payload bytes plus bucket
	// overhead; 24 bytes per entry is the usual empirical figure.
	size := int64(len(f.safe)+len(f.unsafe))*4 + int64(len(f.memo))*24
	for _, a := range f.attrs {
		size += int64(len(a)) + 16
	}
	return size + 64
}

// matches reports whether the frontier's universe is exactly the Space's.
func (f *Frontier) matches(s *Space) bool {
	if f == nil || len(f.attrs) != len(s.attrs) {
		return false
	}
	for i, a := range f.attrs {
		if s.attrs[i] != a {
			return false
		}
	}
	return true
}

// seedResume imports a Frontier into freshly created domination stores. It
// returns whether the frontier was accepted (universe matched) and how many
// masks of each kind were imported; a mismatched or nil frontier imports
// nothing, degrading to a cold search. Called before any worker starts, so
// the store inserts are uncontended.
func (s *Space) seedResume(f *Frontier, safeFront, unsafeFront *frontier) (ok bool, nSafe, nUnsafe int) {
	if !f.matches(s) {
		return false, 0, 0
	}
	all := s.All()
	for _, v := range f.safe {
		if v&^all != 0 {
			continue // defensive: mask outside the universe
		}
		safeFront.insertMaximal(v)
		nSafe++
	}
	for _, v := range f.unsafe {
		if v&^all != 0 {
			continue
		}
		unsafeFront.insertMinimal(v)
		nUnsafe++
	}
	return true, nSafe, nUnsafe
}

// resumeMemo returns the verdict memo the run should consult: the
// frontier's when its universe matches, nil otherwise. The map is read-only
// for the whole run (Frontiers are immutable), so workers share it without
// locking.
func (s *Space) resumeMemo(f *Frontier) map[Mask]bool {
	if !f.matches(s) {
		return nil
	}
	return f.memo
}

// warmStreaming reports whether a resumed search should take the streaming
// scan even below sortedMax: with a matching frontier carrying a feasible
// incumbent, the seeded cost bound disposes of almost every mask in one
// compare, which beats re-keying and radix-sorting the full candidate list.
// The streaming and sorted paths return byte-identical optima, so the
// dispatch choice never changes the answer.
func (s *Space) warmStreaming(f *Frontier) bool {
	return f.matches(s) && f.found
}

// verdict records one fresh oracle answer for the exported memo.
type verdict struct {
	vis  Mask
	safe bool
}

// mergeMemo builds the exported verdict memo from the inherited entries
// plus the run's fresh answers. When the union would exceed memoCap the
// inherited entries are dropped and the memo restarts from this run's own
// verdicts, bounding warm-state growth across long edit chains.
func mergeMemo(old map[Mask]bool, fresh [][]verdict) map[Mask]bool {
	n := 0
	for _, fs := range fresh {
		n += len(fs)
	}
	if n+len(old) == 0 {
		return nil
	}
	var out map[Mask]bool
	if len(old) > 0 && n+len(old) <= memoCap {
		out = make(map[Mask]bool, n+len(old))
		for m, v := range old {
			out[m] = v
		}
	} else {
		out = make(map[Mask]bool, n)
	}
	for _, fs := range fresh {
		for _, f := range fs {
			out[f.vis] = f.safe
		}
	}
	return out
}

// seedBound returns the cheapest hidden-mask cost among the frontier's safe
// visible masks under the CURRENT Space costs (the complement of a safe
// visible set is a feasible hidden set), or +Inf when none apply. Used to
// pre-charge the streaming path's shared best-cost bound: candidates
// strictly above it can never beat the already-known feasible solution.
//
// costOf MUST be the exact cost evaluation the resuming scan applies to its
// own candidates (the subset-sum table below sortedMax, the bit loop above
// it). Floating-point addition is not associative, so pricing the seed
// through a different summation order can land one ulp above the scan's
// price for the same mask — and "equal cost stays in play" then prunes the
// known optimum itself, turning a feasible instance infeasible on resume.
func (s *Space) seedBound(f *Frontier, costOf func(Mask) float64) float64 {
	all := s.All()
	best := math.Inf(1)
	for _, v := range f.safe {
		if v&^all != 0 {
			continue
		}
		if c := costOf(all &^ v); c < best {
			best = c
		}
	}
	if f.found && f.incumbent&^all == 0 {
		// The incumbent's visible complement may have been dropped from a
		// capped safe store; it is still a known-safe view.
		if c := costOf(f.incumbent); c < best {
			best = c
		}
	}
	return best
}

// snapshot copies the store's current antichain for export.
func (f *frontier) snapshot() []Mask {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(f.masks) == 0 {
		return nil
	}
	out := make([]Mask, len(f.masks))
	copy(out, f.masks)
	return out
}
