// Package search is the shared subset-search engine behind the Secure-View
// optimizations: a bitset-mask enumerator over an ordered attribute universe
// with monotonicity pruning (Proposition 1 of Davidson et al., PODS 2011),
// cost-ordered exploration, and a goroutine worker pool.
//
// The paper proves the standalone Secure-View problem needs 2^Ω(k) safety
// tests in the worst case (Theorem 3), so the engine cannot beat exponential
// asymptotics; what it does instead is (a) avoid allocating a name set per
// candidate — subsets are machine words until a solution is materialized,
// (b) exploit that safety is monotone in the hidden set — once a visible set
// is proved safe or unsafe, every dominated mask is decided for free, and
// (c) shard the remaining mask space over workers with shared best-cost
// tracking, so multi-core hardware is actually used.
//
// Two optional reductions compose with the pruning without moving the
// answer: Options.Batch tests frontier survivors many masks per oracle
// pass (geometrically grown per-worker batches; see Stats.OraclePasses
// and Stats.BatchSize), and Options.Symmetry restricts enumeration to
// canonical name-prefix members of interchangeable equal-cost attribute
// classes, counting the skipped orbit as pruned — both keep the
// (cost, lex) optimum byte-identical.
//
// Oracles passed to the engine MUST be monotone: if a visible set is safe,
// every subset of it is safe (equivalently, supersets of safe hidden sets
// are safe). This is Proposition 1 for standalone module privacy and holds
// for workflow privacy as well; it does NOT hold for adversarial oracles
// such as privacy.NewAdversaryOracle, which is why the Theorem 3 experiment
// keeps its own assumption-free loop.
package search

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"secureview/internal/relation"
)

// MaxAttrs is the largest universe the engine accepts (mask width).
const MaxAttrs = 24

// Mask is a subset of the universe: bit i is attribute i of the Space.
type Mask uint32

// Space fixes a search universe: an ordered attribute list with per-attribute
// hiding costs. Bit i of every Mask refers to Attrs()[i].
type Space struct {
	attrs []string
	costs []float64
	// permBit[i] is the bit attribute i occupies after sorting attributes by
	// name; permuted masks make the lexicographic tie-break O(1).
	permBit []Mask
	// scat lazily holds the cost-independent lex-order candidate scatter,
	// shared with Spaces derived via WithCosts so cost-only edits skip
	// rebuilding it.
	scat *lexScatter
}

// lexScatter caches every mask of a k-bit universe in ascending lexLess
// order. The order depends only on the attribute names, never on costs, so
// one scatter serves a whole WithCosts family of Spaces.
type lexScatter struct {
	once  sync.Once
	masks []Mask
}

// NewSpace builds a Space over the attributes with costs from cost (nil means
// all-zero costs). Attributes must be distinct and at most MaxAttrs many.
func NewSpace(attrs []string, cost func(string) float64) (*Space, error) {
	k := len(attrs)
	if k > MaxAttrs {
		return nil, fmt.Errorf("search: %d attributes exceed the %d-bit mask universe", k, MaxAttrs)
	}
	seen := make(map[string]struct{}, k)
	for _, a := range attrs {
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("search: duplicate attribute %q", a)
		}
		seen[a] = struct{}{}
	}
	s := &Space{
		attrs:   append([]string(nil), attrs...),
		costs:   make([]float64, k),
		permBit: make([]Mask, k),
	}
	if cost != nil {
		for i, a := range attrs {
			s.costs[i] = cost(a)
		}
	}
	// Rank attributes by name; attribute i gets bit rank(i) in permuted masks.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return s.attrs[order[x]] < s.attrs[order[y]] })
	for rank, i := range order {
		s.permBit[i] = 1 << rank
	}
	s.scat = &lexScatter{}
	return s, nil
}

// WithCosts returns a Space over the same attribute universe with re-read
// costs, sharing the cost-independent scaffolding (name permutation and the
// lex-order candidate scatter) with the receiver. It is the cheap way to
// re-solve after a cost-only edit: the sorted search path then only has to
// re-key and radix-sort, not recompute the lex order. nil means all-zero
// costs, as in NewSpace.
func (s *Space) WithCosts(cost func(string) float64) *Space {
	c := &Space{
		attrs:   s.attrs,
		costs:   make([]float64, len(s.attrs)),
		permBit: s.permBit,
		scat:    s.scat,
	}
	if cost != nil {
		for i, a := range s.attrs {
			c.costs[i] = cost(a)
		}
	}
	return c
}

// K returns the universe size.
func (s *Space) K() int { return len(s.attrs) }

// Attrs returns the ordered attribute universe (do not mutate).
func (s *Space) Attrs() []string { return s.attrs }

// All returns the full-universe mask.
func (s *Space) All() Mask { return Mask(1)<<len(s.attrs) - 1 }

// CostOf returns the total cost of the masked attributes.
func (s *Space) CostOf(m Mask) float64 {
	total := 0.0
	for x := m; x != 0; x &= x - 1 {
		total += s.costs[bits.TrailingZeros32(uint32(x))]
	}
	return total
}

// NameSet materializes a mask as a relation.NameSet.
func (s *Space) NameSet(m Mask) relation.NameSet {
	out := make(relation.NameSet, bits.OnesCount32(uint32(m)))
	for x := m; x != 0; x &= x - 1 {
		out.Add(s.attrs[bits.TrailingZeros32(uint32(x))])
	}
	return out
}

// Names returns the masked attributes in universe order.
func (s *Space) Names(m Mask) []string {
	out := make([]string, 0, bits.OnesCount32(uint32(m)))
	for x := m; x != 0; x &= x - 1 {
		out = append(out, s.attrs[bits.TrailingZeros32(uint32(x))])
	}
	return out
}

// MaskOf returns the mask of the universe attributes present in set; names
// outside the universe are ignored.
func (s *Space) MaskOf(set relation.NameSet) Mask {
	var m Mask
	for i, a := range s.attrs {
		if set.Has(a) {
			m |= 1 << i
		}
	}
	return m
}

// perm returns the mask with bits permuted into name-sorted order.
func (s *Space) perm(m Mask) Mask {
	var p Mask
	for x := m; x != 0; x &= x - 1 {
		p |= s.permBit[bits.TrailingZeros32(uint32(x))]
	}
	return p
}

// LexLess reports whether mask a denotes a lexicographically smaller set than
// mask b, comparing the two sets as ascending name sequences (so {a2} < {a2,
// a3} < {a3}). It is the deterministic tie-break among equal-cost optima.
func (s *Space) LexLess(a, b Mask) bool {
	return lexLess(s.perm(a), s.perm(b))
}

// lexRank maps a name-sorted (permuted) mask to its preorder index in the
// lexLess order over a k-bit universe: lexLess(x, y) ⟺ lexRank(x) <
// lexRank(y). The order is the preorder walk of the subset tree in which a
// node's children extend it with one element larger than its maximum, so
// rank(S) for S = {s1 < ... < sm} adds, per element, 1 (the node itself)
// plus the sizes 2^(k-t) of the earlier-sibling subtrees skipped. Computing
// it once per mask turns the engine's sort comparator into two scalar
// compares instead of repeated branchy bit fiddling.
func lexRank(perm Mask, k int) uint32 {
	var rank uint32
	prev := 0 // last element rank consumed
	for x := perm; x != 0; x &= x - 1 {
		j := bits.TrailingZeros32(uint32(x)) + 1
		rank += uint32(1 + (1<<(k-prev) - 1<<(k-j+1)))
		prev = j
	}
	return rank
}

// lexLess compares two name-sorted (permuted) masks as ascending element
// sequences. At the first rank where membership differs, the mask holding
// that rank is smaller — unless the other mask has no higher rank at all, in
// which case it is a proper prefix and wins.
func lexLess(x, y Mask) bool {
	if x == y {
		return false
	}
	d := x ^ y
	b := d & -d // lowest differing rank
	atOrBelow := b<<1 - 1
	if x&b != 0 {
		// x owns the first differing rank; y wins only as a proper prefix.
		return y&^atOrBelow != 0
	}
	return x&^atOrBelow == 0
}

// Oracle answers whether a VISIBLE mask is safe. Implementations must be
// monotone (see the package comment) and safe for concurrent use.
type Oracle func(visible Mask) (bool, error)

// BatchOracle answers a whole slice of visible masks in one call, returning
// one verdict per mask in order. Implementations share the per-candidate
// work across the slice (the compiled oracle answers a chunk of masks in a
// single pass over its row codes) and must satisfy the same monotonicity
// and concurrency contract as Oracle; element i must equal what the
// per-mask oracle would answer for visible[i].
type BatchOracle func(visible []Mask) ([]bool, error)

// Batched lifts a per-mask oracle to the BatchOracle interface by looping —
// no batching win, but it lets call sites treat both uniformly.
func Batched(oracle Oracle) BatchOracle {
	return func(visible []Mask) ([]bool, error) {
		out := make([]bool, len(visible))
		for i, v := range visible {
			safe, err := oracle(v)
			if err != nil {
				return nil, err
			}
			out[i] = safe
		}
		return out, nil
	}
}

// Memoize wraps an oracle with a concurrency-safe memo so repeated queries
// for the same visible mask (e.g. across engine calls sharing one oracle)
// are answered once. Errors are not memoized.
func Memoize(oracle Oracle) Oracle {
	var memo sync.Map
	return func(v Mask) (bool, error) {
		if r, ok := memo.Load(v); ok {
			return r.(bool), nil
		}
		safe, err := oracle(v)
		if err != nil {
			return false, err
		}
		memo.Store(v, safe)
		return safe, nil
	}
}

// DefaultFrontierCap is the Proposition 1 domination-store bound used when
// Options.FrontierCap is zero.
const DefaultFrontierCap = 256

// DefaultBatchSize is the per-pass mask cap used when Options.Batch is set
// but Options.BatchSize is zero.
const DefaultBatchSize = 64

// Options tunes an engine run.
type Options struct {
	// Parallelism is the worker-pool size. Zero or negative uses the package
	// default: runtime.GOMAXPROCS(0), overridable via SetDefaultParallelism.
	Parallelism int

	// Batch, when non-nil, lets MinCost submit sibling candidates to the
	// oracle in slices of up to BatchSize masks per call instead of one at a
	// time, so a batching oracle (oracle.Compiled.IsSafeBatch) can amortize
	// its per-candidate pass. Batch must agree element-wise with the
	// per-mask oracle, which remains required (levels enumeration and
	// single-candidate flushes still use it).
	Batch BatchOracle

	// BatchSize caps the masks per Batch call (0 = DefaultBatchSize).
	// Ignored when Batch is nil.
	BatchSize int

	// FrontierCap bounds each Proposition 1 domination store
	// (0 = DefaultFrontierCap). Beyond the cap extra frontier masks are
	// dropped — pruning weakens, correctness is unaffected — and the drops
	// are counted in Stats.FrontierDropped.
	FrontierCap int

	// Symmetry lists equivalence classes of attributes (indices into
	// Attrs()) that are interchangeable under the oracle AND carry equal
	// hiding costs: swapping the visibility of two class members never
	// changes the oracle's verdict or a candidate's cost. MinCost then
	// enumerates only canonical masks — those hiding, within each class, a
	// prefix of the class's name-sorted members — and counts the skipped
	// masks as pruned. The lexicographically smallest minimum-cost hidden
	// set is always canonical (an exchange swapping a hidden member for an
	// unhidden name-smaller one preserves cost and safety and lowers the
	// lex rank), so the result is byte-identical to the unrestricted
	// search. Classes must be disjoint; classes with fewer than two members
	// are ignored.
	Symmetry [][]int

	// Resume, when non-nil, pre-seeds the search from a Frontier exported
	// by an earlier run over the same attribute universe AND the same
	// oracle semantics: the Proposition 1 domination stores, the full
	// verdict memo (oracle answers replayed without an oracle call), and —
	// because a known-safe incumbent bounds the optimum — the best-cost
	// bound of the streaming scan, which a resumed search prefers even
	// below sortedMax. Safety verdicts are cost-independent, so a Frontier
	// stays valid under any cost re-weighting; a Frontier whose universe
	// does not match the Space exactly is ignored and the search runs
	// cold. The (cost, lex) optimum is byte-identical with or without
	// Resume. Stats.Resumed reports whether the frontier was accepted.
	Resume *Frontier
}

func (o Options) frontierCap() int {
	if o.FrontierCap > 0 {
		return o.FrontierCap
	}
	return DefaultFrontierCap
}

// batchCap returns the candidate-buffer size for one worker: 1 without a
// batch oracle (per-mask calls, today's behavior), BatchSize with one.
func (o Options) batchCap() int {
	if o.Batch == nil {
		return 1
	}
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return DefaultBatchSize
}

var defaultParallelism atomic.Int64

// SetDefaultParallelism overrides the worker count used when Options leaves
// Parallelism unset; n <= 0 restores the GOMAXPROCS default.
func SetDefaultParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallelism.Store(int64(n))
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	if n := defaultParallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports how a search run spent its effort. Checked + Pruned equals
// the number of candidate masks in scope (2^k for the full-universe
// searches).
type Stats struct {
	// Checked counts safety tests actually performed (oracle invocations
	// requested by the engine; a memoized oracle may answer some from cache).
	Checked int
	// Pruned counts candidate masks eliminated WITHOUT a safety test: by the
	// best-cost bound, by Proposition 1 domination, by symmetry breaking, or
	// by early exit once the optimum is pinned.
	Pruned int
	// OraclePasses counts oracle invocations: a batched call answering many
	// masks is ONE pass, so Checked/OraclePasses is the mean batch size.
	OraclePasses int
	// BatchSize is the largest number of masks submitted in a single pass
	// (1 when no batch oracle was configured).
	BatchSize int
	// FrontierDropped counts frontier masks discarded because a Proposition 1
	// domination store was at FrontierCap. Dropping is purely a performance
	// signal, never a correctness one: every candidate a dropped mask would
	// have decided for free is instead tested against the oracle, so the
	// optimum is unchanged — a persistently nonzero count just means a
	// larger cap may prune more.
	FrontierDropped int
	// Resumed reports whether Options.Resume was accepted (universe
	// matched); ResumedSafe / ResumedUnsafe count the masks imported into
	// the safe and unsafe domination stores from the supplied Frontier, and
	// MemoHits counts candidates decided by the frontier's verdict memo
	// instead of an oracle call (they are also counted in Pruned).
	Resumed       bool
	ResumedSafe   int
	ResumedUnsafe int
	MemoHits      int
}

// frontier is a concurrency-safe antichain of masks used for Proposition 1
// domination: the unsafe frontier stores minimal unsafe visible masks (any
// superset is unsafe), the safe frontier stores maximal safe visible masks
// (any subset is safe). Bounded so membership checks stay cheap; masks that
// would grow a full store are dropped and counted.
type frontier struct {
	mu      sync.RWMutex
	masks   []Mask
	cap     int
	dropped int
}

// droppedCount returns how many masks the store refused because it was at
// capacity.
func (f *frontier) droppedCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.dropped
}

func newFrontier(capacity int) *frontier { return &frontier{cap: capacity} }

// dominatesSuper reports whether some stored mask is a subset of v.
func (f *frontier) dominatesSuper(v Mask) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, u := range f.masks {
		if u&v == u {
			return true
		}
	}
	return false
}

// dominatesSub reports whether v is a subset of some stored mask.
func (f *frontier) dominatesSub(v Mask) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, u := range f.masks {
		if v&u == v {
			return true
		}
	}
	return false
}

// insertMinimal adds u keeping only inclusion-minimal masks.
func (f *frontier) insertMinimal(u Mask) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.masks {
		if e&u == e { // existing subset already covers u
			return
		}
	}
	kept := f.masks[:0]
	for _, e := range f.masks {
		if u&e != u { // drop supersets of u
			kept = append(kept, e)
		}
	}
	f.masks = kept
	if len(f.masks) < f.cap {
		f.masks = append(f.masks, u)
	} else {
		f.dropped++
	}
}

// insertMaximal adds u keeping only inclusion-maximal masks.
func (f *frontier) insertMaximal(u Mask) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.masks {
		if u&e == u { // existing superset already covers u
			return
		}
	}
	kept := f.masks[:0]
	for _, e := range f.masks {
		if e&u != e { // drop subsets of u
			kept = append(kept, e)
		}
	}
	f.masks = kept
	if len(f.masks) < f.cap {
		f.masks = append(f.masks, u)
	} else {
		f.dropped++
	}
}
