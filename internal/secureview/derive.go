package secureview

import (
	"errors"
	"fmt"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// ErrInfeasible is wrapped (errors.Is-able) by Derive and DeriveCardProblem
// when some private module has NO safe option at its Γ — the workflow is
// genuinely infeasible at that requirement, as opposed to an internal
// failure of the derivation itself. Harnesses use it to tell "legitimately
// skip this instance" from "a derivation bug is being swallowed".
var ErrInfeasible = errors.New("secureview: infeasible at Γ")

// DeriveSet builds a Secure-View instance (set-constraints variant) from a
// concrete workflow and privacy target Γ (Γ ≥ 1), following the assembly
// theorems: each private module's requirement list is its inclusion-minimal
// safe hidden sets, computed standalone by the pruned search engine
// (Theorem 4 for all-private workflows, Theorem 8 with privatization for
// general ones). Solving the returned instance therefore yields a Γ-private
// view of the whole workflow. It is Derive with default options.
//
// privatizeCosts assigns c(m) to public modules (missing names cost 0).
func DeriveSet(w *workflow.Workflow, gamma uint64, costs privacy.Costs, privatizeCosts map[string]float64) (*Problem, error) {
	return Derive(w, DeriveOptions{Gamma: gamma, Costs: costs, PrivatizeCosts: privatizeCosts})
}

// DeriveCard builds the cardinality requirement list for one module view:
// the Pareto-minimal pairs (α, β) such that hiding ANY α inputs and β
// outputs is safe for Γ. This encoding is sound by construction (every
// conforming hidden set is safe) and exact for symmetric modules such as
// the one-one and majority functions of Example 6; for asymmetric modules
// it is conservative. Exponential in the module arity. The view is compiled
// to the integer-coded oracle once, so each of the C(nI,α)·C(nO,β) subset
// tests is a sort-and-scan over packed row codes rather than a relation
// scan; views with overflowing domain products fall back to the interpreted
// test.
func DeriveCard(mv privacy.ModuleView, gamma uint64) ([]CardReq, error) {
	nI, nO := len(mv.Inputs), len(mv.Outputs)
	if nI+nO > 20 {
		return nil, fmt.Errorf("secureview: module arity %d too large for cardinality derivation", nI+nO)
	}
	all := relation.NewNameSet(mv.Attrs()...)
	isSafe := func(visible relation.NameSet) (bool, error) {
		return mv.IsSafe(visible, gamma)
	}
	if comp, err := mv.Compile(); err == nil {
		isSafe = func(visible relation.NameSet) (bool, error) {
			return comp.IsSafe(comp.MaskOf(visible), gamma), nil
		}
	}
	safePair := func(alpha, beta int) (bool, error) {
		// Every hidden set with exactly alpha inputs and beta outputs must
		// be safe. (By Proposition 1, larger hidden sets stay safe.)
		inSubsets := subsetsOfSize(mv.Inputs, alpha)
		outSubsets := subsetsOfSize(mv.Outputs, beta)
		for _, hi := range inSubsets {
			for _, ho := range outSubsets {
				hidden := relation.NewNameSet(hi...).Union(relation.NewNameSet(ho...))
				ok, err := isSafe(all.Minus(hidden))
				if err != nil {
					return false, err
				}
				if !ok {
					return false, nil
				}
			}
		}
		return true, nil
	}
	var frontier []CardReq
	for alpha := 0; alpha <= nI; alpha++ {
		// For fixed alpha find the smallest beta that works; by
		// monotonicity in beta a binary structure would do, linear is fine.
		for beta := 0; beta <= nO; beta++ {
			ok, err := safePair(alpha, beta)
			if err != nil {
				return nil, err
			}
			if ok {
				dominated := false
				for _, r := range frontier {
					if r.Alpha <= alpha && r.Beta <= beta {
						dominated = true
						break
					}
				}
				if !dominated {
					frontier = append(frontier, CardReq{Alpha: alpha, Beta: beta})
				}
				break
			}
		}
	}
	return frontier, nil
}

func subsetsOfSize(names []string, k int) [][]string {
	var out [][]string
	n := len(names)
	if k > n {
		return nil
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		pick := make([]string, k)
		for i, j := range idx {
			pick[i] = names[j]
		}
		out = append(out, pick)
		// Next combination.
		i := k - 1
		for ; i >= 0; i-- {
			if idx[i] < n-k+i {
				break
			}
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// DeriveCardProblem is DeriveSet's counterpart for the cardinality variant:
// it attaches a sound cardinality list to every private module.
func DeriveCardProblem(w *workflow.Workflow, gamma uint64, costs privacy.Costs, privatizeCosts map[string]float64) (*Problem, error) {
	p := &Problem{Costs: costs}
	for _, m := range w.Modules() {
		spec := ModuleSpec{
			Name:    m.Name(),
			Inputs:  m.InputNames(),
			Outputs: m.OutputNames(),
		}
		if m.Visibility() == module.Public {
			spec.Public = true
			spec.PrivatizeCost = privatizeCosts[m.Name()]
			p.Modules = append(p.Modules, spec)
			continue
		}
		mv := privacy.NewModuleView(m)
		list, err := DeriveCard(mv, gamma)
		if err != nil {
			return nil, fmt.Errorf("secureview: module %s: %w", m.Name(), err)
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("secureview: module %s has no cardinality-safe pair for Γ=%d: %w", m.Name(), gamma, ErrInfeasible)
		}
		spec.CardList = list
		p.Modules = append(p.Modules, spec)
	}
	return p, nil
}
