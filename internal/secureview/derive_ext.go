package secureview

import (
	"fmt"
	"sync"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/search"
	"secureview/internal/workflow"
)

// DeriveOptions configures the assembly of a Secure-View instance from a
// concrete workflow.
type DeriveOptions struct {
	// Gamma is the default privacy requirement for every private module.
	Gamma uint64
	// GammaPerModule overrides Gamma for named modules. The paper notes
	// (below Definition 5) that all results carry over to per-module
	// requirements Γi.
	GammaPerModule map[string]uint64
	// Costs assigns attribute hiding penalties.
	Costs privacy.Costs
	// PrivatizeCosts assigns c(m) to public modules.
	PrivatizeCosts map[string]float64
	// Recorded, when non-nil, derives each module's requirement lists from
	// the projection of this provenance relation instead of the module's
	// full input domain. The paper's relation R is "the set of workflow
	// executions that have been run" (section 1), so safety over the
	// recorded executions is the faithful reading for partial logs; note a
	// view derived from a partial log is only guaranteed for that log.
	Recorded *relation.Relation
	// Parallel analyses modules concurrently (the standalone analyses are
	// independent; the paper's section 3.2 remark observes they are also
	// amortizable across workflows).
	Parallel bool
	// Cache, when non-nil, memoizes per-module standalone analyses across
	// Derive calls and workflows (the BLAST/FASTA amortization of section
	// 3.2). Ignored when Recorded is set, since partial-log analyses are
	// log-specific.
	Cache *privacy.Cache
	// Search tunes the per-module subset-search engine (worker-pool size for
	// the 2^k mask sweep); the zero value uses GOMAXPROCS workers. It
	// composes with Parallel: Parallel fans out across modules, Search fans
	// out across each module's candidate subsets.
	Search search.Options
}

func (o DeriveOptions) gammaFor(name string) uint64 {
	if g, ok := o.GammaPerModule[name]; ok {
		return g
	}
	return o.Gamma
}

// moduleView returns the standalone view of m under the options: the full
// functionality by default, or the projection of the recorded relation.
func (o DeriveOptions) moduleView(w *workflow.Workflow, m *module.Module) (privacy.ModuleView, error) {
	if o.Recorded == nil {
		return privacy.NewModuleView(m), nil
	}
	proj, err := o.Recorded.Project(m.AttrNames())
	if err != nil {
		return privacy.ModuleView{}, fmt.Errorf("secureview: projecting recorded relation for %s: %w", m.Name(), err)
	}
	return privacy.ModuleView{Rel: proj, Inputs: m.InputNames(), Outputs: m.OutputNames()}, nil
}

// Derive builds a Secure-View instance (set-constraints variant) under the
// options. It generalizes DeriveSet with per-module Γ, partial-log
// derivation and optional parallelism.
func Derive(w *workflow.Workflow, opts DeriveOptions) (*Problem, error) {
	if opts.Gamma == 0 && len(opts.GammaPerModule) == 0 {
		return nil, fmt.Errorf("secureview: Derive needs a privacy requirement")
	}
	p := &Problem{Costs: opts.Costs}
	mods := w.Modules()
	specs := make([]ModuleSpec, len(mods))
	errs := make([]error, len(mods))

	analyze := func(i int) {
		m := mods[i]
		spec := ModuleSpec{
			Name:    m.Name(),
			Inputs:  m.InputNames(),
			Outputs: m.OutputNames(),
		}
		if m.Visibility() == module.Public {
			spec.Public = true
			spec.PrivatizeCost = opts.PrivatizeCosts[m.Name()]
			specs[i] = spec
			return
		}
		gamma := opts.gammaFor(m.Name())
		if gamma == 0 {
			errs[i] = fmt.Errorf("secureview: module %s has no privacy requirement", m.Name())
			return
		}
		mv, err := opts.moduleView(w, m)
		if err != nil {
			errs[i] = err
			return
		}
		var minimal []relation.NameSet
		if opts.Cache != nil && opts.Recorded == nil {
			minimal, err = opts.Cache.MinimalSafeHiddenSetsOpts(mv, gamma, opts.Search)
		} else {
			minimal, err = mv.MinimalSafeHiddenSetsOpts(gamma, opts.Search)
		}
		if err != nil {
			errs[i] = fmt.Errorf("secureview: module %s: %w", m.Name(), err)
			return
		}
		if len(minimal) == 0 {
			errs[i] = fmt.Errorf("secureview: module %s has no safe subset for Γ=%d: %w", m.Name(), gamma, ErrInfeasible)
			return
		}
		in := relation.NewNameSet(spec.Inputs...)
		for _, h := range minimal {
			var req SetReq
			for a := range h {
				if in.Has(a) {
					req.In = append(req.In, a)
				} else {
					req.Out = append(req.Out, a)
				}
			}
			spec.SetList = append(spec.SetList, req)
		}
		specs[i] = spec
	}

	if opts.Parallel {
		var wg sync.WaitGroup
		for i := range mods {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				analyze(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range mods {
			analyze(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	p.Modules = specs
	return p, nil
}
