// Package secureview implements the workflow Secure-View optimization
// problem of the paper (Davidson et al., PODS 2011, sections 4 and 5):
// choose a minimum-cost set of attributes to hide — and, in general
// workflows, public modules to privatize — so that every private module is
// Γ-workflow-private.
//
// By Theorems 4 and 8, workflow privacy is assembled from standalone
// guarantees: each private module mi carries a requirement list Li of
// admissible hidden "options", in one of two encodings:
//
//   - set constraints: explicit attribute pairs (I_i^j, O_i^j); hiding any
//     listed pair (or a superset) makes mi safe;
//   - cardinality constraints: number pairs (α_i^j, β_i^j); hiding at least
//     α_i^j inputs and β_i^j outputs of mi makes mi safe.
//
// The package provides the LP-rounding approximation algorithms of the
// paper (Figure 3 / Algorithm 1 for cardinality constraints, the ℓmax
// rounding for set constraints including the general-workflow variant of
// appendix C.4), the greedy (γ+1)-approximation for bounded data sharing,
// and exact solvers used to measure approximation ratios.
package secureview

import (
	"fmt"
	"sort"

	"secureview/internal/privacy"
	"secureview/internal/relation"
)

// CardReq is one cardinality requirement (α, β): hide at least α input and
// β output attributes of the module.
type CardReq struct {
	Alpha, Beta int
}

// SetReq is one set requirement (I^j, O^j): hide at least these input and
// output attributes of the module.
type SetReq struct {
	In, Out []string
}

// Attrs returns the requirement's attributes as a set.
func (r SetReq) Attrs() relation.NameSet {
	return relation.NewNameSet(r.In...).Union(relation.NewNameSet(r.Out...))
}

// ModuleSpec describes one module of a Secure-View instance: its interface,
// visibility, privatization cost (public modules only) and requirement list
// (private modules only).
type ModuleSpec struct {
	Name    string
	Inputs  []string
	Outputs []string
	// Public marks a module whose behaviour users know a priori.
	Public bool
	// PrivatizeCost is c(m), paid when a public module must be hidden.
	PrivatizeCost float64
	// CardList is the cardinality requirement list Li (private modules).
	CardList []CardReq
	// SetList is the set requirement list Li (private modules).
	SetList []SetReq
}

// Problem is a workflow Secure-View instance.
type Problem struct {
	Modules []ModuleSpec
	// Costs assigns hiding penalties to attributes; missing attributes
	// cost 0.
	Costs privacy.Costs
}

// Validate checks structural sanity: requirement bounds within module
// arity, set requirements referencing the module's own attributes, and
// private modules having at least one option in the relevant list.
func (p *Problem) Validate(variant Variant) error {
	seen := make(map[string]bool)
	for _, m := range p.Modules {
		if m.Name == "" {
			return fmt.Errorf("secureview: module with empty name")
		}
		if seen[m.Name] {
			return fmt.Errorf("secureview: duplicate module %q", m.Name)
		}
		seen[m.Name] = true
		if m.Public {
			continue
		}
		switch variant {
		case Cardinality:
			if len(m.CardList) == 0 {
				return fmt.Errorf("secureview: private module %q has empty cardinality list", m.Name)
			}
			for _, r := range m.CardList {
				if r.Alpha < 0 || r.Alpha > len(m.Inputs) || r.Beta < 0 || r.Beta > len(m.Outputs) {
					return fmt.Errorf("secureview: module %q requirement (%d,%d) out of bounds", m.Name, r.Alpha, r.Beta)
				}
			}
		case Set:
			if len(m.SetList) == 0 {
				return fmt.Errorf("secureview: private module %q has empty set list", m.Name)
			}
			in := relation.NewNameSet(m.Inputs...)
			out := relation.NewNameSet(m.Outputs...)
			for _, r := range m.SetList {
				for _, a := range r.In {
					if !in.Has(a) {
						return fmt.Errorf("secureview: module %q set requirement names non-input %q", m.Name, a)
					}
				}
				for _, a := range r.Out {
					if !out.Has(a) {
						return fmt.Errorf("secureview: module %q set requirement names non-output %q", m.Name, a)
					}
				}
			}
		}
	}
	return nil
}

// Variant selects the constraint encoding.
type Variant int

const (
	// Cardinality selects the (α, β) number-pair encoding.
	Cardinality Variant = iota
	// Set selects the explicit attribute-subset encoding.
	Set
)

// String returns "cardinality" or "set".
func (v Variant) String() string {
	if v == Set {
		return "set"
	}
	return "cardinality"
}

// Attributes returns every attribute appearing in the instance, sorted.
func (p *Problem) Attributes() []string {
	set := make(relation.NameSet)
	for _, m := range p.Modules {
		for _, a := range m.Inputs {
			set.Add(a)
		}
		for _, a := range m.Outputs {
			set.Add(a)
		}
	}
	return set.Sorted()
}

// UsefulAttributes returns, sorted, the attributes that can contribute to
// some private module's requirement in the variant: for cardinality, inputs
// of a module with a positive α option and outputs of one with a positive β
// option; for sets, every attribute named by some option. Hiding any other
// attribute only adds cost (and possibly privatization), so no optimum
// contains one — this is the exact solvers' and the engine solver's search
// universe.
func (p *Problem) UsefulAttributes(variant Variant) []string {
	useful := make(relation.NameSet)
	for _, m := range p.Modules {
		if m.Public {
			continue
		}
		switch variant {
		case Cardinality:
			maxAlpha, maxBeta := 0, 0
			for _, r := range m.CardList {
				if r.Alpha > maxAlpha {
					maxAlpha = r.Alpha
				}
				if r.Beta > maxBeta {
					maxBeta = r.Beta
				}
			}
			if maxAlpha > 0 {
				for _, a := range m.Inputs {
					useful.Add(a)
				}
			}
			if maxBeta > 0 {
				for _, a := range m.Outputs {
					useful.Add(a)
				}
			}
		case Set:
			for _, r := range m.SetList {
				for a := range r.Attrs() {
					useful.Add(a)
				}
			}
		}
	}
	return useful.Sorted()
}

// LMax returns the longest requirement list length ℓmax for the variant.
func (p *Problem) LMax(variant Variant) int {
	max := 0
	for _, m := range p.Modules {
		if m.Public {
			continue
		}
		l := len(m.SetList)
		if variant == Cardinality {
			l = len(m.CardList)
		}
		if l > max {
			max = l
		}
	}
	return max
}

// DataSharing returns γ: the maximum number of modules consuming any one
// attribute as input.
func (p *Problem) DataSharing() int {
	counts := make(map[string]int)
	for _, m := range p.Modules {
		for _, a := range m.Inputs {
			counts[a]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

// Multiplicity returns the maximum number of modules any single attribute
// touches (as input OR output). For workflow-derived instances this is at
// most γ+1 (one producer plus at most γ consumers, Definition 3), and it is
// the exact constant in the Theorem 7 greedy analysis: on all-private
// instances, Greedy costs at most Multiplicity()×OPT, because the optimum's
// restriction to one module's attributes satisfies some option of that
// module, and each optimal attribute is charged once per touching module.
// The differential harness asserts that bound on every generated instance.
func (p *Problem) Multiplicity() int {
	counts := make(map[string]int)
	for _, m := range p.Modules {
		for _, a := range m.Inputs {
			counts[a]++
		}
		for _, a := range m.Outputs {
			counts[a]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

// PrivateCount returns the number of private modules.
func (p *Problem) PrivateCount() int {
	n := 0
	for _, m := range p.Modules {
		if !m.Public {
			n++
		}
	}
	return n
}

// Solution is a candidate answer: hidden attributes plus privatized public
// modules.
type Solution struct {
	Hidden     relation.NameSet
	Privatized relation.NameSet
}

// Cost returns c(V̄) + c(P̄) under the problem's cost assignments.
func (p *Problem) Cost(s Solution) float64 {
	total := p.Costs.Sum(s.Hidden)
	for _, m := range p.Modules {
		if m.Public && s.Privatized.Has(m.Name) {
			total += m.PrivatizeCost
		}
	}
	return total
}

// PrivatizationClosure returns the set of public modules that must be
// privatized given the hidden attributes: by Theorem 8, a public module may
// stay visible only if all of its input and output attributes are visible.
func (p *Problem) PrivatizationClosure(hidden relation.NameSet) relation.NameSet {
	priv := make(relation.NameSet)
	for _, m := range p.Modules {
		if !m.Public {
			continue
		}
		for _, a := range append(append([]string{}, m.Inputs...), m.Outputs...) {
			if hidden.Has(a) {
				priv.Add(m.Name)
				break
			}
		}
	}
	return priv
}

// Feasible reports whether the solution satisfies every private module's
// requirement (in the chosen variant) and privatizes every public module
// adjacent to a hidden attribute.
func (p *Problem) Feasible(s Solution, variant Variant) bool {
	for _, m := range p.Modules {
		if m.Public {
			if s.Privatized.Has(m.Name) {
				continue
			}
			for _, a := range append(append([]string{}, m.Inputs...), m.Outputs...) {
				if s.Hidden.Has(a) {
					return false
				}
			}
			continue
		}
		if !p.moduleSatisfied(m, s.Hidden, variant) {
			return false
		}
	}
	return true
}

func (p *Problem) moduleSatisfied(m ModuleSpec, hidden relation.NameSet, variant Variant) bool {
	switch variant {
	case Cardinality:
		hi, ho := 0, 0
		for _, a := range m.Inputs {
			if hidden.Has(a) {
				hi++
			}
		}
		for _, a := range m.Outputs {
			if hidden.Has(a) {
				ho++
			}
		}
		for _, r := range m.CardList {
			if hi >= r.Alpha && ho >= r.Beta {
				return true
			}
		}
	case Set:
		for _, r := range m.SetList {
			if r.Attrs().SubsetOf(hidden) {
				return true
			}
		}
	}
	return false
}

// Complete returns the solution with the privatization closure applied and
// is the canonical way to turn a hidden-attribute set into a full solution.
func (p *Problem) Complete(hidden relation.NameSet) Solution {
	return Solution{Hidden: hidden, Privatized: p.PrivatizationClosure(hidden)}
}

// cheapestK returns the k cheapest attribute names from the list under the
// problem costs (stable on name for determinism), or nil if k > len.
func (p *Problem) cheapestK(names []string, k int) []string {
	if k > len(names) {
		return nil
	}
	sorted := append([]string(nil), names...)
	sort.Slice(sorted, func(i, j int) bool {
		ci, cj := p.Costs.Of(sorted[i]), p.Costs.Of(sorted[j])
		if ci != cj {
			return ci < cj
		}
		return sorted[i] < sorted[j]
	})
	return sorted[:k]
}

// minCostOption returns the cheapest single-module option as an attribute
// set, for either variant. Used by the greedy algorithm and by the rounding
// repair step (B^min of Algorithm 1).
func (p *Problem) minCostOption(m ModuleSpec, variant Variant) (relation.NameSet, float64) {
	bestCost := -1.0
	var best relation.NameSet
	consider := func(attrs relation.NameSet) {
		c := p.Costs.Sum(attrs)
		if bestCost < 0 || c < bestCost {
			bestCost = c
			best = attrs
		}
	}
	switch variant {
	case Cardinality:
		for _, r := range m.CardList {
			in := p.cheapestK(m.Inputs, r.Alpha)
			out := p.cheapestK(m.Outputs, r.Beta)
			if in == nil || out == nil {
				continue
			}
			consider(relation.NewNameSet(in...).Union(relation.NewNameSet(out...)))
		}
	case Set:
		for _, r := range m.SetList {
			consider(r.Attrs())
		}
	}
	if best == nil {
		return relation.NewNameSet(), 0
	}
	return best, bestCost
}
