package secureview

import (
	"context"

	"secureview/internal/relation"
)

// Greedy solves the instance by choosing, independently for every private
// module, its cheapest single-module option and hiding the union, then
// applying the privatization closure.
//
// For workflows with γ-bounded data sharing this is the (γ+1)-approximation
// of Theorem 7: an attribute is produced by one module and consumed by at
// most γ, so in any optimal solution one attribute serves at most γ+1
// module requirements. With unbounded sharing (or public modules, Theorem
// 9) the gap can grow to Ω(n) / Ω(log n), which the experiments measure.
func Greedy(p *Problem, variant Variant) Solution {
	sol, _ := GreedyCtx(context.Background(), p, variant)
	return sol
}

// GreedyCtx is Greedy with a cancellation point between modules; on expiry
// it returns ctx.Err() and the (partial, possibly infeasible) union built so
// far. Greedy is linear in the requirement lists, so cancellation matters
// only on very large instances.
func GreedyCtx(ctx context.Context, p *Problem, variant Variant) (Solution, error) {
	hidden := make(relation.NameSet)
	for i, m := range p.Modules {
		if i&255 == 0 && ctx.Err() != nil {
			return p.Complete(hidden), ctx.Err()
		}
		if m.Public {
			continue
		}
		opt, _ := p.minCostOption(m, variant)
		hidden = hidden.Union(opt)
	}
	return p.Complete(hidden), nil
}
