package secureview

import "secureview/internal/relation"

// Greedy solves the instance by choosing, independently for every private
// module, its cheapest single-module option and hiding the union, then
// applying the privatization closure.
//
// For workflows with γ-bounded data sharing this is the (γ+1)-approximation
// of Theorem 7: an attribute is produced by one module and consumed by at
// most γ, so in any optimal solution one attribute serves at most γ+1
// module requirements. With unbounded sharing (or public modules, Theorem
// 9) the gap can grow to Ω(n) / Ω(log n), which the experiments measure.
func Greedy(p *Problem, variant Variant) Solution {
	hidden := make(relation.NameSet)
	for _, m := range p.Modules {
		if m.Public {
			continue
		}
		opt, _ := p.minCostOption(m, variant)
		hidden = hidden.Union(opt)
	}
	return p.Complete(hidden)
}
