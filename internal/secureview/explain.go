package secureview

import (
	"fmt"
	"strings"

	"secureview/internal/relation"
)

// Explanation is a human-readable account of why a solution is feasible:
// which requirement option each private module satisfies, and which hidden
// attribute forced each privatization.
type Explanation struct {
	Lines []string
}

// String renders one line per module.
func (e Explanation) String() string { return strings.Join(e.Lines, "\n") }

// Explain reports, for every module, how the solution satisfies it. The
// solution must be feasible in the given variant.
func Explain(p *Problem, sol Solution, variant Variant) (Explanation, error) {
	if !p.Feasible(sol, variant) {
		return Explanation{}, fmt.Errorf("secureview: cannot explain an infeasible solution")
	}
	var e Explanation
	for _, m := range p.Modules {
		if m.Public {
			if sol.Privatized.Has(m.Name) {
				trigger := firstHiddenAttr(m, sol.Hidden)
				e.Lines = append(e.Lines, fmt.Sprintf(
					"%s (public): privatized for %.4g because %q is hidden (Theorem 8 closure)",
					m.Name, m.PrivatizeCost, trigger))
			} else {
				e.Lines = append(e.Lines, fmt.Sprintf(
					"%s (public): visible — all attributes visible", m.Name))
			}
			continue
		}
		switch variant {
		case Set:
			req, ok := satisfiedSetOption(m, sol.Hidden)
			if !ok {
				return Explanation{}, fmt.Errorf("secureview: module %s unexplained", m.Name)
			}
			e.Lines = append(e.Lines, fmt.Sprintf(
				"%s: satisfied by hiding %s (cost %.4g of the total)",
				m.Name, req.Attrs(), p.Costs.Sum(req.Attrs())))
		case Cardinality:
			hi, ho := hiddenCounts(m, sol.Hidden)
			req, ok := satisfiedCardOption(m, hi, ho)
			if !ok {
				return Explanation{}, fmt.Errorf("secureview: module %s unexplained", m.Name)
			}
			e.Lines = append(e.Lines, fmt.Sprintf(
				"%s: satisfied with %d hidden inputs / %d hidden outputs (needs >= %d/%d)",
				m.Name, hi, ho, req.Alpha, req.Beta))
		}
	}
	return e, nil
}

func firstHiddenAttr(m ModuleSpec, hidden relation.NameSet) string {
	for _, a := range append(append([]string{}, m.Inputs...), m.Outputs...) {
		if hidden.Has(a) {
			return a
		}
	}
	return ""
}

// satisfiedSetOption returns the cheapest satisfied option of the module.
func satisfiedSetOption(m ModuleSpec, hidden relation.NameSet) (SetReq, bool) {
	best := SetReq{}
	bestSize := -1
	for _, r := range m.SetList {
		if r.Attrs().SubsetOf(hidden) {
			if size := len(r.Attrs()); bestSize < 0 || size < bestSize {
				best = r
				bestSize = size
			}
		}
	}
	return best, bestSize >= 0
}

func hiddenCounts(m ModuleSpec, hidden relation.NameSet) (int, int) {
	hi, ho := 0, 0
	for _, a := range m.Inputs {
		if hidden.Has(a) {
			hi++
		}
	}
	for _, a := range m.Outputs {
		if hidden.Has(a) {
			ho++
		}
	}
	return hi, ho
}

func satisfiedCardOption(m ModuleSpec, hi, ho int) (CardReq, bool) {
	for _, r := range m.CardList {
		if hi >= r.Alpha && ho >= r.Beta {
			return r, true
		}
	}
	return CardReq{}, false
}
