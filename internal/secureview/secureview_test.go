package secureview

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// chainProblem is a tiny hand-built all-private instance:
// m1: in a, out b; m2: in b, out c. Each can hide either its input or its
// output (set constraints), or any one input / any one output (cardinality).
func chainProblem(costA, costB, costC float64) *Problem {
	return &Problem{
		Modules: []ModuleSpec{
			{
				Name: "m1", Inputs: []string{"a"}, Outputs: []string{"b"},
				SetList:  []SetReq{{In: []string{"a"}}, {Out: []string{"b"}}},
				CardList: []CardReq{{Alpha: 1}, {Beta: 1}},
			},
			{
				Name: "m2", Inputs: []string{"b"}, Outputs: []string{"c"},
				SetList:  []SetReq{{In: []string{"b"}}, {Out: []string{"c"}}},
				CardList: []CardReq{{Alpha: 1}, {Beta: 1}},
			},
		},
		Costs: privacy.Costs{"a": costA, "b": costB, "c": costC},
	}
}

func TestValidate(t *testing.T) {
	p := chainProblem(1, 1, 1)
	if err := p.Validate(Set); err != nil {
		t.Errorf("valid set instance rejected: %v", err)
	}
	if err := p.Validate(Cardinality); err != nil {
		t.Errorf("valid cardinality instance rejected: %v", err)
	}
	bad := &Problem{Modules: []ModuleSpec{{Name: "m", Inputs: []string{"a"}, Outputs: []string{"b"},
		CardList: []CardReq{{Alpha: 5}}}}}
	if err := bad.Validate(Cardinality); err == nil {
		t.Error("out-of-bounds alpha accepted")
	}
	bad2 := &Problem{Modules: []ModuleSpec{{Name: "m", Inputs: []string{"a"}, Outputs: []string{"b"},
		SetList: []SetReq{{In: []string{"zz"}}}}}}
	if err := bad2.Validate(Set); err == nil {
		t.Error("foreign attribute in set requirement accepted")
	}
	empty := &Problem{Modules: []ModuleSpec{{Name: "m", Inputs: []string{"a"}, Outputs: []string{"b"}}}}
	if err := empty.Validate(Set); err == nil {
		t.Error("empty requirement list accepted")
	}
	dup := &Problem{Modules: []ModuleSpec{
		{Name: "m", Outputs: []string{"b"}, SetList: []SetReq{{Out: []string{"b"}}}},
		{Name: "m", Outputs: []string{"c"}, SetList: []SetReq{{Out: []string{"c"}}}},
	}}
	if err := dup.Validate(Set); err == nil {
		t.Error("duplicate module accepted")
	}
}

func TestFeasibilityAndCost(t *testing.T) {
	p := chainProblem(1, 5, 1)
	// Hiding b satisfies both modules at cost 5.
	s := p.Complete(relation.NewNameSet("b"))
	if !p.Feasible(s, Set) || !p.Feasible(s, Cardinality) {
		t.Error("hiding b should be feasible in both variants")
	}
	if got := p.Cost(s); got != 5 {
		t.Errorf("cost = %v, want 5", got)
	}
	// Hiding a and c also works at cost 2.
	s2 := p.Complete(relation.NewNameSet("a", "c"))
	if !p.Feasible(s2, Set) {
		t.Error("hiding {a,c} should be feasible")
	}
	if got := p.Cost(s2); got != 2 {
		t.Errorf("cost = %v, want 2", got)
	}
	// Hiding only a leaves m2 unsatisfied.
	if p.Feasible(p.Complete(relation.NewNameSet("a")), Set) {
		t.Error("hiding only a should be infeasible")
	}
}

func TestExactSetChain(t *testing.T) {
	p := chainProblem(1, 5, 1)
	sol, err := ExactSet(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(sol); got != 2 {
		t.Fatalf("exact cost = %v, want 2 (hide a and c)", got)
	}
	if !p.Feasible(sol, Set) {
		t.Error("exact solution infeasible")
	}
}

func TestExactCardChain(t *testing.T) {
	p := chainProblem(1, 5, 1)
	sol, err := ExactCard(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(sol); got != 2 {
		t.Fatalf("exact cost = %v, want 2", got)
	}
}

func TestGreedyCanBeSuboptimal(t *testing.T) {
	// Example 5 in miniature: sharing makes per-module optima assemble
	// badly. m feeds a2 (cost 1+ε) to n consumers, each of which may hide
	// its incoming a2 or its outgoing b_i (cost 1); a collector accepts any
	// one hidden b_i. m itself may hide a1 (cost 1) or a2.
	n := 5
	eps := 0.25
	p := &Problem{Costs: privacy.Costs{"a1": 1, "a2": 1 + eps}}
	p.Modules = append(p.Modules, ModuleSpec{
		Name: "m", Inputs: []string{"a1"}, Outputs: []string{"a2"},
		SetList: []SetReq{{In: []string{"a1"}}, {Out: []string{"a2"}}},
	})
	var bs []string
	for i := 0; i < n; i++ {
		b := fmt.Sprintf("b%d", i)
		bs = append(bs, b)
		p.Costs[b] = 1
		p.Modules = append(p.Modules, ModuleSpec{
			Name: fmt.Sprintf("mi%d", i), Inputs: []string{"a2"}, Outputs: []string{b},
			SetList: []SetReq{{In: []string{"a2"}}, {Out: []string{b}}},
		})
	}
	var collectorOpts []SetReq
	for _, b := range bs {
		collectorOpts = append(collectorOpts, SetReq{In: []string{b}})
	}
	p.Modules = append(p.Modules, ModuleSpec{
		Name: "mprime", Inputs: bs, Outputs: []string{"out"},
		SetList: collectorOpts,
	})
	p.Costs["out"] = 1

	greedy := Greedy(p, Set)
	if !p.Feasible(greedy, Set) {
		t.Fatal("greedy infeasible")
	}
	exact, err := ExactSet(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	gc, ec := p.Cost(greedy), p.Cost(exact)
	if ec != 2+eps {
		t.Fatalf("optimal cost = %v, want %v (hide a2 and one b)", ec, 2+eps)
	}
	// Greedy picks a1 for m, each mi's cheapest (b_i at cost 1 vs a2 at
	// 1+ε), and one b for the collector: cost n+1.
	if gc != float64(n+1) {
		t.Fatalf("greedy cost = %v, want %v", gc, float64(n+1))
	}
}

func TestSetLPRoundChain(t *testing.T) {
	p := chainProblem(1, 5, 1)
	sol, lpVal, err := SetLPRound(p)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol, Set) {
		t.Fatal("LP-rounded solution infeasible")
	}
	cost := p.Cost(sol)
	lmax := float64(p.LMax(Set))
	if cost > lmax*lpVal+1e-6 {
		t.Errorf("cost %v exceeds ℓmax×LP = %v", cost, lmax*lpVal)
	}
	if lpVal > cost+1e-6 {
		t.Errorf("LP value %v above rounded cost %v", lpVal, cost)
	}
}

func TestCardinalityLPRoundChain(t *testing.T) {
	p := chainProblem(1, 5, 1)
	sol, lpVal, err := CardinalityLPRound(p, RoundingOptions{Trials: 5, Rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol, Cardinality) {
		t.Fatal("rounded solution infeasible")
	}
	if lpVal <= 0 {
		t.Errorf("LP value = %v, want positive", lpVal)
	}
	if p.Cost(sol) < lpVal-1e-6 {
		t.Errorf("cost %v below LP lower bound %v", p.Cost(sol), lpVal)
	}
}

func TestPublicModuleClosure(t *testing.T) {
	// Private m1 outputs b; public m2 consumes b. Hiding b forces
	// privatizing m2.
	p := &Problem{
		Modules: []ModuleSpec{
			{Name: "m1", Inputs: []string{"a"}, Outputs: []string{"b"},
				SetList: []SetReq{{Out: []string{"b"}}}},
			{Name: "m2", Inputs: []string{"b"}, Outputs: []string{"c"},
				Public: true, PrivatizeCost: 3},
		},
		Costs: privacy.Costs{"a": 1, "b": 1, "c": 1},
	}
	sol := p.Complete(relation.NewNameSet("b"))
	if !sol.Privatized.Has("m2") {
		t.Fatal("closure did not privatize m2")
	}
	if got := p.Cost(sol); got != 4 {
		t.Errorf("cost = %v, want 1 + 3", got)
	}
	if !p.Feasible(sol, Set) {
		t.Error("closed solution infeasible")
	}
	// Without privatization the same hidden set is infeasible.
	if p.Feasible(Solution{Hidden: relation.NewNameSet("b"), Privatized: relation.NewNameSet()}, Set) {
		t.Error("hidden attribute adjacent to visible public module accepted")
	}
}

func TestSetLPRoundWithPublicModules(t *testing.T) {
	// The C.4 LP prices privatization: hiding b costs 1 + privatizing m2
	// (cost 3) = 4, hiding a costs 10. Optimal hides b.
	p := &Problem{
		Modules: []ModuleSpec{
			{Name: "m1", Inputs: []string{"a"}, Outputs: []string{"b"},
				SetList: []SetReq{{In: []string{"a"}}, {Out: []string{"b"}}}},
			{Name: "m2", Inputs: []string{"b"}, Outputs: []string{"c"},
				Public: true, PrivatizeCost: 3},
		},
		Costs: privacy.Costs{"a": 10, "b": 1, "c": 1},
	}
	sol, lpVal, err := SetLPRound(p)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol, Set) {
		t.Fatal("solution infeasible")
	}
	if got := p.Cost(sol); got != 4 {
		t.Errorf("cost = %v, want 4 (hide b, privatize m2)", got)
	}
	if lpVal > 4+1e-6 {
		t.Errorf("LP value %v above integral optimum 4", lpVal)
	}
	// When privatization is expensive, the optimum flips to hiding a.
	p.Modules[1].PrivatizeCost = 100
	sol2, _, err := SetLPRound(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(sol2); got != 10 {
		t.Errorf("cost = %v, want 10 (hide a)", got)
	}
}

// E15 gadget: without constraints (6)/(7) and the summations in (4)/(5),
// the LP relaxation can pay almost nothing (appendix B.4.1); the full form
// stays within a constant of the IP optimum.
func TestIntegralityGapAblation(t *testing.T) {
	m := 100.0
	p := &Problem{
		Modules: []ModuleSpec{{
			Name:    "m",
			Inputs:  []string{"i1", "i2", "i3", "i4"},
			Outputs: []string{"o1", "o2", "o3", "o4"},
			CardList: []CardReq{
				{Alpha: 4, Beta: 0},
				{Alpha: 0, Beta: 4},
			},
		}},
		Costs: privacy.Costs{
			"i1": 0, "i2": 0, "i3": m, "i4": m,
			"o1": 0, "o2": 0, "o3": m, "o4": m,
		},
	}
	weak, err := CardinalityLPValue(p, WeakForm)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CardinalityLPValue(p, FullForm)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactCard(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	ip := p.Cost(exact)
	if ip != 2*m {
		t.Fatalf("IP optimum = %v, want %v", ip, 2*m)
	}
	if weak > 1e-6 {
		t.Errorf("weak LP value = %v, want ~0 (unbounded gap)", weak)
	}
	if full < m-1e-6 {
		t.Errorf("full LP value = %v, want >= %v (bounded gap)", full, m)
	}
}

func TestDeriveSetFig1(t *testing.T) {
	w := workflow.Fig1()
	costs := privacy.Uniform(w.Schema().Names()...)
	p, err := DeriveSet(w, 2, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(Set); err != nil {
		t.Fatal(err)
	}
	if p.DataSharing() != 2 {
		t.Errorf("γ = %d, want 2", p.DataSharing())
	}
	// m3 = XOR is 1-private by hiding any single one of a4, a5, a7.
	var m3 *ModuleSpec
	for i := range p.Modules {
		if p.Modules[i].Name == "m3" {
			m3 = &p.Modules[i]
		}
	}
	if m3 == nil {
		t.Fatal("m3 missing")
	}
	if len(m3.SetList) != 3 {
		t.Fatalf("m3 options = %v, want 3 singletons", m3.SetList)
	}
	for _, r := range m3.SetList {
		if len(r.In)+len(r.Out) != 1 {
			t.Errorf("m3 option %v not a singleton", r)
		}
	}

	sol, err := ExactSet(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol, Set) {
		t.Fatal("derived-instance optimum infeasible")
	}
	// Γ = 4 is impossible for m2/m3 (single boolean output).
	if _, err := DeriveSet(w, 4, costs, nil); err == nil {
		t.Error("Γ=4 accepted despite 1-bit-output modules")
	}
}

func TestDeriveCardMajority(t *testing.T) {
	// Example 6: majority over 2k booleans is 2-private by hiding k+1
	// inputs or the single output.
	k := 2
	in := []string{"x1", "x2", "x3", "x4"}
	mv := privacy.NewModuleView(majorityModule(in))
	list, err := DeriveCard(mv, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[CardReq]bool{{Alpha: k + 1, Beta: 0}: true, {Alpha: 0, Beta: 1}: true}
	if len(list) != 2 {
		t.Fatalf("cardinality list = %v, want {(k+1,0),(0,1)}", list)
	}
	for _, r := range list {
		if !want[r] {
			t.Errorf("unexpected requirement %v", r)
		}
	}
}

func TestDeriveCardOneOne(t *testing.T) {
	// Example 6: a one-one function over k bits is 2^k-private by hiding
	// all k inputs or all k outputs. For Γ=2, hiding any 1 input or any 1
	// output suffices.
	mv := privacy.NewModuleView(identityModule(3))
	list, err := DeriveCard(mv, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[CardReq]bool{{Alpha: 1, Beta: 0}: true, {Alpha: 0, Beta: 1}: true}
	for _, r := range list {
		if !want[r] {
			t.Errorf("unexpected requirement %v for Γ=2: %v", r, list)
		}
	}
	// Γ = 8 needs all three of either side.
	list8, err := DeriveCard(mv, 8)
	if err != nil {
		t.Fatal(err)
	}
	want8 := map[CardReq]bool{{Alpha: 3, Beta: 0}: true, {Alpha: 0, Beta: 3}: true}
	if len(list8) != 2 {
		t.Fatalf("Γ=8 list = %v", list8)
	}
	for _, r := range list8 {
		if !want8[r] {
			t.Errorf("unexpected requirement %v for Γ=8", r)
		}
	}
}

// Property: on random small all-private set-constraint instances,
// exact <= LP-rounded <= ℓmax × LPvalue, exact <= greedy, and all outputs
// are feasible.
func TestQuickSetSolversOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomSetProblem(rng)
		exact, err := ExactSet(p, 1<<20)
		if err != nil || !p.Feasible(exact, Set) {
			return false
		}
		greedy := Greedy(p, Set)
		if !p.Feasible(greedy, Set) {
			return false
		}
		rounded, lpVal, err := SetLPRound(p)
		if err != nil || !p.Feasible(rounded, Set) {
			return false
		}
		ec, gc, rc := p.Cost(exact), p.Cost(greedy), p.Cost(rounded)
		lmax := float64(p.LMax(Set))
		return ec <= gc+1e-6 && ec <= rc+1e-6 &&
			rc <= lmax*lpVal+1e-6 && lpVal <= ec+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: greedy respects the (γ+1) bound of Theorem 7 on random
// instances (measured against the exact optimum).
func TestQuickGreedyGammaBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomSetProblem(rng)
		exact, err := ExactSet(p, 1<<20)
		if err != nil {
			return false
		}
		greedy := Greedy(p, Set)
		gamma := float64(p.DataSharing())
		ec, gc := p.Cost(exact), p.Cost(greedy)
		if ec == 0 {
			return gc == 0
		}
		return gc <= (gamma+1)*ec+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// randomSetProblem builds a layered random all-private instance with
// moderate sharing.
func randomSetProblem(rng *rand.Rand) *Problem {
	nMods := 2 + rng.Intn(4)
	p := &Problem{Costs: privacy.Costs{}}
	prevOut := []string{"src"}
	p.Costs["src"] = 1 + rng.Float64()*4
	for i := 0; i < nMods; i++ {
		in := prevOut
		out := []string{fmt.Sprintf("d%d", i)}
		p.Costs[out[0]] = 1 + rng.Float64()*4
		options := []SetReq{{Out: out}}
		for _, a := range in {
			options = append(options, SetReq{In: []string{a}})
		}
		p.Modules = append(p.Modules, ModuleSpec{
			Name: fmt.Sprintf("m%d", i), Inputs: in, Outputs: out, SetList: options,
		})
		if rng.Intn(2) == 0 && i > 0 {
			prevOut = []string{out[0], prevOut[0]}
		} else {
			prevOut = out
		}
	}
	return p
}

func majorityModule(in []string) *module.Module {
	return module.Majority("maj", in, "y")
}

func identityModule(k int) *module.Module {
	in := make([]string, k)
	out := make([]string, k)
	for i := 0; i < k; i++ {
		in[i] = fmt.Sprintf("x%d", i+1)
		out[i] = fmt.Sprintf("y%d", i+1)
	}
	return module.Identity("id", in, out)
}

func TestExplainSetSolution(t *testing.T) {
	p := chainProblem(1, 5, 1)
	sol, err := ExactSet(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Explain(p, sol, Set)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(e.Lines))
	}
	s := e.String()
	if !strings.Contains(s, "m1") || !strings.Contains(s, "m2") {
		t.Errorf("explanation missing modules:\n%s", s)
	}
}

func TestExplainCardinalityAndPrivatization(t *testing.T) {
	p := &Problem{
		Modules: []ModuleSpec{
			{Name: "m1", Inputs: []string{"a"}, Outputs: []string{"b"},
				CardList: []CardReq{{Alpha: 0, Beta: 1}}},
			{Name: "m2", Inputs: []string{"b"}, Outputs: []string{"c"},
				Public: true, PrivatizeCost: 3},
		},
		Costs: privacy.Costs{"a": 1, "b": 1, "c": 1},
	}
	sol := p.Complete(relation.NewNameSet("b"))
	e, err := Explain(p, sol, Cardinality)
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	if !strings.Contains(s, "privatized") || !strings.Contains(s, `"b"`) {
		t.Errorf("privatization not explained:\n%s", s)
	}
	if !strings.Contains(s, "1 hidden outputs") {
		t.Errorf("cardinality not explained:\n%s", s)
	}
}

func TestExplainRejectsInfeasible(t *testing.T) {
	p := chainProblem(1, 1, 1)
	if _, err := Explain(p, Solution{Hidden: relation.NewNameSet(), Privatized: relation.NewNameSet()}, Set); err == nil {
		t.Error("infeasible solution explained")
	}
}

// TestMultiplicity checks the Theorem 7 charging constant: the maximum
// number of modules any attribute touches as input or output.
func TestMultiplicity(t *testing.T) {
	p := &Problem{
		Modules: []ModuleSpec{
			{Name: "m1", Inputs: []string{"a"}, Outputs: []string{"b"},
				SetList: []SetReq{{Out: []string{"b"}}}},
			{Name: "m2", Inputs: []string{"b"}, Outputs: []string{"c"},
				SetList: []SetReq{{Out: []string{"c"}}}},
			{Name: "m3", Inputs: []string{"b", "c"}, Outputs: []string{"d"},
				SetList: []SetReq{{Out: []string{"d"}}}},
		},
		Costs: privacy.Costs{"a": 1, "b": 1, "c": 1, "d": 1},
	}
	// b is produced by m1 and consumed by m2 and m3.
	if got := p.Multiplicity(); got != 3 {
		t.Fatalf("multiplicity %d, want 3", got)
	}
	// Consistency with DataSharing: multiplicity <= sharing + 1 when every
	// attribute has at most one producer.
	if p.Multiplicity() > p.DataSharing()+1 {
		t.Fatalf("multiplicity %d exceeds γ+1=%d", p.Multiplicity(), p.DataSharing()+1)
	}
	if got := (&Problem{}).Multiplicity(); got != 0 {
		t.Fatalf("empty problem multiplicity %d, want 0", got)
	}
}
