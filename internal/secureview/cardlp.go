package secureview

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"secureview/internal/lp"
	"secureview/internal/relation"
)

// LPForm selects which integer program the LP relaxation is built from.
type LPForm int

const (
	// FullForm is the complete IP of Figure 3, with the summation coupling
	// in constraints (4)/(5) and the r-capping constraints (6)/(7).
	FullForm LPForm = iota
	// WeakForm drops constraints (6)/(7) and removes the summation from
	// (4)/(5). The paper (appendix B.4.1) shows this relaxation has
	// unbounded / Ω(n) integrality gaps; the E15 ablation reproduces that.
	WeakForm
)

// cardLPIndex lays out LP variable indices for the Figure 3 program.
type cardLPIndex struct {
	attrs   []string
	attrIdx map[string]int
	nVars   int
	r       map[[2]int]int // (module i, option j) -> var
	y       map[[3]int]int // (module i, option j, input position) -> var
	z       map[[3]int]int // (module i, option j, output position) -> var
	mods    []int          // indices into p.Modules of private modules
}

func buildCardIndex(p *Problem, form LPForm) *cardLPIndex {
	idx := &cardLPIndex{
		attrIdx: make(map[string]int),
		r:       make(map[[2]int]int),
		y:       make(map[[3]int]int),
		z:       make(map[[3]int]int),
	}
	idx.attrs = p.Attributes()
	for i, a := range idx.attrs {
		idx.attrIdx[a] = idx.nVars
		_ = i
		idx.nVars++
	}
	for mi, m := range p.Modules {
		if m.Public {
			continue
		}
		idx.mods = append(idx.mods, mi)
		for j := range m.CardList {
			idx.r[[2]int{mi, j}] = idx.nVars
			idx.nVars++
			for bi := range m.Inputs {
				idx.y[[3]int{mi, j, bi}] = idx.nVars
				idx.nVars++
			}
			for bi := range m.Outputs {
				idx.z[[3]int{mi, j, bi}] = idx.nVars
				idx.nVars++
			}
		}
	}
	return idx
}

// buildCardLP constructs the LP relaxation of the Figure 3 IP (or of the
// weakened variant, for the integrality-gap ablation).
func buildCardLP(p *Problem, form LPForm) (*lp.Problem, *cardLPIndex) {
	idx := buildCardIndex(p, form)
	prob := lp.NewProblem(idx.nVars)
	for _, a := range idx.attrs {
		v := idx.attrIdx[a]
		prob.SetObjective(v, p.Costs.Of(a))
		prob.MustAddConstraint(map[int]float64{v: 1}, lp.LE, 1)
	}
	for _, mi := range idx.mods {
		m := p.Modules[mi]
		// (1): Σ_j r_ij >= 1, and r_ij <= 1.
		sum := make(map[int]float64)
		for j := range m.CardList {
			rv := idx.r[[2]int{mi, j}]
			sum[rv] = 1
			prob.MustAddConstraint(map[int]float64{rv: 1}, lp.LE, 1)
		}
		prob.MustAddConstraint(sum, lp.GE, 1)
		for j, req := range m.CardList {
			rv := idx.r[[2]int{mi, j}]
			// (2): Σ_b y_bij >= α_ij r_ij.
			c2 := make(map[int]float64)
			for bi := range m.Inputs {
				c2[idx.y[[3]int{mi, j, bi}]] = 1
			}
			c2[rv] = -float64(req.Alpha)
			prob.MustAddConstraint(c2, lp.GE, 0)
			// (3): Σ_b z_bij >= β_ij r_ij.
			c3 := make(map[int]float64)
			for bi := range m.Outputs {
				c3[idx.z[[3]int{mi, j, bi}]] = 1
			}
			c3[rv] = -float64(req.Beta)
			prob.MustAddConstraint(c3, lp.GE, 0)
			if form == FullForm {
				// (6)/(7): y_bij <= r_ij, z_bij <= r_ij.
				for bi := range m.Inputs {
					prob.MustAddConstraint(map[int]float64{idx.y[[3]int{mi, j, bi}]: 1, rv: -1}, lp.LE, 0)
				}
				for bi := range m.Outputs {
					prob.MustAddConstraint(map[int]float64{idx.z[[3]int{mi, j, bi}]: 1, rv: -1}, lp.LE, 0)
				}
			} else {
				// Weak form: per-option y_bij <= x_b instead of the sum.
				for bi, b := range m.Inputs {
					prob.MustAddConstraint(map[int]float64{idx.y[[3]int{mi, j, bi}]: 1, idx.attrIdx[b]: -1}, lp.LE, 0)
				}
				for bi, b := range m.Outputs {
					prob.MustAddConstraint(map[int]float64{idx.z[[3]int{mi, j, bi}]: 1, idx.attrIdx[b]: -1}, lp.LE, 0)
				}
			}
		}
		if form == FullForm {
			// (4): Σ_j y_bij <= x_b for each input b of mi.
			for bi, b := range m.Inputs {
				c4 := make(map[int]float64)
				for j := range m.CardList {
					c4[idx.y[[3]int{mi, j, bi}]] = 1
				}
				c4[idx.attrIdx[b]] = -1
				prob.MustAddConstraint(c4, lp.LE, 0)
			}
			// (5): Σ_j z_bij <= x_b for each output b of mi.
			for bi, b := range m.Outputs {
				c5 := make(map[int]float64)
				for j := range m.CardList {
					c5[idx.z[[3]int{mi, j, bi}]] = 1
				}
				c5[idx.attrIdx[b]] = -1
				prob.MustAddConstraint(c5, lp.LE, 0)
			}
		}
	}
	return prob, idx
}

// CardinalityLPValue solves the LP relaxation and returns its optimum
// value. Used directly by the integrality-gap ablation (E15).
func CardinalityLPValue(p *Problem, form LPForm) (float64, error) {
	if err := p.Validate(Cardinality); err != nil {
		return 0, err
	}
	prob, _ := buildCardLP(p, form)
	sol := prob.Solve()
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("secureview: cardinality LP %v", sol.Status)
	}
	return sol.Objective, nil
}

// RoundingOptions configures Algorithm 1.
type RoundingOptions struct {
	// Multiplier scales the inclusion probability min{1, Multiplier·x_b}.
	// Zero selects the paper's 16·ln n.
	Multiplier float64
	// Trials repeats the randomized rounding and keeps the cheapest
	// feasible outcome. Zero selects 1 (the paper's single shot).
	Trials int
	// Rng supplies randomness; nil selects a fixed-seed source so results
	// are reproducible by default.
	Rng *rand.Rand
}

// CardinalityLPRound implements Theorem 5's O(log n)-approximation: solve
// the LP relaxation of the Figure 3 IP, include each attribute with
// probability min{1, multiplier·x_b} (Algorithm 1 step 2), then repair any
// unsatisfied module with its cheapest option B^min (step 3), and finally
// apply the privatization closure. It returns the solution and the LP
// optimum (a lower bound on OPT, so cost/lpValue bounds the true ratio).
func CardinalityLPRound(p *Problem, opts RoundingOptions) (Solution, float64, error) {
	return CardinalityLPRoundCtx(context.Background(), p, opts)
}

// CardinalityLPRoundCtx is CardinalityLPRound with cancellation inside the
// simplex (polled every few dozen pivots) and between rounding trials. On
// expiry it returns ctx.Err() and, when at least one trial finished, the
// cheapest feasible rounding so far.
func CardinalityLPRoundCtx(ctx context.Context, p *Problem, opts RoundingOptions) (Solution, float64, error) {
	if err := p.Validate(Cardinality); err != nil {
		return Solution{}, 0, err
	}
	if err := ctx.Err(); err != nil {
		return Solution{}, 0, err
	}
	prob, idx := buildCardLP(p, FullForm)
	lpSol, err := prob.SolveCtx(ctx)
	if err != nil {
		return Solution{}, 0, err
	}
	if lpSol.Status != lp.Optimal {
		return Solution{}, 0, fmt.Errorf("secureview: cardinality LP %v", lpSol.Status)
	}
	n := len(idx.mods)
	mult := opts.Multiplier
	if mult == 0 {
		mult = 16 * math.Log(math.Max(float64(n), 2))
	}
	trials := opts.Trials
	if trials == 0 {
		trials = 1
	}
	rng := opts.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	var best Solution
	bestCost := math.Inf(1)
	for t := 0; t < trials; t++ {
		if err := ctx.Err(); err != nil {
			if bestCost < math.Inf(1) {
				return best, lpSol.Objective, err
			}
			return Solution{}, 0, err
		}
		hidden := make(relation.NameSet)
		for _, a := range idx.attrs {
			pInc := mult * lpSol.X[idx.attrIdx[a]]
			if pInc >= 1 || rng.Float64() < pInc {
				hidden.Add(a)
			}
		}
		// Step 3: repair unsatisfied modules with their cheapest option.
		for _, mi := range idx.mods {
			m := p.Modules[mi]
			if !p.moduleSatisfied(m, hidden, Cardinality) {
				opt, _ := p.minCostOption(m, Cardinality)
				hidden = hidden.Union(opt)
			}
		}
		sol := p.Complete(hidden)
		if c := p.Cost(sol); c < bestCost {
			bestCost = c
			best = sol
		}
	}
	return best, lpSol.Objective, nil
}
