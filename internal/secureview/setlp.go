package secureview

import (
	"context"
	"fmt"

	"secureview/internal/lp"
	"secureview/internal/relation"
)

// SetLPRound implements the ℓmax-approximation for set constraints
// (appendix B.5.1), extended to general workflows with privatization costs
// (appendix C.4): solve the LP
//
//	min Σ c_b x_b + Σ c_i w_i
//	s.t. Σ_j r_ij >= 1                 for every private module i   (19)
//	     x_b >= r_ij                   for every b ∈ I_i^j ∪ O_i^j  (20)
//	     w_i >= x_b                    for every attr b of public i (21)
//	     0 <= x, r, w <= 1
//
// and hide every attribute with x_b >= 1/ℓmax (then privatize by closure).
// Feasibility: some r_ij >= 1/ℓi >= 1/ℓmax, so that option's attributes all
// reach the threshold. The cost is at most ℓmax times the LP optimum, which
// lower-bounds OPT. Returns the solution and the LP optimum.
func SetLPRound(p *Problem) (Solution, float64, error) {
	return SetLPRoundCtx(context.Background(), p)
}

// SetLPRoundCtx is SetLPRound with cancellation inside the simplex (polled
// every few dozen pivots). On expiry it returns ctx.Err() and no solution —
// the rounding is a single deterministic threshold pass, so there is no
// meaningful partial result.
func SetLPRoundCtx(ctx context.Context, p *Problem) (Solution, float64, error) {
	if err := p.Validate(Set); err != nil {
		return Solution{}, 0, err
	}
	if err := ctx.Err(); err != nil {
		return Solution{}, 0, err
	}
	lmax := p.LMax(Set)
	if lmax == 0 {
		return Solution{Hidden: relation.NewNameSet(), Privatized: relation.NewNameSet()}, 0, nil
	}

	attrs := p.Attributes()
	attrIdx := make(map[string]int, len(attrs))
	nVars := 0
	for _, a := range attrs {
		attrIdx[a] = nVars
		nVars++
	}
	rIdx := make(map[[2]int]int)
	wIdx := make(map[int]int)
	for mi, m := range p.Modules {
		if m.Public {
			wIdx[mi] = nVars
			nVars++
			continue
		}
		for j := range m.SetList {
			rIdx[[2]int{mi, j}] = nVars
			nVars++
		}
	}

	prob := lp.NewProblem(nVars)
	for _, a := range attrs {
		prob.SetObjective(attrIdx[a], p.Costs.Of(a))
		prob.MustAddConstraint(map[int]float64{attrIdx[a]: 1}, lp.LE, 1)
	}
	for mi, m := range p.Modules {
		if m.Public {
			w := wIdx[mi]
			prob.SetObjective(w, m.PrivatizeCost)
			prob.MustAddConstraint(map[int]float64{w: 1}, lp.LE, 1)
			for _, a := range append(append([]string{}, m.Inputs...), m.Outputs...) {
				// (21): w_i - x_b >= 0.
				prob.MustAddConstraint(map[int]float64{w: 1, attrIdx[a]: -1}, lp.GE, 0)
			}
			continue
		}
		sum := make(map[int]float64)
		for j, req := range m.SetList {
			rv := rIdx[[2]int{mi, j}]
			sum[rv] = 1
			prob.MustAddConstraint(map[int]float64{rv: 1}, lp.LE, 1)
			for a := range req.Attrs() {
				// (20): x_b - r_ij >= 0.
				prob.MustAddConstraint(map[int]float64{attrIdx[a]: 1, rv: -1}, lp.GE, 0)
			}
		}
		// (19).
		prob.MustAddConstraint(sum, lp.GE, 1)
	}

	lpSol, err := prob.SolveCtx(ctx)
	if err != nil {
		return Solution{}, 0, err
	}
	if lpSol.Status != lp.Optimal {
		return Solution{}, 0, fmt.Errorf("secureview: set LP %v", lpSol.Status)
	}
	threshold := 1/float64(lmax) - 1e-9
	hidden := make(relation.NameSet)
	for _, a := range attrs {
		if lpSol.X[attrIdx[a]] >= threshold {
			hidden.Add(a)
		}
	}
	return p.Complete(hidden), lpSol.Objective, nil
}
