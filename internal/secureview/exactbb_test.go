package secureview

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/privacy"
)

func TestExactCardBBChain(t *testing.T) {
	p := chainProblem(1, 5, 1)
	sol, err := ExactCardBB(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(sol); got != 2 {
		t.Fatalf("BB cost = %v, want 2", got)
	}
}

func TestExactCardBBGapGadget(t *testing.T) {
	p := &Problem{
		Modules: []ModuleSpec{{
			Name:    "m",
			Inputs:  []string{"i1", "i2", "i3", "i4"},
			Outputs: []string{"o1", "o2", "o3", "o4"},
			CardList: []CardReq{
				{Alpha: 4, Beta: 0},
				{Alpha: 0, Beta: 4},
			},
		}},
		Costs: privacy.Costs{
			"i1": 0, "i2": 0, "i3": 100, "i4": 100,
			"o1": 0, "o2": 0, "o3": 100, "o4": 100,
		},
	}
	sol, err := ExactCardBB(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(sol); got != 200 {
		t.Fatalf("BB cost = %v, want 200", got)
	}
}

func TestExactCardBBNodeBudget(t *testing.T) {
	p := chainProblem(1, 1, 1)
	if _, err := ExactCardBB(p, 1); err == nil {
		t.Error("node budget not enforced")
	}
}

func TestExactCardBBWithPublicModules(t *testing.T) {
	// Hiding b forces privatizing m2 (cost 3); hiding a costs 2 and avoids
	// it; the optimum must account for privatization, not just attributes.
	p := &Problem{
		Modules: []ModuleSpec{
			{Name: "m1", Inputs: []string{"a"}, Outputs: []string{"b"},
				CardList: []CardReq{{Alpha: 1, Beta: 0}, {Alpha: 0, Beta: 1}}},
			{Name: "m2", Inputs: []string{"b"}, Outputs: []string{"c"},
				Public: true, PrivatizeCost: 3},
		},
		Costs: privacy.Costs{"a": 2, "b": 1, "c": 1},
	}
	sol, err := ExactCardBB(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cost(sol); got != 2 {
		t.Fatalf("BB cost = %v, want 2 (hide a)", got)
	}
	if !sol.Hidden.Has("a") {
		t.Errorf("hidden = %v, want {a}", sol.Hidden)
	}
}

// Property: branch and bound agrees with exhaustive enumeration on random
// cardinality instances (with and without sharing).
func TestQuickBBMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomCardProblem(rng)
		enum, err1 := ExactCard(p, 18)
		bb, err2 := ExactCardBB(p, 1<<22)
		if err1 != nil || err2 != nil {
			return false
		}
		return p.Cost(enum) == p.Cost(bb) &&
			p.Feasible(bb, Cardinality)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomCardProblem builds a small random cardinality instance with
// requirement pairs up to the module arity.
func randomCardProblem(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(4)
	p := &Problem{Costs: privacy.Costs{}}
	prev := []string{"src0", "src1"}
	p.Costs["src0"] = float64(1 + rng.Intn(5))
	p.Costs["src1"] = float64(1 + rng.Intn(5))
	for i := 0; i < n; i++ {
		in := prev
		out := []string{fmt.Sprintf("d%d_0", i), fmt.Sprintf("d%d_1", i)}
		for _, a := range out {
			p.Costs[a] = float64(1 + rng.Intn(5))
		}
		var list []CardReq
		for k := 0; k < 1+rng.Intn(2); k++ {
			list = append(list, CardReq{
				Alpha: rng.Intn(len(in) + 1),
				Beta:  rng.Intn(len(out) + 1),
			})
		}
		// Ensure satisfiability: at least one option within bounds exists
		// by construction (alpha <= |in|, beta <= |out|).
		p.Modules = append(p.Modules, ModuleSpec{
			Name: fmt.Sprintf("m%d", i), Inputs: in, Outputs: out, CardList: list,
		})
		prev = out
	}
	return p
}
