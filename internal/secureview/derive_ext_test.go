package secureview

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

func TestDeriveMatchesDeriveSet(t *testing.T) {
	w := workflow.Fig1()
	costs := privacy.Uniform(w.Schema().Names()...)
	a, err := DeriveSet(w, 2, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Derive(w, DeriveOptions{Gamma: 2, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	solA, err := ExactSet(a, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	solB, err := ExactSet(b, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost(solA) != b.Cost(solB) {
		t.Fatalf("Derive cost %v != DeriveSet cost %v", b.Cost(solB), a.Cost(solA))
	}
}

func TestDeriveParallelAgreesWithSequential(t *testing.T) {
	w := workflow.Fig1()
	costs := privacy.Uniform(w.Schema().Names()...)
	seq, err := Derive(w, DeriveOptions{Gamma: 2, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Derive(w, DeriveOptions{Gamma: 2, Costs: costs, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Modules) != len(par.Modules) {
		t.Fatal("module count differs")
	}
	for i := range seq.Modules {
		if seq.Modules[i].Name != par.Modules[i].Name ||
			len(seq.Modules[i].SetList) != len(par.Modules[i].SetList) {
			t.Fatalf("module %d differs between sequential and parallel derivation", i)
		}
	}
}

func TestDerivePerModuleGamma(t *testing.T) {
	w := workflow.Fig1()
	costs := privacy.Uniform(w.Schema().Names()...)
	// m1 has 3 output bits (range 8) so it supports Γ=4; the single-output
	// modules m2, m3 stay at Γ=2.
	p, err := Derive(w, DeriveOptions{
		Gamma:          2,
		GammaPerModule: map[string]uint64{"m1": 4},
		Costs:          costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ExactSet(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// Check standalone guarantees per module at their own Γ.
	for _, m := range w.Modules() {
		mv := privacy.NewModuleView(m)
		gamma := uint64(2)
		if m.Name() == "m1" {
			gamma = 4
		}
		vis := relation.NewNameSet(mv.Attrs()...).Minus(sol.Hidden)
		safe, err := mv.IsSafe(vis, gamma)
		if err != nil || !safe {
			t.Errorf("module %s not %d-private under solution %v", m.Name(), gamma, sol.Hidden)
		}
	}
	// A uniform Γ=4 derivation must fail (m2/m3 cannot reach it)...
	if _, err := Derive(w, DeriveOptions{Gamma: 4, Costs: costs}); err == nil {
		t.Error("uniform Γ=4 accepted despite 1-bit modules")
	}
	// ...and so must a zero requirement.
	if _, err := Derive(w, DeriveOptions{Costs: costs}); err == nil {
		t.Error("missing Γ accepted")
	}
}

func TestDeriveFromRecordedPartialLog(t *testing.T) {
	// With only two executions recorded, the constant-looking behaviour of
	// m3 over the log changes which subsets are safe.
	w := workflow.Fig1()
	costs := privacy.Uniform(w.Schema().Names()...)
	partial, err := w.RelationOver([]relation.Tuple{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Derive(w, DeriveOptions{Gamma: 2, Costs: costs, Recorded: partial})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ExactSet(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// The solution must be safe for every module view over the log.
	for _, m := range w.Modules() {
		proj, err := partial.Project(m.AttrNames())
		if err != nil {
			t.Fatal(err)
		}
		mv := privacy.ModuleView{Rel: proj, Inputs: m.InputNames(), Outputs: m.OutputNames()}
		vis := relation.NewNameSet(mv.Attrs()...).Minus(sol.Hidden)
		safe, err := mv.IsSafe(vis, 2)
		if err != nil || !safe {
			t.Errorf("module %s unsafe over the recorded log", m.Name())
		}
	}
	// Partial logs can be HARDER to protect: the two recorded rows give m2
	// a single execution, so its visible outputs carry less ambiguity and
	// more must be hidden (cost 3) than over the full domain (cost 2).
	full, err := Derive(w, DeriveOptions{Gamma: 2, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	fullSol, err := ExactSet(full, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Cost(sol), 3.0; got != want {
		t.Errorf("partial-log cost = %v, want %v", got, want)
	}
	if got, want := full.Cost(fullSol), 2.0; got != want {
		t.Errorf("full-domain cost = %v, want %v", got, want)
	}
}

// Property: for random two-layer workflows, parallel and sequential
// derivation produce identical instances, and the exact optimum is safe for
// every module standalone.
func TestQuickDeriveConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := module.Random("m1", relation.Bools("x1", "x2"), relation.Bools("u1", "u2"), rng)
		m2 := module.Random("m2", relation.Bools("u1", "u2"), relation.Bools("v1", "v2"), rng)
		w, err := workflow.New("rand", m1, m2)
		if err != nil {
			return false
		}
		costs := privacy.Uniform(w.Schema().Names()...)
		seq, err1 := Derive(w, DeriveOptions{Gamma: 2, Costs: costs})
		par, err2 := Derive(w, DeriveOptions{Gamma: 2, Costs: costs, Parallel: true})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // both fail together (no safe subset)
		}
		sa, err1 := ExactSet(seq, 1<<20)
		sb, err2 := ExactSet(par, 1<<20)
		if err1 != nil || err2 != nil {
			return false
		}
		if seq.Cost(sa) != par.Cost(sb) {
			return false
		}
		for _, m := range w.Modules() {
			mv := privacy.NewModuleView(m)
			vis := relation.NewNameSet(mv.Attrs()...).Minus(sa.Hidden)
			safe, err := mv.IsSafe(vis, 2)
			if err != nil || !safe {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDeriveWithCacheAmortizes(t *testing.T) {
	// Two different workflows reusing the same module (the paper's BLAST
	// scenario): the second derivation hits the cache.
	cache := privacy.NewCache()
	costs := privacy.Uniform("x", "y", "u", "v")
	m := module.And("shared", []string{"x", "y"}, "u")
	down1 := module.Not("d1", "u", "v")
	w1 := workflow.MustNew("w1", m, down1)
	w2 := workflow.MustNew("w2", m, module.Xor("d2", []string{"u", "x"}, "v"))
	if _, err := Derive(w1, DeriveOptions{Gamma: 2, Costs: costs, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if _, err := Derive(w2, DeriveOptions{Gamma: 2, Costs: costs, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits < 1 {
		t.Fatalf("hits = %d, want >= 1 (shared module reused)", hits)
	}
	if misses < 3 {
		t.Fatalf("misses = %d, want >= 3 (distinct modules)", misses)
	}
	// Cached and uncached derivations agree.
	a, err := Derive(w1, DeriveOptions{Gamma: 2, Costs: costs, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Derive(w1, DeriveOptions{Gamma: 2, Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := ExactSet(a, 1<<20)
	sb, _ := ExactSet(b, 1<<20)
	if a.Cost(sa) != b.Cost(sb) {
		t.Fatal("cache changed the optimum")
	}
}

// TestDeriveInfeasibleIsTyped pins the ErrInfeasible sentinel: a module
// whose output range is smaller than Γ can never be safe, and both
// derivations must report that as errors.Is-able infeasibility (the
// differential harness distinguishes it from internal failures).
func TestDeriveInfeasibleIsTyped(t *testing.T) {
	w := workflow.MustNew("tiny", module.Identity("m", []string{"x"}, []string{"y"}))
	costs := privacy.Uniform(w.Schema().Names()...)
	if _, err := Derive(w, DeriveOptions{Gamma: 4, Costs: costs}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Derive: got %v, want ErrInfeasible", err)
	}
	if _, err := DeriveCardProblem(w, 4, costs, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("DeriveCardProblem: got %v, want ErrInfeasible", err)
	}
}
