package secureview

import (
	"context"
	"fmt"
	"sort"

	"secureview/internal/relation"
)

// ExactCardBB finds an optimal cardinality-variant solution. It is
// ExactCardBBCtx without cancellation; see there for the budget contract.
func ExactCardBB(p *Problem, maxNodes int) (Solution, error) {
	sol, _, err := ExactCardBBCtx(context.Background(), p, maxNodes)
	return sol, err
}

// ExactCardBBCtx finds an optimal cardinality-variant solution by
// depth-first branch and bound over attributes, which scales further than
// ExactCard's 2^|A| enumeration on instances whose optima hide few
// attributes.
//
// Branching: attributes are considered in decreasing "demand" order; at
// each node the attribute is either hidden (cost incurred) or discarded.
// Pruning: (a) cost-based against the incumbent, (b) feasibility-based —
// if discarding attributes makes some module's cheapest remaining option
// unreachable, the branch dies, (c) a simple lower bound adding, per
// unsatisfied module, the cheapest completion cost of its easiest option
// restricted to still-available attributes (admissible because option
// completions may overlap, which only lowers true cost... the bound uses
// the maximum single-module completion, which never overestimates).
//
// Exceeding maxNodes returns an error wrapping ErrNodeBudget; cancellation
// is observed every few hundred nodes and returns ctx.Err(). In both cases
// the best incumbent found so far is returned alongside the error (always
// feasible, since the greedy seed is).
func ExactCardBBCtx(ctx context.Context, p *Problem, maxNodes int) (Solution, ExactStats, error) {
	if err := p.Validate(Cardinality); err != nil {
		return Solution{}, ExactStats{}, err
	}
	var privates []ModuleSpec
	for _, m := range p.Modules {
		if !m.Public {
			privates = append(privates, m)
		}
	}
	useful := relation.NewNameSet(p.UsefulAttributes(Cardinality)...)
	attrs := useful.Sorted()
	// Order attributes by how many modules reference them (descending), so
	// impactful decisions happen early; ties by cost ascending.
	demand := make(map[string]int)
	for _, m := range privates {
		for _, a := range m.Inputs {
			if useful.Has(a) {
				demand[a]++
			}
		}
		for _, a := range m.Outputs {
			if useful.Has(a) {
				demand[a]++
			}
		}
	}
	sort.Slice(attrs, func(i, j int) bool {
		if demand[attrs[i]] != demand[attrs[j]] {
			return demand[attrs[i]] > demand[attrs[j]]
		}
		ci, cj := p.Costs.Of(attrs[i]), p.Costs.Of(attrs[j])
		if ci != cj {
			return ci < cj
		}
		return attrs[i] < attrs[j]
	})

	incumbent := Greedy(p, Cardinality)
	bestCost := p.Cost(incumbent)
	best := incumbent
	feasibleSeen := p.Feasible(incumbent, Cardinality)

	hidden := make(relation.NameSet)
	discarded := make(relation.NameSet)
	nodes := 0
	var overBudget, cancelled bool

	// completionBound returns a lower bound on extra attribute cost needed
	// to satisfy all currently unsatisfied modules, or -1 if some module
	// can no longer be satisfied.
	completionBound := func() float64 {
		bound := 0.0
		for _, m := range privates {
			if p.moduleSatisfied(m, hidden, Cardinality) {
				continue
			}
			cheapest := -1.0
			for _, r := range m.CardList {
				c, ok := completionCost(p, m, r, hidden, discarded)
				if !ok {
					continue
				}
				if cheapest < 0 || c < cheapest {
					cheapest = c
				}
			}
			if cheapest < 0 {
				return -1
			}
			if cheapest > bound {
				bound = cheapest // max over modules: admissible
			}
		}
		return bound
	}

	var rec func(i int, attrCost float64)
	rec = func(i int, attrCost float64) {
		nodes++
		if nodes > maxNodes {
			overBudget = true
			return
		}
		if nodes&255 == 0 && ctx.Err() != nil {
			cancelled = true
			return
		}
		lb := completionBound()
		if lb < 0 || attrCost+lb >= bestCost {
			return
		}
		if i == len(attrs) {
			sol := p.Complete(hidden.Clone())
			if !p.Feasible(sol, Cardinality) {
				return
			}
			if c := p.Cost(sol); c < bestCost || !feasibleSeen {
				bestCost = c
				best = sol
				feasibleSeen = true
			}
			return
		}
		a := attrs[i]
		// Branch 1: hide a.
		hidden.Add(a)
		rec(i+1, attrCost+p.Costs.Of(a))
		delete(hidden, a)
		if overBudget || cancelled {
			return
		}
		// Branch 2: discard a.
		discarded.Add(a)
		rec(i+1, attrCost)
		delete(discarded, a)
	}
	rec(0, 0)
	stats := ExactStats{Nodes: nodes}
	switch {
	case cancelled:
		return best, stats, ctx.Err()
	case overBudget:
		return best, stats, fmt.Errorf("secureview: branch-and-bound exceeded %d nodes: %w", maxNodes, ErrNodeBudget)
	case !feasibleSeen:
		return Solution{}, stats, fmt.Errorf("secureview: no feasible solution")
	}
	return best, stats, nil
}

// completionCost returns the cheapest extra cost to satisfy requirement r
// of module m given already-hidden and permanently-discarded attributes,
// or false if impossible.
func completionCost(p *Problem, m ModuleSpec, r CardReq, hidden, discarded relation.NameSet) (float64, bool) {
	needIn := r.Alpha
	var availIn []float64
	for _, a := range m.Inputs {
		if hidden.Has(a) {
			needIn--
		} else if !discarded.Has(a) {
			availIn = append(availIn, p.Costs.Of(a))
		}
	}
	needOut := r.Beta
	var availOut []float64
	for _, a := range m.Outputs {
		if hidden.Has(a) {
			needOut--
		} else if !discarded.Has(a) {
			availOut = append(availOut, p.Costs.Of(a))
		}
	}
	if needIn < 0 {
		needIn = 0
	}
	if needOut < 0 {
		needOut = 0
	}
	if needIn > len(availIn) || needOut > len(availOut) {
		return 0, false
	}
	sort.Float64s(availIn)
	sort.Float64s(availOut)
	cost := 0.0
	for _, c := range availIn[:needIn] {
		cost += c
	}
	for _, c := range availOut[:needOut] {
		cost += c
	}
	return cost, true
}
