package secureview

import (
	"context"
	"errors"
	"fmt"
	"math"

	"secureview/internal/relation"
)

// ErrNodeBudget is the typed sentinel wrapped (errors.Is-able) by the exact
// solvers when their search space or node budget is exhausted before the
// optimum is proven, mirroring worlds.ErrBudgetExhausted. Callers distinguish
// a legitimately-too-large instance from a solver defect with errors.Is; the
// differential harness's skip logic asserts exactly that.
var ErrNodeBudget = errors.New("secureview: node budget exhausted")

// ExactStats reports how an exact solver spent its budget: search-tree nodes
// for ExactSet and ExactCardBB, candidate masks for ExactCard.
type ExactStats struct {
	Nodes int
}

// ExactSet finds an optimal solution for the set-constraints variant. It is
// ExactSetCtx without cancellation; see there for the budget contract.
func ExactSet(p *Problem, maxNodes int) (Solution, error) {
	sol, _, err := ExactSetCtx(context.Background(), p, maxNodes)
	return sol, err
}

// ExactSetCtx finds an optimal solution for the set-constraints variant by
// branch and bound over per-module option choices (ℓmax^n worst case; the
// problem is NP-hard, Theorem 6). The incumbent is seeded by Greedy.
//
// A search space exceeding maxNodes returns an error wrapping ErrNodeBudget.
// Cancellation is observed every few hundred nodes; on expiry the call
// returns ctx.Err() together with the best incumbent found so far (always
// feasible, since the greedy seed is).
func ExactSetCtx(ctx context.Context, p *Problem, maxNodes int) (Solution, ExactStats, error) {
	if err := p.Validate(Set); err != nil {
		return Solution{}, ExactStats{}, err
	}
	var privates []ModuleSpec
	for _, m := range p.Modules {
		if !m.Public {
			privates = append(privates, m)
		}
	}
	space := 1.0
	for _, m := range privates {
		space *= float64(len(m.SetList))
	}
	if space > float64(maxNodes) {
		return Solution{}, ExactStats{}, fmt.Errorf("secureview: exact set search space %g exceeds %d: %w", space, maxNodes, ErrNodeBudget)
	}

	incumbent := Greedy(p, Set)
	bestCost := p.Cost(incumbent)
	best := incumbent

	hidden := make(relation.NameSet)
	hideCount := make(map[string]int)
	attrCost := 0.0
	nodes := 0
	cancelled := false
	var rec func(i int)
	rec = func(i int) {
		nodes++
		if nodes&255 == 0 && ctx.Err() != nil {
			cancelled = true
		}
		if cancelled {
			return
		}
		if attrCost >= bestCost {
			return // privatization cost is non-negative
		}
		if i == len(privates) {
			sol := p.Complete(hidden.Clone())
			c := p.Cost(sol)
			if c < bestCost {
				bestCost = c
				best = sol
			}
			return
		}
		m := privates[i]
		for _, r := range m.SetList {
			var added []string
			for a := range r.Attrs() {
				if hideCount[a] == 0 {
					hidden.Add(a)
					attrCost += p.Costs.Of(a)
					added = append(added, a)
				}
				hideCount[a]++
			}
			rec(i + 1)
			for a := range r.Attrs() {
				hideCount[a]--
			}
			for _, a := range added {
				delete(hidden, a)
				attrCost -= p.Costs.Of(a)
			}
			if cancelled {
				return
			}
		}
	}
	rec(0)
	if cancelled {
		return best, ExactStats{Nodes: nodes}, ctx.Err()
	}
	return best, ExactStats{Nodes: nodes}, nil
}

// ExactCard finds an optimal solution for the cardinality variant. It is
// ExactCardCtx without cancellation; see there for the budget contract.
func ExactCard(p *Problem, maxAttrs int) (Solution, error) {
	sol, _, err := ExactCardCtx(context.Background(), p, maxAttrs)
	return sol, err
}

// ExactCardCtx finds an optimal solution for the cardinality variant by
// enumerating all subsets of the instance's useful attributes (2^|A'|; the
// problem is NP-hard even restricted, Theorem 5); see UsefulAttributes for
// why nothing else can appear in an optimum.
//
// A useful-attribute count exceeding maxAttrs returns an error wrapping
// ErrNodeBudget. Cancellation is observed every few thousand masks; on
// expiry the call returns ctx.Err() together with the cheapest feasible
// solution seen so far, if any.
func ExactCardCtx(ctx context.Context, p *Problem, maxAttrs int) (Solution, ExactStats, error) {
	if err := p.Validate(Cardinality); err != nil {
		return Solution{}, ExactStats{}, err
	}
	attrs := p.UsefulAttributes(Cardinality)
	if len(attrs) > maxAttrs || len(attrs) > 26 {
		return Solution{}, ExactStats{}, fmt.Errorf("secureview: %d attributes too many for exact enumeration: %w", len(attrs), ErrNodeBudget)
	}
	bestCost := math.Inf(1)
	var best Solution
	found := false
	nodes := 0
	for mask := 0; mask < 1<<len(attrs); mask++ {
		nodes++
		if mask&4095 == 0 && ctx.Err() != nil {
			if found {
				return best, ExactStats{Nodes: nodes}, ctx.Err()
			}
			return Solution{}, ExactStats{Nodes: nodes}, ctx.Err()
		}
		hidden := make(relation.NameSet)
		attrCost := 0.0
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				hidden.Add(a)
				attrCost += p.Costs.Of(a)
			}
		}
		if attrCost >= bestCost {
			continue
		}
		sol := p.Complete(hidden)
		if !p.Feasible(sol, Cardinality) {
			continue
		}
		c := p.Cost(sol)
		if c < bestCost {
			bestCost = c
			best = sol
			found = true
		}
	}
	if !found {
		return Solution{}, ExactStats{Nodes: nodes}, fmt.Errorf("secureview: no feasible solution")
	}
	return best, ExactStats{Nodes: nodes}, nil
}
