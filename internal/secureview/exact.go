package secureview

import (
	"fmt"
	"math"

	"secureview/internal/relation"
)

// ExactSet finds an optimal solution for the set-constraints variant by
// branch and bound over per-module option choices (ℓmax^n worst case; the
// problem is NP-hard, Theorem 6). The incumbent is seeded by Greedy.
// An error is returned when the search space exceeds maxNodes.
func ExactSet(p *Problem, maxNodes int) (Solution, error) {
	if err := p.Validate(Set); err != nil {
		return Solution{}, err
	}
	var privates []ModuleSpec
	for _, m := range p.Modules {
		if !m.Public {
			privates = append(privates, m)
		}
	}
	space := 1.0
	for _, m := range privates {
		space *= float64(len(m.SetList))
	}
	if space > float64(maxNodes) {
		return Solution{}, fmt.Errorf("secureview: exact set search space %g exceeds %d", space, maxNodes)
	}

	incumbent := Greedy(p, Set)
	bestCost := p.Cost(incumbent)
	best := incumbent

	hidden := make(relation.NameSet)
	hideCount := make(map[string]int)
	attrCost := 0.0
	var rec func(i int)
	rec = func(i int) {
		if attrCost >= bestCost {
			return // privatization cost is non-negative
		}
		if i == len(privates) {
			sol := p.Complete(hidden.Clone())
			c := p.Cost(sol)
			if c < bestCost {
				bestCost = c
				best = sol
			}
			return
		}
		m := privates[i]
		for _, r := range m.SetList {
			var added []string
			for a := range r.Attrs() {
				if hideCount[a] == 0 {
					hidden.Add(a)
					attrCost += p.Costs.Of(a)
					added = append(added, a)
				}
				hideCount[a]++
			}
			rec(i + 1)
			for a := range r.Attrs() {
				hideCount[a]--
			}
			for _, a := range added {
				delete(hidden, a)
				attrCost -= p.Costs.Of(a)
			}
		}
	}
	rec(0)
	return best, nil
}

// ExactCard finds an optimal solution for the cardinality variant by
// enumerating all subsets of the instance's useful attributes (2^|A'|; the
// problem is NP-hard even restricted, Theorem 5). An attribute is useful if
// it can contribute to some requirement: it is an input of a private module
// with a positive α option, or an output of one with a positive β option.
// Hiding any other attribute only adds cost (and possibly privatization),
// so no optimum contains one. An error is returned when the useful
// attribute count exceeds maxAttrs.
func ExactCard(p *Problem, maxAttrs int) (Solution, error) {
	if err := p.Validate(Cardinality); err != nil {
		return Solution{}, err
	}
	useful := make(relation.NameSet)
	for _, m := range p.Modules {
		if m.Public {
			continue
		}
		maxAlpha, maxBeta := 0, 0
		for _, r := range m.CardList {
			if r.Alpha > maxAlpha {
				maxAlpha = r.Alpha
			}
			if r.Beta > maxBeta {
				maxBeta = r.Beta
			}
		}
		if maxAlpha > 0 {
			for _, a := range m.Inputs {
				useful.Add(a)
			}
		}
		if maxBeta > 0 {
			for _, a := range m.Outputs {
				useful.Add(a)
			}
		}
	}
	attrs := useful.Sorted()
	if len(attrs) > maxAttrs || len(attrs) > 26 {
		return Solution{}, fmt.Errorf("secureview: %d attributes too many for exact enumeration", len(attrs))
	}
	bestCost := math.Inf(1)
	var best Solution
	found := false
	for mask := 0; mask < 1<<len(attrs); mask++ {
		hidden := make(relation.NameSet)
		attrCost := 0.0
		for i, a := range attrs {
			if mask&(1<<i) != 0 {
				hidden.Add(a)
				attrCost += p.Costs.Of(a)
			}
		}
		if attrCost >= bestCost {
			continue
		}
		sol := p.Complete(hidden)
		if !p.Feasible(sol, Cardinality) {
			continue
		}
		c := p.Cost(sol)
		if c < bestCost {
			bestCost = c
			best = sol
			found = true
		}
	}
	if !found {
		return Solution{}, fmt.Errorf("secureview: no feasible solution")
	}
	return best, nil
}
