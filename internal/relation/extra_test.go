package relation

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// Large-domain values exercise the multi-byte branch of the row-key
// encoding; distinct tuples must stay distinct.
func TestLargeDomainKeyEncoding(t *testing.T) {
	s := MustSchema(Attribute{"id", 1000}, Attribute{"v", 600})
	r := New(s)
	values := []Tuple{
		{249, 250}, {250, 249}, {250, 250}, {499, 500}, {500, 499},
		{999, 0}, {0, 599}, {250, 0}, {0, 250}, {750, 1},
	}
	for _, v := range values {
		if err := r.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != len(values) {
		t.Fatalf("len = %d, want %d (key collision?)", r.Len(), len(values))
	}
	for _, v := range values {
		if !r.Contains(v) {
			t.Errorf("lost tuple %v", v)
		}
	}
	if r.Contains(Tuple{499, 499}) {
		t.Error("phantom tuple present")
	}
}

// Property: no two distinct tuples over a large mixed-radix schema collide
// in the relation (Insert treats them as different rows).
func TestQuickNoKeyCollisions(t *testing.T) {
	s := MustSchema(Attribute{"a", 777}, Attribute{"b", 300}, Attribute{"c", 2})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(s)
		seen := make(map[[3]int]bool)
		for i := 0; i < 60; i++ {
			tp := Tuple{rng.Intn(777), rng.Intn(300), rng.Intn(2)}
			seen[[3]int{tp[0], tp[1], tp[2]}] = true
			if err := r.Insert(tp); err != nil {
				return false
			}
		}
		return r.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortedRowsIsLexicographic(t *testing.T) {
	s := MustSchema(Bools("a", "b", "c")...)
	r := MustFromRows(s, [][]Value{
		{1, 1, 1}, {0, 0, 0}, {1, 0, 1}, {0, 1, 0},
	})
	rows := r.SortedRows()
	if !sort.SliceIsSorted(rows, func(i, j int) bool {
		return lessTuple(rows[i], rows[j])
	}) {
		t.Fatalf("rows not sorted: %v", rows)
	}
	if !rows[0].Equal(Tuple{0, 0, 0}) || !rows[3].Equal(Tuple{1, 1, 1}) {
		t.Fatalf("order wrong: %v", rows)
	}
}

func TestLessTupleEdgeCases(t *testing.T) {
	if lessTuple(Tuple{1}, Tuple{1}) {
		t.Error("equal tuples compared less")
	}
	if !lessTuple(Tuple{1}, Tuple{1, 0}) {
		t.Error("prefix not less than extension")
	}
	if lessTuple(Tuple{2}, Tuple{1, 9}) {
		t.Error("ordering ignores first column")
	}
}

func TestNameSetOperations(t *testing.T) {
	a := NewNameSet("x", "y", "z")
	b := NewNameSet("y", "w")
	if got := a.Union(b); len(got) != 4 {
		t.Errorf("union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewNameSet("x", "z")) {
		t.Errorf("minus = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewNameSet("y")) {
		t.Errorf("intersect = %v", got)
	}
	if !NewNameSet("x").SubsetOf(a) || b.SubsetOf(a) {
		t.Error("subset wrong")
	}
	if a.String() != "{x, y, z}" {
		t.Errorf("String = %q", a.String())
	}
	if got := a.FilterSorted([]string{"z", "w", "x"}); len(got) != 2 || got[0] != "z" {
		t.Errorf("FilterSorted = %v", got)
	}
	c := a.Clone()
	c.Add("q")
	if a.Has("q") {
		t.Error("Clone aliases the original")
	}
}

// Property: set algebra identities — (A∪B)\B ⊆ A and A∩B ⊆ A ⊆ A∪B.
func TestQuickNameSetAlgebra(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := make(NameSet), make(NameSet)
		for _, n := range names {
			if rng.Intn(2) == 0 {
				a.Add(n)
			}
			if rng.Intn(2) == 0 {
				b.Add(n)
			}
		}
		u := a.Union(b)
		return u.Minus(b).SubsetOf(a) &&
			a.Intersect(b).SubsetOf(a) &&
			a.SubsetOf(u) &&
			a.Minus(a).Equal(NewNameSet())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUniverseAndDecodeLargeSchema(t *testing.T) {
	s := MustSchema(Attribute{"x", 5}, Attribute{"y", 3})
	u := Universe(s)
	if u.Len() != 15 {
		t.Fatalf("universe = %d, want 15", u.Len())
	}
	for code := uint64(0); code < 15; code++ {
		if got := Encode(s, Decode(s, code)); got != code {
			t.Fatalf("Encode(Decode(%d)) = %d", code, got)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustSchema(Attribute{"a1", 2}, Attribute{"id", 100}, Attribute{"v", 5})
	r := MustFromRows(s, [][]Value{
		{0, 42, 3}, {1, 7, 0}, {0, 99, 4},
	})
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(s, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Fatalf("round trip changed relation:\n%v\nvs\n%v", back, r)
	}
}

func TestReadCSVColumnReordering(t *testing.T) {
	s := MustSchema(Bools("a", "b")...)
	in := "b,a\n1,0\n0,1\n"
	r, err := ReadCSV(s, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(Tuple{0, 1}) || !r.Contains(Tuple{1, 0}) {
		t.Fatalf("reordered columns misread: %v", r)
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := MustSchema(Bools("a", "b")...)
	cases := map[string]string{
		"missing column":   "a\n0\n",
		"unknown column":   "a,zz\n0,0\n",
		"duplicate column": "a,a\n0,0\n",
		"non-integer":      "a,b\nx,0\n",
		"out of domain":    "a,b\n0,5\n",
		"ragged row":       "a,b\n0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(s, strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// Property: CSV round trip is the identity on random relations.
func TestQuickCSVRoundTrip(t *testing.T) {
	s := MustSchema(Attribute{"x", 4}, Attribute{"y", 3}, Attribute{"z", 2})
	f := func(seed int64) bool {
		r := randomRelation(s, seed, 12)
		var buf strings.Builder
		if err := r.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(s, strings.NewReader(buf.String()))
		return err == nil && back.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
