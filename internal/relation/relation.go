// Package relation implements finite relations over named attributes with
// small finite domains. It is the storage substrate for the module-privacy
// library: module functionalities, workflow provenance relations and their
// views are all values of type Relation.
//
// The representation follows the paper's model (Davidson et al., PODS 2011,
// section 2): every attribute a has a finite domain ∆a = {0, 1, ..., |∆a|-1},
// a tuple assigns one domain value per attribute, and a relation is a set of
// tuples over a fixed schema. Functional dependencies I → O are first-class
// so that module relations (which must satisfy I → O) can be validated.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a single attribute value. Domains are dense integer ranges
// starting at zero, so a Value v over attribute a satisfies 0 <= v < |∆a|.
type Value = int

// Attribute describes one column: a globally unique name and the size of its
// finite domain. In the paper every data item in a workflow is an attribute;
// boolean data has Domain == 2.
type Attribute struct {
	// Name identifies the attribute. Within a workflow, names are shared
	// between the producing module's output and consuming modules' inputs.
	Name string
	// Domain is |∆a|, the number of distinct values the attribute takes.
	// It must be at least 1.
	Domain int
}

// Bool returns a boolean attribute (domain size 2) with the given name.
func Bool(name string) Attribute { return Attribute{Name: name, Domain: 2} }

// Bools returns boolean attributes for each given name, in order.
func Bools(names ...string) []Attribute {
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		attrs[i] = Bool(n)
	}
	return attrs
}

// Schema is an ordered list of distinct attributes. The order fixes the
// column layout of tuples in a Relation.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. It returns an error
// if a name repeats or a domain size is non-positive.
func NewSchema(attrs []Attribute) (*Schema, error) {
	s := &Schema{
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if a.Domain < 1 {
			return nil, fmt.Errorf("relation: attribute %q has domain %d; want >= 1", a.Name, a.Domain)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in tests and examples.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Names returns the attribute names in column order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// IndexOf returns the column index of the named attribute, or -1 if the
// schema does not contain it.
func (s *Schema) IndexOf(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { return s.IndexOf(name) >= 0 }

// Columns maps attribute names to column indices. It returns an error if any
// name is missing.
func (s *Schema) Columns(names []string) ([]int, error) {
	cols := make([]int, len(names))
	for i, n := range names {
		c := s.IndexOf(n)
		if c < 0 {
			return nil, fmt.Errorf("relation: schema has no attribute %q", n)
		}
		cols[i] = c
	}
	return cols, nil
}

// Equal reports whether two schemas have the same attributes in the same
// order.
func (s *Schema) Equal(t *Schema) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema containing the named attributes, in the given
// order.
func (s *Schema) Project(names []string) (*Schema, error) {
	cols, err := s.Columns(names)
	if err != nil {
		return nil, err
	}
	attrs := make([]Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = s.attrs[c]
	}
	return NewSchema(attrs)
}

// DomainProduct returns the product of the domain sizes of the named
// attributes, i.e. the number of distinct tuples over them. The second
// result is false if the product overflows uint64 (treated as "huge").
func (s *Schema) DomainProduct(names []string) (uint64, bool) {
	prod := uint64(1)
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return 0, false
		}
		d := uint64(s.attrs[i].Domain)
		if d != 0 && prod > ^uint64(0)/d {
			return 0, false
		}
		prod *= d
	}
	return prod, true
}

// String returns a compact rendering such as "(a1:2, a2:2, a3:2)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", a.Name, a.Domain)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is a row: one Value per schema column.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Relation is a set of tuples over a schema. The zero Relation is not
// usable; construct with New.
//
// Relations deduplicate on insert, so they have set (not bag) semantics,
// matching the paper's model where a provenance relation is the set of
// executions.
type Relation struct {
	schema *Schema
	rows   []Tuple
	seen   map[string]struct{}
}

// New returns an empty relation over the schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema, seen: make(map[string]struct{})}
}

// FromRows builds a relation from literal rows, validating arity and domain
// bounds. Duplicate rows are silently merged.
func FromRows(schema *Schema, rows [][]Value) (*Relation, error) {
	r := New(schema)
	for i, row := range rows {
		if err := r.Insert(row); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return r, nil
}

// MustFromRows is like FromRows but panics on error.
func MustFromRows(schema *Schema, rows [][]Value) *Relation {
	r, err := FromRows(schema, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int { return len(r.rows) }

// Row returns the i-th tuple. The returned slice must not be modified.
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Rows returns the underlying tuples. The result must not be modified.
func (r *Relation) Rows() []Tuple { return r.rows }

// key encodes a tuple restricted to the given columns as a map key.
func key(row Tuple, cols []int) string {
	// Values are small; a byte-oriented encoding with separators is
	// unambiguous and fast enough for the instance sizes in this library.
	var b strings.Builder
	b.Grow(len(cols) * 3)
	for _, c := range cols {
		v := row[c]
		for v >= 250 {
			b.WriteByte(250)
			v -= 250
		}
		b.WriteByte(byte(v))
		b.WriteByte(255)
	}
	return b.String()
}

func allCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// Insert adds a tuple. It validates arity and domain bounds and ignores
// exact duplicates. The tuple is copied.
func (r *Relation) Insert(row Tuple) error {
	if len(row) != r.schema.Len() {
		return fmt.Errorf("relation: tuple arity %d does not match schema arity %d", len(row), r.schema.Len())
	}
	for i, v := range row {
		if v < 0 || v >= r.schema.Attr(i).Domain {
			return fmt.Errorf("relation: value %d out of domain [0,%d) for attribute %q",
				v, r.schema.Attr(i).Domain, r.schema.Attr(i).Name)
		}
	}
	k := key(row, allCols(len(row)))
	if _, dup := r.seen[k]; dup {
		return nil
	}
	r.seen[k] = struct{}{}
	r.rows = append(r.rows, row.Clone())
	return nil
}

// Contains reports whether the relation holds the exact tuple.
func (r *Relation) Contains(row Tuple) bool {
	if len(row) != r.schema.Len() {
		return false
	}
	_, ok := r.seen[key(row, allCols(len(row)))]
	return ok
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := New(r.schema)
	for _, row := range r.rows {
		// Rows already validated; Insert cannot fail.
		_ = c.Insert(row)
	}
	return c
}

// Project returns π_names(r): the relation restricted to the named columns,
// with duplicates removed. Column order follows names.
func (r *Relation) Project(names []string) (*Relation, error) {
	cols, err := r.schema.Columns(names)
	if err != nil {
		return nil, err
	}
	sub, err := r.schema.Project(names)
	if err != nil {
		return nil, err
	}
	out := New(sub)
	buf := make(Tuple, len(cols))
	for _, row := range r.rows {
		for i, c := range cols {
			buf[i] = row[c]
		}
		if err := out.Insert(buf); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MustProject is like Project but panics on error.
func (r *Relation) MustProject(names ...string) *Relation {
	out, err := r.Project(names)
	if err != nil {
		panic(err)
	}
	return out
}

// ProjectTuple projects a single tuple of this relation's schema onto the
// named attributes.
func (r *Relation) ProjectTuple(row Tuple, names []string) (Tuple, error) {
	cols, err := r.schema.Columns(names)
	if err != nil {
		return nil, err
	}
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = row[c]
	}
	return out, nil
}

// Select returns the tuples satisfying pred, over the same schema.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.schema)
	for _, row := range r.rows {
		if pred(row) {
			_ = out.Insert(row)
		}
	}
	return out
}

// Equal reports set equality of two relations. Schemas must be equal
// (same attributes, same order).
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || r.Len() != o.Len() {
		return false
	}
	for _, row := range o.rows {
		if !r.Contains(row) {
			return false
		}
	}
	return true
}

// SatisfiesFD reports whether the functional dependency lhs → rhs holds,
// i.e. no two tuples agree on lhs but differ on rhs.
func (r *Relation) SatisfiesFD(lhs, rhs []string) (bool, error) {
	lcols, err := r.schema.Columns(lhs)
	if err != nil {
		return false, err
	}
	rcols, err := r.schema.Columns(rhs)
	if err != nil {
		return false, err
	}
	seen := make(map[string]string, len(r.rows))
	for _, row := range r.rows {
		lk := key(row, lcols)
		rk := key(row, rcols)
		if prev, ok := seen[lk]; ok {
			if prev != rk {
				return false, nil
			}
			continue
		}
		seen[lk] = rk
	}
	return true, nil
}

// GroupBy partitions the relation's rows by the named attributes and returns
// the groups in first-seen order. Each group shares the grouped values.
func (r *Relation) GroupBy(names []string) ([][]Tuple, error) {
	cols, err := r.schema.Columns(names)
	if err != nil {
		return nil, err
	}
	order := make([]string, 0, 8)
	groups := make(map[string][]Tuple)
	for _, row := range r.rows {
		k := key(row, cols)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	out := make([][]Tuple, len(order))
	for i, k := range order {
		out[i] = groups[k]
	}
	return out, nil
}

// CountDistinct returns the number of distinct projections of the rows onto
// the named attributes. An empty name list yields 1 when the relation is
// non-empty and 0 otherwise.
func (r *Relation) CountDistinct(names []string) (int, error) {
	cols, err := r.schema.Columns(names)
	if err != nil {
		return 0, err
	}
	if len(cols) == 0 {
		if r.Len() == 0 {
			return 0, nil
		}
		return 1, nil
	}
	seen := make(map[string]struct{}, len(r.rows))
	for _, row := range r.rows {
		seen[key(row, cols)] = struct{}{}
	}
	return len(seen), nil
}

// Join computes the natural join r ⋈ o on all attributes with shared names.
// Shared attributes must have equal domain sizes. The result schema is r's
// attributes followed by o's non-shared attributes.
func (r *Relation) Join(o *Relation) (*Relation, error) {
	shared := make([]string, 0, 4)
	extra := make([]Attribute, 0, o.schema.Len())
	for i := 0; i < o.schema.Len(); i++ {
		a := o.schema.Attr(i)
		if j := r.schema.IndexOf(a.Name); j >= 0 {
			if r.schema.Attr(j).Domain != a.Domain {
				return nil, fmt.Errorf("relation: join attribute %q has domain %d vs %d",
					a.Name, r.schema.Attr(j).Domain, a.Domain)
			}
			shared = append(shared, a.Name)
		} else {
			extra = append(extra, a)
		}
	}
	outSchema, err := NewSchema(append(r.schema.Attrs(), extra...))
	if err != nil {
		return nil, err
	}
	rShared, _ := r.schema.Columns(shared)
	oShared, _ := o.schema.Columns(shared)
	extraCols := make([]int, len(extra))
	for i, a := range extra {
		extraCols[i] = o.schema.IndexOf(a.Name)
	}

	// Hash join on the shared attributes.
	buckets := make(map[string][]Tuple, o.Len())
	for _, row := range o.rows {
		k := key(row, oShared)
		buckets[k] = append(buckets[k], row)
	}
	out := New(outSchema)
	buf := make(Tuple, outSchema.Len())
	for _, left := range r.rows {
		for _, right := range buckets[key(left, rShared)] {
			copy(buf, left)
			for i, c := range extraCols {
				buf[r.schema.Len()+i] = right[c]
			}
			if err := out.Insert(buf); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SortedRows returns the tuples in lexicographic order. The relation itself
// is unmodified; row slices are shared.
func (r *Relation) SortedRows() []Tuple {
	rows := append([]Tuple(nil), r.rows...)
	sort.Slice(rows, func(i, j int) bool { return lessTuple(rows[i], rows[j]) })
	return rows
}

func lessTuple(a, b Tuple) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// String renders the relation as an aligned table, rows sorted, suitable for
// golden tests and example output.
func (r *Relation) String() string {
	var b strings.Builder
	names := r.schema.Names()
	b.WriteString(strings.Join(names, " "))
	b.WriteByte('\n')
	for _, row := range r.SortedRows() {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(' ')
			}
			pad := len(names[i]) - 1
			fmt.Fprintf(&b, "%*d", -pad-1, v)
		}
		// Trim trailing spaces introduced by padding.
		for b.Len() > 0 && b.String()[b.Len()-1] == ' ' {
			s := b.String()[:b.Len()-1]
			b.Reset()
			b.WriteString(s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
