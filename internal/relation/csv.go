package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the relation: a header row of attribute names
// followed by one record per tuple (sorted, for determinism). Domains are
// not encoded; pair the file with its schema when reading back.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.schema.Names()); err != nil {
		return fmt.Errorf("relation: writing header: %w", err)
	}
	rec := make([]string, r.schema.Len())
	for _, row := range r.SortedRows() {
		for i, v := range row {
			rec[i] = strconv.Itoa(v)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: writing row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation over the given schema from CSV as produced by
// WriteCSV. The header must list exactly the schema's attributes; columns
// may appear in any order. Values are validated against domains.
func ReadCSV(schema *Schema, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading header: %w", err)
	}
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("relation: header has %d columns, schema has %d", len(header), schema.Len())
	}
	// Map file columns to schema columns.
	colFor := make([]int, len(header))
	seen := make(map[string]bool, len(header))
	for i, name := range header {
		c := schema.IndexOf(name)
		if c < 0 {
			return nil, fmt.Errorf("relation: header column %q not in schema", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("relation: duplicate header column %q", name)
		}
		seen[name] = true
		colFor[i] = c
	}
	out := New(schema)
	row := make(Tuple, schema.Len())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", line, err)
		}
		for i, field := range rec {
			v, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("relation: line %d column %q: %w", line, header[i], err)
			}
			row[colFor[i]] = v
		}
		if err := out.Insert(row); err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", line, err)
		}
	}
}
