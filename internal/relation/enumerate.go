package relation

import "fmt"

// EachTuple calls fn for every tuple in the cartesian product of the
// schema's attribute domains, in mixed-radix order (last attribute varies
// fastest). The tuple passed to fn is reused between calls; fn must copy it
// if it retains it. If fn returns false, enumeration stops early.
//
// The total number of tuples is the product of the domain sizes; callers are
// responsible for keeping that small (the paper's modules have <= ~10
// attributes, section 3.2 remark).
func EachTuple(s *Schema, fn func(Tuple) bool) {
	n := s.Len()
	t := make(Tuple, n)
	for {
		if !fn(t) {
			return
		}
		// Increment as a mixed-radix counter.
		i := n - 1
		for ; i >= 0; i-- {
			t[i]++
			if t[i] < s.Attr(i).Domain {
				break
			}
			t[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// AllTuples materializes the full cartesian product of the schema's domains.
func AllTuples(s *Schema) []Tuple {
	size, ok := s.DomainProduct(s.Names())
	if !ok || size > 1<<24 {
		panic(fmt.Sprintf("relation: domain product of %v too large to materialize", s))
	}
	out := make([]Tuple, 0, size)
	EachTuple(s, func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Encode packs a tuple into a single mixed-radix integer, the inverse of
// Decode. It panics if the schema's domain product exceeds uint64.
func Encode(s *Schema, t Tuple) uint64 {
	var code uint64
	for i := 0; i < s.Len(); i++ {
		code = code*uint64(s.Attr(i).Domain) + uint64(t[i])
	}
	return code
}

// Decode unpacks a mixed-radix integer produced by Encode into a tuple.
func Decode(s *Schema, code uint64) Tuple {
	n := s.Len()
	t := make(Tuple, n)
	for i := n - 1; i >= 0; i-- {
		d := uint64(s.Attr(i).Domain)
		t[i] = Value(code % d)
		code /= d
	}
	return t
}

// Universe returns the full relation over the schema: one row per tuple in
// the cartesian product of the domains.
func Universe(s *Schema) *Relation {
	r := New(s)
	EachTuple(s, func(t Tuple) bool {
		_ = r.Insert(t)
		return true
	})
	return r
}
