package relation

import "fmt"

// EachTuple calls fn for every tuple in the cartesian product of the
// schema's attribute domains, in mixed-radix order (last attribute varies
// fastest). The tuple passed to fn is reused between calls; fn must copy it
// if it retains it. If fn returns false, enumeration stops early.
//
// The total number of tuples is the product of the domain sizes; callers are
// responsible for keeping that small (the paper's modules have <= ~10
// attributes, section 3.2 remark).
func EachTuple(s *Schema, fn func(Tuple) bool) {
	n := s.Len()
	t := make(Tuple, n)
	for {
		if !fn(t) {
			return
		}
		// Increment as a mixed-radix counter.
		i := n - 1
		for ; i >= 0; i-- {
			t[i]++
			if t[i] < s.Attr(i).Domain {
				break
			}
			t[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// AllTuples materializes the full cartesian product of the schema's domains.
func AllTuples(s *Schema) []Tuple {
	size, ok := s.DomainProduct(s.Names())
	if !ok || size > 1<<24 {
		panic(fmt.Sprintf("relation: domain product of %v too large to materialize", s))
	}
	out := make([]Tuple, 0, size)
	EachTuple(s, func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Encode packs a tuple into a single mixed-radix integer, the inverse of
// Decode. It panics if the schema's domain product exceeds uint64.
func Encode(s *Schema, t Tuple) uint64 {
	var code uint64
	for i := 0; i < s.Len(); i++ {
		code = code*uint64(s.Attr(i).Domain) + uint64(t[i])
	}
	return code
}

// EncodeCols packs the values of t at the given schema columns into a
// mixed-radix integer: the radix of position j is the domain of column
// cols[j], and earlier columns are more significant (matching Encode, which
// is EncodeCols over all columns in order). Codes produced with the same
// column list are equal iff the projections are equal, which makes them
// cheap dedup and grouping keys; the compiled privacy oracle is built on
// them. The caller must ensure the domain product of cols fits in uint64.
func EncodeCols(s *Schema, t Tuple, cols []int) uint64 {
	var code uint64
	for _, c := range cols {
		code = code*uint64(s.attrs[c].Domain) + uint64(t[c])
	}
	return code
}

// CodeProjection projects full-schema codes (as produced by Encode) onto a
// fixed column subset without materializing tuples: Project(Encode(s, t)) ==
// EncodeCols(s, t, cols). Build once, apply to many codes — each application
// is one multiply-add chain over the selected columns.
type CodeProjection struct {
	strides []uint64 // suffix domain product after each selected column
	doms    []uint64 // domain of each selected column
}

// NewCodeProjection prepares the projection of s-codes onto cols. It returns
// an error if any column index is out of range or the schema's full domain
// product overflows uint64 (codes would not be well defined).
func NewCodeProjection(s *Schema, cols []int) (*CodeProjection, error) {
	if _, ok := s.DomainProduct(s.Names()); !ok {
		return nil, fmt.Errorf("relation: domain product of %v overflows uint64", s)
	}
	n := s.Len()
	suffix := make([]uint64, n+1)
	suffix[n] = 1
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] * uint64(s.attrs[i].Domain)
	}
	p := &CodeProjection{
		strides: make([]uint64, len(cols)),
		doms:    make([]uint64, len(cols)),
	}
	for j, c := range cols {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("relation: column %d out of range [0,%d)", c, n)
		}
		p.strides[j] = suffix[c+1]
		p.doms[j] = uint64(s.attrs[c].Domain)
	}
	return p, nil
}

// Project maps a full-schema code to the code of its projection.
func (p *CodeProjection) Project(code uint64) uint64 {
	var out uint64
	for j, stride := range p.strides {
		out = out*p.doms[j] + (code/stride)%p.doms[j]
	}
	return out
}

// Decode unpacks a mixed-radix integer produced by Encode into a tuple.
func Decode(s *Schema, code uint64) Tuple {
	n := s.Len()
	t := make(Tuple, n)
	for i := n - 1; i >= 0; i-- {
		d := uint64(s.Attr(i).Domain)
		t[i] = Value(code % d)
		code /= d
	}
	return t
}

// Universe returns the full relation over the schema: one row per tuple in
// the cartesian product of the domains.
func Universe(s *Schema) *Relation {
	r := New(s)
	EachTuple(s, func(t Tuple) bool {
		_ = r.Insert(t)
		return true
	})
	return r
}
