package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSchemaValidation(t *testing.T) {
	tests := []struct {
		name    string
		attrs   []Attribute
		wantErr bool
	}{
		{"ok", Bools("a", "b", "c"), false},
		{"empty", nil, false},
		{"dup name", []Attribute{Bool("a"), Bool("a")}, true},
		{"zero domain", []Attribute{{Name: "a", Domain: 0}}, true},
		{"negative domain", []Attribute{{Name: "a", Domain: -3}}, true},
		{"empty name", []Attribute{{Name: "", Domain: 2}}, true},
		{"big domain ok", []Attribute{{Name: "id", Domain: 1000}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSchema(tc.attrs)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewSchema(%v) err = %v, wantErr %v", tc.attrs, err, tc.wantErr)
			}
		})
	}
}

func TestSchemaLookup(t *testing.T) {
	s := MustSchema(Bool("a1"), Attribute{Name: "id", Domain: 7}, Bool("a3"))
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := s.IndexOf("id"); got != 1 {
		t.Errorf("IndexOf(id) = %d, want 1", got)
	}
	if got := s.IndexOf("missing"); got != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", got)
	}
	if !s.Has("a3") || s.Has("a4") {
		t.Errorf("Has: a3=%v a4=%v, want true false", s.Has("a3"), s.Has("a4"))
	}
	cols, err := s.Columns([]string{"a3", "a1"})
	if err != nil || cols[0] != 2 || cols[1] != 0 {
		t.Errorf("Columns = %v, %v; want [2 0], nil", cols, err)
	}
	if _, err := s.Columns([]string{"nope"}); err == nil {
		t.Error("Columns(nope) succeeded, want error")
	}
}

func TestSchemaProjectAndEqual(t *testing.T) {
	s := MustSchema(Bools("a", "b", "c")...)
	p, err := s.Project([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Names(); got[0] != "c" || got[1] != "a" {
		t.Errorf("projected names = %v", got)
	}
	if !s.Equal(MustSchema(Bools("a", "b", "c")...)) {
		t.Error("Equal(self-copy) = false")
	}
	if s.Equal(p) {
		t.Error("Equal(projection) = true")
	}
}

func TestSchemaDomainProduct(t *testing.T) {
	s := MustSchema(Attribute{"x", 3}, Attribute{"y", 5}, Attribute{"z", 2})
	if got, ok := s.DomainProduct([]string{"x", "y"}); !ok || got != 15 {
		t.Errorf("DomainProduct(x,y) = %d,%v want 15,true", got, ok)
	}
	if got, ok := s.DomainProduct(nil); !ok || got != 1 {
		t.Errorf("DomainProduct() = %d,%v want 1,true", got, ok)
	}
	if _, ok := s.DomainProduct([]string{"missing"}); ok {
		t.Error("DomainProduct(missing) ok = true, want false")
	}
}

func TestInsertValidation(t *testing.T) {
	r := New(MustSchema(Bools("a", "b")...))
	if err := r.Insert(Tuple{0, 1}); err != nil {
		t.Fatalf("valid insert: %v", err)
	}
	if err := r.Insert(Tuple{0}); err == nil {
		t.Error("short tuple accepted")
	}
	if err := r.Insert(Tuple{0, 2}); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if err := r.Insert(Tuple{-1, 0}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestInsertDeduplicates(t *testing.T) {
	r := New(MustSchema(Bools("a", "b")...))
	for i := 0; i < 5; i++ {
		if err := r.Insert(Tuple{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate inserts, want 1", r.Len())
	}
	if !r.Contains(Tuple{1, 0}) || r.Contains(Tuple{0, 0}) {
		t.Error("Contains gives wrong membership")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := New(MustSchema(Bools("a")...))
	row := Tuple{0}
	_ = r.Insert(row)
	row[0] = 1
	if !r.Contains(Tuple{0}) {
		t.Error("relation row aliased caller's slice")
	}
}

// fig1WorkflowRelation is relation R from Figure 1(b) of the paper.
func fig1WorkflowRelation() *Relation {
	s := MustSchema(Bools("a1", "a2", "a3", "a4", "a5", "a6", "a7")...)
	return MustFromRows(s, [][]Value{
		{0, 0, 0, 1, 1, 1, 0},
		{0, 1, 1, 1, 0, 0, 1},
		{1, 0, 1, 1, 0, 0, 1},
		{1, 1, 1, 0, 1, 1, 1},
	})
}

// fig1ModuleRelation is R1, module m1's functionality, Figure 1(c).
func fig1ModuleRelation() *Relation {
	s := MustSchema(Bools("a1", "a2", "a3", "a4", "a5")...)
	return MustFromRows(s, [][]Value{
		{0, 0, 0, 1, 1},
		{0, 1, 1, 1, 0},
		{1, 0, 1, 1, 0},
		{1, 1, 1, 0, 1},
	})
}

func TestProjectFigure1(t *testing.T) {
	// π_{a1,a3,a5}(R1) must equal R_V in Figure 1(d).
	r1 := fig1ModuleRelation()
	rv, err := r1.Project([]string{"a1", "a3", "a5"})
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromRows(MustSchema(Bools("a1", "a3", "a5")...), [][]Value{
		{0, 0, 1},
		{0, 1, 0},
		{1, 1, 0},
		{1, 1, 1},
	})
	if !rv.Equal(want) {
		t.Fatalf("π_V(R1) =\n%v\nwant\n%v", rv, want)
	}
}

func TestProjectDeduplicates(t *testing.T) {
	r := fig1ModuleRelation()
	p := r.MustProject("a4")
	if p.Len() != 2 {
		t.Fatalf("distinct a4 values = %d, want 2", p.Len())
	}
}

func TestProjectErrors(t *testing.T) {
	r := fig1ModuleRelation()
	if _, err := r.Project([]string{"zz"}); err == nil {
		t.Error("Project(zz) succeeded")
	}
}

func TestProjectTuple(t *testing.T) {
	r := fig1ModuleRelation()
	got, err := r.ProjectTuple(Tuple{0, 1, 1, 1, 0}, []string{"a5", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Tuple{0, 0}) {
		t.Fatalf("ProjectTuple = %v, want [0 0]", got)
	}
}

func TestSatisfiesFDFigure1(t *testing.T) {
	r := fig1WorkflowRelation()
	for _, fd := range []struct {
		lhs, rhs []string
		want     bool
	}{
		{[]string{"a1", "a2"}, []string{"a3", "a4", "a5"}, true}, // m1
		{[]string{"a3", "a4"}, []string{"a6"}, true},             // m2
		{[]string{"a4", "a5"}, []string{"a7"}, true},             // m3
		{[]string{"a1"}, []string{"a3"}, false},                  // a1=0 maps to a3∈{0,1}
		{[]string{"a6"}, []string{"a7"}, false},
	} {
		got, err := r.SatisfiesFD(fd.lhs, fd.rhs)
		if err != nil {
			t.Fatal(err)
		}
		if got != fd.want {
			t.Errorf("FD %v -> %v = %v, want %v", fd.lhs, fd.rhs, got, fd.want)
		}
	}
}

func TestGroupBy(t *testing.T) {
	r := fig1WorkflowRelation()
	groups, err := r.GroupBy([]string{"a3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		for _, row := range g {
			if row[2] != g[0][2] {
				t.Error("group mixes a3 values")
			}
		}
	}
	if total != r.Len() {
		t.Errorf("group sizes sum to %d, want %d", total, r.Len())
	}
}

func TestCountDistinct(t *testing.T) {
	r := fig1WorkflowRelation()
	if n, _ := r.CountDistinct([]string{"a3", "a5"}); n != 3 {
		t.Errorf("distinct (a3,a5) = %d, want 3", n)
	}
	if n, _ := r.CountDistinct(nil); n != 1 {
		t.Errorf("distinct () on non-empty = %d, want 1", n)
	}
	empty := New(r.Schema())
	if n, _ := empty.CountDistinct(nil); n != 0 {
		t.Errorf("distinct () on empty = %d, want 0", n)
	}
}

func TestJoinReconstructsWorkflowRelation(t *testing.T) {
	// R = R1 ⋈ R2 ⋈ R3 restricted to executed inputs (paper section 4).
	r1 := fig1ModuleRelation()
	// R2: a3 a4 -> a6 = a3∧a4? From R: rows (a3,a4,a6): (0,1,1),(1,1,0),(1,0,1).
	r2 := MustFromRows(MustSchema(Bools("a3", "a4", "a6")...), [][]Value{
		{0, 1, 1}, {1, 1, 0}, {1, 0, 1},
	})
	r3 := MustFromRows(MustSchema(Bools("a4", "a5", "a7")...), [][]Value{
		{1, 1, 0}, {1, 0, 1}, {0, 1, 1},
	})
	j, err := r1.Join(r2)
	if err != nil {
		t.Fatal(err)
	}
	j, err = j.Join(r3)
	if err != nil {
		t.Fatal(err)
	}
	want := fig1WorkflowRelation()
	got, err := j.Project(want.Schema().Names())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("join =\n%v\nwant\n%v", got, want)
	}
}

func TestJoinDomainMismatch(t *testing.T) {
	a := New(MustSchema(Attribute{"x", 2}))
	b := New(MustSchema(Attribute{"x", 3}))
	if _, err := a.Join(b); err == nil {
		t.Error("join with mismatched domains succeeded")
	}
}

func TestJoinDisjointIsCrossProduct(t *testing.T) {
	a := MustFromRows(MustSchema(Bool("x")), [][]Value{{0}, {1}})
	b := MustFromRows(MustSchema(Bool("y")), [][]Value{{0}, {1}})
	j, err := a.Join(b)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("cross product size = %d, want 4", j.Len())
	}
}

func TestSelect(t *testing.T) {
	r := fig1WorkflowRelation()
	sel := r.Select(func(t Tuple) bool { return t[0] == 0 })
	if sel.Len() != 2 {
		t.Fatalf("Select a1=0 size = %d, want 2", sel.Len())
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := fig1WorkflowRelation()
	c := r.Clone()
	_ = c.Insert(Tuple{0, 0, 0, 0, 0, 0, 0})
	if r.Len() == c.Len() {
		t.Error("Clone shares storage with original")
	}
	if !r.Equal(fig1WorkflowRelation()) {
		t.Error("original mutated by clone insert")
	}
}

func TestEqual(t *testing.T) {
	a := fig1WorkflowRelation()
	b := fig1WorkflowRelation()
	if !a.Equal(b) {
		t.Error("identical relations not Equal")
	}
	_ = b.Insert(Tuple{1, 1, 1, 1, 1, 1, 1})
	if a.Equal(b) {
		t.Error("relations of different size Equal")
	}
}

func TestEachTupleOrderAndCount(t *testing.T) {
	s := MustSchema(Attribute{"x", 2}, Attribute{"y", 3})
	var got []Tuple
	EachTuple(s, func(t Tuple) bool {
		got = append(got, t.Clone())
		return true
	})
	if len(got) != 6 {
		t.Fatalf("enumerated %d tuples, want 6", len(got))
	}
	if !got[0].Equal(Tuple{0, 0}) || !got[1].Equal(Tuple{0, 1}) || !got[5].Equal(Tuple{1, 2}) {
		t.Errorf("enumeration order wrong: %v", got)
	}
}

func TestEachTupleEarlyStop(t *testing.T) {
	s := MustSchema(Bools("a", "b", "c")...)
	n := 0
	EachTuple(s, func(Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d tuples, want 3", n)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := MustSchema(Attribute{"x", 3}, Attribute{"y", 4}, Attribute{"z", 2})
	seen := make(map[uint64]bool)
	EachTuple(s, func(tp Tuple) bool {
		code := Encode(s, tp)
		if seen[code] {
			t.Fatalf("Encode collision at %v", tp)
		}
		seen[code] = true
		if got := Decode(s, code); !got.Equal(tp) {
			t.Fatalf("Decode(Encode(%v)) = %v", tp, got)
		}
		return true
	})
	if len(seen) != 24 {
		t.Fatalf("codes = %d, want 24", len(seen))
	}
}

func TestUniverse(t *testing.T) {
	s := MustSchema(Bools("a", "b")...)
	u := Universe(s)
	if u.Len() != 4 {
		t.Fatalf("universe size = %d, want 4", u.Len())
	}
}

func TestStringRendering(t *testing.T) {
	r := MustFromRows(MustSchema(Bools("a", "b")...), [][]Value{{1, 0}, {0, 1}})
	s := r.String()
	if !strings.HasPrefix(s, "a b\n") {
		t.Errorf("header wrong: %q", s)
	}
	if !strings.Contains(s, "0 1") || !strings.Contains(s, "1 0") {
		t.Errorf("rows missing: %q", s)
	}
}

// Property: projection onto all attributes is the identity.
func TestQuickProjectIdentity(t *testing.T) {
	s := MustSchema(Attribute{"x", 3}, Attribute{"y", 2}, Attribute{"z", 4})
	f := func(seed int64) bool {
		r := randomRelation(s, seed, 10)
		p, err := r.Project(s.Names())
		return err == nil && p.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: |π_A(R)| <= |R| and projecting twice equals projecting once.
func TestQuickProjectMonotoneIdempotent(t *testing.T) {
	s := MustSchema(Attribute{"x", 3}, Attribute{"y", 2}, Attribute{"z", 4})
	f := func(seed int64) bool {
		r := randomRelation(s, seed, 12)
		p, err := r.Project([]string{"x", "z"})
		if err != nil || p.Len() > r.Len() {
			return false
		}
		pp, err := p.Project([]string{"x", "z"})
		return err == nil && pp.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: R ⋈ R = R (join is idempotent on identical schemas).
func TestQuickJoinIdempotent(t *testing.T) {
	s := MustSchema(Attribute{"x", 3}, Attribute{"y", 2})
	f := func(seed int64) bool {
		r := randomRelation(s, seed, 6)
		j, err := r.Join(r)
		return err == nil && j.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: insert order does not affect set equality.
func TestQuickInsertOrderIrrelevant(t *testing.T) {
	s := MustSchema(Attribute{"x", 4}, Attribute{"y", 4})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]Tuple, 8)
		for i := range rows {
			rows[i] = Tuple{rng.Intn(4), rng.Intn(4)}
		}
		a := New(s)
		b := New(s)
		for _, row := range rows {
			_ = a.Insert(row)
		}
		for i := len(rows) - 1; i >= 0; i-- {
			_ = b.Insert(rows[i])
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomRelation(s *Schema, seed int64, n int) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := New(s)
	row := make(Tuple, s.Len())
	for i := 0; i < n; i++ {
		for j := 0; j < s.Len(); j++ {
			row[j] = rng.Intn(s.Attr(j).Domain)
		}
		_ = r.Insert(row)
	}
	return r
}
