package relation

import (
	"sort"
	"strings"
)

// NameSet is a set of attribute names. It is the currency of the privacy
// layers: visible sets V, hidden sets V̄, and per-module candidate hidden
// sets are all NameSets.
type NameSet map[string]struct{}

// NewNameSet builds a set from the given names.
func NewNameSet(names ...string) NameSet {
	s := make(NameSet, len(names))
	for _, n := range names {
		s[n] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s NameSet) Has(name string) bool {
	_, ok := s[name]
	return ok
}

// Add inserts a name and returns the set for chaining.
func (s NameSet) Add(name string) NameSet {
	s[name] = struct{}{}
	return s
}

// Clone returns a copy.
func (s NameSet) Clone() NameSet {
	c := make(NameSet, len(s))
	for n := range s {
		c[n] = struct{}{}
	}
	return c
}

// Union returns s ∪ t as a new set.
func (s NameSet) Union(t NameSet) NameSet {
	c := s.Clone()
	for n := range t {
		c[n] = struct{}{}
	}
	return c
}

// Minus returns s \ t as a new set.
func (s NameSet) Minus(t NameSet) NameSet {
	c := make(NameSet)
	for n := range s {
		if !t.Has(n) {
			c[n] = struct{}{}
		}
	}
	return c
}

// Intersect returns s ∩ t as a new set.
func (s NameSet) Intersect(t NameSet) NameSet {
	c := make(NameSet)
	for n := range s {
		if t.Has(n) {
			c[n] = struct{}{}
		}
	}
	return c
}

// SubsetOf reports whether every name in s is in t.
func (s NameSet) SubsetOf(t NameSet) bool {
	for n := range s {
		if !t.Has(n) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s NameSet) Equal(t NameSet) bool {
	return len(s) == len(t) && s.SubsetOf(t)
}

// Sorted returns the names in sorted order.
func (s NameSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders as "{a, b, c}".
func (s NameSet) String() string {
	return "{" + strings.Join(s.Sorted(), ", ") + "}"
}

// FilterSorted returns the members of names (preserving order) that are in
// the set.
func (s NameSet) FilterSorted(names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if s.Has(n) {
			out = append(out, n)
		}
	}
	return out
}
