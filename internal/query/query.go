// Package query implements the select-project-join query class the paper
// assumes users run over provenance relations ("the queries are select-
// project-join style queries over the provenance relation", Related Work).
//
// It serves two purposes in the library:
//
//  1. Users of a published view run queries against it; the engine
//     evaluates SPJ queries over relations and refuses queries that touch
//     hidden attributes.
//  2. Owners derive the attribute-cost assignment of the Secure-View
//     problem from an expected query workload: hiding an attribute costs
//     the total weight of the queries it breaks — a concrete instantiation
//     of "the utility lost to the user when the data value is hidden"
//     (section 1).
package query

import (
	"fmt"
	"strings"

	"secureview/internal/privacy"
	"secureview/internal/relation"
)

// Predicate is a selection condition.
type Predicate struct {
	// Attr is the attribute the predicate constrains.
	Attr string
	// EqualsAttr, when non-empty, requires Attr = EqualsAttr (an equi-
	// selection between two columns).
	EqualsAttr string
	// Value is the constant compared against when EqualsAttr is empty.
	Value relation.Value
}

// String renders the predicate.
func (p Predicate) String() string {
	if p.EqualsAttr != "" {
		return fmt.Sprintf("%s = %s", p.Attr, p.EqualsAttr)
	}
	return fmt.Sprintf("%s = %d", p.Attr, p.Value)
}

// Query is a select-project-join query: join the named base relations (for
// provenance views there is a single base, the view itself), apply the
// selection predicates conjunctively, and project onto Project.
type Query struct {
	// Name identifies the query in workloads.
	Name string
	// Select lists conjunctive predicates.
	Select []Predicate
	// Project lists output attributes; empty means all attributes.
	Project []string
}

// Attributes returns every attribute the query touches (selection and
// projection), sorted.
func (q Query) Attributes() []string {
	set := make(relation.NameSet)
	for _, p := range q.Select {
		set.Add(p.Attr)
		if p.EqualsAttr != "" {
			set.Add(p.EqualsAttr)
		}
	}
	for _, a := range q.Project {
		set.Add(a)
	}
	return set.Sorted()
}

// String renders the query roughly as SQL.
func (q Query) String() string {
	proj := "*"
	if len(q.Project) > 0 {
		proj = strings.Join(q.Project, ", ")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s", proj)
	if len(q.Select) > 0 {
		parts := make([]string, len(q.Select))
		for i, p := range q.Select {
			parts[i] = p.String()
		}
		fmt.Fprintf(&b, " WHERE %s", strings.Join(parts, " AND "))
	}
	return b.String()
}

// Validate checks the query against a schema.
func (q Query) Validate(s *relation.Schema) error {
	for _, p := range q.Select {
		if !s.Has(p.Attr) {
			return fmt.Errorf("query %s: unknown attribute %q", q.Name, p.Attr)
		}
		if p.EqualsAttr != "" {
			if !s.Has(p.EqualsAttr) {
				return fmt.Errorf("query %s: unknown attribute %q", q.Name, p.EqualsAttr)
			}
		} else {
			i := s.IndexOf(p.Attr)
			if p.Value < 0 || p.Value >= s.Attr(i).Domain {
				return fmt.Errorf("query %s: value %d out of domain of %q", q.Name, p.Value, p.Attr)
			}
		}
	}
	for _, a := range q.Project {
		if !s.Has(a) {
			return fmt.Errorf("query %s: unknown projection attribute %q", q.Name, a)
		}
	}
	return nil
}

// Answerable reports whether the query can be answered given only the
// visible attributes: every attribute it touches must be visible.
func (q Query) Answerable(visible relation.NameSet) bool {
	for _, a := range q.Attributes() {
		if !visible.Has(a) {
			return false
		}
	}
	return true
}

// Eval runs the query over a relation.
func (q Query) Eval(r *relation.Relation) (*relation.Relation, error) {
	if err := q.Validate(r.Schema()); err != nil {
		return nil, err
	}
	s := r.Schema()
	filtered := r.Select(func(t relation.Tuple) bool {
		for _, p := range q.Select {
			i := s.IndexOf(p.Attr)
			if p.EqualsAttr != "" {
				if t[i] != t[s.IndexOf(p.EqualsAttr)] {
					return false
				}
			} else if t[i] != p.Value {
				return false
			}
		}
		return true
	})
	if len(q.Project) == 0 {
		return filtered, nil
	}
	return filtered.Project(q.Project)
}

// Join evaluates the natural join of two relations and then the query over
// the result, covering the J in SPJ for callers holding multiple exported
// views or module relations.
func (q Query) Join(left, right *relation.Relation) (*relation.Relation, error) {
	joined, err := left.Join(right)
	if err != nil {
		return nil, err
	}
	return q.Eval(joined)
}

// WorkloadEntry pairs a query with its importance weight.
type WorkloadEntry struct {
	Query  Query
	Weight float64
}

// Workload is an expected set of user queries with weights.
type Workload []WorkloadEntry

// Validate checks every query against the schema and requires positive
// weights.
func (wl Workload) Validate(s *relation.Schema) error {
	for _, e := range wl {
		if e.Weight < 0 {
			return fmt.Errorf("query %s: negative weight %v", e.Query.Name, e.Weight)
		}
		if err := e.Query.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// Costs derives the Secure-View attribute costs from the workload: the
// cost of hiding attribute a is the total weight of queries touching a
// (those queries become unanswerable). Attributes touched by no query get
// cost epsilon so that ties still prefer hiding nothing.
func (wl Workload) Costs(s *relation.Schema, epsilon float64) privacy.Costs {
	costs := make(privacy.Costs, s.Len())
	for _, n := range s.Names() {
		costs[n] = epsilon
	}
	for _, e := range wl {
		for _, a := range e.Query.Attributes() {
			costs[a] += e.Weight
		}
	}
	return costs
}

// AnswerableWeight returns the total weight of workload queries that remain
// answerable under the visible set, and the total workload weight. The
// ratio is the retained utility of a view.
func (wl Workload) AnswerableWeight(visible relation.NameSet) (answerable, total float64) {
	for _, e := range wl {
		total += e.Weight
		if e.Query.Answerable(visible) {
			answerable += e.Weight
		}
	}
	return answerable, total
}
