package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"secureview/internal/relation"
	"secureview/internal/workflow"
)

func fig1R(t *testing.T) *relation.Relation {
	t.Helper()
	return workflow.Fig1().MustRelation()
}

func TestEvalSelectConstant(t *testing.T) {
	r := fig1R(t)
	q := Query{Name: "q", Select: []Predicate{{Attr: "a1", Value: 0}}}
	out, err := q.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
}

func TestEvalSelectAttrEquality(t *testing.T) {
	r := fig1R(t)
	// Rows where a1 = a2: inputs (0,0) and (1,1).
	q := Query{Name: "q", Select: []Predicate{{Attr: "a1", EqualsAttr: "a2"}}}
	out, err := q.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
}

func TestEvalProject(t *testing.T) {
	r := fig1R(t)
	q := Query{
		Name:    "q",
		Select:  []Predicate{{Attr: "a6", Value: 1}},
		Project: []string{"a1", "a2"},
	}
	out, err := q.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Schema().Names(); len(got) != 2 || got[0] != "a1" {
		t.Fatalf("schema = %v", got)
	}
	if out.Len() != 2 { // a6=1 on inputs (0,0) and (1,1)
		t.Fatalf("rows = %d, want 2", out.Len())
	}
}

func TestEvalConjunction(t *testing.T) {
	r := fig1R(t)
	q := Query{Name: "q", Select: []Predicate{
		{Attr: "a1", Value: 0},
		{Attr: "a6", Value: 0},
	}}
	out, err := q.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (input (0,1))", out.Len())
	}
}

func TestValidateErrors(t *testing.T) {
	r := fig1R(t)
	cases := []Query{
		{Name: "bad attr", Select: []Predicate{{Attr: "zz", Value: 0}}},
		{Name: "bad equal", Select: []Predicate{{Attr: "a1", EqualsAttr: "zz"}}},
		{Name: "bad value", Select: []Predicate{{Attr: "a1", Value: 7}}},
		{Name: "bad projection", Project: []string{"zz"}},
	}
	for _, q := range cases {
		if _, err := q.Eval(r); err == nil {
			t.Errorf("%s accepted", q.Name)
		}
	}
}

func TestJoinQuery(t *testing.T) {
	w := workflow.Fig1()
	r1 := w.Module("m1").Relation()
	r2 := w.Module("m2").Relation()
	q := Query{Name: "j", Select: []Predicate{{Attr: "a6", Value: 0}}, Project: []string{"a1", "a2", "a6"}}
	out, err := q.Join(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	// a6 = ¬(a3∧a4) = 0 requires a3=a4=1, i.e. m1 input... a3=a1∨a2=1 and
	// a4=¬(a1∧a2)=1 ⇒ exactly one of a1,a2 is 1: two rows.
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
}

func TestAnswerable(t *testing.T) {
	q := Query{Name: "q", Select: []Predicate{{Attr: "a1", Value: 0}}, Project: []string{"a3"}}
	if !q.Answerable(relation.NewNameSet("a1", "a3", "a5")) {
		t.Error("answerable query rejected")
	}
	if q.Answerable(relation.NewNameSet("a1", "a5")) {
		t.Error("query touching hidden a3 accepted")
	}
}

func TestAttributesAndString(t *testing.T) {
	q := Query{
		Name:    "q",
		Select:  []Predicate{{Attr: "a4", EqualsAttr: "a5"}, {Attr: "a1", Value: 1}},
		Project: []string{"a7"},
	}
	got := q.Attributes()
	want := "a1,a4,a5,a7"
	if strings.Join(got, ",") != want {
		t.Fatalf("attributes = %v, want %s", got, want)
	}
	s := q.String()
	if !strings.Contains(s, "SELECT a7") || !strings.Contains(s, "a4 = a5") || !strings.Contains(s, "a1 = 1") {
		t.Errorf("String = %q", s)
	}
	if (Query{}).String() != "SELECT *" {
		t.Errorf("empty query renders %q", (Query{}).String())
	}
}

func TestWorkloadCosts(t *testing.T) {
	s := workflow.Fig1().Schema()
	wl := Workload{
		{Query: Query{Name: "q1", Project: []string{"a1", "a6"}}, Weight: 10},
		{Query: Query{Name: "q2", Select: []Predicate{{Attr: "a6", Value: 1}}, Project: []string{"a7"}}, Weight: 5},
	}
	if err := wl.Validate(s); err != nil {
		t.Fatal(err)
	}
	costs := wl.Costs(s, 0.1)
	if costs["a6"] != 15.1 { // both queries touch a6
		t.Errorf("cost(a6) = %v, want 15.1", costs["a6"])
	}
	if costs["a1"] != 10.1 {
		t.Errorf("cost(a1) = %v, want 10.1", costs["a1"])
	}
	if costs["a3"] != 0.1 { // untouched
		t.Errorf("cost(a3) = %v, want 0.1", costs["a3"])
	}
}

func TestWorkloadValidate(t *testing.T) {
	s := workflow.Fig1().Schema()
	bad := Workload{{Query: Query{Name: "q", Project: []string{"zz"}}, Weight: 1}}
	if err := bad.Validate(s); err == nil {
		t.Error("bad workload accepted")
	}
	neg := Workload{{Query: Query{Name: "q", Project: []string{"a1"}}, Weight: -1}}
	if err := neg.Validate(s); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestAnswerableWeight(t *testing.T) {
	wl := Workload{
		{Query: Query{Name: "q1", Project: []string{"a1"}}, Weight: 3},
		{Query: Query{Name: "q2", Project: []string{"a4"}}, Weight: 7},
	}
	ans, total := wl.AnswerableWeight(relation.NewNameSet("a1"))
	if ans != 3 || total != 10 {
		t.Fatalf("answerable/total = %v/%v, want 3/10", ans, total)
	}
}

// Property: hiding exactly the attributes a query touches makes it
// unanswerable, and query results are always subsets of the input rows
// projected.
func TestQuickQuerySemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := fig1RelForQuick()
		s := r.Schema()
		attr := s.Names()[rng.Intn(s.Len())]
		q := Query{
			Name:   "q",
			Select: []Predicate{{Attr: attr, Value: rng.Intn(2)}},
		}
		out, err := q.Eval(r)
		if err != nil {
			return false
		}
		if out.Len() > r.Len() {
			return false
		}
		// Every result row came from the input.
		for _, row := range out.Rows() {
			if !r.Contains(row) {
				return false
			}
		}
		all := relation.NewNameSet(s.Names()...)
		return !q.Answerable(all.Minus(relation.NewNameSet(attr)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func fig1RelForQuick() *relation.Relation {
	return workflow.Fig1().MustRelation()
}
