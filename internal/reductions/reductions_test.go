package reductions

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/combopt"
	"secureview/internal/secureview"
)

// Theorem 5 reduction (B.4.2): the Secure-View optimum equals the set-cover
// optimum, and solutions translate back to covers.
func TestSetCoverCardinalityEquivalence(t *testing.T) {
	sc := combopt.SetCover{
		N: 6,
		Sets: [][]int{
			{0, 1, 2, 3},
			{0, 1, 4},
			{2, 3, 5},
			{4, 5},
		},
	}
	p := FromSetCoverCardinality(sc)
	if err := p.Validate(secureview.Cardinality); err != nil {
		t.Fatal(err)
	}
	sol, err := secureview.ExactCard(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	scOpt := sc.Exact()
	if got, want := p.Cost(sol), float64(len(scOpt)); got != want {
		t.Fatalf("Secure-View optimum %v != set-cover optimum %v", got, want)
	}
	cover := SetCoverFromSolution(sc, sol)
	if !sc.IsCover(cover) {
		t.Fatalf("extracted %v is not a cover", cover)
	}
}

// Property: the Theorem 5 equivalence holds on random set-cover instances,
// and the LP rounding produces feasible solutions within the proven bound.
func TestQuickSetCoverCardinality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := combopt.RandomSetCover(3+rng.Intn(5), 2+rng.Intn(4), 0.35, rng)
		p := FromSetCoverCardinality(sc)
		sol, err := secureview.ExactCard(p, 12)
		if err != nil {
			return false
		}
		if p.Cost(sol) != float64(len(sc.Exact())) {
			return false
		}
		rounded, lpVal, err := secureview.CardinalityLPRound(p,
			secureview.RoundingOptions{Trials: 3, Rng: rand.New(rand.NewSource(seed))})
		if err != nil || !p.Feasible(rounded, secureview.Cardinality) {
			return false
		}
		return lpVal <= p.Cost(sol)+1e-6 && p.Cost(rounded)+1e-6 >= lpVal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Theorem 6 reduction (B.5.2, Lemma 5): Secure-View optimum equals the
// label-cover optimum.
func TestLabelCoverSetEquivalence(t *testing.T) {
	lc := combopt.LabelCover{
		NU: 2, NW: 2, L: 2,
		Edges: []combopt.LCEdge{
			{U: 0, W: 0, Rel: [][2]int{{0, 0}, {1, 1}}},
			{U: 0, W: 1, Rel: [][2]int{{0, 1}}},
			{U: 1, W: 0, Rel: [][2]int{{1, 0}, {0, 1}}},
		},
	}
	if err := lc.Validate(); err != nil {
		t.Fatal(err)
	}
	p := FromLabelCoverSet(lc)
	if err := p.Validate(secureview.Set); err != nil {
		t.Fatal(err)
	}
	sol, err := secureview.ExactSet(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	lcOpt := lc.Exact()
	if got, want := p.Cost(sol), float64(lcOpt.Cost()); got != want {
		t.Fatalf("Secure-View optimum %v != label-cover optimum %v", got, want)
	}
	a := LabelCoverFromSolution(lc, sol)
	if !lc.Feasible(a) {
		t.Fatal("extracted assignment infeasible")
	}
	// ℓmax rounding stays within its bound on this adversarial family.
	rounded, lpVal, err := secureview.SetLPRound(p)
	if err != nil || !p.Feasible(rounded, secureview.Set) {
		t.Fatalf("rounding failed: %v", err)
	}
	if p.Cost(rounded) > float64(p.LMax(secureview.Set))*lpVal+1e-6 {
		t.Errorf("rounding cost %v above ℓmax×LP %v", p.Cost(rounded), float64(p.LMax(secureview.Set))*lpVal)
	}
}

// Property: label-cover equivalence on random instances.
func TestQuickLabelCoverSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lc := combopt.RandomLabelCover(1+rng.Intn(2), 1+rng.Intn(2), 2, 1+rng.Intn(2), 1+rng.Intn(2), rng)
		p := FromLabelCoverSet(lc)
		sol, err := secureview.ExactSet(p, 1<<22)
		if err != nil {
			return false
		}
		return p.Cost(sol) == float64(lc.Exact().Cost())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Theorem 7 reduction (B.6.2, Lemma 6): optimum equals |E| + K on cubic
// graphs, the instance has no data sharing, and greedy respects γ+1 = 2.
func TestVertexCoverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := combopt.RandomCubicGraph(4, rng) // K4: 6 edges, 16 useful attributes
	p := FromVertexCoverNoSharing(g)
	if err := p.Validate(secureview.Cardinality); err != nil {
		t.Fatal(err)
	}
	if p.DataSharing() != 1 {
		t.Fatalf("γ = %d, want 1", p.DataSharing())
	}
	sol, err := secureview.ExactCard(p, 24)
	if err != nil {
		t.Fatal(err)
	}
	k := len(g.ExactVertexCover())
	if got, want := p.Cost(sol), float64(len(g.Edges)+k); got != want {
		t.Fatalf("optimum = %v, want |E|+K = %v", got, want)
	}
	greedy := secureview.Greedy(p, secureview.Cardinality)
	if !p.Feasible(greedy, secureview.Cardinality) {
		t.Fatal("greedy infeasible")
	}
	if p.Cost(greedy) > 2*p.Cost(sol)+1e-6 {
		t.Errorf("greedy %v above (γ+1)×OPT = %v", p.Cost(greedy), 2*p.Cost(sol))
	}
}

func TestVertexCoverSolutionExtraction(t *testing.T) {
	g := combopt.Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}
	p := FromVertexCoverNoSharing(g)
	sol, err := secureview.ExactCard(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: hide per-edge one item + y_1→z (vertex 1 covers both edges):
	// cost 3 = |E| + 1.
	if p.Cost(sol) != 3 {
		t.Fatalf("path optimum = %v, want 3", p.Cost(sol))
	}
	cover := VertexCoverFromSolution(g, sol)
	if !g.IsVertexCover(cover) {
		t.Fatalf("extracted %v not a vertex cover", cover)
	}
}

// Theorem 9 reduction (C.2): with public modules, the optimum equals the
// set-cover optimum even though γ = 1, and the privatized modules form a
// cover.
func TestSetCoverGeneralEquivalence(t *testing.T) {
	sc := combopt.SetCover{
		N: 4,
		Sets: [][]int{
			{0, 1},
			{1, 2},
			{2, 3},
			{0, 3},
			{0, 1, 2, 3},
		},
	}
	p := FromSetCoverGeneral(sc)
	if p.DataSharing() != 1 {
		t.Fatalf("γ = %d, want 1", p.DataSharing())
	}
	sol, err := secureview.ExactSet(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Cost(sol), float64(len(sc.Exact())); got != want {
		t.Fatalf("optimum = %v, want %v", got, want)
	}
	cover := PrivatizedSetsFromSolution(sc, sol)
	if !sc.IsCover(cover) {
		t.Fatalf("privatized sets %v do not cover", cover)
	}
	// The greedy per-module choice ignores privatization sharing and can
	// be worse; it must still be feasible.
	greedy := secureview.Greedy(p, secureview.Set)
	if !p.Feasible(greedy, secureview.Set) {
		t.Fatal("greedy infeasible")
	}
	if p.Cost(greedy) < p.Cost(sol)-1e-6 {
		t.Fatal("greedy beat exact")
	}
}

// Theorem 10 reduction (C.4, Lemma 8): the general-workflow cardinality
// optimum equals the label-cover optimum, with all cost carried by
// privatization.
func TestLabelCoverGeneralEquivalence(t *testing.T) {
	lc := combopt.LabelCover{
		NU: 2, NW: 1, L: 2,
		Edges: []combopt.LCEdge{
			{U: 0, W: 0, Rel: [][2]int{{0, 1}, {1, 0}}},
			{U: 1, W: 0, Rel: [][2]int{{1, 1}, {0, 0}}},
		},
	}
	p := FromLabelCoverGeneral(lc)
	if err := p.Validate(secureview.Cardinality); err != nil {
		t.Fatal(err)
	}
	// All attributes are free; only privatization costs.
	for _, c := range p.Costs {
		if c != 0 {
			t.Fatalf("unexpected attribute cost %v", c)
		}
	}
	sol, err := secureview.ExactCard(p, 14)
	if err != nil {
		t.Fatal(err)
	}
	lcOpt := lc.Exact()
	if got, want := p.Cost(sol), float64(lcOpt.Cost()); got != want {
		t.Fatalf("optimum = %v, want label-cover optimum %v", got, want)
	}
	a := GeneralLabelAssignmentFromSolution(lc, sol)
	if !lc.Feasible(a) {
		t.Fatal("extracted assignment infeasible")
	}
}

// Example 5: the assembly gap between per-module greedy and the workflow
// optimum grows linearly with n.
func TestExample5Gap(t *testing.T) {
	for _, n := range []int{3, 6, 9} {
		p := Example5(n, 0.5)
		exact, err := secureview.ExactSet(p, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		greedy := secureview.Greedy(p, secureview.Set)
		if got := p.Cost(exact); got != 2.5 {
			t.Fatalf("n=%d: optimum = %v, want 2.5", n, got)
		}
		if got := p.Cost(greedy); got != float64(n+1) {
			t.Fatalf("n=%d: greedy = %v, want %d", n, got, n+1)
		}
		// Cardinality variant agrees.
		exactC, err := secureview.ExactCard(p, 16)
		if err == nil && p.Cost(exactC) != 2.5 {
			t.Fatalf("n=%d: cardinality optimum = %v, want 2.5", n, p.Cost(exactC))
		}
	}
}
