package reductions

// forward.go inverts the From* hardness constructions: it maps a
// secureview.Problem ONTO the combinatorial problems, so the classical
// combopt approximation algorithms can serve instances beyond exact-search
// reach. Where the From* direction preserves optima exactly (that is what
// makes the hardness proofs tick), the forward direction is
// approximation-preserving up to the instance's charge multiplicity μ —
// the price of linearizing attribute sharing — and every mapping ships a
// machine-checkable certificate:
//
//   - ToSetCover covers the private modules with weighted "option
//     realization" sets; a greedy cover pulls back to a feasible solution of
//     cost at most H(d)·μ times the set-cover LP lower bound (Chvátal's
//     dual-fitting analysis plus the μ-charging argument).
//   - ToLabelCover (all-private, set constraints) encodes each option as an
//     (input-part, output-part) label pair on a two-vertex label cover; the
//     weighted greedy assignment pulls back to a feasible solution of cost
//     at most μ times the per-module-minimum lower bound — the Theorem 7
//     charging argument in label-cover clothing.
//
// Both certificates are relative to an explicit lower bound on the
// Secure-View optimum, so the differential harness can assert
// achieved ≤ factor × bound on instances where no exact optimum is known.

import (
	"context"
	"fmt"
	"strings"

	"secureview/internal/combopt"
	"secureview/internal/lp"
	"secureview/internal/relation"
	"secureview/internal/secureview"
)

// SetCoverInstance is the forward reduction Secure-View → weighted set
// cover. Universe elements are the private modules; each set is one
// realization of one module's requirement option, weighted by the full cost
// of hiding it (attributes plus the privatization closure it forces), and
// covering every private module it satisfies.
type SetCoverInstance struct {
	// SC is the weighted set-cover instance.
	SC combopt.SetCover
	// Hide[s] is the hidden-attribute realization behind set s.
	Hide []relation.NameSet
	// Mult is the charge multiplicity μ: the maximum number of requirement
	// sides any attribute serves, or private modules any public module is
	// shared with — the factor by which linearizing sharing can overcount.
	// SC's optimum is at most μ times the Secure-View optimum.
	Mult int
	// Harmonic is H(d) for d the largest coverage size: the weighted greedy
	// cover costs at most Harmonic times the set-cover LP optimum.
	Harmonic float64
	// Variant and Problem echo the mapping's source.
	Variant secureview.Variant
	Problem *secureview.Problem
}

// MaxRealizations caps the per-module realization count for the
// cardinality variant. The certificate needs EVERY (α, β)-subset
// realization present (the charging argument picks the one the optimum
// used, and with privatization closures in the weights no cheaper
// surrogate is safe), so a module whose binomials exceed the cap cannot be
// mapped soundly; ToSetCover reports that as an error wrapping
// secureview.ErrNodeBudget. Workflow arities are small in practice — the
// generator's classes stay well under the cap at any module count.
const MaxRealizations = 4096

// ToSetCover maps the problem onto weighted set cover for the variant. For
// set constraints each option contributes its literal attribute pair; for
// cardinality constraints each option (α, β) contributes every realization
// (each α-subset of inputs joined with each β-subset of outputs), so the
// family contains whichever realization an optimal solution satisfies the
// module with — the fact the μ-charging lower bound stands on.
func ToSetCover(p *secureview.Problem, v secureview.Variant) (*SetCoverInstance, error) {
	if err := p.Validate(v); err != nil {
		return nil, err
	}
	var privates []secureview.ModuleSpec
	for _, m := range p.Modules {
		if !m.Public {
			privates = append(privates, m)
		}
	}
	inst := &SetCoverInstance{
		SC:       combopt.SetCover{N: len(privates), Weights: []float64{}},
		Harmonic: 1,
		Mult:     chargeMultiplicity(p),
		Variant:  v,
		Problem:  p,
	}
	maxCovered := 0
	for _, m := range privates {
		realizations, err := optionRealizations(m, v)
		if err != nil {
			return nil, err
		}
		seen := make(map[string]bool)
		for _, b := range realizations {
			key := strings.Join(b.Sorted(), "\x00")
			if seen[key] {
				continue
			}
			seen[key] = true
			var covers []int
			for e, other := range privates {
				if moduleSatisfied(other, b, v) {
					covers = append(covers, e)
				}
			}
			if len(covers) > maxCovered {
				maxCovered = len(covers)
			}
			inst.SC.Sets = append(inst.SC.Sets, covers)
			inst.SC.Weights = append(inst.SC.Weights, p.Cost(p.Complete(b)))
			inst.Hide = append(inst.Hide, b)
		}
	}
	for d := 1; d <= maxCovered; d++ {
		if d > 1 {
			inst.Harmonic += 1 / float64(d)
		}
	}
	return inst, nil
}

// Factor returns the certified approximation factor H(d)·μ: the pull-back
// of a greedy cover costs at most Factor() times any LowerBound.
func (inst *SetCoverInstance) Factor() float64 {
	return inst.Harmonic * float64(inst.Mult)
}

// PullBack turns a cover into a Secure-View solution: hide the union of the
// chosen realizations and apply the privatization closure. Feasibility is
// by construction (each covered module's satisfying realization is a subset
// of the union, and satisfaction is monotone in the hidden set); the cost
// is at most the cover's total weight (costs are subadditive under union).
func (inst *SetCoverInstance) PullBack(chosen []int) secureview.Solution {
	hidden := make(relation.NameSet)
	for _, s := range chosen {
		for a := range inst.Hide[s] {
			hidden.Add(a)
		}
	}
	return inst.Problem.Complete(hidden)
}

// LowerBoundCtx solves the set-cover LP relaxation and returns LP/μ, a
// certified lower bound on the Secure-View optimum: LP lower-bounds the
// set-cover optimum, which in turn is at most μ times the Secure-View
// optimum by the charging argument. The simplex observes ctx.
func (inst *SetCoverInstance) LowerBoundCtx(ctx context.Context) (float64, error) {
	prob := lp.NewProblem(len(inst.SC.Sets))
	covering := make([]map[int]float64, inst.SC.N)
	for s, elems := range inst.SC.Sets {
		prob.SetObjective(s, inst.SC.Weight(s))
		for _, e := range elems {
			if covering[e] == nil {
				covering[e] = make(map[int]float64)
			}
			covering[e][s] = 1
		}
	}
	for e, row := range covering {
		if row == nil {
			return 0, fmt.Errorf("reductions: private module %d has no covering set", e)
		}
		prob.MustAddConstraint(row, lp.GE, 1)
	}
	sol, err := prob.SolveCtx(ctx)
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("reductions: set-cover LP %v", sol.Status)
	}
	return sol.Objective / float64(inst.Mult), nil
}

// DualBound is the LP-free fallback lower bound: a greedy cover of weight w
// certifies w/(H(d)·μ) ≤ OPT by Chvátal's dual fitting (w/H(d) ≤ LP) plus
// the μ-charging argument. Tight by construction, so the harness inequality
// achieved ≤ Factor × DualBound always holds with room to spare.
func (inst *SetCoverInstance) DualBound(coverWeight float64) float64 {
	return coverWeight / inst.Factor()
}

// LabelCoverInstance is the forward reduction Secure-View → weighted label
// cover for all-private set-constraint instances: one left vertex (the
// "input side") and one right vertex (the "output side"), one edge per
// private module, and one admissible label pair per option — the label for
// its input part against the label for its output part. Labels are shared
// across modules exactly when option parts coincide, which is how attribute
// sharing survives the mapping.
type LabelCoverInstance struct {
	// LC is the weighted label-cover instance (NU = NW = 1).
	LC combopt.LabelCover
	// USets[l] / WSets[l] are the attribute sets behind each label on the
	// input / output side.
	USets, WSets []relation.NameSet
	// Mult is the charge multiplicity μ (attribute side of
	// chargeMultiplicity; the instance is all-private).
	Mult int
	// LowerBound is Σ_i min_j c(option j of module i) / μ — a certified
	// lower bound on the Secure-View optimum by the Theorem 7 charging
	// argument. The greedy assignment's pull-back costs at most
	// μ × LowerBound.
	LowerBound float64
	// Problem echoes the mapping's source.
	Problem *secureview.Problem
}

// ToLabelCover maps an all-private set-constraint problem onto weighted
// label cover. Public modules are rejected: label weights price attribute
// hiding only, so privatization-closure costs would break the certificate.
func ToLabelCover(p *secureview.Problem) (*LabelCoverInstance, error) {
	if err := p.Validate(secureview.Set); err != nil {
		return nil, err
	}
	for _, m := range p.Modules {
		if m.Public {
			return nil, fmt.Errorf("reductions: label-cover forward mapping requires an all-private instance (public module %q)", m.Name)
		}
	}
	inst := &LabelCoverInstance{
		LC:      combopt.LabelCover{NU: 1, NW: 1},
		Problem: p,
	}
	uIdx := make(map[string]int)
	wIdx := make(map[string]int)
	label := func(idx map[string]int, sets *[]relation.NameSet, attrs relation.NameSet) int {
		key := strings.Join(attrs.Sorted(), "\x00")
		if l, ok := idx[key]; ok {
			return l
		}
		l := len(*sets)
		idx[key] = l
		*sets = append(*sets, attrs)
		return l
	}
	sumMin := 0.0
	for _, m := range p.Modules {
		var rel [][2]int
		minOpt := -1.0
		for _, req := range m.SetList {
			in := relation.NewNameSet(req.In...)
			out := relation.NewNameSet(req.Out...)
			lu := label(uIdx, &inst.USets, in)
			lw := label(wIdx, &inst.WSets, out)
			rel = append(rel, [2]int{lu, lw})
			if c := p.Costs.Sum(in) + p.Costs.Sum(out); minOpt < 0 || c < minOpt {
				minOpt = c
			}
		}
		sumMin += minOpt
		inst.LC.Edges = append(inst.LC.Edges, combopt.LCEdge{U: 0, W: 0, Rel: rel})
	}
	inst.LC.L = len(inst.USets)
	if len(inst.WSets) > inst.LC.L {
		inst.LC.L = len(inst.WSets)
	}
	uw := make([]float64, inst.LC.L)
	ww := make([]float64, inst.LC.L)
	for l, s := range inst.USets {
		uw[l] = p.Costs.Sum(s)
	}
	for l, s := range inst.WSets {
		ww[l] = p.Costs.Sum(s)
	}
	inst.LC.Weights = [][]float64{uw, ww}
	inst.Mult = chargeMultiplicity(p)
	inst.LowerBound = sumMin / float64(inst.Mult)
	return inst, nil
}

// PullBack turns an assignment into a Secure-View solution: hide the union
// of the attribute sets behind every assigned label. Each covered edge has
// an admissible pair assigned, so the corresponding option's attributes are
// all hidden and the module is satisfied; the instance is all-private, so
// the closure is empty and the cost is at most the assignment's weight.
func (inst *LabelCoverInstance) PullBack(a combopt.Assignment) secureview.Solution {
	hidden := make(relation.NameSet)
	add := func(labels []bool, sets []relation.NameSet) {
		for l, on := range labels {
			if on && l < len(sets) {
				for attr := range sets[l] {
					hidden.Add(attr)
				}
			}
		}
	}
	if len(a) == 2 {
		add(a[0], inst.USets)
		add(a[1], inst.WSets)
	}
	return inst.Problem.Complete(hidden)
}

// chargeMultiplicity returns μ: the larger of the attribute multiplicity
// (how many requirement sides one attribute can serve, Theorem 7's
// constant) and, for general workflows, the number of private modules any
// public module shares an attribute with (how many options can each force
// the same privatization). An optimal solution decomposed into per-module
// options is counted at most μ times, so the linearized optimum is at most
// μ × OPT.
func chargeMultiplicity(p *secureview.Problem) int {
	mult := p.Multiplicity()
	for _, m := range p.Modules {
		if !m.Public {
			continue
		}
		attrs := relation.NewNameSet(m.Inputs...).Union(relation.NewNameSet(m.Outputs...))
		shared := 0
		for _, other := range p.Modules {
			if other.Public {
				continue
			}
			touches := false
			for _, a := range other.Inputs {
				if attrs.Has(a) {
					touches = true
					break
				}
			}
			if !touches {
				for _, a := range other.Outputs {
					if attrs.Has(a) {
						touches = true
						break
					}
				}
			}
			if touches {
				shared++
			}
		}
		if shared > mult {
			mult = shared
		}
	}
	if mult < 1 {
		mult = 1
	}
	return mult
}

// optionRealizations enumerates the hidden-attribute sets one module's
// options can resolve to: the literal attribute pairs for set options, and
// every (α-subset of inputs) ∪ (β-subset of outputs) for cardinality
// options, capped at MaxRealizations per module.
func optionRealizations(m secureview.ModuleSpec, v secureview.Variant) ([]relation.NameSet, error) {
	var out []relation.NameSet
	if v == secureview.Set {
		for _, req := range m.SetList {
			out = append(out, req.Attrs())
		}
		return out, nil
	}
	for _, req := range m.CardList {
		ins := subsetsOf(m.Inputs, req.Alpha)
		outs := subsetsOf(m.Outputs, req.Beta)
		if len(ins)*len(outs) > MaxRealizations-len(out) {
			return nil, fmt.Errorf("reductions: module %q has over %d realizations: %w",
				m.Name, MaxRealizations, secureview.ErrNodeBudget)
		}
		for _, in := range ins {
			for _, o := range outs {
				out = append(out, in.Union(o))
			}
		}
	}
	return out, nil
}

// subsetsOf enumerates the k-subsets of names as NameSets (just the empty
// set when k is 0; none when k exceeds the arity).
func subsetsOf(names []string, k int) []relation.NameSet {
	if k > len(names) {
		return nil
	}
	var out []relation.NameSet
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			s := make(relation.NameSet, k)
			for _, i := range idx {
				s.Add(names[i])
			}
			out = append(out, s)
			return
		}
		for i := start; i <= len(names)-(k-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

// moduleSatisfied mirrors the unexported satisfaction predicate of
// internal/secureview: does hiding exactly `hidden` satisfy one of the
// module's options in the variant?
func moduleSatisfied(m secureview.ModuleSpec, hidden relation.NameSet, v secureview.Variant) bool {
	switch v {
	case secureview.Cardinality:
		hi, ho := 0, 0
		for _, a := range m.Inputs {
			if hidden.Has(a) {
				hi++
			}
		}
		for _, a := range m.Outputs {
			if hidden.Has(a) {
				ho++
			}
		}
		for _, r := range m.CardList {
			if hi >= r.Alpha && ho >= r.Beta {
				return true
			}
		}
	case secureview.Set:
		for _, r := range m.SetList {
			if r.Attrs().SubsetOf(hidden) {
				return true
			}
		}
	}
	return false
}
