package reductions

// Round-trip tests for the forward reductions: To ∘ From must recover the
// source combinatorial optimum exactly (the From constructions preserve
// optima, and the forward mapping enumerates every realization, so nothing
// is lost in either direction), and on generated instances every
// certificate the forward mapping ships must hold against an independently
// computed exact optimum.

import (
	"context"
	"math/rand"
	"testing"

	"secureview/internal/combopt"
	"secureview/internal/gen"
	"secureview/internal/secureview"
)

func tol(x float64) float64 { return 1e-6 * (1 + x) }

// TestToFromSetCoverCardinality: source set cover → Theorem 5 instance →
// forward weighted set cover. All three optima (source cover size, the
// instance's exact optimum, the derived weighted cover's optimum) must
// coincide, and the derived cover must pull back to a feasible solution of
// the same cost.
func TestToFromSetCoverCardinality(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		sc := combopt.RandomSetCover(5+rng.Intn(3), 6+rng.Intn(4), 0.35, rng)
		srcOpt := len(sc.Exact())

		p := FromSetCoverCardinality(sc)
		exact, err := secureview.ExactCard(p, 16)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		instOpt := p.Cost(exact)

		inst, err := ToSetCover(p, secureview.Cardinality)
		if err != nil {
			t.Fatalf("trial %d: ToSetCover: %v", trial, err)
		}
		cover, err := inst.SC.ExactCtx(ctx, 1<<20)
		if err != nil {
			t.Fatalf("trial %d: derived exact: %v", trial, err)
		}
		derivedOpt := inst.SC.CostOf(cover)

		if d := instOpt - float64(srcOpt); d > tol(instOpt) || -d > tol(instOpt) {
			t.Errorf("trial %d: instance optimum %g != source cover size %d", trial, instOpt, srcOpt)
		}
		if d := derivedOpt - float64(srcOpt); d > tol(derivedOpt) || -d > tol(derivedOpt) {
			t.Errorf("trial %d: derived SC optimum %g != source cover size %d", trial, derivedOpt, srcOpt)
		}
		sol := inst.PullBack(cover)
		if !p.Feasible(sol, secureview.Cardinality) {
			t.Errorf("trial %d: pulled-back cover infeasible", trial)
		}
		if c := p.Cost(sol); c > derivedOpt+tol(c) {
			t.Errorf("trial %d: pull-back cost %g exceeds cover weight %g", trial, c, derivedOpt)
		}
	}
}

// TestToFromLabelCoverSet: source label cover → Theorem 6 instance →
// forward weighted label cover. The derived optimum is sandwiched between
// the instance optimum and μ times it, and the derived exact assignment
// pulls back feasibly at no more than its own weight.
func TestToFromLabelCoverSet(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		lc := combopt.RandomLabelCover(2, 2, 2, 2, 2, rng)
		p := FromLabelCoverSet(lc)
		exact, err := secureview.ExactSet(p, 1<<22)
		if err != nil {
			t.Fatalf("trial %d: exact: %v", trial, err)
		}
		opt := p.Cost(exact)

		inst, err := ToLabelCover(p)
		if err != nil {
			t.Fatalf("trial %d: ToLabelCover: %v", trial, err)
		}
		a, err := inst.LC.ExactCtx(ctx, 1<<20)
		if err != nil {
			t.Fatalf("trial %d: derived exact: %v", trial, err)
		}
		derivedOpt := inst.LC.CostOf(a)
		if derivedOpt < opt-tol(opt) {
			t.Errorf("trial %d: derived LC optimum %g below instance optimum %g", trial, derivedOpt, opt)
		}
		if mu := float64(inst.Mult); derivedOpt > mu*opt+tol(derivedOpt) {
			t.Errorf("trial %d: derived LC optimum %g exceeds μ=%g × optimum %g", trial, derivedOpt, mu, opt)
		}
		sol := inst.PullBack(a)
		if !p.Feasible(sol, secureview.Set) {
			t.Errorf("trial %d: pulled-back assignment infeasible", trial)
		}
		if c := p.Cost(sol); c > derivedOpt+tol(c) {
			t.Errorf("trial %d: pull-back cost %g exceeds assignment weight %g", trial, c, derivedOpt)
		}
		if inst.LowerBound > opt+tol(opt) {
			t.Errorf("trial %d: forward lower bound %g exceeds optimum %g", trial, inst.LowerBound, opt)
		}
	}
}

// TestToSetCoverCertificates: on every generated class (including the
// public-mix workflows, whose weights carry privatization closures) and
// both variants, the greedy cover must pull back feasibly within the
// certified factor of BOTH lower bounds, and each bound must sit below an
// independently computed exact optimum.
func TestToSetCoverCertificates(t *testing.T) {
	ctx := context.Background()
	for _, pc := range gen.ProblemClasses() {
		for seed := int64(0); seed < 3; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
				if p.Validate(v) != nil {
					continue
				}
				name := map[secureview.Variant]string{secureview.Set: "set", secureview.Cardinality: "card"}[v]
				var exact secureview.Solution
				var err error
				if v == secureview.Set {
					exact, err = secureview.ExactSet(p, 1<<22)
				} else {
					exact, err = secureview.ExactCard(p, 16)
				}
				if err != nil {
					t.Fatalf("%s/%d/%s: exact: %v", pc.Name, seed, name, err)
				}
				opt := p.Cost(exact)

				inst, err := ToSetCover(p, v)
				if err != nil {
					t.Fatalf("%s/%d/%s: ToSetCover: %v", pc.Name, seed, name, err)
				}
				cover, err := inst.SC.GreedyCtx(ctx)
				if err != nil {
					t.Fatalf("%s/%d/%s: greedy: %v", pc.Name, seed, name, err)
				}
				coverWeight := inst.SC.CostOf(cover)
				sol := inst.PullBack(cover)
				if !p.Feasible(sol, v) {
					t.Errorf("%s/%d/%s: pull-back infeasible", pc.Name, seed, name)
					continue
				}
				c := p.Cost(sol)
				if c < opt-tol(opt) {
					t.Errorf("%s/%d/%s: pull-back cost %g below optimum %g", pc.Name, seed, name, c, opt)
				}
				if c > coverWeight+tol(c) {
					t.Errorf("%s/%d/%s: pull-back cost %g exceeds cover weight %g", pc.Name, seed, name, c, coverWeight)
				}
				lb, err := inst.LowerBoundCtx(ctx)
				if err != nil {
					t.Fatalf("%s/%d/%s: LP bound: %v", pc.Name, seed, name, err)
				}
				for _, bound := range []float64{lb, inst.DualBound(coverWeight)} {
					if bound > opt+tol(opt) {
						t.Errorf("%s/%d/%s: lower bound %g exceeds optimum %g", pc.Name, seed, name, bound, opt)
					}
					if c > inst.Factor()*bound+tol(c) {
						t.Errorf("%s/%d/%s: cost %g breaks certificate %g × %g", pc.Name, seed, name, c, inst.Factor(), bound)
					}
				}
			}
		}
	}
}

// TestToLabelCoverCertificates mirrors TestToSetCoverCertificates for the
// all-private label-cover route on the set variant.
func TestToLabelCoverCertificates(t *testing.T) {
	ctx := context.Background()
	for _, pc := range gen.ProblemClasses() {
		if pc.Name == "public-mix" {
			continue
		}
		for seed := int64(0); seed < 3; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			exact, err := secureview.ExactSet(p, 1<<22)
			if err != nil {
				t.Fatalf("%s/%d: exact: %v", pc.Name, seed, err)
			}
			opt := p.Cost(exact)
			inst, err := ToLabelCover(p)
			if err != nil {
				t.Fatalf("%s/%d: ToLabelCover: %v", pc.Name, seed, err)
			}
			a, err := inst.LC.GreedyAssignmentCtx(ctx)
			if err != nil {
				t.Fatalf("%s/%d: greedy assignment: %v", pc.Name, seed, err)
			}
			sol := inst.PullBack(a)
			if !p.Feasible(sol, secureview.Set) {
				t.Errorf("%s/%d: pull-back infeasible", pc.Name, seed)
				continue
			}
			c := p.Cost(sol)
			if c < opt-tol(opt) {
				t.Errorf("%s/%d: pull-back cost %g below optimum %g", pc.Name, seed, c, opt)
			}
			if inst.LowerBound > opt+tol(opt) {
				t.Errorf("%s/%d: lower bound %g exceeds optimum %g", pc.Name, seed, inst.LowerBound, opt)
			}
			if c > float64(inst.Mult)*inst.LowerBound+tol(c) {
				t.Errorf("%s/%d: cost %g breaks certificate %d × %g", pc.Name, seed, c, inst.Mult, inst.LowerBound)
			}
		}
	}
}

// TestToLabelCoverRejectsPublicModules: the label-cover route prices
// attribute hiding only, so instances with privatization closures must be
// refused rather than mis-certified.
func TestToLabelCoverRejectsPublicModules(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := gen.Problem(gen.ProblemConfig{Modules: 6, PublicFrac: 0.5}, seed)
		hasPublic := false
		for _, m := range p.Modules {
			if m.Public {
				hasPublic = true
			}
		}
		if !hasPublic {
			continue
		}
		if _, err := ToLabelCover(p); err == nil {
			t.Fatal("ToLabelCover accepted a public-module instance")
		}
		return
	}
	t.Fatal("no public instance generated")
}
