// Package reductions implements the instance constructions used in the
// paper's hardness proofs, as generators producing Secure-View instances
// from combinatorial source problems:
//
//   - set cover → cardinality constraints, all-private (Theorem 5, B.4.2)
//   - label cover → set constraints, all-private (Theorem 6, B.5.2, Fig. 4)
//   - vertex cover in cubic graphs → no data sharing (Theorem 7, B.6.2, Fig. 5)
//   - set cover → general workflow, no sharing (Theorem 9, C.2)
//   - label cover → general workflow, cardinality (Theorem 10, C.4, Fig. 6)
//   - the Example 5 family separating standalone assembly from the
//     workflow optimum by Ω(n)
//
// Each lemma in the paper asserts an exact cost correspondence between the
// source optimum and the constructed instance's optimum; the experiments
// (and tests) verify those equalities by solving both sides, and the
// constructions double as adversarial workloads for the approximation
// algorithms.
package reductions

import (
	"fmt"

	"secureview/internal/combopt"
	"secureview/internal/privacy"
	"secureview/internal/secureview"
)

// FromSetCoverCardinality builds the Theorem 5 / B.4.2 instance: a module z
// emitting one data item a_i per set S_i (cost 1 each, shared among the
// element modules of S_i's members), and a module f_j per element u_j
// requiring any one of its incoming items hidden. z requires any one of its
// outgoing items hidden. The instance optimum equals the set-cover optimum.
func FromSetCoverCardinality(sc combopt.SetCover) *secureview.Problem {
	const expensive = 1e6
	p := &secureview.Problem{Costs: privacy.Costs{}}
	aName := func(i int) string { return fmt.Sprintf("a%d", i) }

	var zOutputs []string
	for i := range sc.Sets {
		a := aName(i)
		zOutputs = append(zOutputs, a)
		p.Costs[a] = 1
	}
	p.Costs["bs"] = expensive
	p.Modules = append(p.Modules, secureview.ModuleSpec{
		Name: "z", Inputs: []string{"bs"}, Outputs: zOutputs,
		CardList: []secureview.CardReq{{Alpha: 0, Beta: 1}},
	})
	members := make([][]int, sc.N)
	for i, s := range sc.Sets {
		for _, e := range s {
			members[e] = append(members[e], i)
		}
	}
	for j := 0; j < sc.N; j++ {
		var in []string
		for _, i := range members[j] {
			in = append(in, aName(i))
		}
		out := fmt.Sprintf("b%d", j)
		p.Costs[out] = expensive
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("f%d", j), Inputs: in, Outputs: []string{out},
			CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}},
		})
	}
	return p
}

// SetCoverFromSolution extracts a set cover from a solution of the
// FromSetCoverCardinality instance: the sets whose data item is hidden.
func SetCoverFromSolution(sc combopt.SetCover, sol secureview.Solution) []int {
	var cover []int
	for i := range sc.Sets {
		if sol.Hidden.Has(fmt.Sprintf("a%d", i)) {
			cover = append(cover, i)
		}
	}
	return cover
}

// FromLabelCoverSet builds the Theorem 6 / B.5.2 (Figure 4) instance: a
// module z emits one item b_{u,ℓ} per vertex–label pair (cost 1); each edge
// module x_uw lists, per admissible label pair (ℓ1,ℓ2) ∈ R_uw, the option
// of hiding {b_{u,ℓ1}, b_{w,ℓ2}}; z lists every singleton. The instance
// optimum equals the label-cover optimum (Lemma 5), and ℓmax equals the
// largest relation size.
func FromLabelCoverSet(lc combopt.LabelCover) *secureview.Problem {
	const expensive = 1e6
	p := &secureview.Problem{Costs: privacy.Costs{}}
	bName := func(v, l int) string { return fmt.Sprintf("b_v%d_l%d", v, l) } // v over U ∪ U'

	var zOutputs []string
	var zList []secureview.SetReq
	for v := 0; v < lc.NU+lc.NW; v++ {
		for l := 0; l < lc.L; l++ {
			b := bName(v, l)
			zOutputs = append(zOutputs, b)
			p.Costs[b] = 1
			zList = append(zList, secureview.SetReq{Out: []string{b}})
		}
	}
	p.Costs["bz"] = expensive
	p.Modules = append(p.Modules, secureview.ModuleSpec{
		Name: "z", Inputs: []string{"bz"}, Outputs: zOutputs, SetList: zList,
	})
	for ei, e := range lc.Edges {
		inSet := make(map[string]bool)
		var list []secureview.SetReq
		for _, pair := range e.Rel {
			b1 := bName(e.U, pair[0])
			b2 := bName(lc.NU+e.W, pair[1])
			inSet[b1] = true
			inSet[b2] = true
			if b1 == b2 {
				list = append(list, secureview.SetReq{In: []string{b1}})
			} else {
				list = append(list, secureview.SetReq{In: []string{b1, b2}})
			}
		}
		var in []string
		for b := range inSet {
			in = append(in, b)
		}
		out := fmt.Sprintf("b_e%d", ei)
		p.Costs[out] = expensive
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("x_e%d", ei), Inputs: in, Outputs: []string{out}, SetList: list,
		})
	}
	return p
}

// LabelCoverFromSolution extracts a label assignment from a solution of the
// FromLabelCoverSet instance: label ℓ is assigned to vertex v iff b_{v,ℓ}
// is hidden.
func LabelCoverFromSolution(lc combopt.LabelCover, sol secureview.Solution) combopt.Assignment {
	a := make(combopt.Assignment, lc.NU+lc.NW)
	for v := range a {
		a[v] = make([]bool, lc.L)
		for l := 0; l < lc.L; l++ {
			if sol.Hidden.Has(fmt.Sprintf("b_v%d_l%d", v, l)) {
				a[v][l] = true
			}
		}
	}
	return a
}

// FromVertexCoverNoSharing builds the Theorem 7 / B.6.2 (Figure 5)
// instance from a graph: per edge (u,v) a module x_uv requiring one of its
// two outgoing items (towards y_u, y_v) hidden; per vertex v a module y_v
// requiring either all its d_v incoming items or its single outgoing item
// (towards z) hidden; z requires one incoming item. Every item costs 1 and
// no item is shared (γ = 1). The instance optimum equals |E| + K where K is
// the minimum vertex cover size (Lemma 6).
func FromVertexCoverNoSharing(g combopt.Graph) *secureview.Problem {
	const expensive = 1e6
	p := &secureview.Problem{Costs: privacy.Costs{}}
	edgeAttr := func(ei, v int) string { return fmt.Sprintf("e%d_to_y%d", ei, v) }
	vertAttr := func(v int) string { return fmt.Sprintf("y%d_to_z", v) }

	vertIn := make([][]string, g.N)
	for ei, e := range g.Edges {
		a0 := edgeAttr(ei, e[0])
		a1 := edgeAttr(ei, e[1])
		p.Costs[a0] = 1
		p.Costs[a1] = 1
		vertIn[e[0]] = append(vertIn[e[0]], a0)
		vertIn[e[1]] = append(vertIn[e[1]], a1)
		src := fmt.Sprintf("src%d", ei)
		p.Costs[src] = expensive
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("x%d", ei), Inputs: []string{src}, Outputs: []string{a0, a1},
			CardList: []secureview.CardReq{{Alpha: 0, Beta: 1}},
		})
	}
	var zIn []string
	for v := 0; v < g.N; v++ {
		out := vertAttr(v)
		p.Costs[out] = 1
		zIn = append(zIn, out)
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("y%d", v), Inputs: vertIn[v], Outputs: []string{out},
			CardList: []secureview.CardReq{
				{Alpha: len(vertIn[v]), Beta: 0},
				{Alpha: 0, Beta: 1},
			},
		})
	}
	p.Costs["zout"] = expensive
	p.Modules = append(p.Modules, secureview.ModuleSpec{
		Name: "z", Inputs: zIn, Outputs: []string{"zout"},
		CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}},
	})
	return p
}

// VertexCoverFromSolution extracts the vertex set {v : y_v→z hidden} from a
// solution of the FromVertexCoverNoSharing instance.
func VertexCoverFromSolution(g combopt.Graph, sol secureview.Solution) []int {
	var cover []int
	for v := 0; v < g.N; v++ {
		if sol.Hidden.Has(fmt.Sprintf("y%d_to_z", v)) {
			cover = append(cover, v)
		}
	}
	return cover
}

// FromSetCoverGeneral builds the Theorem 9 / C.2 instance: one PUBLIC
// module per set S_i (privatization cost 1) emitting a free item b_ij to
// the private module of every member element u_j; each element module
// requires one incoming item hidden (cost 0). Hiding b_ij forces
// privatizing S_i, so the optimum equals the set-cover optimum, with γ = 1
// (no data sharing) — where the all-private variant admits a
// (γ+1)-approximation, public modules push the gap to Ω(log n).
func FromSetCoverGeneral(sc combopt.SetCover) *secureview.Problem {
	p := &secureview.Problem{Costs: privacy.Costs{}}
	bName := func(i, j int) string { return fmt.Sprintf("b_s%d_e%d", i, j) }
	members := make([][]int, sc.N)
	for i, s := range sc.Sets {
		var out []string
		for _, e := range s {
			members[e] = append(members[e], i)
			b := bName(i, e)
			out = append(out, b)
			p.Costs[b] = 0
		}
		in := fmt.Sprintf("a%d", i)
		p.Costs[in] = 0
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("S%d", i), Inputs: []string{in}, Outputs: out,
			Public: true, PrivatizeCost: 1,
		})
	}
	for j := 0; j < sc.N; j++ {
		var in []string
		for _, i := range members[j] {
			in = append(in, bName(i, j))
		}
		out := fmt.Sprintf("b%d", j)
		p.Costs[out] = 0
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("u%d", j), Inputs: in, Outputs: []string{out},
			CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}},
			SetList:  setOptionsFromInputs(in),
		})
	}
	return p
}

func setOptionsFromInputs(in []string) []secureview.SetReq {
	opts := make([]secureview.SetReq, len(in))
	for i, a := range in {
		opts[i] = secureview.SetReq{In: []string{a}}
	}
	return opts
}

// PrivatizedSetsFromSolution extracts {i : S_i privatized} from a solution
// of the FromSetCoverGeneral instance.
func PrivatizedSetsFromSolution(sc combopt.SetCover, sol secureview.Solution) []int {
	var cover []int
	for i := range sc.Sets {
		if sol.Privatized.Has(fmt.Sprintf("S%d", i)) {
			cover = append(cover, i)
		}
	}
	return cover
}

// FromLabelCoverGeneral builds the Theorem 10 / C.4 (Figure 6) instance:
// private modules v (requires its single output d_v hidden), y_{ℓ1,ℓ2}
// (requires its incoming d_v hidden — free once d_v is hidden), and x_uw
// (requires one incoming d_{u,w,ℓ1,ℓ2} hidden); PUBLIC modules z_{u,ℓ}
// (privatization cost 1) consume every d_{u,w,ℓ1,ℓ2} with ℓ at u's side.
// All data is free; cost comes only from privatization, and the optimum
// equals the label-cover optimum (Lemma 8).
func FromLabelCoverGeneral(lc combopt.LabelCover) *secureview.Problem {
	p := &secureview.Problem{Costs: privacy.Costs{}}
	dName := func(ei int, l1, l2 int) string { return fmt.Sprintf("d_e%d_l%d_%d", ei, l1, l2) }

	p.Costs["ds"] = 0
	p.Costs["dv"] = 0
	// v → all y_{l1,l2}.
	p.Modules = append(p.Modules, secureview.ModuleSpec{
		Name: "v", Inputs: []string{"ds"}, Outputs: []string{"dv"},
		CardList: []secureview.CardReq{{Alpha: 0, Beta: 1}},
	})
	// Collect, per (l1,l2), the edge items y_{l1,l2} must emit; and per
	// public module z_{v,l}, the items it consumes.
	yOutputs := make(map[[2]int][]string)
	zInputs := make(map[[2]int][]string) // key: (vertex in U∪U', label)
	xInputs := make([][]string, len(lc.Edges))
	for ei, e := range lc.Edges {
		for _, pair := range e.Rel {
			d := dName(ei, pair[0], pair[1])
			p.Costs[d] = 0
			yOutputs[[2]int{pair[0], pair[1]}] = append(yOutputs[[2]int{pair[0], pair[1]}], d)
			zInputs[[2]int{e.U, pair[0]}] = append(zInputs[[2]int{e.U, pair[0]}], d)
			zInputs[[2]int{lc.NU + e.W, pair[1]}] = append(zInputs[[2]int{lc.NU + e.W, pair[1]}], d)
			xInputs[ei] = append(xInputs[ei], d)
		}
	}
	for l1 := 0; l1 < lc.L; l1++ {
		for l2 := 0; l2 < lc.L; l2++ {
			outs := yOutputs[[2]int{l1, l2}]
			final := fmt.Sprintf("d_y%d_%d", l1, l2)
			p.Costs[final] = 0
			outs = append(outs, final)
			p.Modules = append(p.Modules, secureview.ModuleSpec{
				Name: fmt.Sprintf("y%d_%d", l1, l2), Inputs: []string{"dv"}, Outputs: outs,
				CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}},
			})
		}
	}
	for ei := range lc.Edges {
		out := fmt.Sprintf("d_x%d", ei)
		p.Costs[out] = 0
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("x_e%d", ei), Inputs: xInputs[ei], Outputs: []string{out},
			CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}},
		})
	}
	for v := 0; v < lc.NU+lc.NW; v++ {
		for l := 0; l < lc.L; l++ {
			in := zInputs[[2]int{v, l}]
			if len(in) == 0 {
				continue // label never usable at this vertex
			}
			out := fmt.Sprintf("d_z%d_%d", v, l)
			p.Costs[out] = 0
			p.Modules = append(p.Modules, secureview.ModuleSpec{
				Name: fmt.Sprintf("z_v%d_l%d", v, l), Inputs: in, Outputs: []string{out},
				Public: true, PrivatizeCost: 1,
			})
		}
	}
	return p
}

// GeneralLabelAssignmentFromSolution extracts the assignment
// {ℓ ∈ A(v) iff z_{v,ℓ} privatized} from a FromLabelCoverGeneral solution.
func GeneralLabelAssignmentFromSolution(lc combopt.LabelCover, sol secureview.Solution) combopt.Assignment {
	a := make(combopt.Assignment, lc.NU+lc.NW)
	for v := range a {
		a[v] = make([]bool, lc.L)
		for l := 0; l < lc.L; l++ {
			if sol.Privatized.Has(fmt.Sprintf("z_v%d_l%d", v, l)) {
				a[v][l] = true
			}
		}
	}
	return a
}

// Example5 builds the Example 5 family: module m sends item a2
// (cost 1+eps) to n middle modules, each of which may instead hide its own
// output b_i (cost 1); a collector accepts any hidden b_i; m may hide its
// input a1 (cost 1) or a2. Per-module greedy assembly costs n+1 while the
// optimum hides a2 plus one b_i for 2+eps — an Ω(n) assembly gap.
func Example5(n int, eps float64) *secureview.Problem {
	p := &secureview.Problem{Costs: privacy.Costs{"a1": 1, "a2": 1 + eps, "out": 1e6}}
	p.Modules = append(p.Modules, secureview.ModuleSpec{
		Name: "m", Inputs: []string{"a1"}, Outputs: []string{"a2"},
		SetList:  []secureview.SetReq{{In: []string{"a1"}}, {Out: []string{"a2"}}},
		CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}, {Alpha: 0, Beta: 1}},
	})
	var bs []string
	for i := 0; i < n; i++ {
		b := fmt.Sprintf("b%d", i)
		bs = append(bs, b)
		p.Costs[b] = 1
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("mi%d", i), Inputs: []string{"a2"}, Outputs: []string{b},
			SetList:  []secureview.SetReq{{In: []string{"a2"}}, {Out: []string{b}}},
			CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}, {Alpha: 0, Beta: 1}},
		})
	}
	p.Modules = append(p.Modules, secureview.ModuleSpec{
		Name: "mprime", Inputs: bs, Outputs: []string{"out"},
		SetList:  setOptionsFromInputs(bs),
		CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}},
	})
	return p
}
