package spec

import "testing"

// FuzzParseBuild ensures arbitrary byte inputs never panic the parser or
// the workflow builder: they must fail with an error or produce a valid
// workflow. (Run with `go test -fuzz=FuzzParseBuild ./internal/spec` for
// active fuzzing; regular `go test` exercises the seed corpus.)
func FuzzParseBuild(f *testing.F) {
	f.Add([]byte(demoDoc))
	f.Add([]byte(`{"name":"x","modules":[]}`))
	f.Add([]byte(`{"name":"x","modules":[{"name":"m","kind":"table",
		"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2}],
		"table":[{"in":[0],"out":[0]},{"in":[1],"out":[1]}]}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"modules":[{"kind":"constant"}]}`))
	f.Add([]byte(`{"name":"x","modules":[{"name":"m","kind":"identity",
		"inputs":[{"name":"a","domain":-1}],"outputs":[{"name":"b","domain":2}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			return
		}
		w, err := doc.Build()
		if err != nil {
			return
		}
		if w.Name() == "" && doc.Name != "" {
			t.Errorf("built workflow lost its name")
		}
	})
}
