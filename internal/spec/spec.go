// Package spec defines a JSON interchange format for workflows, so that
// concrete pipelines (module interfaces plus functionality, given as truth
// tables or built-in function kinds) can be loaded by the command-line
// tools, analyzed for Γ-privacy and published as secure views.
//
// A document looks like:
//
//	{
//	  "name": "demo",
//	  "gamma": 2,
//	  "costs": {"a1": 1, "a2": 2},
//	  "privatizeCosts": {"fmt": 3},
//	  "modules": [
//	    {
//	      "name": "m1", "visibility": "private",
//	      "inputs":  [{"name": "a1", "domain": 2}],
//	      "outputs": [{"name": "a2", "domain": 2}],
//	      "kind": "table",
//	      "table": [{"in": [0], "out": [1]}, {"in": [1], "out": [0]}]
//	    },
//	    {
//	      "name": "fmt", "visibility": "public",
//	      "inputs":  [{"name": "a2", "domain": 2}],
//	      "outputs": [{"name": "a3", "domain": 2}],
//	      "kind": "identity"
//	    }
//	  ]
//	}
//
// Supported kinds: "table" (explicit rows; must be total over the input
// domain), and the built-ins "identity", "complement", "and", "or", "xor",
// "nand", "not", "majority", "constant" (with "value": [..]).
package spec

import (
	"encoding/json"
	"fmt"

	"secureview/internal/module"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// Document is the top-level JSON shape.
type Document struct {
	Name           string             `json:"name"`
	Gamma          uint64             `json:"gamma,omitempty"`
	GammaPerModule map[string]uint64  `json:"gammaPerModule,omitempty"`
	Costs          map[string]float64 `json:"costs,omitempty"`
	PrivatizeCosts map[string]float64 `json:"privatizeCosts,omitempty"`
	Modules        []Module           `json:"modules"`
}

// Module is one module description.
type Module struct {
	Name       string `json:"name"`
	Visibility string `json:"visibility,omitempty"` // "private" (default) or "public"
	Inputs     []Attr `json:"inputs"`
	Outputs    []Attr `json:"outputs"`
	Kind       string `json:"kind"`
	Table      []Row  `json:"table,omitempty"`
	Value      []int  `json:"value,omitempty"` // for kind "constant"
}

// Attr is an attribute with its finite domain size.
type Attr struct {
	Name   string `json:"name"`
	Domain int    `json:"domain"`
}

// Row is one truth-table row.
type Row struct {
	In  []int `json:"in"`
	Out []int `json:"out"`
}

// Parse decodes a document from JSON.
func Parse(raw []byte) (*Document, error) {
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &doc, nil
}

func attrs(as []Attr) []relation.Attribute {
	out := make([]relation.Attribute, len(as))
	for i, a := range as {
		out[i] = relation.Attribute{Name: a.Name, Domain: a.Domain}
	}
	return out
}

func names(as []Attr) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func allBoolean(as []Attr) bool {
	for _, a := range as {
		if a.Domain != 2 {
			return false
		}
	}
	return true
}

// Build constructs the workflow described by the document.
func (d *Document) Build() (*workflow.Workflow, error) {
	if len(d.Modules) == 0 {
		return nil, fmt.Errorf("spec: document has no modules")
	}
	mods := make([]*module.Module, 0, len(d.Modules))
	for _, ms := range d.Modules {
		m, err := buildModule(ms)
		if err != nil {
			return nil, err
		}
		switch ms.Visibility {
		case "", "private":
		case "public":
			m = m.AsPublic()
		default:
			return nil, fmt.Errorf("spec: module %s: unknown visibility %q", ms.Name, ms.Visibility)
		}
		mods = append(mods, m)
	}
	return workflow.New(d.Name, mods...)
}

func buildModule(ms Module) (*module.Module, error) {
	// Validate up front: the module constructors panic on malformed
	// shapes, which must surface as errors for untrusted documents.
	if ms.Name == "" {
		return nil, fmt.Errorf("spec: module with empty name")
	}
	if len(ms.Outputs) == 0 {
		return nil, fmt.Errorf("spec: module %s has no outputs", ms.Name)
	}
	for _, a := range append(append([]Attr{}, ms.Inputs...), ms.Outputs...) {
		if a.Name == "" {
			return nil, fmt.Errorf("spec: module %s has an unnamed attribute", ms.Name)
		}
		if a.Domain < 1 {
			return nil, fmt.Errorf("spec: module %s attribute %q has domain %d", ms.Name, a.Name, a.Domain)
		}
	}
	in := attrs(ms.Inputs)
	out := attrs(ms.Outputs)
	boolOnly := func() error {
		if !allBoolean(ms.Inputs) || !allBoolean(ms.Outputs) {
			return fmt.Errorf("spec: module %s: kind %q requires boolean attributes", ms.Name, ms.Kind)
		}
		return nil
	}
	switch ms.Kind {
	case "table":
		return buildTable(ms, in, out)
	case "identity":
		if err := boolOnly(); err != nil {
			return nil, err
		}
		if len(in) != len(out) {
			return nil, fmt.Errorf("spec: module %s: identity arity mismatch", ms.Name)
		}
		return module.Identity(ms.Name, names(ms.Inputs), names(ms.Outputs)), nil
	case "complement":
		if err := boolOnly(); err != nil {
			return nil, err
		}
		if len(in) != len(out) {
			return nil, fmt.Errorf("spec: module %s: complement arity mismatch", ms.Name)
		}
		return module.Complement(ms.Name, names(ms.Inputs), names(ms.Outputs)), nil
	case "and", "or", "xor", "nand", "not", "majority":
		if err := boolOnly(); err != nil {
			return nil, err
		}
		if len(out) != 1 {
			return nil, fmt.Errorf("spec: module %s: kind %q needs exactly one output", ms.Name, ms.Kind)
		}
		o := ms.Outputs[0].Name
		ins := names(ms.Inputs)
		switch ms.Kind {
		case "and":
			return module.And(ms.Name, ins, o), nil
		case "or":
			return module.Or(ms.Name, ins, o), nil
		case "xor":
			return module.Xor(ms.Name, ins, o), nil
		case "nand":
			return module.Nand(ms.Name, ins, o), nil
		case "not":
			if len(ins) != 1 {
				return nil, fmt.Errorf("spec: module %s: not needs one input", ms.Name)
			}
			return module.Not(ms.Name, ins[0], o), nil
		case "majority":
			return module.Majority(ms.Name, ins, o), nil
		}
		panic("unreachable")
	case "constant":
		if len(ms.Value) != len(out) {
			return nil, fmt.Errorf("spec: module %s: constant value arity %d, want %d", ms.Name, len(ms.Value), len(out))
		}
		val := make(relation.Tuple, len(ms.Value))
		for i, v := range ms.Value {
			if v < 0 || v >= out[i].Domain {
				return nil, fmt.Errorf("spec: module %s: constant value %d out of domain", ms.Name, v)
			}
			val[i] = v
		}
		return module.Constant(ms.Name, in, out, val), nil
	default:
		return nil, fmt.Errorf("spec: module %s: unknown kind %q", ms.Name, ms.Kind)
	}
}

func buildTable(ms Module, in, out []relation.Attribute) (*module.Module, error) {
	schema, err := relation.NewSchema(append(append([]relation.Attribute{}, in...), out...))
	if err != nil {
		return nil, fmt.Errorf("spec: module %s: %w", ms.Name, err)
	}
	rel := relation.New(schema)
	for ri, row := range ms.Table {
		if len(row.In) != len(in) || len(row.Out) != len(out) {
			return nil, fmt.Errorf("spec: module %s: row %d arity mismatch", ms.Name, ri)
		}
		full := make(relation.Tuple, 0, len(row.In)+len(row.Out))
		for _, v := range row.In {
			full = append(full, v)
		}
		for _, v := range row.Out {
			full = append(full, v)
		}
		if err := rel.Insert(full); err != nil {
			return nil, fmt.Errorf("spec: module %s: row %d: %w", ms.Name, ri, err)
		}
	}
	inSchema, err := relation.NewSchema(in)
	if err != nil {
		return nil, err
	}
	domSize, ok := inSchema.DomainProduct(inSchema.Names())
	if !ok {
		return nil, fmt.Errorf("spec: module %s: input domain too large", ms.Name)
	}
	inputsSeen, err := rel.CountDistinct(inSchema.Names())
	if err != nil {
		return nil, err
	}
	if uint64(inputsSeen) != domSize {
		return nil, fmt.Errorf("spec: module %s: table covers %d of %d inputs (tables must be total)",
			ms.Name, inputsSeen, domSize)
	}
	inNames := make([]string, len(in))
	for i, a := range in {
		inNames[i] = a.Name
	}
	outNames := make([]string, len(out))
	for i, a := range out {
		outNames[i] = a.Name
	}
	return module.FromRelation(ms.Name, rel, inNames, outNames, module.Private)
}

// FromWorkflow serializes a workflow back into a document, materializing
// every module as a total truth table (so the round trip is faithful
// regardless of how modules were originally defined).
func FromWorkflow(w *workflow.Workflow) (*Document, error) {
	doc := &Document{Name: w.Name()}
	for _, m := range w.Modules() {
		ms := Module{
			Name: m.Name(),
			Kind: "table",
		}
		if m.Visibility() == module.Public {
			ms.Visibility = "public"
		} else {
			ms.Visibility = "private"
		}
		for _, a := range m.Inputs() {
			ms.Inputs = append(ms.Inputs, Attr{Name: a.Name, Domain: a.Domain})
		}
		for _, a := range m.Outputs() {
			ms.Outputs = append(ms.Outputs, Attr{Name: a.Name, Domain: a.Domain})
		}
		size, ok := m.InputDomainSize()
		if !ok || size > 1<<16 {
			return nil, fmt.Errorf("spec: module %s: domain too large to serialize", m.Name())
		}
		var tblErr error
		relation.EachTuple(m.InputSchema(), func(x relation.Tuple) bool {
			y, err := m.Eval(x)
			if err != nil {
				tblErr = err
				return false
			}
			row := Row{In: make([]int, len(x)), Out: make([]int, len(y))}
			copy(row.In, x)
			copy(row.Out, y)
			ms.Table = append(ms.Table, row)
			return true
		})
		if tblErr != nil {
			return nil, tblErr
		}
		doc.Modules = append(doc.Modules, ms)
	}
	return doc, nil
}

// Marshal renders the document as indented JSON.
func (d *Document) Marshal() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}
