package spec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

const demoDoc = `{
  "name": "demo",
  "gamma": 2,
  "costs": {"a1": 1, "a2": 2, "a3": 1},
  "modules": [
    {
      "name": "flip", "visibility": "private",
      "inputs":  [{"name": "a1", "domain": 2}],
      "outputs": [{"name": "a2", "domain": 2}],
      "kind": "table",
      "table": [{"in": [0], "out": [1]}, {"in": [1], "out": [0]}]
    },
    {
      "name": "fmt", "visibility": "public",
      "inputs":  [{"name": "a2", "domain": 2}],
      "outputs": [{"name": "a3", "domain": 2}],
      "kind": "identity"
    }
  ]
}`

func TestParseAndBuild(t *testing.T) {
	doc, err := Parse([]byte(demoDoc))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Gamma != 2 || doc.Name != "demo" {
		t.Fatalf("header wrong: %+v", doc)
	}
	w, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Modules()) != 2 {
		t.Fatalf("modules = %d", len(w.Modules()))
	}
	if w.Module("fmt").Visibility() != module.Public {
		t.Error("fmt not public")
	}
	row, err := w.Execute(relation.Tuple{0})
	if err != nil {
		t.Fatal(err)
	}
	// flip(0)=1, identity(1)=1.
	s := w.Schema()
	if row[s.IndexOf("a2")] != 1 || row[s.IndexOf("a3")] != 1 {
		t.Errorf("execution = %v", row)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"bad json", `{"name":`},
		{"no modules", `{"name": "x", "modules": []}`},
		{"unknown kind", `{"name":"x","modules":[{"name":"m","kind":"magic",
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2}]}]}`},
		{"unknown visibility", `{"name":"x","modules":[{"name":"m","kind":"identity","visibility":"secret",
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2}]}]}`},
		{"partial table", `{"name":"x","modules":[{"name":"m","kind":"table",
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2}],
			"table":[{"in":[0],"out":[0]}]}]}`},
		{"fd violation", `{"name":"x","modules":[{"name":"m","kind":"table",
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2}],
			"table":[{"in":[0],"out":[0]},{"in":[0],"out":[1]},{"in":[1],"out":[0]}]}]}`},
		{"row arity", `{"name":"x","modules":[{"name":"m","kind":"table",
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2}],
			"table":[{"in":[0,0],"out":[0]}]}]}`},
		{"constant arity", `{"name":"x","modules":[{"name":"m","kind":"constant","value":[0,1],
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2}]}]}`},
		{"constant domain", `{"name":"x","modules":[{"name":"m","kind":"constant","value":[5],
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2}]}]}`},
		{"gate multi-output", `{"name":"x","modules":[{"name":"m","kind":"xor",
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2},{"name":"c","domain":2}]}]}`},
		{"non-boolean gate", `{"name":"x","modules":[{"name":"m","kind":"xor",
			"inputs":[{"name":"a","domain":3}],"outputs":[{"name":"b","domain":2}]}]}`},
		{"identity arity", `{"name":"x","modules":[{"name":"m","kind":"identity",
			"inputs":[{"name":"a","domain":2}],"outputs":[{"name":"b","domain":2},{"name":"c","domain":2}]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc, err := Parse([]byte(tc.doc))
			if err != nil {
				return // parse-level failure is fine
			}
			if _, err := doc.Build(); err == nil {
				t.Errorf("document accepted: %s", tc.doc)
			}
		})
	}
}

func TestBuiltinKinds(t *testing.T) {
	doc := `{"name":"gates","modules":[
		{"name":"g1","kind":"and","inputs":[{"name":"x","domain":2},{"name":"y","domain":2}],
		 "outputs":[{"name":"u","domain":2}]},
		{"name":"g2","kind":"or","inputs":[{"name":"u","domain":2},{"name":"x","domain":2}],
		 "outputs":[{"name":"v","domain":2}]},
		{"name":"g3","kind":"not","inputs":[{"name":"v","domain":2}],
		 "outputs":[{"name":"w","domain":2}]},
		{"name":"g4","kind":"majority","inputs":[{"name":"u","domain":2},{"name":"v","domain":2},{"name":"w","domain":2}],
		 "outputs":[{"name":"z","domain":2}]},
		{"name":"g5","kind":"constant","value":[1],"inputs":[{"name":"z","domain":2}],
		 "outputs":[{"name":"c","domain":2}]},
		{"name":"g6","kind":"complement","inputs":[{"name":"c","domain":2}],
		 "outputs":[{"name":"d","domain":2}]}
	]}`
	d, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	row, err := w.Execute(relation.Tuple{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Schema()
	// u=1, v=1, w=0, z=maj(1,1,0)=1, c=1, d=0.
	want := map[string]relation.Value{"u": 1, "v": 1, "w": 0, "z": 1, "c": 1, "d": 0}
	for n, v := range want {
		if row[s.IndexOf(n)] != v {
			t.Errorf("%s = %d, want %d", n, row[s.IndexOf(n)], v)
		}
	}
}

func TestRoundTripFig1(t *testing.T) {
	w := workflow.Fig1()
	doc, err := FromWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"table"`) {
		t.Error("serialization did not materialize tables")
	}
	doc2, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := doc2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !w2.MustRelation().Equal(w.MustRelation()) {
		t.Fatal("round trip changed the provenance relation")
	}
}

// Property: FromWorkflow ∘ Build is the identity on provenance relations
// for random two-module workflows.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := module.Random("m1", relation.Bools("x1", "x2"), relation.Bools("u1"), rng)
		m2 := module.Random("m2", relation.Bools("u1", "x1"), relation.Bools("v1", "v2"), rng)
		w, err := workflow.New("rt", m1, m2)
		if err != nil {
			return false
		}
		doc, err := FromWorkflow(w)
		if err != nil {
			return false
		}
		raw, err := doc.Marshal()
		if err != nil {
			return false
		}
		doc2, err := Parse(raw)
		if err != nil {
			return false
		}
		w2, err := doc2.Build()
		if err != nil {
			return false
		}
		return w2.MustRelation().Equal(w.MustRelation())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
