package solve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sort"
	"sync"

	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/secureview"
	"secureview/internal/workflow"
)

// Session caches the expensive immutable state behind repeated solve
// requests: derived Secure-View problems (the per-module standalone
// analyses of Theorems 4/8 dominate end-to-end latency) and compiled
// internal/oracle tables, both keyed by content fingerprints so renamed
// handles to the same workflow share entries. All cached values are
// immutable after construction and safe to share across goroutines; a
// Session is safe for concurrent use, and concurrent requests for the same
// fingerprint perform the work once (later arrivals block on the first).
//
// This is the request-level counterpart of privacy.Cache (which amortizes
// per-module analyses across workflows, the paper's section 3.2 BLAST/FASTA
// remark): one Session fronting a batch of jobs derives each distinct
// workflow once per variant, however many (instance, solver) pairs the
// batch fans out.
type Session struct {
	mu       sync.Mutex
	problems map[string]*problemEntry
	oracles  map[string]*oracleEntry
	hits     int
	misses   int
}

type problemEntry struct {
	once sync.Once
	p    *secureview.Problem
	err  error
}

type oracleEntry struct {
	once sync.Once
	c    *oracle.Compiled
	err  error
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{
		problems: make(map[string]*problemEntry),
		oracles:  make(map[string]*oracleEntry),
	}
}

// Stats reports cache hits and misses across both caches.
func (s *Session) Stats() (hits, misses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// hashModuleView writes a module view's identity — attribute split, schema
// domains and full row set — into h. Names matter (solutions are name
// sets), so renamed copies of one function hash differently.
func hashModuleView(h hash.Hash, mv privacy.ModuleView) {
	for _, n := range mv.Inputs {
		fmt.Fprintf(h, "i:%s;", n)
	}
	for _, n := range mv.Outputs {
		fmt.Fprintf(h, "o:%s;", n)
	}
	sc := mv.Rel.Schema()
	for i := 0; i < sc.Len(); i++ {
		a := sc.Attr(i)
		fmt.Fprintf(h, "d:%s=%d;", a.Name, a.Domain)
	}
	var buf [8]byte
	for _, row := range mv.Rel.SortedRows() {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		h.Write([]byte{0xff})
	}
}

// workflowKey fingerprints a derivation request: every module's identity
// plus visibility, the privacy requirement, the variant and both cost
// assignments. The workflow's own name is deliberately NOT hashed — it
// never affects the derived problem (solutions are attribute/module name
// sets), so renamed handles to the same workflow share one entry.
func workflowKey(w *workflow.Workflow, v secureview.Variant, gamma uint64,
	costs privacy.Costs, privatizeCosts map[string]float64) string {
	h := sha256.New()
	fmt.Fprintf(h, "solve/v1 variant=%d gamma=%d;", v, gamma)
	for _, m := range w.Modules() {
		fmt.Fprintf(h, "m:%s:%s;", m.Name(), m.Visibility())
		hashModuleView(h, privacy.NewModuleView(m))
	}
	names := make([]string, 0, len(costs))
	for a := range costs {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		fmt.Fprintf(h, "c:%s=%.17g;", a, costs[a])
	}
	names = names[:0]
	for m := range privatizeCosts {
		names = append(names, m)
	}
	sort.Strings(names)
	for _, m := range names {
		fmt.Fprintf(h, "p:%s=%.17g;", m, privatizeCosts[m])
	}
	return string(h.Sum(nil))
}

// Problem returns the Secure-View instance derived from (w, Γ, costs) in
// the given variant, deriving it on first use and serving every later
// request — from any goroutine — out of the cache. Derivation errors
// (including secureview.ErrInfeasible) are cached alongside: a workflow
// with no safe subsets at Γ is not re-analyzed per request.
//
// The context gates only cache misses (the derivation's per-module engine
// sweeps run to completion once started); it is checked before any work.
func (s *Session) Problem(ctx context.Context, w *workflow.Workflow, v secureview.Variant,
	gamma uint64, costs privacy.Costs, privatizeCosts map[string]float64) (*secureview.Problem, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := workflowKey(w, v, gamma, costs, privatizeCosts)
	s.mu.Lock()
	e, ok := s.problems[key]
	if !ok {
		e = &problemEntry{}
		s.problems[key] = e
		s.misses++
	} else {
		s.hits++
	}
	s.mu.Unlock()
	e.once.Do(func() {
		if v == secureview.Set {
			e.p, e.err = secureview.Derive(w, secureview.DeriveOptions{
				Gamma: gamma, Costs: costs, PrivatizeCosts: privatizeCosts,
			})
			return
		}
		e.p, e.err = secureview.DeriveCardProblem(w, gamma, costs, privatizeCosts)
	})
	return e.p, e.err
}

// Compiled returns the compiled integer-coded oracle tables for the module
// view, compiling on first use and sharing the immutable result across all
// later requests for the same functionality.
func (s *Session) Compiled(mv privacy.ModuleView) (*oracle.Compiled, error) {
	h := sha256.New()
	h.Write([]byte("solve/oracle/v1;"))
	hashModuleView(h, mv)
	key := string(h.Sum(nil))
	s.mu.Lock()
	e, ok := s.oracles[key]
	if !ok {
		e = &oracleEntry{}
		s.oracles[key] = e
		s.misses++
	} else {
		s.hits++
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.c, e.err = mv.Compile()
	})
	return e.c, e.err
}
