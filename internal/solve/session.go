package solve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"
	"math"
	"sort"
	"sync"

	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/search"
	"secureview/internal/secureview"
	"secureview/internal/workflow"
)

// Session caches the expensive immutable state behind repeated solve
// requests: derived Secure-View problems (the per-module standalone
// analyses of Theorems 4/8 dominate end-to-end latency) and compiled
// internal/oracle tables, both keyed by content fingerprints so renamed
// handles to the same workflow share entries. All cached values are
// immutable after construction and safe to share across goroutines; a
// Session is safe for concurrent use, and concurrent requests for the same
// fingerprint perform the work once (later arrivals block on the first).
//
// A Session constructed with NewSessionBytes accounts the approximate
// resident size of every cached value and evicts least-recently-used
// entries whenever the accounted total would exceed the budget, so a
// long-running server can front an unbounded stream of distinct workflows
// with bounded memory. NewSession keeps the historical unbounded behavior.
// Eviction is observable through Stats. Evicting an entry never invalidates
// pointers already handed out — cached values are immutable — it only
// forces the next request for that fingerprint to re-derive.
//
// This is the request-level counterpart of privacy.Cache (which amortizes
// per-module analyses across workflows, the paper's section 3.2 BLAST/FASTA
// remark): one Session fronting a batch of jobs derives each distinct
// workflow once per variant, however many (instance, solver) pairs the
// batch fans out.
type Session struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	problems map[string]*sessionEntry
	oracles  map[string]*sessionEntry
	warm     map[string]*sessionEntry
	// structIdx maps a derivation's cost-independent structure key to the
	// most recent completed problem entry with that structure, powering the
	// DeltaDerive fast path: a request whose full key misses but whose
	// structure key hits re-costs the cached problem instead of re-running
	// the per-module analyses. Maintained under mu; entries are removed when
	// the backing problem entry is evicted.
	structIdx map[string]*sessionEntry
	// LRU list over all caches; front = most recently used.
	front, back  *sessionEntry
	hits         int
	misses       int
	evictions    int
	warmHits     int
	warmMisses   int
	deltaDerives int
}

// sessionEntry is one cached derivation or compilation. done/size/p/c/err
// are guarded by mu (the singleflight lock: the first caller derives while
// later arrivals block); the list links and the accounted/evicted flags are
// guarded by the Session mutex. accounted marks that size has been added to
// the session byte total (i.e. the derivation committed), which is what the
// eviction walk keys on — entries still deriving carry no accounted bytes.
type sessionEntry struct {
	key  string
	kind entryKind // which map the entry lives in

	mu   sync.Mutex
	done bool
	size int64
	p    *secureview.Problem
	c    *oracle.Compiled
	err  error

	prev, next *sessionEntry
	accounted  bool
	evicted    bool
	// structKey links a completed problem entry to its structIdx slot so
	// eviction can drop the index entry; f is a warm entry's payload. Both
	// are guarded by the Session mutex (warm entries never use the
	// singleflight lock: StoreWarm installs a complete value in one step).
	structKey string
	f         *search.Frontier
}

// entryKind selects which Session map an entry lives in.
type entryKind int8

const (
	kindOracle entryKind = iota
	kindProblem
	kindWarm
)

// NewSession returns an empty session with no size bound.
func NewSession() *Session {
	return NewSessionBytes(0)
}

// NewSessionBytes returns an empty session that keeps its accounted cache
// size at or below maxBytes by LRU eviction (0 = unbounded). The accounting
// is an estimate of resident size (problem specs, compiled oracle tables
// and their pooled scratch), not exact heap usage.
func NewSessionBytes(maxBytes int64) *Session {
	return &Session{
		maxBytes:  maxBytes,
		problems:  make(map[string]*sessionEntry),
		oracles:   make(map[string]*sessionEntry),
		warm:      make(map[string]*sessionEntry),
		structIdx: make(map[string]*sessionEntry),
	}
}

// SessionStats is a snapshot of cache effectiveness and occupancy. The
// JSON tags are the wire shape internal/server exposes at /v1/stats.
type SessionStats struct {
	// Hits counts requests served from a completed cache entry; Misses
	// counts derivations/compilations actually performed.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// Evictions counts entries removed under memory pressure.
	Evictions int `json:"evictions"`
	// WarmHits and WarmMisses count warm-start frontier lookups by
	// fingerprint; they are tracked separately from Hits/Misses because a
	// warm miss is not a derivation (the solve proceeds cold) and a warm hit
	// does not skip one.
	WarmHits   int `json:"warmHits"`
	WarmMisses int `json:"warmMisses"`
	// DeltaDerives counts problem derivations served by re-costing a cached
	// structurally identical problem instead of re-running the per-module
	// analyses (a subset of Misses).
	DeltaDerives int `json:"deltaDerives"`
	// Entries and Bytes are the current occupancy across all caches;
	// MaxBytes echoes the configured budget (0 = unbounded). Bytes never
	// exceeds MaxBytes when a budget is set.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"maxBytes"`
}

// Stats reports cache hits, misses, evictions and current occupancy across
// both caches.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{
		Hits:         s.hits,
		Misses:       s.misses,
		Evictions:    s.evictions,
		WarmHits:     s.warmHits,
		WarmMisses:   s.warmMisses,
		DeltaDerives: s.deltaDerives,
		Entries:      len(s.problems) + len(s.oracles) + len(s.warm),
		Bytes:        s.bytes,
		MaxBytes:     s.maxBytes,
	}
}

// mapFor returns the cache map an entry kind lives in. Caller holds s.mu.
func (s *Session) mapFor(k entryKind) map[string]*sessionEntry {
	switch k {
	case kindProblem:
		return s.problems
	case kindWarm:
		return s.warm
	default:
		return s.oracles
	}
}

// lookup returns the entry for key in the given cache, creating it on first
// request, and marks it most recently used.
func (s *Session) lookup(key string, kind entryKind) *sessionEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.mapFor(kind)
	e, ok := m[key]
	if !ok {
		e = &sessionEntry{key: key, kind: kind}
		m[key] = e
	}
	s.touchLocked(e)
	return e
}

// touchLocked moves e to the front of the LRU list (inserting it if new).
// Caller holds s.mu.
func (s *Session) touchLocked(e *sessionEntry) {
	if s.front == e {
		return
	}
	s.unlinkLocked(e)
	e.next = s.front
	if s.front != nil {
		s.front.prev = e
	}
	s.front = e
	if s.back == nil {
		s.back = e
	}
}

// unlinkLocked removes e from the LRU list if present. Caller holds s.mu.
func (s *Session) unlinkLocked(e *sessionEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.front == e {
		s.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.back == e {
		s.back = e.prev
	}
	e.prev, e.next = nil, nil
}

// commit records a finished entry's size and evicts LRU entries until the
// budget holds again. The just-finished entry itself is evictable: a single
// value larger than the whole budget is dropped immediately (the caller
// keeps its pointer; only future requests re-derive), so the accounted
// total never exceeds the budget.
func (s *Session) commit(e *sessionEntry) {
	s.commitProblem(e, "", false)
}

// commitProblem is commit with the problem-only extras: on a successful
// derivation it publishes the entry in the structure index (enabling later
// DeltaDerives), and records whether this derivation itself was served by
// delta re-costing.
func (s *Session) commitProblem(e *sessionEntry, structKey string, delta bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.misses++
	if delta {
		s.deltaDerives++
	}
	if e.evicted {
		return
	}
	e.accounted = true
	s.bytes += e.size
	if structKey != "" && e.err == nil && e.p != nil {
		e.structKey = structKey
		s.structIdx[structKey] = e
	}
	s.evictOverLocked()
}

// evictOverLocked evicts LRU accounted entries until the budget holds.
// Caller holds s.mu.
func (s *Session) evictOverLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for cur := s.back; cur != nil && s.bytes > s.maxBytes; {
		prev := cur.prev
		// Entries still deriving are not yet accounted and carry no
		// bytes; evicting them would not relieve pressure, so skip them.
		if cur.accounted {
			s.evictLocked(cur)
		}
		cur = prev
	}
}

// discard removes a never-completed entry whose creating caller cancelled
// before deriving, so abandoned fingerprints do not pin map slots forever.
// If a concurrent waiter completed and committed the derivation in the
// meantime, the entry is valid cached work and stays. Not counted in
// Evictions — this is cleanup, not memory pressure.
func (s *Session) discard(e *sessionEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.evicted || e.accounted {
		return
	}
	m := s.mapFor(e.kind)
	// Guard against ABA: if pressure evicted e and a later caller re-created
	// the key, the map now holds a different entry that must survive.
	if m[e.key] != e {
		return
	}
	e.evicted = true
	delete(m, e.key)
	s.unlinkLocked(e)
}

// evictLocked removes e from its map and the LRU list. Caller holds s.mu.
func (s *Session) evictLocked(e *sessionEntry) {
	if e.evicted {
		return
	}
	e.evicted = true
	if e.accounted {
		s.bytes -= e.size
		e.accounted = false
	}
	delete(s.mapFor(e.kind), e.key)
	if e.structKey != "" && s.structIdx[e.structKey] == e {
		delete(s.structIdx, e.structKey)
	}
	s.unlinkLocked(e)
	s.evictions++
}

// hashStr writes a tagged, length-prefixed string into h. The length prefix
// makes the encoding injective: names containing the bytes another field
// uses (';', ':', '=', tag letters) cannot shift field boundaries, so two
// distinct workflows can never serialize to one byte stream.
func hashStr(h hash.Hash, tag byte, s string) {
	var buf [9]byte
	buf[0] = tag
	binary.LittleEndian.PutUint64(buf[1:], uint64(len(s)))
	h.Write(buf[:])
	io.WriteString(h, s)
}

// hashU64 writes a fixed-width integer into h.
func hashU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

// hashModuleView writes a module view's identity — attribute split, schema
// domains and full row set — into h. Names matter (solutions are name
// sets), so renamed copies of one function hash differently. Every string
// is length-prefixed and every section is count-prefixed; no delimiter
// byte is load-bearing.
func hashModuleView(h hash.Hash, mv privacy.ModuleView) {
	hashU64(h, uint64(len(mv.Inputs)))
	for _, n := range mv.Inputs {
		hashStr(h, 'i', n)
	}
	hashU64(h, uint64(len(mv.Outputs)))
	for _, n := range mv.Outputs {
		hashStr(h, 'o', n)
	}
	sc := mv.Rel.Schema()
	hashU64(h, uint64(sc.Len()))
	for i := 0; i < sc.Len(); i++ {
		a := sc.Attr(i)
		hashStr(h, 'd', a.Name)
		hashU64(h, uint64(a.Domain))
	}
	rows := mv.Rel.SortedRows()
	hashU64(h, uint64(len(rows)))
	for _, row := range rows {
		for _, v := range row {
			hashU64(h, uint64(v))
		}
	}
}

// hashCosts writes a name→float64 map in sorted name order, count-prefixed.
func hashCosts(h hash.Hash, tag byte, costs map[string]float64) {
	names := make([]string, 0, len(costs))
	for a := range costs {
		names = append(names, a)
	}
	sort.Strings(names)
	hashU64(h, uint64(len(names)))
	for _, a := range names {
		hashStr(h, tag, a)
		hashU64(h, math.Float64bits(costs[a]))
	}
}

// workflowKeys fingerprints a derivation request: every module's identity
// plus visibility, the privacy requirement, the variant and both cost
// assignments. The workflow's own name is deliberately NOT hashed — it
// never affects the derived problem (solutions are attribute/module name
// sets), so renamed handles to the same workflow share one entry.
//
// Two keys come back from one hashing pass: full covers everything,
// structural stops before the cost maps. Costs enter a derived problem only
// as Problem.Costs and ModuleSpec.PrivatizeCost — the expensive per-module
// requirement analyses never read them — so two requests sharing a
// structural key differ only by re-costing (the DeltaDerive fast path).
func workflowKeys(w *workflow.Workflow, v secureview.Variant, gamma uint64,
	costs privacy.Costs, privatizeCosts map[string]float64) (full, structural string) {
	h := sha256.New()
	hashStr(h, 'V', "solve/v2")
	hashU64(h, uint64(v))
	hashU64(h, gamma)
	mods := w.Modules()
	hashU64(h, uint64(len(mods)))
	for _, m := range mods {
		hashStr(h, 'm', m.Name())
		hashU64(h, uint64(m.Visibility()))
		hashModuleView(h, privacy.NewModuleView(m))
	}
	structural = string(h.Sum(nil))
	hashCosts(h, 'c', costs)
	hashCosts(h, 'p', privatizeCosts)
	return string(h.Sum(nil)), structural
}

// workflowKey is the full (cost-inclusive) cache key alone.
func workflowKey(w *workflow.Workflow, v secureview.Variant, gamma uint64,
	costs privacy.Costs, privatizeCosts map[string]float64) string {
	full, _ := workflowKeys(w, v, gamma, costs, privatizeCosts)
	return full
}

// deltaSource returns the cached problem to re-cost for the given structure
// key, or nil when none is available. Entries reached through structIdx are
// complete (commitProblem indexes only successful derivations) and
// immutable, so reading p under s.mu alone is safe: the index insertion
// happened under s.mu after the derivation wrote p.
func (s *Session) deltaSource(structKey string) *secureview.Problem {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.structIdx[structKey]; e != nil {
		return e.p
	}
	return nil
}

// deltaClone re-costs a structurally identical derived problem: the
// requirement lists and module interfaces are shared (immutable after
// derivation), only Costs and the public modules' PrivatizeCost change —
// exactly the two places DeriveOptions costs land, so the clone is
// indistinguishable from a fresh derivation with the new costs.
func deltaClone(src *secureview.Problem, costs privacy.Costs,
	privatizeCosts map[string]float64) *secureview.Problem {
	mods := make([]secureview.ModuleSpec, len(src.Modules))
	copy(mods, src.Modules)
	for i := range mods {
		if mods[i].Public {
			mods[i].PrivatizeCost = privatizeCosts[mods[i].Name]
		}
	}
	return &secureview.Problem{Modules: mods, Costs: costs}
}

// Problem returns the Secure-View instance derived from (w, Γ, costs) in
// the given variant, deriving it on first use and serving every later
// request — from any goroutine — out of the cache. Deterministic derivation
// errors (e.g. secureview.ErrInfeasible) are cached alongside: a workflow
// with no safe subsets at Γ is not re-analyzed per request.
//
// The context gates only cache misses (the derivation's per-module engine
// sweeps run to completion once started); it is checked before any work,
// including immediately before derivation starts — a caller whose context
// died while it waited for the map slot returns ctx.Err() without deriving
// and without poisoning the entry, so the next caller performs the work.
func (s *Session) Problem(ctx context.Context, w *workflow.Workflow, v secureview.Variant,
	gamma uint64, costs privacy.Costs, privatizeCosts map[string]float64) (*secureview.Problem, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	full, structKey := workflowKeys(w, v, gamma, costs, privatizeCosts)
	// Resolve a potential delta source before taking the entry lock — no
	// path may block on s.mu while holding an entry lock. On a cache hit the
	// index read is wasted, but it is a single locked map access.
	src := s.deltaSource(structKey)
	e := s.lookup(full, kindProblem)
	e.mu.Lock()
	if e.done {
		// Copy under e.mu, count the hit after releasing it: no path may
		// block on s.mu while holding an entry lock, or commit's eviction
		// walk would mistake a done entry for one still deriving.
		p, err := e.p, e.err
		e.mu.Unlock()
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
		return p, err
	}
	// Re-check before committing to the derivation: the wait for the entry
	// lock may have outlived the caller's deadline, and a cancelled caller
	// must neither burn the sweep nor cache its own context error. The
	// abandoned entry is discarded so fingerprints whose only caller
	// cancelled do not accumulate in a capped session.
	if err := ctx.Err(); err != nil {
		e.mu.Unlock()
		s.discard(e)
		return nil, err
	}
	delta := false
	if src != nil {
		e.p, e.err = deltaClone(src, costs, privatizeCosts), nil
		delta = true
	} else if v == secureview.Set {
		e.p, e.err = secureview.Derive(w, secureview.DeriveOptions{
			Gamma: gamma, Costs: costs, PrivatizeCosts: privatizeCosts,
		})
	} else {
		e.p, e.err = secureview.DeriveCardProblem(w, gamma, costs, privatizeCosts)
	}
	e.done = true
	e.size = problemSize(e.p)
	p, err := e.p, e.err
	e.mu.Unlock()
	s.commitProblem(e, structKey, delta)
	return p, err
}

// Compiled returns the compiled integer-coded oracle tables for the module
// view, compiling on first use and sharing the immutable result across all
// later requests for the same functionality.
func (s *Session) Compiled(mv privacy.ModuleView) (*oracle.Compiled, error) {
	h := sha256.New()
	hashStr(h, 'V', "solve/oracle/v2")
	hashModuleView(h, mv)
	e := s.lookup(string(h.Sum(nil)), kindOracle)
	e.mu.Lock()
	if e.done {
		c, err := e.c, e.err
		e.mu.Unlock()
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
		return c, err
	}
	e.c, e.err = mv.Compile()
	e.done = true
	e.size = entrySize
	if e.c != nil {
		e.size += e.c.MemSize()
	}
	c, err := e.c, e.err
	e.mu.Unlock()
	s.commit(e)
	return c, err
}

// entrySize is the fixed accounting overhead per cache entry (SHA-256 key,
// entry struct, map slot, list links).
const entrySize int64 = 160

// problemSize estimates the resident bytes of a derived problem: module
// specs (names, attribute name slices, requirement lists) plus the cost
// map. An error entry costs only its overhead.
func problemSize(p *secureview.Problem) int64 {
	size := entrySize
	if p == nil {
		return size
	}
	for i := range p.Modules {
		m := &p.Modules[i]
		size += 96 + int64(len(m.Name))
		for _, a := range m.Inputs {
			size += 16 + int64(len(a))
		}
		for _, a := range m.Outputs {
			size += 16 + int64(len(a))
		}
		for _, r := range m.SetList {
			size += 48
			for _, a := range r.In {
				size += 16 + int64(len(a))
			}
			for _, a := range r.Out {
				size += 16 + int64(len(a))
			}
		}
		size += 16 * int64(len(m.CardList))
	}
	for a := range p.Costs {
		size += 48 + int64(len(a))
	}
	return size
}
