package solve_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/privacy"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// within compares float cost sums up to the accumulation-order noise of
// map-iterated summation (the harness's eps convention).
func within(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+a+b)
}

func TestRegistryNamesAndCapabilities(t *testing.T) {
	want := []string{"approx-labelcover", "approx-setcover", "bb", "engine", "exact", "greedy", "lp", "portfolio"}
	if got := solve.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	infos := solve.Solvers()
	if len(infos) != len(want) {
		t.Fatalf("Solvers() returned %d entries, want %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.Name != want[i] {
			t.Fatalf("Solvers()[%d] = %q, want %q", i, info.Name, want[i])
		}
		if !info.Capabilities.Cardinality && !info.Capabilities.Set {
			t.Errorf("%s declares no variant at all", info.Name)
		}
	}
	p := gen.Problem(gen.ProblemConfig{Modules: 4}, 1)
	if s, _ := solve.Get("bb"); s.Supports(p, secureview.Set) == nil {
		t.Error("bb claims to support the set variant")
	}
	if s, _ := solve.Get("bb"); s.Supports(p, secureview.Cardinality) != nil {
		t.Error("bb rejects a valid cardinality instance")
	}
	// public-mix instances are outside the engine's cost model.
	for seed := int64(0); seed < 20; seed++ {
		pm := gen.Problem(gen.ProblemConfig{Modules: 6, PublicFrac: 1}, seed)
		hasPublic := false
		for _, m := range pm.Modules {
			if m.Public {
				hasPublic = true
			}
		}
		if !hasPublic {
			continue
		}
		if s, _ := solve.Get("engine"); s.Supports(pm, secureview.Set) == nil {
			t.Error("engine claims to support an instance with public modules")
		}
		break
	}
	if _, err := solve.Solve(context.Background(), "nope", p, solve.Options{}); err == nil {
		t.Error("unknown solver name did not error")
	}
}

// TestRegistryAgreesWithDirectCalls is the compatibility contract: each
// registered wrapper must reproduce its underlying solver bit for bit
// (solutions and costs), and the exact family must agree with each other.
func TestRegistryAgreesWithDirectCalls(t *testing.T) {
	ctx := context.Background()
	for _, pc := range gen.ProblemClasses() {
		for seed := int64(0); seed < 5; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			name := fmt.Sprintf("%s/seed=%d", pc.Name, seed)

			// Set variant.
			direct, err := secureview.ExactSet(p, 1<<22)
			res, err2 := solve.Solve(ctx, "exact", p, solve.Options{Variant: secureview.Set})
			if err != nil || err2 != nil {
				t.Fatalf("%s: exact set err=%v registry err=%v", name, err, err2)
			}
			if !res.Optimal || !within(p.Cost(direct), res.Cost) {
				t.Errorf("%s: registry exact cost %g (optimal=%v), direct %g", name, res.Cost, res.Optimal, p.Cost(direct))
			}
			for _, eng := range solve.For(p, secureview.Set) {
				if eng.Name() != "engine" {
					continue
				}
				er, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: secureview.Set})
				if err != nil {
					t.Fatalf("%s: engine: %v", name, err)
				}
				if !within(er.Cost, res.Cost) {
					t.Errorf("%s: engine cost %g != exact %g", name, er.Cost, res.Cost)
				}
				if er.Counters.Checked+er.Counters.Pruned == 0 {
					t.Errorf("%s: engine reported no counters", name)
				}
			}

			// Cardinality variant.
			bbRes, err := solve.Solve(ctx, "bb", p, solve.Options{Variant: secureview.Cardinality})
			if err != nil {
				t.Fatalf("%s: bb: %v", name, err)
			}
			exRes, err := solve.Solve(ctx, "exact", p, solve.Options{Variant: secureview.Cardinality, MaxAttrs: 22})
			if err != nil {
				t.Fatalf("%s: exact card: %v", name, err)
			}
			if !within(bbRes.Cost, exRes.Cost) {
				t.Errorf("%s: bb cost %g != exact card cost %g", name, bbRes.Cost, exRes.Cost)
			}
			if bbRes.Counters.Nodes == 0 || exRes.Counters.Nodes == 0 {
				t.Errorf("%s: exact counters empty (bb=%d exact=%d)", name, bbRes.Counters.Nodes, exRes.Counters.Nodes)
			}

			// Heuristic certificates: feasible, ordered, and within their
			// own Bound when one is attached.
			for _, solver := range []string{"greedy", "lp"} {
				for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
					hr, err := solve.Solve(ctx, solver, p, solve.Options{Variant: v})
					if err != nil {
						t.Fatalf("%s: %s/%v: %v", name, solver, v, err)
					}
					if !p.Feasible(hr.Solution, v) {
						t.Errorf("%s: %s/%v solution infeasible", name, solver, v)
					}
					opt := exRes.Cost
					if v == secureview.Set {
						opt = res.Cost
					}
					if hr.Cost < opt-1e-9 {
						t.Errorf("%s: %s/%v cost %g below optimum %g", name, solver, v, hr.Cost, opt)
					}
					if hr.Bound.Factor > 0 && hr.Cost > hr.Bound.Factor*opt+1e-9*(1+hr.Cost) {
						t.Errorf("%s: %s/%v cost %g breaks its certificate %g×%g (%s)",
							name, solver, v, hr.Cost, hr.Bound.Factor, opt, hr.Bound.Theorem)
					}
					if hr.Bound.LP > opt+1e-9*(1+opt) {
						t.Errorf("%s: %s/%v LP bound %g above optimum %g", name, solver, v, hr.Bound.LP, opt)
					}
				}
			}
		}
	}
}

// TestSessionSharesDerivations asserts the singleflight contract: N
// goroutines requesting the same workflow fingerprint get the SAME derived
// problem pointer from ONE derivation.
func TestSessionSharesDerivations(t *testing.T) {
	it := gen.MustNew(gen.Config{Topology: gen.Layered, Share: 2}, 3)
	sess := solve.NewSession()
	const workers = 8
	got := make([]*secureview.Problem, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = sess.Problem(context.Background(), it.W, secureview.Set,
				it.Gamma, it.Costs, it.PrivatizeCosts)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if got[i] != got[0] {
			t.Fatalf("worker %d received a different problem pointer", i)
		}
	}
	st := sess.Stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("stats hits=%d misses=%d, want %d/1", st.Hits, st.Misses, workers-1)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats entries=%d bytes=%d, want one sized entry", st.Entries, st.Bytes)
	}
	// A different variant is a different fingerprint.
	if _, err := sess.Problem(context.Background(), it.W, secureview.Cardinality,
		it.Gamma, it.Costs, it.PrivatizeCosts); err != nil {
		t.Fatalf("cardinality derivation: %v", err)
	}
	if st := sess.Stats(); st.Misses != 2 {
		t.Fatalf("cardinality request did not miss (misses=%d)", st.Misses)
	}
	// The derived problem matches the instance's own derivation.
	direct, err := it.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if gen.ProblemFingerprint(direct) != gen.ProblemFingerprint(got[0]) {
		t.Fatal("session-derived problem differs from Instance.Derive")
	}
}

// TestSessionCompiledOracleShared: same module view, one compilation,
// shared pointer; and the compiled oracle answers like the interpreted one.
func TestSessionCompiledOracleShared(t *testing.T) {
	it := gen.MustNew(gen.Config{Topology: gen.Chain, Modules: 3}, 1)
	sess := solve.NewSession()
	mv := privacy.NewModuleView(it.W.PrivateModules()[0])
	a, err := sess.Compiled(mv)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Compiled(mv)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same module view compiled twice")
	}
}

// TestSolveBatch shards a solver matrix over the pool and checks order,
// completeness and cross-solver agreement of the results.
func TestSolveBatch(t *testing.T) {
	var jobs []solve.Job
	var problems []*secureview.Problem
	for seed := int64(0); seed < 6; seed++ {
		p := gen.Problem(gen.ProblemConfig{Modules: 5}, seed)
		problems = append(problems, p)
		for _, s := range []string{"exact", "bb", "greedy", "lp"} {
			jobs = append(jobs, solve.Job{
				Name:    fmt.Sprintf("seed%d/%s", seed, s),
				Problem: p,
				Solver:  s,
				Options: solve.Options{Variant: secureview.Cardinality},
			})
		}
	}
	results := solve.SolveBatch(context.Background(), jobs, 4)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Job.Name != jobs[i].Name {
			t.Fatalf("result %d out of order: %s != %s", i, r.Job.Name, jobs[i].Name)
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Job.Name, r.Err)
		}
	}
	// exact and bb agree per seed; heuristics are never cheaper.
	for seed := 0; seed < 6; seed++ {
		base := seed * 4
		exact, bb := results[base].Result, results[base+1].Result
		if !within(exact.Cost, bb.Cost) {
			t.Errorf("seed %d: exact %g != bb %g", seed, exact.Cost, bb.Cost)
		}
		for _, heur := range []solve.Result{results[base+2].Result, results[base+3].Result} {
			if heur.Cost < exact.Cost-1e-9 {
				t.Errorf("seed %d: %s cost %g below optimum %g", seed, heur.Solver, heur.Cost, exact.Cost)
			}
			if !problems[seed].Feasible(heur.Solution, secureview.Cardinality) {
				t.Errorf("seed %d: %s solution infeasible", seed, heur.Solver)
			}
		}
	}
}

// TestSolveBatchCancelledContext: a dead batch context fails every job with
// the context error instead of hanging or panicking.
func TestSolveBatchCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := gen.Problem(gen.ProblemConfig{Modules: 4}, 1)
	jobs := []solve.Job{
		{Name: "a", Problem: p, Solver: "exact", Options: solve.Options{Variant: secureview.Set}},
		{Name: "b", Problem: p, Solver: "greedy", Options: solve.Options{Variant: secureview.Set}},
	}
	for _, r := range solve.SolveBatch(ctx, jobs, 2) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.Job.Name, r.Err)
		}
	}
}
