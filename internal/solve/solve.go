// Package solve is the unified solver layer over the Secure-View code
// paths. The paper's optimization problem is solved in this repo by five
// historically independent implementations — exhaustive enumeration
// (ExactSet/ExactCard), branch and bound (ExactCardBB), the greedy
// (γ+1)-approximation, the LP roundings of Theorems 5/6, and the pruned
// subset-search engine of internal/search — each with its own signature and
// budget convention. This package puts one interface in front of all of
// them:
//
//   - Solver: Solve(ctx, *secureview.Problem, Options) (Result, error),
//     with uniform node/time budgets, worker counts and rounding seeds, and
//     a Result carrying the solution, a bound certificate (the Theorem 6/7
//     approximation factors, the LP lower bound) and search counters.
//   - a registry keyed by solver name with per-(problem, variant)
//     capability checks, so callers enumerate what is applicable instead of
//     hard-coding call sites.
//   - Session: fingerprint-keyed caches of derived problems and compiled
//     internal/oracle tables, so repeated requests against the same
//     workflow share immutable state across goroutines.
//   - SolveBatch: a concurrent front-end sharding many (problem, solver)
//     jobs over a GOMAXPROCS pool with per-job deadlines.
//
// Cancellation contract: every registered solver observes ctx within one
// pruning epoch (one search-tree node, candidate mask, or possible-world
// assignment) and returns ctx.Err() on expiry. Exact solvers additionally
// return their best incumbent alongside the error, marked Result.Partial.
package solve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"secureview/internal/search"
	"secureview/internal/secureview"
)

// Options is the uniform solver configuration. The zero value is usable:
// defaults match the budgets the differential harness has always used.
type Options struct {
	// Variant selects the constraint encoding the solver runs against.
	Variant secureview.Variant
	// NodeBudget caps search-tree nodes for the budgeted exact solvers
	// (default 1<<22). Exhaustion returns an error wrapping
	// secureview.ErrNodeBudget.
	NodeBudget int
	// MaxAttrs caps the useful-attribute count for exact cardinality
	// enumeration (default 16).
	MaxAttrs int
	// Workers is the engine solver's worker-pool size (0 = GOMAXPROCS).
	Workers int
	// FrontierCap bounds the engine solver's domination-frontier antichains
	// (0 = the search package default). Larger caps prune more but cost more
	// per candidate; overflow is reported in Counters.FrontierDropped.
	// Negative values are rejected by the Solve front door — the search
	// layer would silently substitute its default, masking a caller bug.
	FrontierCap int
	// Resume seeds the engine solver with warm-start state exported by an
	// earlier run over the same attribute universe (Result.Frontier).
	// Safety verdicts are cost-independent, so a frontier stays valid across
	// cost-only edits of a problem; a mismatched universe is conservatively
	// ignored and the solve degrades to a cold run (Result.Resumed reports
	// which happened). Solvers other than the engine ignore it.
	Resume *search.Frontier
	// DisableCollapse turns off the engine solver's attribute equivalence-
	// class collapsing (requirement-interchangeable, equal-cost attributes
	// explored only in canonical combinations). On by default because it
	// preserves the exact (cost, lex) optimum; the differential harness flips
	// this to cross-check.
	DisableCollapse bool
	// Seed seeds the randomized cardinality LP rounding (default 1).
	Seed int64
	// Trials repeats the randomized rounding, keeping the cheapest feasible
	// outcome (default 5).
	Trials int
	// Timeout bounds one Solve call (0 = none); it is applied by the
	// package-level Solve front door and by SolveBatch, per job.
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.NodeBudget == 0 {
		o.NodeBudget = 1 << 22
	}
	if o.MaxAttrs == 0 {
		o.MaxAttrs = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials == 0 {
		o.Trials = 5
	}
	return o
}

// Bound is the certificate a solver attaches to its result: what the
// returned cost is provably within.
type Bound struct {
	// LP is the LP-relaxation optimum when the solver computed one — a
	// lower bound on OPT (0 when not applicable).
	LP float64
	// Factor is the proven approximation factor relative to OPT: 1 for
	// exact solvers, ℓmax for the set-constraint rounding (Theorem 6), the
	// attribute multiplicity for greedy on all-private instances
	// (Theorem 7). Zero means no deterministic factor is certified (e.g.
	// the cardinality rounding's O(log n) guarantee holds w.h.p. only).
	Factor float64
	// Theorem names the paper result backing the certificate.
	Theorem string
}

// Counters reports how a solver spent its budget.
type Counters struct {
	// Nodes counts exact-search tree nodes or enumerated candidate masks.
	Nodes int
	// Checked and Pruned are the engine solver's safety-test/pruning split
	// (Checked+Pruned = candidates in scope).
	Checked int
	// Pruned counts engine candidates eliminated without a safety test
	// (including symmetry-collapsed candidates).
	Pruned int
	// OraclePasses counts engine oracle invocations; with a batch oracle one
	// pass answers many candidates, so OraclePasses <= Checked.
	OraclePasses int
	// BatchSize is the largest batch the engine answered in one oracle pass
	// (1 without batching).
	BatchSize int
	// FrontierDropped counts masks the engine's domination frontiers evicted
	// at their cap — lost pruning power, never lost correctness. A non-zero
	// value is purely a performance signal (raise FrontierCap if warm-start
	// hit rates or prune rates matter); results remain exact regardless.
	FrontierDropped int
	// ResumedSafe and ResumedUnsafe count warm-start masks imported from
	// Options.Resume into the engine's domination stores (0 on cold runs).
	ResumedSafe   int
	ResumedUnsafe int
	// MemoHits counts candidates answered from the warm-start verdict memo
	// instead of the oracle.
	MemoHits int
}

// Result is a solver outcome.
type Result struct {
	// Solver and Variant echo what produced the result.
	Solver  string
	Variant secureview.Variant
	// Solution is the returned (hidden, privatized) pair; Cost its total
	// cost under the problem's cost assignment.
	Solution secureview.Solution
	Cost     float64
	// Optimal is true when the solver proved optimality.
	Optimal bool
	// Partial is true when the solution is a best-effort incumbent returned
	// alongside a budget or deadline error (always feasible when present).
	Partial bool
	// Bound is the attached certificate.
	Bound Bound
	// Counters reports search effort.
	Counters Counters
	// Resumed is true when the engine solver accepted Options.Resume and
	// actually seeded its search from it (false on cold runs and when the
	// frontier's universe did not match).
	Resumed bool
	// Frontier is the warm-start state the engine solver exported for this
	// problem's attribute universe — feed it back via Options.Resume after a
	// cost-only edit. Nil for every other solver and for cancelled runs.
	Frontier *search.Frontier
}

// Capabilities declares what a solver can do, as data: which variants it
// accepts, whether it proves optimality or certifies an approximation
// factor, and the structural limits it imposes. Supports checks and the
// /v1/solvers endpoint both derive from this one declaration, so a solver
// cannot advertise one thing and enforce another.
type Capabilities struct {
	// Cardinality / Set report which constraint variants the solver accepts.
	Cardinality bool `json:"cardinality"`
	Set         bool `json:"set"`
	// Exact is true when the solver proves optimality on every instance it
	// accepts (modulo budget exhaustion, reported as a typed error).
	Exact bool `json:"exact"`
	// Certified is true when results carry a non-trivial Bound certificate
	// (Factor > 0) at least on the instances the capability check admits.
	Certified bool `json:"certified"`
	// AllPrivateOnly is true when the solver rejects instances with public
	// modules (its cost model has no privatization closure).
	AllPrivateOnly bool `json:"allPrivateOnly"`
	// MaxUniverse caps the useful-attribute count (0 = uncapped). Violations
	// are reported as a typed error wrapping secureview.ErrNodeBudget, so
	// harnesses treat "declared too big for this solver" like any other
	// budget exhaustion.
	MaxUniverse int `json:"maxUniverse,omitempty"`
	// Factor describes the certified approximation factor in prose ("1",
	// "H(d)·μ vs LP", ...), for display only.
	Factor string `json:"factor,omitempty"`
}

// check is the shared Supports implementation: validate the variant against
// the declaration, then the structural limits.
func (c Capabilities) check(name string, p *secureview.Problem, v secureview.Variant) error {
	switch v {
	case secureview.Cardinality:
		if !c.Cardinality {
			return fmt.Errorf("solve: %s does not handle the cardinality variant", name)
		}
	case secureview.Set:
		if !c.Set {
			return fmt.Errorf("solve: %s does not handle the set variant", name)
		}
	default:
		return fmt.Errorf("solve: unknown variant %v", v)
	}
	if err := p.Validate(v); err != nil {
		return err
	}
	if c.AllPrivateOnly {
		for _, m := range p.Modules {
			if m.Public {
				return fmt.Errorf("solve: %s requires an all-private instance (public module %q)", name, m.Name)
			}
		}
	}
	if c.MaxUniverse > 0 {
		if k := len(p.UsefulAttributes(v)); k > c.MaxUniverse {
			return fmt.Errorf("solve: %s universe %d exceeds %d attributes: %w",
				name, k, c.MaxUniverse, secureview.ErrNodeBudget)
		}
	}
	return nil
}

// Solver is one registered Secure-View solver.
type Solver interface {
	// Name is the registry key.
	Name() string
	// Capabilities declares variants, certification and structural limits.
	Capabilities() Capabilities
	// Supports reports whether the solver can handle (p, variant); a
	// non-nil error explains why not (wrong variant, public modules,
	// universe too large, ...). Implementations derive this from
	// Capabilities().check plus any instance-shape checks of their own.
	Supports(p *secureview.Problem, v secureview.Variant) error
	// Solve runs the solver. Implementations observe ctx within one pruning
	// epoch and return ctx.Err() on expiry (with Result.Partial set when an
	// incumbent is available).
	Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Solver)
)

// Register adds a solver under its name; re-registering a name replaces the
// previous solver (tests use this to inject probes).
func Register(s Solver) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[s.Name()] = s
}

// Deregister removes a solver by name (tests use this to clean up injected
// probes). Removing an unknown name is a no-op.
func Deregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
}

// Get returns the named solver.
func Get(name string) (Solver, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered solver names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Info pairs a solver name with its declared capabilities; it is the
// wire shape of /v1/solvers and the -solvers CLI listing.
type Info struct {
	Name         string       `json:"name"`
	Capabilities Capabilities `json:"capabilities"`
}

// Solvers returns every registered solver's Info, sorted by name.
func Solvers() []Info {
	names := Names()
	out := make([]Info, 0, len(names))
	for _, n := range names {
		if s, ok := Get(n); ok {
			out = append(out, Info{Name: n, Capabilities: s.Capabilities()})
		}
	}
	return out
}

// For returns, in name order, every registered solver that supports
// (p, variant).
func For(p *secureview.Problem, v secureview.Variant) []Solver {
	var out []Solver
	for _, n := range Names() {
		s, _ := Get(n)
		if s != nil && s.Supports(p, v) == nil {
			out = append(out, s)
		}
	}
	return out
}

// Solve is the front door: it resolves the named solver, checks capability,
// applies Options.Timeout as a context deadline, and runs it.
func Solve(ctx context.Context, solver string, p *secureview.Problem, opts Options) (Result, error) {
	if opts.FrontierCap < 0 {
		// The search layer maps non-positive caps to its default; surfacing
		// the bug here beats silently searching with a different cap than
		// the caller asked for.
		return Result{}, fmt.Errorf("solve: negative FrontierCap %d", opts.FrontierCap)
	}
	s, ok := Get(solver)
	if !ok {
		return Result{}, fmt.Errorf("solve: unknown solver %q (have %v)", solver, Names())
	}
	if err := s.Supports(p, opts.Variant); err != nil {
		return Result{}, err
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	return s.Solve(ctx, p, opts)
}
