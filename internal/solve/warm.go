package solve

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"secureview/internal/search"
	"secureview/internal/secureview"
)

// ProblemFingerprint is the warm-start cache key: a hex-encoded SHA-256 of
// the derived problem's structure — module interfaces, visibility and
// requirement lists, plus the variant (it selects the feasibility predicate
// and the useful-attribute universe). Costs and PrivatizeCost are
// deliberately excluded: safety verdicts never read them, so two requests
// that differ only in costs share a fingerprint and the later one can
// warm-start from the earlier one's frontier. Set-requirement attribute
// lists are hashed in sorted order because derivation emits them in map
// order; the fingerprint must be stable across re-derivations of the same
// workflow.
func ProblemFingerprint(p *secureview.Problem, v secureview.Variant) string {
	h := sha256.New()
	hashStr(h, 'V', "solve/warm/v1")
	hashU64(h, uint64(v))
	hashU64(h, uint64(len(p.Modules)))
	sorted := func(names []string) []string {
		out := append([]string(nil), names...)
		sort.Strings(out)
		return out
	}
	for i := range p.Modules {
		m := &p.Modules[i]
		hashStr(h, 'm', m.Name)
		pub := uint64(0)
		if m.Public {
			pub = 1
		}
		hashU64(h, pub)
		hashU64(h, uint64(len(m.Inputs)))
		for _, a := range m.Inputs {
			hashStr(h, 'i', a)
		}
		hashU64(h, uint64(len(m.Outputs)))
		for _, a := range m.Outputs {
			hashStr(h, 'o', a)
		}
		hashU64(h, uint64(len(m.CardList)))
		for _, r := range m.CardList {
			hashU64(h, uint64(r.Alpha))
			hashU64(h, uint64(r.Beta))
		}
		hashU64(h, uint64(len(m.SetList)))
		for _, r := range m.SetList {
			in, out := sorted(r.In), sorted(r.Out)
			hashU64(h, uint64(len(in)))
			for _, a := range in {
				hashStr(h, 's', a)
			}
			hashU64(h, uint64(len(out)))
			for _, a := range out {
				hashStr(h, 't', a)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Warm returns the warm-start frontier stored under the fingerprint, or nil
// when none is cached (never stored, or evicted under memory pressure — the
// caller falls back to a cold solve either way). Hits and misses are
// tracked in WarmHits/WarmMisses, separate from the derivation counters.
func (s *Session) Warm(fp string) *search.Frontier {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.warm[fp]
	if !ok {
		s.warmMisses++
		return nil
	}
	s.warmHits++
	s.touchLocked(e)
	return e.f
}

// StoreWarm caches f under the fingerprint, replacing any previous frontier
// for it, and participates in the session's LRU byte budget via
// Frontier.MemSize. Frontiers are immutable, so a pointer already handed
// out by Warm survives eviction of its entry. A nil frontier is ignored.
func (s *Session) StoreWarm(fp string, f *search.Frontier) {
	if f == nil {
		return
	}
	size := entrySize + int64(len(fp)) + f.MemSize()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.warm[fp]
	if !ok {
		e = &sessionEntry{key: fp, kind: kindWarm}
		s.warm[fp] = e
	}
	s.touchLocked(e)
	if e.accounted {
		s.bytes -= e.size
	}
	e.f = f
	e.done = true
	e.size = size
	e.accounted = true
	s.bytes += size
	s.evictOverLocked()
}
