package solve

import (
	"testing"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/secureview"
	"secureview/internal/workflow"
)

func identityWorkflow(t *testing.T, ins, outs []string) *workflow.Workflow {
	t.Helper()
	w, err := workflow.New("fp", module.Identity("m", ins, outs))
	if err != nil {
		t.Fatalf("workflow: %v", err)
	}
	return w
}

// TestWorkflowKeyAdversarialNames is the regression test for the delimiter
// collisions: before length-prefixing, workflowKey serialized cost entries
// as "c:<name>=<value>;" and privatize entries as "p:<name>=<value>;", so a
// name containing those delimiter bytes could replay another request's
// byte stream and silently share its cache entry — serving a derived
// problem for the WRONG cost assignment. Each pair below collided under
// the old encoding; with length prefixes every string's bytes are bounded
// by its recorded length, so the keys must differ.
func TestWorkflowKeyAdversarialNames(t *testing.T) {
	w := identityWorkflow(t, []string{"a", "b"}, []string{"y", "z"})

	t.Run("cost name forging a second cost entry", func(t *testing.T) {
		// Old encoding: both serialize the cost section as "c:a=1;c:b=1;".
		k1 := workflowKey(w, secureview.Set, 2, privacy.Costs{"a=1;c:b": 1}, nil)
		k2 := workflowKey(w, secureview.Set, 2, privacy.Costs{"a": 1, "b": 1}, nil)
		if k1 == k2 {
			t.Fatal("cost maps {a=1;c:b: 1} and {a: 1, b: 1} share a fingerprint")
		}
	})

	t.Run("cost name forging a privatize entry across the section boundary", func(t *testing.T) {
		// Old encoding: both serialize as "c:a=1;p:m=1;" — a hiding cost
		// masquerading as a privatization cost.
		k1 := workflowKey(w, secureview.Set, 2, privacy.Costs{"a=1;p:m": 1}, nil)
		k2 := workflowKey(w, secureview.Set, 2, privacy.Costs{"a": 1}, map[string]float64{"m": 1})
		if k1 == k2 {
			t.Fatal("a cost-name injection reaches into the privatize section")
		}
	})

	t.Run("attribute names shifting the input list", func(t *testing.T) {
		// "a;i" as one input vs "a" and "i" as two: the old per-name
		// encoding made both input sections read "i:a;i:...", relying on
		// the schema and row sections to disagree. Length prefixes make
		// the input lists themselves injective.
		w1 := identityWorkflow(t, []string{"a;i"}, []string{"z"})
		w2 := identityWorkflow(t, []string{"a", "i"}, []string{"z", "z2"})
		k1 := workflowKey(w1, secureview.Set, 2, privacy.Costs{}, nil)
		k2 := workflowKey(w2, secureview.Set, 2, privacy.Costs{}, nil)
		if k1 == k2 {
			t.Fatal("input lists [a;i] and [a i] share a fingerprint")
		}
	})

	t.Run("attribute name forging a schema entry", func(t *testing.T) {
		// "a=2;d:b" with domain 2 serialized, under the old encoding, to
		// the same schema section as two boolean attributes a and b.
		w1 := identityWorkflow(t, []string{"a=2;d:b"}, []string{"z"})
		w2 := identityWorkflow(t, []string{"a", "b"}, []string{"z", "z2"})
		k1 := workflowKey(w1, secureview.Set, 2, privacy.Costs{}, nil)
		k2 := workflowKey(w2, secureview.Set, 2, privacy.Costs{}, nil)
		if k1 == k2 {
			t.Fatal("schema sections collide through an = injection")
		}
	})

	t.Run("distinct requests still get distinct keys", func(t *testing.T) {
		keys := map[string]string{}
		add := func(label, k string) {
			if prev, dup := keys[k]; dup {
				t.Fatalf("%s collides with %s", label, prev)
			}
			keys[k] = label
		}
		add("set/2", workflowKey(w, secureview.Set, 2, privacy.Costs{"a": 1}, nil))
		add("card/2", workflowKey(w, secureview.Cardinality, 2, privacy.Costs{"a": 1}, nil))
		add("set/3", workflowKey(w, secureview.Set, 3, privacy.Costs{"a": 1}, nil))
		add("set/2/cost2", workflowKey(w, secureview.Set, 2, privacy.Costs{"a": 2}, nil))
		add("set/2/priv", workflowKey(w, secureview.Set, 2, privacy.Costs{"a": 1}, map[string]float64{"m": 1}))
	})

	t.Run("key is stable across calls", func(t *testing.T) {
		c := privacy.Costs{"a": 1.5, "b": 2.5}
		p := map[string]float64{"m": 3}
		if workflowKey(w, secureview.Set, 2, c, p) != workflowKey(w, secureview.Set, 2, c, p) {
			t.Fatal("workflowKey is not deterministic")
		}
	})
}
