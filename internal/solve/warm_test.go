package solve_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/privacy"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// editCosts returns a deterministic cost-only rewrite of p: every attribute
// gets a new positive cost derived from its rank, shuffling which optima are
// cheap without touching structure.
func editCosts(p *secureview.Problem, round int) privacy.Costs {
	names := make([]string, 0, len(p.Costs))
	for a := range p.Costs {
		names = append(names, a)
	}
	sort.Strings(names)
	out := make(privacy.Costs, len(names))
	for i, a := range names {
		out[a] = float64((i*7+round*3)%5) + 0.5
	}
	return out
}

// TestProblemFingerprintCostOnly pins the warm-start key contract: the
// fingerprint ignores costs (so cost-only edits chain through one warm
// entry) but separates variants and structures.
func TestProblemFingerprintCostOnly(t *testing.T) {
	p := gen.Problem(gen.ProblemClasses()[0].Cfg, 1)
	fp := solve.ProblemFingerprint(p, secureview.Set)
	if len(fp) != 64 || strings.ContainsAny(fp, "{}\"\n") {
		t.Fatalf("fingerprint not a hex digest: %q", fp)
	}

	edited := &secureview.Problem{Modules: p.Modules, Costs: editCosts(p, 1)}
	if got := solve.ProblemFingerprint(edited, secureview.Set); got != fp {
		t.Fatalf("cost-only edit changed the fingerprint: %s vs %s", got, fp)
	}
	if got := solve.ProblemFingerprint(p, secureview.Cardinality); got == fp {
		t.Fatal("variants share a fingerprint")
	}
	other := gen.Problem(gen.ProblemClasses()[0].Cfg, 2)
	if got := solve.ProblemFingerprint(other, secureview.Set); got == fp {
		t.Fatal("distinct structures share a fingerprint")
	}
}

// TestSessionWarmCache covers the warm-state store: round-trip, replacement,
// the dedicated hit/miss counters (which must not leak into the derivation
// Hits/Misses the CI smoke pins), and eviction under a byte budget.
func TestSessionWarmCache(t *testing.T) {
	ctx := context.Background()
	p := gen.Problem(gen.ProblemClasses()[0].Cfg, 1)
	base, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: secureview.Set})
	if err != nil {
		t.Fatal(err)
	}
	if base.Frontier == nil {
		t.Fatal("engine exported no frontier")
	}
	fp := solve.ProblemFingerprint(p, secureview.Set)

	sess := solve.NewSession()
	if sess.Warm(fp) != nil {
		t.Fatal("empty session returned a frontier")
	}
	sess.StoreWarm(fp, base.Frontier)
	if got := sess.Warm(fp); got != base.Frontier {
		t.Fatalf("Warm returned %p, want the stored frontier %p", got, base.Frontier)
	}
	st := sess.Stats()
	if st.WarmHits != 1 || st.WarmMisses != 1 {
		t.Fatalf("warm hits/misses = %d/%d, want 1/1", st.WarmHits, st.WarmMisses)
	}
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("warm traffic leaked into derivation counters: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("occupancy entries=%d bytes=%d after one store", st.Entries, st.Bytes)
	}

	// Replacing a fingerprint swaps the frontier without double accounting.
	warm, err := solve.Solve(ctx, "engine",
		&secureview.Problem{Modules: p.Modules, Costs: editCosts(p, 1)},
		solve.Options{Variant: secureview.Set, Resume: base.Frontier})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Stats().Bytes
	sess.StoreWarm(fp, warm.Frontier)
	sess.StoreWarm(fp, warm.Frontier)
	after := sess.Stats()
	if after.Entries != 1 {
		t.Fatalf("replacement grew entries to %d", after.Entries)
	}
	if diff := after.Bytes - before; diff > warm.Frontier.MemSize() {
		t.Fatalf("replacement double-accounted: bytes grew %d", diff)
	}
	if got := sess.Warm(fp); got != warm.Frontier {
		t.Fatal("replacement did not take")
	}

	// A budget far below the frontier's size evicts it immediately; the
	// next lookup is a clean miss (cold-solve fallback for callers).
	tiny := solve.NewSessionBytes(64)
	tiny.StoreWarm(fp, base.Frontier)
	if got := tiny.Warm(fp); got != nil {
		t.Fatal("64-byte budget retained a frontier bigger than itself")
	}
	tst := tiny.Stats()
	if tst.Evictions == 0 || tst.Bytes > tst.MaxBytes {
		t.Fatalf("tiny session stats %+v", tst)
	}
}

// TestSessionDeltaDerive: a second derivation of the same workflow under new
// costs must be served by re-costing the cached problem (DeltaDerives=1),
// and the re-costed problem must be indistinguishable from a fresh
// derivation with those costs.
func TestSessionDeltaDerive(t *testing.T) {
	ctx := context.Background()
	it := tinyInstance(t, 7)
	sess := solve.NewSession()
	if _, err := sess.Problem(ctx, it.W, secureview.Cardinality,
		it.Gamma, it.Costs, it.PrivatizeCosts); err != nil {
		t.Fatal(err)
	}
	edited := make(privacy.Costs, len(it.Costs))
	for i, a := range it.W.Schema().Names() {
		edited[a] = float64((i*5)%3) + 1.5
	}
	got, err := sess.Problem(ctx, it.W, secureview.Cardinality,
		it.Gamma, edited, it.PrivatizeCosts)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.DeltaDerives != 1 || st.Misses != 2 {
		t.Fatalf("deltaDerives=%d misses=%d, want 1/2 (cost-only edit must re-cost, and still count as a miss)",
			st.DeltaDerives, st.Misses)
	}
	fresh, err := secureview.DeriveCardProblem(it.W, it.Gamma, edited, it.PrivatizeCosts)
	if err != nil {
		t.Fatal(err)
	}
	if gen.ProblemFingerprint(got) != gen.ProblemFingerprint(fresh) {
		t.Fatal("delta-derived problem differs from a fresh derivation under the same costs")
	}

	// A structural change (different Γ) must NOT take the delta path. The
	// derivation may legitimately fail (infeasible at the higher Γ) — a
	// delta hit would instead have silently returned the cached Γ problem.
	if _, err := sess.Problem(ctx, it.W, secureview.Cardinality,
		it.Gamma+1, edited, it.PrivatizeCosts); err == nil {
		dp, err := secureview.DeriveCardProblem(it.W, it.Gamma+1, edited, it.PrivatizeCosts)
		if err != nil {
			t.Fatalf("session derived at Γ+1 where direct derivation fails: %v", err)
		}
		_ = dp
	}
	if st := sess.Stats(); st.DeltaDerives != 1 {
		t.Fatalf("gamma change was delta-derived (deltaDerives=%d)", st.DeltaDerives)
	}
}

// TestEngineWarmResumeMatchesCold: per generated class, a warm re-solve
// after a cost-only edit must return the identical (cost, lex) optimum a
// cold solve does, report Resumed, and keep the candidate-space accounting.
func TestEngineWarmResumeMatchesCold(t *testing.T) {
	ctx := context.Background()
	eng, _ := solve.Get("engine")
	for _, pc := range gen.ProblemClasses() {
		p := gen.Problem(pc.Cfg, 3)
		for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
			if eng.Supports(p, v) != nil {
				continue
			}
			name := fmt.Sprintf("%s/%s", pc.Name, v)
			base, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: v})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if base.Frontier == nil || base.Resumed {
				t.Fatalf("%s: cold run frontier=%v resumed=%v", name, base.Frontier, base.Resumed)
			}
			ep := &secureview.Problem{Modules: p.Modules, Costs: editCosts(p, 2)}
			cold, err := solve.Solve(ctx, "engine", ep, solve.Options{Variant: v})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			warm, err := solve.Solve(ctx, "engine", ep,
				solve.Options{Variant: v, Resume: base.Frontier})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !warm.Resumed {
				t.Fatalf("%s: warm solve did not resume", name)
			}
			if !warm.Solution.Hidden.Equal(cold.Solution.Hidden) || !within(warm.Cost, cold.Cost) {
				t.Fatalf("%s: warm optimum %v (%g) != cold %v (%g)", name,
					warm.Solution.Hidden.Sorted(), warm.Cost, cold.Solution.Hidden.Sorted(), cold.Cost)
			}
			space := 1 << len(ep.UsefulAttributes(v))
			if warm.Counters.Checked+warm.Counters.Pruned != space {
				t.Fatalf("%s: warm Checked %d + Pruned %d != %d", name,
					warm.Counters.Checked, warm.Counters.Pruned, space)
			}
			if warm.Counters.ResumedSafe+warm.Counters.ResumedUnsafe+warm.Counters.MemoHits == 0 {
				t.Fatalf("%s: resume imported nothing (%+v)", name, warm.Counters)
			}
		}
	}
}

// TestSolveRejectsNegativeFrontierCap: the search layer silently maps
// non-positive caps to its default, so the solve front door must refuse
// negative values instead of searching under a cap the caller never asked
// for.
func TestSolveRejectsNegativeFrontierCap(t *testing.T) {
	p := gen.Problem(gen.ProblemClasses()[0].Cfg, 1)
	_, err := solve.Solve(context.Background(), "engine", p,
		solve.Options{Variant: secureview.Set, FrontierCap: -1})
	if err == nil || !strings.Contains(err.Error(), "FrontierCap") {
		t.Fatalf("negative FrontierCap accepted (err=%v)", err)
	}
}

// TestSessionWarmConcurrent hammers the warm cache from many goroutines
// under a small budget — the race detector owns the assertions; the test
// itself only checks the byte accounting never goes negative or over
// budget.
func TestSessionWarmConcurrent(t *testing.T) {
	ctx := context.Background()
	p := gen.Problem(gen.ProblemClasses()[0].Cfg, 1)
	base, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: secureview.Set})
	if err != nil {
		t.Fatal(err)
	}
	sess := solve.NewSessionBytes(4 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fp := fmt.Sprintf("fp-%d", (g+i)%12)
				if i%3 == 0 {
					sess.StoreWarm(fp, base.Frontier)
				} else {
					sess.Warm(fp)
				}
			}
		}(g)
	}
	wg.Wait()
	st := sess.Stats()
	if st.Bytes < 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("byte accounting off after concurrent warm traffic: %+v", st)
	}
}
