package solve_test

// Tests for the certified approximation tier and the portfolio meta-solver:
// the mega regime (universes far beyond 2^k exact search) must yield
// feasible, certificate-true solutions fast; the small regime must still
// yield proven optima through the portfolio; and losing racers must be
// observably cancelled, not abandoned.

import (
	"context"
	"errors"
	"testing"
	"time"

	"secureview/internal/gen"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// TestApproxCertifiedOnMega: on every mega class, the exact solver declines
// with the typed budget error while each applicable approximation solver
// returns a feasible solution whose certificate holds arithmetically —
// cost ≤ Factor × LP with a positive lower bound — well inside the 5s
// acceptance budget per solver.
func TestApproxCertifiedOnMega(t *testing.T) {
	ctx := context.Background()
	for _, pc := range gen.MegaProblemClasses() {
		p := gen.Problem(pc.Cfg, 1)
		if k := len(p.UsefulAttributes(secureview.Set)); k < 40 {
			t.Fatalf("%s: universe %d is not mega (want ≥ 40)", pc.Name, k)
		}
		for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
			if p.Validate(v) != nil {
				continue
			}
			vn := map[secureview.Variant]string{secureview.Set: "set", secureview.Cardinality: "card"}[v]
			if _, err := solve.Solve(ctx, "exact", p, solve.Options{Variant: v}); !errors.Is(err, secureview.ErrNodeBudget) {
				t.Errorf("%s/%s: exact err = %v, want typed ErrNodeBudget", pc.Name, vn, err)
			}
			for _, solver := range []string{"approx-setcover", "approx-labelcover"} {
				s, _ := solve.Get(solver)
				if s.Supports(p, v) != nil {
					continue
				}
				start := time.Now()
				res, err := solve.Solve(ctx, solver, p, solve.Options{Variant: v})
				elapsed := time.Since(start)
				if err != nil {
					t.Fatalf("%s/%s: %s: %v", pc.Name, vn, solver, err)
				}
				if elapsed > 5*time.Second {
					t.Errorf("%s/%s: %s took %v (budget 5s)", pc.Name, vn, solver, elapsed)
				}
				if !p.Feasible(res.Solution, v) {
					t.Errorf("%s/%s: %s solution infeasible", pc.Name, vn, solver)
				}
				if res.Bound.Factor <= 0 || res.Bound.LP <= 0 {
					t.Errorf("%s/%s: %s returned no certificate: %+v", pc.Name, vn, solver, res.Bound)
				}
				if gap := solve.CertifiedGap(res); gap > 1e-6*(1+res.Cost) {
					t.Errorf("%s/%s: %s cost %g breaks its certificate %g×%g (gap %g)",
						pc.Name, vn, solver, res.Cost, res.Bound.Factor, res.Bound.LP, gap)
				}
			}
		}
	}
}

// TestPortfolioOptimalOnSmallClasses: whenever an exact racer can finish,
// the portfolio must return its proven optimum, tagged with the winning
// inner solver.
func TestPortfolioOptimalOnSmallClasses(t *testing.T) {
	ctx := context.Background()
	for _, pc := range gen.ProblemClasses() {
		for seed := int64(0); seed < 3; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
				if p.Validate(v) != nil {
					continue
				}
				exact, err := solve.Solve(ctx, "exact", p, solve.Options{Variant: v})
				if err != nil {
					t.Fatalf("%s/%d: exact: %v", pc.Name, seed, err)
				}
				res, err := solve.Solve(ctx, "portfolio", p, solve.Options{Variant: v})
				if err != nil {
					t.Fatalf("%s/%d: portfolio: %v", pc.Name, seed, err)
				}
				if !res.Optimal {
					t.Errorf("%s/%d: portfolio did not prove optimality on a small instance", pc.Name, seed)
				}
				if d := res.Cost - exact.Cost; d > 1e-9*(1+res.Cost) || -d > 1e-9*(1+res.Cost) {
					t.Errorf("%s/%d: portfolio cost %g != exact optimum %g", pc.Name, seed, res.Cost, exact.Cost)
				}
				if len(res.Solver) <= len("portfolio/") || res.Solver[:len("portfolio/")] != "portfolio/" {
					t.Errorf("%s/%d: portfolio result not tagged with winner: %q", pc.Name, seed, res.Solver)
				}
				if !p.Feasible(res.Solution, v) {
					t.Errorf("%s/%d: portfolio solution infeasible", pc.Name, seed)
				}
			}
		}
	}
}

// TestPortfolioCertifiedOnMega: with no exact finisher, the portfolio
// returns the cheapest certified result, and it satisfies its own
// certificate.
func TestPortfolioCertifiedOnMega(t *testing.T) {
	ctx := context.Background()
	for _, pc := range gen.MegaProblemClasses() {
		p := gen.Problem(pc.Cfg, 2)
		start := time.Now()
		res, err := solve.Solve(ctx, "portfolio", p, solve.Options{Variant: secureview.Set})
		if err != nil {
			t.Fatalf("%s: portfolio: %v", pc.Name, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("%s: portfolio took %v on a mega instance", pc.Name, elapsed)
		}
		if res.Optimal {
			t.Errorf("%s: portfolio claims optimality on a mega instance (solver %s)", pc.Name, res.Solver)
		}
		if !p.Feasible(res.Solution, secureview.Set) {
			t.Errorf("%s: portfolio solution infeasible", pc.Name)
		}
		if res.Bound.Factor <= 0 || res.Bound.LP <= 0 {
			t.Errorf("%s: portfolio returned an uncertified result: %+v", pc.Name, res.Bound)
		}
		if gap := solve.CertifiedGap(res); gap > 1e-6*(1+res.Cost) {
			t.Errorf("%s: portfolio cost %g breaks certificate %g×%g", pc.Name, res.Cost, res.Bound.Factor, res.Bound.LP)
		}
	}
}

// blockingProbe is a registered racer that blocks until its context dies
// and reports the cancellation on a channel — the observable proof that
// the portfolio cancels losers instead of abandoning them.
type blockingProbe struct {
	cancelled chan struct{}
}

func (b *blockingProbe) Name() string { return "test-blocking-probe" }

func (b *blockingProbe) Capabilities() solve.Capabilities {
	return solve.Capabilities{Cardinality: true, Set: true}
}

func (b *blockingProbe) Supports(p *secureview.Problem, v secureview.Variant) error { return nil }

func (b *blockingProbe) Solve(ctx context.Context, p *secureview.Problem, opts solve.Options) (solve.Result, error) {
	<-ctx.Done()
	close(b.cancelled)
	return solve.Result{Solver: b.Name(), Variant: opts.Variant}, ctx.Err()
}

// TestPortfolioCancelsLosers: an inner racer that never finishes on its own
// must observe cancellation as soon as another racer proves optimality, and
// the portfolio must return that optimum without waiting the loser out.
func TestPortfolioCancelsLosers(t *testing.T) {
	probe := &blockingProbe{cancelled: make(chan struct{})}
	solve.Register(probe)
	t.Cleanup(func() { solve.Deregister(probe.Name()) })

	p := gen.Problem(gen.ProblemConfig{Modules: 4}, 1)
	res, err := solve.Solve(context.Background(), "portfolio", p, solve.Options{Variant: secureview.Set})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	if !res.Optimal {
		t.Fatalf("portfolio did not return the exact winner: %+v", res)
	}
	select {
	case <-probe.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing racer was never cancelled")
	}
}

// TestApproxSolversCtxCancelled: the approximation tier observes a dead
// context like every other registered solver — a clean ctx.Err, no partial
// garbage. Runs against a mega instance so the reduction and greedy loops
// actually start. (Name matches the CI cancellation smoke's 'Deadline|Ctx'
// filter.)
func TestApproxSolversCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := gen.Problem(gen.MegaProblemClasses()[0].Cfg, 1)
	for _, solver := range []string{"approx-setcover", "approx-labelcover", "portfolio"} {
		if _, err := solve.Solve(ctx, solver, p, solve.Options{Variant: secureview.Set}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", solver, err)
		}
	}
}

// TestPortfolioDeadlineOnMega: a 50ms deadline reaches every racer on a
// mega instance and surfaces promptly. A certified result that happened to
// finish in time is acceptable; an error must be the deadline, typed.
func TestPortfolioDeadlineOnMega(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	p := gen.Problem(gen.MegaProblemClasses()[1].Cfg, 3)
	start := time.Now()
	_, err := solve.Solve(ctx, "portfolio", p, solve.Options{Variant: secureview.Cardinality})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("portfolio took %v to notice a 50ms deadline", elapsed)
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want nil or context.DeadlineExceeded", err)
	}
}
