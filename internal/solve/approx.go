package solve

// approx.go is the certified approximation tier: solvers that route a
// Secure-View instance through the forward reductions of
// internal/reductions onto classical weighted set cover / label cover, run
// the combopt approximation algorithms there, and pull the cover back. They
// exist for the scale regime the exact tier declares itself out of — mega
// workflows whose useful-attribute universe is far beyond 2^k enumeration —
// and every result carries a certificate that is sound BY CONSTRUCTION
// relative to the reported lower bound: Result.Cost ≤ Bound.Factor ×
// Bound.LP always holds, so the differential harness can assert it on
// instances where no exact optimum will ever be known.
//
// The portfolio meta-solver races the exact tier against the approximation
// tier under one context: the first solver to prove optimality wins and the
// rest are cancelled mid-search; when nobody proves optimality (the mega
// regime), the cheapest certified result wins.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"secureview/internal/reductions"
	"secureview/internal/secureview"
)

func init() {
	Register(setCoverApproxSolver{})
	Register(labelCoverApproxSolver{})
	Register(portfolioSolver{})
}

// setCoverApproxSolver reduces to weighted set cover (one universe element
// per private module, one weighted set per requirement-option realization)
// and runs the weighted greedy. The pulled-back solution costs at most
// H(d)·μ times the reported lower bound — the set-cover LP optimum divided
// by the charge multiplicity μ when the simplex finishes in time, the
// dual-fitting bound coverWeight/(H(d)·μ) otherwise.
type setCoverApproxSolver struct{}

func (setCoverApproxSolver) Name() string { return "approx-setcover" }

func (setCoverApproxSolver) Capabilities() Capabilities {
	return Capabilities{Cardinality: true, Set: true, Certified: true,
		Factor: "H(d)·μ vs set-cover LP"}
}

func (s setCoverApproxSolver) Supports(p *secureview.Problem, v secureview.Variant) error {
	return s.Capabilities().check("approx-setcover", p, v)
}

func (setCoverApproxSolver) Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error) {
	opts = opts.withDefaults()
	inst, err := reductions.ToSetCover(p, opts.Variant)
	if err != nil {
		return Result{Solver: "approx-setcover", Variant: opts.Variant}, err
	}
	cover, err := inst.SC.GreedyCtx(ctx)
	if err != nil {
		return Result{Solver: "approx-setcover", Variant: opts.Variant}, err
	}
	coverWeight := inst.SC.CostOf(cover)
	// Prefer the LP lower bound (tighter); fall back to dual fitting when
	// the simplex is cancelled or the instance degenerates. Either way
	// pull-back cost ≤ coverWeight ≤ Factor × bound.
	bound, lbErr := inst.LowerBoundCtx(ctx)
	if lbErr != nil {
		if err := ctx.Err(); err != nil {
			return Result{Solver: "approx-setcover", Variant: opts.Variant}, err
		}
		bound = inst.DualBound(coverWeight)
	}
	sol := inst.PullBack(cover)
	return finish("approx-setcover", p, opts.Variant, sol, false,
		Bound{LP: bound, Factor: inst.Factor(),
			Theorem: "Chvátal dual fitting × μ-charging (Theorem 7 machinery)"},
		Counters{Checked: len(inst.SC.Sets)}), nil
}

// labelCoverApproxSolver reduces an all-private set-constraint instance to
// a two-vertex weighted label cover (labels = option input/output parts)
// and runs the weighted greedy assignment. The pulled-back solution costs
// at most μ times the reported lower bound Σ_i min_j c(option j)/μ — the
// Theorem 7 charging argument in label-cover form.
type labelCoverApproxSolver struct{}

func (labelCoverApproxSolver) Name() string { return "approx-labelcover" }

func (labelCoverApproxSolver) Capabilities() Capabilities {
	return Capabilities{Set: true, Certified: true, AllPrivateOnly: true,
		Factor: "μ vs per-module minimum"}
}

func (s labelCoverApproxSolver) Supports(p *secureview.Problem, v secureview.Variant) error {
	return s.Capabilities().check("approx-labelcover", p, v)
}

func (labelCoverApproxSolver) Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error) {
	opts = opts.withDefaults()
	inst, err := reductions.ToLabelCover(p)
	if err != nil {
		return Result{Solver: "approx-labelcover", Variant: opts.Variant}, err
	}
	a, err := inst.LC.GreedyAssignmentCtx(ctx)
	if err != nil {
		return Result{Solver: "approx-labelcover", Variant: opts.Variant}, err
	}
	sol := inst.PullBack(a)
	return finish("approx-labelcover", p, opts.Variant, sol, false,
		Bound{LP: inst.LowerBound, Factor: float64(inst.Mult),
			Theorem: "Theorem 7 charging via label cover"},
		Counters{Checked: len(inst.LC.Edges)}), nil
}

// portfolioSolver races every other applicable registered solver under one
// shared context. The first result proving optimality wins immediately and
// the losers are cancelled mid-search (their next budget poll observes the
// cancel). When nobody proves optimality — the mega regime, where the
// exact tier exits early with typed budget errors — the cheapest certified
// result wins, then the cheapest feasible one; names break cost ties so
// the outcome is deterministic given the set of finishers.
//
// Exact racers get their node budget clamped to portfolioProbeNodes: an
// unclamped branch and bound would grind out its full default budget on a
// mega instance while the approximation tier sits finished, and the
// portfolio cannot return an uncertified wait as its answer. The clamp is
// orders of magnitude above what the small scenario classes need to prove
// optimality, so the "exact wins when exact is feasible" behavior is
// unchanged there.
type portfolioSolver struct{}

// portfolioProbeNodes clamps the node budget of exact racers inside the
// portfolio (see portfolioSolver).
const portfolioProbeNodes = 1 << 16

func (portfolioSolver) Name() string { return "portfolio" }

func (portfolioSolver) Capabilities() Capabilities {
	return Capabilities{Cardinality: true, Set: true, Certified: true,
		Factor: "best inner certificate (1 when an exact solver finishes)"}
}

func (portfolioSolver) Supports(p *secureview.Problem, v secureview.Variant) error {
	if err := p.Validate(v); err != nil {
		return err
	}
	if len(innerSolvers(p, v)) == 0 {
		return fmt.Errorf("solve: portfolio has no applicable inner solver for this instance")
	}
	return nil
}

// innerSolvers returns, in name order, the applicable solvers the
// portfolio races — every registered solver but itself. The portfolio is
// excluded BEFORE its Supports is consulted (For would recurse through it).
func innerSolvers(p *secureview.Problem, v secureview.Variant) []Solver {
	var out []Solver
	for _, n := range Names() {
		if n == "portfolio" {
			continue
		}
		if s, ok := Get(n); ok && s.Supports(p, v) == nil {
			out = append(out, s)
		}
	}
	return out
}

func (portfolioSolver) Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error) {
	opts = opts.withDefaults()
	inner := innerSolvers(p, opts.Variant)
	if len(inner) == 0 {
		return Result{Solver: "portfolio", Variant: opts.Variant},
			fmt.Errorf("solve: portfolio has no applicable inner solver")
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res Result
		err error
	}
	// Buffered to the racer count: losers finishing after the winner park
	// their outcome in the channel and exit, leaking nothing.
	results := make(chan outcome, len(inner))
	for _, s := range inner {
		s := s
		innerOpts := opts
		if s.Capabilities().Exact && innerOpts.NodeBudget > portfolioProbeNodes {
			innerOpts.NodeBudget = portfolioProbeNodes
		}
		go func() {
			res, err := s.Solve(raceCtx, p, innerOpts)
			results <- outcome{res, err}
		}()
	}

	tag := func(res Result) Result {
		res.Solver = "portfolio/" + res.Solver
		return res
	}
	better := func(a, b Result) bool { // does a beat the incumbent b?
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Solver < b.Solver
	}
	var bestCertified, bestFeasible *Result
	var lastErr error
	for done := 0; done < len(inner); done++ {
		o := <-results
		if o.err == nil && o.res.Optimal {
			// Proven optimum: cancel the losers and return without waiting
			// for them (they park their outcomes in the buffered channel).
			cancel()
			return tag(o.res), nil
		}
		if o.err != nil && !o.res.Partial {
			// Keep the most informative error: anything beats nothing, and a
			// real failure beats routine budget/deadline exhaustion.
			routine := errors.Is(o.err, secureview.ErrNodeBudget) ||
				errors.Is(o.err, context.Canceled) || errors.Is(o.err, context.DeadlineExceeded)
			if lastErr == nil || !routine {
				lastErr = fmt.Errorf("portfolio %s: %w", o.res.Solver, o.err)
			}
			continue
		}
		res := o.res
		if !p.Feasible(res.Solution, opts.Variant) {
			continue
		}
		if res.Bound.Factor > 0 {
			if bestCertified == nil || better(res, *bestCertified) {
				bestCertified = &res
			}
		}
		if bestFeasible == nil || better(res, *bestFeasible) {
			bestFeasible = &res
		}
	}
	switch {
	case bestCertified != nil:
		return tag(*bestCertified), nil
	case bestFeasible != nil:
		return tag(*bestFeasible), nil
	case ctx.Err() != nil:
		// The caller's own context died and nothing finished: report that,
		// not whichever racer's budget error happened to arrive last.
		return Result{Solver: "portfolio", Variant: opts.Variant}, ctx.Err()
	case lastErr != nil:
		return Result{Solver: "portfolio", Variant: opts.Variant}, lastErr
	default:
		return Result{Solver: "portfolio", Variant: opts.Variant},
			fmt.Errorf("solve: portfolio found no feasible solution")
	}
}

// CertifiedGap returns Cost − Factor×LP for a certified result (and +Inf
// for an uncertified one). The approximation tier guarantees the gap is
// ≤ 0 up to float slack; the differential harness and the solver tests
// assert exactly that.
func CertifiedGap(r Result) float64 {
	if r.Bound.Factor <= 0 {
		return math.Inf(1)
	}
	return r.Cost - r.Bound.Factor*r.Bound.LP
}
