package solve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"

	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/search"
	"secureview/internal/secureview"
	"secureview/internal/wire"
	"secureview/internal/workflow"
)

// Session snapshot/restore: the hot state a warmed server carries — derived
// problems, compiled oracle tables, warm-start frontiers — serialized to a
// versioned, checksummed binary stream so a restart (or a fresh replica)
// boots with the cache it would otherwise spend minutes re-deriving.
//
// Restore is all-or-nothing and trust-bounded: the whole payload is
// CRC-verified and fully decoded (every count, domain, digit and mask
// re-validated by the per-package codecs) before a single entry is
// installed, so a corrupt, truncated or version-bumped file degrades to an
// empty session instead of a panic, a poisoned cache, or an error loop.
// Entry sizes are recomputed locally — never trusted from the file — and
// installation runs through the normal accounting paths, so restoring into
// a smaller byte budget simply evicts from the least-recent end.

// SnapshotVersion is the wire version of the session snapshot format. It
// must be bumped on ANY change to the entry encodings below or to the
// codecs in internal/oracle and internal/search; restore refuses other
// versions outright — snapshots are rebuildable caches, so cross-version
// migration is deliberately not attempted.
const SnapshotVersion = 1

// StructuralFingerprint returns the hex cost-independent structure key of a
// derivation request. Cost-only edits of a workflow share it, which is what
// makes it the sharding route key: an edit chain pins to one owner replica,
// whose session then aggregates the chain's warm frontiers and delta
// sources instead of scattering them across the ring.
func StructuralFingerprint(w *workflow.Workflow, v secureview.Variant, gamma uint64) string {
	_, structural := workflowKeys(w, v, gamma, nil, nil)
	return hex.EncodeToString([]byte(structural))
}

// Snapshot writes the session's completed cache entries to w, least
// recently used first, so that restoring replays them in recency order and
// the restored LRU list matches the source's. Entries still deriving,
// cached errors, and evicted entries are skipped: a snapshot holds only
// state worth shipping. Safe for concurrent use with serving traffic — the
// payload is assembled under the session lock, then sealed and written
// without it.
func (s *Session) Snapshot(w io.Writer) error {
	s.mu.Lock()
	var body []byte
	n := 0
	for e := s.back; e != nil; e = e.prev {
		// accounted was set under s.mu strictly after the deriving goroutine
		// completed the entry, so reading the payload fields here is ordered.
		if !e.accounted || e.err != nil {
			continue
		}
		var enc []byte
		switch e.kind {
		case kindProblem:
			if e.p == nil {
				continue
			}
			enc = wire.AppendU32(enc, uint32(kindProblem))
			enc = wire.AppendString(enc, e.key)
			enc = wire.AppendString(enc, e.structKey)
			enc = appendProblem(enc, e.p)
		case kindOracle:
			if e.c == nil {
				continue
			}
			enc = wire.AppendU32(enc, uint32(kindOracle))
			enc = wire.AppendString(enc, e.key)
			enc = e.c.AppendBinary(enc)
		case kindWarm:
			if e.f == nil {
				continue
			}
			enc = wire.AppendU32(enc, uint32(kindWarm))
			enc = wire.AppendString(enc, e.key)
			enc = e.f.AppendBinary(enc)
		default:
			continue
		}
		body = append(body, enc...)
		n++
	}
	s.mu.Unlock()

	payload := wire.AppendU64(nil, uint64(n))
	payload = append(payload, body...)
	_, err := w.Write(wire.Seal(SnapshotVersion, payload))
	return err
}

// restoredEntry is one fully decoded and validated snapshot entry, staged
// before installation.
type restoredEntry struct {
	kind      entryKind
	key       string
	structKey string
	p         *secureview.Problem
	c         *oracle.Compiled
	f         *search.Frontier
}

// Restore reads a snapshot from rd and installs its entries into the
// session, returning how many were installed. Decoding is strict and
// happens entirely before installation: any envelope, codec or validation
// failure returns an error with the session untouched. Keys already present
// win over snapshot entries (live state is newer than any file), and the
// session's byte budget applies as usual — restoring a large snapshot into
// a small session keeps only the most recently used tail.
func (s *Session) Restore(rd io.Reader) (int, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return 0, err
	}
	payload, err := wire.Open(data, SnapshotVersion)
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(payload)
	n := r.Count(1)
	if err := r.Err(); err != nil {
		return 0, err
	}
	entries := make([]restoredEntry, 0, n)
	for i := 0; i < n; i++ {
		re := restoredEntry{kind: entryKind(r.U32()), key: r.String()}
		if err := r.Err(); err != nil {
			return 0, err
		}
		switch re.kind {
		case kindProblem:
			if len(re.key) != sha256.Size {
				return 0, fmt.Errorf("solve: snapshot problem key of %d bytes", len(re.key))
			}
			re.structKey = r.String()
			if err := r.Err(); err != nil {
				return 0, err
			}
			if len(re.structKey) != 0 && len(re.structKey) != sha256.Size {
				return 0, fmt.Errorf("solve: snapshot structure key of %d bytes", len(re.structKey))
			}
			if re.p, err = decodeProblem(r); err != nil {
				return 0, err
			}
		case kindOracle:
			if len(re.key) != sha256.Size {
				return 0, fmt.Errorf("solve: snapshot oracle key of %d bytes", len(re.key))
			}
			if re.c, err = oracle.DecodeCompiled(r); err != nil {
				return 0, err
			}
		case kindWarm:
			if len(re.key) != 2*sha256.Size {
				return 0, fmt.Errorf("solve: snapshot warm key of %d bytes", len(re.key))
			}
			if re.f, err = search.DecodeFrontier(r); err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("solve: snapshot entry kind %d", re.kind)
		}
		entries = append(entries, re)
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	if r.Remaining() != 0 {
		return 0, fmt.Errorf("solve: %d trailing bytes after snapshot entries", r.Remaining())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	installed := 0
	for _, re := range entries {
		m := s.mapFor(re.kind)
		if _, ok := m[re.key]; ok {
			continue
		}
		e := &sessionEntry{key: re.key, kind: re.kind, done: true}
		switch re.kind {
		case kindProblem:
			e.p = re.p
			e.size = problemSize(re.p)
			e.structKey = re.structKey
		case kindOracle:
			e.c = re.c
			e.size = entrySize + re.c.MemSize()
		case kindWarm:
			e.f = re.f
			e.size = entrySize + int64(len(re.key)) + re.f.MemSize()
		}
		m[re.key] = e
		s.touchLocked(e)
		e.accounted = true
		s.bytes += e.size
		if e.structKey != "" {
			s.structIdx[e.structKey] = e
		}
		installed++
	}
	s.evictOverLocked()
	return installed, nil
}

// RestoreSession builds a session with the given byte budget from a
// snapshot stream. It ALWAYS returns a usable session: on any decode
// failure the session is simply empty and the error reports why — callers
// log it and serve cold, they never crash-loop on a bad snapshot file.
func RestoreSession(rd io.Reader, maxBytes int64) (*Session, int, error) {
	s := NewSessionBytes(maxBytes)
	n, err := s.Restore(rd)
	return s, n, err
}

// appendStrings appends a count-prefixed string list.
func appendStrings(buf []byte, list []string) []byte {
	buf = wire.AppendU64(buf, uint64(len(list)))
	for _, s := range list {
		buf = wire.AppendString(buf, s)
	}
	return buf
}

// decodeStrings reads a count-prefixed string list.
func decodeStrings(r *wire.Reader) []string {
	n := r.Count(8)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	return out
}

// appendProblem appends a derived problem: module specs in order, then the
// cost map in sorted name order so the encoding is deterministic.
func appendProblem(buf []byte, p *secureview.Problem) []byte {
	buf = wire.AppendU64(buf, uint64(len(p.Modules)))
	for i := range p.Modules {
		m := &p.Modules[i]
		buf = wire.AppendString(buf, m.Name)
		buf = appendStrings(buf, m.Inputs)
		buf = appendStrings(buf, m.Outputs)
		buf = wire.AppendBool(buf, m.Public)
		buf = wire.AppendF64(buf, m.PrivatizeCost)
		buf = wire.AppendU64(buf, uint64(len(m.CardList)))
		for _, cr := range m.CardList {
			buf = wire.AppendU64(buf, uint64(cr.Alpha))
			buf = wire.AppendU64(buf, uint64(cr.Beta))
		}
		buf = wire.AppendU64(buf, uint64(len(m.SetList)))
		for _, sr := range m.SetList {
			buf = appendStrings(buf, sr.In)
			buf = appendStrings(buf, sr.Out)
		}
	}
	names := make([]string, 0, len(p.Costs))
	for a := range p.Costs {
		names = append(names, a)
	}
	sort.Strings(names)
	buf = wire.AppendU64(buf, uint64(len(names)))
	for _, a := range names {
		buf = wire.AppendString(buf, a)
		buf = wire.AppendF64(buf, p.Costs[a])
	}
	return buf
}

// decodeProblem reads one derived problem, re-validating the bounds the
// solvers rely on (cardinality requirements within int32, finite counts).
func decodeProblem(r *wire.Reader) (*secureview.Problem, error) {
	nMods := r.Count(1)
	if r.Err() != nil {
		return nil, r.Err()
	}
	p := &secureview.Problem{Modules: make([]secureview.ModuleSpec, nMods)}
	for i := range p.Modules {
		m := &p.Modules[i]
		m.Name = r.String()
		if m.Name == "" && r.Err() == nil {
			return nil, fmt.Errorf("solve: snapshot module %d has empty name", i)
		}
		m.Inputs = decodeStrings(r)
		m.Outputs = decodeStrings(r)
		m.Public = r.Bool()
		m.PrivatizeCost = r.F64()
		nCard := r.Count(16)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if nCard > 0 {
			m.CardList = make([]secureview.CardReq, nCard)
			for j := range m.CardList {
				alpha, beta := r.U64(), r.U64()
				if alpha > math.MaxInt32 || beta > math.MaxInt32 {
					if r.Err() == nil {
						return nil, fmt.Errorf("solve: snapshot requirement (%d,%d) out of range", alpha, beta)
					}
					return nil, r.Err()
				}
				m.CardList[j] = secureview.CardReq{Alpha: int(alpha), Beta: int(beta)}
			}
		}
		nSet := r.Count(16)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if nSet > 0 {
			m.SetList = make([]secureview.SetReq, nSet)
			for j := range m.SetList {
				m.SetList[j] = secureview.SetReq{In: decodeStrings(r), Out: decodeStrings(r)}
			}
		}
	}
	nCosts := r.Count(16)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nCosts > 0 {
		p.Costs = make(privacy.Costs, nCosts)
		for i := 0; i < nCosts; i++ {
			a := r.String()
			c := r.F64()
			if r.Err() != nil {
				return nil, r.Err()
			}
			p.Costs[a] = c
		}
	}
	return p, r.Err()
}
