package solve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"secureview/internal/relation"
	"secureview/internal/search"
	"secureview/internal/secureview"
)

func init() {
	Register(exactSolver{})
	Register(bbSolver{})
	Register(engineSolver{})
	Register(greedySolver{})
	Register(lpSolver{})
}

// finish assembles the common Result fields.
func finish(name string, p *secureview.Problem, v secureview.Variant,
	sol secureview.Solution, optimal bool, b Bound, c Counters) Result {
	return Result{
		Solver:   name,
		Variant:  v,
		Solution: sol,
		Cost:     p.Cost(sol),
		Optimal:  optimal,
		Bound:    b,
		Counters: c,
	}
}

// partial wraps a budget/deadline error, attaching the incumbent when it is
// feasible (the exact solvers' greedy seed always is; a cancelled
// enumeration may have none).
func partial(name string, p *secureview.Problem, v secureview.Variant,
	sol secureview.Solution, c Counters, err error) (Result, error) {
	res := Result{Solver: name, Variant: v, Counters: c}
	if p.Feasible(sol, v) {
		res.Solution = sol
		res.Cost = p.Cost(sol)
		res.Partial = true
	}
	return res, err
}

// exactSolver proves optimality by exhaustive search: per-module option
// branch and bound for set constraints, useful-attribute subset enumeration
// for cardinality constraints.
type exactSolver struct{}

func (exactSolver) Name() string { return "exact" }

func (exactSolver) Capabilities() Capabilities {
	return Capabilities{Cardinality: true, Set: true, Exact: true, Certified: true, Factor: "1"}
}

func (s exactSolver) Supports(p *secureview.Problem, v secureview.Variant) error {
	return s.Capabilities().check("exact", p, v)
}

func (exactSolver) Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error) {
	opts = opts.withDefaults()
	var (
		sol secureview.Solution
		st  secureview.ExactStats
		err error
	)
	if opts.Variant == secureview.Set {
		sol, st, err = secureview.ExactSetCtx(ctx, p, opts.NodeBudget)
	} else {
		sol, st, err = secureview.ExactCardCtx(ctx, p, opts.MaxAttrs)
	}
	c := Counters{Nodes: st.Nodes}
	if err != nil {
		return partial("exact", p, opts.Variant, sol, c, err)
	}
	return finish("exact", p, opts.Variant, sol, true,
		Bound{Factor: 1, Theorem: "exhaustive (Theorems 5/6 hardness)"}, c), nil
}

// bbSolver is the attribute-level branch and bound for the cardinality
// variant, which scales further than enumeration when optima hide few
// attributes.
type bbSolver struct{}

func (bbSolver) Name() string { return "bb" }

func (bbSolver) Capabilities() Capabilities {
	return Capabilities{Cardinality: true, Exact: true, Certified: true, Factor: "1"}
}

func (s bbSolver) Supports(p *secureview.Problem, v secureview.Variant) error {
	return s.Capabilities().check("bb", p, v)
}

func (bbSolver) Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error) {
	opts = opts.withDefaults()
	sol, st, err := secureview.ExactCardBBCtx(ctx, p, opts.NodeBudget)
	c := Counters{Nodes: st.Nodes}
	if err != nil {
		return partial("bb", p, opts.Variant, sol, c, err)
	}
	return finish("bb", p, opts.Variant, sol, true,
		Bound{Factor: 1, Theorem: "branch and bound (admissible completion bound)"}, c), nil
}

// engineSolver runs the pruned parallel subset-search engine of
// internal/search over the problem's useful attributes, with feasibility as
// the (monotone) safety oracle. It is exact, and the only registered solver
// that fans one request out over a worker pool — but its cost model is
// per-attribute only, so it requires an all-private instance (privatization
// closure costs would make the objective non-linear in the hidden mask).
type engineSolver struct{}

func (engineSolver) Name() string { return "engine" }

func (engineSolver) Capabilities() Capabilities {
	return Capabilities{Cardinality: true, Set: true, Exact: true, Certified: true,
		AllPrivateOnly: true, MaxUniverse: search.MaxAttrs, Factor: "1"}
}

func (s engineSolver) Supports(p *secureview.Problem, v secureview.Variant) error {
	return s.Capabilities().check("engine", p, v)
}

func (engineSolver) Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error) {
	opts = opts.withDefaults()
	attrs := p.UsefulAttributes(opts.Variant)
	sp, err := search.NewSpace(attrs, p.Costs.Of)
	if err != nil {
		return Result{}, err
	}
	// Hiding more only helps private modules (Proposition 1 at the
	// requirement level), so safe visible sets are subset-closed and the
	// engine's monotonicity pruning is sound.
	none := relation.NewNameSet()
	oracle := search.Oracle(func(visible search.Mask) (bool, error) {
		hidden := sp.NameSet(sp.All() &^ visible)
		return p.Feasible(secureview.Solution{Hidden: hidden, Privatized: none}, opts.Variant), nil
	})
	sOpts := search.Options{Parallelism: opts.Workers, FrontierCap: opts.FrontierCap,
		Resume: opts.Resume}
	if !opts.DisableCollapse {
		sOpts.Symmetry = requirementClasses(p, opts.Variant, attrs)
	}
	res, err := sp.MinCostCtx(ctx, oracle, sOpts)
	c := Counters{
		Checked:         res.Stats.Checked,
		Pruned:          res.Stats.Pruned,
		OraclePasses:    res.Stats.OraclePasses,
		BatchSize:       res.Stats.BatchSize,
		FrontierDropped: res.Stats.FrontierDropped,
		ResumedSafe:     res.Stats.ResumedSafe,
		ResumedUnsafe:   res.Stats.ResumedUnsafe,
		MemoHits:        res.Stats.MemoHits,
	}
	if err != nil {
		return Result{Solver: "engine", Variant: opts.Variant, Counters: c, Resumed: res.Stats.Resumed}, err
	}
	if !res.Found {
		return Result{Solver: "engine", Variant: opts.Variant, Counters: c, Resumed: res.Stats.Resumed},
			fmt.Errorf("solve: no feasible solution")
	}
	out := finish("engine", p, opts.Variant, p.Complete(sp.NameSet(res.Hidden)), true,
		Bound{Factor: 1, Theorem: "exhaustive over useful attributes (Proposition 1 pruning)"}, c)
	out.Resumed = res.Stats.Resumed
	out.Frontier = res.Frontier
	return out, nil
}

// requirementClasses groups the search universe into requirement-level
// equivalence classes: attributes whose exchange fixes every feasibility
// check AND the cost function, so the engine may restrict enumeration to
// canonical (name-prefix) combinations without moving the (cost, lex)
// optimum. Two attributes are interchangeable when they have equal hiding
// cost and, per module: identical input/output membership (cardinality —
// feasibility only counts hidden inputs and outputs per module) or
// identical membership in every option's attribute set (set — swapping then
// maps each option to itself). Public-module adjacency joins the signature
// so a hidden attribute forcing privatization never pairs with one that
// does not. Returned classes index attrs; singletons are dropped.
func requirementClasses(p *secureview.Problem, v secureview.Variant, attrs []string) [][]int {
	type set = relation.NameSet
	var inSets, outSets []set // private modules, in order
	var optSets []set         // set variant: every option's attrs, in order
	var pubSets []set         // public modules' full interface
	for _, m := range p.Modules {
		if m.Public {
			pubSets = append(pubSets,
				relation.NewNameSet(m.Inputs...).Union(relation.NewNameSet(m.Outputs...)))
			continue
		}
		switch v {
		case secureview.Cardinality:
			inSets = append(inSets, relation.NewNameSet(m.Inputs...))
			outSets = append(outSets, relation.NewNameSet(m.Outputs...))
		case secureview.Set:
			for _, r := range m.SetList {
				optSets = append(optSets, r.Attrs())
			}
		}
	}
	sig := func(a string) string {
		var b []byte
		b = strconv.AppendUint(b, math.Float64bits(p.Costs.Of(a)), 16)
		mark := func(sets []set) {
			for _, s := range sets {
				if s.Has(a) {
					b = append(b, '1')
				} else {
					b = append(b, '0')
				}
			}
		}
		mark(inSets)
		b = append(b, '|')
		mark(outSets)
		b = append(b, '|')
		mark(optSets)
		b = append(b, '|')
		mark(pubSets)
		return string(b)
	}
	order := make(map[string]int)
	var classes [][]int
	for i, a := range attrs {
		k := sig(a)
		ci, ok := order[k]
		if !ok {
			ci = len(classes)
			order[k] = ci
			classes = append(classes, nil)
		}
		classes[ci] = append(classes[ci], i)
	}
	out := classes[:0]
	for _, cl := range classes {
		if len(cl) >= 2 {
			out = append(out, cl)
		}
	}
	return out
}

// greedySolver is the per-module cheapest-option union.
type greedySolver struct{}

func (greedySolver) Name() string { return "greedy" }

func (greedySolver) Capabilities() Capabilities {
	return Capabilities{Cardinality: true, Set: true, Certified: true,
		Factor: "γ+1 (all-private; Theorem 7)"}
}

func (s greedySolver) Supports(p *secureview.Problem, v secureview.Variant) error {
	return s.Capabilities().check("greedy", p, v)
}

func (greedySolver) Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error) {
	opts = opts.withDefaults()
	sol, err := secureview.GreedyCtx(ctx, p, opts.Variant)
	if err != nil {
		return partial("greedy", p, opts.Variant, sol, Counters{}, err)
	}
	b := Bound{}
	allPrivate := true
	for _, m := range p.Modules {
		if m.Public {
			allPrivate = false
			break
		}
	}
	if allPrivate {
		if mult := p.Multiplicity(); mult > 0 {
			b = Bound{Factor: float64(mult), Theorem: "Theorem 7 ((γ+1)-approximation via attribute multiplicity)"}
		}
	}
	return finish("greedy", p, opts.Variant, sol, false, b, Counters{}), nil
}

// lpSolver solves the variant's LP relaxation and rounds: the deterministic
// ℓmax threshold for set constraints (Theorem 6 / appendix C.4), the
// randomized O(log n) rounding of Algorithm 1 for cardinality constraints
// (Theorem 5).
type lpSolver struct{}

func (lpSolver) Name() string { return "lp" }

// lpMaxUniverse caps the LP solvers' attribute universe: the dense simplex
// tableau grows with (attrs × options)², and beyond ~64 attributes one
// solve takes long enough that the mega classes would stall the portfolio.
const lpMaxUniverse = 64

func (lpSolver) Capabilities() Capabilities {
	return Capabilities{Cardinality: true, Set: true, Certified: true,
		MaxUniverse: lpMaxUniverse, Factor: "ℓmax vs LP (set); O(log n) w.h.p. (card)"}
}

func (s lpSolver) Supports(p *secureview.Problem, v secureview.Variant) error {
	return s.Capabilities().check("lp", p, v)
}

func (lpSolver) Solve(ctx context.Context, p *secureview.Problem, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if opts.Variant == secureview.Set {
		sol, lpVal, err := secureview.SetLPRoundCtx(ctx, p)
		if err != nil {
			return Result{Solver: "lp", Variant: opts.Variant}, err
		}
		return finish("lp", p, opts.Variant, sol, false,
			Bound{LP: lpVal, Factor: float64(p.LMax(secureview.Set)), Theorem: "Theorem 6 (ℓmax × LP)"},
			Counters{}), nil
	}
	sol, lpVal, err := secureview.CardinalityLPRoundCtx(ctx, p, secureview.RoundingOptions{
		Trials: opts.Trials,
		Rng:    rand.New(rand.NewSource(opts.Seed)),
	})
	if err != nil {
		return partial("lp", p, opts.Variant, sol, Counters{}, err)
	}
	return finish("lp", p, opts.Variant, sol, false,
		Bound{LP: lpVal, Theorem: "Theorem 5 (O(log n) w.h.p.)"}, Counters{}), nil
}
