package solve_test

import (
	"context"
	"fmt"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/privacy"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// TestEngineCollapseParity pins the engine solver's equivalence-class
// collapsing across the generated problem classes and both variants: the
// collapsed (default) and collapse-disabled runs must return the identical
// hidden set and keep the Checked+Pruned accounting over the
// useful-attribute space. (Generated instances draw distinct random costs,
// so classes rarely form there; TestEngineCollapseEngages covers the
// engagement itself.)
func TestEngineCollapseParity(t *testing.T) {
	ctx := context.Background()
	for _, pc := range gen.ProblemClasses() {
		for seed := int64(0); seed < 4; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
				eng, _ := solve.Get("engine")
				if eng.Supports(p, v) != nil {
					continue
				}
				name := fmt.Sprintf("%s/seed=%d/%s", pc.Name, seed, v)
				res, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: v})
				if err != nil {
					t.Fatalf("%s: engine: %v", name, err)
				}
				plain, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: v, DisableCollapse: true})
				if err != nil {
					t.Fatalf("%s: engine (collapse disabled): %v", name, err)
				}
				if !res.Solution.Hidden.Equal(plain.Solution.Hidden) || !within(res.Cost, plain.Cost) {
					t.Fatalf("%s: collapse changed the optimum: %v (%g) vs %v (%g)",
						name, res.Solution.Hidden.Sorted(), res.Cost, plain.Solution.Hidden.Sorted(), plain.Cost)
				}
				space := 1 << len(p.UsefulAttributes(v))
				if res.Counters.Checked+res.Counters.Pruned != space {
					t.Fatalf("%s: collapsed Checked %d + Pruned %d != %d",
						name, res.Counters.Checked, res.Counters.Pruned, space)
				}
				if plain.Counters.Checked+plain.Counters.Pruned != space {
					t.Fatalf("%s: plain Checked %d + Pruned %d != %d",
						name, plain.Counters.Checked, plain.Counters.Pruned, space)
				}
			}
		}
	}
}

// symmetricProblem builds an all-private instance whose attributes are
// requirement-interchangeable in bulk: every module's inputs form one
// equal-cost class and its outputs another.
func symmetricProblem() *secureview.Problem {
	p := &secureview.Problem{Costs: privacy.Costs{}}
	for i := 0; i < 2; i++ {
		in := []string{fmt.Sprintf("x%d_0", i), fmt.Sprintf("x%d_1", i), fmt.Sprintf("x%d_2", i)}
		out := []string{fmt.Sprintf("y%d_0", i), fmt.Sprintf("y%d_1", i)}
		for _, a := range in {
			p.Costs[a] = 2
		}
		for _, a := range out {
			p.Costs[a] = 1
		}
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name:    fmt.Sprintf("m%d", i),
			Inputs:  in,
			Outputs: out,
			SetList: []secureview.SetReq{
				{In: append([]string(nil), in...)},
				{Out: append([]string(nil), out...)},
			},
			CardList: []secureview.CardReq{
				{Alpha: len(in)},
				{Beta: len(out)},
			},
		})
	}
	return p
}

// TestEngineCollapseEngages: on a uniform-cost symmetric instance the
// collapse must do real work — strictly more pruning (and strictly fewer
// safety tests) than the collapse-disabled run, with the identical optimum.
func TestEngineCollapseEngages(t *testing.T) {
	ctx := context.Background()
	p := symmetricProblem()
	for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
		res, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: v, DisableCollapse: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solution.Hidden.Equal(plain.Solution.Hidden) || !within(res.Cost, plain.Cost) {
			t.Fatalf("%s: collapse changed the optimum: %v (%g) vs %v (%g)",
				v, res.Solution.Hidden.Sorted(), res.Cost, plain.Solution.Hidden.Sorted(), plain.Cost)
		}
		space := 1 << len(p.UsefulAttributes(v))
		if res.Counters.Checked+res.Counters.Pruned != space {
			t.Fatalf("%s: Checked %d + Pruned %d != %d", v, res.Counters.Checked, res.Counters.Pruned, space)
		}
		if res.Counters.Pruned <= plain.Counters.Pruned || res.Counters.Checked >= plain.Counters.Checked {
			t.Fatalf("%s: collapse did not engage: checked %d pruned %d vs plain checked %d pruned %d",
				v, res.Counters.Checked, res.Counters.Pruned, plain.Counters.Checked, plain.Counters.Pruned)
		}
	}
}

// TestEngineFrontierCapCounters plumbs Options.FrontierCap through to the
// search engine and reads the drop counter back out of Result.Counters.
func TestEngineFrontierCapCounters(t *testing.T) {
	ctx := context.Background()
	sawDrop := false
	for _, pc := range gen.ProblemClasses() {
		for seed := int64(0); seed < 4; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			eng, _ := solve.Get("engine")
			if eng.Supports(p, secureview.Set) != nil {
				continue
			}
			res, err := solve.Solve(ctx, "engine", p, solve.Options{Variant: secureview.Set})
			if err != nil {
				t.Fatal(err)
			}
			capped, err := solve.Solve(ctx, "engine", p,
				solve.Options{Variant: secureview.Set, FrontierCap: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !capped.Solution.Hidden.Equal(res.Solution.Hidden) {
				t.Fatalf("%s/seed=%d: FrontierCap changed the optimum: %v vs %v",
					pc.Name, seed, capped.Solution.Hidden.Sorted(), res.Solution.Hidden.Sorted())
			}
			if capped.Counters.FrontierDropped > 0 {
				sawDrop = true
			}
		}
	}
	if !sawDrop {
		t.Error("FrontierCap=1 never reported a drop across the problem classes")
	}
}
