package solve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"secureview/internal/secureview"
)

// Job is one unit of batch work: solve Problem with the named registered
// solver under Options (whose Timeout, if set, is the job's own deadline).
type Job struct {
	// Name tags the job in results (instance id, class/seed, ...).
	Name string
	// Problem is the instance; jobs may share one *Problem freely — every
	// registered solver treats it as read-only.
	Problem *secureview.Problem
	// Solver is the registry key.
	Solver string
	// Options configures the run; Options.Timeout is applied per job.
	Options Options
}

// JobResult pairs a job with its outcome.
type JobResult struct {
	Job    Job
	Result Result
	Err    error
}

// SolveBatch runs the jobs over a pool of workers (0 = GOMAXPROCS) and
// returns results in job order. Each job gets its own deadline from its
// Options.Timeout on top of the batch context; cancelling ctx fails every
// job not yet started with ctx.Err() and interrupts the in-flight ones
// through the solvers' cancellation contract, so a batch drains promptly.
//
// Jobs only read their problems and the registry, so a batch may safely
// mix solvers, share problems between jobs, and run alongside other
// batches; pair it with a shared Session to also share derivation work.
func SolveBatch(ctx context.Context, jobs []Job, workers int) []JobResult {
	if len(jobs) == 0 {
		return nil // no workers, no result allocation
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]JobResult, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(jobs) {
					return
				}
				out[i].Job = jobs[i]
				if err := ctx.Err(); err != nil {
					out[i].Err = err
					continue
				}
				out[i].Result, out[i].Err = Solve(ctx, jobs[i].Solver, jobs[i].Problem, jobs[i].Options)
			}
		}()
	}
	wg.Wait()
	return out
}
