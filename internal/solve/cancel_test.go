package solve_test

// The cancellation smoke tests of the solver layer: a deadline must stop
// every solver family within one pruning epoch — the engine's candidate
// loop, the exact solvers' search trees — rather than after the run would
// have finished anyway. Wall-clock assertions are generous (CI machines
// stall), but orders of magnitude below the uncancelled runtimes.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"secureview/internal/exp"
	"secureview/internal/gen"
	"secureview/internal/search"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// promptly runs fn under a 50ms deadline and asserts it returns
// context.DeadlineExceeded well before the uncancelled runtime would allow.
func promptly(t *testing.T, what string, fn func(ctx context.Context) error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := fn(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("%s: err = %v, want context.DeadlineExceeded (elapsed %v)", what, err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("%s: took %v to notice a 50ms deadline", what, elapsed)
	}
}

// TestEngineDeadlineK18 is the acceptance smoke test: the pruned parallel
// engine on the k=18 benchmark instance (minutes naive, ~100ms+ engine)
// must surface a 50ms deadline within one candidate epoch.
func TestEngineDeadlineK18(t *testing.T) {
	mv, costs, gamma := exp.SearchBenchInstance(18)
	sp, err := search.NewSpace(mv.Attrs(), costs.Of)
	if err != nil {
		t.Fatal(err)
	}
	oracle := func(v search.Mask) (bool, error) { return mv.IsSafe(sp.NameSet(v), gamma) }
	promptly(t, "engine k=18", func(ctx context.Context) error {
		_, err := sp.MinCostCtx(ctx, oracle, search.Options{})
		return err
	})
}

// bigCardProblem returns a cardinality instance whose branch-and-bound tree
// is astronomically larger than any 50ms budget.
func bigCardProblem() *secureview.Problem {
	return gen.Problem(gen.ProblemConfig{Modules: 300, MaxInputs: 3, Outputs: 2, Share: 2}, 7)
}

// TestBranchAndBoundDeadline: the bb solver under a 50ms deadline returns
// promptly AND carries its feasible greedy-seeded incumbent out as a
// partial result.
func TestBranchAndBoundDeadline(t *testing.T) {
	p := bigCardProblem()
	var res solve.Result
	promptly(t, "bb 300 modules", func(ctx context.Context) error {
		var err error
		res, err = solve.Solve(ctx, "bb", p, solve.Options{
			Variant:    secureview.Cardinality,
			NodeBudget: 1 << 30, // don't let the node budget fire first
		})
		return err
	})
	if !res.Partial {
		t.Fatal("deadline-expired bb returned no partial incumbent")
	}
	if !p.Feasible(res.Solution, secureview.Cardinality) {
		t.Fatal("partial incumbent infeasible")
	}
}

// twoOptionChain builds n independent private modules with exactly two set
// options each ("hide my input" / "hide my output"), so the exact set
// search space is exactly 2^n — inside the node budget for n≈55, but far
// beyond any 50ms of wall clock, and cost pruning cannot collapse it
// (every partial union is cheaper than the greedy incumbent).
func twoOptionChain(n int) *secureview.Problem {
	p := &secureview.Problem{Costs: map[string]float64{}}
	for i := 0; i < n; i++ {
		in := fmt.Sprintf("a%03d", i)
		out := fmt.Sprintf("b%03d", i)
		p.Costs[in] = 1
		p.Costs[out] = 1.5
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("m%03d", i), Inputs: []string{in}, Outputs: []string{out},
			SetList: []secureview.SetReq{{In: []string{in}}, {Out: []string{out}}},
		})
	}
	return p
}

// TestExactSetDeadline: the set-variant branch and bound notices the
// deadline inside its option tree (the space check alone would pass).
func TestExactSetDeadline(t *testing.T) {
	p := twoOptionChain(55)
	var res solve.Result
	promptly(t, "exact set 2^55 options", func(ctx context.Context) error {
		var err error
		res, err = solve.Solve(ctx, "exact", p, solve.Options{
			Variant:    secureview.Set,
			NodeBudget: 1 << 60,
		})
		return err
	})
	if !res.Partial || !p.Feasible(res.Solution, secureview.Set) {
		t.Fatal("deadline-expired exact set returned no feasible incumbent")
	}
}

// TestOptionsTimeoutAppliesDeadline: the per-job Timeout in Options is
// enough — no caller-supplied context needed.
func TestOptionsTimeoutAppliesDeadline(t *testing.T) {
	p := bigCardProblem()
	start := time.Now()
	res, err := solve.Solve(context.Background(), "bb", p, solve.Options{
		Variant:    secureview.Cardinality,
		NodeBudget: 1 << 30,
		Timeout:    50 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Options.Timeout took %v to fire", elapsed)
	}
	if !res.Partial {
		t.Fatal("no partial incumbent")
	}
}

// TestNodeBudgetTyped: budget exhaustion is errors.Is-able as
// secureview.ErrNodeBudget across all three exact solvers, and bb still
// returns its incumbent.
func TestNodeBudgetTyped(t *testing.T) {
	p := gen.Problem(gen.ProblemConfig{Modules: 40, MaxInputs: 3, Outputs: 2}, 3)
	if _, err := secureview.ExactSet(p, 4); !errors.Is(err, secureview.ErrNodeBudget) {
		t.Errorf("ExactSet tiny budget: err = %v, want ErrNodeBudget", err)
	}
	if _, err := secureview.ExactCard(p, 2); !errors.Is(err, secureview.ErrNodeBudget) {
		t.Errorf("ExactCard tiny attr cap: err = %v, want ErrNodeBudget", err)
	}
	sol, err := secureview.ExactCardBB(p, 50)
	if !errors.Is(err, secureview.ErrNodeBudget) {
		t.Errorf("ExactCardBB tiny budget: err = %v, want ErrNodeBudget", err)
	}
	if !p.Feasible(sol, secureview.Cardinality) {
		t.Error("ExactCardBB budget-exhausted incumbent infeasible")
	}
	// The registry surfaces the same typed error with Partial set.
	res, err := solve.Solve(context.Background(), "bb", p, solve.Options{
		Variant: secureview.Cardinality, NodeBudget: 50,
	})
	if !errors.Is(err, secureview.ErrNodeBudget) || !res.Partial {
		t.Errorf("registry bb: err=%v partial=%v, want ErrNodeBudget with partial", err, res.Partial)
	}
}
