package solve_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/privacy"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// populatedSession derives, compiles and warm-solves every generator class
// into one session, returning the solve results the restored session must
// reproduce. Engine results carry frontiers, which also populates the warm
// tier.
type popResult struct {
	inst    *gen.Instance
	variant secureview.Variant
	solver  string
	res     solve.Result
}

func populateSession(t *testing.T, sess *solve.Session) []popResult {
	t.Helper()
	ctx := context.Background()
	var out []popResult
	for _, c := range gen.Classes() {
		inst := gen.MustNew(c.Cfg, 3)
		for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
			p, err := sess.Problem(ctx, inst.W, v, inst.Gamma, inst.Costs, inst.PrivatizeCosts)
			if err != nil {
				continue // infeasible at this Γ: cached error entries don't snapshot
			}
			for _, sv := range solve.For(p, v) {
				res, err := sv.Solve(ctx, p, solve.Options{Variant: v})
				if err != nil {
					continue
				}
				if res.Frontier != nil {
					sess.StoreWarm(solve.ProblemFingerprint(p, v), res.Frontier)
				}
				out = append(out, popResult{inst, v, sv.Name(), res})
			}
		}
		// The compiled-oracle tier, via each module's standalone view.
		for _, m := range inst.W.Modules() {
			if _, err := sess.Compiled(privacy.NewModuleView(m)); err != nil {
				t.Fatalf("%s: compile: %v", c.Name, err)
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no solvable (class, variant) pairs")
	}
	return out
}

// TestSnapshotRoundTrip is the tentpole property: a restored session is
// indistinguishable from the source. Re-snapshotting it is byte-identical
// (same entries, same LRU order, same deterministic encodings), every
// derivation re-request is a cache hit, every warm fingerprint is a warm
// hit, and re-solving through the restored state returns byte-identical
// solutions.
func TestSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	src := solve.NewSession()
	results := populateSession(t, src)

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	snap := buf.Bytes()

	restored, n, err := solve.RestoreSession(bytes.NewReader(snap), 0)
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	srcStats, gotStats := src.Stats(), restored.Stats()
	if n != gotStats.Entries {
		t.Fatalf("installed %d entries, stats say %d", n, gotStats.Entries)
	}
	// Error entries don't travel; this populate produces none that commit,
	// except possibly infeasible derivations, which were skipped above, so
	// occupancy must carry over exactly.
	if gotStats.Entries == 0 || gotStats.Bytes == 0 {
		t.Fatalf("restored session empty: %+v", gotStats)
	}
	if gotStats.Bytes != srcStats.Bytes || gotStats.Entries != srcStats.Entries {
		t.Fatalf("occupancy diverged: restored %d entries/%d bytes, source %d/%d",
			gotStats.Entries, gotStats.Bytes, srcStats.Entries, srcStats.Bytes)
	}

	// Re-snapshot before serving anything (serving reorders the LRU list):
	// byte-identical output pins both losslessness and determinism.
	var buf2 bytes.Buffer
	if err := restored.Snapshot(&buf2); err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if !bytes.Equal(snap, buf2.Bytes()) {
		t.Fatalf("re-snapshot not byte-identical: %d vs %d bytes", len(buf2.Bytes()), len(snap))
	}

	// Every derivation re-request must hit; every re-solve must reproduce
	// the original solution byte for byte.
	for _, pr := range results {
		p, err := restored.Problem(ctx, pr.inst.W, pr.variant, pr.inst.Gamma, pr.inst.Costs, pr.inst.PrivatizeCosts)
		if err != nil {
			t.Fatalf("restored derivation failed: %v", err)
		}
		opts := solve.Options{Variant: pr.variant}
		if pr.res.Frontier != nil {
			if f := restored.Warm(solve.ProblemFingerprint(p, pr.variant)); f == nil {
				t.Fatalf("%s/%s: warm frontier did not survive the snapshot", pr.solver, pr.variant)
			} else {
				opts.Resume = f
			}
		}
		res, err := solve.Solve(ctx, pr.solver, p, opts)
		if err != nil {
			t.Fatalf("restored solve %s: %v", pr.solver, err)
		}
		// Costs.Sum adds in sorted-key order, so two solves of the same
		// problem produce bit-identical costs. The portfolio races its
		// inner solvers and cancels the losers, so under scheduler noise a
		// different winner can return a different equally-optimal set —
		// identity of the solution sets is only an invariant for the
		// deterministic solvers.
		if res.Cost != pr.res.Cost {
			t.Fatalf("%s/%s: restored cost diverged: %g vs %g",
				pr.solver, pr.variant, res.Cost, pr.res.Cost)
		}
		if pr.solver != "portfolio" &&
			(strings.Join(res.Solution.Hidden.Sorted(), ",") != strings.Join(pr.res.Solution.Hidden.Sorted(), ",") ||
				strings.Join(res.Solution.Privatized.Sorted(), ",") != strings.Join(pr.res.Solution.Privatized.Sorted(), ",")) {
			t.Fatalf("%s/%s: restored solution diverged: cost %g hidden %v vs cost %g hidden %v",
				pr.solver, pr.variant, res.Cost, res.Solution.Hidden.Sorted(), pr.res.Cost, pr.res.Solution.Hidden.Sorted())
		}
	}
	stats := restored.Stats()
	if stats.Misses != 0 {
		t.Fatalf("restored session re-derived: %+v", stats)
	}
	if stats.Hits == 0 || stats.WarmHits == 0 {
		t.Fatalf("restored session did not serve from cache: %+v", stats)
	}
}

// TestRestoreRejectsCorruption: every single-byte flip, every truncation
// point, an empty stream, and a version bump all restore to an EMPTY
// session with an error — never a panic, never a partial install.
func TestRestoreRejectsCorruption(t *testing.T) {
	src := solve.NewSession()
	populateSession(t, src)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	check := func(data []byte, what string) {
		t.Helper()
		s, n, err := solve.RestoreSession(bytes.NewReader(data), 0)
		if err == nil {
			t.Fatalf("%s restored without error", what)
		}
		if n != 0 || s.Stats().Entries != 0 || s.Stats().Bytes != 0 {
			t.Fatalf("%s partially installed: n=%d stats=%+v", what, n, s.Stats())
		}
	}

	stride := len(snap)/512 + 1 // sample flips; CRC catches any single flip
	for i := 0; i < len(snap); i += stride {
		bad := append([]byte(nil), snap...)
		bad[i] ^= 0xFF
		check(bad, "flipped byte")
	}
	for _, cut := range []int{0, 1, len(snap) / 3, len(snap) - 1} {
		check(snap[:cut], "truncated stream")
	}
	check([]byte("not a snapshot at all"), "garbage")
	// A version bump must be refused outright, not migrated.
	bumped := append([]byte(nil), snap...)
	bumped[4]++ // version field sits right after the 4-byte magic
	check(bumped, "version bump")
}

// TestRestoreHonorsBudget: restoring a large snapshot into a small session
// installs through the normal accounting paths, so the budget holds and
// only the most recently used tail survives.
func TestRestoreHonorsBudget(t *testing.T) {
	src := solve.NewSession()
	populateSession(t, src)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := src.Stats().Bytes
	budget := full / 3
	s, n, err := solve.RestoreSession(bytes.NewReader(buf.Bytes()), budget)
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	stats := s.Stats()
	if stats.Bytes > budget {
		t.Fatalf("budget %d exceeded: %d bytes resident", budget, stats.Bytes)
	}
	if n == 0 || stats.Entries == 0 {
		t.Fatal("budgeted restore kept nothing")
	}
	if stats.Entries >= src.Stats().Entries {
		t.Fatalf("budgeted restore evicted nothing: %d entries", stats.Entries)
	}
}

// TestRestoreKeepsLiveEntries: restoring into a session that already holds
// a key keeps the live entry (live state is newer than any snapshot file).
func TestRestoreKeepsLiveEntries(t *testing.T) {
	ctx := context.Background()
	inst := gen.MustNew(gen.Classes()[0].Cfg, 3)

	src := solve.NewSession()
	p1, err := src.Problem(ctx, inst.W, secureview.Set, inst.Gamma, inst.Costs, inst.PrivatizeCosts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	live := solve.NewSession()
	p2, err := live.Problem(ctx, inst.W, secureview.Set, inst.Gamma, inst.Costs, inst.PrivatizeCosts)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := live.Restore(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("Restore over live entry: n=%d err=%v", n, err)
	}
	got, err := live.Problem(ctx, inst.W, secureview.Set, inst.Gamma, inst.Costs, inst.PrivatizeCosts)
	if err != nil {
		t.Fatal(err)
	}
	if got != p2 {
		t.Fatal("restore replaced a live entry")
	}
	_ = p1
}
