package solve_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"secureview/internal/gen"
	"secureview/internal/privacy"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

func tinyInstance(t testing.TB, seed int64) *gen.Instance {
	t.Helper()
	it, err := gen.New(gen.Config{Topology: gen.Chain, Modules: 2, FanIn: 1, FanOut: 1}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return it
}

// TestSessionEvictionStaysUnderBudget drives 100+ distinct workflows
// through a byte-capped session and asserts the accounted size never
// exceeds the budget, eviction actually fires, and an evicted fingerprint
// re-derives to an identical problem.
func TestSessionEvictionStaysUnderBudget(t *testing.T) {
	const capBytes = 16 << 10
	sess := solve.NewSessionBytes(capBytes)
	const n = 110
	for seed := int64(0); seed < n; seed++ {
		it := tinyInstance(t, seed)
		p, err := sess.Problem(context.Background(), it.W, secureview.Set,
			it.Gamma, it.Costs, it.PrivatizeCosts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p == nil {
			t.Fatalf("seed %d: nil problem", seed)
		}
		st := sess.Stats()
		if st.Bytes > capBytes {
			t.Fatalf("seed %d: session holds %d bytes, budget %d", seed, st.Bytes, capBytes)
		}
		if st.MaxBytes != capBytes {
			t.Fatalf("MaxBytes = %d, want %d", st.MaxBytes, capBytes)
		}
	}
	st := sess.Stats()
	if st.Misses != n {
		t.Fatalf("misses = %d, want %d (distinct workflows)", st.Misses, n)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions across %d workflows under a %d-byte budget (bytes=%d entries=%d)",
			n, capBytes, st.Bytes, st.Entries)
	}
	if st.Entries >= n {
		t.Fatalf("entries = %d, want fewer than %d after eviction", st.Entries, n)
	}

	// Seed 0 was evicted long ago: re-requesting it re-derives (a miss,
	// not a hit) and reproduces the same problem content.
	it := tinyInstance(t, 0)
	direct, err := it.Derive()
	if err != nil {
		t.Fatal(err)
	}
	p, err := sess.Problem(context.Background(), it.W, secureview.Set,
		it.Gamma, it.Costs, it.PrivatizeCosts)
	if err != nil {
		t.Fatal(err)
	}
	st2 := sess.Stats()
	if st2.Misses != st.Misses+1 || st2.Hits != st.Hits {
		t.Fatalf("evicted re-request: hits %d→%d misses %d→%d, want one more miss",
			st.Hits, st2.Hits, st.Misses, st2.Misses)
	}
	if gen.ProblemFingerprint(p) != gen.ProblemFingerprint(direct) {
		t.Fatal("re-derived problem differs from the direct derivation")
	}
}

// TestSessionEvictionCoversOracles: compiled oracle tables are accounted
// and evicted under the same budget as derived problems.
func TestSessionEvictionCoversOracles(t *testing.T) {
	sess := solve.NewSessionBytes(8 << 10)
	wide := func(t testing.TB, seed int64) *gen.Instance {
		t.Helper()
		it, err := gen.New(gen.Config{Topology: gen.Chain, Modules: 3, FanIn: 2, FanOut: 2}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return it
	}
	for seed := int64(0); seed < 40; seed++ {
		it := wide(t, seed)
		for _, m := range it.W.PrivateModules() {
			if _, err := sess.Compiled(privacy.NewModuleView(m)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if st := sess.Stats(); st.Bytes > st.MaxBytes {
				t.Fatalf("seed %d: %d bytes over the %d budget", seed, st.Bytes, st.MaxBytes)
			}
		}
	}
	if st := sess.Stats(); st.Evictions == 0 {
		t.Fatal("no oracle evictions under pressure")
	}

	// A hot entry is touched back to the front and survives pressure.
	hot := privacy.NewModuleView(wide(t, 1000).W.PrivateModules()[0])
	first, err := sess.Compiled(hot)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2000); seed < 2010; seed++ {
		it := wide(t, seed)
		if _, err := sess.Compiled(privacy.NewModuleView(it.W.PrivateModules()[0])); err != nil {
			t.Fatal(err)
		}
		if again, err := sess.Compiled(hot); err != nil || again != first {
			t.Fatalf("hot entry evicted while continuously used (err=%v, shared=%v)", err, again == first)
		}
	}
}

// TestSessionUnboundedNeverEvicts pins the historical NewSession behavior.
func TestSessionUnboundedNeverEvicts(t *testing.T) {
	sess := solve.NewSession()
	for seed := int64(0); seed < 30; seed++ {
		it := tinyInstance(t, seed)
		if _, err := sess.Problem(context.Background(), it.W, secureview.Set,
			it.Gamma, it.Costs, it.PrivatizeCosts); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.Evictions != 0 || st.Entries != 30 || st.MaxBytes != 0 {
		t.Fatalf("unbounded session evicted: %+v", st)
	}
	if st.Bytes <= 0 {
		t.Fatal("unbounded session does not account sizes")
	}
}

// countdownCtx is live for the first n Err() calls and cancelled after:
// it deterministically reproduces a caller whose deadline dies between the
// Session's entry check and the start of derivation.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	n     int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestSessionCancelledMissDoesNotPoison: a caller cancelled inside the miss
// path (after the entry was created, before derivation) must return its
// context error WITHOUT caching it — the next caller derives normally.
func TestSessionCancelledMissDoesNotPoison(t *testing.T) {
	it := tinyInstance(t, 7)
	sess := solve.NewSession()

	ctx := &countdownCtx{Context: context.Background(), n: 1}
	if _, err := sess.Problem(ctx, it.W, secureview.Set,
		it.Gamma, it.Costs, it.PrivatizeCosts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled miss returned %v, want context.Canceled", err)
	}
	if st := sess.Stats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("cancelled miss counted in stats: %+v", st)
	}
	// The abandoned entry is discarded, not left as an unevictable zombie.
	if st := sess.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled miss left %d entries behind", st.Entries)
	}

	// The entry is not poisoned: a healthy caller derives and succeeds.
	p, err := sess.Problem(context.Background(), it.W, secureview.Set,
		it.Gamma, it.Costs, it.PrivatizeCosts)
	if err != nil {
		t.Fatalf("entry poisoned by the cancelled caller: %v", err)
	}
	if p == nil {
		t.Fatal("nil problem after retry")
	}
	if st := sess.Stats(); st.Misses != 1 {
		t.Fatalf("retry did not derive: %+v", st)
	}
	// And the successful derivation IS cached for everyone after.
	again, err := sess.Problem(context.Background(), it.W, secureview.Set,
		it.Gamma, it.Costs, it.PrivatizeCosts)
	if err != nil || again != p {
		t.Fatalf("post-retry request not served from cache (err=%v)", err)
	}
}

// TestSessionCancelledBeforeLookup: the fast pre-check still applies.
func TestSessionCancelledBeforeLookup(t *testing.T) {
	it := tinyInstance(t, 8)
	sess := solve.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Problem(ctx, it.W, secureview.Set,
		it.Gamma, it.Costs, it.PrivatizeCosts); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := sess.Stats(); st.Entries != 0 {
		t.Fatalf("dead-on-arrival request created an entry: %+v", st)
	}
}

// TestSolveBatchEmpty: an empty batch short-circuits — no workers, no
// allocation, immediate empty result.
func TestSolveBatchEmpty(t *testing.T) {
	done := make(chan []solve.JobResult, 1)
	go func() { done <- solve.SolveBatch(context.Background(), nil, 8) }()
	select {
	case res := <-done:
		if len(res) != 0 {
			t.Fatalf("empty batch returned %d results", len(res))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("empty batch did not return")
	}
	if res := solve.SolveBatch(context.Background(), []solve.Job{}, 0); len(res) != 0 {
		t.Fatalf("empty slice batch returned %d results", len(res))
	}
}

// TestSolveBatchMoreWorkersThanJobs: the pool clamps to the job count and
// still returns complete, ordered results.
func TestSolveBatchMoreWorkersThanJobs(t *testing.T) {
	p := gen.Problem(gen.ProblemConfig{Modules: 4}, 1)
	jobs := []solve.Job{
		{Name: "a", Problem: p, Solver: "exact", Options: solve.Options{Variant: secureview.Set}},
		{Name: "b", Problem: p, Solver: "greedy", Options: solve.Options{Variant: secureview.Set}},
	}
	results := solve.SolveBatch(context.Background(), jobs, 64)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Job.Name != jobs[i].Name {
			t.Fatalf("result %d out of order: %q", i, r.Job.Name)
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Job.Name, r.Err)
		}
		if !p.Feasible(r.Result.Solution, secureview.Set) {
			t.Fatalf("%s: infeasible solution", r.Job.Name)
		}
	}
}
