package server

import (
	"fmt"

	"secureview/internal/gen"
	"secureview/internal/secureview"
	"secureview/internal/solve"
	"secureview/internal/spec"
)

// SolveRequest is the wire shape of one solve job. Exactly one of Spec,
// Generated, CSV and Corpus names the instance — the four forms of the
// canonical gen.InstanceRef pipeline:
//
//   - Spec is an internal/spec workflow document (modules with truth tables
//     or built-in kinds, costs, Γ); the server derives the Secure-View
//     problem through its shared Session, so repeated requests against the
//     same workflow content pay one derivation.
//   - Generated is a (class, seed) reference into the internal/gen scenario
//     space: workflow topology classes (gen.Classes) derive like specs;
//     abstract instance classes (gen.ProblemClasses and the mega-scale
//     gen.MegaProblemClasses) are generated directly.
//   - CSV pairs a spec document with a recorded provenance log; the
//     requirement lists derive from the recorded projection (partial-log
//     semantics), so only the set variant is servable and the derivation
//     bypasses the shared Session (its cache keys ignore recorded logs).
//   - Corpus names a committed hard-instance corpus entry by ID or
//     unambiguous ID prefix (internal/gen/corpus).
type SolveRequest struct {
	Spec      *spec.Document `json:"spec,omitempty"`
	Generated *GeneratedRef  `json:"generated,omitempty"`
	CSV       *gen.CSVRef    `json:"csv,omitempty"`
	Corpus    string         `json:"corpus,omitempty"`
	// Solver is the internal/solve registry key (see GET /v1/solvers).
	Solver string `json:"solver"`
	// Variant is "set" (default) or "cardinality".
	Variant string `json:"variant,omitempty"`
	// Gamma overrides the document's or class's privacy requirement (0 =
	// keep the instance's own Γ, or 2 when neither specifies one).
	Gamma uint64 `json:"gamma,omitempty"`
	// TimeoutMs bounds this request (0 = the server's default deadline;
	// values above the server's maximum are clamped). The deadline maps to
	// solve.Options.Timeout and propagates through the solver cancellation
	// contract, so expiry surfaces within one pruning epoch.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Base names the fingerprint of an earlier response to warm-start from
	// (SolveResponse.Fingerprint). When the server still holds warm-start
	// state for it, an engine solve resumes from that state — sound across
	// cost-only edits because safety verdicts are cost-independent. A
	// missing or evicted base silently degrades to a cold solve; the
	// response's Warm field reports which happened.
	Base string `json:"base,omitempty"`
	// Options tunes the solver budgets (zero fields keep solve defaults).
	Options *OptionsSpec `json:"options,omitempty"`
}

// GeneratedRef names a generated scenario: Class is a gen.Classes workflow
// topology class or a gen.ProblemClasses abstract-instance class, Seed the
// deterministic generator seed.
type GeneratedRef struct {
	Class string `json:"class"`
	Seed  int64  `json:"seed"`
}

// OptionsSpec mirrors the tunable subset of solve.Options.
type OptionsSpec struct {
	NodeBudget int   `json:"nodeBudget,omitempty"`
	MaxAttrs   int   `json:"maxAttrs,omitempty"`
	Workers    int   `json:"workers,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	Trials     int   `json:"trials,omitempty"`
}

// SolveResponse is the wire shape of a solve outcome. Status is "optimal"
// when optimality was proven, "feasible" for a certified heuristic answer,
// and "partial" when the deadline expired but the solver carried a feasible
// incumbent out (served with HTTP 206, the cmd/secureview exit-code-3
// analog).
type SolveResponse struct {
	Status     string       `json:"status"`
	Solver     string       `json:"solver"`
	Variant    string       `json:"variant"`
	Hidden     []string     `json:"hidden"`
	Privatized []string     `json:"privatized"`
	Cost       float64      `json:"cost"`
	Optimal    bool         `json:"optimal"`
	Partial    bool         `json:"partial"`
	Bound      BoundSpec    `json:"bound"`
	Counters   CountersSpec `json:"counters"`
	ElapsedMs  int64        `json:"elapsedMs"`
	// Fingerprint identifies THIS request's problem structure (costs
	// excluded) — always returned, whether or not the request named a base,
	// so an edit loop chains by echoing each response's fingerprint as the
	// next request's base.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Warm is true when the solver actually resumed from the request's base
	// fingerprint; false on cold solves and when the base was unknown,
	// evicted, or structurally incompatible.
	Warm bool `json:"warm,omitempty"`
}

// BoundSpec is the certificate attached to a result: the LP lower bound
// and the proven approximation factor with the paper theorem backing it.
type BoundSpec struct {
	LP      float64 `json:"lp,omitempty"`
	Factor  float64 `json:"factor,omitempty"`
	Theorem string  `json:"theorem,omitempty"`
}

// CountersSpec reports search effort.
type CountersSpec struct {
	Nodes   int `json:"nodes,omitempty"`
	Checked int `json:"checked,omitempty"`
	Pruned  int `json:"pruned,omitempty"`
	// MemoHits counts candidates a warm-started engine answered from its
	// imported verdict memo instead of the oracle.
	MemoHits int `json:"memoHits,omitempty"`
}

// BatchRequest runs up to the server's job cap through solve.SolveBatch.
type BatchRequest struct {
	Jobs []SolveRequest `json:"jobs"`
}

// BatchResult is one job's outcome: Response on success or partial,
// Error otherwise. Code carries the HTTP status the job would have
// received as a single request.
type BatchResult struct {
	Code     int            `json:"code"`
	Response *SolveResponse `json:"response,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// BatchResponse pairs results with the request's jobs, in order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// SolversResponse is the GET /v1/solvers payload: every registered solver
// with its declared capabilities (variants, exactness, certification,
// structural limits and the certified-factor description), straight from
// the solve registry's Capabilities declarations.
type SolversResponse struct {
	Solvers []solve.Info `json:"solvers"`
}

// StatsResponse is the GET /v1/stats payload: shared-Session cache
// effectiveness and occupancy (eviction observable via Evictions/Bytes),
// the admission gauge, process lifetime, and — when the features are
// configured — snapshot and shard-ring observability.
type StatsResponse struct {
	Session  solve.SessionStats `json:"session"`
	InFlight int64              `json:"inFlight"`
	Capacity int                `json:"capacity"`
	// UptimeSeconds and StartTime (RFC 3339, UTC) date the process.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	StartTime     string  `json:"startTime"`
	// Ready mirrors /readyz: false only while a boot restore is running.
	Ready bool `json:"ready"`
	// Snapshot is present when -snapshot-path is configured.
	Snapshot *SnapshotStats `json:"snapshot,omitempty"`
	// Ring is present in shard mode (-peers).
	Ring *RingStats `json:"ring,omitempty"`
}

// SnapshotStats reports session snapshot/restore state.
type SnapshotStats struct {
	Path string `json:"path"`
	// LastAgeSeconds is the age of the newest snapshot written by THIS
	// process, or -1 when none has been written yet.
	LastAgeSeconds float64 `json:"lastAgeSeconds"`
	// LastBytes is that snapshot's size on disk.
	LastBytes int64 `json:"lastBytes"`
	// RestoredEntries counts cache entries loaded by the boot restore;
	// RestoreHit is true when the boot restore found a usable snapshot.
	RestoredEntries int64 `json:"restoredEntries"`
	RestoreHit      bool  `json:"restoreHit"`
}

// RingStats reports shard-mode routing activity on this replica.
type RingStats struct {
	Self  string   `json:"self"`
	Nodes []string `json:"nodes"`
	// Proxied counts requests this replica relayed to their owner;
	// Forwarded counts requests it served because a peer relayed them here;
	// OwnedLocal counts routable requests it owned itself; Fallbacks counts
	// owner transport failures absorbed by serving locally.
	Proxied    int64 `json:"proxied"`
	Forwarded  int64 `json:"forwarded"`
	OwnedLocal int64 `json:"ownedLocal"`
	Fallbacks  int64 `json:"fallbacks"`
}

// SnapshotResponse is the POST /v1/snapshot payload: where the snapshot
// landed and how many bytes it holds.
type SnapshotResponse struct {
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// parseVariant maps the wire name to the secureview constant.
func parseVariant(s string) (secureview.Variant, error) {
	switch s {
	case "", "set":
		return secureview.Set, nil
	case "cardinality", "card":
		return secureview.Cardinality, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (want set | cardinality)", s)
	}
}

// variantName is the inverse of parseVariant for responses.
func variantName(v secureview.Variant) string {
	if v == secureview.Cardinality {
		return "cardinality"
	}
	return "set"
}

// instanceRef lowers the request's instance source onto the canonical
// gen.InstanceRef. The "exactly one source" validation happens inside
// gen.Resolve, so every consumer of the pipeline rejects ambiguous
// references with the same message.
func (r *SolveRequest) instanceRef() gen.InstanceRef {
	ref := gen.InstanceRef{Spec: r.Spec, CSV: r.CSV, Corpus: r.Corpus, Gamma: r.Gamma}
	if r.Generated != nil {
		ref.Class, ref.Seed = r.Generated.Class, r.Generated.Seed
	}
	return ref
}

// solveOptions lowers the wire options onto solve.Options.
func (r *SolveRequest) solveOptions(v secureview.Variant) solve.Options {
	opts := solve.Options{Variant: v}
	if o := r.Options; o != nil {
		opts.NodeBudget = o.NodeBudget
		opts.MaxAttrs = o.MaxAttrs
		opts.Workers = o.Workers
		opts.Seed = o.Seed
		opts.Trials = o.Trials
	}
	return opts
}

// sortedNames renders a name set as a JSON-friendly sorted slice (never
// null).
func sortedNames(s interface{ Sorted() []string }) []string {
	out := s.Sorted()
	if out == nil {
		out = []string{}
	}
	return out
}
