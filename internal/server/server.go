// Package server is the HTTP/JSON front-end over the internal/solve
// registry: it turns the library's Session caching, SolveBatch sharding and
// end-to-end cancellation contract into a long-running network service.
//
// Endpoints:
//
//	GET  /healthz     liveness probe
//	GET  /v1/solvers  registered solvers with declared capabilities
//	GET  /v1/stats    shared-Session cache stats and the admission gauge
//	POST /v1/solve    one SolveRequest -> SolveResponse
//	POST /v1/batch    BatchRequest -> BatchResponse via solve.SolveBatch
//
// Admission: at most Config.MaxInFlight solver jobs run at once — a solve
// weighs one slot, a batch weighs min(jobs, BatchWorkers), its true
// concurrency; excess requests are rejected immediately with 429 and a
// Retry-After hint instead of queueing, so load sheds at the edge and
// in-flight work keeps its latency. Every admitted request gets a deadline (the client's
// timeoutMs clamped to Config.MaxTimeout, or Config.DefaultTimeout) that
// maps to solve.Options.Timeout and gates the Session derivation, so a
// request expires within one pruning epoch wherever it is. A deadline
// expiry with a feasible incumbent returns 206 with status "partial" — the
// HTTP analog of cmd/secureview's exit code 3 — and one without returns
// 504.
//
// Warm starts: every solve response carries the problem's structure
// fingerprint (costs excluded). A client editing only costs echoes it back
// as the next request's "base"; the engine solver then resumes from the
// previous run's domination frontiers and verdict memo instead of
// re-testing the whole candidate space, which turns an edit loop's
// tens-of-milliseconds solves into low-millisecond ones. An unknown or
// evicted base silently falls back to a cold solve (the response's "warm"
// field reports which path ran), so chaining is always safe.
//
// The shared Session is size-accounted: derived problems, compiled oracle
// tables and warm-start frontiers are evicted least-recently-used beyond
// Config.SessionBytes, so serving an unbounded stream of distinct workflows
// holds steady-state memory (watch /v1/stats to size the budget).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"secureview/internal/gen"
	_ "secureview/internal/gen/corpus" // register the corpus-ID resolver
	"secureview/internal/ring"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// Config sizes the server. The zero value is usable; every field has a
// production-minded default.
type Config struct {
	// MaxInFlight bounds concurrently running solver jobs (default
	// 2×GOMAXPROCS); a solve weighs 1 slot, a batch min(jobs,
	// BatchWorkers). Requests that cannot claim their weight get 429.
	// Must be ≥ BatchWorkers for full-width batches to be admissible.
	MaxInFlight int
	// DefaultTimeout is the per-request deadline when the client sends
	// none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (default 5m).
	MaxTimeout time.Duration
	// SessionBytes is the shared Session's LRU byte budget
	// (default 256 MiB; <0 = unbounded).
	SessionBytes int64
	// BatchWorkers is the SolveBatch pool size (default GOMAXPROCS).
	BatchWorkers int
	// MaxBatchJobs bounds jobs per batch request (default 64).
	MaxBatchJobs int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// SnapshotPath, when non-empty, enables session snapshot/restore: the
	// server restores the file on boot (serving 503 from /readyz until the
	// restore settles), rewrites it every SnapshotEvery and on shutdown, and
	// accepts POST /v1/snapshot for on-demand writes. A missing, corrupt or
	// version-bumped file restores to an empty session — logged, never fatal.
	SnapshotPath string
	// SnapshotEvery is the periodic snapshot interval when SnapshotPath is
	// set (default 5m; <0 disables the ticker, leaving boot/shutdown/manual
	// snapshots only).
	SnapshotEvery time.Duration
	// Self and Peers enable shard mode: Peers lists every replica's base URL
	// (scheme://host:port, self included or not — it is deduplicated) and
	// Self names this replica's own entry. Request fingerprints are routed
	// over a consistent-hash ring; a replica that does not own a fingerprint
	// proxies the request to the owner, so each cache entry lives (hot) on
	// exactly one replica. Empty Peers is single-node mode.
	Self  string
	Peers []string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.SessionBytes == 0 {
		c.SessionBytes = 256 << 20
	}
	if c.SessionBytes < 0 {
		c.SessionBytes = 0 // unbounded
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 5 * time.Minute
	}
	return c
}

// Server serves the solve registry over HTTP. Create with New; safe for
// concurrent use.
type Server struct {
	cfg      Config
	sess     *solve.Session
	sem      chan struct{}
	inFlight atomic.Int64
	start    time.Time

	// ready flips once boot restore has settled (immediately when no
	// snapshot path is configured); /readyz serves 503 until then.
	ready atomic.Bool

	// Snapshot bookkeeping: writes are serialized by snapMu; the atomics
	// feed /v1/stats.
	snapMu        sync.Mutex
	lastSnapNanos atomic.Int64
	lastSnapBytes atomic.Int64
	restored      atomic.Int64
	restoreHit    atomic.Bool

	// Shard mode: nil ring means single-node. The proxy client carries
	// forwarded solves to their owner; the counters feed /v1/stats.
	ring       *ring.Ring
	client     *http.Client
	proxied    atomic.Int64
	forwarded  atomic.Int64
	fallbacks  atomic.Int64
	ownedLocal atomic.Int64
}

// New builds a server with its own size-capped Session. Shard mode
// (Config.Peers) errors surface here because a malformed ring must refuse
// to start, not quietly serve unsharded.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		sess:  solve.NewSessionBytes(cfg.SessionBytes),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
	}
	if len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			return nil, fmt.Errorf("server: -peers requires -self")
		}
		r, err := ring.New(cfg.Self, cfg.Peers)
		if err != nil {
			return nil, err
		}
		s.ring = r
		s.client = &http.Client{Timeout: cfg.MaxTimeout + 10*time.Second}
	}
	// With no snapshot to restore the server is ready the moment it can
	// accept connections.
	if cfg.SnapshotPath == "" {
		s.ready.Store(true)
	}
	return s, nil
}

// MustNew is New panicking on error, for tests and static configurations.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Session exposes the shared cache (stats, tests).
func (s *Server) Session() *solve.Session { return s.sess }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "restoring")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if s.cfg.SnapshotPath == "" {
			writeError(w, http.StatusConflict, "no snapshot path configured (-snapshot-path)")
			return
		}
		n, err := s.WriteSnapshot()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, SnapshotResponse{Path: s.cfg.SnapshotPath, Bytes: n})
	})
	mux.HandleFunc("/v1/solvers", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, SolversResponse{Solvers: solve.Solvers()})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, s.stats())
	})
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	return mux
}

// admit claims n admission slots without queueing, so MaxInFlight bounds
// concurrently running solver jobs rather than HTTP requests: a single
// solve weighs 1, a batch weighs the number of jobs it can actually run at
// once. The release func is nil when fewer than n slots are free (partial
// claims are rolled back before returning).
func (s *Server) admit(n int) func() {
	for taken := 0; taken < n; taken++ {
		select {
		case s.sem <- struct{}{}:
		default:
			for ; taken > 0; taken-- {
				<-s.sem
			}
			return nil
		}
	}
	s.inFlight.Add(int64(n))
	released := false
	return func() {
		if !released {
			released = true
			s.inFlight.Add(-int64(n))
			for i := 0; i < n; i++ {
				<-s.sem
			}
		}
	}
}

// retryAfter derives the Retry-After hint for a 429: the rejected request's
// weight scaled by how saturated the admission gate is (in-flight weight
// over capacity), so a single solve against a briefly-full server retries in
// a second while a full-width batch against a loaded one backs off longer.
// Clamped to [1, 30] seconds — the ceiling keeps a pathological gauge
// reading from parking clients for minutes.
func (s *Server) retryAfter(need int) string {
	capacity := int64(s.cfg.MaxInFlight)
	inFlight := s.inFlight.Load()
	secs := (int64(need)*inFlight + capacity - 1) / capacity
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.FormatInt(secs, 10)
}

// timeout clamps the client's requested deadline.
func (s *Server) timeout(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if owner, remote := s.routeRemote(r, &req); remote {
		if s.proxySolve(w, owner, &req) {
			return
		}
		// Transport failure to the owner: serve locally rather than fail the
		// request — the cache entry is rebuildable, only its locality is lost.
	}
	release := s.admit(1)
	if release == nil {
		w.Header().Set("Retry-After", s.retryAfter(1))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("server saturated (%d job slots in use)", s.cfg.MaxInFlight))
		return
	}
	defer release()

	d := s.timeout(req.TimeoutMs)
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	code, resp, errMsg := s.runJob(ctx, &req, d)
	if errMsg != "" {
		writeError(w, code, errMsg)
		return
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > s.cfg.MaxBatchJobs {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d jobs exceeds the %d-job cap", len(req.Jobs), s.cfg.MaxBatchJobs))
		return
	}
	// A batch runs at most min(jobs, BatchWorkers) solver jobs at once, so
	// that is its admission weight — MaxInFlight bounds real concurrency
	// whether load arrives as single solves or batches.
	weight := len(req.Jobs)
	if weight > s.cfg.BatchWorkers {
		weight = s.cfg.BatchWorkers
	}
	release := s.admit(weight)
	if release == nil {
		w.Header().Set("Retry-After", s.retryAfter(weight))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("server saturated (batch needs %d of %d job slots)", weight, s.cfg.MaxInFlight))
		return
	}
	defer release()

	// The batch as a whole runs under the server's ceiling; each job
	// carries its own clamped deadline through solve.Options.Timeout, and
	// each job's Session derivation is gated by that same deadline, so a
	// job naming a heavy workflow expires to its own 504 instead of
	// stalling the batch. Resolution fans out over the same worker count
	// as the solve pool — derivation dominates end-to-end latency, and the
	// shared Session singleflights duplicate fingerprints across workers.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxTimeout)
	defer cancel()

	type resolvedJob struct {
		v      secureview.Variant
		p      *secureview.Problem
		code   int
		errMsg string
		// done carries a proxied job's finished result: in shard mode each
		// job routes independently (one batch can span every owner), so
		// non-owned jobs are forwarded as single solves from the resolution
		// worker and skip the local pipeline entirely.
		done *BatchResult
	}
	resolved := make([]resolvedJob, len(req.Jobs))
	workers := weight
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(req.Jobs) {
					return
				}
				jr := &req.Jobs[i]
				if owner, remote := s.routeRemote(r, jr); remote {
					if br, ok := s.proxyBatchJob(owner, jr); ok {
						resolved[i] = resolvedJob{done: br}
						continue
					}
					// Owner unreachable: resolve and solve locally below.
				}
				jctx, jcancel := context.WithTimeout(ctx, s.timeout(jr.TimeoutMs))
				v, p, code, errMsg := s.resolve(jctx, jr)
				jcancel()
				resolved[i] = resolvedJob{v: v, p: p, code: code, errMsg: errMsg}
			}
		}()
	}
	wg.Wait()

	out := BatchResponse{Results: make([]BatchResult, len(req.Jobs))}
	jobs := make([]solve.Job, 0, len(req.Jobs))
	jobIdx := make([]int, 0, len(req.Jobs))
	jobFps := make([]string, 0, len(req.Jobs))
	for i, rj := range resolved {
		if rj.done != nil {
			out.Results[i] = *rj.done
			continue
		}
		if rj.errMsg != "" {
			out.Results[i] = BatchResult{Code: rj.code, Error: rj.errMsg}
			continue
		}
		jr := &req.Jobs[i]
		opts := jr.solveOptions(rj.v)
		opts.Timeout = s.timeout(jr.TimeoutMs)
		if jr.Base != "" {
			opts.Resume = s.sess.Warm(jr.Base)
		}
		jobs = append(jobs, solve.Job{
			Name:    fmt.Sprintf("job%d", i),
			Problem: rj.p,
			Solver:  jr.Solver,
			Options: opts,
		})
		jobIdx = append(jobIdx, i)
		jobFps = append(jobFps, solve.ProblemFingerprint(rj.p, rj.v))
	}
	for j, res := range solve.SolveBatch(ctx, jobs, workers) {
		i := jobIdx[j]
		if res.Result.Frontier != nil {
			s.sess.StoreWarm(jobFps[j], res.Result.Frontier)
		}
		elapsed := int64(0) // per-job wall clock is folded into the batch
		code, resp, errMsg := mapOutcome(res.Result, res.Err, elapsed)
		if resp != nil {
			resp.Fingerprint = jobFps[j]
			resp.Warm = res.Result.Resumed
		}
		out.Results[i] = BatchResult{Code: code, Response: resp, Error: errMsg}
	}
	writeJSON(w, http.StatusOK, out)
}

// runJob resolves and solves one request, returning the HTTP status, the
// response on success/partial, or an error message. The request's problem
// fingerprint is computed from the resolved instance (never trusted from
// the client), warm-start state for req.Base is looked up — an unknown or
// evicted base silently degrades to a cold solve — and any frontier the
// solver exports is stored under the request's own fingerprint so the
// client can chain cost edits.
func (s *Server) runJob(ctx context.Context, req *SolveRequest, d time.Duration) (int, *SolveResponse, string) {
	v, p, code, errMsg := s.resolve(ctx, req)
	if errMsg != "" {
		return code, nil, errMsg
	}
	opts := req.solveOptions(v)
	opts.Timeout = d
	fp := solve.ProblemFingerprint(p, v)
	if req.Base != "" {
		opts.Resume = s.sess.Warm(req.Base)
	}
	start := time.Now()
	res, err := solve.Solve(ctx, req.Solver, p, opts)
	if res.Frontier != nil {
		s.sess.StoreWarm(fp, res.Frontier)
	}
	code, resp, errMsg := mapOutcome(res, err, time.Since(start).Milliseconds())
	if resp != nil {
		resp.Fingerprint = fp
		resp.Warm = res.Resumed
	}
	return code, resp, errMsg
}

// resolve materializes the request's problem through the canonical
// gen.InstanceRef pipeline (spec document, generated class, provenance
// CSV, corpus ID). Workflow-backed instances derive through the shared
// Session — except CSV-backed ones, whose requirement lists depend on the
// recorded log that Session cache keys do not capture, so they derive
// directly (set variant only; DeriveCardProblem has no partial-log form).
func (s *Server) resolve(ctx context.Context, req *SolveRequest) (secureview.Variant, *secureview.Problem, int, string) {
	v, err := parseVariant(req.Variant)
	if err != nil {
		return 0, nil, http.StatusBadRequest, err.Error()
	}
	sv, ok := solve.Get(req.Solver)
	if !ok {
		return 0, nil, http.StatusBadRequest,
			fmt.Sprintf("unknown solver %q (have %v)", req.Solver, solve.Names())
	}

	var p *secureview.Problem
	rv, err := gen.Resolve(req.instanceRef())
	switch {
	case err != nil:
	case rv.Problem != nil:
		// Abstract instances carry their requirement lists directly; Γ and
		// the Session do not apply.
		p = rv.Problem
	case rv.Instance.Recorded != nil:
		if v == secureview.Cardinality {
			return 0, nil, http.StatusBadRequest,
				"csv instances derive from the recorded log (partial-log semantics); only the set variant is servable"
		}
		p, err = rv.Instance.Derive()
	default:
		it := rv.Instance
		p, err = s.sess.Problem(ctx, it.W, v, it.Gamma, it.Costs, it.PrivatizeCosts)
	}
	switch {
	case err == nil:
	case errors.Is(err, secureview.ErrInfeasible):
		return 0, nil, http.StatusUnprocessableEntity, err.Error()
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return 0, nil, http.StatusGatewayTimeout, "deadline expired while deriving the instance"
	default:
		return 0, nil, http.StatusBadRequest, err.Error()
	}
	if err := sv.Supports(p, v); err != nil {
		return 0, nil, http.StatusBadRequest, err.Error()
	}
	return v, p, http.StatusOK, ""
}

// mapOutcome turns a solve result into (HTTP status, response, error):
// 200 for a completed solve; 206 + status "partial" whenever the solver
// carried a feasible incumbent out of a deadline or node-budget expiry
// (the exit-code-3 analog); 504 for an empty-handed deadline; 422 for an
// empty-handed exhaustion of a client-requested node budget; 500 for
// anything else.
func mapOutcome(res solve.Result, err error, elapsedMs int64) (int, *SolveResponse, string) {
	switch {
	case err == nil:
		return http.StatusOK, toResponse(res, elapsedMs), ""
	case res.Partial:
		return http.StatusPartialContent, toResponse(res, elapsedMs), ""
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, nil, "deadline expired with no feasible incumbent"
	case errors.Is(err, secureview.ErrNodeBudget):
		return http.StatusUnprocessableEntity, nil, err.Error()
	default:
		return http.StatusInternalServerError, nil, err.Error()
	}
}

func toResponse(res solve.Result, elapsedMs int64) *SolveResponse {
	status := "feasible"
	switch {
	case res.Partial:
		status = "partial"
	case res.Optimal:
		status = "optimal"
	}
	return &SolveResponse{
		Status:     status,
		Solver:     res.Solver,
		Variant:    variantName(res.Variant),
		Hidden:     sortedNames(res.Solution.Hidden),
		Privatized: sortedNames(res.Solution.Privatized),
		Cost:       res.Cost,
		Optimal:    res.Optimal,
		Partial:    res.Partial,
		Bound: BoundSpec{
			LP:      res.Bound.LP,
			Factor:  res.Bound.Factor,
			Theorem: res.Bound.Theorem,
		},
		Counters: CountersSpec{
			Nodes:    res.Counters.Nodes,
			Checked:  res.Counters.Checked,
			Pruned:   res.Counters.Pruned,
			MemoHits: res.Counters.MemoHits,
		},
		ElapsedMs: elapsedMs,
	}
}

// readJSON decodes a POST body, enforcing method, size and strict fields.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
