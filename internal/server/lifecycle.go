package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

// stats assembles the GET /v1/stats payload.
func (s *Server) stats() StatsResponse {
	out := StatsResponse{
		Session:       s.sess.Stats(),
		InFlight:      s.inFlight.Load(),
		Capacity:      s.cfg.MaxInFlight,
		UptimeSeconds: time.Since(s.start).Seconds(),
		StartTime:     s.start.UTC().Format(time.RFC3339),
		Ready:         s.ready.Load(),
	}
	if s.cfg.SnapshotPath != "" {
		ss := &SnapshotStats{
			Path:            s.cfg.SnapshotPath,
			LastAgeSeconds:  -1,
			LastBytes:       s.lastSnapBytes.Load(),
			RestoredEntries: s.restored.Load(),
			RestoreHit:      s.restoreHit.Load(),
		}
		if ns := s.lastSnapNanos.Load(); ns > 0 {
			ss.LastAgeSeconds = time.Since(time.Unix(0, ns)).Seconds()
		}
		out.Snapshot = ss
	}
	if s.ring != nil {
		out.Ring = &RingStats{
			Self:       s.ring.Self(),
			Nodes:      s.ring.Nodes(),
			Proxied:    s.proxied.Load(),
			Forwarded:  s.forwarded.Load(),
			OwnedLocal: s.ownedLocal.Load(),
			Fallbacks:  s.fallbacks.Load(),
		}
	}
	return out
}

// WriteSnapshot serializes the session to Config.SnapshotPath atomically
// (temp file in the same directory, then rename) and returns the byte size.
// Concurrent calls serialize; each writes a complete, self-consistent file.
func (s *Server) WriteSnapshot() (int64, error) {
	if s.cfg.SnapshotPath == "" {
		return 0, fmt.Errorf("server: no snapshot path configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := os.CreateTemp(dir, ".secureview-snap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.sess.Snapshot(tmp); err != nil {
		tmp.Close()
		return 0, err
	}
	info, err := tmp.Stat()
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		return 0, err
	}
	s.lastSnapNanos.Store(time.Now().UnixNano())
	s.lastSnapBytes.Store(info.Size())
	return info.Size(), nil
}

// BootRestore loads Config.SnapshotPath into the session and flips the
// server ready. Every failure path — missing file, unreadable file, corrupt
// or version-bumped payload — degrades to an empty session and a log line;
// a server must come up cold rather than crash-loop on a bad snapshot.
func (s *Server) BootRestore(logf func(string, ...any)) {
	defer s.ready.Store(true)
	if s.cfg.SnapshotPath == "" {
		return
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f, err := os.Open(s.cfg.SnapshotPath)
	if errors.Is(err, os.ErrNotExist) {
		logf("snapshot: no file at %s, starting cold", s.cfg.SnapshotPath)
		return
	}
	if err != nil {
		logf("snapshot: open: %v (starting cold)", err)
		return
	}
	defer f.Close()
	n, err := s.sess.Restore(f)
	if err != nil {
		logf("snapshot: restore %s: %v (starting cold)", s.cfg.SnapshotPath, err)
		return
	}
	s.restored.Store(int64(n))
	s.restoreHit.Store(true)
	logf("snapshot: restored %d entries from %s", n, s.cfg.SnapshotPath)
}

// Run serves on ln until a signal arrives on sigs, then shuts down
// gracefully: stop accepting, drain in-flight requests (bounded by the
// request deadline ceiling plus slack), write a final snapshot, and return
// nil. The boot restore runs asynchronously so the listener is accepting —
// and /healthz answering — immediately; /readyz gates traffic until the
// restore settles. Periodic snapshots tick every Config.SnapshotEvery.
func (s *Server) Run(ln net.Listener, sigs <-chan os.Signal, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	go s.BootRestore(logf)

	var tickC <-chan time.Time // nil: blocks forever when snapshots are off
	if s.cfg.SnapshotPath != "" && s.cfg.SnapshotEvery > 0 {
		tick := time.NewTicker(s.cfg.SnapshotEvery)
		defer tick.Stop()
		tickC = tick.C
	}

	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	for {
		select {
		case err := <-errCh:
			return err
		case <-tickC:
			if n, err := s.WriteSnapshot(); err != nil {
				logf("snapshot: periodic write failed: %v", err)
			} else {
				logf("snapshot: wrote %d bytes to %s", n, s.cfg.SnapshotPath)
			}
		case sig := <-sigs:
			logf("received %v: draining in-flight requests", sig)
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaxTimeout+10*time.Second)
			err := hs.Shutdown(ctx)
			cancel()
			if s.cfg.SnapshotPath != "" {
				if n, werr := s.WriteSnapshot(); werr != nil {
					logf("snapshot: final write failed: %v", werr)
				} else {
					logf("snapshot: wrote final %d bytes to %s", n, s.cfg.SnapshotPath)
				}
			}
			return err
		}
	}
}
