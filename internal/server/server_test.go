package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"secureview/internal/relation"
	"secureview/internal/secureview"
	"secureview/internal/server"
	"secureview/internal/solve"
	"secureview/internal/spec"
)

// demoDoc is a derivable two-module workflow: a private bit-flip feeding a
// public formatter.
const demoDoc = `{
  "name": "demo",
  "gamma": 2,
  "costs": {"a1": 1, "a2": 2, "a3": 1},
  "privatizeCosts": {"fmt": 3},
  "modules": [
    {
      "name": "flip", "visibility": "private",
      "inputs":  [{"name": "a1", "domain": 2}],
      "outputs": [{"name": "a2", "domain": 2}],
      "kind": "table",
      "table": [{"in": [0], "out": [1]}, {"in": [1], "out": [0]}]
    },
    {
      "name": "fmt", "visibility": "public",
      "inputs":  [{"name": "a2", "domain": 2}],
      "outputs": [{"name": "a3", "domain": 2}],
      "kind": "identity"
    }
  ]
}`

func parseDoc(t *testing.T) *spec.Document {
	t.Helper()
	doc, err := spec.Parse([]byte(demoDoc))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeSolve(t *testing.T, raw []byte) server.SolveResponse {
	t.Helper()
	var out server.SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return out
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.MustNew(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestSolveSpecRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, server.Config{})
	for _, variant := range []string{"set", "cardinality"} {
		resp, raw := post(t, ts, "/v1/solve", server.SolveRequest{
			Spec: parseDoc(t), Solver: "exact", Variant: variant,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", variant, resp.StatusCode, raw)
		}
		out := decodeSolve(t, raw)
		if out.Status != "optimal" || !out.Optimal || out.Solver != "exact" || out.Variant != variant {
			t.Fatalf("%s: unexpected response %+v", variant, out)
		}
		if len(out.Hidden) == 0 || out.Cost <= 0 {
			t.Fatalf("%s: empty solution: %+v", variant, out)
		}
		if out.Bound.Theorem == "" || out.Bound.Factor != 1 {
			t.Fatalf("%s: missing optimality certificate: %+v", variant, out.Bound)
		}
	}
	// Both variants derived through ONE shared Session; the second call of
	// each variant hits the cache.
	for _, variant := range []string{"set", "cardinality"} {
		post(t, ts, "/v1/solve", server.SolveRequest{Spec: parseDoc(t), Solver: "greedy", Variant: variant})
	}
	st := s.Session().Stats()
	if st.Hits < 2 || st.Misses != 2 {
		t.Fatalf("session not shared across requests: %+v", st)
	}
}

func TestSolveGeneratedClasses(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	// Workflow topology class: derived via the Session.
	resp, raw := post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "chain", Seed: 1},
		Solver:    "exact", Variant: "set",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chain: status %d: %s", resp.StatusCode, raw)
	}
	if out := decodeSolve(t, raw); out.Status != "optimal" {
		t.Fatalf("chain: %+v", out)
	}

	// Abstract problem class: generated directly.
	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 3},
		Solver:    "bb", Variant: "cardinality",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sparse: status %d: %s", resp.StatusCode, raw)
	}
	if out := decodeSolve(t, raw); out.Status != "optimal" || out.Counters.Nodes == 0 {
		t.Fatalf("sparse: %+v", out)
	}

	// LP result carries its certificate.
	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 3},
		Solver:    "lp", Variant: "set",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lp: status %d: %s", resp.StatusCode, raw)
	}
	if out := decodeSolve(t, raw); out.Bound.LP <= 0 || out.Bound.Theorem == "" {
		t.Fatalf("lp response missing its bound certificate: %+v", out)
	}
}

func TestBatch(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	req := server.BatchRequest{Jobs: []server.SolveRequest{
		{Generated: &server.GeneratedRef{Class: "sparse", Seed: 1}, Solver: "exact", Variant: "cardinality"},
		{Generated: &server.GeneratedRef{Class: "sparse", Seed: 1}, Solver: "bb", Variant: "cardinality"},
		{Generated: &server.GeneratedRef{Class: "nope", Seed: 1}, Solver: "exact"},
		{Spec: parseDoc(t), Solver: "greedy", Variant: "set"},
	}}
	resp, raw := post(t, ts, "/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out server.BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Code != http.StatusOK || out.Results[1].Code != http.StatusOK {
		t.Fatalf("exact/bb failed: %+v", out.Results[:2])
	}
	costA, costB := out.Results[0].Response.Cost, out.Results[1].Response.Cost
	if d := costA - costB; d < -1e-9*(1+costA) || d > 1e-9*(1+costA) {
		t.Fatalf("exact %g != bb %g on one instance", costA, costB)
	}
	if out.Results[2].Code != http.StatusBadRequest || out.Results[2].Error == "" {
		t.Fatalf("unknown class not rejected per-job: %+v", out.Results[2])
	}
	if out.Results[3].Code != http.StatusOK || out.Results[3].Response.Status != "feasible" {
		t.Fatalf("greedy job: %+v", out.Results[3])
	}

	// Batch caps.
	resp, _ = post(t, ts, "/v1/batch", server.BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
	big := server.BatchRequest{Jobs: make([]server.SolveRequest, 100)}
	resp, _ = post(t, ts, "/v1/batch", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d", resp.StatusCode)
	}
}

// stallSolver blocks until its context dies (returning a partial incumbent
// when told to carry one) or until release is closed.
type stallSolver struct {
	name    string
	partial bool
	started chan struct{}
	release chan struct{}
}

func (s *stallSolver) Name() string { return s.name }

func (s *stallSolver) Capabilities() solve.Capabilities {
	return solve.Capabilities{Cardinality: true, Set: true}
}

func (s *stallSolver) Supports(p *secureview.Problem, v secureview.Variant) error { return nil }

func (s *stallSolver) Solve(ctx context.Context, p *secureview.Problem, opts solve.Options) (solve.Result, error) {
	if s.started != nil {
		select {
		case s.started <- struct{}{}:
		default:
		}
	}
	select {
	case <-ctx.Done():
		res := solve.Result{Solver: s.name, Variant: opts.Variant}
		if s.partial {
			res.Partial = true
			res.Solution = secureview.Solution{
				Hidden:     relation.NewNameSet("g0"),
				Privatized: relation.NewNameSet(),
			}
			res.Cost = 1
		}
		return res, ctx.Err()
	case <-s.release:
		return solve.Result{Solver: s.name, Variant: opts.Variant}, nil
	}
}

func TestAdmissionRejectsUnderSaturation(t *testing.T) {
	stall := &stallSolver{
		name:    "test-stall",
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	solve.Register(stall)
	t.Cleanup(func() { solve.Deregister("test-stall") })
	_, ts := newTestServer(t, server.Config{MaxInFlight: 1})

	req := server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 1},
		Solver:    "test-stall",
	}
	// Raw client call: test helpers must not t.Fatal off the test goroutine.
	var wg sync.WaitGroup
	wg.Add(1)
	first := make(chan int, 1)
	go func() {
		defer wg.Done()
		raw, _ := json.Marshal(req)
		resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(raw))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	select {
	case <-stall.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the solver")
	}

	// The slot is held: the next request sheds immediately.
	resp, raw := post(t, ts, "/v1/solve", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated solve: status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp, _ = post(t, ts, "/v1/batch", server.BatchRequest{Jobs: []server.SolveRequest{req}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d", resp.StatusCode)
	}

	// Read-only endpoints are never gated by admission.
	for _, path := range []string{"/healthz", "/v1/stats", "/v1/solvers"} {
		hr, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d under saturation", path, hr.StatusCode)
		}
	}

	close(stall.release)
	wg.Wait()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("released request: status %d", code)
	}

	// Capacity restored.
	resp, _ = post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 1},
		Solver:    "greedy",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release solve: status %d", resp.StatusCode)
	}
}

// TestBatchAdmissionWeight: a batch claims one slot per job it can run
// concurrently, so MaxInFlight bounds solver work, not HTTP requests.
func TestBatchAdmissionWeight(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxInFlight: 2, BatchWorkers: 4})
	job := server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 1},
		Solver:    "greedy", Variant: "cardinality",
	}
	// 4 jobs × 4 workers → weight 4 > 2 slots: shed.
	resp, raw := post(t, ts, "/v1/batch", server.BatchRequest{
		Jobs: []server.SolveRequest{job, job, job, job},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-weight batch: status %d: %s", resp.StatusCode, raw)
	}
	// 2 jobs → weight 2 = capacity: admitted.
	resp, raw = post(t, ts, "/v1/batch", server.BatchRequest{
		Jobs: []server.SolveRequest{job, job},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fitting batch: status %d: %s", resp.StatusCode, raw)
	}
}

func TestDeadlinePartialIncumbent(t *testing.T) {
	solve.Register(&stallSolver{name: "test-stall-partial", partial: true, release: make(chan struct{})})
	solve.Register(&stallSolver{name: "test-stall-empty", release: make(chan struct{})})
	t.Cleanup(func() {
		solve.Deregister("test-stall-partial")
		solve.Deregister("test-stall-empty")
	})
	_, ts := newTestServer(t, server.Config{})

	// Deadline + feasible incumbent -> 206 with the partial solution (the
	// HTTP analog of cmd/secureview's exit code 3).
	resp, raw := post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 1},
		Solver:    "test-stall-partial",
		TimeoutMs: 50,
	})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decodeSolve(t, raw)
	if out.Status != "partial" || !out.Partial || len(out.Hidden) == 0 || out.Cost != 1 {
		t.Fatalf("partial response: %+v", out)
	}

	// A client-requested node budget that exhausts mid-search with a
	// feasible incumbent (bb always carries its greedy seed out) is the
	// same partial contract, not a server fault.
	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "wide", Seed: 1},
		Solver:    "bb", Variant: "cardinality",
		Options: &server.OptionsSpec{NodeBudget: 1},
	})
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("node-budget exhaustion: status %d: %s", resp.StatusCode, raw)
	}
	if out := decodeSolve(t, raw); out.Status != "partial" || len(out.Hidden) == 0 {
		t.Fatalf("node-budget partial response: %+v", out)
	}

	// The exact set solver rejects an over-budget search space up front
	// with no incumbent: an unprocessable request, not a server fault.
	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "wide", Seed: 1},
		Solver:    "exact", Variant: "set",
		Options: &server.OptionsSpec{NodeBudget: 1},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("up-front budget rejection: status %d: %s", resp.StatusCode, raw)
	}

	// Deadline with no incumbent -> 504.
	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 1},
		Solver:    "test-stall-empty",
		TimeoutMs: 50,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("empty-handed deadline: status %d: %s", resp.StatusCode, raw)
	}

	// The per-job deadline applies inside batches too.
	resp, raw = post(t, ts, "/v1/batch", server.BatchRequest{Jobs: []server.SolveRequest{
		{Generated: &server.GeneratedRef{Class: "sparse", Seed: 1}, Solver: "test-stall-partial", TimeoutMs: 50},
		{Generated: &server.GeneratedRef{Class: "sparse", Seed: 1}, Solver: "greedy"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var bout server.BatchResponse
	if err := json.Unmarshal(raw, &bout); err != nil {
		t.Fatal(err)
	}
	if bout.Results[0].Code != http.StatusPartialContent || bout.Results[0].Response.Status != "partial" {
		t.Fatalf("batch partial job: %+v", bout.Results[0])
	}
	if bout.Results[1].Code != http.StatusOK {
		t.Fatalf("batch greedy job: %+v", bout.Results[1])
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"no instance", server.SolveRequest{Solver: "exact"}, http.StatusBadRequest},
		{"both instances", server.SolveRequest{
			Spec: parseDoc(t), Generated: &server.GeneratedRef{Class: "chain"}, Solver: "exact",
		}, http.StatusBadRequest},
		{"unknown solver", server.SolveRequest{
			Generated: &server.GeneratedRef{Class: "sparse"}, Solver: "quantum",
		}, http.StatusBadRequest},
		{"unknown variant", server.SolveRequest{
			Generated: &server.GeneratedRef{Class: "sparse"}, Solver: "exact", Variant: "fancy",
		}, http.StatusBadRequest},
		{"unknown class", server.SolveRequest{
			Generated: &server.GeneratedRef{Class: "mystery"}, Solver: "exact",
		}, http.StatusBadRequest},
		{"wrong-variant solver", server.SolveRequest{
			Generated: &server.GeneratedRef{Class: "sparse"}, Solver: "bb", Variant: "set",
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, raw := post(t, ts, "/v1/solve", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.want, raw)
		}
		var e server.ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", tc.name, raw)
		}
	}

	// Unknown JSON fields are rejected (catches schema drift early).
	resp, _ := ts.Client().Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader([]byte(`{"solver": "exact", "instance": "oops"}`)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}

	// An oversized body is a 413, distinguishable from malformed JSON.
	_, tsSmall := newTestServer(t, server.Config{MaxBodyBytes: 512})
	resp, _ = tsSmall.Client().Post(tsSmall.URL+"/v1/solve", "application/json",
		bytes.NewReader(bytes.Repeat([]byte(" "), 2048)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// GET on a POST endpoint.
	gr, err := ts.Client().Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: status %d", gr.StatusCode)
	}
}

func TestStatsAndSolvers(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxInFlight: 7})
	post(t, ts, "/v1/solve", server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "chain", Seed: 1}, Solver: "greedy",
	})

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Capacity != 7 || st.InFlight != 0 {
		t.Fatalf("admission gauge: %+v", st)
	}
	if st.Session.Misses == 0 || st.Session.Bytes <= 0 || st.Session.MaxBytes <= 0 {
		t.Fatalf("session stats not populated: %+v", st.Session)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	var sv server.SolversResponse
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := map[string]solve.Capabilities{}
	for _, info := range sv.Solvers {
		found[info.Name] = info.Capabilities
	}
	for _, want := range []string{"exact", "bb", "engine", "greedy", "lp",
		"approx-setcover", "approx-labelcover", "portfolio"} {
		if _, ok := found[want]; !ok {
			t.Fatalf("solver %q missing from %v", want, sv.Solvers)
		}
	}
	// Capabilities must round-trip with meaningful content, not zero values.
	if c := found["exact"]; !c.Exact || !c.Cardinality || !c.Set || c.Factor == "" {
		t.Fatalf("exact capabilities hollow: %+v", c)
	}
	if c := found["approx-setcover"]; c.Exact || !c.Certified || c.Factor == "" {
		t.Fatalf("approx-setcover capabilities wrong: %+v", c)
	}
	if c := found["engine"]; !c.AllPrivateOnly || c.MaxUniverse == 0 {
		t.Fatalf("engine capabilities wrong: %+v", c)
	}
}

// TestServerSessionEviction: a tightly capped server Session serves 100+
// distinct generated workflows while staying under its byte budget — the
// long-running-service memory contract.
func TestServerSessionEviction(t *testing.T) {
	s, ts := newTestServer(t, server.Config{SessionBytes: 32 << 10})
	for seed := int64(0); seed < 110; seed++ {
		resp, raw := post(t, ts, "/v1/solve", server.SolveRequest{
			Generated: &server.GeneratedRef{Class: "chain", Seed: seed},
			Solver:    "greedy", Variant: "set",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, raw)
		}
		if st := s.Session().Stats(); st.Bytes > st.MaxBytes {
			t.Fatalf("seed %d: session %d bytes over the %d budget", seed, st.Bytes, st.MaxBytes)
		}
	}
	st := s.Session().Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions across 110 workflows: %+v", st)
	}
}
