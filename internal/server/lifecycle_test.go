package server_test

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"secureview/internal/server"
)

func getJSON(t *testing.T, ts *httptest.Server, path string, dst any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return resp
}

// TestSnapshotRestoreOverHTTP is the operator's restart story end to end:
// populate a server, snapshot via POST /v1/snapshot, boot a second server
// from the file, and require byte-identical answers with the restored
// warm state actually resuming. A corrupted file must boot a working cold
// server, never a broken one.
func TestSnapshotRestoreOverHTTP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "session.snap")
	cfg := server.Config{SnapshotPath: path}

	a := server.MustNew(cfg)
	a.BootRestore(t.Logf) // no file yet: comes up cold and ready
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()

	// Populate: an engine solve (derives a problem, exports a frontier)
	// and a generated-class solve.
	engineReq := server.SolveRequest{Spec: allPrivateDoc(t, `{"a1": 1, "a2": 2, "b1": 3, "b2": 4}`), Solver: "engine"}
	resp, raw := post(t, tsA, "/v1/solve", engineReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	first := decodeSolve(t, raw)
	genReq := server.SolveRequest{Generated: &server.GeneratedRef{Class: "sparse", Seed: 1}, Solver: "greedy"}
	resp, raw = post(t, tsA, "/v1/solve", genReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	genFirst := decodeSolve(t, raw)

	resp, raw = post(t, tsA, "/v1/snapshot", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, raw)
	}
	var sr server.SnapshotResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Path != path || sr.Bytes <= 0 {
		t.Fatalf("snapshot response %+v", sr)
	}
	var stA server.StatsResponse
	getJSON(t, tsA, "/v1/stats", &stA)
	if stA.Snapshot == nil || stA.Snapshot.LastBytes != sr.Bytes || stA.Snapshot.LastAgeSeconds < 0 {
		t.Fatalf("stats after snapshot: %+v", stA.Snapshot)
	}
	if stA.UptimeSeconds <= 0 || stA.StartTime == "" || !stA.Ready {
		t.Fatalf("lifetime stats: %+v", stA)
	}

	// Second process: restore from the file.
	b := server.MustNew(cfg)
	b.BootRestore(t.Logf)
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	if resp := getJSON(t, tsB, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("restored server readyz %d", resp.StatusCode)
	}
	var stB server.StatsResponse
	getJSON(t, tsB, "/v1/stats", &stB)
	if stB.Snapshot == nil || !stB.Snapshot.RestoreHit || stB.Snapshot.RestoredEntries == 0 {
		t.Fatalf("restore not visible in stats: %+v", stB.Snapshot)
	}

	// The restored server must answer identically, resume warm from the
	// carried frontier, and never re-derive (zero misses).
	warmReq := engineReq
	warmReq.Base = first.Fingerprint
	resp, raw = post(t, tsB, "/v1/solve", warmReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored solve status %d: %s", resp.StatusCode, raw)
	}
	out := decodeSolve(t, raw)
	if !out.Warm {
		t.Fatal("restored server did not resume from the snapshot's frontier")
	}
	if out.Cost != first.Cost || strings.Join(out.Hidden, ",") != strings.Join(first.Hidden, ",") ||
		out.Fingerprint != first.Fingerprint {
		t.Fatalf("restored answer diverged: %+v vs %+v", out, first)
	}
	resp, raw = post(t, tsB, "/v1/solve", genReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	// Costs.Sum adds in sorted-key order, so repeated solves of the same
	// instance are bit-identical — exact equality, no ulp slack.
	if genOut := decodeSolve(t, raw); genOut.Cost != genFirst.Cost ||
		strings.Join(genOut.Hidden, ",") != strings.Join(genFirst.Hidden, ",") {
		t.Fatalf("restored generated answer diverged: %+v vs %+v", genOut, genFirst)
	}
	if st := b.Session().Stats(); st.Misses != 0 {
		t.Fatalf("restored server re-derived: %+v", st)
	}

	// Corrupt the file: the next boot must come up empty but working.
	rawSnap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rawSnap[len(rawSnap)/2] ^= 0xff
	if err := os.WriteFile(path, rawSnap, 0o644); err != nil {
		t.Fatal(err)
	}
	c := server.MustNew(cfg)
	c.BootRestore(t.Logf)
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()
	if resp := getJSON(t, tsC, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt-restore readyz %d", resp.StatusCode)
	}
	var stC server.StatsResponse
	getJSON(t, tsC, "/v1/stats", &stC)
	if stC.Snapshot.RestoreHit || stC.Snapshot.RestoredEntries != 0 {
		t.Fatalf("corrupt snapshot claimed a restore: %+v", stC.Snapshot)
	}
	resp, raw = post(t, tsC, "/v1/solve", engineReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold server after corrupt restore: status %d: %s", resp.StatusCode, raw)
	}
	if cold := decodeSolve(t, raw); cold.Cost != first.Cost {
		t.Fatalf("cold re-solve diverged: %g vs %g", cold.Cost, first.Cost)
	}
}

// TestReadyzGatesOnBootRestore: with a snapshot path configured the server
// reports 503 until BootRestore settles; without one it is born ready.
func TestReadyzGatesOnBootRestore(t *testing.T) {
	gated := server.MustNew(server.Config{SnapshotPath: filepath.Join(t.TempDir(), "s.snap")})
	ts := httptest.NewServer(gated.Handler())
	defer ts.Close()
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before restore: %d", resp.StatusCode)
	}
	var st server.StatsResponse
	getJSON(t, ts, "/v1/stats", &st)
	if st.Ready {
		t.Fatal("stats claim ready before restore")
	}
	gated.BootRestore(nil)
	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after restore: %d", resp.StatusCode)
	}

	plain := server.MustNew(server.Config{})
	tsP := httptest.NewServer(plain.Handler())
	defer tsP.Close()
	if resp := getJSON(t, tsP, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot-less readyz: %d", resp.StatusCode)
	}

	// POST /v1/snapshot without a configured path is a clean 409.
	resp, _ := post(t, tsP, "/v1/snapshot", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot without path: %d", resp.StatusCode)
	}
}

// TestShardRingServing wires three replicas into one ring over httptest
// listeners and requires the sharding contract: every request returns the
// same answer regardless of entry replica, non-owned requests are proxied
// to their owner exactly once, and each replica both owns and forwards
// some share of the key space.
func TestShardRingServing(t *testing.T) {
	const n = 3
	handlers := make([]http.Handler, n)
	tss := make([]*httptest.Server, n)
	for i := range tss {
		i := i
		// Late-bound: the ring needs every replica's URL before any Server
		// exists, so the listeners start first and delegate once built.
		tss[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].ServeHTTP(w, r)
		}))
		defer tss[i].Close()
	}
	urls := make([]string, n)
	for i, ts := range tss {
		urls[i] = ts.URL
	}
	srvs := make([]*server.Server, n)
	for i := range srvs {
		s, err := server.New(server.Config{Self: urls[i], Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = s
		handlers[i] = s.Handler()
	}

	// A mixed key population: several generated classes and seeds plus a
	// spec document, enough keys that every replica owns some.
	var reqs []server.SolveRequest
	for _, class := range []string{"chain", "chain-injective", "tree", "layered"} {
		for seed := int64(0); seed < 3; seed++ {
			reqs = append(reqs, server.SolveRequest{
				Generated: &server.GeneratedRef{Class: class, Seed: seed}, Solver: "greedy",
			})
		}
	}
	reqs = append(reqs, server.SolveRequest{
		Spec: allPrivateDoc(t, `{"a1": 2, "a2": 1, "b1": 1, "b2": 4}`), Solver: "engine",
	})

	for ri, req := range reqs {
		var want server.SolveResponse
		for si, ts := range tss {
			resp, raw := post(t, ts, "/v1/solve", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("req %d via replica %d: status %d: %s", ri, si, resp.StatusCode, raw)
			}
			got := decodeSolve(t, raw)
			if si == 0 {
				want = got
				continue
			}
			// Solution, fingerprint, and cost must all be identical: Costs.Sum
			// adds in sorted-key order, so every replica computes the same
			// float64 bit pattern for the same cached problem.
			if strings.Join(got.Hidden, ",") != strings.Join(want.Hidden, ",") ||
				strings.Join(got.Privatized, ",") != strings.Join(want.Privatized, ",") ||
				got.Fingerprint != want.Fingerprint || got.Status != want.Status ||
				got.Cost != want.Cost {
				t.Fatalf("req %d: replica %d answered differently:\n%+v\nvs\n%+v", ri, si, got, want)
			}
		}
	}

	// Batches route per job: a batch sent to one replica must answer every
	// job correctly even when jobs belong to different owners.
	resp, raw := post(t, tss[0], "/v1/batch", server.BatchRequest{Jobs: reqs[:6]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var batch server.BatchResponse
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatal(err)
	}
	for i, br := range batch.Results {
		if br.Code != http.StatusOK || br.Response == nil {
			t.Fatalf("batch job %d: %+v", i, br)
		}
	}

	// Routing accounting: misses went to their owner (proxied == forwarded
	// across the fleet, both nonzero), every replica owned part of the key
	// space, and no proxy fell back to local serving.
	var proxied, forwarded, owned, fallbacks int64
	for i, ts := range tss {
		var st server.StatsResponse
		getJSON(t, ts, "/v1/stats", &st)
		if st.Ring == nil || st.Ring.Self != urls[i] || len(st.Ring.Nodes) != n {
			t.Fatalf("replica %d ring stats: %+v", i, st.Ring)
		}
		if st.Ring.OwnedLocal == 0 {
			t.Fatalf("replica %d owned no keys (spread failure): %+v", i, st.Ring)
		}
		proxied += st.Ring.Proxied
		forwarded += st.Ring.Forwarded
		owned += st.Ring.OwnedLocal
		fallbacks += st.Ring.Fallbacks
	}
	if proxied == 0 || proxied != forwarded {
		t.Fatalf("proxy accounting: proxied %d, forwarded %d", proxied, forwarded)
	}
	if fallbacks != 0 {
		t.Fatalf("healthy ring recorded %d fallbacks", fallbacks)
	}

	// Each derived problem lives on exactly one replica: fleet-wide misses
	// equal the distinct key count, not keys × replicas.
	misses := 0
	for _, s := range srvs {
		misses += s.Session().Stats().Misses
	}
	if misses != len(reqs) {
		t.Fatalf("fleet derived %d problems for %d distinct keys (cache not sharded)", misses, len(reqs))
	}
}

// TestShardOwnerUnreachableFallsBack: when the owner is down, the entry
// replica serves the request locally instead of failing it.
func TestShardOwnerUnreachableFallsBack(t *testing.T) {
	// A dead peer address guaranteed to own some keys: bind-then-close.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	handlers := make([]http.Handler, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlers[0].ServeHTTP(w, r)
	}))
	defer ts.Close()
	s, err := server.New(server.Config{Self: ts.URL, Peers: []string{ts.URL, deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	handlers[0] = s.Handler()

	sawFallback := false
	for seed := int64(0); seed < 12 && !sawFallback; seed++ {
		req := server.SolveRequest{
			Generated: &server.GeneratedRef{Class: "sparse", Seed: seed}, Solver: "greedy",
		}
		resp, raw := post(t, ts, "/v1/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, raw)
		}
		var st server.StatsResponse
		getJSON(t, ts, "/v1/stats", &st)
		sawFallback = st.Ring.Fallbacks > 0
	}
	if !sawFallback {
		t.Fatal("no key routed to the dead owner across 12 seeds (vanishingly unlikely)")
	}
}

// TestGracefulShutdown drives the full Run lifecycle: SIGTERM while a solve
// is in flight must finish that response, write a final snapshot, and
// return cleanly.
func TestGracefulShutdown(t *testing.T) {
	stall := &stallSolver{
		name:    "test-stall-shutdown",
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	registerStall(t, stall)

	path := filepath.Join(t.TempDir(), "session.snap")
	s := server.MustNew(server.Config{SnapshotPath: path})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ln, sigs, t.Logf) }()

	url := "http://" + ln.Addr().String()
	waitReady := func() {
		for i := 0; i < 100; i++ {
			resp, err := http.Get(url + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatal("server never became ready")
	}
	waitReady()

	// Populate one real entry so the final snapshot has content ("chain" is
	// a workflow class, so it derives through the session cache; abstract
	// classes like "sparse" bypass it).
	body := `{"generated": {"class": "chain", "seed": 1}, "solver": "greedy"}`
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}

	// In-flight stalled solve, then SIGTERM mid-flight.
	stallDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/solve", "application/json",
			strings.NewReader(`{"generated": {"class": "sparse", "seed": 2}, "solver": "test-stall-shutdown"}`))
		if err != nil {
			stallDone <- -1
			return
		}
		resp.Body.Close()
		stallDone <- resp.StatusCode
	}()
	<-stall.started
	sigs <- syscall.SIGTERM

	// The drain must hold the response open until the solver finishes.
	select {
	case code := <-stallDone:
		t.Fatalf("in-flight solve returned %d before the solver finished", code)
	case <-time.After(150 * time.Millisecond):
	}
	close(stall.release)
	if code := <-stallDone; code != http.StatusOK {
		t.Fatalf("in-flight solve finished with %d during drain", code)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("no final snapshot: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("final snapshot is empty")
	}
	// The snapshot must restore, proving it was written after the drain.
	again := server.MustNew(server.Config{SnapshotPath: path})
	again.BootRestore(t.Logf)
	if st := again.Session().Stats(); st.Entries == 0 {
		t.Fatalf("final snapshot restored no entries: %+v", st)
	}
}

// TestPeersRequireSelf pins the misconfiguration error path.
func TestPeersRequireSelf(t *testing.T) {
	if _, err := server.New(server.Config{Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("peers without self accepted")
	}
	if _, err := server.New(server.Config{Self: "http://a:1", Peers: []string{"http://a:1", ""}}); err == nil {
		t.Fatal("empty peer accepted")
	}
}
