package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"secureview/internal/solve"
)

// Shard mode routes every request fingerprint over the consistent-hash ring
// and PROXIES non-owned solves to their owner, rather than fetching the
// owner's warm frontier and solving locally. The tradeoff:
//
//   - Proxying keeps exactly one hot copy of each cache entry (problem,
//     oracle tables, warm frontier) in the cluster, works for every solver
//     (frontier fetch only helps the engine), costs one hop, and keeps the
//     owner's LRU recency honest — the replica that owns a fingerprint sees
//     all of its traffic.
//   - Frontier fetch would keep solve CPU on the entry replica and tolerate
//     slow owners better, but it duplicates the derived problem and oracle
//     tables on every replica that ever sees the fingerprint (the cache
//     scales per replica again, which is what sharding is meant to fix),
//     and each fetched frontier goes stale the moment the owner advances
//     the chain.
//
// Since the point of the ring is to scale CACHE capacity horizontally, the
// single-hot-copy property wins. Owner failure is absorbed locally: a
// transport error falls back to serving the request on this replica (the
// cache is rebuildable; only locality is lost), counted in stats.

// forwardedHeader marks a proxied request so the owner serves it locally —
// one hop maximum, even with stale or disagreeing ring configurations.
const forwardedHeader = "X-Secureview-Forwarded"

// routeKey derives the ring key for a request, cheap enough to compute
// before any cache work:
//
//   - spec documents route on the cost-EXCLUDED structural fingerprint of
//     the derivation, so an edit chain (same workflow, tweaked costs) pins
//     to one owner and aggregates its warm frontiers and delta sources
//     there instead of scattering them across the ring;
//   - generated references route on the literal (class, seed, variant, Γ)
//     tuple — no need to build the instance just to route it.
//
// Unroutable requests (malformed documents, unknown variants) return
// ok=false and are served locally, where the normal resolve path produces
// the client-facing error.
func routeKey(req *SolveRequest) (string, bool) {
	v, err := parseVariant(req.Variant)
	if err != nil {
		return "", false
	}
	switch {
	case req.Spec != nil && req.Generated == nil:
		doc := req.Spec
		if len(doc.GammaPerModule) > 0 {
			return "", false
		}
		w, err := doc.Build()
		if err != nil {
			return "", false
		}
		gamma := req.Gamma
		if gamma == 0 {
			gamma = doc.Gamma
		}
		if gamma == 0 {
			gamma = 2
		}
		return solve.StructuralFingerprint(w, v, gamma), true
	case req.Generated != nil && req.Spec == nil:
		return fmt.Sprintf("gen/%s/%d/%s/%d",
			req.Generated.Class, req.Generated.Seed, variantName(v), req.Gamma), true
	}
	return "", false
}

// routeRemote decides whether req must be served by another replica,
// returning its owner address. Single-node mode, already-forwarded
// requests, unroutable requests and self-owned keys all serve locally.
func (s *Server) routeRemote(r *http.Request, req *SolveRequest) (string, bool) {
	if s.ring == nil {
		return "", false
	}
	if r.Header.Get(forwardedHeader) != "" {
		s.forwarded.Add(1)
		return "", false
	}
	key, ok := routeKey(req)
	if !ok {
		return "", false
	}
	owner := s.ring.Owner(key)
	if owner == s.ring.Self() {
		s.ownedLocal.Add(1)
		return "", false
	}
	return owner, true
}

// forward posts req to the owner's /v1/solve and returns its verbatim
// status and body. Transport errors come back as err; HTTP-level errors are
// the owner's answer and are relayed as-is.
func (s *Server) forward(owner string, req *SolveRequest) (int, []byte, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hreq, err := http.NewRequest(http.MethodPost, owner+"/v1/solve", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(forwardedHeader, s.ring.Self())
	resp, err := s.client.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// proxySolve relays a solve to its owner, mirroring the owner's status and
// body to the client. Returns false on transport failure, in which case the
// caller serves the request locally.
func (s *Server) proxySolve(w http.ResponseWriter, owner string, req *SolveRequest) bool {
	status, body, err := s.forward(owner, req)
	if err != nil {
		s.fallbacks.Add(1)
		return false
	}
	s.proxied.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	return true
}

// proxyBatchJob relays one batch job to its owner as a single solve and
// folds the answer into a BatchResult. Returns ok=false on transport
// failure (the caller runs the job locally).
func (s *Server) proxyBatchJob(owner string, jr *SolveRequest) (*BatchResult, bool) {
	status, body, err := s.forward(owner, jr)
	if err != nil {
		s.fallbacks.Add(1)
		return nil, false
	}
	s.proxied.Add(1)
	br := &BatchResult{Code: status}
	if status == http.StatusOK || status == http.StatusPartialContent {
		var resp SolveResponse
		if jerr := json.Unmarshal(body, &resp); jerr != nil {
			br.Code = http.StatusBadGateway
			br.Error = fmt.Sprintf("owner %s returned an unparseable response: %v", owner, jerr)
		} else {
			br.Response = &resp
		}
		return br, true
	}
	var e ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		br.Error = e.Error
	} else {
		br.Error = fmt.Sprintf("owner %s returned status %d", owner, status)
	}
	return br, true
}
