package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"secureview/internal/server"
	"secureview/internal/solve"
	"secureview/internal/spec"
)

// registerStall registers a stall solver for the test's lifetime.
func registerStall(t *testing.T, s *stallSolver) {
	t.Helper()
	solve.Register(s)
	t.Cleanup(func() { solve.Deregister(s.name) })
}

// postAsync fires a request from its own goroutine (test helpers must not
// t.Fatal off the test goroutine) and returns a channel yielding the status.
func postAsync(t *testing.T, ts *httptest.Server, path string, body any) <-chan int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	return done
}

// allPrivateDoc is an engine-solvable (all-private) workflow: one private
// module over four attributes, so warm-start requests have a real candidate
// space to resume over. costsJSON parameterizes cost-only edits.
func allPrivateDoc(t *testing.T, costsJSON string) *spec.Document {
	t.Helper()
	doc, err := spec.Parse([]byte(`{
	  "name": "warmdemo",
	  "gamma": 2,
	  "costs": ` + costsJSON + `,
	  "modules": [
	    {
	      "name": "mix", "visibility": "private",
	      "inputs":  [{"name": "a1", "domain": 2}, {"name": "a2", "domain": 2}],
	      "outputs": [{"name": "b1", "domain": 2}, {"name": "b2", "domain": 2}],
	      "kind": "table",
	      "table": [
	        {"in": [0, 0], "out": [0, 0]},
	        {"in": [0, 1], "out": [1, 0]},
	        {"in": [1, 0], "out": [1, 1]},
	        {"in": [1, 1], "out": [0, 1]}
	      ]
	    }
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSolveWarmChaining drives the edit loop the warm-start API exists for:
// solve, echo the returned fingerprint as the next request's base, edit only
// costs, and keep getting byte-identical optima to cold solves — with the
// response's warm marker reporting whether the engine actually resumed.
func TestSolveWarmChaining(t *testing.T) {
	s, ts := newTestServer(t, server.Config{})

	cold := func(costs, base string) server.SolveResponse {
		t.Helper()
		resp, raw := post(t, ts, "/v1/solve", server.SolveRequest{
			Spec: allPrivateDoc(t, costs), Solver: "engine", Variant: "set", Base: base,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		return decodeSolve(t, raw)
	}

	first := cold(`{"a1": 1, "a2": 2, "b1": 3, "b2": 4}`, "")
	if first.Fingerprint == "" {
		t.Fatal("solve response carries no fingerprint")
	}
	if first.Warm {
		t.Fatal("cold solve marked warm")
	}

	// Same instance again, chaining on the fingerprint: must resume.
	again := cold(`{"a1": 1, "a2": 2, "b1": 3, "b2": 4}`, first.Fingerprint)
	if !again.Warm {
		t.Fatal("re-solve with a live base did not resume")
	}
	if again.Fingerprint != first.Fingerprint {
		t.Fatalf("fingerprint drifted across identical requests: %s vs %s",
			again.Fingerprint, first.Fingerprint)
	}
	if again.Cost != first.Cost || strings.Join(again.Hidden, ",") != strings.Join(first.Hidden, ",") {
		t.Fatalf("warm re-solve diverged: %+v vs %+v", again, first)
	}

	// Cost-only edit: same fingerprint, and the warm answer must match a
	// cold solve of the edited instance exactly.
	edited := `{"a1": 5, "a2": 1, "b1": 1, "b2": 2}`
	reference := cold(edited, "")
	warm := cold(edited, first.Fingerprint)
	if !warm.Warm {
		t.Fatal("cost-only edit did not resume from its base")
	}
	if warm.Fingerprint != first.Fingerprint {
		t.Fatalf("cost-only edit changed the fingerprint: %s vs %s", warm.Fingerprint, first.Fingerprint)
	}
	if warm.Cost != reference.Cost || strings.Join(warm.Hidden, ",") != strings.Join(reference.Hidden, ",") {
		t.Fatalf("warm edit answer %v (%g) != cold %v (%g)",
			warm.Hidden, warm.Cost, reference.Hidden, reference.Cost)
	}

	// A bogus base silently degrades to a cold solve.
	bogus := cold(edited, "no-such-fingerprint")
	if bogus.Warm {
		t.Fatal("unknown base reported warm")
	}
	if bogus.Cost != reference.Cost {
		t.Fatalf("cold-fallback answer diverged: %g vs %g", bogus.Cost, reference.Cost)
	}

	st := s.Session().Stats()
	if st.WarmHits == 0 || st.WarmMisses == 0 {
		t.Fatalf("warm traffic not visible in stats: %+v", st)
	}

	// Batch jobs chain the same way.
	resp, raw := post(t, ts, "/v1/batch", server.BatchRequest{Jobs: []server.SolveRequest{
		{Spec: allPrivateDoc(t, edited), Solver: "engine", Variant: "set", Base: first.Fingerprint},
		{Spec: allPrivateDoc(t, edited), Solver: "greedy", Variant: "set"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var batch server.BatchResponse
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatal(err)
	}
	if r := batch.Results[0].Response; r == nil || !r.Warm || r.Fingerprint != first.Fingerprint {
		t.Fatalf("batch engine job did not chain: %+v", batch.Results[0])
	}
	if r := batch.Results[1].Response; r == nil || r.Warm {
		t.Fatalf("greedy batch job claims a warm start: %+v", batch.Results[1])
	}
}

// TestWarmEvictionFallsBackCold is the eviction race: under a budget too
// small to retain any warm state, a re-solve naming a just-returned
// fingerprint must take the cold path (warm:false) and still return the
// correct optimum.
func TestWarmEvictionFallsBackCold(t *testing.T) {
	// Budget of one byte: every committed entry — derived problems and warm
	// frontiers alike — is evicted immediately after accounting.
	sTiny, tiny := newTestServer(t, server.Config{SessionBytes: 1})
	_, ref := newTestServer(t, server.Config{})

	costs := `{"a1": 2, "a2": 1, "b1": 4, "b2": 3}`
	req := func(base string) server.SolveRequest {
		return server.SolveRequest{
			Spec: allPrivateDoc(t, costs), Solver: "engine", Variant: "set", Base: base,
		}
	}
	resp, raw := post(t, tiny, "/v1/solve", req(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	first := decodeSolve(t, raw)

	resp, raw = post(t, tiny, "/v1/solve", req(first.Fingerprint))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decodeSolve(t, raw)
	if out.Warm {
		t.Fatal("resumed from a frontier the budget cannot have retained")
	}

	resp, raw = post(t, ref, "/v1/solve", req(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference status %d: %s", resp.StatusCode, raw)
	}
	want := decodeSolve(t, raw)
	if out.Cost != want.Cost || strings.Join(out.Hidden, ",") != strings.Join(want.Hidden, ",") {
		t.Fatalf("cold fallback diverged: %v (%g) vs %v (%g)", out.Hidden, out.Cost, want.Hidden, want.Cost)
	}
	if st := sTiny.Session().Stats(); st.Evictions == 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("tiny session never evicted: %+v", st)
	}
}

// TestRetryAfterDerived pins the 429 hint: it scales with the rejected
// request's weight against a saturated gate instead of the historical
// hardcoded "1", and stays within [1, 30] seconds.
func TestRetryAfterDerived(t *testing.T) {
	stall := &stallSolver{
		name:    "test-stall-retry",
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	stallReq := server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 1},
		Solver:    "test-stall-retry",
	}
	registerStall(t, stall)
	_, ts := newTestServer(t, server.Config{MaxInFlight: 1, BatchWorkers: 8})

	done := postAsync(t, ts, "/v1/solve", stallReq)
	defer func() { close(stall.release); <-done }()
	<-stall.started

	// Single solve against 1/1 in flight: ceil(1·1/1) = 1.
	resp, _ := post(t, ts, "/v1/solve", stallReq)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("solve Retry-After = %q, want \"1\"", got)
	}

	// A 5-job batch (weight 5) against the same saturation backs off
	// proportionally: ceil(5·1/1) = 5.
	jobs := make([]server.SolveRequest, 5)
	for i := range jobs {
		jobs[i] = stallReq
	}
	resp, _ = post(t, ts, "/v1/batch", server.BatchRequest{Jobs: jobs})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	got := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(got)
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("batch Retry-After = %q, want an integer in [1, 30]", got)
	}
	if secs != 5 {
		t.Fatalf("batch Retry-After = %d, want 5 (weight 5 against a saturated gate)", secs)
	}
}

// TestAdmissionSurvivesMalformedTraffic is the slot-leak regression test:
// hammer every early-error path — oversized bodies, bad JSON, unservable
// specs, empty and oversized batches, batch jobs that fail derivation —
// then claim the FULL admission capacity in one batch. Any leaked slot
// fails the final claim.
func TestAdmissionSurvivesMalformedTraffic(t *testing.T) {
	const capacity = 2
	_, ts := newTestServer(t, server.Config{
		MaxInFlight: capacity, BatchWorkers: capacity,
		MaxBodyBytes: 4 << 10, MaxBatchJobs: 4,
	})
	rawPost := func(body []byte) int {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	okJob := server.SolveRequest{
		Generated: &server.GeneratedRef{Class: "sparse", Seed: 1},
		Solver:    "greedy", Variant: "set",
	}
	infeasible := server.SolveRequest{
		Spec: parseDoc(t), Solver: "exact", Variant: "set", Gamma: 99,
	}
	for i := 0; i < 20; i++ {
		// 413: body over MaxBodyBytes (valid JSON up to the limit, so the
		// size guard fires rather than the parser).
		huge := []byte(`{"solver": "` + strings.Repeat("x", 8<<10) + `"}`)
		if code := rawPost(huge); code != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized body: status %d", code)
		}
		// 400: not JSON at all, then unknown fields.
		if code := rawPost([]byte("{nope")); code != http.StatusBadRequest {
			t.Fatalf("bad JSON: status %d", code)
		}
		if code := rawPost([]byte(`{"bogusField": 1}`)); code != http.StatusBadRequest {
			t.Fatalf("unknown field: status %d", code)
		}
		// 422: admitted, then derivation fails (Γ infeasible).
		resp, _ := post(t, ts, "/v1/solve", infeasible)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("infeasible spec: status %d", resp.StatusCode)
		}
		// Batch rejections before and after admission.
		resp, _ = post(t, ts, "/v1/batch", server.BatchRequest{})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("empty batch: status %d", resp.StatusCode)
		}
		resp, _ = post(t, ts, "/v1/batch", server.BatchRequest{
			Jobs: make([]server.SolveRequest, 5),
		})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized batch: status %d", resp.StatusCode)
		}
		// Admitted batch whose every job fails derivation.
		resp, _ = post(t, ts, "/v1/batch", server.BatchRequest{
			Jobs: []server.SolveRequest{infeasible, infeasible},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("failing batch: status %d", resp.StatusCode)
		}
	}

	// Full-weight claim: a batch needing every slot must still admit.
	resp, raw := post(t, ts, "/v1/batch", server.BatchRequest{
		Jobs: []server.SolveRequest{okJob, okJob},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full-weight batch after malformed traffic: status %d: %s (leaked admission slots)",
			resp.StatusCode, raw)
	}
}
