package server_test

import (
	"net/http"
	"strings"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/gen/corpus"
	"secureview/internal/provenance"
	"secureview/internal/server"
)

// demoCSV exports the demo workflow's full provenance log through the
// provenance store — the same CSV shape the import path validates.
func demoCSV(t *testing.T) string {
	t.Helper()
	doc := parseDoc(t)
	w, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore(w)
	if err := store.RecordAll(1 << 12); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := store.ExportCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSolveCorpus round-trips corpus-ID requests: full ID, unique prefix,
// cardinality variant (corpus entries are ordinary workflow instances),
// and the unknown-ID rejection.
func TestSolveCorpus(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	entries := corpus.Entries()
	cheap := entries[len(entries)-1] // hardest-first order: last is cheapest to solve

	resp, raw := post(t, ts, "/v1/solve", server.SolveRequest{
		Corpus: cheap.ID, Solver: "exact", Variant: "set",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus %s: status %d: %s", cheap.ID, resp.StatusCode, raw)
	}
	full := decodeSolve(t, raw)
	if full.Status != "optimal" || len(full.Hidden) == 0 {
		t.Fatalf("corpus solve: %+v", full)
	}

	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Corpus: cheap.ID[:8], Solver: "exact", Variant: "set",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus prefix: status %d: %s", resp.StatusCode, raw)
	}
	if pre := decodeSolve(t, raw); pre.Cost != full.Cost {
		t.Fatalf("prefix resolved to a different instance: cost %g vs %g", pre.Cost, full.Cost)
	}

	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Corpus: cheap.ID, Solver: "greedy", Variant: "cardinality",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corpus cardinality: status %d: %s", resp.StatusCode, raw)
	}

	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Corpus: "ffffffffffff", Solver: "exact",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown corpus ID: status %d: %s", resp.StatusCode, raw)
	}
}

// TestSolveCSV round-trips a recorded provenance log: the set variant
// derives under partial-log semantics, the cardinality variant is
// rejected, and an inconsistent log is rejected at import.
func TestSolveCSV(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	csv := demoCSV(t)

	resp, raw := post(t, ts, "/v1/solve", server.SolveRequest{
		CSV: &gen.CSVRef{Spec: parseDoc(t), Data: csv}, Solver: "exact", Variant: "set",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv solve: status %d: %s", resp.StatusCode, raw)
	}
	if out := decodeSolve(t, raw); out.Status != "optimal" || len(out.Hidden) == 0 || out.Cost <= 0 {
		t.Fatalf("csv solve: %+v", out)
	}

	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		CSV: &gen.CSVRef{Spec: parseDoc(t), Data: csv}, Solver: "exact", Variant: "cardinality",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("csv cardinality not rejected: status %d: %s", resp.StatusCode, raw)
	}

	// A log row inconsistent with the workflow functionality (flip maps
	// a1=0 to a2=1, so 0,0,0 is not provenance of this workflow).
	bad := "a1,a2,a3\n0,0,0\n"
	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		CSV: &gen.CSVRef{Spec: parseDoc(t), Data: bad}, Solver: "exact",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inconsistent csv not rejected: status %d: %s", resp.StatusCode, raw)
	}
}

// TestSolveSourceValidation: the four instance sources are mutually
// exclusive, and at least one is required.
func TestSolveSourceValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, raw := post(t, ts, "/v1/solve", server.SolveRequest{Solver: "exact"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sourceless request: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = post(t, ts, "/v1/solve", server.SolveRequest{
		Spec: parseDoc(t), Corpus: corpus.Entries()[0].ID, Solver: "exact",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("two-source request: status %d: %s", resp.StatusCode, raw)
	}
}
