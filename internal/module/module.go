// Package module models workflow modules: finite functions from a tuple of
// input attributes I to a tuple of output attributes O, i.e. relations over
// I ∪ O satisfying the functional dependency I → O (Davidson et al., PODS
// 2011, section 2.1).
//
// A Module is the unit the paper reasons about: its privacy is the
// indistinguishability of the mapping x ↦ m(x) given a projected view of its
// relation. The package provides general constructors (closures and explicit
// tables) plus the standard constructions the paper uses in examples and
// proofs (gates, identity/reversal one-one functions, constant functions,
// majority, adversarial gadgets).
package module

import (
	"fmt"

	"secureview/internal/relation"
)

// Func is a module's functionality: it maps an input tuple (aligned with the
// module's input attributes) to an output tuple (aligned with the output
// attributes). Implementations must be deterministic and total over the
// input domain.
type Func func(relation.Tuple) relation.Tuple

// Visibility classifies a module as private or public (paper section 2.2).
type Visibility int

const (
	// Private modules have no a-priori known behaviour; users learn about
	// them only through the provenance view, and Γ-privacy must be
	// enforced for them.
	Private Visibility = iota
	// Public modules have fully known behaviour (e.g. reformatting or
	// sorting); possible worlds must preserve their functionality unless
	// they are privatized (hidden) at a cost.
	Public
)

// String returns "private" or "public".
func (v Visibility) String() string {
	if v == Public {
		return "public"
	}
	return "private"
}

// Module is a finite function with named, typed input and output attributes.
// Construct with New or a library constructor; the zero value is unusable.
type Module struct {
	name       string
	visibility Visibility
	inputs     []relation.Attribute
	outputs    []relation.Attribute
	inSchema   *relation.Schema
	outSchema  *relation.Schema
	fullSchema *relation.Schema
	fn         Func
}

// New builds a module from its attribute lists and functionality. It
// enforces the paper's well-formedness conditions on a single module:
// input and output attribute names are disjoint (I ∩ O = ∅) and all names
// are distinct. The function is trusted to be total and in-range; Eval
// checks ranges at call time.
func New(name string, inputs, outputs []relation.Attribute, fn Func) (*Module, error) {
	if name == "" {
		return nil, fmt.Errorf("module: empty name")
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("module %s: no output attributes", name)
	}
	if fn == nil {
		return nil, fmt.Errorf("module %s: nil function", name)
	}
	inSchema, err := relation.NewSchema(inputs)
	if err != nil {
		return nil, fmt.Errorf("module %s inputs: %w", name, err)
	}
	outSchema, err := relation.NewSchema(outputs)
	if err != nil {
		return nil, fmt.Errorf("module %s outputs: %w", name, err)
	}
	fullSchema, err := relation.NewSchema(append(append([]relation.Attribute{}, inputs...), outputs...))
	if err != nil {
		return nil, fmt.Errorf("module %s: inputs and outputs overlap: %w", name, err)
	}
	return &Module{
		name:       name,
		inputs:     append([]relation.Attribute(nil), inputs...),
		outputs:    append([]relation.Attribute(nil), outputs...),
		inSchema:   inSchema,
		outSchema:  outSchema,
		fullSchema: fullSchema,
		fn:         fn,
	}, nil
}

// MustNew is like New but panics on error; for statically known modules.
func MustNew(name string, inputs, outputs []relation.Attribute, fn Func) *Module {
	m, err := New(name, inputs, outputs, fn)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the module's name.
func (m *Module) Name() string { return m.name }

// Visibility returns whether the module is private or public.
func (m *Module) Visibility() Visibility { return m.visibility }

// AsPublic returns a copy of the module marked public. The functionality is
// shared with the receiver.
func (m *Module) AsPublic() *Module {
	c := *m
	c.visibility = Public
	return &c
}

// AsPrivate returns a copy of the module marked private.
func (m *Module) AsPrivate() *Module {
	c := *m
	c.visibility = Private
	return &c
}

// Inputs returns the input attributes I.
func (m *Module) Inputs() []relation.Attribute { return append([]relation.Attribute(nil), m.inputs...) }

// Outputs returns the output attributes O.
func (m *Module) Outputs() []relation.Attribute {
	return append([]relation.Attribute(nil), m.outputs...)
}

// InputNames returns the input attribute names in order.
func (m *Module) InputNames() []string { return m.inSchema.Names() }

// OutputNames returns the output attribute names in order.
func (m *Module) OutputNames() []string { return m.outSchema.Names() }

// AttrNames returns all attribute names, inputs then outputs.
func (m *Module) AttrNames() []string { return m.fullSchema.Names() }

// InputSchema returns the schema over I.
func (m *Module) InputSchema() *relation.Schema { return m.inSchema }

// OutputSchema returns the schema over O.
func (m *Module) OutputSchema() *relation.Schema { return m.outSchema }

// Schema returns the schema over I ∪ O (inputs first).
func (m *Module) Schema() *relation.Schema { return m.fullSchema }

// Arity returns k = |I| + |O|, the attribute count of the module relation.
func (m *Module) Arity() int { return m.inSchema.Len() + m.outSchema.Len() }

// Eval applies the module to an input tuple and validates the result's arity
// and domain bounds.
func (m *Module) Eval(x relation.Tuple) (relation.Tuple, error) {
	if len(x) != m.inSchema.Len() {
		return nil, fmt.Errorf("module %s: input arity %d, want %d", m.name, len(x), m.inSchema.Len())
	}
	for i, v := range x {
		if v < 0 || v >= m.inputs[i].Domain {
			return nil, fmt.Errorf("module %s: input %q value %d out of domain [0,%d)",
				m.name, m.inputs[i].Name, v, m.inputs[i].Domain)
		}
	}
	y := m.fn(x)
	if len(y) != m.outSchema.Len() {
		return nil, fmt.Errorf("module %s: output arity %d, want %d", m.name, len(y), m.outSchema.Len())
	}
	for i, v := range y {
		if v < 0 || v >= m.outputs[i].Domain {
			return nil, fmt.Errorf("module %s: output %q value %d out of domain [0,%d)",
				m.name, m.outputs[i].Name, v, m.outputs[i].Domain)
		}
	}
	return y, nil
}

// MustEval is like Eval but panics on error.
func (m *Module) MustEval(x relation.Tuple) relation.Tuple {
	y, err := m.Eval(x)
	if err != nil {
		panic(err)
	}
	return y
}

// Relation materializes the module's full functionality as a relation over
// I ∪ O: one row (x, m(x)) for every x in the input domain. This is the
// standalone relation R of section 2.1. It panics if the input domain is too
// large to enumerate; use RelationOver for partial materialization.
func (m *Module) Relation() *relation.Relation {
	r := relation.New(m.fullSchema)
	relation.EachTuple(m.inSchema, func(x relation.Tuple) bool {
		y := m.MustEval(x)
		row := make(relation.Tuple, 0, m.fullSchema.Len())
		row = append(row, x...)
		row = append(row, y...)
		if err := r.Insert(row); err != nil {
			panic(err)
		}
		return true
	})
	return r
}

// RelationOver materializes the module relation restricted to the given set
// of input tuples (each aligned with the input schema). Duplicate inputs are
// merged. This supports partial functions in the sense of the paper: the
// relation describes only executions that occurred.
func (m *Module) RelationOver(inputs []relation.Tuple) (*relation.Relation, error) {
	r := relation.New(m.fullSchema)
	for _, x := range inputs {
		y, err := m.Eval(x)
		if err != nil {
			return nil, err
		}
		row := make(relation.Tuple, 0, m.fullSchema.Len())
		row = append(row, x...)
		row = append(row, y...)
		if err := r.Insert(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// InputDomainSize returns |Dom| = ∏ |∆a| over input attributes, saturating
// at false if it overflows.
func (m *Module) InputDomainSize() (uint64, bool) {
	return m.inSchema.DomainProduct(m.inSchema.Names())
}

// IsOneToOne reports whether the module is injective over its full input
// domain. It enumerates the domain, so it is only suitable for small
// modules.
func (m *Module) IsOneToOne() bool {
	seen := make(map[string]bool)
	oneToOne := true
	relation.EachTuple(m.inSchema, func(x relation.Tuple) bool {
		y := m.MustEval(x)
		k := fmt.Sprint(y)
		if seen[k] {
			oneToOne = false
			return false
		}
		seen[k] = true
		return true
	})
	return oneToOne
}

// WithFunc returns a copy of the module with the same schemas and name but a
// replaced functionality. This is the primitive used to build possible
// worlds by redefining modules (paper, proof of Lemma 1).
func (m *Module) WithFunc(fn Func) *Module {
	c := *m
	c.fn = fn
	return &c
}

// WithName returns a copy of the module renamed.
func (m *Module) WithName(name string) *Module {
	c := *m
	c.name = name
	return &c
}

// String returns a short description such as "m1: (a1,a2) -> (a3,a4,a5)".
func (m *Module) String() string {
	return fmt.Sprintf("%s: %v -> %v [%s]", m.name, m.InputNames(), m.OutputNames(), m.visibility)
}

// FromRelation builds a table-driven module from an explicit relation. The
// relation's schema must contain all named inputs and outputs; it must
// satisfy the FD inputs → outputs; and it must define an output for every
// input combination that appears. Inputs absent from the relation are
// rejected at Eval time.
func FromRelation(name string, r *relation.Relation, inputNames, outputNames []string, vis Visibility) (*Module, error) {
	inSchema, err := r.Schema().Project(inputNames)
	if err != nil {
		return nil, fmt.Errorf("module %s: %w", name, err)
	}
	outSchema, err := r.Schema().Project(outputNames)
	if err != nil {
		return nil, fmt.Errorf("module %s: %w", name, err)
	}
	ok, err := r.SatisfiesFD(inputNames, outputNames)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("module %s: relation violates FD %v -> %v", name, inputNames, outputNames)
	}
	table := make(map[uint64]relation.Tuple, r.Len())
	for _, row := range r.Rows() {
		x, err := r.ProjectTuple(row, inputNames)
		if err != nil {
			return nil, err
		}
		y, err := r.ProjectTuple(row, outputNames)
		if err != nil {
			return nil, err
		}
		table[relation.Encode(inSchema, x)] = y
	}
	fn := func(x relation.Tuple) relation.Tuple {
		y, ok := table[relation.Encode(inSchema, x)]
		if !ok {
			panic(fmt.Sprintf("module %s: input %v not in table", name, x))
		}
		return y
	}
	m, err := New(name, inSchema.Attrs(), outSchema.Attrs(), fn)
	if err != nil {
		return nil, err
	}
	m.visibility = vis
	return m, nil
}
