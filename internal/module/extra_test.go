package module

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/relation"
)

// Property: the adder computes integer addition for random widths.
func TestQuickAdderCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		xN := make([]string, k)
		yN := make([]string, k)
		sN := make([]string, k+1)
		for i := 0; i < k; i++ {
			xN[i] = fmt.Sprintf("x%d", i)
			yN[i] = fmt.Sprintf("y%d", i)
		}
		for i := 0; i <= k; i++ {
			sN[i] = fmt.Sprintf("s%d", i)
		}
		m := Adder("add", xN, yN, sN)
		a := rng.Intn(1 << k)
		b := rng.Intn(1 << k)
		in := make(relation.Tuple, 2*k)
		for i := 0; i < k; i++ {
			in[i] = (a >> (k - 1 - i)) & 1
			in[k+i] = (b >> (k - 1 - i)) & 1
		}
		out := m.MustEval(in)
		got := 0
		for _, v := range out {
			got = got<<1 | v
		}
		return got == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Permutation modules compose with their table round trip and
// stay injective after FromRelation.
func TestQuickPermutationTableRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Permutation("p", []string{"x1", "x2"}, []string{"y1", "y2"}, rng)
		m2, err := FromRelation("copy", p.Relation(), p.InputNames(), p.OutputNames(), Private)
		if err != nil {
			return false
		}
		return m2.IsOneToOne()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// BoolGate must mask outputs to {0,1} even if the closure returns larger
// values.
func TestBoolGateMasksOutput(t *testing.T) {
	g := BoolGate("g", []string{"x"}, "y", func(v []relation.Value) relation.Value {
		return 7 // deliberately out of range; &1 masks to 1
	})
	if got := g.MustEval(relation.Tuple{0}); got[0] != 1 {
		t.Fatalf("masked output = %d, want 1", got[0])
	}
}

func TestZeroInputModule(t *testing.T) {
	// A module with no inputs is a constant source; its relation has one
	// row.
	m := MustNew("const", nil, relation.Bools("y"),
		func(relation.Tuple) relation.Tuple { return relation.Tuple{1} })
	r := m.Relation()
	if r.Len() != 1 {
		t.Fatalf("rows = %d, want 1", r.Len())
	}
	if n, ok := m.InputDomainSize(); !ok || n != 1 {
		t.Fatalf("input domain size = %d, %v", n, ok)
	}
}

func TestConstantPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch accepted")
		}
	}()
	Constant("c", relation.Bools("x"), relation.Bools("y", "z"), relation.Tuple{1})
}

func TestIdentityPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch accepted")
		}
	}()
	Identity("id", []string{"a", "b"}, []string{"c"})
}

func TestAdderPanicsOnBadWidths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad widths accepted")
		}
	}()
	Adder("a", []string{"x"}, []string{"y"}, []string{"s"})
}
