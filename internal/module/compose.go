package module

import (
	"fmt"

	"secureview/internal/relation"
)

// Compose builds the sequential composition g ∘ f as a single module: every
// output of f that g consumes is wired through; outputs of f that g does
// not consume are re-exposed as outputs of the composite, and inputs of g
// not produced by f become extra inputs. The composite's interface is
//
//	inputs:  I_f ∪ (I_g \ O_f)
//	outputs: (O_f \ I_g) ∪ O_g
//
// Composition is how the paper's "module" abstraction absorbs sub-pipelines
// whose internal wiring the owner does not want to model (e.g. treating a
// two-step proprietary analysis as one private module). The composite's
// relation is exactly the join of the components projected onto the
// interface, so privacy analyses of the composite are analyses of the
// sub-pipeline with its internal attributes always hidden.
func Compose(name string, f, g *Module) (*Module, error) {
	fOut := relation.NewNameSet(f.OutputNames()...)
	gIn := relation.NewNameSet(g.InputNames()...)
	for _, a := range f.InputNames() {
		if gIn.Has(a) {
			return nil, fmt.Errorf("module: compose %s: attribute %q is input to both", name, a)
		}
	}
	for _, a := range g.OutputNames() {
		if fOut.Has(a) {
			return nil, fmt.Errorf("module: compose %s: attribute %q is output of both", name, a)
		}
	}
	// Domains of shared attributes must agree.
	for _, ga := range g.Inputs() {
		for _, fa := range f.Outputs() {
			if ga.Name == fa.Name && ga.Domain != fa.Domain {
				return nil, fmt.Errorf("module: compose %s: attribute %q domain mismatch %d vs %d",
					name, ga.Name, fa.Domain, ga.Domain)
			}
		}
	}

	var inputs []relation.Attribute
	inputs = append(inputs, f.Inputs()...)
	for _, a := range g.Inputs() {
		if !fOut.Has(a.Name) {
			inputs = append(inputs, a)
		}
	}
	var outputs []relation.Attribute
	for _, a := range f.Outputs() {
		if !gIn.Has(a.Name) {
			outputs = append(outputs, a)
		}
	}
	outputs = append(outputs, g.Outputs()...)

	inIdx := make(map[string]int, len(inputs))
	for i, a := range inputs {
		inIdx[a.Name] = i
	}
	fInNames := f.InputNames()
	fOutNames := f.OutputNames()
	gInNames := g.InputNames()

	fn := func(x relation.Tuple) relation.Tuple {
		fIn := make(relation.Tuple, len(fInNames))
		for i, n := range fInNames {
			fIn[i] = x[inIdx[n]]
		}
		fRes := f.MustEval(fIn)
		fVal := make(map[string]relation.Value, len(fOutNames))
		for i, n := range fOutNames {
			fVal[n] = fRes[i]
		}
		gArg := make(relation.Tuple, len(gInNames))
		for i, n := range gInNames {
			if v, ok := fVal[n]; ok {
				gArg[i] = v
			} else {
				gArg[i] = x[inIdx[n]]
			}
		}
		gRes := g.MustEval(gArg)
		out := make(relation.Tuple, 0, len(outputs))
		for _, a := range f.Outputs() {
			if !gIn.Has(a.Name) {
				out = append(out, fVal[a.Name])
			}
		}
		return append(out, gRes...)
	}
	m, err := New(name, inputs, outputs, fn)
	if err != nil {
		return nil, err
	}
	if f.Visibility() == Public && g.Visibility() == Public {
		m.visibility = Public
	}
	return m, nil
}
