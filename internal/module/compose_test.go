package module

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/relation"
)

func TestComposeChain(t *testing.T) {
	f := Identity("f", []string{"a"}, []string{"b"})
	g := Not("g", "b", "c")
	c, err := Compose("fg", f, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.InputNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("inputs = %v", got)
	}
	if got := c.OutputNames(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("outputs = %v", got)
	}
	if c.MustEval(relation.Tuple{0})[0] != 1 {
		t.Error("fg(0) != not(id(0))")
	}
}

func TestComposePartialWiring(t *testing.T) {
	// f produces u, v; g consumes u and a fresh input w; v is re-exposed.
	f := MustNew("f", relation.Bools("a"), relation.Bools("u", "v"),
		func(x relation.Tuple) relation.Tuple { return relation.Tuple{x[0], 1 - x[0]} })
	g := And("g", []string{"u", "w"}, "z")
	c, err := Compose("fg", f, g)
	if err != nil {
		t.Fatal(err)
	}
	inNames := c.InputNames()
	if len(inNames) != 2 || inNames[0] != "a" || inNames[1] != "w" {
		t.Fatalf("inputs = %v, want [a w]", inNames)
	}
	outNames := c.OutputNames()
	if len(outNames) != 2 || outNames[0] != "v" || outNames[1] != "z" {
		t.Fatalf("outputs = %v, want [v z]", outNames)
	}
	// a=1, w=1: u=1, v=0, z=1∧1=1.
	got := c.MustEval(relation.Tuple{1, 1})
	if !got.Equal(relation.Tuple{0, 1}) {
		t.Fatalf("fg(1,1) = %v, want [0 1]", got)
	}
}

func TestComposeErrors(t *testing.T) {
	// g consuming one of f's inputs is ambiguous wiring.
	f := Identity("f", []string{"a"}, []string{"b"})
	g := And("g", []string{"a", "b"}, "c")
	if _, err := Compose("bad", f, g); err == nil {
		t.Error("shared input accepted")
	}
	// Output collision: g produces an attribute f already produces.
	f2 := Identity("f", []string{"a"}, []string{"b"})
	gBad := MustNew("gbad", relation.Bools("zz"), relation.Bools("b"),
		func(x relation.Tuple) relation.Tuple { return x })
	if _, err := Compose("bad2", f2, gBad); err == nil {
		t.Error("output collision accepted")
	}
	// Domain mismatch on the wire.
	f3 := MustNew("f3", relation.Bools("a"), []relation.Attribute{{Name: "m", Domain: 3}},
		func(x relation.Tuple) relation.Tuple { return relation.Tuple{x[0]} })
	g4 := Not("g4", "m", "n")
	if _, err := Compose("bad3", f3, g4); err == nil {
		t.Error("domain mismatch accepted")
	}
}

func TestComposeVisibility(t *testing.T) {
	f := Identity("f", []string{"a"}, []string{"b"}).AsPublic()
	g := Not("g", "b", "c").AsPublic()
	c, err := Compose("fg", f, g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Visibility() != Public {
		t.Error("public∘public not public")
	}
	gPriv := Not("g", "b", "c")
	c2, err := Compose("fg", f, gPriv)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Visibility() != Private {
		t.Error("public∘private not private")
	}
}

// Property: the composite's relation equals the join of the component
// relations projected onto the composite interface — the paper's view of a
// sub-pipeline as one module.
func TestQuickComposeIsProjectedJoin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := Random("f", relation.Bools("a1", "a2"), relation.Bools("u1", "u2"), rng)
		g := Random("g", relation.Bools("u1", "u2"), relation.Bools("z1"), rng)
		c, err := Compose("fg", f, g)
		if err != nil {
			return false
		}
		joined, err := f.Relation().Join(g.Relation())
		if err != nil {
			return false
		}
		want, err := joined.Project(c.AttrNames())
		if err != nil {
			return false
		}
		return c.Relation().Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
