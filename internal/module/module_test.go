package module

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"secureview/internal/relation"
)

func TestNewValidation(t *testing.T) {
	fn := func(x relation.Tuple) relation.Tuple { return relation.Tuple{0} }
	cases := []struct {
		name    string
		modName string
		in, out []relation.Attribute
		fn      Func
		wantErr bool
	}{
		{"ok", "m", relation.Bools("a"), relation.Bools("b"), fn, false},
		{"empty name", "", relation.Bools("a"), relation.Bools("b"), fn, true},
		{"no outputs", "m", relation.Bools("a"), nil, fn, true},
		{"nil fn", "m", relation.Bools("a"), relation.Bools("b"), nil, true},
		{"overlap", "m", relation.Bools("a"), relation.Bools("a"), fn, true},
		{"no inputs ok", "m", nil, relation.Bools("b"), fn, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.modName, tc.in, tc.out, tc.fn)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestFig1M1MatchesPaperTable(t *testing.T) {
	m := Fig1M1()
	want := map[[2]relation.Value][3]relation.Value{
		{0, 0}: {0, 1, 1},
		{0, 1}: {1, 1, 0},
		{1, 0}: {1, 1, 0},
		{1, 1}: {1, 0, 1},
	}
	for x, y := range want {
		got := m.MustEval(relation.Tuple{x[0], x[1]})
		if got[0] != y[0] || got[1] != y[1] || got[2] != y[2] {
			t.Errorf("m1(%v) = %v, want %v", x, got, y)
		}
	}
}

func TestFig1WorkflowRowsConsistent(t *testing.T) {
	// The executions in Figure 1(b) must be reproduced by composing
	// m1, m2, m3 on each initial input.
	m1, m2, m3 := Fig1M1(), Fig1M2(), Fig1M3()
	want := [][]relation.Value{
		{0, 0, 0, 1, 1, 1, 0},
		{0, 1, 1, 1, 0, 0, 1},
		{1, 0, 1, 1, 0, 0, 1},
		{1, 1, 1, 0, 1, 1, 1},
	}
	for _, row := range want {
		o1 := m1.MustEval(relation.Tuple{row[0], row[1]})
		o2 := m2.MustEval(relation.Tuple{o1[0], o1[1]})
		o3 := m3.MustEval(relation.Tuple{o1[1], o1[2]})
		got := []relation.Value{row[0], row[1], o1[0], o1[1], o1[2], o2[0], o3[0]}
		for i := range row {
			if got[i] != row[i] {
				t.Fatalf("execution for input (%d,%d): got %v want %v", row[0], row[1], got, row)
			}
		}
	}
}

func TestEvalValidatesInput(t *testing.T) {
	m := Fig1M1()
	if _, err := m.Eval(relation.Tuple{0}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := m.Eval(relation.Tuple{0, 3}); err == nil {
		t.Error("out-of-domain input accepted")
	}
}

func TestEvalValidatesOutput(t *testing.T) {
	bad := MustNew("bad", relation.Bools("a"), relation.Bools("b"),
		func(relation.Tuple) relation.Tuple { return relation.Tuple{5} })
	if _, err := bad.Eval(relation.Tuple{0}); err == nil {
		t.Error("out-of-domain output accepted")
	}
	short := MustNew("short", relation.Bools("a"), relation.Bools("b", "c"),
		func(relation.Tuple) relation.Tuple { return relation.Tuple{0} })
	if _, err := short.Eval(relation.Tuple{0}); err == nil {
		t.Error("short output accepted")
	}
}

func TestRelationMatchesFigure1c(t *testing.T) {
	m := Fig1M1()
	r := m.Relation()
	want := relation.MustFromRows(
		relation.MustSchema(relation.Bools("a1", "a2", "a3", "a4", "a5")...),
		[][]relation.Value{
			{0, 0, 0, 1, 1},
			{0, 1, 1, 1, 0},
			{1, 0, 1, 1, 0},
			{1, 1, 1, 0, 1},
		})
	if !r.Equal(want) {
		t.Fatalf("m1 relation =\n%v\nwant\n%v", r, want)
	}
}

func TestRelationOver(t *testing.T) {
	m := Fig1M1()
	r, err := m.RelationOver([]relation.Tuple{{0, 0}, {1, 1}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("partial relation size = %d, want 2", r.Len())
	}
	if _, err := m.RelationOver([]relation.Tuple{{9, 9}}); err == nil {
		t.Error("invalid input accepted")
	}
}

func TestFromRelationRoundTrip(t *testing.T) {
	m := Fig1M1()
	r := m.Relation()
	m2, err := FromRelation("copy", r, m.InputNames(), m.OutputNames(), Private)
	if err != nil {
		t.Fatal(err)
	}
	relation.EachTuple(m.InputSchema(), func(x relation.Tuple) bool {
		if !m.MustEval(x).Equal(m2.MustEval(x)) {
			t.Errorf("table module disagrees at %v", x)
		}
		return true
	})
	if !m2.Relation().Equal(r) {
		t.Error("rematerialized relation differs")
	}
}

func TestFromRelationRejectsFDViolation(t *testing.T) {
	s := relation.MustSchema(relation.Bools("x", "y")...)
	r := relation.MustFromRows(s, [][]relation.Value{{0, 0}, {0, 1}})
	if _, err := FromRelation("bad", r, []string{"x"}, []string{"y"}, Private); err == nil {
		t.Error("FD violation accepted")
	}
}

func TestVisibility(t *testing.T) {
	m := Fig1M1()
	if m.Visibility() != Private {
		t.Error("default visibility not private")
	}
	p := m.AsPublic()
	if p.Visibility() != Public || m.Visibility() != Private {
		t.Error("AsPublic did not copy")
	}
	if p.AsPrivate().Visibility() != Private {
		t.Error("AsPrivate failed")
	}
	if Public.String() != "public" || Private.String() != "private" {
		t.Error("Visibility.String wrong")
	}
}

func TestIdentityAndComplementAreOneToOne(t *testing.T) {
	id := Identity("id", []string{"x1", "x2", "x3"}, []string{"y1", "y2", "y3"})
	if !id.IsOneToOne() {
		t.Error("identity not one-one")
	}
	comp := Complement("neg", []string{"x1", "x2"}, []string{"y1", "y2"})
	if !comp.IsOneToOne() {
		t.Error("complement not one-one")
	}
	got := comp.MustEval(relation.Tuple{1, 0})
	if !got.Equal(relation.Tuple{0, 1}) {
		t.Errorf("complement(1,0) = %v", got)
	}
}

func TestConstantIsNotOneToOne(t *testing.T) {
	c := Constant("c", relation.Bools("x1", "x2"), relation.Bools("y"), relation.Tuple{1})
	if c.IsOneToOne() {
		t.Error("constant reported one-one")
	}
	if got := c.MustEval(relation.Tuple{0, 1}); !got.Equal(relation.Tuple{1}) {
		t.Errorf("constant eval = %v", got)
	}
}

func TestMajority(t *testing.T) {
	m := Majority("maj", []string{"x1", "x2", "x3", "x4"}, "y")
	cases := map[[4]relation.Value]relation.Value{
		{0, 0, 0, 0}: 0,
		{1, 0, 0, 0}: 0,
		{1, 1, 0, 0}: 1, // >= k = 2 ones
		{1, 1, 1, 1}: 1,
	}
	for x, want := range cases {
		got := m.MustEval(relation.Tuple{x[0], x[1], x[2], x[3]})
		if got[0] != want {
			t.Errorf("maj(%v) = %d, want %d", x, got[0], want)
		}
	}
}

func TestThreshold(t *testing.T) {
	m := Threshold("t", []string{"x1", "x2", "x3"}, "y", 2)
	if m.MustEval(relation.Tuple{1, 0, 0})[0] != 0 {
		t.Error("threshold fired below t")
	}
	if m.MustEval(relation.Tuple{1, 1, 0})[0] != 1 {
		t.Error("threshold silent at t")
	}
}

func TestGates(t *testing.T) {
	in := []string{"x", "y"}
	if And("g", in, "z").MustEval(relation.Tuple{1, 1})[0] != 1 {
		t.Error("and(1,1) != 1")
	}
	if And("g", in, "z").MustEval(relation.Tuple{1, 0})[0] != 0 {
		t.Error("and(1,0) != 0")
	}
	if Or("g", in, "z").MustEval(relation.Tuple{0, 0})[0] != 0 {
		t.Error("or(0,0) != 0")
	}
	if Or("g", in, "z").MustEval(relation.Tuple{0, 1})[0] != 1 {
		t.Error("or(0,1) != 1")
	}
	if Xor("g", in, "z").MustEval(relation.Tuple{1, 1})[0] != 0 {
		t.Error("xor(1,1) != 0")
	}
	if Nand("g", in, "z").MustEval(relation.Tuple{1, 1})[0] != 0 {
		t.Error("nand(1,1) != 0")
	}
	if Not("g", "x", "z").MustEval(relation.Tuple{0})[0] != 1 {
		t.Error("not(0) != 1")
	}
}

func TestAdder(t *testing.T) {
	m := Adder("add", []string{"x1", "x0"}, []string{"y1", "y0"}, []string{"s2", "s1", "s0"})
	// 3 + 2 = 5 = 101
	got := m.MustEval(relation.Tuple{1, 1, 1, 0})
	if !got.Equal(relation.Tuple{1, 0, 1}) {
		t.Errorf("3+2 = %v, want [1 0 1]", got)
	}
	// 0 + 0 = 0
	got = m.MustEval(relation.Tuple{0, 0, 0, 0})
	if !got.Equal(relation.Tuple{0, 0, 0}) {
		t.Errorf("0+0 = %v", got)
	}
}

func TestPermutationIsOneToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		p := Permutation("p", []string{"x1", "x2", "x3"}, []string{"y1", "y2", "y3"}, rng)
		if !p.IsOneToOne() {
			t.Fatal("random permutation not one-one")
		}
	}
}

func TestRandomModuleDeterministicGivenSeed(t *testing.T) {
	in := relation.Bools("x1", "x2")
	out := relation.Bools("y1", "y2")
	a := Random("r", in, out, rand.New(rand.NewSource(42)))
	b := Random("r", in, out, rand.New(rand.NewSource(42)))
	if !a.Relation().Equal(b.Relation()) {
		t.Error("same seed produced different random modules")
	}
}

func TestWithFuncAndName(t *testing.T) {
	m := Fig1M1()
	g := m.WithFunc(func(x relation.Tuple) relation.Tuple { return relation.Tuple{0, 0, 0} })
	if g.MustEval(relation.Tuple{1, 1}).Equal(m.MustEval(relation.Tuple{1, 1})) {
		t.Error("WithFunc did not replace functionality")
	}
	if g.Name() != m.Name() {
		t.Error("WithFunc changed name")
	}
	if m.WithName("zz").Name() != "zz" {
		t.Error("WithName failed")
	}
}

func TestStringAndAccessors(t *testing.T) {
	m := Fig1M1()
	if m.Arity() != 5 {
		t.Errorf("arity = %d, want 5", m.Arity())
	}
	if got := m.AttrNames(); len(got) != 5 || got[0] != "a1" || got[4] != "a5" {
		t.Errorf("AttrNames = %v", got)
	}
	if n, ok := m.InputDomainSize(); !ok || n != 4 {
		t.Errorf("InputDomainSize = %d,%v", n, ok)
	}
	if !strings.Contains(m.String(), "m1") {
		t.Errorf("String = %q", m.String())
	}
}

// Property: every materialized module relation satisfies the FD I -> O and
// has one row per input.
func TestQuickRelationSatisfiesFD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random("r", relation.Bools("x1", "x2", "x3"), relation.Bools("y1", "y2"), rng)
		r := m.Relation()
		ok, err := r.SatisfiesFD(m.InputNames(), m.OutputNames())
		return err == nil && ok && r.Len() == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: FromRelation inverts Relation for random modules.
func TestQuickTableRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Random("r", relation.Bools("x1", "x2"), relation.Bools("y1"), rng)
		m2, err := FromRelation("copy", m.Relation(), m.InputNames(), m.OutputNames(), Private)
		if err != nil {
			return false
		}
		return m2.Relation().Equal(m.Relation())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
