package module

import (
	"fmt"
	"math/rand"

	"secureview/internal/relation"
)

// This file contains the standard module constructions used throughout the
// paper: the Figure 1 example modules, one-one functions (identity,
// complement, random permutations), constant functions, majority, gates and
// adders. They double as realistic workloads for the benchmarks.

// BoolGate builds a module with boolean inputs and a single boolean output
// computed by f over the input values.
func BoolGate(name string, inNames []string, outName string, f func([]relation.Value) relation.Value) *Module {
	return MustNew(name, relation.Bools(inNames...), relation.Bools(outName),
		func(x relation.Tuple) relation.Tuple {
			return relation.Tuple{f(x) & 1}
		})
}

// And returns an AND gate over the named inputs.
func And(name string, inNames []string, outName string) *Module {
	return BoolGate(name, inNames, outName, func(x []relation.Value) relation.Value {
		for _, v := range x {
			if v == 0 {
				return 0
			}
		}
		return 1
	})
}

// Or returns an OR gate over the named inputs.
func Or(name string, inNames []string, outName string) *Module {
	return BoolGate(name, inNames, outName, func(x []relation.Value) relation.Value {
		for _, v := range x {
			if v == 1 {
				return 1
			}
		}
		return 0
	})
}

// Xor returns a parity gate over the named inputs.
func Xor(name string, inNames []string, outName string) *Module {
	return BoolGate(name, inNames, outName, func(x []relation.Value) relation.Value {
		s := 0
		for _, v := range x {
			s ^= v
		}
		return s
	})
}

// Nand returns a NAND gate over the named inputs.
func Nand(name string, inNames []string, outName string) *Module {
	return BoolGate(name, inNames, outName, func(x []relation.Value) relation.Value {
		for _, v := range x {
			if v == 0 {
				return 1
			}
		}
		return 0
	})
}

// Not returns a single-input negation module.
func Not(name, inName, outName string) *Module {
	return BoolGate(name, []string{inName}, outName, func(x []relation.Value) relation.Value {
		return 1 - x[0]
	})
}

// Fig1M1 returns module m1 of the paper's Figure 1: inputs a1, a2 and
// outputs a3 = a1 ∨ a2, a4 = ¬(a1 ∧ a2), a5 = ¬(a1 ⊕ a2).
func Fig1M1() *Module {
	return MustNew("m1", relation.Bools("a1", "a2"), relation.Bools("a3", "a4", "a5"),
		func(x relation.Tuple) relation.Tuple {
			a1, a2 := x[0], x[1]
			or := a1 | a2
			nand := 1 - a1&a2
			xnor := 1 - (a1 ^ a2)
			return relation.Tuple{or, nand, xnor}
		})
}

// Fig1M2 returns module m2 of Figure 1: a6 = ¬(a3 ∧ a4), consistent with
// the executions shown in Figure 1(b).
func Fig1M2() *Module {
	return MustNew("m2", relation.Bools("a3", "a4"), relation.Bools("a6"),
		func(x relation.Tuple) relation.Tuple {
			return relation.Tuple{1 - x[0]&x[1]}
		})
}

// Fig1M3 returns module m3 of Figure 1: a7 = a4 ⊕ a5, consistent with the
// executions shown in Figure 1(b).
func Fig1M3() *Module {
	return MustNew("m3", relation.Bools("a4", "a5"), relation.Bools("a7"),
		func(x relation.Tuple) relation.Tuple {
			return relation.Tuple{x[0] ^ x[1]}
		})
}

// Identity returns the one-one module that copies its i-th input to its i-th
// output. Input and output name lists must have equal length; attributes are
// boolean.
func Identity(name string, inNames, outNames []string) *Module {
	if len(inNames) != len(outNames) {
		panic(fmt.Sprintf("module %s: identity arity mismatch %d vs %d", name, len(inNames), len(outNames)))
	}
	return MustNew(name, relation.Bools(inNames...), relation.Bools(outNames...),
		func(x relation.Tuple) relation.Tuple {
			return append(relation.Tuple(nil), x...)
		})
}

// Complement returns the one-one module that flips every boolean input bit
// ("reverses the values of its k inputs", used in the proof of
// Proposition 2).
func Complement(name string, inNames, outNames []string) *Module {
	if len(inNames) != len(outNames) {
		panic(fmt.Sprintf("module %s: complement arity mismatch", name))
	}
	return MustNew(name, relation.Bools(inNames...), relation.Bools(outNames...),
		func(x relation.Tuple) relation.Tuple {
			y := make(relation.Tuple, len(x))
			for i, v := range x {
				y[i] = 1 - v
			}
			return y
		})
}

// Constant returns a module that ignores its inputs and emits the fixed
// output tuple (the public module m' of Example 7).
func Constant(name string, inputs, outputs []relation.Attribute, value relation.Tuple) *Module {
	if len(value) != len(outputs) {
		panic(fmt.Sprintf("module %s: constant arity mismatch", name))
	}
	fixed := append(relation.Tuple(nil), value...)
	return MustNew(name, inputs, outputs, func(relation.Tuple) relation.Tuple {
		return fixed
	})
}

// Majority returns the majority module of Example 6: len(inNames) boolean
// inputs (conventionally 2k of them) and one boolean output which is 1 iff
// the number of ones in the input is at least half the input count.
func Majority(name string, inNames []string, outName string) *Module {
	k := (len(inNames) + 1) / 2
	return BoolGate(name, inNames, outName, func(x []relation.Value) relation.Value {
		ones := 0
		for _, v := range x {
			ones += v
		}
		if ones >= k {
			return 1
		}
		return 0
	})
}

// Threshold returns a module that outputs 1 iff at least t of its boolean
// inputs are 1 (used by the Theorem 3 adversary constructions).
func Threshold(name string, inNames []string, outName string, t int) *Module {
	return BoolGate(name, inNames, outName, func(x []relation.Value) relation.Value {
		ones := 0
		for _, v := range x {
			ones += v
		}
		if ones >= t {
			return 1
		}
		return 0
	})
}

// Adder returns a binary ripple-carry adder: inputs xNames and yNames (two
// k-bit numbers, most significant bit first) and k+1 output bits (sum, most
// significant bit first). A realistic medium-size module for workloads.
func Adder(name string, xNames, yNames, sumNames []string) *Module {
	k := len(xNames)
	if len(yNames) != k || len(sumNames) != k+1 {
		panic(fmt.Sprintf("module %s: adder arities must be k,k,k+1", name))
	}
	in := append(relation.Bools(xNames...), relation.Bools(yNames...)...)
	return MustNew(name, in, relation.Bools(sumNames...),
		func(t relation.Tuple) relation.Tuple {
			x, y := 0, 0
			for i := 0; i < k; i++ {
				x = x<<1 | t[i]
				y = y<<1 | t[k+i]
			}
			s := x + y
			out := make(relation.Tuple, k+1)
			for i := k; i >= 0; i-- {
				out[i] = s & 1
				s >>= 1
			}
			return out
		})
}

// Permutation returns a uniformly random one-one module over k boolean
// inputs and k boolean outputs, drawn from rng. Deterministic given the rng
// state.
func Permutation(name string, inNames, outNames []string, rng *rand.Rand) *Module {
	k := len(inNames)
	if len(outNames) != k {
		panic(fmt.Sprintf("module %s: permutation arity mismatch", name))
	}
	n := 1 << k
	perm := rng.Perm(n)
	return MustNew(name, relation.Bools(inNames...), relation.Bools(outNames...),
		func(x relation.Tuple) relation.Tuple {
			code := 0
			for _, v := range x {
				code = code<<1 | v
			}
			out := perm[code]
			y := make(relation.Tuple, k)
			for i := k - 1; i >= 0; i-- {
				y[i] = out & 1
				out >>= 1
			}
			return y
		})
}

// Random returns a module with a uniformly random truth table over the given
// attributes, drawn from rng. Useful as an "unknown proprietary module" in
// workloads.
func Random(name string, inputs, outputs []relation.Attribute, rng *rand.Rand) *Module {
	inSchema := relation.MustSchema(inputs...)
	size, ok := inSchema.DomainProduct(inSchema.Names())
	if !ok || size > 1<<22 {
		panic(fmt.Sprintf("module %s: input domain too large for random table", name))
	}
	table := make([]relation.Tuple, size)
	for i := range table {
		y := make(relation.Tuple, len(outputs))
		for j, a := range outputs {
			y[j] = rng.Intn(a.Domain)
		}
		table[i] = y
	}
	return MustNew(name, inputs, outputs, func(x relation.Tuple) relation.Tuple {
		return table[relation.Encode(inSchema, x)]
	})
}
