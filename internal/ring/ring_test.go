package ring

import (
	"fmt"
	"testing"
)

func TestValidation(t *testing.T) {
	if _, err := New("", nil); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := New("a", []string{"b", ""}); err == nil {
		t.Fatal("empty peer accepted")
	}
	r, err := New("a", []string{"a", "b", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes()) != 2 {
		t.Fatalf("dedup failed: %v", r.Nodes())
	}
}

// TestAgreement: every replica, given the same membership (in any rotation,
// with itself listed or not), routes every key to the same owner — the
// property proxying correctness rests on.
func TestAgreement(t *testing.T) {
	nodes := []string{"h1:1", "h2:1", "h3:1"}
	rings := make([]*Ring, len(nodes))
	for i, self := range nodes {
		var err error
		rings[i], err = New(self, nodes) // self included: same flag everywhere
		if err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("fingerprint-%d", k)
		want := rings[0].Owner(key)
		for _, r := range rings[1:] {
			if got := r.Owner(key); got != want {
				t.Fatalf("key %q: %s vs %s", key, got, want)
			}
		}
		if (rings[0].Owner(key) == rings[0].Self()) != rings[0].Mine(key) {
			t.Fatal("Mine disagrees with Owner")
		}
	}
}

// TestSpread: virtual nodes keep per-node ownership within a sane band of
// uniform (no node below half or above double its fair share).
func TestSpread(t *testing.T) {
	nodes := []string{"h1:1", "h2:1", "h3:1", "h4:1"}
	r, err := New(nodes[0], nodes[1:])
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 20000
	for k := 0; k < keys; k++ {
		counts[r.Owner(fmt.Sprintf("key-%d", k))]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair %d): %v", n, c, keys, fair, counts)
		}
	}
}

// TestStability: removing one node moves only the keys it owned — every
// other key keeps its owner (the consistent-hashing contract).
func TestStability(t *testing.T) {
	all := []string{"h1:1", "h2:1", "h3:1", "h4:1"}
	full, err := New(all[0], all)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := New(all[0], all[:3])
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 5000
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		before := full.Owner(key)
		after := smaller.Owner(key)
		if before == all[3] {
			continue // owned by the removed node; must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed node changed owner", moved)
	}
}

func TestSingleNode(t *testing.T) {
	r, err := New("only", nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		if !r.Mine(fmt.Sprintf("key-%d", k)) {
			t.Fatal("single-node ring routed a key elsewhere")
		}
	}
}
