// Package ring is the consistent-hash routing layer behind sharded serving:
// a fixed set of replica addresses is mapped onto a hash circle through
// virtual nodes, and every request fingerprint is owned by the first node
// clockwise of its hash. Adding or removing one replica moves only the keys
// adjacent to its virtual points (~1/n of the space), so a rolling restart
// does not reshuffle every cache's working set.
//
// The ring is static per process — membership comes from configuration, not
// gossip. That is deliberate: the cache it shards is rebuildable, so the
// failure story stays trivial (a dead owner means the entry is re-derived
// locally, nothing more) and the package needs no coordination protocol.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// vnodes is the number of virtual points per node. 64 keeps the ownership
// spread within a few percent of uniform for small clusters while the whole
// ring stays a couple of KiB.
const vnodes = 64

type point struct {
	hash uint64
	node string
}

// Ring maps keys to owning nodes. Immutable after New; safe for concurrent
// use.
type Ring struct {
	self   string
	nodes  []string
	points []point
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256. Speed is
// irrelevant here (one hash per request, a handful per node at build time)
// and the uniformity is what keeps virtual-node spread honest.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.LittleEndian.Uint64(sum[:8])
}

// New builds a ring over self plus its peers. Addresses must be non-empty
// and distinct; self may appear in peers (it is deduplicated) so every
// replica can ship the same -peers flag.
func New(self string, peers []string) (*Ring, error) {
	if self == "" {
		return nil, fmt.Errorf("ring: empty self address")
	}
	seen := map[string]bool{self: true}
	nodes := []string{self}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("ring: empty peer address")
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		nodes = append(nodes, p)
	}
	r := &Ring{self: self, nodes: nodes, points: make([]point, 0, vnodes*len(nodes))}
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node so every replica sorts identically even in the
		// astronomically unlikely event of a point collision.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Self returns this replica's address.
func (r *Ring) Self() string { return r.self }

// Nodes returns every member address, self first (do not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key: the first virtual point clockwise of
// the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Mine reports whether this replica owns key.
func (r *Ring) Mine(key string) bool { return r.Owner(key) == r.self }
