package worlds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// Property: FLIP is an involution on tuples.
func TestQuickFlipInvolution(t *testing.T) {
	names := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pq := PQ{P: map[string]relation.Value{}, Q: map[string]relation.Value{}}
		for _, n := range names {
			pq.P[n] = rng.Intn(3)
			pq.Q[n] = rng.Intn(3)
		}
		x := relation.Tuple{rng.Intn(3), rng.Intn(3), rng.Intn(3)}
		once := pq.FlipTuple(x, names)
		twice := pq.FlipTuple(once, names)
		return twice.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlipTupleSemantics(t *testing.T) {
	pq := PQ{
		P: map[string]relation.Value{"a": 0, "b": 1},
		Q: map[string]relation.Value{"a": 1, "b": 1},
	}
	// a: 0<->1 swap; b: p=q=1, unchanged; c: not in P/Q, unchanged.
	got := pq.FlipTuple(relation.Tuple{0, 1, 7}, []string{"a", "b", "c"})
	if !got.Equal(relation.Tuple{1, 1, 7}) {
		t.Fatalf("flip = %v, want [1 1 7]", got)
	}
	// Value not equal to p or q is unchanged.
	got = pq.FlipTuple(relation.Tuple{2, 0, 0}, []string{"a", "b", "c"})
	if !got.Equal(relation.Tuple{2, 0, 0}) {
		t.Fatalf("flip = %v, want unchanged", got)
	}
}

// The worked illustration below Lemma 2: for m1 with V = {a1,a3,a5},
// x = (0,0) and y = (1,0,0), the witness is x' = (0,1) with
// y' = m1(x') = (1,1,0), and the flipped workflow maps x to y while keeping
// the visible projection of the whole Figure 1 workflow unchanged.
func TestFlipWorldLemma2Illustration(t *testing.T) {
	w := workflow.Fig1()
	visible := relation.NewNameSet("a1", "a3", "a5", "a6", "a7")
	x := relation.Tuple{0, 0}
	y := relation.Tuple{1, 0, 0}
	redefined, pq, err := FlipWorld(w, "m1", visible, x, y)
	if err != nil {
		t.Fatal(err)
	}
	// q must be the witness (0,1) -> (1,1,0).
	if pq.Q["a1"] != 0 || pq.Q["a2"] != 1 {
		t.Errorf("witness input = (%d,%d), want (0,1)", pq.Q["a1"], pq.Q["a2"])
	}
	if pq.Q["a3"] != 1 || pq.Q["a4"] != 1 || pq.Q["a5"] != 0 {
		t.Errorf("witness output = (%d,%d,%d), want (1,1,0)", pq.Q["a3"], pq.Q["a4"], pq.Q["a5"])
	}
	g1 := redefined.Module("m1")
	if got := g1.MustEval(x); !got.Equal(y) {
		t.Fatalf("g1(%v) = %v, want %v", x, got, y)
	}
	// The flipped world projects identically on the visible attributes of
	// m1 (a1, a3, a5). Note a6/a7 visibility holds for the all-private
	// workflow per Theorem 4 when the remaining modules are also flipped.
	origR := w.MustRelation()
	newR := redefined.MustRelation()
	for _, attrs := range [][]string{{"a1", "a3", "a5"}} {
		po, _ := origR.Project(attrs)
		pn, _ := newR.Project(attrs)
		if !po.Equal(pn) {
			t.Errorf("visible projection on %v changed:\n%v\nvs\n%v", attrs, po, pn)
		}
	}
}

// Theorem 4, verified exhaustively on Figure 1: hiding the union of
// per-module standalone safe hidden sets gives Γ-workflow-privacy for all
// modules, measured by full possible-world enumeration.
func TestTheorem4AssemblyFig1(t *testing.T) {
	w := workflow.Fig1()
	const gamma = 2
	// Standalone safe hidden sets: m1: {a4,a5} (Example 3 family, Γ=2
	// holds since Γ=4 does); m2: {a6}; m3: {a7}.
	hidden := relation.NewNameSet("a4", "a5", "a6", "a7")
	for _, m := range w.Modules() {
		mv := privacy.NewModuleView(m)
		vis := relation.NewNameSet(mv.Attrs()...).Minus(hidden)
		safe, err := mv.IsSafe(vis, gamma)
		if err != nil || !safe {
			t.Fatalf("module %s standalone unsafe with hidden %v: %v", m.Name(), hidden, err)
		}
	}
	visible := relation.NewNameSet(w.Schema().Names()...).Minus(hidden)
	e := &Enumerator{W: w, R: w.MustRelation(), Visible: visible}
	for _, m := range w.Modules() {
		private, err := e.IsWorkflowPrivate(m.Name(), gamma)
		if err != nil {
			t.Fatal(err)
		}
		if !private {
			t.Errorf("module %s not %d-workflow-private", m.Name(), gamma)
		}
	}
}

// Proposition 2: for the two-module one-one chain with the hidden set
// being logΓ output bits of m1, the standalone worlds number Γ^(2^k) while
// the workflow worlds number (Γ!)^(2^k / Γ).
func TestProposition2WorldCounts(t *testing.T) {
	const k = 2
	// m1 = identity, m2 = complement, both one-one over k bits.
	chain := workflow.Chain("prop2", 2, k, "identity")
	m2 := module.Complement("m2", []string{"x1_0", "x1_1"}, []string{"x2_0", "x2_1"})
	w := workflow.MustNew("prop2", chain.Module("m1"), m2)

	// Hide one output bit of m1: logΓ = 1, Γ = 2.
	hidden := relation.NewNameSet("x1_0")
	visible := relation.NewNameSet(w.Schema().Names()...).Minus(hidden)

	// Standalone worlds of m1 (a single-module workflow).
	standalone := workflow.MustNew("m1-only", workflow.Chain("c", 1, k, "identity").Module("m1"))
	es := &Enumerator{
		W: standalone, R: standalone.MustRelation(),
		Visible: relation.NewNameSet(standalone.Schema().Names()...).Minus(hidden),
	}
	nStandalone, err := es.Count()
	if err != nil {
		t.Fatal(err)
	}
	if nStandalone != 16 { // Γ^(2^k) = 2^4
		t.Errorf("standalone worlds = %d, want 16", nStandalone)
	}

	ew := &Enumerator{W: w, R: w.MustRelation(), Visible: visible}
	nWorkflow, err := ew.Count()
	if err != nil {
		t.Fatal(err)
	}
	if nWorkflow != 4 { // (Γ!)^(2^k/Γ) = 2^2
		t.Errorf("workflow worlds = %d, want 4", nWorkflow)
	}

	// Despite the collapse in world count, privacy is preserved (the crux
	// of section 4.1): m1 stays 2-workflow-private.
	private, err := ew.IsWorkflowPrivate("m1", 2)
	if err != nil || !private {
		t.Errorf("m1 not 2-workflow-private: %v", err)
	}
}

// Example 7, first half: a private one-one module fed by a public constant
// module leaks completely — the standalone-safe hidden set gives
// |OUT| = 1 — and privatizing the public module restores Γ-privacy.
func TestExample7ConstantUpstream(t *testing.T) {
	mPub := module.Constant("mprime", relation.Bools("i0"), relation.Bools("u1", "u2"), relation.Tuple{0, 1}).AsPublic()
	mPriv := module.Identity("m", []string{"u1", "u2"}, []string{"v1", "v2"})
	w := workflow.MustNew("ex7", mPub, mPriv)

	// Hiding one input bit of m is 2-standalone-private for m.
	hidden := relation.NewNameSet("u1")
	mv := privacy.NewModuleView(mPriv)
	safe, err := mv.IsSafe(relation.NewNameSet("u2", "v1", "v2"), 2)
	if err != nil || !safe {
		t.Fatalf("standalone safety precondition failed: %v", err)
	}

	visible := relation.NewNameSet(w.Schema().Names()...).Minus(hidden)
	R := w.MustRelation()

	// With mprime public and visible: the only world is R itself, so m's
	// output for its actual input is fully determined.
	e := &Enumerator{W: w, R: R, Visible: visible}
	out, err := e.OutSet("m", relation.Tuple{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("|OUT| with visible public module = %d, want 1 (leak)", len(out))
	}

	// Privatizing mprime restores >= 2 possible outputs.
	ep := &Enumerator{W: w, R: R, Visible: visible, Privatized: relation.NewNameSet("mprime")}
	outP, err := ep.OutSet("m", relation.Tuple{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(outP) < 2 {
		t.Fatalf("|OUT| with privatized module = %d, want >= 2", len(outP))
	}
}

// Example 7, second half: a private module whose hidden output feeds a
// visible public invertible module leaks (the adversary inverts it);
// privatization repairs it.
func TestExample7InvertibleDownstream(t *testing.T) {
	mPriv := module.Identity("m", []string{"i0"}, []string{"u"})
	mPub := module.Complement("mpp", []string{"u"}, []string{"v"}).AsPublic()
	w := workflow.MustNew("ex7b", mPriv, mPub)
	hidden := relation.NewNameSet("u")
	visible := relation.NewNameSet(w.Schema().Names()...).Minus(hidden)
	R := w.MustRelation()

	// Standalone, hiding m's only output is 2-private.
	mv := privacy.NewModuleView(mPriv)
	if safe, err := mv.IsSafe(relation.NewNameSet("i0"), 2); err != nil || !safe {
		t.Fatalf("standalone safety precondition failed: %v", err)
	}

	e := &Enumerator{W: w, R: R, Visible: visible}
	out, err := e.OutSet("m", relation.Tuple{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("|OUT| with visible invertible public module = %d, want 1", len(out))
	}

	ep := &Enumerator{W: w, R: R, Visible: visible, Privatized: relation.NewNameSet("mpp")}
	outP, err := ep.OutSet("m", relation.Tuple{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(outP) < 2 {
		t.Fatalf("|OUT| after privatization = %d, want >= 2", len(outP))
	}
}

func TestEnumeratorRejectsHiddenInitialInput(t *testing.T) {
	w := workflow.Fig1()
	e := &Enumerator{
		W: w, R: w.MustRelation(),
		Visible: relation.NewNameSet("a2", "a3", "a4", "a5", "a6", "a7"), // a1 hidden
	}
	if _, err := e.Count(); err == nil {
		t.Error("hidden initial input accepted")
	}
}

func TestEnumeratorBudget(t *testing.T) {
	w := workflow.Chain("big", 1, 4, "identity")
	hidden := relation.NewNameSet("x1_0", "x1_1", "x1_2", "x1_3")
	e := &Enumerator{
		W: w, R: w.MustRelation(),
		Visible: relation.NewNameSet(w.Schema().Names()...).Minus(hidden),
		Budget:  10,
	}
	if _, err := e.Count(); err == nil {
		t.Error("budget exhaustion not reported")
	}
}

func TestFlipWorldErrors(t *testing.T) {
	w := workflow.Fig1()
	if _, _, err := FlipWorld(w, "nope", relation.NewNameSet(), relation.Tuple{0, 0}, relation.Tuple{0, 0, 0}); err == nil {
		t.Error("unknown module accepted")
	}
	// y with mismatched visible output part has no witness.
	visible := relation.NewNameSet("a1", "a2", "a3", "a4", "a5")
	if _, _, err := FlipWorld(w, "m1", visible, relation.Tuple{0, 0}, relation.Tuple{1, 0, 0}); err == nil {
		t.Error("non-member y accepted (fully visible module)")
	}
}

// Property: with all module inputs visible and a random subset of outputs
// hidden, the enumeration OUT set of a standalone module matches the
// closed-form OUT size of Lemma 4.
func TestQuickEnumerationMatchesClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := module.Random("m", relation.Bools("x1", "x2"), relation.Bools("y1", "y2"), rng)
		w, err := workflow.New("solo", m)
		if err != nil {
			return false
		}
		hidden := make(relation.NameSet)
		for _, o := range m.OutputNames() {
			if rng.Intn(2) == 0 {
				hidden.Add(o)
			}
		}
		visible := relation.NewNameSet(w.Schema().Names()...).Minus(hidden)
		e := &Enumerator{W: w, R: w.MustRelation(), Visible: visible}
		mv := privacy.NewModuleView(m)
		ok := true
		relation.EachTuple(m.InputSchema(), func(x relation.Tuple) bool {
			enumOut, err := e.OutSet("m", x)
			if err != nil {
				ok = false
				return false
			}
			n, err := mv.OutSize(visible, x)
			if err != nil || uint64(len(enumOut)) != n {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Example 2: |Worlds(R1, {a1,a3,a5})| = 64 for the Figure 1 module m1.
func TestExample2SixtyFourWorlds(t *testing.T) {
	n, err := CountFunctionWorlds(module.Fig1M1(), relation.NewNameSet("a1", "a3", "a5"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 64 {
		t.Fatalf("|Worlds(R1,V)| = %d, want 64", n)
	}
}

// Fully visible: the only world is the module itself.
func TestCountFunctionWorldsFullyVisible(t *testing.T) {
	m := module.Fig1M1()
	n, err := CountFunctionWorlds(m, relation.NewNameSet(m.AttrNames()...))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("fully visible worlds = %d, want 1", n)
	}
}

// Cross-validation of the Lemma 4 closed form against a direct Definition 2
// implementation: OUT sets computed by full function-world enumeration must
// equal the group-by closed form on every visible subset of small random
// modules. This is the strongest semantic check in the suite — it would
// catch any misreading of the possible-worlds definitions.
func TestQuickClosedFormMatchesFunctionWorlds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := module.Random("m", relation.Bools("x1", "x2"), relation.Bools("y1"), rng)
		mv := privacy.NewModuleView(m)
		attrs := mv.Attrs()
		ok := true
		for mask := 0; mask < 1<<len(attrs) && ok; mask++ {
			visible := make(relation.NameSet)
			for i, a := range attrs {
				if mask&(1<<i) != 0 {
					visible.Add(a)
				}
			}
			relation.EachTuple(m.InputSchema(), func(x relation.Tuple) bool {
				direct, err := FunctionWorldOutSet(m, visible, x)
				if err != nil {
					ok = false
					return false
				}
				closed, err := mv.OutSet(visible, x)
				if err != nil || len(direct) != len(closed) {
					ok = false
					return false
				}
				for i := range direct {
					if !direct[i].Equal(closed[i]) {
						ok = false
						return false
					}
				}
				return true
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// The Example 3 OUT set is reproduced by direct function-world enumeration
// as well (not only by the closed form).
func TestFunctionWorldOutSetExample3(t *testing.T) {
	m := module.Fig1M1()
	out, err := FunctionWorldOutSet(m, relation.NewNameSet("a1", "a3", "a5"), relation.Tuple{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("|OUT| = %d, want 4", len(out))
	}
}
