// Package worlds implements the possible-worlds semantics of the paper
// (Davidson et al., PODS 2011, Definitions 1, 4, 5 and 6) for whole
// workflows: tuple/function flipping (appendix B.3), the flipping-based
// world construction behind Lemma 1 / Theorem 4, exhaustive world
// enumeration for tiny instances (used to verify the assembly theorems and
// the public-module counterexamples), and world counting for Proposition 2.
package worlds

import (
	"fmt"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// PQ is a pair of partial tuples p, q over a common attribute set, the
// parameters of the FLIP operator. Values are keyed by attribute name.
type PQ struct {
	P, Q map[string]relation.Value
}

// FlipTuple applies FLIP_{p,q} to a tuple x over the named attributes
// (appendix B.3): positions where x agrees with p take q's value, positions
// where x agrees with q take p's value, and everything else is unchanged.
// FlipTuple is an involution: FlipTuple(FlipTuple(x)) == x.
func (pq PQ) FlipTuple(x relation.Tuple, names []string) relation.Tuple {
	y := x.Clone()
	for i, name := range names {
		p, hasP := pq.P[name]
		q, hasQ := pq.Q[name]
		if !hasP || !hasQ {
			continue
		}
		switch x[i] {
		case p:
			y[i] = q
		case q:
			y[i] = p
		}
	}
	return y
}

// FlipFunc returns FLIP_{m,p,q} = FLIP ∘ m ∘ FLIP (Definition 7): flip the
// input, apply the module, flip the output.
func (pq PQ) FlipFunc(m *module.Module) module.Func {
	inNames := m.InputNames()
	outNames := m.OutputNames()
	return func(x relation.Tuple) relation.Tuple {
		return pq.FlipTuple(m.MustEval(pq.FlipTuple(x, inNames)), outNames)
	}
}

// FlipWorld constructs the possible world used in the proof of Lemma 1:
// given a target private module, an input x and a candidate output
// y ∈ OUT_{x,m} w.r.t. the visible attributes, it finds the Lemma 2 witness
// (x', y' = m(x')) agreeing with (x, y) on the visible attributes, builds
// p = (x,y), q = (x',y') over I∪O of the target, and redefines every module
// mj to FLIP_{mj,p,q}. The returned workflow maps x to y at the target
// module and (for all-private workflows) its relation has the same visible
// projection as the original — which the tests verify, re-proving Theorem 4
// constructively on concrete instances.
func FlipWorld(w *workflow.Workflow, target string, visible relation.NameSet, x, y relation.Tuple) (*workflow.Workflow, PQ, error) {
	m := w.Module(target)
	if m == nil {
		return nil, PQ{}, fmt.Errorf("worlds: no module %q", target)
	}
	mv := privacy.NewModuleView(m)
	witX, witY, err := lemma2Witness(mv, visible, x, y)
	if err != nil {
		return nil, PQ{}, err
	}
	pq := PQ{P: map[string]relation.Value{}, Q: map[string]relation.Value{}}
	for i, name := range m.InputNames() {
		pq.P[name] = x[i]
		pq.Q[name] = witX[i]
	}
	for i, name := range m.OutputNames() {
		pq.P[name] = y[i]
		pq.Q[name] = witY[i]
	}
	fns := make(map[string]module.Func)
	for _, mj := range w.Modules() {
		fns[mj.Name()] = pq.FlipFunc(mj)
	}
	redefined, err := w.Redefine(fns)
	if err != nil {
		return nil, PQ{}, err
	}
	return redefined, pq, nil
}

// lemma2Witness finds x' ∈ π_I(R) with y' = m(x') such that x, x' agree on
// visible inputs and y, y' agree on visible outputs (Lemma 2). It returns
// an error when none exists, i.e. when y ∉ OUT_{x,m}.
func lemma2Witness(mv privacy.ModuleView, visible relation.NameSet, x, y relation.Tuple) (relation.Tuple, relation.Tuple, error) {
	inCols, err := mv.Rel.Schema().Columns(mv.Inputs)
	if err != nil {
		return nil, nil, err
	}
	outCols, err := mv.Rel.Schema().Columns(mv.Outputs)
	if err != nil {
		return nil, nil, err
	}
	for _, row := range mv.Rel.Rows() {
		ok := true
		for i, c := range inCols {
			if visible.Has(mv.Inputs[i]) && row[c] != x[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for i, c := range outCols {
			if visible.Has(mv.Outputs[i]) && row[c] != y[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		witX := make(relation.Tuple, len(inCols))
		for i, c := range inCols {
			witX[i] = row[c]
		}
		witY := make(relation.Tuple, len(outCols))
		for i, c := range outCols {
			witY[i] = row[c]
		}
		return witX, witY, nil
	}
	return nil, nil, fmt.Errorf("worlds: no Lemma 2 witness: y not in OUT_{x,m}")
}
