package worlds

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"secureview/internal/module"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// heavyEnumerator builds a k=3 Proposition 2 chain with four hidden
// attributes — an enumeration with billions of candidate assignments, far
// beyond any 50ms of wall clock — and an effectively unlimited budget so
// only cancellation can stop it.
func heavyEnumerator(workers int) *Enumerator {
	k := 3
	bits := func(level int) []string {
		out := make([]string, k)
		for b := 0; b < k; b++ {
			out[b] = fmt.Sprintf("x%d_%d", level, b)
		}
		return out
	}
	m1 := module.Identity("m1", bits(0), bits(1))
	m2 := module.Complement("m2", bits(1), bits(2))
	w := workflow.MustNew("prop2-heavy", m1, m2)
	hidden := relation.NewNameSet("x1_0", "x1_1", "x1_2", "x2_0")
	return &Enumerator{
		W: w, R: w.MustRelation(),
		Visible: relation.NewNameSet(w.Schema().Names()...).Minus(hidden),
		Budget:  1 << 62,
		Workers: workers,
	}
}

// TestCountCtxDeadline: a 50ms deadline stops the sharded worlds walk
// within one candidate assignment, on both the sequential and the parallel
// paths.
func TestCountCtxDeadline(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := heavyEnumerator(workers)
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := e.CountCtx(ctx)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded (elapsed %v)", err, elapsed)
			}
			if elapsed > 2*time.Second {
				t.Fatalf("took %v to notice a 50ms deadline", elapsed)
			}
		})
	}
}

// TestIsWorkflowPrivateCtxDeadline covers the OUT-set path (outSets) under
// cancellation, and that an already-expired context fails fast.
func TestIsWorkflowPrivateCtxDeadline(t *testing.T) {
	e := heavyEnumerator(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.IsWorkflowPrivateCtx(ctx, "m1", 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("took %v to notice a 50ms deadline", elapsed)
	}

	expired, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := e.CountCtx(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestEachWorldCtxUncancelled: a background context changes nothing — the
// walk completes with the same count as the legacy entry point.
func TestEachWorldCtxUncancelled(t *testing.T) {
	w := workflow.Fig1()
	e := &Enumerator{W: w, R: w.MustRelation(),
		Visible: relation.NewNameSet("a1", "a2", "a3", "a5", "a6")}
	want, err := e.Count()
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(0)
	if err := e.EachWorldCtx(context.Background(), func([]relation.Tuple) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("EachWorldCtx visited %d worlds, Count says %d", n, want)
	}
}
