package worlds

import (
	"testing"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/secureview"
	"secureview/internal/workflow"
)

// Theorem 8 end-to-end: in a general workflow (private + public modules),
// solving the derived Secure-View instance yields a hidden-attribute /
// privatized-module pair under which every private module is Γ-workflow-
// private — verified by exhaustive enumeration of Worlds(R, V, P)
// (Definition 6).
func TestTheorem8GeneralAssembly(t *testing.T) {
	// Public constant feeds a private identity (the dangerous Example 7
	// shape), whose output feeds a public complement (the other dangerous
	// shape). The optimizer must pay privatizations as needed.
	mPub1 := module.Constant("src", relation.Bools("i0"), relation.Bools("u1", "u2"), relation.Tuple{0, 1}).AsPublic()
	mPriv := module.Identity("m", []string{"u1", "u2"}, []string{"v1", "v2"})
	mPub2 := module.Complement("post", []string{"v1", "v2"}, []string{"w1", "w2"}).AsPublic()
	w := workflow.MustNew("thm8", mPub1, mPriv, mPub2)

	costs := privacy.Costs{"i0": 10, "u1": 1, "u2": 1, "v1": 1, "v2": 1, "w1": 10, "w2": 10}
	privatize := map[string]float64{"src": 2, "post": 2}

	p, err := secureview.Derive(w, secureview.DeriveOptions{
		Gamma: 2, Costs: costs, PrivatizeCosts: privatize,
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := secureview.ExactSet(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(sol, secureview.Set) {
		t.Fatal("solution infeasible")
	}

	visible := relation.NewNameSet(w.Schema().Names()...).Minus(sol.Hidden)
	// The enumerator needs the initial input visible; i0 costs 10, so the
	// optimum never hides it.
	if !visible.Has("i0") {
		t.Fatalf("optimum hid the expensive initial input: %v", sol.Hidden)
	}
	e := &Enumerator{
		W: w, R: w.MustRelation(),
		Visible:    visible,
		Privatized: sol.Privatized,
	}
	ok, err := e.IsWorkflowPrivate("m", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("m not 2-workflow-private under hidden=%v privatized=%v",
			sol.Hidden, sol.Privatized)
	}

	// Counterfactual: dropping the privatizations from the same solution
	// must break privacy (this is exactly the Example 7 leak).
	if len(sol.Privatized) > 0 {
		e2 := &Enumerator{W: w, R: w.MustRelation(), Visible: visible}
		ok, err := e2.IsWorkflowPrivate("m", 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Error("privacy held even without the privatizations the optimizer paid for")
		}
	}
}

// Theorem 8 with the cheap path: when privatization is free, the optimizer
// prefers hiding the cheap shared attributes and renaming the neighbours.
func TestTheorem8PrivatizationTradeoffs(t *testing.T) {
	mPub := module.Identity("fmt", []string{"a"}, []string{"b"}).AsPublic()
	mPriv := module.Not("m", "b", "c")
	w := workflow.MustNew("trade", mPub, mPriv)
	costs := privacy.Costs{"a": 5, "b": 1, "c": 5}

	cheap, err := secureview.Derive(w, secureview.DeriveOptions{
		Gamma: 2, Costs: costs, PrivatizeCosts: map[string]float64{"fmt": 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	solCheap, err := secureview.ExactSet(cheap, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !solCheap.Hidden.Has("b") || !solCheap.Privatized.Has("fmt") {
		t.Errorf("cheap privatization: hidden=%v privatized=%v, want hide b + privatize fmt",
			solCheap.Hidden, solCheap.Privatized)
	}
	if got := cheap.Cost(solCheap); got != 1.5 {
		t.Errorf("cost = %v, want 1.5", got)
	}

	dear, err := secureview.Derive(w, secureview.DeriveOptions{
		Gamma: 2, Costs: costs, PrivatizeCosts: map[string]float64{"fmt": 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	solDear, err := secureview.ExactSet(dear, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if solDear.Privatized.Has("fmt") {
		t.Errorf("expensive privatization chosen: %v", solDear.Privatized)
	}
	if got := dear.Cost(solDear); got != 5 {
		t.Errorf("cost = %v, want 5 (hide c)", got)
	}
}
