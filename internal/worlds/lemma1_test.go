package worlds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// TestQuickLemma1 mechanizes the paper's central Lemma 1 on random
// all-private workflows: for every module mi, every input x, and every
// candidate output y in the STANDALONE OUT set w.r.t. a random visible
// choice of mi's attributes, the flipping construction yields a possible
// world that (a) maps x to y at mi and (b) agrees with the original
// workflow relation on all of mi's visible attributes — hence
// |OUT_{x,W}| >= |OUT_{x,mi}| and Theorem 4 follows.
func TestQuickLemma1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomAllPrivateWorkflow(rng)
		// Pick a target module and a random visible subset of its attrs.
		mods := w.Modules()
		target := mods[rng.Intn(len(mods))]
		mv := privacy.NewModuleView(target)
		visible := make(relation.NameSet)
		for _, a := range mv.Attrs() {
			if rng.Intn(2) == 0 {
				visible.Add(a)
			}
		}
		// Everything outside the module is visible (the Lemma 1 setting:
		// V̄ = V̄i).
		fullVisible := relation.NewNameSet(w.Schema().Names()...).
			Minus(relation.NewNameSet(mv.Attrs()...)).
			Union(visible)

		origR := w.MustRelation()
		visNames := fullVisible.FilterSorted(w.Schema().Names())
		origVis, err := origR.Project(visNames)
		if err != nil {
			return false
		}

		// For every input and every standalone OUT candidate, build the
		// flip world and check both Lemma 1 claims.
		ok := true
		relation.EachTuple(target.InputSchema(), func(x relation.Tuple) bool {
			outs, err := mv.OutSet(visible, x)
			if err != nil {
				ok = false
				return false
			}
			for _, y := range outs {
				redefined, _, err := FlipWorld(w, target.Name(), visible, x, y)
				if err != nil {
					ok = false
					return false
				}
				if !redefined.Module(target.Name()).MustEval(x).Equal(y) {
					ok = false
					return false
				}
				newVis, err := redefined.MustRelation().Project(visNames)
				if err != nil || !newVis.Equal(origVis) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// randomAllPrivateWorkflow builds a small random workflow with data
// sharing: two sources feeding two downstream modules.
func randomAllPrivateWorkflow(rng *rand.Rand) *workflow.Workflow {
	m1 := module.Random("m1", relation.Bools("x1", "x2"), relation.Bools("u1", "u2"), rng)
	m2 := module.Random("m2", relation.Bools("u1", "u2"), relation.Bools("v1"), rng)
	m3 := module.Random("m3", relation.Bools("u2", "x1"), relation.Bools("w1"), rng)
	return workflow.MustNew("rand", m1, m2, m3)
}

// TestQuickFlipFuncIsWorldMember: flipping every module of an all-private
// workflow by a shared (p, q) pair keeps the relation a member of
// Worlds(R, V) whenever p, q agree on the visible attributes of the target
// module — the inductive invariant inside the Lemma 1 proof.
func TestQuickFlipPreservesVisibleColumns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomAllPrivateWorkflow(rng)
		target := w.Modules()[rng.Intn(3)]
		mv := privacy.NewModuleView(target)

		// Choose p = (x, m(x)) and q = (x', m(x')) for random inputs: the
		// flip then swaps two executions, and all attributes of OTHER
		// modules stay consistent after flipping them too.
		xs := relation.AllTuples(target.InputSchema())
		x := xs[rng.Intn(len(xs))]
		xp := xs[rng.Intn(len(xs))]
		y := target.MustEval(x)
		yp := target.MustEval(xp)
		pq := PQ{P: map[string]relation.Value{}, Q: map[string]relation.Value{}}
		for i, n := range target.InputNames() {
			pq.P[n] = x[i]
			pq.Q[n] = xp[i]
		}
		for i, n := range target.OutputNames() {
			pq.P[n] = y[i]
			pq.Q[n] = yp[i]
		}
		fns := make(map[string]module.Func)
		for _, m := range w.Modules() {
			fns[m.Name()] = pq.FlipFunc(m)
		}
		redefined, err := w.Redefine(fns)
		if err != nil {
			return false
		}
		// Attributes where p and q agree are untouched by flips, so the
		// projection on them must be preserved.
		agree := relation.NewNameSet(w.Schema().Names()...).
			Minus(relation.NewNameSet(mv.Attrs()...))
		for name, pv := range pq.P {
			if qv := pq.Q[name]; pv == qv {
				agree.Add(name)
			}
		}
		names := agree.FilterSorted(w.Schema().Names())
		a, err1 := w.MustRelation().Project(names)
		b, err2 := redefined.MustRelation().Project(names)
		return err1 == nil && err2 == nil && a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
