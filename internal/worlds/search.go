package worlds

import (
	"context"
	"fmt"

	"secureview/internal/module"
	"secureview/internal/relation"
	"secureview/internal/search"
	"secureview/internal/workflow"
)

// HidingProblem is a workflow-level Secure-View search grounded directly in
// possible-world semantics (Definition 5) instead of the standalone
// assembly: find the cheapest subset of Candidates to hide so that every
// target module is Γ-workflow-private. The oracle is the Enumerator, so each
// safety test is expensive — exactly the regime the pruned, memoized engine
// of internal/search is built for.
//
// Workflow privacy is monotone in the hidden set: shrinking the visible set
// only relaxes the agreement constraint in Definition 4, so Worlds(R, V', P)
// ⊇ Worlds(R, V, P) whenever V' ⊆ V, and every OUT set can only grow. The
// engine's Proposition 1 pruning is therefore sound here too.
type HidingProblem struct {
	// W is the workflow; R its provenance relation over W.Schema().
	W *workflow.Workflow
	R *relation.Relation
	// Candidates are the attributes eligible for hiding. They must not
	// include the workflow's initial inputs (the Enumerator requires those
	// visible). At most search.MaxAttrs many.
	Candidates []string
	// Costs assigns hiding penalties to candidates (missing names cost 0).
	Costs map[string]float64
	// Targets names the modules that must be Γ-workflow-private; empty means
	// every private module of W.
	Targets []string
	// Gamma is the privacy requirement.
	Gamma uint64
	// Privatized names public modules whose identity is hidden (section 5);
	// their functionality constraint is dropped during enumeration.
	Privatized relation.NameSet
	// Budget caps each enumeration (default 1<<24, as in Enumerator).
	Budget uint64
}

// MinCostHiding runs the engine over subsets of Candidates and returns the
// cheapest hidden set making every target Γ-workflow-private, with the
// deterministic lexicographic tie-break and the engine's search statistics.
// Found is false when even hiding every candidate leaves a target exposed.
// Stats.Checked counts full enumerator evaluations — each one exponential —
// so the Pruned column is where the engine earns its keep here.
func (hp HidingProblem) MinCostHiding(opts search.Options) (relation.NameSet, float64, bool, search.Stats, error) {
	return hp.MinCostHidingCtx(context.Background(), opts)
}

// MinCostHidingCtx is MinCostHiding with cancellation: the context reaches
// both the engine's candidate loop and every inner worlds enumeration, so a
// deadline interrupts even a single in-flight exponential safety test at its
// next candidate assignment. On expiry it returns ctx.Err().
func (hp HidingProblem) MinCostHidingCtx(ctx context.Context, opts search.Options) (relation.NameSet, float64, bool, search.Stats, error) {
	if hp.W == nil || hp.R == nil {
		return nil, 0, false, search.Stats{}, fmt.Errorf("worlds: hiding search needs a workflow and relation")
	}
	if hp.Gamma == 0 {
		return nil, 0, false, search.Stats{}, fmt.Errorf("worlds: hiding search needs Γ >= 1")
	}
	initial := relation.NewNameSet(hp.W.InitialInputNames()...)
	for _, a := range hp.Candidates {
		if initial.Has(a) {
			return nil, 0, false, search.Stats{}, fmt.Errorf("worlds: candidate %q is an initial input and must stay visible", a)
		}
	}
	targets := hp.Targets
	if len(targets) == 0 {
		for _, m := range hp.W.Modules() {
			if m.Visibility() == module.Private {
				targets = append(targets, m.Name())
			}
		}
	}
	if len(targets) == 0 {
		return nil, 0, false, search.Stats{}, fmt.Errorf("worlds: no target modules to protect")
	}
	sp, err := search.NewSpace(hp.Candidates, func(a string) float64 { return hp.Costs[a] })
	if err != nil {
		return nil, 0, false, search.Stats{}, fmt.Errorf("worlds: %w", err)
	}
	allNames := relation.NewNameSet(hp.W.Schema().Names()...)
	// Compile the per-target query plans ONCE — module column layouts,
	// output-code spaces and the distinct input codes each target receives in
	// R are mask-independent — and share the read-only result across the
	// engine's worker pool. Per tested mask only the visible set changes;
	// each safety test is then one sharded pass over the possible worlds per
	// target, answering every input's OUT set simultaneously. The engine asks
	// about each candidate mask at most once per run, so no per-call memo is
	// needed; Proposition 1 pruning is what keeps the number of enumerations
	// down.
	type targetPlan struct {
		layout  *targetLayout
		queries []uint64
	}
	probe := &Enumerator{W: hp.W, R: hp.R, Visible: allNames,
		Privatized: hp.Privatized, Budget: hp.Budget}
	plans := make([]targetPlan, len(targets))
	for i, target := range targets {
		m := hp.W.Module(target)
		if m == nil {
			return nil, 0, false, search.Stats{}, fmt.Errorf("worlds: no module %q", target)
		}
		tl, err := probe.layoutFor(m)
		if err != nil {
			return nil, 0, false, search.Stats{}, err
		}
		queries, err := probe.queriesFromRelation(tl)
		if err != nil {
			return nil, 0, false, search.Stats{}, err
		}
		plans[i] = targetPlan{layout: tl, queries: queries}
	}
	// The engine already fans masks out across its pool, so each inner
	// enumeration runs single-worker unless the engine itself is serialized.
	enumWorkers := 1
	if opts.Parallelism == 1 {
		enumWorkers = 0 // GOMAXPROCS
	}
	oracle := search.Oracle(func(visible search.Mask) (bool, error) {
		hidden := sp.NameSet(sp.All() &^ visible)
		e := &Enumerator{
			W:          hp.W,
			R:          hp.R,
			Visible:    allNames.Minus(hidden),
			Privatized: hp.Privatized,
			Budget:     hp.Budget,
			Workers:    enumWorkers,
		}
		for _, tp := range plans {
			bits, vacuous, err := e.outSets(ctx, tp.layout, tp.queries)
			if err != nil {
				return false, err
			}
			for i := range tp.queries {
				size := tp.layout.prodOut
				if !vacuous[i] {
					size = bits[i].Count()
				}
				if size < hp.Gamma {
					return false, nil
				}
			}
		}
		return true, nil
	})
	res, err := sp.MinCostCtx(ctx, oracle, opts)
	if err != nil {
		return nil, 0, false, res.Stats, err
	}
	if !res.Found {
		return nil, 0, false, res.Stats, nil
	}
	return sp.NameSet(res.Hidden), res.Cost, true, res.Stats, nil
}
