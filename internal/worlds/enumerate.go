package worlds

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"secureview/internal/module"
	"secureview/internal/oracle"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// ErrBudgetExhausted is the typed sentinel reported (wrapped, with the
// budget value) when an enumeration explores more candidate assignments than
// Enumerator.Budget allows. Callers distinguish it from configuration errors
// with errors.Is.
var ErrBudgetExhausted = errors.New("worlds: enumeration budget exhausted")

// Enumerator exhaustively generates the possible worlds Worlds(R, V, P) of
// a workflow relation (Definitions 4 and 6): all relations over the same
// attributes that satisfy every module FD, agree with R on the visible
// attributes, and preserve the functionality of every visible public
// module. Privatized (hidden) public modules behave like private ones.
//
// The enumerator requires the workflow's initial inputs to be visible; the
// initial inputs functionally determine every attribute, so each world then
// has exactly one row per row of R, with only that row's hidden cells free.
// This covers all the paper's constructions (they never hide initial
// inputs). Enumeration is exponential in (#hidden cells × #rows); the
// Budget guards against blow-ups.
//
// EachWorld walks worlds sequentially in a fixed deterministic order; Count,
// OutSet and IsWorkflowPrivate shard the same DFS across Workers goroutines
// by partitioning the first row's hidden-cell assignment space, so the set
// of assignments explored (and the budget accounting) is identical to the
// sequential walk.
type Enumerator struct {
	// W is the workflow; R its provenance relation over W.Schema().
	W *workflow.Workflow
	R *relation.Relation
	// Visible is the visible attribute set V.
	Visible relation.NameSet
	// Privatized names public modules whose identity is hidden (the set
	// P̄ of section 5); their functionality constraint is dropped.
	Privatized relation.NameSet
	// Budget caps the number of candidate assignments explored
	// (default 1<<24).
	Budget uint64
	// Workers shards Count, OutSet and IsWorkflowPrivate across this many
	// goroutines (0 = GOMAXPROCS). EachWorld is always sequential.
	Workers int
}

// check validates the enumerator configuration.
func (e *Enumerator) check() error {
	if e.W == nil || e.R == nil {
		return fmt.Errorf("worlds: enumerator needs a workflow and relation")
	}
	for _, a := range e.W.InitialInputNames() {
		if !e.Visible.Has(a) {
			return fmt.Errorf("worlds: initial input %q must be visible for enumeration", a)
		}
	}
	return nil
}

func (e *Enumerator) budget() uint64 {
	if e.Budget == 0 {
		return 1 << 24
	}
	return e.Budget
}

func (e *Enumerator) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// modCols is one module's column layout against the workflow schema.
type modCols struct {
	m        *module.Module
	in, out  []int
	enforced bool // public and not privatized: function must hold
}

// enumPlan is the compiled, read-only part of an enumeration: column
// layouts, hidden-cell positions and the base rows. It is shared by every
// worker; all mutable state lives in per-worker walkers.
type enumPlan struct {
	schema     *relation.Schema
	baseRows   []relation.Tuple
	hiddenCols []int
	hiddenDoms []int
	rowSpace   uint64 // ∏ hiddenDoms: hidden assignments of one row
	mods       []modCols
	budget     uint64
	maxIn      int
}

// plan compiles the enumerator configuration.
func (e *Enumerator) plan() (*enumPlan, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	schema := e.W.Schema()
	p := &enumPlan{
		schema:   schema,
		baseRows: e.R.SortedRows(),
		rowSpace: 1,
		budget:   e.budget(),
	}
	for i := 0; i < schema.Len(); i++ {
		if !e.Visible.Has(schema.Attr(i).Name) {
			p.hiddenCols = append(p.hiddenCols, i)
			d := schema.Attr(i).Domain
			p.hiddenDoms = append(p.hiddenDoms, d)
			p.rowSpace *= uint64(d)
		}
	}
	for _, m := range e.W.Modules() {
		in := make([]int, len(m.InputNames()))
		for i, n := range m.InputNames() {
			in[i] = schema.IndexOf(n)
		}
		out := make([]int, len(m.OutputNames()))
		for i, n := range m.OutputNames() {
			out[i] = schema.IndexOf(n)
		}
		if len(in) > p.maxIn {
			p.maxIn = len(in)
		}
		p.mods = append(p.mods, modCols{
			m: m, in: in, out: out,
			enforced: m.Visibility() == module.Public && !e.Privatized.Has(m.Name()),
		})
	}
	return p, nil
}

// walker is one goroutine's mutable enumeration state: a private copy of the
// rows plus scratch buffers. The budget and stop flags are shared.
type walker struct {
	p        *enumPlan
	rows     []relation.Tuple
	xbuf     relation.Tuple
	explored *atomic.Uint64
	over     *atomic.Bool // budget exhausted
	stop     *atomic.Bool // fn asked to stop
	fn       func(rows []relation.Tuple) bool
}

func newWalker(p *enumPlan, explored *atomic.Uint64, over, stop *atomic.Bool,
	fn func(rows []relation.Tuple) bool) *walker {
	w := &walker{
		p:        p,
		rows:     make([]relation.Tuple, len(p.baseRows)),
		xbuf:     make(relation.Tuple, p.maxIn),
		explored: explored,
		over:     over,
		stop:     stop,
		fn:       fn,
	}
	for i, r := range p.baseRows {
		w.rows[i] = r.Clone()
	}
	return w
}

// rowOK checks row r against the enforced module functions and the FDs
// induced by earlier rows.
func (w *walker) rowOK(r int) bool {
	row := w.rows[r]
	for _, mc := range w.p.mods {
		if !mc.enforced {
			continue
		}
		x := w.xbuf[:len(mc.in)]
		for i, c := range mc.in {
			x[i] = row[c]
		}
		y := mc.m.MustEval(x)
		for i, c := range mc.out {
			if row[c] != y[i] {
				return false
			}
		}
	}
	// FDs against earlier rows: equal module inputs force equal outputs.
	for _, mc := range w.p.mods {
		for s := 0; s < r; s++ {
			same := true
			for _, c := range mc.in {
				if w.rows[s][c] != row[c] {
					same = false
					break
				}
			}
			if !same {
				continue
			}
			for _, c := range mc.out {
				if w.rows[s][c] != row[c] {
					return false
				}
			}
		}
	}
	return true
}

// assignRow enumerates the hidden cells of row r onward; returns false to
// stop the whole walk (budget or fn-requested).
func (w *walker) assignRow(r int) bool {
	if r == len(w.rows) {
		if !w.fn(w.rows) {
			w.stop.Store(true)
			return false
		}
		return true
	}
	return w.assignCell(r, 0)
}

func (w *walker) assignCell(r, h int) bool {
	if h == len(w.p.hiddenCols) {
		// Check the stop flag BEFORE charging the budget: when fn has already
		// determined the result (early exit), racing workers must not push
		// the counter over the budget and turn success into a spurious
		// ErrBudgetExhausted.
		if w.stop.Load() {
			return false
		}
		if w.explored.Add(1) > w.p.budget {
			w.over.Store(true)
			w.stop.Store(true)
			return false
		}
		if !w.rowOK(r) {
			return true // prune this assignment, keep going
		}
		return w.assignRow(r + 1)
	}
	col := w.p.hiddenCols[h]
	orig := w.rows[r][col]
	for v := 0; v < w.p.hiddenDoms[h]; v++ {
		w.rows[r][col] = v
		if !w.assignCell(r, h+1) {
			w.rows[r][col] = orig
			return false
		}
	}
	w.rows[r][col] = orig
	return true
}

// setRowAssignment writes mixed-radix assignment code a into row r's hidden
// cells, hiddenCols[0] most significant — the same order assignCell explores.
func (w *walker) setRowAssignment(r int, a uint64) {
	for h := len(w.p.hiddenCols) - 1; h >= 0; h-- {
		d := uint64(w.p.hiddenDoms[h])
		w.rows[r][w.p.hiddenCols[h]] = relation.Value(a % d)
		a /= d
	}
}

// watchCancel raises the walkers' shared stop flag (and its own cancelled
// flag) when ctx is cancelled, so every walker aborts at its next candidate
// assignment — the same granularity as the budget check, hence prompt even
// on huge enumerations. The returned release func must be called (deferred)
// to reclaim the watcher goroutine.
func watchCancel(ctx context.Context, stop *atomic.Bool) (cancelled *atomic.Bool, release func()) {
	cancelled = new(atomic.Bool)
	done := ctx.Done()
	if done == nil {
		return cancelled, func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-done:
			cancelled.Store(true)
			stop.Store(true)
		case <-quit:
		}
	}()
	return cancelled, func() { close(quit) }
}

// EachWorld calls fn with the rows of every possible world, in a fixed
// deterministic order. The slice (and its tuples) are reused; fn must copy
// what it keeps. Returning false stops enumeration. The error reports
// configuration problems or budget exhaustion (ErrBudgetExhausted).
func (e *Enumerator) EachWorld(fn func(rows []relation.Tuple) bool) error {
	return e.EachWorldCtx(context.Background(), fn)
}

// EachWorldCtx is EachWorld with cancellation, observed before every
// candidate assignment; on expiry it returns ctx.Err().
func (e *Enumerator) EachWorldCtx(ctx context.Context, fn func(rows []relation.Tuple) bool) error {
	p, err := e.plan()
	if err != nil {
		return err
	}
	var explored atomic.Uint64
	var over, stop atomic.Bool
	cancelled, release := watchCancel(ctx, &stop)
	defer release()
	w := newWalker(p, &explored, &over, &stop, fn)
	w.assignRow(0)
	if cancelled.Load() {
		return ctx.Err()
	}
	if over.Load() {
		return fmt.Errorf("%w (budget %d)", ErrBudgetExhausted, p.budget)
	}
	return nil
}

// eachWorldParallel shards the world walk over the enumerator's workers by
// partitioning the first row's hidden-cell assignment space; each worker
// runs the same DFS below its slice of row-0 assignments, so the explored
// set and budget accounting match EachWorld exactly (only the visit order
// differs). fn is invoked concurrently — it receives the worker index and
// must confine mutation to per-worker state; returning false stops every
// worker.
func (e *Enumerator) eachWorldParallel(ctx context.Context, workers int,
	fn func(worker int, rows []relation.Tuple) bool) error {
	p, err := e.plan()
	if err != nil {
		return err
	}
	var explored atomic.Uint64
	var over, stop atomic.Bool
	cancelled, release := watchCancel(ctx, &stop)
	defer release()

	if len(p.baseRows) == 0 || len(p.hiddenCols) == 0 || workers <= 1 {
		// Degenerate task space (or explicitly sequential): one walker.
		w := newWalker(p, &explored, &over, &stop,
			func(rows []relation.Tuple) bool { return fn(0, rows) })
		w.assignRow(0)
		if cancelled.Load() {
			return ctx.Err()
		}
		if over.Load() {
			return fmt.Errorf("%w (budget %d)", ErrBudgetExhausted, p.budget)
		}
		return nil
	}

	if workers > int(p.rowSpace) {
		workers = int(p.rowSpace)
	}
	var next atomic.Uint64 // task = one row-0 hidden assignment
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWalker(p, &explored, &over, &stop,
				func(rows []relation.Tuple) bool { return fn(id, rows) })
			for {
				t := next.Add(1) - 1
				if t >= p.rowSpace || stop.Load() {
					return
				}
				w.setRowAssignment(0, t)
				if stop.Load() { // result already determined: don't charge the budget
					return
				}
				if explored.Add(1) > p.budget {
					over.Store(true)
					stop.Store(true)
					return
				}
				if !w.rowOK(0) {
					continue
				}
				if !w.assignRow(1) {
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if cancelled.Load() {
		return ctx.Err()
	}
	if over.Load() {
		return fmt.Errorf("%w (budget %d)", ErrBudgetExhausted, p.budget)
	}
	return nil
}

// Count returns the number of possible worlds, sharding the enumeration
// across the configured workers.
func (e *Enumerator) Count() (uint64, error) {
	return e.CountCtx(context.Background())
}

// CountCtx is Count with cancellation, observed by every worker before each
// candidate assignment; on expiry it returns ctx.Err() and the partial
// count.
func (e *Enumerator) CountCtx(ctx context.Context) (uint64, error) {
	var n atomic.Uint64
	err := e.eachWorldParallel(ctx, e.workers(), func(int, []relation.Tuple) bool {
		n.Add(1)
		return true
	})
	return n.Load(), err
}

// targetLayout is the compiled query plan for OUT-set computation against
// one module: column positions within the workflow schema plus the
// output-code space. World rows are packed with relation.EncodeCols against
// these column lists.
type targetLayout struct {
	m               *module.Module
	schema          *relation.Schema
	inCols, outCols []int
	prodOut         uint64
	outSchema       *relation.Schema
}

func (e *Enumerator) layoutFor(m *module.Module) (*targetLayout, error) {
	schema := e.W.Schema()
	tl := &targetLayout{
		m:         m,
		schema:    schema,
		inCols:    make([]int, len(m.InputNames())),
		outCols:   make([]int, len(m.OutputNames())),
		outSchema: m.OutputSchema(),
	}
	for i, n := range m.InputNames() {
		tl.inCols[i] = schema.IndexOf(n)
	}
	for i, n := range m.OutputNames() {
		tl.outCols[i] = schema.IndexOf(n)
	}
	prodOut, ok := tl.outSchema.DomainProduct(m.OutputNames())
	if !ok || prodOut > oracle.MaxOutSetDomain {
		return nil, fmt.Errorf("worlds: output domain of %s too large for OUT-set bitsets", m.Name())
	}
	tl.prodOut = prodOut
	return tl, nil
}

// queryCode packs an input tuple, reporting whether every value is within
// its domain (out-of-domain inputs occur in no world).
func (tl *targetLayout) queryCode(x relation.Tuple) (uint64, bool, error) {
	if len(x) != len(tl.inCols) {
		return 0, false, fmt.Errorf("worlds: input arity %d, want %d for %s",
			len(x), len(tl.inCols), tl.m.Name())
	}
	var code uint64
	for i, v := range x {
		d := uint64(tl.schema.Attr(tl.inCols[i]).Domain)
		if v < 0 || uint64(v) >= d {
			return 0, false, nil
		}
		code = code*d + uint64(v)
	}
	return code, true, nil
}

// outSets computes OUT_{x,W} for every queried input code of the target
// module in ONE (parallel) pass over the possible worlds — where the old
// per-x implementation re-enumerated the worlds for each input. For each
// world, the single consistent output of each queried input is recorded in a
// per-worker bitset over output codes; worlds in which a query never occurs
// make its OUT set the full output space (the vacuous-implication reading of
// Definition 5). Per-worker bitsets are merged at the end. vacuous[i]
// reports the full-space case.
func (e *Enumerator) outSets(ctx context.Context, tl *targetLayout, queries []uint64) (bits []oracle.Bitset, vacuous []bool, err error) {
	workers := e.workers()
	qidx := make(map[uint64]int, len(queries))
	for i, q := range queries {
		qidx[q] = i
	}
	// Per-worker bitsets are allocated lazily on first contribution: a
	// worker whose shard never records an output for a query pays nothing,
	// which keeps the upfront cost bounded by what is actually touched
	// instead of workers × queries × prodOut/8.
	wBits := make([][]oracle.Bitset, workers)
	wVac := make([][]bool, workers)
	states := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		wBits[w] = make([]oracle.Bitset, len(queries))
		wVac[w] = make([]bool, len(queries))
		states[w] = make([]int64, len(queries))
	}

	err = e.eachWorldParallel(ctx, workers, func(worker int, rows []relation.Tuple) bool {
		st := states[worker]
		for i := range st {
			st[i] = -1 // unseen
		}
		for _, row := range rows {
			qi, ok := qidx[relation.EncodeCols(tl.schema, row, tl.inCols)]
			if !ok {
				continue
			}
			oc := int64(relation.EncodeCols(tl.schema, row, tl.outCols))
			if st[qi] == -1 {
				st[qi] = oc
			} else if st[qi] != oc {
				st[qi] = -2 // inconsistent: world contributes nothing for qi
			}
		}
		allVacuous := true
		for qi, s := range st {
			switch {
			case s == -1:
				wVac[worker][qi] = true
			case s >= 0:
				if wBits[worker][qi] == nil {
					wBits[worker][qi] = oracle.NewBitset(tl.prodOut)
				}
				wBits[worker][qi].Set(uint64(s))
			}
			if !wVac[worker][qi] {
				allVacuous = false
			}
		}
		// Once every query has hit a vacuous world, every OUT set is the
		// full output space and the result cannot change: stop all workers.
		return !allVacuous
	})
	if err != nil {
		return nil, nil, err
	}
	bits = wBits[0]
	vacuous = wVac[0]
	for i := range bits {
		if bits[i] == nil {
			bits[i] = oracle.NewBitset(tl.prodOut)
		}
	}
	for w := 1; w < workers; w++ {
		for i := range bits {
			if wBits[w][i] != nil {
				bits[i].Or(wBits[w][i])
			}
			vacuous[i] = vacuous[i] || wVac[w][i]
		}
	}
	return bits, vacuous, nil
}

// OutSet computes OUT_{x,W} for the named module per Definition 5: the set
// of outputs y such that some possible world maps every occurrence of input
// x at that module to y. Worlds in which x never occurs as the module's
// input admit every output (the implication is vacuous) — the detail that
// makes privatization effective (section 5.1). The result is in ascending
// output-code order (the EachTuple order).
func (e *Enumerator) OutSet(target string, x relation.Tuple) ([]relation.Tuple, error) {
	return e.OutSetCtx(context.Background(), target, x)
}

// OutSetCtx is OutSet with cancellation, observed by every enumeration
// worker before each candidate assignment; on expiry it returns ctx.Err().
func (e *Enumerator) OutSetCtx(ctx context.Context, target string, x relation.Tuple) ([]relation.Tuple, error) {
	m := e.W.Module(target)
	if m == nil {
		return nil, fmt.Errorf("worlds: no module %q", target)
	}
	tl, err := e.layoutFor(m)
	if err != nil {
		return nil, err
	}
	code, inDomain, err := tl.queryCode(x)
	if err != nil {
		return nil, err
	}
	if !inDomain {
		// x occurs in no world: every output is possible.
		return relation.AllTuples(tl.outSchema), nil
	}
	bits, vacuous, err := e.outSets(ctx, tl, []uint64{code})
	if err != nil {
		return nil, err
	}
	if vacuous[0] {
		return relation.AllTuples(tl.outSchema), nil
	}
	out := make([]relation.Tuple, 0, bits[0].Count())
	bits[0].Each(func(c uint64) {
		out = append(out, relation.Decode(tl.outSchema, c))
	})
	return out, nil
}

// queriesFromRelation returns the distinct input codes the target module
// receives in R, in first-seen projection order.
func (e *Enumerator) queriesFromRelation(tl *targetLayout) ([]uint64, error) {
	inputs, err := e.R.Project(tl.m.InputNames())
	if err != nil {
		return nil, err
	}
	queries := make([]uint64, 0, inputs.Len())
	for _, x := range inputs.Rows() {
		code, ok, err := tl.queryCode(x)
		if err != nil {
			return nil, err
		}
		if ok {
			queries = append(queries, code)
		}
	}
	return queries, nil
}

// IsWorkflowPrivate reports whether the named module is Γ-workflow-private
// w.r.t. the enumerator's visible set (Definition 5): |OUT_{x,W}| >= Γ for
// every input x the module receives in R. All OUT sets are computed in one
// sharded pass over the possible worlds.
func (e *Enumerator) IsWorkflowPrivate(target string, gamma uint64) (bool, error) {
	return e.IsWorkflowPrivateCtx(context.Background(), target, gamma)
}

// IsWorkflowPrivateCtx is IsWorkflowPrivate with cancellation, observed by
// every enumeration worker before each candidate assignment; on expiry it
// returns ctx.Err().
func (e *Enumerator) IsWorkflowPrivateCtx(ctx context.Context, target string, gamma uint64) (bool, error) {
	m := e.W.Module(target)
	if m == nil {
		return false, fmt.Errorf("worlds: no module %q", target)
	}
	tl, err := e.layoutFor(m)
	if err != nil {
		return false, err
	}
	queries, err := e.queriesFromRelation(tl)
	if err != nil {
		return false, err
	}
	bits, vacuous, err := e.outSets(ctx, tl, queries)
	if err != nil {
		return false, err
	}
	for i := range queries {
		size := tl.prodOut
		if !vacuous[i] {
			size = bits[i].Count()
		}
		if size < gamma {
			return false, nil
		}
	}
	return true, nil
}
