package worlds

import (
	"fmt"

	"secureview/internal/module"
	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// Enumerator exhaustively generates the possible worlds Worlds(R, V, P) of
// a workflow relation (Definitions 4 and 6): all relations over the same
// attributes that satisfy every module FD, agree with R on the visible
// attributes, and preserve the functionality of every visible public
// module. Privatized (hidden) public modules behave like private ones.
//
// The enumerator requires the workflow's initial inputs to be visible; the
// initial inputs functionally determine every attribute, so each world then
// has exactly one row per row of R, with only that row's hidden cells free.
// This covers all the paper's constructions (they never hide initial
// inputs). Enumeration is exponential in (#hidden cells × #rows); the
// Budget guards against blow-ups.
type Enumerator struct {
	// W is the workflow; R its provenance relation over W.Schema().
	W *workflow.Workflow
	R *relation.Relation
	// Visible is the visible attribute set V.
	Visible relation.NameSet
	// Privatized names public modules whose identity is hidden (the set
	// P̄ of section 5); their functionality constraint is dropped.
	Privatized relation.NameSet
	// Budget caps the number of candidate assignments explored
	// (default 1<<24).
	Budget uint64
}

// check validates the enumerator configuration.
func (e *Enumerator) check() error {
	if e.W == nil || e.R == nil {
		return fmt.Errorf("worlds: enumerator needs a workflow and relation")
	}
	for _, a := range e.W.InitialInputNames() {
		if !e.Visible.Has(a) {
			return fmt.Errorf("worlds: initial input %q must be visible for enumeration", a)
		}
	}
	return nil
}

// EachWorld calls fn with the rows of every possible world, in a fixed
// deterministic order. The slice (and its tuples) are reused; fn must copy
// what it keeps. Returning false stops enumeration. The error reports
// configuration problems or budget exhaustion.
func (e *Enumerator) EachWorld(fn func(rows []relation.Tuple) bool) error {
	if err := e.check(); err != nil {
		return err
	}
	budget := e.Budget
	if budget == 0 {
		budget = 1 << 24
	}
	schema := e.W.Schema()
	nCols := schema.Len()
	baseRows := e.R.SortedRows()
	nRows := len(baseRows)

	// Hidden column indices and their domains.
	var hiddenCols []int
	for i := 0; i < nCols; i++ {
		if !e.Visible.Has(schema.Attr(i).Name) {
			hiddenCols = append(hiddenCols, i)
		}
	}
	// Per-module column layout for FD and public checks.
	type modCols struct {
		m        *module.Module
		in, out  []int
		enforced bool // public and not privatized: function must hold
	}
	var mods []modCols
	for _, m := range e.W.Modules() {
		in := make([]int, len(m.InputNames()))
		for i, n := range m.InputNames() {
			in[i] = schema.IndexOf(n)
		}
		out := make([]int, len(m.OutputNames()))
		for i, n := range m.OutputNames() {
			out[i] = schema.IndexOf(n)
		}
		mods = append(mods, modCols{
			m: m, in: in, out: out,
			enforced: m.Visibility() == module.Public && !e.Privatized.Has(m.Name()),
		})
	}

	rows := make([]relation.Tuple, nRows)
	for i, r := range baseRows {
		rows[i] = r.Clone()
	}

	rowOK := func(r int) bool {
		row := rows[r]
		// Visible public modules must compute their real function.
		for _, mc := range mods {
			if !mc.enforced {
				continue
			}
			x := make(relation.Tuple, len(mc.in))
			for i, c := range mc.in {
				x[i] = row[c]
			}
			y := mc.m.MustEval(x)
			for i, c := range mc.out {
				if row[c] != y[i] {
					return false
				}
			}
		}
		// FDs against earlier rows: equal module inputs force equal outputs.
		for _, mc := range mods {
			for s := 0; s < r; s++ {
				same := true
				for _, c := range mc.in {
					if rows[s][c] != row[c] {
						same = false
						break
					}
				}
				if !same {
					continue
				}
				for _, c := range mc.out {
					if rows[s][c] != row[c] {
						return false
					}
				}
			}
		}
		return true
	}

	explored := uint64(0)
	stopped := false
	overBudget := false
	// assignRow enumerates the hidden cells of row r, then recurses.
	var assignRow func(r int) bool // returns false to stop everything
	var assignCell func(r, h int) bool
	assignRow = func(r int) bool {
		if r == len(rows) {
			cont := fn(rows)
			if !cont {
				stopped = true
			}
			return cont
		}
		return assignCell(r, 0)
	}
	assignCell = func(r, h int) bool {
		if h == len(hiddenCols) {
			explored++
			if explored > budget {
				overBudget = true
				return false
			}
			if !rowOK(r) {
				return true // prune this assignment, keep going
			}
			return assignRow(r + 1)
		}
		col := hiddenCols[h]
		orig := rows[r][col]
		for v := 0; v < e.W.Schema().Attr(col).Domain; v++ {
			rows[r][col] = v
			if !assignCell(r, h+1) {
				rows[r][col] = orig
				return false
			}
		}
		rows[r][col] = orig
		return true
	}
	assignRow(0)
	if overBudget {
		return fmt.Errorf("worlds: enumeration budget %d exhausted", budget)
	}
	_ = stopped
	return nil
}

// Count returns the number of possible worlds.
func (e *Enumerator) Count() (uint64, error) {
	var n uint64
	err := e.EachWorld(func([]relation.Tuple) bool {
		n++
		return true
	})
	return n, err
}

// OutSet computes OUT_{x,W} for the named module per Definition 5: the set
// of outputs y such that some possible world maps every occurrence of input
// x at that module to y. Worlds in which x never occurs as the module's
// input admit every output (the implication is vacuous) — the detail that
// makes privatization effective (section 5.1).
func (e *Enumerator) OutSet(target string, x relation.Tuple) ([]relation.Tuple, error) {
	m := e.W.Module(target)
	if m == nil {
		return nil, fmt.Errorf("worlds: no module %q", target)
	}
	schema := e.W.Schema()
	inCols := make([]int, len(m.InputNames()))
	for i, n := range m.InputNames() {
		inCols[i] = schema.IndexOf(n)
	}
	outCols := make([]int, len(m.OutputNames()))
	for i, n := range m.OutputNames() {
		outCols[i] = schema.IndexOf(n)
	}
	outSchema := m.OutputSchema()
	found := make(map[uint64]bool)
	vacuousAll := false
	err := e.EachWorld(func(rows []relation.Tuple) bool {
		var y relation.Tuple
		consistent := true
		seen := false
		for _, row := range rows {
			match := true
			for i, c := range inCols {
				if row[c] != x[i] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			cur := make(relation.Tuple, len(outCols))
			for i, c := range outCols {
				cur[i] = row[c]
			}
			if !seen {
				seen = true
				y = cur
			} else if !y.Equal(cur) {
				consistent = false
				break
			}
		}
		if !consistent {
			return true
		}
		if !seen {
			vacuousAll = true
			return false // every output possible; no need to continue
		}
		found[relation.Encode(outSchema, y)] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	if vacuousAll {
		return relation.AllTuples(outSchema), nil
	}
	out := make([]relation.Tuple, 0, len(found))
	relation.EachTuple(outSchema, func(t relation.Tuple) bool {
		if found[relation.Encode(outSchema, t)] {
			out = append(out, t.Clone())
		}
		return true
	})
	return out, nil
}

// IsWorkflowPrivate reports whether the named module is Γ-workflow-private
// w.r.t. the enumerator's visible set (Definition 5): |OUT_{x,W}| >= Γ for
// every input x the module receives in R.
func (e *Enumerator) IsWorkflowPrivate(target string, gamma uint64) (bool, error) {
	m := e.W.Module(target)
	if m == nil {
		return false, fmt.Errorf("worlds: no module %q", target)
	}
	inputs, err := e.R.Project(m.InputNames())
	if err != nil {
		return false, err
	}
	for _, x := range inputs.Rows() {
		out, err := e.OutSet(target, x)
		if err != nil {
			return false, err
		}
		if uint64(len(out)) < gamma {
			return false, nil
		}
	}
	return true, nil
}
