package worlds

// Tests for the sharded world enumeration: worker counts must not change
// counts, OUT sets or privacy verdicts, and budget exhaustion must surface
// as the typed ErrBudgetExhausted sentinel.

import (
	"errors"
	"testing"

	"secureview/internal/relation"
	"secureview/internal/workflow"
)

func TestBudgetExhaustedSentinel(t *testing.T) {
	w := workflow.Chain("big", 1, 4, "identity")
	hidden := relation.NewNameSet("x1_0", "x1_1", "x1_2", "x1_3")
	e := &Enumerator{
		W: w, R: w.MustRelation(),
		Visible: relation.NewNameSet(w.Schema().Names()...).Minus(hidden),
		Budget:  10,
	}
	if _, err := e.Count(); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("Count error = %v, want errors.Is ErrBudgetExhausted", err)
	}
	if err := e.EachWorld(func([]relation.Tuple) bool { return true }); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("EachWorld error = %v, want errors.Is ErrBudgetExhausted", err)
	}
	if _, err := e.IsWorkflowPrivate("m1", 2); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("IsWorkflowPrivate error = %v, want errors.Is ErrBudgetExhausted", err)
	}

	// Configuration errors are NOT budget exhaustion.
	bad := &Enumerator{W: w, R: w.MustRelation(), Visible: relation.NewNameSet()}
	if _, err := bad.Count(); err == nil || errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("config error = %v, must not match ErrBudgetExhausted", err)
	}
}

func TestParallelCountMatchesSequential(t *testing.T) {
	w := workflow.Fig1()
	r := w.MustRelation()
	all := relation.NewNameSet(w.Schema().Names()...)
	for _, hidden := range []relation.NameSet{
		relation.NewNameSet("a4", "a7"),
		relation.NewNameSet("a3", "a4", "a6", "a7"),
		relation.NewNameSet("a3", "a4", "a5", "a6", "a7"),
	} {
		visible := all.Minus(hidden)
		seq := &Enumerator{W: w, R: r, Visible: visible, Workers: 1}
		want, err := seq.Count()
		if err != nil {
			t.Fatal(err)
		}
		// Sequential EachWorld agrees with the single-worker count.
		var byWalk uint64
		if err := seq.EachWorld(func([]relation.Tuple) bool { byWalk++; return true }); err != nil {
			t.Fatal(err)
		}
		if byWalk != want {
			t.Fatalf("hidden %v: EachWorld count %d != Count %d", hidden, byWalk, want)
		}
		for _, workers := range []int{2, 4, 8} {
			par := &Enumerator{W: w, R: r, Visible: visible, Workers: workers}
			got, err := par.Count()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("hidden %v workers=%d: Count %d != sequential %d", hidden, workers, got, want)
			}
		}
	}
}

func TestParallelOutSetMatchesSequential(t *testing.T) {
	w := workflow.Fig1()
	r := w.MustRelation()
	visible := relation.NewNameSet("a1", "a2", "a3", "a5", "a6")
	m := w.Module("m1")
	inputs := r.MustProject(m.InputNames()...)
	for _, x := range inputs.Rows() {
		seq := &Enumerator{W: w, R: r, Visible: visible, Workers: 1}
		want, err := seq.OutSet("m1", x)
		if err != nil {
			t.Fatal(err)
		}
		par := &Enumerator{W: w, R: r, Visible: visible, Workers: 4}
		got, err := par.OutSet("m1", x)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("x=%v: parallel |OUT| = %d, sequential %d", x, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("x=%v: OUT[%d] = %v, sequential %v", x, i, got[i], want[i])
			}
		}
	}
	for _, workers := range []int{1, 4} {
		e := &Enumerator{W: w, R: r, Visible: visible, Workers: workers}
		private, err := e.IsWorkflowPrivate("m1", 2)
		if err != nil {
			t.Fatal(err)
		}
		if !private {
			t.Fatalf("workers=%d: m1 not 2-workflow-private", workers)
		}
	}
}

func TestOutSetArityError(t *testing.T) {
	w := workflow.Fig1()
	e := &Enumerator{W: w, R: w.MustRelation(),
		Visible: relation.NewNameSet(w.Schema().Names()...)}
	if _, err := e.OutSet("m1", relation.Tuple{0}); err == nil {
		t.Error("wrong input arity accepted")
	}
	// Out-of-domain inputs occur in no world: every output is possible.
	out, err := e.OutSet("m1", relation.Tuple{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Module("m1")
	if want := relation.AllTuples(m.OutputSchema()); len(out) != len(want) {
		t.Errorf("out-of-domain OUT size = %d, want full space %d", len(out), len(want))
	}
}
