package worlds

import (
	"testing"

	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// TestVerifyPrivateMatchesEnumerator cross-checks the convenience wrapper
// against direct per-module IsWorkflowPrivate calls on Figure 1.
func TestVerifyPrivateMatchesEnumerator(t *testing.T) {
	w := workflow.Fig1()
	r := w.MustRelation()
	all := relation.NewNameSet(w.Schema().Names()...)
	for _, tc := range []struct {
		name   string
		hidden []string
	}{
		{"hide-a4-a6", []string{"a4", "a6"}},
		{"hide-a3", []string{"a3"}},
		{"hide-nothing", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			visible := all.Minus(relation.NewNameSet(tc.hidden...))
			failed, err := VerifyPrivate(w, r, visible, nil, nil, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			e := &Enumerator{W: w, R: r, Visible: visible}
			wantFailed := ""
			for _, m := range w.PrivateModules() {
				ok, err := e.IsWorkflowPrivate(m.Name(), 2)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					wantFailed = m.Name()
					break
				}
			}
			if failed != wantFailed {
				t.Fatalf("VerifyPrivate failed=%q, direct enumeration failed=%q", failed, wantFailed)
			}
		})
	}
}

// TestVerifyPrivateExplicitTargets restricts verification to a subset of
// modules.
func TestVerifyPrivateExplicitTargets(t *testing.T) {
	w := workflow.Fig1()
	r := w.MustRelation()
	all := relation.NewNameSet(w.Schema().Names()...)
	visible := all.Minus(relation.NewNameSet("a4", "a6"))
	failed, err := VerifyPrivate(w, r, visible, nil, []string{"m1"}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &Enumerator{W: w, R: r, Visible: visible}
	ok, err := e.IsWorkflowPrivate("m1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok != (failed == "") {
		t.Fatalf("targeted VerifyPrivate failed=%q, IsWorkflowPrivate=%v", failed, ok)
	}
}
