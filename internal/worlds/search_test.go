package worlds

import (
	"testing"

	"secureview/internal/relation"
	"secureview/internal/search"
	"secureview/internal/workflow"
)

// bruteMinCostHiding solves the same problem by testing every candidate
// subset directly against the enumerator.
func bruteMinCostHiding(t *testing.T, hp HidingProblem) (relation.NameSet, float64, bool) {
	t.Helper()
	allNames := relation.NewNameSet(hp.W.Schema().Names()...)
	var bestHidden relation.NameSet
	bestCost := 0.0
	found := false
	for mask := 0; mask < 1<<len(hp.Candidates); mask++ {
		hidden := make(relation.NameSet)
		cost := 0.0
		for i, a := range hp.Candidates {
			if mask&(1<<i) != 0 {
				hidden.Add(a)
				cost += hp.Costs[a]
			}
		}
		e := &Enumerator{W: hp.W, R: hp.R, Visible: allNames.Minus(hidden), Privatized: hp.Privatized}
		ok := true
		for _, target := range hp.Targets {
			private, err := e.IsWorkflowPrivate(target, hp.Gamma)
			if err != nil {
				t.Fatal(err)
			}
			if !private {
				ok = false
				break
			}
		}
		if ok && (!found || cost < bestCost) {
			bestHidden = hidden
			bestCost = cost
			found = true
		}
	}
	return bestHidden, bestCost, found
}

func TestMinCostHidingMatchesBruteForce(t *testing.T) {
	w := workflow.Fig1()
	hp := HidingProblem{
		W:          w,
		R:          w.MustRelation(),
		Candidates: []string{"a3", "a4", "a5"},
		Costs:      map[string]float64{"a3": 1, "a4": 2, "a5": 1},
		Targets:    []string{"m1"},
		Gamma:      2,
	}
	wantHidden, wantCost, wantFound := bruteMinCostHiding(t, hp)
	for _, par := range []int{1, 3} {
		hidden, cost, found, stats, err := hp.MinCostHiding(search.Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if found != wantFound {
			t.Fatalf("par %d: found=%v, brute force %v", par, found, wantFound)
		}
		if !found {
			return
		}
		if cost != wantCost {
			t.Fatalf("par %d: cost=%v, brute force %v", par, cost, wantCost)
		}
		if stats.Checked+stats.Pruned != 1<<len(hp.Candidates) {
			t.Errorf("par %d: stats %+v don't cover the space", par, stats)
		}
		// The returned set must itself pass the enumerator check.
		allNames := relation.NewNameSet(w.Schema().Names()...)
		e := &Enumerator{W: w, R: hp.R, Visible: allNames.Minus(hidden)}
		private, err := e.IsWorkflowPrivate("m1", hp.Gamma)
		if err != nil || !private {
			t.Fatalf("par %d: returned hidden set %v not workflow-private (err=%v)", par, hidden, err)
		}
		_ = wantHidden
	}
}

// The engine must agree with itself across parallelism levels (deterministic
// tie-break), and all-private targets default must cover every private
// module.
func TestMinCostHidingDeterminismAndDefaults(t *testing.T) {
	w := workflow.Fig1()
	hp := HidingProblem{
		W:          w,
		R:          w.MustRelation(),
		Candidates: []string{"a3", "a4", "a5", "a6", "a7"},
		Costs:      map[string]float64{"a3": 1, "a4": 1, "a5": 1, "a6": 1, "a7": 1},
		Gamma:      2, // Targets empty: all of m1, m2, m3
	}
	h1, c1, f1, _, err := hp.MinCostHiding(search.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	h2, c2, f2, _, err := hp.MinCostHiding(search.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 || c1 != c2 || !h1.Equal(h2) {
		t.Fatalf("nondeterministic: (%v, %v, %v) vs (%v, %v, %v)", h1, c1, f1, h2, c2, f2)
	}
	if !f1 {
		t.Fatal("Fig1 should have a feasible hiding")
	}
}

func TestMinCostHidingValidation(t *testing.T) {
	w := workflow.Fig1()
	r := w.MustRelation()
	if _, _, _, _, err := (HidingProblem{W: w, R: r, Candidates: []string{"a1"}, Gamma: 2}).MinCostHiding(search.Options{}); err == nil {
		t.Error("initial-input candidate accepted")
	}
	if _, _, _, _, err := (HidingProblem{W: w, R: r, Candidates: []string{"a3"}}).MinCostHiding(search.Options{}); err == nil {
		t.Error("Γ=0 accepted")
	}
	if _, _, _, _, err := (HidingProblem{Candidates: []string{"a3"}, Gamma: 2}).MinCostHiding(search.Options{}); err == nil {
		t.Error("missing workflow accepted")
	}
}
