package worlds

import (
	"fmt"
	"math"

	"secureview/internal/module"
	"secureview/internal/relation"
)

// CountFunctionWorlds counts the standalone possible worlds Worlds(R, V) of
// a total module (Definition 1) by enumerating every function f: Dom →
// Range and keeping those whose graph projects onto the visible attributes
// exactly like the module's relation. Example 2 of the paper reports 64
// such worlds for m1 with V = {a1, a3, a5}; the E1 experiment reproduces
// that number with this function.
//
// The enumeration size is |Range|^|Dom|; callers must keep the module tiny.
func CountFunctionWorlds(m *module.Module, visible relation.NameSet) (uint64, error) {
	domSize, ok := m.InputDomainSize()
	if !ok {
		return 0, fmt.Errorf("worlds: input domain too large")
	}
	rangeSize, ok := m.OutputSchema().DomainProduct(m.OutputNames())
	if !ok {
		return 0, fmt.Errorf("worlds: output range too large")
	}
	if total := math.Pow(float64(rangeSize), float64(domSize)); total > 1<<26 {
		return 0, fmt.Errorf("worlds: %g candidate functions too many", total)
	}
	target, err := m.Relation().Project(visible.FilterSorted(m.AttrNames()))
	if err != nil {
		return 0, err
	}
	inputs := relation.AllTuples(m.InputSchema())
	outputs := relation.AllTuples(m.OutputSchema())
	visNames := visible.FilterSorted(m.AttrNames())

	schema := m.Schema()
	count := uint64(0)
	err = eachFunctionWorld(m, func(choice []int) bool {
		// Build the candidate function's visible projection.
		cand := relation.New(target.Schema())
		row := make(relation.Tuple, schema.Len())
		for i, x := range inputs {
			copy(row, x)
			copy(row[len(x):], outputs[choice[i]])
			proj := make(relation.Tuple, len(visNames))
			for j, n := range visNames {
				proj[j] = row[schema.IndexOf(n)]
			}
			_ = cand.Insert(proj)
		}
		if cand.Equal(target) {
			count++
		}
		return true
	})
	return count, err
}

// eachFunctionWorld enumerates every total function Dom → Range of the
// module as an output-index choice per input (mixed-radix counter), calling
// fn for each; fn returning false stops early.
func eachFunctionWorld(m *module.Module, fn func(choice []int) bool) error {
	domSize, _ := m.InputDomainSize()
	rangeSize, _ := m.OutputSchema().DomainProduct(m.OutputNames())
	choice := make([]int, domSize)
	for {
		if !fn(choice) {
			return nil
		}
		i := len(choice) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if uint64(choice[i]) < rangeSize {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// FunctionWorldOutSet computes OUT_{x,m} directly from Definition 2 by
// enumerating every function world (Definition 1 restricted to total
// functions over the module's domain, which is the module relation's
// setting in the paper's examples) and collecting the outputs assigned to
// x in worlds whose visible projection matches. It exists purely to cross-
// validate the Lemma 4 closed form in privacy.ModuleView.OutSet; the two
// must agree on total modules.
func FunctionWorldOutSet(m *module.Module, visible relation.NameSet, x relation.Tuple) ([]relation.Tuple, error) {
	domSize, ok := m.InputDomainSize()
	if !ok {
		return nil, fmt.Errorf("worlds: input domain too large")
	}
	rangeSize, ok := m.OutputSchema().DomainProduct(m.OutputNames())
	if !ok {
		return nil, fmt.Errorf("worlds: output range too large")
	}
	if total := math.Pow(float64(rangeSize), float64(domSize)); total > 1<<24 {
		return nil, fmt.Errorf("worlds: %g candidate functions too many", total)
	}
	target, err := m.Relation().Project(visible.FilterSorted(m.AttrNames()))
	if err != nil {
		return nil, err
	}
	inputs := relation.AllTuples(m.InputSchema())
	outputs := relation.AllTuples(m.OutputSchema())
	visNames := visible.FilterSorted(m.AttrNames())
	schema := m.Schema()
	xIdx := -1
	for i, in := range inputs {
		if in.Equal(x) {
			xIdx = i
			break
		}
	}
	if xIdx < 0 {
		return nil, fmt.Errorf("worlds: input %v not in domain", x)
	}
	found := make(map[uint64]bool)
	err = eachFunctionWorld(m, func(choice []int) bool {
		cand := relation.New(target.Schema())
		row := make(relation.Tuple, schema.Len())
		for i, in := range inputs {
			copy(row, in)
			copy(row[len(in):], outputs[choice[i]])
			proj := make(relation.Tuple, len(visNames))
			for j, n := range visNames {
				proj[j] = row[schema.IndexOf(n)]
			}
			_ = cand.Insert(proj)
		}
		if cand.Equal(target) {
			found[relation.Encode(m.OutputSchema(), outputs[choice[xIdx]])] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]relation.Tuple, 0, len(found))
	relation.EachTuple(m.OutputSchema(), func(y relation.Tuple) bool {
		if found[relation.Encode(m.OutputSchema(), y)] {
			out = append(out, y.Clone())
		}
		return true
	})
	return out, nil
}
