package worlds

import (
	"context"

	"secureview/internal/relation"
	"secureview/internal/workflow"
)

// VerifyPrivate checks Γ-workflow-privacy (Definition 5) for every target
// module by exhaustive possible-world enumeration and returns the first
// module that fails, or "" when all pass. Empty targets means every private
// module of w. This is the semantic ground truth the assembly theorems
// (4/8) are checked against: the differential harness and the end-to-end
// tests run solver outputs through it on instances small enough to
// enumerate. A zero budget uses the Enumerator default.
func VerifyPrivate(w *workflow.Workflow, r *relation.Relation, visible relation.NameSet,
	privatized relation.NameSet, targets []string, gamma uint64, budget uint64) (failed string, err error) {
	return VerifyPrivateCtx(context.Background(), w, r, visible, privatized, targets, gamma, budget)
}

// VerifyPrivateCtx is VerifyPrivate with cancellation, observed by every
// enumeration worker before each candidate assignment; on expiry it returns
// ctx.Err() naming the target whose verification was interrupted.
func VerifyPrivateCtx(ctx context.Context, w *workflow.Workflow, r *relation.Relation, visible relation.NameSet,
	privatized relation.NameSet, targets []string, gamma uint64, budget uint64) (failed string, err error) {
	if len(targets) == 0 {
		for _, m := range w.PrivateModules() {
			targets = append(targets, m.Name())
		}
	}
	e := &Enumerator{W: w, R: r, Visible: visible, Privatized: privatized, Budget: budget}
	for _, name := range targets {
		ok, err := e.IsWorkflowPrivateCtx(ctx, name, gamma)
		if err != nil {
			return name, err
		}
		if !ok {
			return name, nil
		}
	}
	return "", nil
}
