package workflow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/relation"
)

func TestNewValidation(t *testing.T) {
	m1 := module.Fig1M1()
	t.Run("empty name", func(t *testing.T) {
		if _, err := New("", m1); err == nil {
			t.Error("accepted empty name")
		}
	})
	t.Run("no modules", func(t *testing.T) {
		if _, err := New("w"); err == nil {
			t.Error("accepted empty workflow")
		}
	})
	t.Run("duplicate module name", func(t *testing.T) {
		if _, err := New("w", m1, module.Fig1M1()); err == nil {
			t.Error("accepted duplicate module names")
		}
	})
	t.Run("duplicate producer", func(t *testing.T) {
		a := module.Not("p", "x", "y")
		b := module.Not("q", "z", "y") // y produced twice
		if _, err := New("w", a, b); err == nil {
			t.Error("accepted attribute with two producers")
		}
	})
	t.Run("domain mismatch", func(t *testing.T) {
		a := module.MustNew("p", relation.Bools("x"), []relation.Attribute{{Name: "y", Domain: 3}},
			func(relation.Tuple) relation.Tuple { return relation.Tuple{0} })
		b := module.Not("q", "y", "z") // consumes y as boolean
		if _, err := New("w", a, b); err == nil {
			t.Error("accepted shared attribute with mismatched domains")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		a := module.Not("p", "x", "y")
		b := module.Not("q", "y", "x")
		if _, err := New("w", a, b); err == nil {
			t.Error("accepted cyclic workflow")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		m := module.MustNew("p", relation.Bools("x", "y"), relation.Bools("z"),
			func(relation.Tuple) relation.Tuple { return relation.Tuple{0} })
		n := module.MustNew("q", relation.Bools("z"), relation.Bools("y"),
			func(relation.Tuple) relation.Tuple { return relation.Tuple{0} })
		if _, err := New("w", m, n); err == nil {
			t.Error("accepted cyclic dependency p->q->p")
		}
	})
}

func TestFig1Structure(t *testing.T) {
	w := Fig1()
	if got := w.InitialInputNames(); len(got) != 2 || got[0] != "a1" || got[1] != "a2" {
		t.Errorf("initial inputs = %v, want [a1 a2]", got)
	}
	if got := w.Schema().Names(); strings.Join(got, ",") != "a1,a2,a3,a4,a5,a6,a7" {
		t.Errorf("schema = %v", got)
	}
	if got := w.DataSharing(); got != 2 {
		t.Errorf("γ = %d, want 2 (a4 feeds m2 and m3)", got)
	}
	if got := w.Producer("a6"); got != "m2" {
		t.Errorf("producer(a6) = %q, want m2", got)
	}
	if got := w.Producer("a1"); got != "" {
		t.Errorf("producer(a1) = %q, want initial input", got)
	}
	if got := w.Consumers("a4"); len(got) != 2 {
		t.Errorf("consumers(a4) = %v, want two", got)
	}
	finals := w.FinalOutputs()
	names := make([]string, len(finals))
	for i, a := range finals {
		names[i] = a.Name
	}
	if strings.Join(names, ",") != "a6,a7" {
		t.Errorf("final outputs = %v, want [a6 a7]", names)
	}
	if w.Module("m2") == nil || w.Module("zz") != nil {
		t.Error("Module lookup wrong")
	}
	if len(w.PrivateModules()) != 3 || len(w.PublicModules()) != 0 {
		t.Error("visibility partition wrong")
	}
	if !strings.Contains(w.String(), "fig1") {
		t.Errorf("String = %q", w.String())
	}
}

func TestTopologicalOrder(t *testing.T) {
	w := Fig1()
	mods := w.Modules()
	pos := make(map[string]int)
	for i, m := range mods {
		pos[m.Name()] = i
	}
	if !(pos["m1"] < pos["m2"] && pos["m1"] < pos["m3"]) {
		t.Errorf("topological order violated: %v", pos)
	}
}

func TestFig1RelationMatchesPaper(t *testing.T) {
	w := Fig1()
	r := w.MustRelation()
	want := relation.MustFromRows(w.Schema(), [][]relation.Value{
		{0, 0, 0, 1, 1, 1, 0},
		{0, 1, 1, 1, 0, 0, 1},
		{1, 0, 1, 1, 0, 0, 1},
		{1, 1, 1, 0, 1, 1, 1},
	})
	if !r.Equal(want) {
		t.Fatalf("R =\n%v\nwant\n%v", r, want)
	}
	// The provenance relation satisfies every module FD.
	for _, fd := range w.FDs() {
		ok, err := r.SatisfiesFD(fd[0], fd[1])
		if err != nil || !ok {
			t.Errorf("FD %v -> %v violated (err=%v)", fd[0], fd[1], err)
		}
	}
}

func TestExecuteValidatesInput(t *testing.T) {
	w := Fig1()
	if _, err := w.Execute(relation.Tuple{0}); err == nil {
		t.Error("short initial input accepted")
	}
	if _, err := w.Execute(relation.Tuple{0, 9}); err == nil {
		t.Error("out-of-domain initial input accepted")
	}
}

func TestRelationRowLimit(t *testing.T) {
	w := Chain("c", 1, 8, "identity")
	if _, err := w.Relation(10); err == nil {
		t.Error("row limit not enforced")
	}
	if _, err := w.Relation(1 << 10); err != nil {
		t.Errorf("relation under limit failed: %v", err)
	}
}

func TestRelationOver(t *testing.T) {
	w := Fig1()
	r, err := w.RelationOver([]relation.Tuple{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("sampled relation size = %d, want 2", r.Len())
	}
	if _, err := w.RelationOver([]relation.Tuple{{5, 5}}); err == nil {
		t.Error("invalid sampled input accepted")
	}
}

func TestRedefine(t *testing.T) {
	w := Fig1()
	// Replace m2 with a constant-0 function.
	w2, err := w.Redefine(map[string]module.Func{
		"m2": func(relation.Tuple) relation.Tuple { return relation.Tuple{0} },
	})
	if err != nil {
		t.Fatal(err)
	}
	r2 := w2.MustRelation()
	a6 := r2.MustProject("a6")
	if a6.Len() != 1 || a6.Row(0)[0] != 0 {
		t.Errorf("redefined m2 output column = %v", a6)
	}
	// Original untouched.
	if w.MustRelation().MustProject("a6").Len() != 2 {
		t.Error("Redefine mutated original workflow")
	}
	// Schema and wiring preserved.
	if !w2.Schema().Equal(w.Schema()) {
		t.Error("Redefine changed schema")
	}
}

func TestChainStructure(t *testing.T) {
	w := Chain("chain", 3, 2, "complement")
	if len(w.Modules()) != 3 {
		t.Fatalf("modules = %d", len(w.Modules()))
	}
	if got := w.DataSharing(); got != 1 {
		t.Errorf("chain γ = %d, want 1", got)
	}
	// complement ∘ complement ∘ complement = complement
	row, err := w.Execute(relation.Tuple{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Schema()
	getVal := func(name string) relation.Value { return row[s.IndexOf(name)] }
	if getVal("x3_0") != 1 || getVal("x3_1") != 0 {
		t.Errorf("triple complement of (0,1) gave final (%d,%d)", getVal("x3_0"), getVal("x3_1"))
	}
}

func TestChainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Chain with bad kind did not panic")
		}
	}()
	Chain("c", 1, 1, "bogus")
}

func TestModuleAttrs(t *testing.T) {
	w := Fig1()
	in, out, err := w.ModuleAttrs("m3")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(in, ",") != "a4,a5" || strings.Join(out, ",") != "a7" {
		t.Errorf("m3 attrs = %v -> %v", in, out)
	}
	if _, _, err := w.ModuleAttrs("nope"); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestDiamondSharing(t *testing.T) {
	// One source feeding three consumers: γ = 3.
	src := module.Identity("src", []string{"x"}, []string{"d"})
	c1 := module.Not("c1", "d", "y1")
	c2 := module.Not("c2", "d", "y2")
	c3 := module.Not("c3", "d", "y3")
	w := MustNew("diamond", c2, src, c3, c1) // order shuffled on purpose
	if got := w.DataSharing(); got != 3 {
		t.Errorf("γ = %d, want 3", got)
	}
	if w.Modules()[0].Name() != "src" {
		t.Errorf("topo order starts with %s, want src", w.Modules()[0].Name())
	}
}

// Property: the provenance relation of a random two-layer workflow satisfies
// all module FDs and the row count equals the initial-input domain size.
func TestQuickProvenanceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := module.Random("m1", relation.Bools("x1", "x2"), relation.Bools("u1", "u2"), rng)
		m2 := module.Random("m2", relation.Bools("u1", "u2"), relation.Bools("v1"), rng)
		m3 := module.Random("m3", relation.Bools("u2", "x1"), relation.Bools("v2"), rng)
		w, err := New("rand", m1, m2, m3)
		if err != nil {
			return false
		}
		r, err := w.Relation(64)
		if err != nil {
			return false
		}
		if r.Len() != 4 {
			return false
		}
		for _, fd := range w.FDs() {
			ok, err := r.SatisfiesFD(fd[0], fd[1])
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: execution is deterministic — executing the same input twice
// yields identical rows, and Relation agrees with Execute.
func TestQuickExecutionDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := module.Random("m1", relation.Bools("x1", "x2", "x3"), relation.Bools("u1"), rng)
		m2 := module.Random("m2", relation.Bools("u1", "x3"), relation.Bools("v1", "v2"), rng)
		w, err := New("rand", m1, m2)
		if err != nil {
			return false
		}
		r := w.MustRelation()
		x := relation.Tuple{rng.Intn(2), rng.Intn(2), rng.Intn(2)}
		row1, err1 := w.Execute(x)
		row2, err2 := w.Execute(x)
		if err1 != nil || err2 != nil || !row1.Equal(row2) {
			return false
		}
		return r.Contains(row1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
