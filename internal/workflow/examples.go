package workflow

import (
	"fmt"

	"secureview/internal/module"
)

// Fig1 returns the paper's running example workflow (Figure 1): three
// private boolean modules m1 (a1,a2 → a3,a4,a5), m2 (a3,a4 → a6) and
// m3 (a4,a5 → a7). Attribute a4 is shared (γ = 2).
func Fig1() *Workflow {
	return MustNew("fig1", module.Fig1M1(), module.Fig1M2(), module.Fig1M3())
}

// Chain returns a linear workflow of k-bit one-one modules
// m_1 → m_2 → ... → m_n. Kind selects the module functionality: "identity"
// or "complement". Attribute names are x_{level}_{bit}; level 0 holds the
// initial inputs. Used by the Proposition 2 and Example 7 constructions.
func Chain(name string, n, k int, kind string) *Workflow {
	if n < 1 || k < 1 {
		panic(fmt.Sprintf("workflow %s: chain needs n,k >= 1", name))
	}
	mods := make([]*module.Module, n)
	for i := 0; i < n; i++ {
		in := levelNames(i, k)
		out := levelNames(i+1, k)
		modName := fmt.Sprintf("m%d", i+1)
		switch kind {
		case "identity":
			mods[i] = module.Identity(modName, in, out)
		case "complement":
			mods[i] = module.Complement(modName, in, out)
		default:
			panic(fmt.Sprintf("workflow %s: unknown chain kind %q", name, kind))
		}
	}
	return MustNew(name, mods...)
}

func levelNames(level, k int) []string {
	names := make([]string, k)
	for b := 0; b < k; b++ {
		names[b] = fmt.Sprintf("x%d_%d", level, b)
	}
	return names
}
