package workflow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"secureview/internal/module"
	"secureview/internal/relation"
)

// A module with several outputs consumed by several downstream modules
// (multi-output fan-out): structure and execution must be consistent.
func TestMultiOutputFanOut(t *testing.T) {
	src := module.MustNew("src", relation.Bools("x1", "x2"), relation.Bools("u1", "u2", "u3"),
		func(x relation.Tuple) relation.Tuple {
			return relation.Tuple{x[0], x[1], x[0] ^ x[1]}
		})
	c1 := module.And("c1", []string{"u1", "u2"}, "v1")
	c2 := module.Or("c2", []string{"u2", "u3"}, "v2")
	c3 := module.Xor("c3", []string{"u1", "u3"}, "v3")
	w := MustNew("fan", src, c1, c2, c3)

	if got := w.DataSharing(); got != 2 {
		t.Errorf("γ = %d, want 2 (u1..u3 each feed two consumers)", got)
	}
	finals := w.FinalOutputs()
	names := make([]string, len(finals))
	for i, a := range finals {
		names[i] = a.Name
	}
	if strings.Join(names, ",") != "v1,v2,v3" {
		t.Errorf("final outputs = %v", names)
	}
	r := w.MustRelation()
	if r.Len() != 4 {
		t.Fatalf("rows = %d, want 4", r.Len())
	}
	// Spot-check one execution: x = (1, 0) → u = (1,0,1), v = (0,1,0).
	row, err := w.Execute(relation.Tuple{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Schema()
	want := map[string]relation.Value{"u1": 1, "u2": 0, "u3": 1, "v1": 0, "v2": 1, "v3": 0}
	for n, v := range want {
		if row[s.IndexOf(n)] != v {
			t.Errorf("%s = %d, want %d", n, row[s.IndexOf(n)], v)
		}
	}
}

// Deep chain: topological sort and execution through 12 levels.
func TestDeepChain(t *testing.T) {
	w := Chain("deep", 12, 1, "complement")
	row, err := w.Execute(relation.Tuple{0})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Schema()
	// 12 complements of 0: even count → back to 0.
	if got := row[s.IndexOf("x12_0")]; got != 0 {
		t.Errorf("final = %d, want 0", got)
	}
	if got := row[s.IndexOf("x11_0")]; got != 1 {
		t.Errorf("level 11 = %d, want 1", got)
	}
	if len(w.Modules()) != 12 {
		t.Errorf("modules = %d", len(w.Modules()))
	}
}

// Mixed-domain attributes flow through the workflow unchanged.
func TestNonBooleanDomains(t *testing.T) {
	trit := relation.Attribute{Name: "t", Domain: 3}
	sum := relation.Attribute{Name: "s", Domain: 5}
	m1 := module.MustNew("m1", []relation.Attribute{trit, {Name: "u", Domain: 3}},
		[]relation.Attribute{sum},
		func(x relation.Tuple) relation.Tuple {
			return relation.Tuple{x[0] + x[1]}
		})
	m2 := module.MustNew("m2", []relation.Attribute{sum}, relation.Bools("big"),
		func(x relation.Tuple) relation.Tuple {
			if x[0] >= 3 {
				return relation.Tuple{1}
			}
			return relation.Tuple{0}
		})
	w := MustNew("trits", m1, m2)
	r := w.MustRelation()
	if r.Len() != 9 {
		t.Fatalf("rows = %d, want 9", r.Len())
	}
	big := r.Select(func(t relation.Tuple) bool { return t[w.Schema().IndexOf("big")] == 1 })
	if big.Len() != 3 { // (1,2),(2,1),(2,2)
		t.Errorf("big rows = %d, want 3", big.Len())
	}
}

// Property: Redefine with identity functions is a no-op on the relation.
func TestQuickRedefineIdentityNoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := module.Random("m1", relation.Bools("x1"), relation.Bools("u1", "u2"), rng)
		m2 := module.Random("m2", relation.Bools("u1", "u2"), relation.Bools("v1"), rng)
		w, err := New("w", m1, m2)
		if err != nil {
			return false
		}
		// Redefine every module with a function that calls the original.
		fns := make(map[string]module.Func)
		for _, m := range w.Modules() {
			m := m
			fns[m.Name()] = func(x relation.Tuple) relation.Tuple {
				return m.MustEval(x)
			}
		}
		w2, err := w.Redefine(fns)
		if err != nil {
			return false
		}
		return w2.MustRelation().Equal(w.MustRelation())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every attribute is either an initial input or has a producer,
// and consumers never include the producer.
func TestQuickProducerConsumerConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := module.Random("m1", relation.Bools("x1", "x2"), relation.Bools("u1"), rng)
		m2 := module.Random("m2", relation.Bools("u1", "x2"), relation.Bools("v1"), rng)
		w, err := New("w", m1, m2)
		if err != nil {
			return false
		}
		initial := relation.NewNameSet(w.InitialInputNames()...)
		for _, n := range w.Schema().Names() {
			p := w.Producer(n)
			if initial.Has(n) != (p == "") {
				return false
			}
			for _, c := range w.Consumers(n) {
				if c == p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
