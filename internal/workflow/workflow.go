// Package workflow models scientific workflows as directed acyclic
// multigraphs of modules connected by shared attribute names (Davidson et
// al., PODS 2011, section 2.3).
//
// A workflow W over modules m1..mn induces a provenance relation R over
// A = ∪(Ii ∪ Oi) satisfying the functional dependencies Ii → Oi: each row of
// R is one end-to-end execution. The package validates the paper's
// well-formedness conditions, executes workflows over initial inputs, and
// computes structural properties such as the data-sharing bound γ
// (Definition 3).
package workflow

import (
	"fmt"
	"sort"

	"secureview/internal/module"
	"secureview/internal/relation"
)

// Workflow is a validated DAG of modules. Construct with New; the zero value
// is unusable.
type Workflow struct {
	name    string
	modules []*module.Module // topological order
	byName  map[string]*module.Module

	schema  *relation.Schema // all attributes A: initial inputs, then outputs in topo order
	initial []relation.Attribute
	final   []relation.Attribute

	producer  map[string]string   // attribute -> producing module name
	consumers map[string][]string // attribute -> consuming module names (topo order)
}

// New validates the module set and returns the workflow. The conditions
// checked are those of section 2.3:
//
//  1. within each module, input and output names are disjoint (enforced by
//     module.New);
//  2. output attribute names of distinct modules are disjoint (each data
//     item is produced by a unique module);
//  3. attributes shared by name have identical domains;
//  4. the induced graph (edge mi → mj whenever Oi ∩ Ij ≠ ∅) is acyclic.
//
// Input attributes not produced by any module are the workflow's initial
// inputs; outputs not consumed by any module are its final outputs.
func New(name string, modules ...*module.Module) (*Workflow, error) {
	if name == "" {
		return nil, fmt.Errorf("workflow: empty name")
	}
	if len(modules) == 0 {
		return nil, fmt.Errorf("workflow %s: no modules", name)
	}
	w := &Workflow{
		name:      name,
		byName:    make(map[string]*module.Module, len(modules)),
		producer:  make(map[string]string),
		consumers: make(map[string][]string),
	}
	attrDomain := make(map[string]int)
	checkAttr := func(a relation.Attribute, where string) error {
		if d, ok := attrDomain[a.Name]; ok && d != a.Domain {
			return fmt.Errorf("workflow %s: attribute %q has domain %d in %s but %d elsewhere",
				name, a.Name, a.Domain, where, d)
		}
		attrDomain[a.Name] = a.Domain
		return nil
	}
	for _, m := range modules {
		if m == nil {
			return nil, fmt.Errorf("workflow %s: nil module", name)
		}
		if _, dup := w.byName[m.Name()]; dup {
			return nil, fmt.Errorf("workflow %s: duplicate module name %q", name, m.Name())
		}
		w.byName[m.Name()] = m
		for _, a := range m.Outputs() {
			if prev, dup := w.producer[a.Name]; dup {
				return nil, fmt.Errorf("workflow %s: attribute %q produced by both %s and %s",
					name, a.Name, prev, m.Name())
			}
			w.producer[a.Name] = m.Name()
			if err := checkAttr(a, m.Name()); err != nil {
				return nil, err
			}
		}
	}
	for _, m := range modules {
		for _, a := range m.Inputs() {
			if err := checkAttr(a, m.Name()); err != nil {
				return nil, err
			}
		}
	}

	order, err := topoSort(name, modules, w.producer)
	if err != nil {
		return nil, err
	}
	w.modules = order

	// Assemble the global attribute order: initial inputs first (in first-
	// appearance order over the topological module order), then each
	// module's outputs.
	var attrs []relation.Attribute
	seen := make(map[string]bool)
	for _, m := range w.modules {
		for _, a := range m.Inputs() {
			if _, produced := w.producer[a.Name]; produced || seen[a.Name] {
				continue
			}
			seen[a.Name] = true
			attrs = append(attrs, a)
			w.initial = append(w.initial, a)
		}
	}
	for _, m := range w.modules {
		for _, a := range m.Outputs() {
			attrs = append(attrs, a)
		}
		for _, a := range m.Inputs() {
			w.consumers[a.Name] = append(w.consumers[a.Name], m.Name())
		}
	}
	w.schema, err = relation.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("workflow %s: %w", name, err)
	}
	for _, m := range w.modules {
		for _, a := range m.Outputs() {
			if len(w.consumers[a.Name]) == 0 {
				w.final = append(w.final, a)
			}
		}
	}
	return w, nil
}

// MustNew is like New but panics on error.
func MustNew(name string, modules ...*module.Module) *Workflow {
	w, err := New(name, modules...)
	if err != nil {
		panic(err)
	}
	return w
}

func topoSort(name string, modules []*module.Module, producer map[string]string) ([]*module.Module, error) {
	byName := make(map[string]*module.Module, len(modules))
	indeg := make(map[string]int, len(modules))
	succ := make(map[string][]string, len(modules))
	for _, m := range modules {
		byName[m.Name()] = m
		indeg[m.Name()] = 0
	}
	for _, m := range modules {
		deps := make(map[string]bool)
		for _, a := range m.Inputs() {
			if p, ok := producer[a.Name]; ok && p != m.Name() && !deps[p] {
				deps[p] = true
				succ[p] = append(succ[p], m.Name())
				indeg[m.Name()]++
			}
			if p, ok := producer[a.Name]; ok && p == m.Name() {
				return nil, fmt.Errorf("workflow %s: module %s consumes its own output %q", name, m.Name(), a.Name)
			}
		}
	}
	// Kahn's algorithm with deterministic (name-sorted) tie-breaking so that
	// the attribute order, and hence the provenance schema, is stable.
	var frontier []string
	for n, d := range indeg {
		if d == 0 {
			frontier = append(frontier, n)
		}
	}
	sort.Strings(frontier)
	var order []*module.Module
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, byName[n])
		var next []string
		for _, s := range succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Strings(next)
		frontier = mergeSorted(frontier, next)
	}
	if len(order) != len(modules) {
		return nil, fmt.Errorf("workflow %s: module graph has a cycle", name)
	}
	return order, nil
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

// Modules returns the modules in topological order.
func (w *Workflow) Modules() []*module.Module {
	return append([]*module.Module(nil), w.modules...)
}

// Module returns the named module, or nil.
func (w *Workflow) Module(name string) *module.Module { return w.byName[name] }

// PrivateModules returns the private modules in topological order.
func (w *Workflow) PrivateModules() []*module.Module {
	var out []*module.Module
	for _, m := range w.modules {
		if m.Visibility() == module.Private {
			out = append(out, m)
		}
	}
	return out
}

// PublicModules returns the public modules in topological order.
func (w *Workflow) PublicModules() []*module.Module {
	var out []*module.Module
	for _, m := range w.modules {
		if m.Visibility() == module.Public {
			out = append(out, m)
		}
	}
	return out
}

// Schema returns the provenance schema over all attributes A, initial
// inputs first, then module outputs in topological order.
func (w *Workflow) Schema() *relation.Schema { return w.schema }

// InitialInputs returns I0: input attributes not produced by any module.
func (w *Workflow) InitialInputs() []relation.Attribute {
	return append([]relation.Attribute(nil), w.initial...)
}

// InitialInputNames returns the names of the initial inputs.
func (w *Workflow) InitialInputNames() []string {
	names := make([]string, len(w.initial))
	for i, a := range w.initial {
		names[i] = a.Name
	}
	return names
}

// FinalOutputs returns attributes produced but never consumed.
func (w *Workflow) FinalOutputs() []relation.Attribute {
	return append([]relation.Attribute(nil), w.final...)
}

// Producer returns the name of the module producing the attribute, or ""
// if it is an initial input.
func (w *Workflow) Producer(attr string) string { return w.producer[attr] }

// Consumers returns the names of the modules consuming the attribute, in
// topological order.
func (w *Workflow) Consumers(attr string) []string {
	return append([]string(nil), w.consumers[attr]...)
}

// DataSharing returns γ, the data-sharing bound of Definition 3: the maximum
// number of modules any single attribute feeds.
func (w *Workflow) DataSharing() int {
	max := 0
	for _, cs := range w.consumers {
		if len(cs) > max {
			max = len(cs)
		}
	}
	return max
}

// FDs returns the functional dependencies F = {Ii → Oi} as (lhs, rhs) name
// pairs, in topological module order.
func (w *Workflow) FDs() [][2][]string {
	out := make([][2][]string, len(w.modules))
	for i, m := range w.modules {
		out[i] = [2][]string{m.InputNames(), m.OutputNames()}
	}
	return out
}

// Execute runs the workflow on one assignment of the initial inputs
// (aligned with InitialInputs) and returns the full provenance tuple over
// Schema().
func (w *Workflow) Execute(initial relation.Tuple) (relation.Tuple, error) {
	if len(initial) != len(w.initial) {
		return nil, fmt.Errorf("workflow %s: initial input arity %d, want %d", w.name, len(initial), len(w.initial))
	}
	env := make(map[string]relation.Value, w.schema.Len())
	for i, a := range w.initial {
		if initial[i] < 0 || initial[i] >= a.Domain {
			return nil, fmt.Errorf("workflow %s: initial input %q value %d out of domain [0,%d)",
				w.name, a.Name, initial[i], a.Domain)
		}
		env[a.Name] = initial[i]
	}
	for _, m := range w.modules {
		inNames := m.InputNames()
		x := make(relation.Tuple, len(inNames))
		for i, n := range inNames {
			v, ok := env[n]
			if !ok {
				return nil, fmt.Errorf("workflow %s: module %s input %q unavailable", w.name, m.Name(), n)
			}
			x[i] = v
		}
		y, err := m.Eval(x)
		if err != nil {
			return nil, err
		}
		for i, n := range m.OutputNames() {
			env[n] = y[i]
		}
	}
	row := make(relation.Tuple, w.schema.Len())
	for i, n := range w.schema.Names() {
		row[i] = env[n]
	}
	return row, nil
}

// Relation executes the workflow on every assignment of the initial inputs
// and returns the full provenance relation R. It returns an error if the
// initial-input domain exceeds maxRows.
func (w *Workflow) Relation(maxRows uint64) (*relation.Relation, error) {
	inSchema, err := relation.NewSchema(w.initial)
	if err != nil {
		return nil, err
	}
	size, ok := inSchema.DomainProduct(inSchema.Names())
	if !ok || size > maxRows {
		return nil, fmt.Errorf("workflow %s: initial domain of size %d exceeds limit %d", w.name, size, maxRows)
	}
	r := relation.New(w.schema)
	var execErr error
	relation.EachTuple(inSchema, func(x relation.Tuple) bool {
		row, err := w.Execute(x)
		if err != nil {
			execErr = err
			return false
		}
		if err := r.Insert(row); err != nil {
			execErr = err
			return false
		}
		return true
	})
	if execErr != nil {
		return nil, execErr
	}
	return r, nil
}

// MustRelation is like Relation with a 1<<20 row limit, panicking on error.
func (w *Workflow) MustRelation() *relation.Relation {
	r, err := w.Relation(1 << 20)
	if err != nil {
		panic(err)
	}
	return r
}

// RelationOver executes the workflow on the given initial-input tuples only
// (sampled executions) and returns the resulting provenance relation.
func (w *Workflow) RelationOver(inputs []relation.Tuple) (*relation.Relation, error) {
	r := relation.New(w.schema)
	for _, x := range inputs {
		row, err := w.Execute(x)
		if err != nil {
			return nil, err
		}
		if err := r.Insert(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Redefine returns a new workflow with the same wiring in which each module
// named in fns has its functionality replaced. Unnamed modules are shared.
// This is the primitive for constructing possible worlds by module
// redefinition (proof of Lemma 1).
func (w *Workflow) Redefine(fns map[string]module.Func) (*Workflow, error) {
	mods := make([]*module.Module, len(w.modules))
	for i, m := range w.modules {
		if fn, ok := fns[m.Name()]; ok {
			mods[i] = m.WithFunc(fn)
		} else {
			mods[i] = m
		}
	}
	return New(w.name, mods...)
}

// ModuleAttrs returns, for the named module, the attribute names of Ii and
// Oi. It returns an error for unknown modules.
func (w *Workflow) ModuleAttrs(name string) (inputs, outputs []string, err error) {
	m := w.byName[name]
	if m == nil {
		return nil, nil, fmt.Errorf("workflow %s: no module %q", w.name, name)
	}
	return m.InputNames(), m.OutputNames(), nil
}

// String returns a one-line summary.
func (w *Workflow) String() string {
	return fmt.Sprintf("workflow %s: %d modules, %d attributes, γ=%d",
		w.name, len(w.modules), w.schema.Len(), w.DataSharing())
}
