// Package workload generates synthetic workflows and Secure-View instances
// for averaged experiments: layered DAGs of random boolean modules with
// controllable data sharing, and random requirement-list instances.
//
// It predates internal/gen, which supersedes it for new code: gen adds
// topology classes, Share caps, domain sizes, function kinds, cost models
// and byte-identical canonical serialization. workload stays as-is because
// E19 and several tests are seeded against its exact rand streams; folding
// it into gen is a ROADMAP item.
package workload

import (
	"fmt"
	"math/rand"

	"secureview/internal/module"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/secureview"
	"secureview/internal/workflow"
)

// LayeredWorkflow builds a random all-private workflow with the given
// number of layers, each layer holding width random boolean modules. Every
// module consumes fanIn attributes drawn from the previous layer's outputs
// (creating data sharing when fanIn × width exceeds the previous layer's
// output count) and produces one output.
func LayeredWorkflow(name string, layers, width, fanIn int, rng *rand.Rand) *workflow.Workflow {
	if layers < 1 || width < 1 || fanIn < 1 {
		panic("workload: layers, width, fanIn must be positive")
	}
	var mods []*module.Module
	prev := make([]string, fanIn)
	for i := range prev {
		prev[i] = fmt.Sprintf("in%d", i)
	}
	for l := 0; l < layers; l++ {
		var next []string
		for wi := 0; wi < width; wi++ {
			in := make([]string, 0, fanIn)
			seen := map[string]bool{}
			for len(in) < fanIn && len(in) < len(prev) {
				c := prev[rng.Intn(len(prev))]
				if !seen[c] {
					seen[c] = true
					in = append(in, c)
				}
			}
			out := fmt.Sprintf("d%d_%d", l, wi)
			next = append(next, out)
			mods = append(mods, module.Random(
				fmt.Sprintf("m%d_%d", l, wi),
				relation.Bools(in...), relation.Bools(out), rng))
		}
		prev = next
	}
	return workflow.MustNew(name, mods...)
}

// RandomCosts draws uniform costs in [1, maxCost] for the given attributes.
func RandomCosts(attrs []string, maxCost float64, rng *rand.Rand) privacy.Costs {
	c := make(privacy.Costs, len(attrs))
	for _, a := range attrs {
		c[a] = 1 + rng.Float64()*(maxCost-1)
	}
	return c
}

// RandomProblem builds a synthetic Secure-View instance (both constraint
// variants populated) shaped like a chain with cross-links: module i
// consumes the outputs of up to `share` earlier modules and offers the
// options "hide one input" or "hide my output".
func RandomProblem(nModules, share int, rng *rand.Rand) *secureview.Problem {
	p := &secureview.Problem{Costs: privacy.Costs{}}
	outputs := []string{"src"}
	p.Costs["src"] = 1 + rng.Float64()*4
	for i := 0; i < nModules; i++ {
		k := 1 + rng.Intn(share)
		if k > len(outputs) {
			k = len(outputs)
		}
		seen := map[string]bool{}
		var in []string
		for len(in) < k {
			c := outputs[rng.Intn(len(outputs))]
			if !seen[c] {
				seen[c] = true
				in = append(in, c)
			}
		}
		out := fmt.Sprintf("d%d", i)
		p.Costs[out] = 1 + rng.Float64()*4
		setList := []secureview.SetReq{{Out: []string{out}}}
		for _, a := range in {
			setList = append(setList, secureview.SetReq{In: []string{a}})
		}
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("m%d", i), Inputs: in, Outputs: []string{out},
			SetList:  setList,
			CardList: []secureview.CardReq{{Alpha: 1, Beta: 0}, {Alpha: 0, Beta: 1}},
		})
		outputs = append(outputs, out)
	}
	return p
}
