package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secureview/internal/secureview"
)

func TestLayeredWorkflowShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := LayeredWorkflow("lw", 3, 2, 2, rng)
	if got := len(w.Modules()); got != 6 {
		t.Fatalf("modules = %d, want 6", got)
	}
	if got := len(w.InitialInputs()); got != 2 {
		t.Fatalf("initial inputs = %d, want 2", got)
	}
	r, err := w.Relation(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Fatalf("executions = %d, want 4", r.Len())
	}
	for _, fd := range w.FDs() {
		ok, err := r.SatisfiesFD(fd[0], fd[1])
		if err != nil || !ok {
			t.Errorf("FD %v -> %v violated", fd[0], fd[1])
		}
	}
}

func TestLayeredWorkflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid shape accepted")
		}
	}()
	LayeredWorkflow("bad", 0, 1, 1, rand.New(rand.NewSource(1)))
}

func TestLayeredWorkflowDeterministic(t *testing.T) {
	a := LayeredWorkflow("w", 2, 2, 2, rand.New(rand.NewSource(7)))
	b := LayeredWorkflow("w", 2, 2, 2, rand.New(rand.NewSource(7)))
	ra, _ := a.Relation(1 << 10)
	rb, _ := b.Relation(1 << 10)
	if !ra.Equal(rb) {
		t.Error("same seed produced different workflows")
	}
}

func TestRandomCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := RandomCosts([]string{"a", "b", "c"}, 5, rng)
	if len(c) != 3 {
		t.Fatalf("costs = %d entries", len(c))
	}
	for n, v := range c {
		if v < 1 || v > 5 {
			t.Errorf("cost %s = %v out of [1,5]", n, v)
		}
	}
}

// Property: random problems validate in both variants and all solvers
// produce feasible solutions with exact <= greedy.
func TestQuickRandomProblemSolvable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProblem(2+rng.Intn(5), 1+rng.Intn(3), rng)
		if p.Validate(secureview.Set) != nil || p.Validate(secureview.Cardinality) != nil {
			return false
		}
		exact, err := secureview.ExactSet(p, 1<<20)
		if err != nil || !p.Feasible(exact, secureview.Set) {
			return false
		}
		greedy := secureview.Greedy(p, secureview.Set)
		if !p.Feasible(greedy, secureview.Set) {
			return false
		}
		return p.Cost(exact) <= p.Cost(greedy)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: LayeredWorkflow's data sharing never exceeds width (each
// attribute feeds at most the next layer's modules).
func TestQuickLayeredSharingBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(3)
		w := LayeredWorkflow("w", 1+rng.Intn(3), width, 1+rng.Intn(2), rng)
		return w.DataSharing() <= width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
