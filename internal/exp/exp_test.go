package exp

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "longer"}}
	tab.Add(1, 2.5)
	tab.Add("xx", "y")
	tab.Note("hello %d", 7)
	s := tab.String()
	if !strings.Contains(s, "## demo") || !strings.Contains(s, "hello 7") {
		t.Fatalf("rendering wrong:\n%s", s)
	}
	if !strings.Contains(s, "2.5") {
		t.Errorf("float cell missing: %s", s)
	}
}

func TestFind(t *testing.T) {
	if Find("E1") == nil || Find("E19") == nil || Find("E22") == nil || Find("E23") == nil {
		t.Fatal("registry lookup failed")
	}
	if Find("E99") != nil {
		t.Fatal("bogus id found")
	}
}

// Every experiment must run in quick mode and produce at least one
// non-empty table. This is the integration test for the whole harness.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(true)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if tab.Title == "" {
					t.Error("table without title")
				}
				if len(tab.Rows) == 0 && len(tab.Notes) == 0 {
					t.Errorf("table %q empty", tab.Title)
				}
				_ = tab.String()
			}
		})
	}
}

// Spot-check headline numbers that the paper pins exactly.
func TestHeadlineNumbers(t *testing.T) {
	t.Run("E1 worlds=64", func(t *testing.T) {
		tables := Find("E1").Run(true)
		found := false
		for _, tab := range tables {
			for _, row := range tab.Rows {
				for i, c := range row {
					if c == "64" && i > 0 {
						found = true
					}
				}
			}
		}
		if !found {
			t.Error("E1 did not report the 64-world count")
		}
	})
	t.Run("E7 optimum 2.5", func(t *testing.T) {
		tables := Find("E7").Run(true)
		for _, tab := range tables {
			for _, row := range tab.Rows {
				if len(row) >= 3 && row[2] != "2.5" {
					t.Errorf("E7 optimum = %s, want 2.5", row[2])
				}
			}
		}
	})
	t.Run("E13 equivalence", func(t *testing.T) {
		tables := Find("E13").Run(true)
		for _, tab := range tables {
			for _, row := range tab.Rows {
				if len(row) >= 5 && row[4] != "true" {
					t.Errorf("E13 equivalence failed: %v", row)
				}
			}
		}
	})
}

// Full-sweep smoke test: every experiment except the deliberately slow E19
// must also succeed with quick=false (the mode cmd/secureview-bench runs).
func TestAllExperimentsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps skipped in -short mode")
	}
	for _, e := range Registry() {
		if e.ID == "E19" {
			continue // several seconds of simplex; covered by the CLI run
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(false)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 && len(tab.Notes) == 0 {
					t.Errorf("table %q empty", tab.Title)
				}
			}
		})
	}
}
