// Package exp is the experiment harness: it hosts the registry of
// reproduction experiments E1–E23 (one per paper artifact plus the
// engineering experiments, see DESIGN.md section 4) and renders their
// results as aligned text tables. The cmd/secureview-bench binary and the
// root benchmarks both drive this registry; EXPERIMENTS.md records its
// output.
package exp

import (
	"fmt"
	"strings"
)

// Table is one result table of an experiment.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row; cells are formatted with %v (floats with %.3g).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-text note rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one registry entry.
type Experiment struct {
	// ID is the experiment identifier (E1..E15).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Run executes the experiment and returns its tables. Quick trims the
	// parameter sweep for use inside benchmarks and CI.
	Run func(quick bool) []*Table
}
