package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"secureview/internal/combopt"
	"secureview/internal/gen"
	"secureview/internal/gen/diff"
	"secureview/internal/module"
	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/reductions"
	"secureview/internal/relation"
	"secureview/internal/sat"
	"secureview/internal/search"
	"secureview/internal/secureview"
	"secureview/internal/solve"
	"secureview/internal/workflow"
	"secureview/internal/worlds"
)

// Registry returns all reproduction experiments in order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Figures 1–2, Examples 1–3: running example, safe subsets, worlds", Run: runE1},
		{ID: "E2", Title: "Theorem 1: Ω(N) data-supplier calls (set disjointness)", Run: runE2},
		{ID: "E3", Title: "Theorem 2: Safe-View ↔ UNSAT (co-NP-hardness gadget)", Run: runE3},
		{ID: "E4", Title: "Theorem 3: 2^Ω(k) Safe-View oracle calls (adversary)", Run: runE4},
		{ID: "E5", Title: "Lemma 4 / Algorithm 2: O(2^k N²) standalone brute force", Run: runE5},
		{ID: "E6", Title: "Proposition 2: doubly-exponential world-count collapse", Run: runE6},
		{ID: "E7", Title: "Example 5: Ω(n) assembly gap vs workflow optimum", Run: runE7},
		{ID: "E8", Title: "Theorem 5 / Fig. 3 / Alg. 1: cardinality LP rounding", Run: runE8},
		{ID: "E9", Title: "Theorem 6 / Fig. 4: set-constraint ℓmax rounding on label cover", Run: runE9},
		{ID: "E10", Title: "Theorem 7 / Fig. 5: (γ+1) greedy under bounded sharing", Run: runE10},
		{ID: "E11", Title: "Section 5.1, Examples 7–8: public-module leaks and privatization", Run: runE11},
		{ID: "E12", Title: "Theorem 9 / C.2: general workflows, no sharing, set-cover gap", Run: runE12},
		{ID: "E13", Title: "Theorem 10 / Fig. 6: general cardinality ≡ label cover", Run: runE13},
		{ID: "E14", Title: "Theorems 4/8: assembly verified by world enumeration", Run: runE14},
		{ID: "E15", Title: "B.4.1 ablation: integrality gap of weakened LPs", Run: runE15},
		{ID: "E16", Title: "Section 1 reading: deriving from partial execution logs", Run: runE16},
		{ID: "E17", Title: "Solver ablation: exact enumeration vs branch-and-bound", Run: runE17},
		{ID: "E18", Title: "Section 6 future work: non-uniform priors erode Γ-privacy", Run: runE18},
		{ID: "E19", Title: "Scaling: greedy vs LP rounding vs exact on growing instances", Run: runE19},
		{ID: "E20", Title: "Engine: pruned parallel subset search vs naive 2^k brute force", Run: runE20},
		{ID: "E21", Title: "Oracle: compiled integer-coded safety tests vs interpreted Lemma 4", Run: runE21},
		{ID: "E22", Title: "Scenarios: cross-solver differential suite over generated topology classes", Run: runE22},
		{ID: "E23", Title: "Scenarios: solver performance across generated instance shapes", Run: runE23},
	}
}

// Find returns the experiment with the given ID, or nil.
func Find(id string) *Experiment {
	for _, e := range Registry() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

func runE1(quick bool) []*Table {
	w := workflow.Fig1()
	r := w.MustRelation()
	t1 := &Table{Title: "E1a: workflow relation R (Figure 1b)", Header: w.Schema().Names()}
	for _, row := range r.SortedRows() {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = v
		}
		t1.Add(cells...)
	}

	mv := privacy.NewModuleView(module.Fig1M1())
	t2 := &Table{
		Title:  "E1b: Example 3 safety checks for m1, Γ=4",
		Header: []string{"visible V", "min |OUT_x|", "safe(Γ=4)", "paper"},
	}
	for _, tc := range []struct {
		vis   []string
		paper string
	}{
		{[]string{"a1", "a3", "a5"}, "safe (|OUT|=4)"},
		{[]string{"a1", "a2", "a3"}, "safe (hide 2 outputs)"},
		{[]string{"a3", "a4", "a5"}, "unsafe (|OUT|=3)"},
	} {
		v := relation.NewNameSet(tc.vis...)
		min, _ := mv.MinOutSize(v)
		safe, _ := mv.IsSafe(v, 4)
		t2.Add(v.String(), min, safe, tc.paper)
	}
	out, _ := mv.OutSet(relation.NewNameSet("a1", "a3", "a5"), relation.Tuple{0, 0})
	t2.Note("OUT_{(0,0)} with V={a1,a3,a5}: %v (paper: {(0,0,1),(0,1,1),(1,0,0),(1,1,0)})", out)

	nWorlds, err := worlds.CountFunctionWorlds(module.Fig1M1(), relation.NewNameSet("a1", "a3", "a5"))
	t3 := &Table{
		Title:  "E1c: Example 2 standalone world count",
		Header: []string{"visible V", "|Worlds(R1,V)| measured", "paper"},
	}
	if err == nil {
		t3.Add("{a1, a3, a5}", nWorlds, 64)
	}
	return []*Table{t1, t2, t3}
}

func runE2(quick bool) []*Table {
	sizes := []int{8, 64, 512, 4096}
	if quick {
		sizes = []int{8, 64}
	}
	t := &Table{
		Title:  "E2: supplier calls to decide safety of the disjointness gadget",
		Header: []string{"N", "disjoint: calls (=N+1)", "intersect@N/2: calls", "safe(disjoint)", "safe(intersect)"},
	}
	for _, n := range sizes {
		a := make([]bool, n)
		b := make([]bool, n)
		for i := 0; i < n/2; i++ {
			a[i] = true
			b[n-1-i] = i >= n/2 // all false: disjoint
		}
		m, inputs, visible := privacy.DisjointnessGadget(a, b)
		d := privacy.NewDataSupplier(m)
		safeD, callsD, _ := privacy.StreamingSafety(d, inputs, visible, 2)

		b2 := make([]bool, n)
		b2[n/2] = true
		a2 := make([]bool, n)
		a2[n/2] = true
		m2, inputs2, visible2 := privacy.DisjointnessGadget(a2, b2)
		d2 := privacy.NewDataSupplier(m2)
		safeI, callsI, _ := privacy.StreamingSafety(d2, inputs2, visible2, 2)
		t.Add(n, callsD, callsI, safeD, safeI)
	}
	t.Note("paper: deciding safety needs Ω(N) supplier calls; the NO side always reads all N+1 rows")
	return []*Table{t}
}

func runE3(quick bool) []*Table {
	vars := []int{4, 6, 8, 10}
	if quick {
		vars = []int{4, 6}
	}
	rng := rand.New(rand.NewSource(3))
	t := &Table{
		Title:  "E3: UNSAT gadget — view safety ≡ unsatisfiability",
		Header: []string{"ℓ vars", "formula", "rows 2^(ℓ+1)", "safe", "DPLL unsat", "agree", "ms"},
	}
	for _, l := range vars {
		for _, tc := range []struct {
			name string
			f    *sat.CNF
		}{
			{"contradiction", sat.Contradiction(l)},
			{"random 3-CNF", sat.Random3CNF(l, 4*l, rng)},
			{"tautology", sat.Tautology(l)},
		} {
			m, visible := privacy.UnsatGadget(tc.f)
			start := time.Now()
			mv := privacy.NewModuleView(m)
			safe, _ := mv.IsSafe(visible, 2)
			ms := float64(time.Since(start).Microseconds()) / 1000
			unsat := !tc.f.Satisfiable()
			t.Add(l, tc.name, 1<<(l+1), safe, unsat, safe == unsat, ms)
		}
	}
	t.Note("paper: Safe-View is co-NP-hard in k via UNSAT; decision time grows with 2^ℓ")
	return []*Table{t}
}

func runE4(quick bool) []*Table {
	ells := []int{4, 8, 12, 16}
	if quick {
		ells = []int{4, 8}
	}
	t := &Table{
		Title:  "E4: oracle calls against the Theorem 3 adversary (budget C = ℓ/2)",
		Header: []string{"ℓ", "oracle calls", "calls/2^(ℓ/2)", "lower bound C(ℓ,ℓ/2)/C(3ℓ/4,ℓ/4)", "candidates left"},
	}
	for _, ell := range ells {
		inst := privacy.Theorem3Instance{Ell: ell}
		adv := privacy.NewAdversaryOracle(ell)
		oracle := &privacy.CountingOracle{Inner: adv}
		attrs := append(inst.InputNames(), "y")
		_, _, calls, err := privacy.MinCostSafeSubsetWithOracle(attrs, inst.Costs(), oracle, float64(ell)/2)
		if err != nil {
			t.Note("ℓ=%d: %v", ell, err)
			continue
		}
		t.Add(ell, calls, float64(calls)/math.Pow(2, float64(ell)/2),
			privacy.QueryLowerBound(ell), adv.RemainingCandidates())
	}
	t.Note("paper: 2^Ω(k) calls required; the adversary always has a consistent special set remaining")
	return []*Table{t}
}

func runE5(quick bool) []*Table {
	ks := []int{4, 6, 8, 10}
	if quick {
		ks = []int{4, 6}
	}
	rng := rand.New(rand.NewSource(5))
	t := &Table{
		Title:  "E5: standalone Secure-View search (Algorithm 2 via the pruned engine) scaling",
		Header: []string{"k attrs", "N rows", "safety tests", "pruned", "min cost", "ms", "ms/2^k"},
	}
	for _, k := range ks {
		nIn := k / 2
		nOut := k - nIn
		in := make([]string, nIn)
		for i := range in {
			in[i] = fmt.Sprintf("x%d", i)
		}
		out := make([]string, nOut)
		for i := range out {
			out[i] = fmt.Sprintf("y%d", i)
		}
		m := module.Random("m", relation.Bools(in...), relation.Bools(out...), rng)
		mv := privacy.NewModuleView(m)
		start := time.Now()
		res, err := mv.MinCostSafeSubset(privacy.Uniform(mv.Attrs()...), 2)
		ms := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Note("k=%d: %v", k, err)
			continue
		}
		t.Add(k, 1<<nIn, res.Checked, res.Pruned, res.Cost, ms, ms/float64(int(1)<<k))
	}
	t.Note("paper: O(2^k N²) upper bound (Lemma 4), 2^Ω(k) lower bound (Theorem 3); checked+pruned = 2^k, see E20 for the engine-vs-naive comparison")
	return []*Table{t}
}

func runE6(quick bool) []*Table {
	ks := []int{1, 2, 3}
	if quick {
		ks = []int{1, 2}
	}
	t := &Table{
		Title:  "E6: Proposition 2 world counts (one-one chain, Γ=2, hide 1 bit of O1)",
		Header: []string{"k", "standalone measured", "Γ^(2^k)", "workflow measured", "(Γ!)^(2^k/Γ)", "ratio"},
	}
	for _, k := range ks {
		bits := func(level int) []string {
			out := make([]string, k)
			for b := 0; b < k; b++ {
				out[b] = fmt.Sprintf("x%d_%d", level, b)
			}
			return out
		}
		m1 := module.Identity("m1", bits(0), bits(1))
		m2 := module.Complement("m2", bits(1), bits(2))
		w := workflow.MustNew("prop2", m1, m2)
		solo := workflow.MustNew("solo", module.Identity("m1", bits(0), bits(1)))
		hidden := relation.NewNameSet(fmt.Sprintf("x%d_%d", 1, 0))

		es := &worlds.Enumerator{W: solo, R: solo.MustRelation(),
			Visible: relation.NewNameSet(solo.Schema().Names()...).Minus(hidden)}
		nStand, err := es.Count()
		if err != nil {
			t.Note("k=%d standalone: %v", k, err)
			continue
		}
		ew := &worlds.Enumerator{W: w, R: w.MustRelation(),
			Visible: relation.NewNameSet(w.Schema().Names()...).Minus(hidden)}
		nWork, err := ew.Count()
		if err != nil {
			t.Note("k=%d workflow: %v", k, err)
			continue
		}
		gamma := 2.0
		predStand := math.Pow(gamma, math.Pow(2, float64(k)))
		predWork := math.Pow(2, math.Pow(2, float64(k))/gamma) // (2!)^(2^k/2)
		t.Add(k, nStand, predStand, nWork, predWork, float64(nStand)/float64(nWork))
	}
	t.Note("paper: the ratio is doubly exponential in k, yet privacy is preserved (Lemma 1)")
	return []*Table{t}
}

func runE7(quick bool) []*Table {
	ns := []int{2, 4, 8, 16, 32}
	if quick {
		ns = []int{2, 4, 8}
	}
	const eps = 0.5
	t := &Table{
		Title:  "E7: Example 5 assembly gap",
		Header: []string{"n", "greedy (standalone optima)", "workflow optimum", "ratio", "paper ratio (n+1)/(2+ε)"},
	}
	for _, n := range ns {
		p := reductions.Example5(n, eps)
		greedy := secureview.Greedy(p, secureview.Set)
		gc := p.Cost(greedy)
		var oc float64
		if n <= 10 {
			exact, err := secureview.ExactSet(p, 1<<22)
			if err != nil {
				t.Note("n=%d: %v", n, err)
				continue
			}
			oc = p.Cost(exact)
		} else {
			// Analytic optimum {a2, b0}; verified feasible.
			sol := p.Complete(relation.NewNameSet("a2", "b0"))
			if !p.Feasible(sol, secureview.Set) {
				t.Note("n=%d: analytic optimum infeasible", n)
				continue
			}
			oc = p.Cost(sol)
		}
		t.Add(n, gc, oc, gc/oc, float64(n+1)/(2+eps))
	}
	t.Note("paper: the union of standalone optima is Ω(n) worse than the workflow optimum")
	return []*Table{t}
}

func runE8(quick bool) []*Table {
	type size struct{ n, m int }
	sizes := []size{{5, 4}, {6, 5}, {8, 6}, {10, 8}}
	if quick {
		sizes = sizes[:2]
	}
	rng := rand.New(rand.NewSource(8))
	t := &Table{
		Title:  "E8: cardinality LP rounding on set-cover gadgets (Theorem 5)",
		Header: []string{"elements", "sets", "OPT", "LP value", "rounded", "greedy", "rounded/OPT", "bound 16·ln n"},
	}
	for _, s := range sizes {
		sc := combopt.RandomSetCover(s.n, s.m, 0.35, rng)
		p := reductions.FromSetCoverCardinality(sc)
		exact, err := secureview.ExactCard(p, 14)
		if err != nil {
			t.Note("(%d,%d): %v", s.n, s.m, err)
			continue
		}
		opt := p.Cost(exact)
		rounded, lpVal, err := secureview.CardinalityLPRound(p,
			secureview.RoundingOptions{Trials: 7, Rng: rand.New(rand.NewSource(42))})
		if err != nil {
			t.Note("(%d,%d): %v", s.n, s.m, err)
			continue
		}
		greedy := secureview.Greedy(p, secureview.Cardinality)
		nMods := float64(p.PrivateCount())
		t.Add(s.n, s.m, opt, lpVal, p.Cost(rounded), p.Cost(greedy),
			p.Cost(rounded)/opt, 16*math.Log(nMods))
	}
	t.Note("paper: O(log n)-approximation, Ω(log n)-hard; OPT equals the set-cover optimum (Lemma in B.4.2)")
	return []*Table{t}
}

func runE9(quick bool) []*Table {
	trials := 6
	if quick {
		trials = 3
	}
	rng := rand.New(rand.NewSource(9))
	t := &Table{
		Title:  "E9: ℓmax rounding on label-cover gadgets (Theorem 6)",
		Header: []string{"trial", "ℓmax", "LC OPT", "SV OPT", "LP value", "rounded", "rounded/OPT"},
	}
	for i := 0; i < trials; i++ {
		lc := combopt.RandomLabelCover(2, 2, 2, 1+rng.Intn(2), 1+rng.Intn(3), rng)
		p := reductions.FromLabelCoverSet(lc)
		exact, err := secureview.ExactSet(p, 1<<22)
		if err != nil {
			t.Note("trial %d: %v", i, err)
			continue
		}
		opt := p.Cost(exact)
		rounded, lpVal, err := secureview.SetLPRound(p)
		if err != nil {
			t.Note("trial %d: %v", i, err)
			continue
		}
		lcOpt := lc.Exact().Cost()
		t.Add(i, p.LMax(secureview.Set), lcOpt, opt, lpVal, p.Cost(rounded), p.Cost(rounded)/opt)
	}
	t.Note("paper: ℓmax-approximation (B.5.1); SV OPT equals LC OPT exactly (Lemma 5)")
	return []*Table{t}
}

func runE10(quick bool) []*Table {
	rng := rand.New(rand.NewSource(10))
	t := &Table{
		Title:  "E10: bounded data sharing — greedy vs exact (Theorem 7)",
		Header: []string{"instance", "γ", "OPT", "greedy", "ratio", "bound γ+1"},
	}
	g := combopt.RandomCubicGraph(4, rng)
	p := reductions.FromVertexCoverNoSharing(g)
	exact, err := secureview.ExactCard(p, 18)
	if err == nil {
		greedy := secureview.Greedy(p, secureview.Cardinality)
		k := len(g.ExactVertexCover())
		t.Add("cubic VC (K4)", p.DataSharing(), p.Cost(exact), p.Cost(greedy),
			p.Cost(greedy)/p.Cost(exact), p.DataSharing()+1)
		t.Note("vertex-cover correspondence: OPT = |E|+K = %d+%d = %v (Lemma 6)",
			len(g.Edges), k, p.Cost(exact))
	}
	n := 8
	if quick {
		n = 5
	}
	for _, share := range []int{1, 2, 3} {
		sumRatio, cnt := 0.0, 0
		for trial := 0; trial < 5; trial++ {
			rp := randomShared(n, share, rng)
			exact, err := secureview.ExactSet(rp, 1<<22)
			if err != nil {
				continue
			}
			greedy := secureview.Greedy(rp, secureview.Set)
			if oc := rp.Cost(exact); oc > 0 {
				sumRatio += rp.Cost(greedy) / oc
				cnt++
			}
		}
		if cnt > 0 {
			t.Add(fmt.Sprintf("random chain n=%d", n), share, "-", "-", sumRatio/float64(cnt), share+1)
		}
	}
	return []*Table{t}
}

func runE11(quick bool) []*Table {
	t := &Table{
		Title:  "E11: public-module leaks and privatization (Examples 7–8, Theorem 8)",
		Header: []string{"scenario", "|OUT| public visible", "|OUT| privatized", "Γ target", "leak?", "repaired?"},
	}
	// Constant upstream.
	mPub := module.Constant("mprime", relation.Bools("i0"), relation.Bools("u1", "u2"), relation.Tuple{0, 1}).AsPublic()
	mPriv := module.Identity("m", []string{"u1", "u2"}, []string{"v1", "v2"})
	w := workflow.MustNew("ex7", mPub, mPriv)
	hidden := relation.NewNameSet("u1")
	visible := relation.NewNameSet(w.Schema().Names()...).Minus(hidden)
	r := w.MustRelation()
	e := &worlds.Enumerator{W: w, R: r, Visible: visible}
	out1, _ := e.OutSet("m", relation.Tuple{0, 1})
	ep := &worlds.Enumerator{W: w, R: r, Visible: visible, Privatized: relation.NewNameSet("mprime")}
	out2, _ := ep.OutSet("m", relation.Tuple{0, 1})
	t.Add("constant upstream", len(out1), len(out2), 2, len(out1) < 2, len(out2) >= 2)

	// Invertible downstream.
	mPriv2 := module.Identity("m", []string{"i0"}, []string{"u"})
	mPub2 := module.Complement("mpp", []string{"u"}, []string{"v"}).AsPublic()
	w2 := workflow.MustNew("ex7b", mPriv2, mPub2)
	hidden2 := relation.NewNameSet("u")
	visible2 := relation.NewNameSet(w2.Schema().Names()...).Minus(hidden2)
	r2 := w2.MustRelation()
	e2 := &worlds.Enumerator{W: w2, R: r2, Visible: visible2}
	o1, _ := e2.OutSet("m", relation.Tuple{0})
	e2p := &worlds.Enumerator{W: w2, R: r2, Visible: visible2, Privatized: relation.NewNameSet("mpp")}
	o2, _ := e2p.OutSet("m", relation.Tuple{0})
	t.Add("invertible downstream", len(o1), len(o2), 2, len(o1) < 2, len(o2) >= 2)
	t.Note("paper: standalone-safe sets stop being safe next to public modules; privatization restores privacy")
	return []*Table{t}
}

func runE12(quick bool) []*Table {
	rng := rand.New(rand.NewSource(12))
	sizes := []int{4, 6, 8}
	if quick {
		sizes = sizes[:2]
	}
	t := &Table{
		Title:  "E12: general workflows without sharing ≡ set cover (Theorem 9)",
		Header: []string{"elements", "sets", "γ", "set-cover OPT", "SV OPT", "greedy", "greedy/OPT"},
	}
	for _, n := range sizes {
		sc := combopt.RandomSetCover(n, n+1, 0.4, rng)
		p := reductions.FromSetCoverGeneral(sc)
		exact, err := secureview.ExactSet(p, 1<<22)
		if err != nil {
			t.Note("n=%d: %v", n, err)
			continue
		}
		greedy := secureview.Greedy(p, secureview.Set)
		opt := float64(len(sc.Exact()))
		ratio := 0.0
		if p.Cost(exact) > 0 {
			ratio = p.Cost(greedy) / p.Cost(exact)
		}
		t.Add(n, len(sc.Sets), p.DataSharing(), opt, p.Cost(exact), p.Cost(greedy), ratio)
	}
	t.Note("paper: Ω(log n)-hard even with γ=1 — privatization sharing replaces data sharing")
	return []*Table{t}
}

func runE13(quick bool) []*Table {
	rng := rand.New(rand.NewSource(13))
	trials := 4
	if quick {
		trials = 2
	}
	t := &Table{
		Title:  "E13: general cardinality ≡ label cover (Theorem 10)",
		Header: []string{"trial", "γ", "LC OPT", "SV OPT", "equal", "greedy", "greedy/OPT"},
	}
	for i := 0; i < trials; i++ {
		lc := combopt.RandomLabelCover(2, 1, 2, 1, 2, rng)
		p := reductions.FromLabelCoverGeneral(lc)
		exact, err := secureview.ExactCard(p, 16)
		if err != nil {
			t.Note("trial %d: %v", i, err)
			continue
		}
		lcOpt := float64(lc.Exact().Cost())
		svOpt := p.Cost(exact)
		greedy := secureview.Greedy(p, secureview.Cardinality)
		ratio := 0.0
		if svOpt > 0 {
			ratio = p.Cost(greedy) / svOpt
		}
		t.Add(i, p.DataSharing(), lcOpt, svOpt, lcOpt == svOpt, p.Cost(greedy), ratio)
	}
	t.Note("paper: Ω(2^(log^(1-γ) n))-hard to approximate; all cost is privatization (Lemma 8)")
	return []*Table{t}
}

func runE14(quick bool) []*Table {
	t := &Table{
		Title:  "E14: assembly theorem verified by exhaustive world enumeration",
		Header: []string{"workflow", "Γ", "hidden set", "modules verified Γ-workflow-private"},
	}
	w := workflow.Fig1()
	costs := privacy.Uniform(w.Schema().Names()...)
	p, err := secureview.DeriveSet(w, 2, costs, nil)
	if err != nil {
		t.Note("derive: %v", err)
		return []*Table{t}
	}
	sol, err := secureview.ExactSet(p, 1<<22)
	if err != nil {
		t.Note("solve: %v", err)
		return []*Table{t}
	}
	visible := relation.NewNameSet(w.Schema().Names()...).Minus(sol.Hidden)
	e := &worlds.Enumerator{W: w, R: w.MustRelation(), Visible: visible}
	verified := 0
	for _, m := range w.Modules() {
		ok, err := e.IsWorkflowPrivate(m.Name(), 2)
		if err == nil && ok {
			verified++
		}
	}
	t.Add("fig1", 2, sol.Hidden.String(), fmt.Sprintf("%d/%d", verified, len(w.Modules())))
	t.Note("paper: Theorem 4 — standalone safe sets assemble into workflow privacy")
	return []*Table{t}
}

func runE15(quick bool) []*Table {
	ms := []float64{10, 100, 1000}
	if quick {
		ms = ms[:2]
	}
	t := &Table{
		Title:  "E15: integrality-gap ablation of the Figure 3 IP (B.4.1)",
		Header: []string{"M", "weak LP", "full LP", "IP optimum", "IP/weak", "IP/full"},
	}
	for _, m := range ms {
		p := gapGadget(m)
		weak, err1 := secureview.CardinalityLPValue(p, secureview.WeakForm)
		full, err2 := secureview.CardinalityLPValue(p, secureview.FullForm)
		exact, err3 := secureview.ExactCard(p, 10)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Note("M=%v: %v %v %v", m, err1, err2, err3)
			continue
		}
		ip := p.Cost(exact)
		weakRatio := math.Inf(1)
		if weak > 1e-9 {
			weakRatio = ip / weak
		}
		t.Add(m, weak, full, ip, weakRatio, ip/full)
	}
	t.Note("paper: dropping constraints (6)/(7) and the (4)/(5) summations yields unbounded gaps")
	return []*Table{t}
}

func gapGadget(m float64) *secureview.Problem {
	return &secureview.Problem{
		Modules: []secureview.ModuleSpec{{
			Name:    "m",
			Inputs:  []string{"i1", "i2", "i3", "i4"},
			Outputs: []string{"o1", "o2", "o3", "o4"},
			CardList: []secureview.CardReq{
				{Alpha: 4, Beta: 0},
				{Alpha: 0, Beta: 4},
			},
		}},
		Costs: privacy.Costs{
			"i1": 0, "i2": 0, "i3": m, "i4": m,
			"o1": 0, "o2": 0, "o3": m, "o4": m,
		},
	}
}

func runE16(quick bool) []*Table {
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	if quick {
		fractions = []float64{0.5, 1.0}
	}
	rng := rand.New(rand.NewSource(16))
	w := workflow.Fig1()
	costs := privacy.Uniform(w.Schema().Names()...)
	all := relation.AllTuples(relation.MustSchema(w.InitialInputs()...))
	t := &Table{
		Title:  "E16: secure-view cost when deriving from partial execution logs (Fig. 1, Γ=2)",
		Header: []string{"log fraction", "executions", "optimal cost", "vs full-domain"},
	}
	fullProb, err := secureview.Derive(w, secureview.DeriveOptions{Gamma: 2, Costs: costs})
	if err != nil {
		t.Note("full derive: %v", err)
		return []*Table{t}
	}
	fullSol, err := secureview.ExactSet(fullProb, 1<<22)
	if err != nil {
		t.Note("full solve: %v", err)
		return []*Table{t}
	}
	fullCost := fullProb.Cost(fullSol)
	for _, f := range fractions {
		n := int(f * float64(len(all)))
		if n < 1 {
			n = 1
		}
		perm := rng.Perm(len(all))
		inputs := make([]relation.Tuple, 0, n)
		for _, i := range perm[:n] {
			inputs = append(inputs, all[i])
		}
		rec, err := w.RelationOver(inputs)
		if err != nil {
			t.Note("f=%v: %v", f, err)
			continue
		}
		p, err := secureview.Derive(w, secureview.DeriveOptions{Gamma: 2, Costs: costs, Recorded: rec})
		if err != nil {
			t.Add(fmt.Sprintf("%.2f", f), n, "infeasible", "-")
			continue
		}
		sol, err := secureview.ExactSet(p, 1<<22)
		if err != nil {
			t.Note("f=%v: %v", f, err)
			continue
		}
		c := p.Cost(sol)
		t.Add(fmt.Sprintf("%.2f", f), n, c, c/fullCost)
	}
	t.Note("paper §1: R is \"the set of workflow executions that have been run\"; partial logs can need MORE hiding (fewer rows ⇒ fewer distinct outputs ⇒ smaller OUT sets)")
	t.Note("even the complete log (fraction 1.00) differs from the full-domain baseline: it derives from the reachable module inputs π_{Ii∪Oi}(R) ⊆ Ri (paper §4, first paragraph)")
	return []*Table{t}
}

func runE17(quick bool) []*Table {
	sizes := []int{4, 6, 8}
	if quick {
		sizes = sizes[:2]
	}
	rng := rand.New(rand.NewSource(17))
	t := &Table{
		Title:  "E17: exact-solver ablation on set-cover gadgets (enumeration vs branch-and-bound)",
		Header: []string{"elements", "sets", "useful attrs", "enum ms", "BB ms", "costs equal"},
	}
	for _, n := range sizes {
		sc := combopt.RandomSetCover(n, n, 0.35, rng)
		p := reductions.FromSetCoverCardinality(sc)
		start := time.Now()
		enum, err1 := secureview.ExactCard(p, 16)
		enumMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		bb, err2 := secureview.ExactCardBB(p, 1<<22)
		bbMS := float64(time.Since(start).Microseconds()) / 1000
		if err1 != nil || err2 != nil {
			t.Note("n=%d: %v %v", n, err1, err2)
			continue
		}
		t.Add(n, len(sc.Sets), len(sc.Sets), enumMS, bbMS, p.Cost(enum) == p.Cost(bb))
	}
	t.Note("both are optimal; BB prunes via per-module completion bounds (DESIGN.md §5)")
	return []*Table{t}
}

func runE18(quick bool) []*Table {
	skews := []float64{0.5, 0.6, 0.75, 0.9, 0.99}
	if quick {
		skews = []float64{0.5, 0.9}
	}
	mv := privacy.NewModuleView(module.Fig1M1())
	v := relation.NewNameSet("a1", "a3", "a5") // Γ=4 safe view of Example 3
	x := relation.Tuple{0, 0}
	t := &Table{
		Title:  "E18: adversary guess probability under skewed priors on hidden a4 (m1, Γ=4 view)",
		Header: []string{"P(a4=0)", "guess probability", "uniform bound 1/Γ", "exceeds 1/Γ"},
	}
	for _, s := range skews {
		prior := privacy.Prior{"a4": []float64{s, 1 - s}}
		g, err := mv.GuessProbability(v, x, prior)
		if err != nil {
			t.Note("skew %v: %v", s, err)
			continue
		}
		t.Add(s, g, 0.25, g > 0.25+1e-12)
	}
	t.Note("paper §6: \"the effect of knowledge of a possibly non-uniform prior ... should be explored\"; Γ-privacy's 1/Γ guess bound assumes uniform priors and degrades smoothly with skew")
	return []*Table{t}
}

func runE19(quick bool) []*Table {
	sizes := []int{10, 20, 40, 80, 160}
	if quick {
		sizes = []int{10, 20}
	}
	t := &Table{
		Title:  "E19: solver scaling on random chain instances (set constraints, share ≤ 2)",
		Header: []string{"n modules", "γ", "greedy cost", "greedy ms", "LP cost", "LP ms", "exact cost", "LP/greedy"},
	}
	for _, n := range sizes {
		p := gen.Problem(gen.ProblemConfig{Modules: n, MaxInputs: 2, Outputs: 1, Share: 2, Singletons: true}, 19+int64(n))
		start := time.Now()
		greedy := secureview.Greedy(p, secureview.Set)
		gMS := float64(time.Since(start).Microseconds()) / 1000
		gc := p.Cost(greedy)

		start = time.Now()
		rounded, _, err := secureview.SetLPRound(p)
		lMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Note("n=%d: %v", n, err)
			continue
		}
		rc := p.Cost(rounded)

		exactCost := "-"
		if n <= 12 {
			exact, err := secureview.ExactSet(p, 1<<22)
			if err == nil {
				exactCost = fmt.Sprintf("%.4g", p.Cost(exact))
			}
		}
		ratio := 0.0
		if gc > 0 {
			ratio = rc / gc
		}
		t.Add(n, p.DataSharing(), gc, gMS, rc, lMS, exactCost, ratio)
	}
	t.Note("shape expectation: greedy is linear-time and within (γ+1)×OPT here (Theorem 7); LP rounding pays simplex time but tracks the LP lower bound")
	return []*Table{t}
}

// runE20 measures what the internal/search engine buys over the naive
// Lemma 4 / Algorithm 2 loop: identical optimal costs with far fewer safety
// tests, thanks to cost-ordered exploration plus Proposition 1 pruning (and
// a worker pool on multi-core hosts). The cost model is the paper's natural
// one — hiding inputs costs more utility than hiding outputs — which is
// exactly where the naive loop's numeric scan order wastes its tests: cheap
// solutions live on the high (output) mask bits, so the naive loop burns an
// enormous prefix of the space before its cost bound engages (Theorem 3
// says the worst case stays exponential for everyone).
func runE20(quick bool) []*Table {
	ks := []int{8, 10, 12, 14}
	if quick {
		ks = []int{8, 10}
	}
	rng := rand.New(rand.NewSource(20))
	t := &Table{
		Title:  "E20: pruned parallel search vs naive brute force (random modules, c(input)=4, c(output)=1, Γ = 2^(k/2-1))",
		Header: []string{"k attrs", "Γ", "naive checked", "naive ms", "engine checked", "engine pruned", "engine ms", "check ratio", "speedup", "costs equal"},
	}
	for _, k := range ks {
		nIn := k / 2
		in := make([]string, nIn)
		for i := range in {
			in[i] = fmt.Sprintf("x%d", i)
		}
		out := make([]string, k-nIn)
		for i := range out {
			out[i] = fmt.Sprintf("y%d", i)
		}
		m := module.Random("m", relation.Bools(in...), relation.Bools(out...), rng)
		mv := privacy.NewModuleView(m)
		costs := make(privacy.Costs, k)
		for _, a := range in {
			costs[a] = 4
		}
		for _, a := range out {
			costs[a] = 1
		}
		gamma := uint64(1) << (k/2 - 1)

		sp, err := search.NewSpace(mv.Attrs(), costs.Of)
		if err != nil {
			t.Note("k=%d: %v", k, err)
			continue
		}
		safetyTest := func(v search.Mask) (bool, error) { return mv.IsSafe(sp.NameSet(v), gamma) }

		start := time.Now()
		naive, err := sp.NaiveMinCost(safetyTest)
		naiveMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Note("k=%d naive: %v", k, err)
			continue
		}
		start = time.Now()
		engine, err := sp.MinCost(safetyTest, search.Options{})
		engineMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Note("k=%d engine: %v", k, err)
			continue
		}
		ratio := 0.0
		if naive.Stats.Checked > 0 {
			ratio = float64(naive.Stats.Checked) / math.Max(1, float64(engine.Stats.Checked))
		}
		speedup := 0.0
		if engineMS > 0 {
			speedup = naiveMS / engineMS
		}
		equal := naive.Found == engine.Found && (!naive.Found || naive.Cost == engine.Cost)
		t.Add(k, gamma, naive.Stats.Checked, naiveMS, engine.Stats.Checked,
			engine.Stats.Pruned, engineMS, ratio, speedup, equal)
	}
	t.Note("paper: Theorem 3 lower-bounds ANY algorithm at 2^Ω(k) tests; Proposition 1 monotonicity + cost ordering is what makes the practical cases cheap")
	return []*Table{t}
}

// SearchBenchInstance builds the standard oracle-bound benchmark instance
// shared by E20/E21, BenchmarkStandaloneSearch, BenchmarkCompiledOracle and
// the -benchjson trajectory of cmd/secureview-bench: a k-attribute random
// module with k/2 inputs, input hiding 4× more expensive than output hiding
// (the paper's natural utility model), and Γ forcing the optimum to hide
// most outputs — the regime where safety tests dominate wall-clock.
func SearchBenchInstance(k int) (privacy.ModuleView, privacy.Costs, uint64) {
	m, costs, gamma := searchBenchModule(k)
	return privacy.NewModuleView(m), costs, gamma
}

// SearchBenchWorkflow wraps the same standard benchmark instance in a
// single-module workflow, so session-level machinery (derivation caching,
// snapshot/restore, the HTTP serving path) can be measured on exactly the
// instances the standalone-search rows use.
func SearchBenchWorkflow(k int) (*workflow.Workflow, privacy.Costs, uint64) {
	m, costs, gamma := searchBenchModule(k)
	w, err := workflow.New(fmt.Sprintf("searchbench-%d", k), m)
	if err != nil {
		panic(fmt.Sprintf("exp: SearchBenchWorkflow(%d): %v", k, err))
	}
	return w, costs, gamma
}

func searchBenchModule(k int) (*module.Module, privacy.Costs, uint64) {
	rng := rand.New(rand.NewSource(int64(k)))
	nIn := k / 2
	in := make([]string, nIn)
	for i := range in {
		in[i] = fmt.Sprintf("x%d", i)
	}
	out := make([]string, k-nIn)
	for i := range out {
		out[i] = fmt.Sprintf("y%d", i)
	}
	m := module.Random("m", relation.Bools(in...), relation.Bools(out...), rng)
	costs := make(privacy.Costs, k)
	for _, a := range in {
		costs[a] = 4
	}
	for _, a := range out {
		costs[a] = 1
	}
	gamma := uint64(1) << (k - nIn - 1)
	return m, costs, gamma
}

// runE21 measures what compiling the safety oracle buys inside the engine
// search (the ISSUE 2 tentpole): the same pruned parallel exploration, with
// each surviving candidate's Lemma 4 test answered either by the
// interpreted path (schema resolution, string-keyed grouping, relation
// scans per call) or by the compiled integer-coded oracle (rows packed to
// uint64 codes once, each test a sort-and-scan with zero steady-state
// allocation). Optimal hidden sets and costs must be identical.
func runE21(quick bool) []*Table {
	ks := []int{10, 12, 14, 16}
	if quick {
		ks = []int{10, 12}
	}
	t := &Table{
		Title:  "E21: compiled integer-coded oracle vs interpreted Lemma 4 tests (engine search, c(input)=4, c(output)=1, Γ = 2^(k/2-1))",
		Header: []string{"k attrs", "rows", "Γ", "checked", "interp ms", "compiled ms", "speedup", "results equal"},
	}
	for _, k := range ks {
		mv, costs, gamma := SearchBenchInstance(k)
		sp, err := search.NewSpace(mv.Attrs(), costs.Of)
		if err != nil {
			t.Note("k=%d: %v", k, err)
			continue
		}
		interp := func(v search.Mask) (bool, error) { return mv.IsSafe(sp.NameSet(v), gamma) }
		comp, err := mv.Compile()
		if err != nil {
			t.Note("k=%d compile: %v", k, err)
			continue
		}
		compiled := func(v search.Mask) (bool, error) { return comp.IsSafe(oracle.Mask(v), gamma), nil }

		start := time.Now()
		ri, err := sp.MinCost(interp, search.Options{})
		interpMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Note("k=%d interpreted: %v", k, err)
			continue
		}
		start = time.Now()
		rc, err := sp.MinCost(compiled, search.Options{})
		compiledMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Note("k=%d compiled: %v", k, err)
			continue
		}
		speedup := 0.0
		if compiledMS > 0 {
			speedup = interpMS / compiledMS
		}
		equal := ri.Found == rc.Found && ri.Hidden == rc.Hidden && ri.Cost == rc.Cost
		t.Add(k, mv.Rel.Len(), gamma, rc.Stats.Checked, interpMS, compiledMS, speedup, equal)
	}
	t.Note("compile once per search, share across the worker pool: rows become uint64 input/output codes and each safety test is a few integer ops (internal/oracle)")
	return []*Table{t}
}

// runE22 sweeps the canonical generated topology classes (internal/gen)
// through the cross-solver differential harness (internal/gen/diff): every
// applicable solver on every instance, with the paper's invariants checked
// — exact == branch-and-bound == engine, greedy/LP feasibility plus
// approximation bounds, compiled-vs-interpreted oracle agreement on every
// subset, and exhaustive possible-world verification on the small
// instances. The violations column must read 0 everywhere.
func runE22(quick bool) []*Table {
	workflowSeeds, problemSeeds := int64(6), int64(25)
	if quick {
		workflowSeeds, problemSeeds = 2, 6
	}
	// One solve.Session across the sweep: the harness runs entirely through
	// the internal/solve registry, and derivations/compiled oracles are
	// shared across instances the way a long-lived service would share them.
	sess := solve.NewSession()
	t1 := &Table{
		Title:  "E22a: differential harness over generated workflow classes",
		Header: []string{"class", "instances", "exact", "solver runs", "oracle masks", "worlds verified", "max greedy/OPT", "max LP/OPT", "violations"},
	}
	for _, cl := range gen.Classes() {
		var rs []diff.Result
		for seed := int64(0); seed < workflowSeeds; seed++ {
			it, err := gen.New(cl.Cfg, seed)
			if err != nil {
				t1.Note("%s seed %d: %v", cl.Name, seed, err)
				continue
			}
			rs = append(rs, diff.CheckInstance(it, diff.Options{Session: sess}))
		}
		r := diff.Merge(rs...)
		t1.Add(cl.Name, r.Instances, r.Exact, r.SolverRuns, r.OracleMasks,
			r.WorldsVerified, r.MaxGreedyRatio, r.MaxLPRatio, len(r.Violations))
		for _, v := range r.Violations {
			t1.Note("VIOLATION %s", v)
		}
	}
	t2 := &Table{
		Title:  "E22b: differential harness over generated abstract instance classes",
		Header: []string{"class", "instances", "solver runs", "max greedy/OPT", "bound (mult)", "max LP/OPT", "violations"},
	}
	for _, pc := range gen.ProblemClasses() {
		var rs []diff.Result
		maxMult := 0
		for seed := int64(0); seed < problemSeeds; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			if m := p.Multiplicity(); m > maxMult {
				maxMult = m
			}
			rs = append(rs, diff.CheckProblem(pc.Name, p, diff.Options{}))
		}
		r := diff.Merge(rs...)
		t2.Add(pc.Name, r.Instances, r.SolverRuns, r.MaxGreedyRatio, maxMult, r.MaxLPRatio, len(r.Violations))
		for _, v := range r.Violations {
			t2.Note("VIOLATION %s", v)
		}
	}
	t2.Note("invariants: greedy/LP feasible and >= OPT, greedy <= multiplicity×OPT on all-private instances (Theorem 7), rounded <= ℓmax×LP (Theorem 6), LP <= OPT, exact == BB == engine, compiled ≡ interpreted oracle, worlds-verified on small instances")
	return []*Table{t1, t2}
}

// runE23 times the solver matrix across generated instance SHAPES — the
// scenario counterpart of E19's size scaling: the same solvers meet chains,
// trees and layered DAGs with different sharing, function kinds and cost
// models, instead of one hand-written family. Every solver runs through the
// internal/solve registry; derivations go through a shared solve.Session
// (each (class, seed) is a distinct fingerprint, so the timed calls are all
// cache misses — the session is exercised, not flattered).
func runE23(quick bool) []*Table {
	reps := 3
	if quick {
		reps = 1
	}
	ctx := context.Background()
	sess := solve.NewSession()
	t := &Table{
		Title:  "E23: solver wall-clock across generated topology classes (medians over seeds)",
		Header: []string{"class", "modules", "attrs", "γ", "ℓmax", "derive ms", "greedy ms", "LP ms", "exact ms", "exact<=greedy"},
	}
	for _, cl := range gen.Classes() {
		var deriveMS, greedyMS, lpMS, exactMS []float64
		var modsR, attrsR, lmaxR intRange
		agree, compared := true, 0
		var gamma uint64
		for seed := int64(0); seed < int64(reps); seed++ {
			it, err := gen.New(cl.Cfg, seed)
			if err != nil {
				t.Note("%s seed %d: %v", cl.Name, seed, err)
				continue
			}
			modsR.add(len(it.W.Modules()))
			attrsR.add(it.W.Schema().Len())
			gamma = it.Gamma
			start := time.Now()
			p, err := sess.Problem(ctx, it.W, secureview.Set, it.Gamma, it.Costs, it.PrivatizeCosts)
			deriveMS = append(deriveMS, float64(time.Since(start).Microseconds())/1000)
			if err != nil {
				continue
			}
			lmaxR.add(p.LMax(secureview.Set))
			sOpts := solve.Options{Variant: secureview.Set}

			start = time.Now()
			greedy, gErr := solve.Solve(ctx, "greedy", p, sOpts)
			greedyMS = append(greedyMS, float64(time.Since(start).Microseconds())/1000)

			start = time.Now()
			_, lpErr := solve.Solve(ctx, "lp", p, sOpts)
			lpMS = append(lpMS, float64(time.Since(start).Microseconds())/1000)

			start = time.Now()
			exact, exErr := solve.Solve(ctx, "exact", p, sOpts)
			exactMS = append(exactMS, float64(time.Since(start).Microseconds())/1000)
			if gErr != nil || lpErr != nil || exErr != nil {
				t.Note("%s seed %d: greedy=%v lp=%v exact=%v", cl.Name, seed, gErr, lpErr, exErr)
				continue
			}
			compared++
			if exact.Cost > greedy.Cost+1e-9*(1+greedy.Cost) {
				agree = false
			}
		}
		if len(deriveMS) == 0 {
			t.Note("%s: no seed generated an instance", cl.Name)
			continue
		}
		agreeCell := "-" // no seed got both solvers to an answer
		if compared > 0 {
			agreeCell = fmt.Sprint(agree)
		}
		t.Add(cl.Name, modsR, attrsR, gamma, lmaxR, median(deriveMS), median(greedyMS),
			median(lpMS), median(exactMS), agreeCell)
	}
	t.Note("derive dominates on executable workflows (per-module 2^k engine sweeps); the solver mix then costs microseconds at these sizes — scenario BREADTH, not size, is what this experiment buys")
	return []*Table{t}
}

// intRange accumulates an int statistic across seeds and renders "v" when
// constant or "lo-hi" when the instance shape varies by seed (tree
// topologies, e.g., may add fallback inputs for some seeds).
type intRange struct {
	lo, hi int
	set    bool
}

func (r *intRange) add(v int) {
	if !r.set || v < r.lo {
		r.lo = v
	}
	if !r.set || v > r.hi {
		r.hi = v
	}
	r.set = true
}

func (r intRange) String() string {
	if !r.set {
		return "-"
	}
	if r.lo == r.hi {
		return fmt.Sprint(r.lo)
	}
	return fmt.Sprintf("%d-%d", r.lo, r.hi)
}

// median returns the median of xs (0 when empty).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// randomShared builds a random all-private set-constraint instance whose
// data sharing is bounded by share.
func randomShared(n, share int, rng *rand.Rand) *secureview.Problem {
	p := &secureview.Problem{Costs: privacy.Costs{}}
	type prod struct {
		name      string
		consumers int
	}
	var avail []prod
	avail = append(avail, prod{"src", 0})
	p.Costs["src"] = 1 + rng.Float64()*4
	for i := 0; i < n; i++ {
		// Pick an available producer with spare sharing capacity.
		var in []string
		for tries := 0; tries < 10 && len(in) == 0; tries++ {
			j := rng.Intn(len(avail))
			if avail[j].consumers < share {
				avail[j].consumers++
				in = append(in, avail[j].name)
			}
		}
		if len(in) == 0 {
			in = append(in, "src")
		}
		out := fmt.Sprintf("d%d", i)
		p.Costs[out] = 1 + rng.Float64()*4
		setList := []secureview.SetReq{{Out: []string{out}}, {In: []string{in[0]}}}
		p.Modules = append(p.Modules, secureview.ModuleSpec{
			Name: fmt.Sprintf("m%d", i), Inputs: in, Outputs: []string{out},
			SetList: setList,
		})
		avail = append(avail, prod{out, 0})
	}
	return p
}
