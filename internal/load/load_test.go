package load_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"secureview/internal/load"
	"secureview/internal/server"
)

func TestRunValidation(t *testing.T) {
	if _, err := load.Run(load.Config{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
}

// TestRunMixedWorkload drives the generator against a real in-process
// server: no errors, every workload shape exercised, warm chaining
// observed, and the percentile rows ordered sanely.
func TestRunMixedWorkload(t *testing.T) {
	s := server.MustNew(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := load.Run(load.Config{
		BaseURL:  ts.URL,
		Duration: 1200 * time.Millisecond,
		Workers:  3,
		Seed:     7,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run produced %d errors: %+v", rep.Errors, rep)
	}
	if rep.Requests == 0 || rep.Solves == 0 || rep.Batches == 0 || rep.EditSteps == 0 {
		t.Fatalf("workload shape missing: %+v", rep)
	}
	if rep.Requests != rep.Solves+rep.Batches+rep.EditSteps {
		t.Fatalf("request accounting off: %+v", rep)
	}
	// Edit chains re-solve the same structure per worker; all but each
	// worker's first step must resume warm.
	if rep.Warm == 0 {
		t.Fatalf("no edit-chain response resumed warm: %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P50Ms > rep.P99Ms || rep.P99Ms > rep.MaxMs {
		t.Fatalf("percentiles disordered: p50=%g p99=%g max=%g", rep.P50Ms, rep.P99Ms, rep.MaxMs)
	}
	if rep.RequestsPerSecond <= 0 {
		t.Fatalf("throughput %g", rep.RequestsPerSecond)
	}
	// The deterministic seed streams hit the same few generated instances
	// over and over; the shared session must show cache reuse.
	if st := s.Session().Stats(); st.Hits == 0 {
		t.Fatalf("no session cache reuse under load: %+v", st)
	}
}
