// Package load drives a mixed workload against a running secureview-serve
// instance and reports what a capacity plan needs: latency percentiles,
// throughput, and how the server sheds (429) or fails (5xx) under pressure.
//
// The workload mixes the request shapes the server optimizes for:
//
//   - single solves of generated (class, seed) scenarios — the cache-miss
//     and cache-hit steady state — with a slice of committed-corpus IDs
//     mixed in (hard instances under cheap certified solvers);
//   - batches of generated jobs — the admission-weight path;
//   - edit chains over a spec document — cost-only edits chaining each
//     response's fingerprint into the next request's base, the warm-start
//     path (the report counts how many responses actually resumed).
//
// Every worker runs its own deterministic RNG stream, so a given (seed,
// workers, duration) triple replays the same request sequence against
// comparable servers.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"secureview/internal/gen"
	"secureview/internal/gen/corpus"
)

// Config parameterizes a run. BaseURL is required; zero values elsewhere
// take the defaults documented per field.
type Config struct {
	// BaseURL is the server under load, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Duration is the wall-clock run length (default 5s).
	Duration time.Duration
	// Workers is the number of concurrent clients (default 4).
	Workers int
	// Seed shuffles the per-worker request streams (default 1).
	Seed int64
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

// Report is the run summary, JSON-shaped for scripting. Latency rows cover
// successful (2xx) requests only — 429 rejections return in microseconds
// and would drag the percentiles into fiction.
type Report struct {
	DurationSeconds float64 `json:"durationSeconds"`
	Workers         int     `json:"workers"`
	// Requests counts completed HTTP round trips of any status; Solves,
	// Batches and EditSteps split them by workload shape.
	Requests  int64 `json:"requests"`
	Solves    int64 `json:"solves"`
	Batches   int64 `json:"batches"`
	EditSteps int64 `json:"editSteps"`
	// Warm counts edit-chain responses that actually resumed from their base.
	Warm int64 `json:"warmResponses"`
	// Rejected counts 429s (load shed at admission — expected under
	// saturation); Errors counts transport failures, 5xx and unexpected 4xx.
	Rejected int64 `json:"rejected429"`
	Errors   int64 `json:"errors"`
	// RequestsPerSecond is completed round trips over the true elapsed time.
	RequestsPerSecond float64 `json:"requestsPerSecond"`
	P50Ms             float64 `json:"p50Ms"`
	P99Ms             float64 `json:"p99Ms"`
	MaxMs             float64 `json:"maxMs"`
}

// editDoc is the all-private spec document the edit chains mutate: a single
// private table module over four binary attributes, engine-solvable so
// base-chaining exercises the real warm-start tier.
const editDoc = `{
  "name": "loadgen-edit",
  "gamma": 2,
  "costs": {"a1": %g, "a2": %g, "b1": %g, "b2": %g},
  "modules": [
    {
      "name": "mix", "visibility": "private",
      "inputs":  [{"name": "a1", "domain": 2}, {"name": "a2", "domain": 2}],
      "outputs": [{"name": "b1", "domain": 2}, {"name": "b2", "domain": 2}],
      "kind": "table",
      "table": [
        {"in": [0, 0], "out": [0, 0]},
        {"in": [0, 1], "out": [1, 0]},
        {"in": [1, 0], "out": [1, 1]},
        {"in": [1, 1], "out": [0, 1]}
      ]
    }
  ]
}`

// worker carries one client goroutine's private state and tallies.
type worker struct {
	cfg     Config
	client  *http.Client
	rng     *rand.Rand
	classes []string
	corpus  []string

	// Edit-chain state: current costs and the last response's fingerprint.
	costs [4]float64
	base  string
	warm  bool // chain's solver resumed at least once this step

	latencies []float64 // ms, successful requests only
	solves    int64
	batches   int64
	editSteps int64
	warmHits  int64
	rejected  int64
	errors    int64
}

// Run drives the workload until cfg.Duration elapses and returns the
// aggregated report. The only error is a misconfiguration; request-level
// failures are counted, not returned, because a load generator's job is to
// keep pushing.
func Run(cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL is required")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	var classes []string
	for _, c := range gen.Classes() {
		classes = append(classes, c.Name)
	}
	corpusIDs := corpus.IDs()

	workers := make([]*worker, cfg.Workers)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{
			cfg: cfg, client: client, classes: classes, corpus: corpusIDs,
			rng:   rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			costs: [4]float64{1, 2, 3, 4},
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				w.step()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{DurationSeconds: elapsed.Seconds(), Workers: cfg.Workers}
	var lat []float64
	for _, w := range workers {
		rep.Solves += w.solves
		rep.Batches += w.batches
		rep.EditSteps += w.editSteps
		rep.Warm += w.warmHits
		rep.Rejected += w.rejected
		rep.Errors += w.errors
		lat = append(lat, w.latencies...)
	}
	rep.Requests = rep.Solves + rep.Batches + rep.EditSteps
	rep.RequestsPerSecond = float64(rep.Requests) / elapsed.Seconds()
	if len(lat) > 0 {
		sort.Float64s(lat)
		rep.P50Ms = lat[len(lat)/2]
		rep.P99Ms = lat[(len(lat)*99+99)/100-1]
		rep.MaxMs = lat[len(lat)-1]
	}
	return rep, nil
}

// step issues one request of a randomly drawn shape: ~50% single solves,
// ~25% batches, ~25% edit-chain steps.
func (w *worker) step() {
	switch r := w.rng.Intn(4); {
	case r < 2:
		w.solves++
		w.post("/v1/solve", w.generatedJob(), nil)
	case r == 2:
		w.batches++
		jobs := make([]json.RawMessage, 2+w.rng.Intn(3))
		for i := range jobs {
			jobs[i] = w.generatedJob()
		}
		body, _ := json.Marshal(map[string]any{"jobs": jobs})
		w.post("/v1/batch", body, nil)
	default:
		w.editStep()
	}
}

// generatedJob draws a (class, seed) solve over the cheap certified
// solvers, with roughly one request in four naming a committed-corpus
// entry instead — mined hard instances exercise the derivation cache with
// workflows no (class, seed) request produces. A small seed range keeps
// the server's cache in steady state (mostly hits) rather than deriving a
// fresh instance per request.
func (w *worker) generatedJob() json.RawMessage {
	solvers := [...]string{"greedy", "portfolio", "exact"}
	job := map[string]any{
		"solver":  solvers[w.rng.Intn(len(solvers))],
		"variant": "set",
	}
	if n := len(w.corpus); n > 0 && w.rng.Intn(4) == 0 {
		job["corpus"] = w.corpus[w.rng.Intn(n)]
		job["solver"] = "greedy" // corpus entries are hard by construction
	} else {
		job["generated"] = map[string]any{
			"class": w.classes[w.rng.Intn(len(w.classes))],
			"seed":  w.rng.Intn(3),
		}
	}
	body, _ := json.Marshal(job)
	return body
}

// editStep mutates one cost and re-solves with the previous fingerprint as
// base, continuing the chain from the response.
func (w *worker) editStep() {
	w.editSteps++
	w.costs[w.rng.Intn(4)] *= 0.5 + w.rng.Float64()*1.5
	doc := fmt.Sprintf(editDoc, w.costs[0], w.costs[1], w.costs[2], w.costs[3])
	req, _ := json.Marshal(map[string]any{
		"spec":   json.RawMessage(doc),
		"solver": "engine",
		"base":   w.base,
	})
	var resp struct {
		Fingerprint string `json:"fingerprint"`
		Warm        bool   `json:"warm"`
	}
	w.post("/v1/solve", req, &resp)
	if resp.Fingerprint != "" {
		w.base = resp.Fingerprint
	}
	if resp.Warm {
		w.warmHits++
	}
}

// post issues one request, classifies the outcome, and decodes a 2xx body
// into out when non-nil.
func (w *worker) post(path string, body []byte, out any) {
	start := time.Now()
	resp, err := w.client.Post(w.cfg.BaseURL+path, "application/json", bytes.NewReader(body))
	elapsed := time.Since(start)
	if err != nil {
		w.errors++
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		w.rejected++
		io.Copy(io.Discard, resp.Body)
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		w.latencies = append(w.latencies, float64(elapsed.Nanoseconds())/1e6)
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				w.errors++
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
	default:
		w.errors++
		io.Copy(io.Discard, resp.Body)
	}
}
