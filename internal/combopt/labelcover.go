package combopt

import (
	"fmt"
	"math"
	"math/rand"
)

// LabelCover is an instance of the minimum label cover problem (as used by
// the hardness proofs of Theorems 6 and 10): a bipartite graph with left
// vertices 0..NU-1 and right vertices 0..NW-1, a label set {0..L-1}, and a
// non-empty relation per edge. A feasible solution assigns a label set to
// every vertex such that each edge (u,w) has some (l1,l2) in its relation
// with l1 assigned to u and l2 to w. The objective is the total number of
// assigned labels.
type LabelCover struct {
	NU, NW int
	L      int
	Edges  []LCEdge
	// Weights holds one non-negative weight per (vertex, label), indexed
	// like Assignment: rows 0..NU-1 are left vertices, NU..NU+NW-1 right
	// (nil = every label weighs 1). Only the Ctx solvers and CostOf consult
	// it; GreedyAssignment and Exact keep the historical unit-cost
	// objective.
	Weights [][]float64
}

// LCEdge is one edge with its admissible label pairs.
type LCEdge struct {
	U, W int
	Rel  [][2]int
}

// LabelWeight returns the weight of assigning label l to vertex v (the
// Assignment row index), 1 when Weights is nil.
func (lc LabelCover) LabelWeight(v, l int) float64 {
	if lc.Weights == nil {
		return 1
	}
	return lc.Weights[v][l]
}

// CostOf returns the assignment's total label weight.
func (lc LabelCover) CostOf(a Assignment) float64 {
	total := 0.0
	for v, labels := range a {
		for l, on := range labels {
			if on {
				total += lc.LabelWeight(v, l)
			}
		}
	}
	return total
}

// Validate checks ranges, non-emptiness of relations and — when weights are
// present — their shape and non-negativity.
func (lc LabelCover) Validate() error {
	if lc.Weights != nil {
		if len(lc.Weights) != lc.NU+lc.NW {
			return fmt.Errorf("combopt: %d weight rows for %d vertices", len(lc.Weights), lc.NU+lc.NW)
		}
		for v, row := range lc.Weights {
			if len(row) != lc.L {
				return fmt.Errorf("combopt: vertex %d has %d label weights, want %d", v, len(row), lc.L)
			}
			for l, w := range row {
				if w < 0 {
					return fmt.Errorf("combopt: label (%d,%d) has negative weight %g", v, l, w)
				}
			}
		}
	}
	for i, e := range lc.Edges {
		if e.U < 0 || e.U >= lc.NU || e.W < 0 || e.W >= lc.NW {
			return fmt.Errorf("combopt: edge %d endpoints out of range", i)
		}
		if len(e.Rel) == 0 {
			return fmt.Errorf("combopt: edge %d has empty relation", i)
		}
		for _, p := range e.Rel {
			if p[0] < 0 || p[0] >= lc.L || p[1] < 0 || p[1] >= lc.L {
				return fmt.Errorf("combopt: edge %d has label pair %v out of range", i, p)
			}
		}
	}
	return nil
}

// Assignment maps vertices to label sets; index 0..NU-1 are left vertices,
// NU..NU+NW-1 are right vertices.
type Assignment [][]bool

// Cost returns the total number of assigned labels.
func (a Assignment) Cost() int {
	n := 0
	for _, labels := range a {
		for _, on := range labels {
			if on {
				n++
			}
		}
	}
	return n
}

// Feasible reports whether the assignment covers every edge.
func (lc LabelCover) Feasible(a Assignment) bool {
	if len(a) != lc.NU+lc.NW {
		return false
	}
	for _, e := range lc.Edges {
		ok := false
		for _, p := range e.Rel {
			if a[e.U][p[0]] && a[lc.NU+e.W][p[1]] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// GreedyAssignment builds a feasible solution by choosing, for each edge in
// order, the pair adding the fewest new labels. It is a heuristic upper
// bound, not an approximation guarantee.
func (lc LabelCover) GreedyAssignment() Assignment {
	a := lc.emptyAssignment()
	for _, e := range lc.Edges {
		bestPair := e.Rel[0]
		bestNew := math.MaxInt
		for _, p := range e.Rel {
			added := 0
			if !a[e.U][p[0]] {
				added++
			}
			if !a[lc.NU+e.W][p[1]] {
				added++
			}
			if added < bestNew {
				bestNew = added
				bestPair = p
			}
		}
		a[e.U][bestPair[0]] = true
		a[lc.NU+e.W][bestPair[1]] = true
	}
	return a
}

// Exact finds a minimum-cost assignment by branching over the pair chosen
// for each edge, pruning on the incumbent. Exponential; for small
// experiment instances only.
func (lc LabelCover) Exact() Assignment {
	best := lc.GreedyAssignment()
	bestCost := best.Cost()
	a := lc.emptyAssignment()
	cost := 0
	var rec func(i int)
	rec = func(i int) {
		if cost >= bestCost {
			return
		}
		if i == len(lc.Edges) {
			bestCost = cost
			best = cloneAssignment(a)
			return
		}
		e := lc.Edges[i]
		for _, p := range e.Rel {
			du := !a[e.U][p[0]]
			dw := !a[lc.NU+e.W][p[1]]
			if du {
				a[e.U][p[0]] = true
				cost++
			}
			if dw {
				a[lc.NU+e.W][p[1]] = true
				cost++
			}
			rec(i + 1)
			if du {
				a[e.U][p[0]] = false
				cost--
			}
			if dw {
				a[lc.NU+e.W][p[1]] = false
				cost--
			}
		}
	}
	rec(0)
	return best
}

func (lc LabelCover) emptyAssignment() Assignment {
	a := make(Assignment, lc.NU+lc.NW)
	for i := range a {
		a[i] = make([]bool, lc.L)
	}
	return a
}

func cloneAssignment(a Assignment) Assignment {
	c := make(Assignment, len(a))
	for i, row := range a {
		c[i] = append([]bool(nil), row...)
	}
	return c
}

// RandomLabelCover draws a random instance: a bipartite graph with every
// left vertex connected to degree random right vertices, and relations of
// the given size per edge.
func RandomLabelCover(nu, nw, labels, degree, relSize int, rng *rand.Rand) LabelCover {
	lc := LabelCover{NU: nu, NW: nw, L: labels}
	for u := 0; u < nu; u++ {
		perm := rng.Perm(nw)
		d := degree
		if d > nw {
			d = nw
		}
		for _, w := range perm[:d] {
			rel := make([][2]int, 0, relSize)
			seen := make(map[[2]int]bool)
			for len(rel) < relSize {
				p := [2]int{rng.Intn(labels), rng.Intn(labels)}
				if !seen[p] {
					seen[p] = true
					rel = append(rel, p)
				}
			}
			lc.Edges = append(lc.Edges, LCEdge{U: u, W: w, Rel: rel})
		}
	}
	return lc
}
