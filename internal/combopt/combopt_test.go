package combopt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetCoverValidate(t *testing.T) {
	ok := SetCover{N: 3, Sets: [][]int{{0, 1}, {2}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	if err := (SetCover{N: 3, Sets: [][]int{{0, 5}}}).Validate(); err == nil {
		t.Error("out-of-range element accepted")
	}
	if err := (SetCover{N: 3, Sets: [][]int{{0, 1}}}).Validate(); err == nil {
		t.Error("uncoverable universe accepted")
	}
}

func TestSetCoverGreedyAndExact(t *testing.T) {
	// Classic: greedy may pick 3 sets where optimum is 2.
	sc := SetCover{
		N: 6,
		Sets: [][]int{
			{0, 1, 2, 3}, // greedy picks this first
			{0, 1, 4},
			{2, 3, 5},
			{4, 5},
		},
	}
	g := sc.Greedy()
	if !sc.IsCover(g) {
		t.Fatal("greedy cover invalid")
	}
	e := sc.Exact()
	if !sc.IsCover(e) {
		t.Fatal("exact cover invalid")
	}
	if len(e) != 2 {
		t.Fatalf("exact cover size = %d, want 2 ({0,1,4},{2,3,5})", len(e))
	}
	if len(g) < len(e) {
		t.Fatal("greedy beat exact")
	}
}

func TestSetCoverExactSingleton(t *testing.T) {
	sc := SetCover{N: 4, Sets: [][]int{{0}, {1}, {2}, {3}, {0, 1, 2, 3}}}
	if got := sc.Exact(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("exact = %v, want [4]", got)
	}
}

func TestIsCoverRejectsBadIndices(t *testing.T) {
	sc := SetCover{N: 2, Sets: [][]int{{0, 1}}}
	if sc.IsCover([]int{5}) {
		t.Error("bad index accepted")
	}
}

// Property: exact <= greedy and both are valid covers on random instances.
func TestQuickSetCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := RandomSetCover(3+rng.Intn(8), 2+rng.Intn(6), 0.3, rng)
		if sc.Validate() != nil {
			return false
		}
		g := sc.Greedy()
		e := sc.Exact()
		return sc.IsCover(g) && sc.IsCover(e) && len(e) <= len(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGraphValidate(t *testing.T) {
	if err := (Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}}}).Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	if err := (Graph{N: 3, Edges: [][2]int{{0, 0}}}).Validate(); err == nil {
		t.Error("self loop accepted")
	}
	if err := (Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 0}}}).Validate(); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := (Graph{N: 3, Edges: [][2]int{{0, 7}}}).Validate(); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestVertexCoverTriangle(t *testing.T) {
	g := Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	e := g.ExactVertexCover()
	if len(e) != 2 || !g.IsVertexCover(e) {
		t.Fatalf("triangle exact cover = %v, want size 2", e)
	}
	m := g.MatchingCover()
	if !g.IsVertexCover(m) || len(m) > 2*len(e) {
		t.Fatalf("matching cover %v violates 2-approximation", m)
	}
}

func TestVertexCoverStar(t *testing.T) {
	g := Graph{N: 5, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}}
	e := g.ExactVertexCover()
	if len(e) != 1 || e[0] != 0 {
		t.Fatalf("star exact cover = %v, want [0]", e)
	}
}

// Property: exact is a cover, and matching cover is within factor 2.
func TestQuickVertexCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(4+rng.Intn(8), 3+rng.Intn(12), rng)
		if g.Validate() != nil {
			return false
		}
		e := g.ExactVertexCover()
		m := g.MatchingCover()
		return g.IsVertexCover(e) && g.IsVertexCover(m) &&
			len(e) <= len(m) && len(m) <= 2*len(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomCubicGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomCubicGraph(10, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v, d := range g.Degrees() {
		if d != 3 {
			t.Fatalf("vertex %d has degree %d, want 3", v, d)
		}
	}
	if g.MaxDegree() != 3 {
		t.Error("max degree wrong")
	}
	// Cubic vertex cover is at least m/3 (Theorem 7 proof uses K >= m'/3).
	e := g.ExactVertexCover()
	if 3*len(e) < len(g.Edges) {
		t.Errorf("cover size %d below m/3 = %d", len(e), len(g.Edges)/3)
	}
}

func TestLabelCoverValidate(t *testing.T) {
	lc := LabelCover{NU: 1, NW: 1, L: 2, Edges: []LCEdge{{U: 0, W: 0, Rel: [][2]int{{0, 1}}}}}
	if err := lc.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := LabelCover{NU: 1, NW: 1, L: 2, Edges: []LCEdge{{U: 0, W: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty relation accepted")
	}
	oob := LabelCover{NU: 1, NW: 1, L: 2, Edges: []LCEdge{{U: 0, W: 0, Rel: [][2]int{{0, 5}}}}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestLabelCoverExactSharedLabel(t *testing.T) {
	// Two edges from u0 to w0 and w1. Choosing label 0 everywhere covers
	// both with cost 3; a bad greedy order could cost more.
	lc := LabelCover{
		NU: 1, NW: 2, L: 2,
		Edges: []LCEdge{
			{U: 0, W: 0, Rel: [][2]int{{1, 1}, {0, 0}}},
			{U: 0, W: 1, Rel: [][2]int{{0, 0}}},
		},
	}
	a := lc.Exact()
	if !lc.Feasible(a) {
		t.Fatal("exact assignment infeasible")
	}
	if a.Cost() != 3 {
		t.Fatalf("exact cost = %d, want 3", a.Cost())
	}
}

// Property: exact <= greedy, both feasible.
func TestQuickLabelCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lc := RandomLabelCover(1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(2), 1+rng.Intn(2), 1+rng.Intn(3), rng)
		if lc.Validate() != nil {
			return false
		}
		g := lc.GreedyAssignment()
		e := lc.Exact()
		return lc.Feasible(g) && lc.Feasible(e) && e.Cost() <= g.Cost()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
