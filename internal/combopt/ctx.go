package combopt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBudget is the typed sentinel for exhausted node budgets, mirroring
// secureview.ErrNodeBudget: callers distinguish "the search ran out of
// budget" (retry bigger, switch solver, or report partiality) from a broken
// instance. Every budgeted Ctx solver in this package wraps it.
var ErrBudget = errors.New("combopt: node budget exhausted")

// budgetErr builds the wrapped budget error for one solver.
func budgetErr(what string, maxNodes int) error {
	return fmt.Errorf("combopt: %s exceeded %d nodes: %w", what, maxNodes, ErrBudget)
}

// GreedyCtx is the weighted greedy set-cover approximation: repeatedly pick
// the set maximizing newly-covered-elements per unit weight (ties on the
// smaller index). By Chvátal's dual-fitting analysis its cost is at most
// H(d) times the set-cover LP optimum, d being the largest set size. The
// context is observed once per chosen set; on expiry the partial cover built
// so far is discarded and ctx.Err() returned.
func (sc SetCover) GreedyCtx(ctx context.Context) ([]int, error) {
	covered := make([]bool, sc.N)
	remaining := sc.N
	var chosen []int
	used := make([]bool, len(sc.Sets))
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best, bestGain := -1, 0
		bestWeight := 0.0
		for i, s := range sc.Sets {
			if used[i] {
				continue
			}
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			// Maximize gain/weight without dividing (handles zero weights):
			// i beats best iff gain_i·w_best > gain_best·w_i.
			w := sc.Weight(i)
			if best == -1 || float64(gain)*bestWeight > float64(bestGain)*w {
				best, bestGain, bestWeight = i, gain, w
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("combopt: universe not coverable")
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, e := range sc.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	sort.Ints(chosen)
	return chosen, nil
}

// ExactCtx finds a minimum-weight cover by branch and bound over elements
// (branching on the first uncovered element, trying each set containing it),
// seeded with the weighted greedy incumbent. Each branch node counts against
// maxNodes (<= 0 means unbounded); exhaustion returns an error wrapping
// ErrBudget, and the context is observed every few hundred nodes, returning
// ctx.Err() on expiry.
func (sc SetCover) ExactCtx(ctx context.Context, maxNodes int) ([]int, error) {
	greedy, err := sc.GreedyCtx(ctx)
	if err != nil {
		return nil, err
	}
	memberships := make([][]int, sc.N)
	cheapest := make([]float64, sc.N) // cheapest set weight covering e
	for i, s := range sc.Sets {
		for _, e := range s {
			if memberships[e] == nil || sc.Weight(i) < cheapest[e] {
				cheapest[e] = sc.Weight(i)
			}
			memberships[e] = append(memberships[e], i)
		}
	}
	best := append([]int(nil), greedy...)
	bestCost := sc.CostOf(greedy)

	covered := make([]int, sc.N) // coverage multiplicity
	remaining := sc.N
	nodes := 0
	var current []int
	cost := 0.0
	var stop error
	var rec func()
	rec = func() {
		if stop != nil {
			return
		}
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			stop = budgetErr("set-cover search", maxNodes)
			return
		}
		if nodes&255 == 0 {
			if err := ctx.Err(); err != nil {
				stop = err
				return
			}
		}
		if remaining == 0 {
			if cost < bestCost {
				bestCost = cost
				best = append(best[:0:0], current...)
			}
			return
		}
		// First uncovered element; its cheapest covering set is an
		// admissible completion bound.
		e := 0
		for covered[e] > 0 {
			e++
		}
		if cost+cheapest[e] >= bestCost {
			return
		}
		for _, i := range memberships[e] {
			current = append(current, i)
			cost += sc.Weight(i)
			for _, x := range sc.Sets[i] {
				if covered[x] == 0 {
					remaining--
				}
				covered[x]++
			}
			rec()
			for _, x := range sc.Sets[i] {
				covered[x]--
				if covered[x] == 0 {
					remaining++
				}
			}
			cost -= sc.Weight(i)
			current = current[:len(current)-1]
		}
	}
	rec()
	if stop != nil {
		return nil, stop
	}
	sort.Ints(best)
	return best, nil
}

// GreedyAssignmentCtx is GreedyAssignment with label weights and
// cancellation: for each edge in order it chooses the admissible pair adding
// the least new label weight. Its cost is at most the sum over edges of each
// edge's cheapest pair weight — the certificate the forward label-cover
// reduction builds on. The context is observed once per edge batch; on
// expiry ctx.Err() is returned and the partial assignment discarded.
func (lc LabelCover) GreedyAssignmentCtx(ctx context.Context) (Assignment, error) {
	a := lc.emptyAssignment()
	for i, e := range lc.Edges {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		bestPair := e.Rel[0]
		bestNew := math.Inf(1)
		for _, p := range e.Rel {
			added := 0.0
			if !a[e.U][p[0]] {
				added += lc.LabelWeight(e.U, p[0])
			}
			if !a[lc.NU+e.W][p[1]] {
				added += lc.LabelWeight(lc.NU+e.W, p[1])
			}
			if added < bestNew {
				bestNew = added
				bestPair = p
			}
		}
		a[e.U][bestPair[0]] = true
		a[lc.NU+e.W][bestPair[1]] = true
	}
	return a, nil
}

// ExactCtx finds a minimum-weight assignment by branching over the pair
// chosen for each edge, pruning on the weighted incumbent, seeded with the
// weighted greedy. Each branch node counts against maxNodes (<= 0 means
// unbounded); exhaustion returns an error wrapping ErrBudget, and the
// context is observed every few hundred nodes.
func (lc LabelCover) ExactCtx(ctx context.Context, maxNodes int) (Assignment, error) {
	best, err := lc.GreedyAssignmentCtx(ctx)
	if err != nil {
		return nil, err
	}
	bestCost := lc.CostOf(best)
	a := lc.emptyAssignment()
	cost := 0.0
	nodes := 0
	var stop error
	var rec func(i int)
	rec = func(i int) {
		if stop != nil {
			return
		}
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			stop = budgetErr("label-cover search", maxNodes)
			return
		}
		if nodes&255 == 0 {
			if err := ctx.Err(); err != nil {
				stop = err
				return
			}
		}
		if cost >= bestCost {
			return
		}
		if i == len(lc.Edges) {
			bestCost = cost
			best = cloneAssignment(a)
			return
		}
		e := lc.Edges[i]
		for _, p := range e.Rel {
			// The U row (< NU) and W row (>= NU) never alias, so the two
			// deltas are independent.
			du := !a[e.U][p[0]]
			dw := !a[lc.NU+e.W][p[1]]
			var added float64
			if du {
				a[e.U][p[0]] = true
				added += lc.LabelWeight(e.U, p[0])
			}
			if dw {
				a[lc.NU+e.W][p[1]] = true
				added += lc.LabelWeight(lc.NU+e.W, p[1])
			}
			cost += added
			rec(i + 1)
			cost -= added
			if du {
				a[e.U][p[0]] = false
			}
			if dw {
				a[lc.NU+e.W][p[1]] = false
			}
		}
	}
	rec(0)
	if stop != nil {
		return nil, stop
	}
	return best, nil
}

// ExactVertexCoverCtx is ExactVertexCover with a node budget and
// cancellation: branch-and-bound nodes count against maxNodes (<= 0 means
// unbounded; exhaustion wraps ErrBudget), and the context is observed every
// few hundred nodes.
func (g Graph) ExactVertexCoverCtx(ctx context.Context, maxNodes int) ([]int, error) {
	best := g.MatchingCover()
	in := make([]bool, g.N)
	nodes := 0
	var stop error
	var current []int
	var rec func()
	rec = func() {
		if stop != nil {
			return
		}
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			stop = budgetErr("vertex-cover search", maxNodes)
			return
		}
		if nodes&255 == 0 {
			if err := ctx.Err(); err != nil {
				stop = err
				return
			}
		}
		if len(current) >= len(best) {
			return
		}
		var edge [2]int
		found := false
		for _, e := range g.Edges {
			if !in[e[0]] && !in[e[1]] {
				edge = e
				found = true
				break
			}
		}
		if !found {
			best = append(best[:0:0], current...)
			return
		}
		for _, v := range edge {
			in[v] = true
			current = append(current, v)
			rec()
			current = current[:len(current)-1]
			in[v] = false
		}
	}
	rec()
	if stop != nil {
		return nil, stop
	}
	sort.Ints(best)
	return best, nil
}
