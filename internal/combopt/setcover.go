// Package combopt provides the combinatorial optimization problems that the
// paper's hardness reductions start from — set cover (Theorem 5, Theorem 9),
// vertex cover in cubic graphs (Theorem 7) and label cover (Theorem 6,
// Theorem 10) — with exact and approximation solvers.
//
// The exact solvers make the reduction experiments meaningful: each lemma in
// the paper's appendix asserts an exact cost correspondence between the
// source instance and the constructed Secure-View instance, and the
// experiments verify those equalities by solving both sides.
package combopt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SetCover is an instance of minimum set cover: a universe {0..N-1} and a
// family of subsets. The goal is a minimum number of subsets whose union is
// the universe — or, when Weights is set, a minimum total weight.
//
// Greedy and Exact are the historical unit-cost solvers and ignore Weights;
// the context-aware GreedyCtx and ExactCtx honor them (nil means every set
// weighs 1, making the two families agree).
type SetCover struct {
	N    int
	Sets [][]int
	// Weights holds one non-negative weight per set (nil = all 1). Only the
	// Ctx solvers consult it.
	Weights []float64
}

// Weight returns set i's weight (1 when Weights is nil).
func (sc SetCover) Weight(i int) float64 {
	if sc.Weights == nil {
		return 1
	}
	return sc.Weights[i]
}

// CostOf returns the total weight of the chosen sets.
func (sc SetCover) CostOf(chosen []int) float64 {
	total := 0.0
	for _, i := range chosen {
		total += sc.Weight(i)
	}
	return total
}

// Validate checks element ranges, that a cover exists at all, and — when
// weights are present — that they are one-per-set and non-negative.
func (sc SetCover) Validate() error {
	if sc.Weights != nil && len(sc.Weights) != len(sc.Sets) {
		return fmt.Errorf("combopt: %d weights for %d sets", len(sc.Weights), len(sc.Sets))
	}
	for i, w := range sc.Weights {
		if w < 0 {
			return fmt.Errorf("combopt: set %d has negative weight %g", i, w)
		}
	}
	covered := make([]bool, sc.N)
	for i, s := range sc.Sets {
		for _, e := range s {
			if e < 0 || e >= sc.N {
				return fmt.Errorf("combopt: set %d contains %d outside universe [0,%d)", i, e, sc.N)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("combopt: element %d not coverable", e)
		}
	}
	return nil
}

// IsCover reports whether the chosen set indices cover the universe.
func (sc SetCover) IsCover(chosen []int) bool {
	covered := make([]bool, sc.N)
	n := 0
	for _, i := range chosen {
		if i < 0 || i >= len(sc.Sets) {
			return false
		}
		for _, e := range sc.Sets[i] {
			if !covered[e] {
				covered[e] = true
				n++
			}
		}
	}
	return n == sc.N
}

// Greedy runs the classical ln(n)-approximation: repeatedly pick the set
// covering the most uncovered elements. Ties break on the smaller index for
// determinism.
func (sc SetCover) Greedy() []int {
	covered := make([]bool, sc.N)
	remaining := sc.N
	var chosen []int
	used := make([]bool, len(sc.Sets))
	for remaining > 0 {
		best, bestGain := -1, 0
		for i, s := range sc.Sets {
			if used[i] {
				continue
			}
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best == -1 {
			return nil // uncoverable
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, e := range sc.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	sort.Ints(chosen)
	return chosen
}

// Exact finds a minimum cover by branch and bound over elements (always
// branching on the first uncovered element, trying each set containing it).
// Exponential in the worst case; intended for the modest instances used in
// experiments.
func (sc SetCover) Exact() []int {
	memberships := make([][]int, sc.N)
	for i, s := range sc.Sets {
		for _, e := range s {
			memberships[e] = append(memberships[e], i)
		}
	}
	bestLen := math.MaxInt
	var best []int
	greedy := sc.Greedy()
	if greedy == nil {
		return nil
	}
	bestLen = len(greedy)
	best = append([]int(nil), greedy...)

	covered := make([]int, sc.N) // coverage multiplicity
	remaining := sc.N
	var current []int
	var rec func()
	rec = func() {
		if remaining == 0 {
			if len(current) < bestLen {
				bestLen = len(current)
				best = append(best[:0:0], current...)
			}
			return
		}
		// At least one more set is needed, so any completion has size
		// >= len(current)+1; prune if that cannot beat the incumbent.
		if len(current)+1 >= bestLen {
			return
		}
		// First uncovered element.
		e := 0
		for covered[e] > 0 {
			e++
		}
		for _, i := range memberships[e] {
			current = append(current, i)
			for _, x := range sc.Sets[i] {
				if covered[x] == 0 {
					remaining--
				}
				covered[x]++
			}
			rec()
			for _, x := range sc.Sets[i] {
				covered[x]--
				if covered[x] == 0 {
					remaining++
				}
			}
			current = current[:len(current)-1]
		}
	}
	rec()
	sort.Ints(best)
	return best
}

// RandomSetCover draws an instance with n elements and m sets, each element
// appearing in at least one set. Set sizes are geometric-ish around
// density·n.
func RandomSetCover(n, m int, density float64, rng *rand.Rand) SetCover {
	sets := make([][]int, m)
	for i := range sets {
		for e := 0; e < n; e++ {
			if rng.Float64() < density {
				sets[i] = append(sets[i], e)
			}
		}
	}
	// Guarantee coverability: sprinkle each element into a random set.
	for e := 0; e < n; e++ {
		i := rng.Intn(m)
		sets[i] = append(sets[i], e)
	}
	for i := range sets {
		sets[i] = dedupeInts(sets[i])
	}
	return SetCover{N: n, Sets: sets}
}

func dedupeInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
