package combopt

// Tests for the context-aware, weighted solver entry points: agreement with
// the unweighted originals, typed budget errors, cancellation, and the
// 50ms-deadline smoke the CI cancellation step runs.

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestCtxSolversMatchUnweighted: with nil weights every Ctx solver optimizes
// the same objective as its original — the exact optima must coincide and
// the greedy outputs must be feasible.
func TestCtxSolversMatchUnweighted(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		sc := RandomSetCover(5+rng.Intn(4), 6+rng.Intn(5), 0.35, rng)
		cover, err := sc.GreedyCtx(ctx)
		if err != nil {
			t.Fatalf("trial %d: GreedyCtx: %v", trial, err)
		}
		if !sc.IsCover(cover) {
			t.Fatalf("trial %d: GreedyCtx output is not a cover", trial)
		}
		exact, err := sc.ExactCtx(ctx, 0)
		if err != nil {
			t.Fatalf("trial %d: ExactCtx: %v", trial, err)
		}
		if got, want := sc.CostOf(exact), float64(len(sc.Exact())); got != want {
			t.Errorf("trial %d: ExactCtx cost %g != unweighted optimum %g", trial, got, want)
		}

		lc := RandomLabelCover(2, 2, 3, 2, 2, rng)
		a, err := lc.GreedyAssignmentCtx(ctx)
		if err != nil {
			t.Fatalf("trial %d: GreedyAssignmentCtx: %v", trial, err)
		}
		if !lc.Feasible(a) {
			t.Fatalf("trial %d: GreedyAssignmentCtx output infeasible", trial)
		}
		ea, err := lc.ExactCtx(ctx, 0)
		if err != nil {
			t.Fatalf("trial %d: label ExactCtx: %v", trial, err)
		}
		if got, want := lc.CostOf(ea), float64(lc.Exact().Cost()); got != want {
			t.Errorf("trial %d: label ExactCtx cost %g != unweighted optimum %g", trial, got, want)
		}

		g := RandomGraph(8+rng.Intn(4), 12+rng.Intn(6), rng)
		vc, err := g.ExactVertexCoverCtx(ctx, 0)
		if err != nil {
			t.Fatalf("trial %d: ExactVertexCoverCtx: %v", trial, err)
		}
		if !g.IsVertexCover(vc) {
			t.Fatalf("trial %d: ExactVertexCoverCtx output is not a cover", trial)
		}
		if got, want := len(vc), len(g.ExactVertexCover()); got != want {
			t.Errorf("trial %d: ExactVertexCoverCtx size %d != unweighted optimum %d", trial, got, want)
		}
	}
}

// TestWeightedGreedyCtxPrefersCheapSets: the weighted greedy must optimize
// weight, not cardinality. On {0},{1} at weight 1 vs {0,1} at weight 3 the
// unweighted greedy takes the big set; the weighted one must not.
func TestWeightedGreedyCtxPrefersCheapSets(t *testing.T) {
	sc := SetCover{N: 2, Sets: [][]int{{0}, {1}, {0, 1}}, Weights: []float64{1, 1, 3}}
	cover, err := sc.GreedyCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.CostOf(cover); got != 2 {
		t.Errorf("weighted greedy cost %g, want 2 (sets %v)", got, cover)
	}
	if got := len(sc.Greedy()); got != 1 {
		t.Errorf("unweighted greedy picked %d sets, want the single big set", got)
	}
	exact, err := sc.ExactCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.CostOf(exact); got != 2 {
		t.Errorf("weighted exact cost %g, want 2", got)
	}
}

// TestCtxBudgetTyped: a one-node budget trips on the first branch of every
// budgeted solver and the error is the typed sentinel, matching how the
// solve registry distinguishes budget exhaustion from broken instances.
func TestCtxBudgetTyped(t *testing.T) {
	ctx := context.Background()
	sc := SetCover{N: 2, Sets: [][]int{{0}, {1}, {0, 1}}, Weights: []float64{1, 1, 3}}
	if _, err := sc.ExactCtx(ctx, 1); !errors.Is(err, ErrBudget) {
		t.Errorf("set cover: err = %v, want ErrBudget", err)
	}
	rng := rand.New(rand.NewSource(5))
	lc := RandomLabelCover(2, 2, 3, 2, 2, rng)
	if _, err := lc.ExactCtx(ctx, 1); !errors.Is(err, ErrBudget) {
		t.Errorf("label cover: err = %v, want ErrBudget", err)
	}
	g := RandomGraph(10, 15, rng)
	if _, err := g.ExactVertexCoverCtx(ctx, 1); !errors.Is(err, ErrBudget) {
		t.Errorf("vertex cover: err = %v, want ErrBudget", err)
	}
}

// TestCtxCancelledPromptly: a dead context surfaces as context.Canceled from
// every Ctx entry point without partial output.
func TestCtxCancelledPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(9))
	sc := RandomSetCover(10, 14, 0.3, rng)
	if _, err := sc.GreedyCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("GreedyCtx: err = %v, want context.Canceled", err)
	}
	if _, err := sc.ExactCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("set ExactCtx: err = %v, want context.Canceled", err)
	}
	lc := RandomLabelCover(3, 3, 3, 3, 2, rng)
	if _, err := lc.GreedyAssignmentCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("GreedyAssignmentCtx: err = %v, want context.Canceled", err)
	}
	if _, err := lc.ExactCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("label ExactCtx: err = %v, want context.Canceled", err)
	}
	// The vertex-cover search polls every 256 nodes, so it needs a search
	// big enough to reach the first poll.
	g := RandomCubicGraph(60, rng)
	if _, err := g.ExactVertexCoverCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("ExactVertexCoverCtx: err = %v, want context.Canceled", err)
	}
}

// TestExactCtxDeadline: a 50ms deadline stops searches that would otherwise
// run far longer, and stops them promptly — the smoke contract the CI
// cancellation step asserts across the repo.
func TestExactCtxDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sc := RandomSetCover(40, 80, 0.15, rng)
	lc := RandomLabelCover(4, 4, 5, 6, 4, rng)
	g := RandomCubicGraph(80, rng)
	for _, tc := range []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"setcover", func(ctx context.Context) error { _, err := sc.ExactCtx(ctx, 0); return err }},
		{"labelcover", func(ctx context.Context) error { _, err := lc.ExactCtx(ctx, 0); return err }},
		{"vertexcover", func(ctx context.Context) error { _, err := g.ExactVertexCoverCtx(ctx, 0); return err }},
	} {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		start := time.Now()
		err := tc.run(ctx)
		elapsed := time.Since(start)
		cancel()
		// A search that legitimately finishes inside 50ms is fine; one that
		// does not must report the deadline within the polling interval.
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", tc.name, err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("%s: took %v to notice a 50ms deadline", tc.name, elapsed)
		}
	}
}
