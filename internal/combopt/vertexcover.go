package combopt

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// Validate checks vertex ranges and rejects self-loops and duplicates.
func (g Graph) Validate() error {
	seen := make(map[[2]int]bool, len(g.Edges))
	for i, e := range g.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= g.N || v < 0 || v >= g.N {
			return fmt.Errorf("combopt: edge %d = (%d,%d) out of range", i, u, v)
		}
		if u == v {
			return fmt.Errorf("combopt: self-loop at %d", u)
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return fmt.Errorf("combopt: duplicate edge (%d,%d)", u, v)
		}
		seen[[2]int{u, v}] = true
	}
	return nil
}

// Degrees returns the degree of every vertex.
func (g Graph) Degrees() []int {
	d := make([]int, g.N)
	for _, e := range g.Edges {
		d[e[0]]++
		d[e[1]]++
	}
	return d
}

// MaxDegree returns the maximum vertex degree.
func (g Graph) MaxDegree() int {
	max := 0
	for _, d := range g.Degrees() {
		if d > max {
			max = d
		}
	}
	return max
}

// IsVertexCover reports whether the vertex set touches every edge.
func (g Graph) IsVertexCover(vs []int) bool {
	in := make([]bool, g.N)
	for _, v := range vs {
		if v < 0 || v >= g.N {
			return false
		}
		in[v] = true
	}
	for _, e := range g.Edges {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}

// MatchingCover is the classical 2-approximation: take both endpoints of a
// maximal matching.
func (g Graph) MatchingCover() []int {
	in := make([]bool, g.N)
	var cover []int
	for _, e := range g.Edges {
		if !in[e[0]] && !in[e[1]] {
			in[e[0]], in[e[1]] = true, true
			cover = append(cover, e[0], e[1])
		}
	}
	sort.Ints(cover)
	return cover
}

// ExactVertexCover finds a minimum vertex cover by branch and bound:
// repeatedly branch on an endpoint of the first uncovered edge. Suitable
// for the small/medium graphs used in experiments.
func (g Graph) ExactVertexCover() []int {
	best := g.MatchingCover()
	in := make([]bool, g.N)
	var current []int
	var rec func()
	rec = func() {
		if len(current) >= len(best) {
			return
		}
		// First uncovered edge.
		var edge [2]int
		found := false
		for _, e := range g.Edges {
			if !in[e[0]] && !in[e[1]] {
				edge = e
				found = true
				break
			}
		}
		if !found {
			best = append(best[:0:0], current...)
			return
		}
		for _, v := range edge {
			in[v] = true
			current = append(current, v)
			rec()
			current = current[:len(current)-1]
			in[v] = false
		}
	}
	rec()
	sort.Ints(best)
	return best
}

// RandomCubicGraph draws a random 3-regular simple graph on n vertices
// (n even, n >= 4) using the pairing model with rejection. Cubic graphs are
// the APX-hard vertex-cover family used by Theorem 7's reduction.
func RandomCubicGraph(n int, rng *rand.Rand) Graph {
	if n < 4 || n%2 != 0 {
		panic("combopt: cubic graph needs even n >= 4")
	}
	for attempt := 0; attempt < 10000; attempt++ {
		// 3n half-edges paired uniformly.
		stubs := make([]int, 0, 3*n)
		for v := 0; v < n; v++ {
			stubs = append(stubs, v, v, v)
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		edges := make([][2]int, 0, 3*n/2)
		seen := make(map[[2]int]bool)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				ok = false
				break
			}
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
		if ok {
			return Graph{N: n, Edges: edges}
		}
	}
	panic("combopt: failed to sample a cubic graph")
}

// RandomGraph draws a simple graph with n vertices and (up to) m distinct
// random edges.
func RandomGraph(n, m int, rng *rand.Rand) Graph {
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for len(edges) < m && len(seen) < n*(n-1)/2 {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, [2]int{u, v})
	}
	return Graph{N: n, Edges: edges}
}
