// Package oracle compiles the Lemma 4 standalone safety test (Davidson et
// al., PODS 2011) into dense integer-coded tables so that each test is a few
// array and bitset operations instead of relation scans.
//
// The interpreted test in internal/privacy re-resolves schema columns,
// re-groups the relation with string keys and re-scans rows on every call —
// fine for one query, ruinous inside the 2^k subset search where the oracle
// is invoked once per surviving candidate. Compile does all of that work
// once per (relation, input/output split):
//
//   - every row's input and output halves are packed into mixed-radix
//     uint64 codes (relation.EncodeCols),
//   - per-row digit tables make projecting onto an arbitrary visible mask a
//     short multiply-add chain with no division,
//   - a safety test sorts N packed (visible-input, visible-output) keys from
//     a scratch pool — zero steady-state allocation — and takes the minimum
//     group count,
//   - OUT sets are represented as Bitsets over output codes.
//
// A Compiled value is immutable after Compile and safe for concurrent use,
// so one compiled oracle is shared across the whole engine worker pool
// (internal/search) — compile once, test everywhere.
//
// Narrow modules (total field width ≤ bitsMax) additionally compile each
// row to a single packed uint32, turning one test into an AND per row
// against small epoch-stamped tables, and MinOutSizeBatch/IsSafeBatch
// answer whole mask slices in chunked strided passes over the same
// tables — the batch oracle internal/search plugs into. EquivClasses
// exposes the attributes the Lemma 4 test provably cannot distinguish,
// which seeds the engine's symmetry breaking.
package oracle

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"

	"secureview/internal/relation"
)

// Mask is a visibility bitmask over the compiled attribute universe: bit i
// refers to Attrs()[i], inputs first then outputs — the same convention as a
// search.Space built over ModuleView.Attrs(), so engine masks convert by
// plain integer conversion.
type Mask uint32

// MaxAttrs bounds the compiled universe (mask width).
const MaxAttrs = 32

// MaxOutSetDomain bounds the output-domain size for which explicit OUT-set
// bitsets are materialized, here and in internal/worlds (8 MiB of bits).
const MaxOutSetDomain = 1 << 26

// denseMax bounds the packed key space (prodIn × prodOut) for which the
// epoch-stamped dense counting path is used: one uint32 stamp per possible
// key (4 MiB at the cap). Beyond it, safety tests fall back to sorting the
// row keys — still allocation-free, just O(N log N) instead of O(N).
const denseMax = 1 << 20

// bitsMax bounds the total bit-field width for which the packed-word fast
// path is compiled: every row's digits concatenated as power-of-two fields
// in one uint32, so projecting a row onto a visible mask is a single AND
// instead of a per-attribute multiply-add chain.
const bitsMax = 20

// batchTableMax bounds the strided batch stamp tables at 2^18 uint16
// entries (512 KiB): a chunk of 2^shift masks shares one pass over the
// rows, with mask ci's keys interleaved at stride position ci so chunk
// members can never collide in the shared epoch-stamped table. The bound
// keeps the table L2-resident, which measures far faster than wider
// chunks against a larger, cache-missing table; modules at the bitsMax
// edge therefore run chunks of one (a plain per-mask pass), and narrower
// modules regain the shared-pass amortization.
const batchTableMax = 18

// maxBatchShift caps the chunk width at 8 masks per row pass; wider chunks
// stop paying once the shared row load is amortized.
const maxBatchShift = 3

// Compiled is the integer-coded form of one module view: the relation rows
// encoded as input/output codes plus digit tables. All fields are read-only
// after Compile; the scratch pool makes per-call state allocation-free in
// steady state, so a single Compiled may serve many goroutines.
type Compiled struct {
	attrs []string // inputs then outputs; Mask bit i = attrs[i]
	nIn   int
	nOut  int

	inDoms  []uint64 // input attribute domain sizes
	outDoms []uint64 // output attribute domain sizes

	n      int     // number of rows
	inDig  []int32 // row r, input i  -> inDig[r*nIn+i]
	outDig []int32 // row r, output j -> outDig[r*nOut+j]

	inCodeRow map[uint64]int32 // full input code -> first row index

	prodIn  uint64 // ∏ inDoms
	prodOut uint64 // ∏ outDoms

	outSchema *relation.Schema // schema over the outputs, for decoding

	dense   bool      // prodIn*prodOut small enough for stamp tables
	scratch sync.Pool // *callScratch, one per concurrent safety test

	// Packed-word fast path (compiled when the total field width fits
	// bitsMax): rowBits[r] holds row r's digits as concatenated power-of-two
	// bit fields, inputs in the low bits, so a visible projection is
	// rowBits[r] & wordMask(visible) — one AND per row per mask.
	bitsOK    bool
	rowBits   []uint32 // row r -> packed digit word
	fieldBits []uint32 // attr i -> mask of its field within a packed word
	inFields  uint32   // union of the input fields (the low inBits bits)
	totalBits int      // sum of all field widths
	inBits    int      // sum of the input field widths
	bshift    int      // log2 of the batch chunk width (masks per row pass)

	// equiv lists the oracle-level attribute equivalence classes (indices
	// into attrs, size ≥ 2): inputs inducing the same row partition, outputs
	// inducing the same partition with equal domain. Members of one class
	// are interchangeable under every visibility mask.
	equiv [][]int
}

// callScratch is the reusable per-call state of a safety test. Dense tests
// use epoch-stamped tables — a slot is live only when its stamp equals the
// current epoch, so nothing is cleared between calls; sorted tests reuse the
// key buffer. Pooled, so steady-state tests allocate nothing.
type callScratch struct {
	keys []uint64 // len n: packed (visible-input, visible-output) row keys

	epoch    uint32
	keyStamp []uint32 // len prodIn*prodOut (dense only)
	vinStamp []uint32 // len prodIn (dense only)
	cnt      []uint32 // len prodIn: distinct visible outputs per group
	vins     []uint64 // distinct visible-input codes seen this call

	// Packed-word state (bits path only). The strided tables serve both the
	// single-mask test (chunk position 0) and whole batch chunks; a slot is
	// live only when its stamp equals bepoch, so chunks never clear. The
	// stamps are uint16 on purpose: the key table is the largest scratch
	// structure and the hot loop is bound by its cache misses, so halving
	// the entry size buys more than the rare wraparound clear costs.
	bepoch   uint16
	bKeyStmp []uint16 // len 1<<(totalBits+bshift)
	bVinStmp []uint16 // len 1<<(inBits+bshift)
	bCnt     []uint32 // len 1<<(inBits+bshift): distinct visible outputs per (group, chunk position)
	bVins    []uint32 // distinct strided visible-input keys seen this pass
}

// Compile lowers a module view (relation plus input/output attribute split)
// into its integer-coded form. It fails when the input or output domain
// products (or their product, the packed key space) overflow uint64, or when
// the universe exceeds MaxAttrs — callers should fall back to the
// interpreted path in those regimes.
func Compile(rel *relation.Relation, inputs, outputs []string) (*Compiled, error) {
	if rel == nil {
		return nil, fmt.Errorf("oracle: nil relation")
	}
	k := len(inputs) + len(outputs)
	if k > MaxAttrs {
		return nil, fmt.Errorf("oracle: %d attributes exceed the %d-bit mask universe", k, MaxAttrs)
	}
	s := rel.Schema()
	inCols, err := s.Columns(inputs)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	outCols, err := s.Columns(outputs)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	prodIn, ok := s.DomainProduct(inputs)
	if !ok {
		return nil, fmt.Errorf("oracle: input domain product overflows uint64")
	}
	prodOut, ok := s.DomainProduct(outputs)
	if !ok {
		return nil, fmt.Errorf("oracle: output domain product overflows uint64")
	}
	if prodOut != 0 && prodIn > math.MaxUint64/prodOut {
		return nil, fmt.Errorf("oracle: packed key space overflows uint64")
	}
	outSchema, err := s.Project(outputs)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}

	nIn, nOut := len(inputs), len(outputs)
	n := rel.Len()
	c := &Compiled{
		attrs:     append(append(make([]string, 0, k), inputs...), outputs...),
		nIn:       nIn,
		nOut:      nOut,
		inDoms:    make([]uint64, nIn),
		outDoms:   make([]uint64, nOut),
		n:         n,
		inDig:     make([]int32, n*nIn),
		outDig:    make([]int32, n*nOut),
		inCodeRow: make(map[uint64]int32, n),
		prodIn:    prodIn,
		prodOut:   prodOut,
		outSchema: outSchema,
	}
	for i, col := range inCols {
		c.inDoms[i] = uint64(s.Attr(col).Domain)
	}
	for j, col := range outCols {
		c.outDoms[j] = uint64(s.Attr(col).Domain)
	}
	// Compile against the deterministic row order so that compiled group
	// structure (and therefore iteration-order-free results) never depends
	// on insertion order.
	for r, row := range rel.SortedRows() {
		for i, col := range inCols {
			c.inDig[r*nIn+i] = int32(row[col])
		}
		for j, col := range outCols {
			c.outDig[r*nOut+j] = int32(row[col])
		}
		code := relation.EncodeCols(s, row, inCols)
		if _, seen := c.inCodeRow[code]; !seen {
			c.inCodeRow[code] = int32(r)
		}
	}
	c.finish()
	return c, nil
}

// finish derives everything the queries need from the primary tables
// (attrs, domains, digits, code index): the dense/packed-word dispatch,
// the equivalence classes, and the scratch pool. Shared by Compile and the
// snapshot decoder — both end with exactly this computation, so a decoded
// oracle is indistinguishable from a freshly compiled one.
func (c *Compiled) finish() {
	n := c.n
	c.dense = c.prodIn*c.prodOut <= denseMax
	c.compileBits()
	c.computeEquiv()
	c.scratch.New = func() any {
		sc := &callScratch{
			keys: make([]uint64, n),
			vins: make([]uint64, 0, n),
		}
		switch {
		case c.bitsOK:
			sc.bKeyStmp = make([]uint16, 1<<(c.totalBits+c.bshift))
			sc.bVinStmp = make([]uint16, 1<<(c.inBits+c.bshift))
			sc.bCnt = make([]uint32, 1<<(c.inBits+c.bshift))
			sc.bVins = make([]uint32, 0, n<<c.bshift)
		case c.dense:
			sc.keyStamp = make([]uint32, c.prodIn*c.prodOut)
			sc.vinStamp = make([]uint32, c.prodIn)
			sc.cnt = make([]uint32, c.prodIn)
		}
		return sc
	}
}

// fieldWidth returns the bit width of one attribute field: enough bits for
// every digit of the domain, zero for constant (single-value) domains.
func fieldWidth(dom uint64) int {
	if dom <= 1 {
		return 0
	}
	return bits.Len64(dom - 1)
}

// compileBits builds the packed-word fast path when every row fits bitsMax
// total field bits: digits concatenated as power-of-two fields, inputs in
// the low bits so the visible-input group key is a masked low sub-word.
func (c *Compiled) compileBits() {
	total := 0
	for _, d := range c.inDoms {
		total += fieldWidth(d)
	}
	inBits := total
	for _, d := range c.outDoms {
		total += fieldWidth(d)
	}
	if total > bitsMax {
		return
	}
	c.bitsOK = true
	c.totalBits = total
	c.inBits = inBits
	c.inFields = uint32(1)<<inBits - 1
	c.bshift = batchTableMax - total
	if c.bshift < 0 {
		c.bshift = 0
	}
	if c.bshift > maxBatchShift {
		c.bshift = maxBatchShift
	}
	c.fieldBits = make([]uint32, c.K())
	shifts := make([]int, c.K())
	off := 0
	for i := 0; i < c.nIn; i++ {
		w := fieldWidth(c.inDoms[i])
		c.fieldBits[i] = (uint32(1)<<w - 1) << off
		shifts[i] = off
		off += w
	}
	for j := 0; j < c.nOut; j++ {
		w := fieldWidth(c.outDoms[j])
		c.fieldBits[c.nIn+j] = (uint32(1)<<w - 1) << off
		shifts[c.nIn+j] = off
		off += w
	}
	c.rowBits = make([]uint32, c.n)
	for r := 0; r < c.n; r++ {
		var w uint32
		for i := 0; i < c.nIn; i++ {
			w |= uint32(c.inDig[r*c.nIn+i]) << shifts[i]
		}
		for j := 0; j < c.nOut; j++ {
			w |= uint32(c.outDig[r*c.nOut+j]) << shifts[c.nIn+j]
		}
		c.rowBits[r] = w
	}
}

// wordMask returns the packed-word projection mask of a visible mask: the
// union of the visible attributes' bit fields.
func (c *Compiled) wordMask(visible Mask) uint32 {
	var wm uint32
	for x := visible; x != 0; x &= x - 1 {
		wm |= c.fieldBits[bits.TrailingZeros32(uint32(x))]
	}
	return wm
}

// computeEquiv groups the universe into oracle-equivalence classes. Lemma 4
// sees an input attribute only through the row partition its column induces
// (visible input groups are the common refinement of the visible columns'
// partitions), so two inputs whose columns are equal up to value relabeling
// are interchangeable under every mask. An output attribute additionally
// contributes its domain size to the hidden volume, so outputs must match
// on the partition AND the domain. Only classes of size ≥ 2 are kept.
func (c *Compiled) computeEquiv() {
	groups := make(map[string][]int)
	order := make([]string, 0, c.K())
	norm := make([]byte, 4*c.n)
	relabel := make(map[int32]int32, 8)
	colKey := func(dig []int32, stride, off int) string {
		clear(relabel)
		next := int32(0)
		for r := 0; r < c.n; r++ {
			v := dig[r*stride+off]
			id, ok := relabel[v]
			if !ok {
				id = next
				relabel[v] = id
				next++
			}
			norm[4*r] = byte(id)
			norm[4*r+1] = byte(id >> 8)
			norm[4*r+2] = byte(id >> 16)
			norm[4*r+3] = byte(id >> 24)
		}
		return string(norm)
	}
	add := func(key string, idx int) {
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], idx)
	}
	for i := 0; i < c.nIn; i++ {
		add("i:"+colKey(c.inDig, c.nIn, i), i)
	}
	for j := 0; j < c.nOut; j++ {
		add(fmt.Sprintf("o:%d:", c.outDoms[j])+colKey(c.outDig, c.nOut, j), c.nIn+j)
	}
	for _, key := range order {
		if members := groups[key]; len(members) >= 2 {
			c.equiv = append(c.equiv, members)
		}
	}
}

// EquivClasses returns the oracle-level attribute equivalence classes:
// groups of ≥ 2 universe indices (see Attrs) whose attributes the Lemma 4
// test cannot distinguish — swapping visibility of two class members leaves
// MinOutSize unchanged under every mask. Inputs qualify when their columns
// induce the same row partition; outputs additionally need equal domain
// size. Callers intersect these with equal hiding costs before using them
// for search symmetry breaking. Do not mutate the returned slices.
func (c *Compiled) EquivClasses() [][]int { return c.equiv }

// minOutBits is the packed-word single-mask test: per row one AND for the
// (visible-input, visible-output) key and one AND for the group key, counted
// in the strided epoch-stamped tables at chunk position 0.
func (c *Compiled) minOutBits(sc *callScratch, wm uint32, vol uint64) uint64 {
	c.bumpBitsEpoch(sc)
	epoch := sc.bepoch
	shift := c.bshift
	inWM := wm & c.inFields
	keyStmp, vinStmp, cnt := sc.bKeyStmp, sc.bVinStmp, sc.bCnt
	vins := sc.bVins
	for _, rw := range c.rowBits {
		w := rw & wm
		key := uint64(w) << shift
		if keyStmp[key] == epoch {
			continue
		}
		keyStmp[key] = epoch
		vinKey := (w & inWM) << shift
		if vinStmp[vinKey] != epoch {
			vinStmp[vinKey] = epoch
			cnt[vinKey] = 0
			vins = append(vins, vinKey)
		}
		cnt[vinKey]++
	}
	sc.bVins = vins
	min := uint64(math.MaxUint64)
	for _, vinKey := range vins {
		if size := satMul(uint64(cnt[vinKey]), vol); size < min {
			min = size
		}
	}
	return min
}

// minOutBitsChunk answers one chunk of ≤ 2^bshift masks over the shared
// rows: mask ci's keys live at stride position ci of the shared stamp
// tables, so chunk members can never collide and nothing is cleared
// between chunks. mins[ci] receives min_x |OUT_x| for chunk member ci.
// The row loop sits inside the mask loop so the per-mask constants (word
// mask, input projection, stride slot) stay in registers; the row words
// themselves are a small sequential array that stays cached across masks.
func (c *Compiled) minOutBitsChunk(sc *callScratch, wms []uint32, vols, mins []uint64) {
	c.bumpBitsEpoch(sc)
	epoch := sc.bepoch
	shift := c.bshift
	cn := len(wms)
	keyStmp, vinStmp, cnt := sc.bKeyStmp, sc.bVinStmp, sc.bCnt
	vins := sc.bVins
	rowBits := c.rowBits
	for ci := 0; ci < cn; ci++ {
		wm := wms[ci]
		inWM := wm & c.inFields
		ciKey := uint64(ci)
		ciKey32 := uint32(ci)
		for _, rw := range rowBits {
			pw := rw & wm
			key := uint64(pw)<<shift | ciKey
			if keyStmp[key] == epoch {
				continue
			}
			keyStmp[key] = epoch
			vinKey := (pw&inWM)<<shift | ciKey32
			if vinStmp[vinKey] != epoch {
				vinStmp[vinKey] = epoch
				cnt[vinKey] = 0
				vins = append(vins, vinKey)
			}
			cnt[vinKey]++
		}
	}
	sc.bVins = vins
	for i := range mins[:cn] {
		mins[i] = math.MaxUint64
	}
	low := uint32(1)<<shift - 1
	for _, vinKey := range vins {
		ci := vinKey & low
		if size := satMul(uint64(cnt[vinKey]), vols[ci]); size < mins[ci] {
			mins[ci] = size
		}
	}
}

// bumpBitsEpoch advances the packed-word stamp generation, clearing the
// tables only on uint32 wraparound.
func (c *Compiled) bumpBitsEpoch(sc *callScratch) {
	sc.bepoch++
	if sc.bepoch == 0 {
		clear(sc.bKeyStmp)
		clear(sc.bVinStmp)
		sc.bepoch = 1
	}
	sc.bVins = sc.bVins[:0]
}

// MemSize estimates the resident bytes of the compiled tables: digit
// arrays, the input-code index, attribute names, and one pooled scratch
// (keys plus the dense stamp tables when enabled). Callers use it for cache
// accounting; it is an estimate, not exact heap usage.
func (c *Compiled) MemSize() int64 {
	size := int64(256) // struct, schema header, pool
	for _, a := range c.attrs {
		size += 16 + int64(len(a))
	}
	size += 8 * int64(len(c.inDoms)+len(c.outDoms))
	size += 4 * int64(len(c.inDig)+len(c.outDig))
	size += 16 * int64(len(c.inCodeRow))
	// One callScratch: every concurrent safety test pools one, so a shared
	// oracle typically holds a single reusable copy.
	size += 8*int64(c.n) + 8*int64(c.n) // keys + vins capacity
	switch {
	case c.bitsOK:
		size += 4 * int64(len(c.rowBits)+len(c.fieldBits))
		size += 4 << (c.totalBits + c.bshift)    // bKeyStmp
		size += 2 * (4 << (c.inBits + c.bshift)) // bVinStmp + bCnt
		size += 4 * int64(c.n) << c.bshift       // bVins capacity
	case c.dense:
		size += 4 * int64(c.prodIn*c.prodOut) // keyStamp
		size += 2 * 4 * int64(c.prodIn)       // vinStamp + cnt
	}
	return size
}

// K returns the universe size (inputs + outputs).
func (c *Compiled) K() int { return c.nIn + c.nOut }

// Attrs returns the compiled attribute universe, inputs then outputs (do not
// mutate). Mask bit i refers to Attrs()[i].
func (c *Compiled) Attrs() []string { return c.attrs }

// Rows returns the number of compiled relation rows.
func (c *Compiled) Rows() int { return c.n }

// OutputSchema returns the schema over the output attributes; output codes
// decode against it via relation.Decode.
func (c *Compiled) OutputSchema() *relation.Schema { return c.outSchema }

// All returns the fully visible mask.
func (c *Compiled) All() Mask { return Mask(1)<<c.K() - 1 }

// MaskOf returns the visibility mask of the universe attributes present in
// set; names outside the universe are ignored (the same semantics as the
// interpreted path's FilterSorted).
func (c *Compiled) MaskOf(set relation.NameSet) Mask {
	var m Mask
	for i, a := range c.attrs {
		if set.Has(a) {
			m |= 1 << i
		}
	}
	return m
}

// hiddenVolume returns ∏ |∆a| over hidden output attributes, saturating at
// MaxUint64 on overflow (the interpreted path's "huge" convention).
func (c *Compiled) hiddenVolume(visible Mask) uint64 {
	vol := uint64(1)
	for j := 0; j < c.nOut; j++ {
		if visible&(1<<(c.nIn+j)) != 0 {
			continue
		}
		d := c.outDoms[j]
		if d != 0 && vol > math.MaxUint64/d {
			return math.MaxUint64
		}
		vol *= d
	}
	return vol
}

// visInCode packs row r's digits at the visible input attributes.
func (c *Compiled) visInCode(r int, visible Mask) uint64 {
	var code uint64
	base := r * c.nIn
	for i := 0; i < c.nIn; i++ {
		if visible&(1<<i) != 0 {
			code = code*c.inDoms[i] + uint64(c.inDig[base+i])
		}
	}
	return code
}

// visOutCode packs row r's digits at the visible output attributes.
func (c *Compiled) visOutCode(r int, visible Mask) uint64 {
	var code uint64
	base := r * c.nOut
	for j := 0; j < c.nOut; j++ {
		if visible&(1<<(c.nIn+j)) != 0 {
			code = code*c.outDoms[j] + uint64(c.outDig[base+j])
		}
	}
	return code
}

// visOutProd returns the domain product of the visible output attributes
// (the packed-key radix for visible-output codes).
func (c *Compiled) visOutProd(visible Mask) uint64 {
	prod := uint64(1)
	for j := 0; j < c.nOut; j++ {
		if visible&(1<<(c.nIn+j)) != 0 {
			prod *= c.outDoms[j]
		}
	}
	return prod
}

// MinOutSize returns min_x |OUT_x| under the visible mask — the Lemma 4
// closed form as pure integer operations on the compiled row codes. Small
// key spaces use epoch-stamped dense counting (O(N) per test, no sort, no
// clearing); larger ones sort the packed keys and scan group runs. Either
// way zero allocation in steady state; safe for concurrent use.
func (c *Compiled) MinOutSize(visible Mask) uint64 {
	if c.n == 0 {
		return 0
	}
	vol := c.hiddenVolume(visible)
	if c.bitsOK {
		sc := c.scratch.Get().(*callScratch)
		min := c.minOutBits(sc, c.wordMask(visible), vol)
		c.scratch.Put(sc)
		return min
	}

	// Visible column lists on the stack: the per-row loops then touch only
	// visible attributes, branch-free.
	var visIn, visOut [MaxAttrs]int
	nvi, nvo := 0, 0
	voutProd := uint64(1)
	for i := 0; i < c.nIn; i++ {
		if visible&(1<<i) != 0 {
			visIn[nvi] = i
			nvi++
		}
	}
	for j := 0; j < c.nOut; j++ {
		if visible&(1<<(c.nIn+j)) != 0 {
			visOut[nvo] = j
			nvo++
			voutProd *= c.outDoms[j]
		}
	}

	sc := c.scratch.Get().(*callScratch)
	var min uint64
	if c.dense {
		min = c.minOutDense(sc, visIn[:nvi], visOut[:nvo], voutProd, vol)
	} else {
		min = c.minOutSorted(sc, visIn[:nvi], visOut[:nvo], voutProd, vol)
	}
	c.scratch.Put(sc)
	return min
}

// rowKey packs row r's visible-input and visible-output codes into one key.
func (c *Compiled) rowKey(r int, visIn, visOut []int, voutProd uint64) (key, vin uint64) {
	inBase, outBase := r*c.nIn, r*c.nOut
	for _, i := range visIn {
		vin = vin*c.inDoms[i] + uint64(c.inDig[inBase+i])
	}
	var vout uint64
	for _, j := range visOut {
		vout = vout*c.outDoms[j] + uint64(c.outDig[outBase+j])
	}
	return vin*voutProd + vout, vin
}

// minOutDense counts distinct visible outputs per visible-input group with
// epoch-stamped tables: a (group, output) pair is new iff its key slot's
// stamp is stale, so the whole test is one O(N) pass.
func (c *Compiled) minOutDense(sc *callScratch, visIn, visOut []int, voutProd, vol uint64) uint64 {
	sc.epoch++
	if sc.epoch == 0 { // stamp wraparound: reset to a clean generation
		clear(sc.keyStamp)
		clear(sc.vinStamp)
		sc.epoch = 1
	}
	epoch := sc.epoch
	sc.vins = sc.vins[:0]
	for r := 0; r < c.n; r++ {
		key, vin := c.rowKey(r, visIn, visOut, voutProd)
		if sc.keyStamp[key] == epoch {
			continue
		}
		sc.keyStamp[key] = epoch
		if sc.vinStamp[vin] != epoch {
			sc.vinStamp[vin] = epoch
			sc.cnt[vin] = 0
			sc.vins = append(sc.vins, vin)
		}
		sc.cnt[vin]++
	}
	min := uint64(math.MaxUint64)
	for _, vin := range sc.vins {
		if size := satMul(uint64(sc.cnt[vin]), vol); size < min {
			min = size
		}
	}
	return min
}

// minOutSorted is the fallback for key spaces too large to stamp: sort the
// packed row keys and scan group runs.
func (c *Compiled) minOutSorted(sc *callScratch, visIn, visOut []int, voutProd, vol uint64) uint64 {
	keys := sc.keys[:c.n]
	for r := 0; r < c.n; r++ {
		keys[r], _ = c.rowKey(r, visIn, visOut, voutProd)
	}
	slices.Sort(keys)
	min := uint64(math.MaxUint64)
	groupStart := 0
	distinct := uint64(1)
	flush := func() {
		if size := satMul(distinct, vol); size < min {
			min = size
		}
	}
	for r := 1; r < c.n; r++ {
		if keys[r] == keys[r-1] {
			continue
		}
		if keys[r]/voutProd == keys[groupStart]/voutProd {
			distinct++ // same visible-input group, new visible-output pattern
			continue
		}
		flush()
		groupStart = r
		distinct = 1
	}
	flush()
	return min
}

// IsSafe reports whether the visible mask satisfies Definition 2 for Γ:
// min_x |OUT_x| >= Γ.
func (c *Compiled) IsSafe(visible Mask, gamma uint64) bool {
	return c.MinOutSize(visible) >= gamma
}

// MinOutSizeBatch answers MinOutSize for a whole slice of masks, sharing
// the per-row work across masks: on the packed-word path, chunks of up to
// 2^bshift masks are counted in ONE pass over the row words, with each
// row loaded once and projected onto every chunk member by a single AND.
// Oracles too wide for the packed-word path fall back to per-mask tests.
// The result is element-wise identical to calling MinOutSize per mask.
func (c *Compiled) MinOutSizeBatch(masks []Mask) []uint64 {
	out := make([]uint64, len(masks))
	if c.n == 0 {
		return out
	}
	if !c.bitsOK {
		for i, m := range masks {
			out[i] = c.MinOutSize(m)
		}
		return out
	}
	sc := c.scratch.Get().(*callScratch)
	chunk := 1 << c.bshift
	var wms [1 << maxBatchShift]uint32
	var vols [1 << maxBatchShift]uint64
	for start := 0; start < len(masks); start += chunk {
		end := start + chunk
		if end > len(masks) {
			end = len(masks)
		}
		cn := end - start
		for ci, m := range masks[start:end] {
			wms[ci] = c.wordMask(m)
			vols[ci] = c.hiddenVolume(m)
		}
		c.minOutBitsChunk(sc, wms[:cn], vols[:cn], out[start:end])
	}
	c.scratch.Put(sc)
	return out
}

// IsSafeBatch answers the Lemma 4 test for a slice of visible masks in
// batched row passes (see MinOutSizeBatch); out[i] is IsSafe(masks[i],
// gamma). Safe for concurrent use like every other query.
func (c *Compiled) IsSafeBatch(masks []Mask, gamma uint64) []bool {
	mins := c.MinOutSizeBatch(masks)
	out := make([]bool, len(masks))
	for i, m := range mins {
		out[i] = m >= gamma
	}
	return out
}

// inCodeOf packs an input tuple (aligned with the compiled input order) and
// validates arity and domain bounds.
func (c *Compiled) inCodeOf(x relation.Tuple) (uint64, error) {
	if len(x) != c.nIn {
		return 0, fmt.Errorf("oracle: input arity %d, want %d", len(x), c.nIn)
	}
	var code uint64
	for i, v := range x {
		if v < 0 || uint64(v) >= c.inDoms[i] {
			return 0, fmt.Errorf("oracle: input value %d out of domain [0,%d)", v, c.inDoms[i])
		}
		code = code*c.inDoms[i] + uint64(v)
	}
	return code, nil
}

// visInCodeOf packs an input tuple's visible digits.
func (c *Compiled) visInCodeOf(x relation.Tuple, visible Mask) uint64 {
	var code uint64
	for i, v := range x {
		if visible&(1<<i) != 0 {
			code = code*c.inDoms[i] + uint64(v)
		}
	}
	return code
}

// View precomputes the per-mask group structure: visible-input code → group
// id, each group's sorted distinct visible-output codes, and the group
// minimum — turning repeated OutSize/OutSet queries under one mask into
// O(1)–O(group) lookups. Views are immutable and safe for concurrent use.
type View struct {
	c         *Compiled
	visible   Mask
	hiddenVol uint64
	groupOf   map[uint64]int32 // visible-input code -> group id
	vouts     [][]uint64       // per group: sorted distinct visible-output codes
	minOut    uint64
}

// View compiles the group index for one visibility mask.
func (c *Compiled) View(visible Mask) *View {
	v := &View{
		c:         c,
		visible:   visible,
		hiddenVol: c.hiddenVolume(visible),
		groupOf:   make(map[uint64]int32),
		minOut:    math.MaxUint64,
	}
	if c.n == 0 {
		v.minOut = 0
		return v
	}
	for r := 0; r < c.n; r++ {
		vin := c.visInCode(r, visible)
		g, ok := v.groupOf[vin]
		if !ok {
			g = int32(len(v.vouts))
			v.groupOf[vin] = g
			v.vouts = append(v.vouts, nil)
		}
		v.vouts[g] = append(v.vouts[g], c.visOutCode(r, visible))
	}
	for g := range v.vouts {
		slices.Sort(v.vouts[g])
		v.vouts[g] = slices.Compact(v.vouts[g])
		if size := satMul(uint64(len(v.vouts[g])), v.hiddenVol); size < v.minOut {
			v.minOut = size
		}
	}
	return v
}

// MinOutSize returns min_x |OUT_x| for the view's mask.
func (v *View) MinOutSize() uint64 { return v.minOut }

// IsSafe reports min_x |OUT_x| >= Γ.
func (v *View) IsSafe(gamma uint64) bool { return v.minOut >= gamma }

// OutSize returns |OUT_x| for one input tuple x (aligned with the compiled
// input order): an O(1) group lookup. x must occur in the relation's input
// projection, as in the interpreted path.
func (v *View) OutSize(x relation.Tuple) (uint64, error) {
	g, err := v.group(x)
	if err != nil {
		return 0, err
	}
	return satMul(uint64(len(v.vouts[g])), v.hiddenVol), nil
}

func (v *View) group(x relation.Tuple) (int32, error) {
	code, err := v.c.inCodeOf(x)
	if err != nil {
		return 0, err
	}
	if _, present := v.c.inCodeRow[code]; !present {
		return 0, fmt.Errorf("oracle: input %v not in relation", x)
	}
	return v.groupOf[v.c.visInCodeOf(x, v.visible)], nil
}

// OutSet materializes OUT_x as a Bitset over full output codes (decode with
// OutputSchema): every y whose visible-output projection matches one of the
// group's patterns. It fails when the output domain is too large to
// materialize.
func (v *View) OutSet(x relation.Tuple) (Bitset, error) {
	g, err := v.group(x)
	if err != nil {
		return nil, err
	}
	c := v.c
	if c.prodOut > MaxOutSetDomain {
		return nil, fmt.Errorf("oracle: output domain %d too large for OUT-set materialization", c.prodOut)
	}
	// Project each full output code onto the visible output columns; codes
	// whose projection matches a group pattern are members.
	visCols := make([]int, 0, c.nOut)
	for j := 0; j < c.nOut; j++ {
		if v.visible&(1<<(c.nIn+j)) != 0 {
			visCols = append(visCols, j)
		}
	}
	proj, err := relation.NewCodeProjection(c.outSchema, visCols)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	patterns := v.vouts[g]
	bs := NewBitset(c.prodOut)
	for code := uint64(0); code < c.prodOut; code++ {
		if _, found := slices.BinarySearch(patterns, proj.Project(code)); found {
			bs.Set(code)
		}
	}
	return bs, nil
}

// OutSetTuples decodes OutSet into output tuples in ascending code order —
// the same order as the interpreted enumeration.
func (v *View) OutSetTuples(x relation.Tuple) ([]relation.Tuple, error) {
	bs, err := v.OutSet(x)
	if err != nil {
		return nil, err
	}
	out := make([]relation.Tuple, 0, bs.Count())
	bs.Each(func(code uint64) {
		out = append(out, relation.Decode(v.c.outSchema, code))
	})
	return out, nil
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

// Bitset is a dense bitset over integer codes, the OUT-set representation of
// the compiled layers (here and in internal/worlds).
type Bitset []uint64

// NewBitset returns a zeroed bitset holding codes in [0, n).
func NewBitset(n uint64) Bitset { return make(Bitset, (n+63)/64) }

// Set marks code i.
func (b Bitset) Set(i uint64) { b[i>>6] |= 1 << (i & 63) }

// Has reports whether code i is marked.
func (b Bitset) Has(i uint64) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// Count returns the number of marked codes.
func (b Bitset) Count() uint64 {
	var n uint64
	for _, w := range b {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// Or merges other into b (b |= other); the sets must be the same length.
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// SetAll marks every code in [0, n).
func (b Bitset) SetAll(n uint64) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if rem := n & 63; rem != 0 && len(b) > 0 {
		b[len(b)-1] = 1<<rem - 1
	}
}

// Each calls fn for every marked code in ascending order.
func (b Bitset) Each(fn func(code uint64)) {
	for i, w := range b {
		for w != 0 {
			fn(uint64(i)<<6 + uint64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
