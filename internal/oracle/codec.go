package oracle

import (
	"fmt"
	"math"

	"secureview/internal/relation"
	"secureview/internal/wire"
)

// Snapshot codec. Only the primary tables travel: the attribute universe,
// the input/output split, the domain sizes, and the row digits. Everything
// else a Compiled carries — packed row words, stamp-table sizing, the
// equivalence classes, the input-code index, the scratch pool — is a pure
// function of those tables and is recomputed by finish() on decode, so the
// wire shape cannot smuggle in inconsistent derived state and stays a
// fraction of MemSize.

// AppendBinary appends the compiled oracle's primary tables to buf and
// returns the extended slice. Decode with DecodeCompiled.
func (c *Compiled) AppendBinary(buf []byte) []byte {
	buf = wire.AppendU64(buf, uint64(c.nIn))
	buf = wire.AppendU64(buf, uint64(c.nOut))
	for _, a := range c.attrs {
		buf = wire.AppendString(buf, a)
	}
	for _, d := range c.inDoms {
		buf = wire.AppendU64(buf, d)
	}
	for _, d := range c.outDoms {
		buf = wire.AppendU64(buf, d)
	}
	buf = wire.AppendU64(buf, uint64(c.n))
	for _, d := range c.inDig {
		buf = wire.AppendU32(buf, uint32(d))
	}
	for _, d := range c.outDig {
		buf = wire.AppendU32(buf, uint32(d))
	}
	return buf
}

// DecodeCompiled decodes one compiled oracle from r and rebuilds every
// derived structure. All invariants Compile establishes are re-validated —
// universe size, domain bounds, digit ranges, domain-product overflow — so
// a corrupt or hostile payload fails with an error instead of becoming an
// oracle whose queries index out of bounds.
func DecodeCompiled(r *wire.Reader) (*Compiled, error) {
	nIn := int(r.U64())
	nOut := int(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nIn < 0 || nOut < 0 || nIn+nOut > MaxAttrs {
		return nil, fmt.Errorf("oracle: decoded universe %d+%d exceeds %d attributes", nIn, nOut, MaxAttrs)
	}
	k := nIn + nOut
	c := &Compiled{
		nIn:     nIn,
		nOut:    nOut,
		attrs:   make([]string, k),
		inDoms:  make([]uint64, nIn),
		outDoms: make([]uint64, nOut),
	}
	seen := make(map[string]bool, k)
	for i := range c.attrs {
		a := r.String()
		if a == "" && r.Err() == nil {
			return nil, fmt.Errorf("oracle: decoded attribute %d has empty name", i)
		}
		if seen[a] {
			return nil, fmt.Errorf("oracle: decoded duplicate attribute %q", a)
		}
		seen[a] = true
		c.attrs[i] = a
	}
	for i := range c.inDoms {
		c.inDoms[i] = r.U64()
	}
	for j := range c.outDoms {
		c.outDoms[j] = r.U64()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for _, d := range append(append([]uint64(nil), c.inDoms...), c.outDoms...) {
		if d < 1 || d > math.MaxInt32 {
			return nil, fmt.Errorf("oracle: decoded domain %d out of range", d)
		}
	}

	// Domain products, with the same overflow discipline as Compile.
	c.prodIn, c.prodOut = 1, 1
	for _, d := range c.inDoms {
		if c.prodIn > math.MaxUint64/d {
			return nil, fmt.Errorf("oracle: decoded input domain product overflows uint64")
		}
		c.prodIn *= d
	}
	for _, d := range c.outDoms {
		if c.prodOut > math.MaxUint64/d {
			return nil, fmt.Errorf("oracle: decoded output domain product overflows uint64")
		}
		c.prodOut *= d
	}
	if c.prodOut != 0 && c.prodIn > math.MaxUint64/c.prodOut {
		return nil, fmt.Errorf("oracle: decoded packed key space overflows uint64")
	}

	// Row digits. Each row occupies 4·(nIn+nOut) bytes on the wire, which
	// bounds the decoded row count before the allocation.
	nRows := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if k > 0 && nRows > uint64(r.Remaining()/(4*k)) {
		return nil, fmt.Errorf("oracle: decoded row count %d exceeds payload", nRows)
	}
	if k == 0 && nRows > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("oracle: decoded row count %d out of range", nRows)
	}
	c.n = int(nRows)
	c.inDig = make([]int32, c.n*nIn)
	c.outDig = make([]int32, c.n*nOut)
	for i := range c.inDig {
		d := r.U32()
		if uint64(d) >= c.inDoms[i%nIn] {
			return nil, fmt.Errorf("oracle: decoded input digit %d out of domain %d", d, c.inDoms[i%nIn])
		}
		c.inDig[i] = int32(d)
	}
	for i := range c.outDig {
		d := r.U32()
		if uint64(d) >= c.outDoms[i%nOut] {
			return nil, fmt.Errorf("oracle: decoded output digit %d out of domain %d", d, c.outDoms[i%nOut])
		}
		c.outDig[i] = int32(d)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}

	// The output schema (decoding OUT-set codes) and the full-input-code
	// index, exactly as Compile builds them: EncodeCols and visInCode share
	// the same mixed-radix order, so the rebuilt index keys are identical.
	outAttrs := make([]relation.Attribute, nOut)
	for j := range outAttrs {
		outAttrs[j] = relation.Attribute{Name: c.attrs[nIn+j], Domain: int(c.outDoms[j])}
	}
	outSchema, err := relation.NewSchema(outAttrs)
	if err != nil {
		return nil, fmt.Errorf("oracle: decoded output schema: %w", err)
	}
	c.outSchema = outSchema
	c.inCodeRow = make(map[uint64]int32, c.n)
	for row := 0; row < c.n; row++ {
		var code uint64
		for i := 0; i < nIn; i++ {
			code = code*c.inDoms[i] + uint64(c.inDig[row*nIn+i])
		}
		if _, ok := c.inCodeRow[code]; !ok {
			c.inCodeRow[code] = int32(row)
		}
	}
	c.finish()
	return c, nil
}
