package oracle_test

// Property tests for the batched oracle passes and the attribute
// equivalence classes: IsSafeBatch/MinOutSizeBatch must agree with the
// per-mask calls on every mask of every batch — on the bitfield fast path
// and on the wide-module fallback — and EquivClasses members must be
// interchangeable under every visibility mask.

import (
	"fmt"
	"math/rand"
	"testing"

	"secureview/internal/module"
	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/relation"
)

// randomMasks draws n masks (duplicates allowed) over a k-bit universe.
func randomMasks(rng *rand.Rand, k, n int) []oracle.Mask {
	out := make([]oracle.Mask, n)
	for i := range out {
		out[i] = randomMask(rng, k)
	}
	return out
}

// checkBatchAgrees asserts MinOutSizeBatch and IsSafeBatch answer exactly
// like the per-mask calls for every mask in the batch.
func checkBatchAgrees(t *testing.T, c *oracle.Compiled, masks []oracle.Mask, gamma uint64) {
	t.Helper()
	mins := c.MinOutSizeBatch(masks)
	if len(mins) != len(masks) {
		t.Fatalf("MinOutSizeBatch answered %d of %d masks", len(mins), len(masks))
	}
	safes := c.IsSafeBatch(masks, gamma)
	if len(safes) != len(masks) {
		t.Fatalf("IsSafeBatch answered %d of %d masks", len(safes), len(masks))
	}
	for i, m := range masks {
		if want := c.MinOutSize(m); mins[i] != want {
			t.Fatalf("mask %b (batch slot %d): MinOutSizeBatch = %d, MinOutSize = %d", m, i, mins[i], want)
		}
		if want := c.IsSafe(m, gamma); safes[i] != want {
			t.Fatalf("mask %b (batch slot %d) Γ=%d: IsSafeBatch = %v, IsSafe = %v", m, i, gamma, safes[i], want)
		}
	}
}

func TestBatchMatchesPerMask(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		mv := randomModuleView(rng)
		c, err := mv.Compile()
		if err != nil {
			t.Fatal(err)
		}
		k := c.K()
		// Batch sizes straddling the chunk width (8), including empty,
		// single, and duplicate-heavy batches.
		for _, n := range []int{0, 1, 3, 8, 9, 20} {
			masks := randomMasks(rng, k, n)
			gamma := uint64(1 + rng.Intn(6))
			checkBatchAgrees(t, c, masks, gamma)
		}
		// Every mask once, in order — the search engine's worst case.
		all := make([]oracle.Mask, 1<<k)
		for m := range all {
			all[m] = oracle.Mask(m)
		}
		checkBatchAgrees(t, c, all, 2)
	}
}

// TestBatchMatchesPerMaskWideModule forces the non-bitfield fallback: seven
// domain-5 attributes need 3 bits each (21 > 20 total), so the compiled
// oracle answers batches by per-mask delegation, which must still agree.
func TestBatchMatchesPerMaskWideModule(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := make([]relation.Attribute, 3)
	for i := range in {
		in[i] = relation.Attribute{Name: fmt.Sprintf("x%d", i), Domain: 5}
	}
	out := make([]relation.Attribute, 4)
	for i := range out {
		out[i] = relation.Attribute{Name: fmt.Sprintf("y%d", i), Domain: 5}
	}
	mv := privacy.NewModuleView(module.Random("wide", in, out, rng))
	c, err := mv.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		masks := randomMasks(rng, c.K(), 1+rng.Intn(12))
		checkBatchAgrees(t, c, masks, uint64(1+rng.Intn(20)))
	}
}

// TestEquivClasses pins the oracle-level equivalence detection on a
// hand-built relation: x1 is x0 relabeled (same row partition), y1 equals
// y0, and x2 is independent of both. Inputs and outputs never share a
// class.
func TestEquivClasses(t *testing.T) {
	s := relation.MustSchema(
		relation.Bool("x0"), relation.Bool("x1"), relation.Bool("x2"),
		relation.Bool("y0"), relation.Bool("y1"))
	r := relation.New(s)
	for _, row := range []relation.Tuple{
		{0, 1, 0, 0, 0},
		{0, 1, 1, 1, 1},
		{1, 0, 0, 1, 1},
		{1, 0, 1, 0, 0},
	} {
		if err := r.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	c, err := oracle.Compile(r, []string{"x0", "x1", "x2"}, []string{"y0", "y1"})
	if err != nil {
		t.Fatal(err)
	}
	classes := c.EquivClasses()
	if len(classes) != 2 {
		t.Fatalf("EquivClasses = %v, want [[0 1] [3 4]]", classes)
	}
	for i, want := range [][]int{{0, 1}, {3, 4}} {
		if len(classes[i]) != 2 || classes[i][0] != want[0] || classes[i][1] != want[1] {
			t.Fatalf("EquivClasses = %v, want [[0 1] [3 4]]", classes)
		}
	}

	// Interchangeability: swapping a class's members inside any mask must
	// not move MinOutSize.
	swap := func(m oracle.Mask, a, b int) oracle.Mask {
		ba, bb := m>>a&1, m>>b&1
		m &^= 1<<a | 1<<b
		return m | ba<<b | bb<<a
	}
	for m := oracle.Mask(0); m < 1<<5; m++ {
		for _, cl := range [][2]int{{0, 1}, {3, 4}} {
			sw := swap(m, cl[0], cl[1])
			if got, want := c.MinOutSize(sw), c.MinOutSize(m); got != want {
				t.Fatalf("mask %05b vs swapped %05b: MinOutSize %d != %d", m, sw, got, want)
			}
		}
	}
}

// TestEquivClassesRandomInterchangeable checks, on random modules, that
// every detected class is truly oracle-interchangeable: exchanging any two
// members inside any mask preserves MinOutSize.
func TestEquivClassesRandomInterchangeable(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	classesSeen := 0
	for trial := 0; trial < 120; trial++ {
		mv := randomModuleView(rng)
		c, err := mv.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, cl := range c.EquivClasses() {
			classesSeen++
			a, b := cl[0], cl[1]
			for m := oracle.Mask(0); m < 1<<c.K(); m++ {
				ba, bb := m>>a&1, m>>b&1
				sw := m&^(1<<a|1<<b) | ba<<b | bb<<a
				if got, want := c.MinOutSize(sw), c.MinOutSize(m); got != want {
					t.Fatalf("trial %d class %v mask %b: MinOutSize %d != %d", trial, cl, m, got, want)
				}
			}
		}
	}
	if classesSeen == 0 {
		t.Skip("no equivalence classes arose; widen the trial count")
	}
}
