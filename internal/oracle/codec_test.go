package oracle

import (
	"math/rand"
	"testing"

	"secureview/internal/relation"
	"secureview/internal/wire"
)

// randomCompiled builds a compiled oracle over a random relation with mixed
// domain sizes; wide=true pushes it past the packed-word path.
func randomCompiled(t *testing.T, rng *rand.Rand, wide bool) *Compiled {
	t.Helper()
	nIn, nOut := 2+rng.Intn(3), 2+rng.Intn(3)
	maxDom := 3
	if wide {
		maxDom = 40 // field widths blow past bitsMax
	}
	var attrs []relation.Attribute
	var inputs, outputs []string
	for i := 0; i < nIn; i++ {
		name := string(rune('a' + i))
		attrs = append(attrs, relation.Attribute{Name: name, Domain: 2 + rng.Intn(maxDom)})
		inputs = append(inputs, name)
	}
	for j := 0; j < nOut; j++ {
		name := string(rune('p' + j))
		attrs = append(attrs, relation.Attribute{Name: name, Domain: 2 + rng.Intn(maxDom)})
		outputs = append(outputs, name)
	}
	schema := relation.MustSchema(attrs...)
	rel := relation.New(schema)
	for r := 0; r < 8+rng.Intn(24); r++ {
		row := make(relation.Tuple, len(attrs))
		for i, a := range attrs {
			row[i] = rng.Intn(a.Domain)
		}
		if err := rel.Insert(row); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	c, err := Compile(rel, inputs, outputs)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// TestCodecRoundTrip: a decoded oracle must answer every query exactly like
// its source — same MinOutSize on every mask, same batch answers, same
// equivalence classes, same memory accounting.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		src := randomCompiled(t, rng, trial%4 == 3)
		dec, err := DecodeCompiled(wire.NewReader(src.AppendBinary(nil)))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if dec.K() != src.K() || dec.Rows() != src.Rows() {
			t.Fatalf("trial %d: shape %d/%d vs %d/%d", trial, dec.K(), dec.Rows(), src.K(), src.Rows())
		}
		if dec.MemSize() != src.MemSize() {
			t.Fatalf("trial %d: MemSize %d vs %d", trial, dec.MemSize(), src.MemSize())
		}
		all := int(src.All())
		masks := make([]Mask, 0, all+1)
		for m := 0; m <= all; m++ {
			masks = append(masks, Mask(m))
			if src.MinOutSize(Mask(m)) != dec.MinOutSize(Mask(m)) {
				t.Fatalf("trial %d: MinOutSize(%b) diverges", trial, m)
			}
		}
		wantBatch := src.MinOutSizeBatch(masks)
		gotBatch := dec.MinOutSizeBatch(masks)
		for i := range wantBatch {
			if wantBatch[i] != gotBatch[i] {
				t.Fatalf("trial %d: batch answer %d diverges", trial, i)
			}
		}
		we, ge := src.EquivClasses(), dec.EquivClasses()
		if len(we) != len(ge) {
			t.Fatalf("trial %d: equiv classes %d vs %d", trial, len(ge), len(we))
		}
		for i := range we {
			if len(we[i]) != len(ge[i]) {
				t.Fatalf("trial %d: equiv class %d sizes differ", trial, i)
			}
			for j := range we[i] {
				if we[i][j] != ge[i][j] {
					t.Fatalf("trial %d: equiv class %d member %d differs", trial, i, j)
				}
			}
		}
	}
}

// TestCodecRejectsCorruption: every single-byte flip of a valid payload must
// either decode to an oracle that still validates (flips in digit padding
// can be benign) or fail cleanly — never panic. Structural flips (counts,
// domains) must fail.
func TestCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randomCompiled(t, rng, false)
	buf := src.AppendBinary(nil)
	for i := 0; i < len(buf); i++ {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0xFF
		c, err := DecodeCompiled(wire.NewReader(bad))
		if err != nil {
			continue
		}
		// A benign flip must still yield a queryable oracle.
		c.MinOutSize(c.All())
		c.MinOutSize(0)
	}
	if _, err := DecodeCompiled(wire.NewReader(buf[:len(buf)/2])); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, err := DecodeCompiled(wire.NewReader(nil)); err == nil {
		t.Fatal("empty payload decoded")
	}
}
