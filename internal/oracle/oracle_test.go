package oracle_test

// Property tests: the compiled integer-coded oracle must agree with the
// interpreted Lemma 4 implementation in internal/privacy on every query —
// MinOutSize, IsSafe, OutSize and OutSet — over random modules, random
// domains and random visibility masks. A separate test shares one compiled
// oracle across the parallel search engine's workers (run with -race in CI).

import (
	"fmt"
	"math/rand"
	"testing"

	"secureview/internal/module"
	"secureview/internal/oracle"
	"secureview/internal/privacy"
	"secureview/internal/relation"
	"secureview/internal/search"
)

// randomModuleView builds a random module with 1–3 inputs and 1–3 outputs
// over mixed domains (2–4 values per attribute).
func randomModuleView(rng *rand.Rand) privacy.ModuleView {
	nIn := 1 + rng.Intn(3)
	nOut := 1 + rng.Intn(3)
	in := make([]relation.Attribute, nIn)
	for i := range in {
		in[i] = relation.Attribute{Name: fmt.Sprintf("x%d", i), Domain: 2 + rng.Intn(3)}
	}
	out := make([]relation.Attribute, nOut)
	for i := range out {
		out[i] = relation.Attribute{Name: fmt.Sprintf("y%d", i), Domain: 2 + rng.Intn(3)}
	}
	return privacy.NewModuleView(module.Random("m", in, out, rng))
}

func randomMask(rng *rand.Rand, k int) oracle.Mask {
	return oracle.Mask(rng.Intn(1 << k))
}

// maskNameSet converts an oracle mask into the interpreted path's NameSet.
func maskNameSet(attrs []string, m oracle.Mask) relation.NameSet {
	set := relation.NewNameSet()
	for i, a := range attrs {
		if m&(1<<i) != 0 {
			set.Add(a)
		}
	}
	return set
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		mv := randomModuleView(rng)
		c, err := mv.Compile()
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		k := c.K()
		inputs := mv.Rel.MustProject(mv.Inputs...)
		for q := 0; q < 12; q++ {
			mask := randomMask(rng, k)
			visible := maskNameSet(c.Attrs(), mask)

			wantMin, err := mv.MinOutSize(visible)
			if err != nil {
				t.Fatalf("trial %d: interpreted MinOutSize: %v", trial, err)
			}
			if got := c.MinOutSize(mask); got != wantMin {
				t.Fatalf("trial %d mask %b: MinOutSize = %d, interpreted %d", trial, mask, got, wantMin)
			}
			for _, gamma := range []uint64{1, 2, wantMin, wantMin + 1} {
				wantSafe, err := mv.IsSafe(visible, gamma)
				if err != nil {
					t.Fatal(err)
				}
				if got := c.IsSafe(mask, gamma); got != wantSafe {
					t.Fatalf("trial %d mask %b Γ=%d: IsSafe = %v, interpreted %v", trial, mask, gamma, got, wantSafe)
				}
			}

			view := c.View(mask)
			if view.MinOutSize() != wantMin {
				t.Fatalf("trial %d mask %b: View.MinOutSize = %d, want %d", trial, mask, view.MinOutSize(), wantMin)
			}
			for _, x := range inputs.Rows() {
				wantSize, err := mv.OutSize(visible, x)
				if err != nil {
					t.Fatal(err)
				}
				gotSize, err := view.OutSize(x)
				if err != nil {
					t.Fatal(err)
				}
				if gotSize != wantSize {
					t.Fatalf("trial %d mask %b x=%v: OutSize = %d, interpreted %d", trial, mask, x, gotSize, wantSize)
				}
			}
		}
	}
}

func TestCompiledOutSetMatchesInterpreted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		mv := randomModuleView(rng)
		c, err := mv.Compile()
		if err != nil {
			t.Fatal(err)
		}
		mask := randomMask(rng, c.K())
		visible := maskNameSet(c.Attrs(), mask)
		view := c.View(mask)
		for _, x := range mv.Rel.MustProject(mv.Inputs...).Rows() {
			want, err := mv.OutSet(visible, x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := view.OutSetTuples(x)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d mask %b x=%v: |OutSet| = %d, interpreted %d", trial, mask, x, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d mask %b x=%v: OutSet[%d] = %v, interpreted %v", trial, mask, x, i, got[i], want[i])
				}
			}
			bs, err := view.OutSet(x)
			if err != nil {
				t.Fatal(err)
			}
			if bs.Count() != uint64(len(want)) {
				t.Fatalf("bitset count %d != %d", bs.Count(), len(want))
			}
		}
	}
}

func TestCompiledErrors(t *testing.T) {
	mv := randomModuleView(rand.New(rand.NewSource(3)))
	c, err := mv.Compile()
	if err != nil {
		t.Fatal(err)
	}
	view := c.View(c.All())
	if _, err := view.OutSize(relation.Tuple{}); err == nil {
		t.Error("wrong arity accepted")
	}
	bad := make(relation.Tuple, len(mv.Inputs))
	bad[0] = 99
	if _, err := view.OutSize(bad); err == nil {
		t.Error("out-of-domain input accepted")
	}
	if _, err := oracle.Compile(mv.Rel, []string{"nope"}, mv.Outputs); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := oracle.Compile(nil, nil, nil); err == nil {
		t.Error("nil relation accepted")
	}
}

func TestCompiledEmptyRelation(t *testing.T) {
	s := relation.MustSchema(relation.Bool("x"), relation.Bool("y"))
	c, err := oracle.Compile(relation.New(s), []string{"x"}, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MinOutSize(c.All()); got != 0 {
		t.Errorf("empty relation MinOutSize = %d, want 0", got)
	}
	if c.IsSafe(c.All(), 1) {
		t.Error("empty relation safe for Γ=1")
	}
}

// TestCompiledSharedAcrossEngineWorkers runs the parallel subset-search
// engine with one compiled oracle shared by every worker and checks the
// result matches a fresh interpreted search. Run with -race to exercise the
// concurrency claim.
func TestCompiledSharedAcrossEngineWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := module.Random("m",
		relation.Bools("x0", "x1", "x2", "x3"),
		relation.Bools("y0", "y1", "y2", "y3"), rng)
	mv := privacy.NewModuleView(m)
	costs := privacy.Uniform(mv.Attrs()...)
	sp, err := search.NewSpace(mv.Attrs(), costs.Of)
	if err != nil {
		t.Fatal(err)
	}
	c, err := mv.Compile()
	if err != nil {
		t.Fatal(err)
	}
	const gamma = 4
	compiled, err := sp.MinCost(func(v search.Mask) (bool, error) {
		return c.IsSafe(oracle.Mask(v), gamma), nil
	}, search.Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	interpreted, err := sp.MinCost(func(v search.Mask) (bool, error) {
		return mv.IsSafe(sp.NameSet(v), gamma)
	}, search.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Found != interpreted.Found || compiled.Hidden != interpreted.Hidden || compiled.Cost != interpreted.Cost {
		t.Fatalf("compiled search (found=%v hidden=%b cost=%g) != interpreted (found=%v hidden=%b cost=%g)",
			compiled.Found, compiled.Hidden, compiled.Cost,
			interpreted.Found, interpreted.Hidden, interpreted.Cost)
	}
}

func TestBitset(t *testing.T) {
	b := oracle.NewBitset(130)
	for _, i := range []uint64{0, 63, 64, 129} {
		b.Set(i)
	}
	if b.Count() != 4 {
		t.Fatalf("count = %d, want 4", b.Count())
	}
	if !b.Has(64) || b.Has(65) {
		t.Error("membership wrong")
	}
	var got []uint64
	b.Each(func(code uint64) { got = append(got, code) })
	want := []uint64{0, 63, 64, 129}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", got, want)
		}
	}
	o := oracle.NewBitset(130)
	o.Set(1)
	b.Or(o)
	if b.Count() != 5 {
		t.Error("Or failed")
	}
	full := oracle.NewBitset(70)
	full.SetAll(70)
	if full.Count() != 70 {
		t.Fatalf("SetAll count = %d, want 70", full.Count())
	}
}
