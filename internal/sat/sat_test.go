package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Error("negative var count accepted")
	}
	if _, err := New(2, []Clause{{}}); err == nil {
		t.Error("empty clause accepted")
	}
	if _, err := New(2, []Clause{{3}}); err == nil {
		t.Error("out-of-range literal accepted")
	}
	if _, err := New(2, []Clause{{0}}); err == nil {
		t.Error("zero literal accepted")
	}
	if _, err := New(2, []Clause{{1, -2}}); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
}

func TestLiteral(t *testing.T) {
	if Literal(-3).Var() != 3 || Literal(3).Var() != 3 {
		t.Error("Var wrong")
	}
	if Literal(-3).Positive() || !Literal(3).Positive() {
		t.Error("Positive wrong")
	}
}

func TestEval(t *testing.T) {
	// (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
	f := MustNew(3, []Clause{{1, -2}, {2, 3}})
	cases := []struct {
		assign []int
		want   bool
	}{
		{[]int{1, 0, 0}, false},
		{[]int{1, 1, 0}, true},
		{[]int{0, 1, 0}, false},
		{[]int{0, 0, 0}, false},
		{[]int{0, 0, 1}, true},
	}
	for _, tc := range cases {
		if got := f.Eval(tc.assign); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.assign, got, tc.want)
		}
	}
}

func TestSatisfiableBasics(t *testing.T) {
	if Contradiction(3).Satisfiable() {
		t.Error("contradiction satisfiable")
	}
	if !Tautology(3).Satisfiable() {
		t.Error("tautology unsatisfiable")
	}
	// Pigeonhole-ish small UNSAT: (x1)(x2)(¬x1 ∨ ¬x2)
	f := MustNew(2, []Clause{{1}, {2}, {-1, -2}})
	if f.Satisfiable() {
		t.Error("unsat core satisfiable")
	}
	// Chain of implications, satisfiable.
	g := MustNew(4, []Clause{{-1, 2}, {-2, 3}, {-3, 4}, {1}})
	if !g.Satisfiable() {
		t.Error("implication chain unsatisfiable")
	}
}

func TestCountSatisfying(t *testing.T) {
	// x1 ∨ x2 has 3 satisfying assignments over 2 vars.
	f := MustNew(2, []Clause{{1, 2}})
	if got := f.CountSatisfying(); got != 3 {
		t.Errorf("CountSatisfying = %d, want 3", got)
	}
	if got := Contradiction(2).CountSatisfying(); got != 0 {
		t.Errorf("contradiction count = %d, want 0", got)
	}
}

// Property: DPLL agrees with brute-force enumeration on random 3-CNFs.
func TestQuickDPLLMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random3CNF(6, 4+rng.Intn(30), rng)
		return g.Satisfiable() == (g.CountSatisfying() > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandom3CNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Random3CNF(8, 20, rng)
	if g.Vars != 8 || len(g.Clauses) != 20 {
		t.Fatalf("shape = %d vars %d clauses", g.Vars, len(g.Clauses))
	}
	for _, c := range g.Clauses {
		if len(c) != 3 {
			t.Fatal("clause not ternary")
		}
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Fatal("repeated variable in clause")
			}
			seen[l.Var()] = true
		}
	}
}

func TestString(t *testing.T) {
	f := MustNew(2, []Clause{{1, -2}})
	s := f.String()
	if !strings.Contains(s, "x1") || !strings.Contains(s, "¬x2") {
		t.Errorf("String = %q", s)
	}
}
