// Package sat provides CNF formulas and a small DPLL satisfiability solver.
//
// It is a substrate for the Theorem 2 experiment of the paper (Davidson et
// al., PODS 2011): deciding whether a visible subset is safe for a
// succinctly described module is co-NP-hard via a reduction from UNSAT. The
// solver cross-checks the reduction: the gadget module's view is safe iff
// the formula is unsatisfiable.
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Literal is a non-zero integer encoding a variable occurrence: +v means
// variable v (1-based) positive, -v means negated.
type Literal int

// Var returns the 1-based variable index of the literal.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is un-negated.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a conjunction of clauses over variables 1..Vars.
type CNF struct {
	Vars    int
	Clauses []Clause
}

// New validates and returns a CNF over n variables.
func New(n int, clauses []Clause) (*CNF, error) {
	if n < 0 {
		return nil, fmt.Errorf("sat: negative variable count %d", n)
	}
	for i, c := range clauses {
		if len(c) == 0 {
			return nil, fmt.Errorf("sat: clause %d is empty", i)
		}
		for _, l := range c {
			if l == 0 || l.Var() > n {
				return nil, fmt.Errorf("sat: clause %d has invalid literal %d over %d vars", i, l, n)
			}
		}
	}
	return &CNF{Vars: n, Clauses: clauses}, nil
}

// MustNew is like New but panics on error.
func MustNew(n int, clauses []Clause) *CNF {
	f, err := New(n, clauses)
	if err != nil {
		panic(err)
	}
	return f
}

// Eval evaluates the formula under a full assignment (assign[i] is the value
// of variable i+1; 0 = false, anything else = true).
func (f *CNF) Eval(assign []int) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			v := assign[l.Var()-1] != 0
			if v == l.Positive() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Satisfiable decides satisfiability with DPLL (unit propagation + first
// unassigned variable branching). Exponential worst case, fine for the
// gadget sizes used in experiments.
func (f *CNF) Satisfiable() bool {
	assign := make([]int8, f.Vars+1) // 0 unknown, 1 true, -1 false
	return f.dpll(assign)
}

func (f *CNF) dpll(assign []int8) bool {
	// Unit propagation to fixpoint.
	var trail []int
	for {
		unit := 0
		for _, c := range f.Clauses {
			unassigned := 0
			var last Literal
			sat := false
			for _, l := range c {
				switch assign[l.Var()] {
				case 0:
					unassigned++
					last = l
				case 1:
					if l.Positive() {
						sat = true
					}
				case -1:
					if !l.Positive() {
						sat = true
					}
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				// Conflict: undo trail.
				for _, v := range trail {
					assign[v] = 0
				}
				return false
			}
			if unassigned == 1 {
				if last.Positive() {
					assign[last.Var()] = 1
				} else {
					assign[last.Var()] = -1
				}
				trail = append(trail, last.Var())
				unit = last.Var()
			}
		}
		if unit == 0 {
			break
		}
	}
	// Find a branching variable.
	branch := 0
	for v := 1; v <= f.Vars; v++ {
		if assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		// Full assignment, all clauses satisfied (no conflict above).
		for _, v := range trail {
			assign[v] = 0
		}
		return true
	}
	for _, val := range []int8{1, -1} {
		assign[branch] = val
		if f.dpll(assign) {
			assign[branch] = 0
			for _, v := range trail {
				assign[v] = 0
			}
			return true
		}
	}
	assign[branch] = 0
	for _, v := range trail {
		assign[v] = 0
	}
	return false
}

// CountSatisfying counts satisfying assignments by enumeration; only for
// small Vars. Used by tests.
func (f *CNF) CountSatisfying() int {
	n := 0
	assign := make([]int, f.Vars)
	var rec func(i int)
	rec = func(i int) {
		if i == f.Vars {
			if f.Eval(assign) {
				n++
			}
			return
		}
		for v := 0; v <= 1; v++ {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return n
}

// Random3CNF draws a uniform random 3-CNF with n variables and m clauses.
// Each clause has three distinct variables with random polarities.
func Random3CNF(n, m int, rng *rand.Rand) *CNF {
	if n < 3 {
		panic("sat: Random3CNF needs n >= 3")
	}
	clauses := make([]Clause, m)
	for i := range clauses {
		vars := rng.Perm(n)[:3]
		c := make(Clause, 3)
		for j, v := range vars {
			l := Literal(v + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			c[j] = l
		}
		clauses[i] = c
	}
	return MustNew(n, clauses)
}

// Contradiction returns an unsatisfiable formula over n >= 1 variables:
// (x1) ∧ (¬x1).
func Contradiction(n int) *CNF {
	return MustNew(n, []Clause{{1}, {-1}})
}

// Tautology returns a trivially satisfiable formula over n >= 1 variables:
// (x1 ∨ ¬x1).
func Tautology(n int) *CNF {
	return MustNew(n, []Clause{{1, -1}})
}

// String renders the formula as "(x1 ∨ ¬x2) ∧ ...".
func (f *CNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		lits := make([]string, len(c))
		for j, l := range c {
			if l.Positive() {
				lits[j] = fmt.Sprintf("x%d", l.Var())
			} else {
				lits[j] = fmt.Sprintf("¬x%d", l.Var())
			}
		}
		parts[i] = "(" + strings.Join(lits, " ∨ ") + ")"
	}
	return strings.Join(parts, " ∧ ")
}
