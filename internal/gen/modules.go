package gen

import (
	"math/rand"

	"secureview/internal/module"
	"secureview/internal/relation"
)

// makeModule draws one module functionality of the configured kind over the
// given attributes. MixedFuncs picks a kind per module; Injective falls
// back to a random table when the output domain is smaller than the input
// domain.
func (b *builder) makeModule(name string, in, out []relation.Attribute) *module.Module {
	kind := b.cfg.Funcs
	if kind == MixedFuncs {
		kind = []FuncKind{RandomTable, Injective, ConstantHeavy}[b.rng.Intn(3)]
	}
	switch kind {
	case Injective:
		if m := injectiveModule(name, in, out, b.rng); m != nil {
			return m
		}
	case ConstantHeavy:
		if m := constantHeavyModule(name, in, out, b.rng); m != nil {
			return m
		}
	}
	return module.Random(name, in, out, b.rng)
}

// tableSpaces returns the input and output domain products when both are
// small enough to materialize (≤ 4096 inputs, ≤ 1<<20 outputs).
func tableSpaces(in, out []relation.Attribute) (inSize, outSize uint64, ok bool) {
	inSchema := relation.MustSchema(in...)
	outSchema := relation.MustSchema(out...)
	inSize, okI := inSchema.DomainProduct(inSchema.Names())
	outSize, okO := outSchema.DomainProduct(outSchema.Names())
	if !okI || !okO || inSize == 0 || inSize > 1<<12 || outSize > 1<<20 {
		return 0, 0, false
	}
	return inSize, outSize, true
}

// injectiveModule builds a random injection Dom(I) ↪ Dom(O), or nil when
// |Dom(O)| < |Dom(I)| (no injection exists) or the table would be too big.
// With equal domain sizes the result is a uniformly random permutation.
func injectiveModule(name string, in, out []relation.Attribute, rng *rand.Rand) *module.Module {
	inSize, outSize, ok := tableSpaces(in, out)
	if !ok || outSize < inSize {
		return nil
	}
	inSchema := relation.MustSchema(in...)
	outSchema := relation.MustSchema(out...)
	perm := rng.Perm(int(outSize))
	table := make([]relation.Tuple, inSize)
	for i := range table {
		table[i] = relation.Decode(outSchema, uint64(perm[i]))
	}
	return module.MustNew(name, in, out, func(x relation.Tuple) relation.Tuple {
		return table[relation.Encode(inSchema, x)]
	})
}

// constantHeavyModule maps every input to one of at most two output tuples,
// biased 3:1 towards the first; with probability 1/2 (or a single-point
// output domain) it degenerates to a constant function.
func constantHeavyModule(name string, in, out []relation.Attribute, rng *rand.Rand) *module.Module {
	inSize, outSize, ok := tableSpaces(in, out)
	if !ok {
		return nil
	}
	outSchema := relation.MustSchema(out...)
	values := []relation.Tuple{relation.Decode(outSchema, uint64(rng.Intn(int(outSize))))}
	if outSize > 1 && rng.Intn(2) == 1 {
		for {
			v := relation.Decode(outSchema, uint64(rng.Intn(int(outSize))))
			if !v.Equal(values[0]) {
				values = append(values, v)
				break
			}
		}
	}
	inSchema := relation.MustSchema(in...)
	table := make([]relation.Tuple, inSize)
	for i := range table {
		pick := 0
		if len(values) == 2 && rng.Intn(4) == 0 {
			pick = 1
		}
		table[i] = values[pick]
	}
	return module.MustNew(name, in, out, func(x relation.Tuple) relation.Tuple {
		return table[relation.Encode(inSchema, x)]
	})
}
