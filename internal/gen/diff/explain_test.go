package diff

import (
	"context"
	"errors"
	"strings"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// requireExplanation asserts the Explain contract on one (problem,
// solution, variant): no error, exactly one line per module, in module
// order, each line led by its module's name, and every private module's
// line naming a satisfied requirement.
func requireExplanation(t *testing.T, name string, p *secureview.Problem,
	sol secureview.Solution, v secureview.Variant) {
	t.Helper()
	e, err := secureview.Explain(p, sol, v)
	if err != nil {
		t.Errorf("%s: Explain failed on an optimal solution: %v", name, err)
		return
	}
	if len(e.Lines) != len(p.Modules) {
		t.Errorf("%s: %d explanation lines for %d modules", name, len(e.Lines), len(p.Modules))
		return
	}
	for i, m := range p.Modules {
		line := e.Lines[i]
		if !strings.HasPrefix(line, m.Name) {
			t.Errorf("%s: line %d %q does not lead with module %q", name, i, line, m.Name)
			continue
		}
		if m.Public {
			if sol.Privatized.Has(m.Name) != strings.Contains(line, "privatized") {
				t.Errorf("%s: public module %s line %q inconsistent with privatization %v",
					name, m.Name, line, sol.Privatized.Has(m.Name))
			}
			continue
		}
		if !strings.Contains(line, "satisfied") {
			t.Errorf("%s: private module %s line %q names no satisfied requirement", name, m.Name, line)
		}
	}
}

// TestExplainGeneratedOptima runs secureview.Explain over every optimal
// solution the registry's exact solvers produce across the canonical
// generated corpora — workflow-derived instances (gen.Classes) in the set
// variant, abstract instances (gen.ProblemClasses) in both variants. An
// optimum the solver cannot explain is a defect in either Explain or the
// solver, so every case must yield a non-empty, requirement-consistent
// explanation.
func TestExplainGeneratedOptima(t *testing.T) {
	ctx := context.Background()
	sess := solve.NewSession()
	explained := 0

	for _, cl := range gen.Classes() {
		for seed := int64(0); seed < 3; seed++ {
			it, err := gen.New(cl.Cfg, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", cl.Name, seed, err)
			}
			for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
				p, err := sess.Problem(ctx, it.W, v, it.Gamma, it.Costs, it.PrivatizeCosts)
				if err != nil {
					if errors.Is(err, secureview.ErrInfeasible) {
						continue
					}
					t.Fatalf("%s seed %d %v: %v", cl.Name, seed, v, err)
				}
				res, err := solve.Solve(ctx, "exact", p, solve.Options{Variant: v, MaxAttrs: 22})
				if err != nil {
					if errors.Is(err, secureview.ErrNodeBudget) {
						continue
					}
					t.Fatalf("%s seed %d %v: exact: %v", cl.Name, seed, v, err)
				}
				requireExplanation(t, cl.Name, p, res.Solution, v)
				explained++
			}
		}
	}

	for _, pc := range gen.ProblemClasses() {
		for seed := int64(0); seed < 8; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			for _, v := range []secureview.Variant{secureview.Set, secureview.Cardinality} {
				res, err := solve.Solve(ctx, "exact", p, solve.Options{Variant: v, MaxAttrs: 22})
				if err != nil {
					if errors.Is(err, secureview.ErrNodeBudget) {
						continue
					}
					t.Fatalf("%s seed %d %v: exact: %v", pc.Name, seed, v, err)
				}
				requireExplanation(t, pc.Name, p, res.Solution, v)
				explained++
			}
		}
	}
	if explained < 50 {
		t.Fatalf("only %d (problem, variant) optima explained; corpus too thin", explained)
	}
}

// TestExplainRejectsInfeasible: the error path stays an error — feeding an
// empty solution to a non-trivial instance cannot produce an explanation.
func TestExplainRejectsInfeasible(t *testing.T) {
	p := gen.Problem(gen.ProblemConfig{Modules: 3}, 2)
	if _, err := secureview.Explain(p, secureview.Solution{}, secureview.Set); err == nil {
		t.Fatal("Explain accepted an infeasible (empty) solution")
	}
}
