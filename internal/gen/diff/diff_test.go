package diff

import (
	"context"
	"testing"

	"secureview/internal/gen"
	"secureview/internal/secureview"
	"secureview/internal/solve"
)

// TestDifferentialSuite is the acceptance property test of the scenario
// harness: across every workflow topology class and abstract problem class,
// at least 200 generated instances (in full mode) go through the complete
// solver matrix with ZERO disagreements — greedy and LP always feasible and
// within the paper's approximation bounds of the exact optimum, exact
// enumeration == branch-and-bound == engine, compiled oracle == interpreted
// Lemma 4 on every subset, and exhaustively enumerated workflow privacy on
// the small instances. -short trims the corpus but keeps every class.
func TestDifferentialSuite(t *testing.T) {
	workflowSeeds, problemSeeds := int64(10), int64(40)
	if testing.Short() {
		workflowSeeds, problemSeeds = 2, 5
	}
	// One solve.Session across the whole suite: derived problems and
	// compiled oracle tables are shared across instances exactly as a
	// long-lived server would share them across requests.
	sess := solve.NewSession()
	var results []Result
	for _, cl := range gen.Classes() {
		for seed := int64(0); seed < workflowSeeds; seed++ {
			it, err := gen.New(cl.Cfg, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", cl.Name, seed, err)
			}
			results = append(results, CheckInstance(it, Options{Session: sess}))
		}
	}
	for _, pc := range gen.ProblemClasses() {
		for seed := int64(0); seed < problemSeeds; seed++ {
			p := gen.Problem(pc.Cfg, seed)
			results = append(results, CheckProblem(pc.Name, p, Options{}))
		}
	}
	total := Merge(results...)
	for _, v := range total.Violations {
		t.Error(v)
	}
	t.Logf("instances=%d exact=%d solverRuns=%d oracleMasks=%d worldsVerified=%d skips=%d maxGreedyRatio=%.3f maxLPRatio=%.3f",
		total.Instances, total.Exact, total.SolverRuns, total.OracleMasks,
		total.WorldsVerified, total.Skips, total.MaxGreedyRatio, total.MaxLPRatio)
	wantInstances, wantExact := 200, 150
	if testing.Short() {
		wantInstances, wantExact = 30, 20
	}
	if total.Instances < wantInstances {
		t.Errorf("suite covered %d instances, want >= %d", total.Instances, wantInstances)
	}
	if total.Exact < wantExact {
		t.Errorf("only %d instances anchored by an exact optimum, want >= %d", total.Exact, wantExact)
	}
	if total.OracleMasks == 0 {
		t.Error("no compiled-vs-interpreted oracle masks compared")
	}
	if total.WorldsVerified == 0 {
		t.Error("no instance verified by exhaustive worlds enumeration")
	}
}

// TestDifferentialResultDeterministic re-runs one instance and requires the
// identical aggregate (GOMAXPROCS-independent solver outputs feed fixed
// counters).
func TestDifferentialResultDeterministic(t *testing.T) {
	it := gen.MustNew(gen.Config{Topology: gen.Layered, Funcs: gen.MixedFuncs, Share: 2}, 3)
	a := CheckInstance(it, Options{})
	b := CheckInstance(it, Options{})
	if a.SolverRuns != b.SolverRuns || a.OracleMasks != b.OracleMasks ||
		a.WorldsVerified != b.WorldsVerified || a.Skips != b.Skips ||
		a.MaxGreedyRatio != b.MaxGreedyRatio || a.MaxLPRatio != b.MaxLPRatio ||
		len(a.Violations) != len(b.Violations) {
		t.Fatalf("differential result not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestCancelledHarnessReportsSkipsNotViolations: tearing a harness run
// down mid-flight must yield a clean (incomplete) Result — cancellation is
// a skip, never a spurious solver "violation".
func TestCancelledHarnessReportsSkipsNotViolations(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := gen.Problem(gen.ProblemConfig{Modules: 4}, 1)
	r := CheckProblemCtx(ctx, "cancelled", p, Options{})
	if len(r.Violations) != 0 {
		t.Fatalf("cancelled run produced violations: %v", r.Violations)
	}
	if r.Skips == 0 {
		t.Fatal("cancelled run recorded no skips")
	}
	it := gen.MustNew(gen.Config{Topology: gen.Chain, Modules: 3}, 1)
	ri := CheckInstanceCtx(ctx, it, Options{})
	if len(ri.Violations) != 0 {
		t.Fatalf("cancelled instance run produced violations: %v", ri.Violations)
	}
}

// TestHarnessCatchesBrokenSolver proves the violation channel fires (a
// harness that can't fail verifies nothing): checking heuristics against a
// falsified optimum far above the true one must report them as "cheaper
// than optimal".
func TestHarnessCatchesBrokenSolver(t *testing.T) {
	p := gen.Problem(gen.ProblemConfig{Modules: 3}, 1)
	var r Result
	r.checkHeuristics(context.Background(), "tampered", p, secureview.Set, 1e9, true, p.Multiplicity(), Options{}.withDefaults())
	if len(r.Violations) == 0 {
		t.Fatal("harness accepted heuristic solutions cheaper than the claimed optimum")
	}
}
